package mobicol

// One benchmark per experiment table/figure, as required by the
// reproduction harness: `go test -bench=.` regenerates every table at
// reduced trial counts through exactly the code paths cmd/mdgbench uses at
// paper scale. Each benchmark reports the headline metric of its table as
// a custom unit so shapes are visible straight from the bench output.

import (
	"strconv"
	"strings"
	"testing"

	"mobicol/internal/bench"
)

func runExperiment(b *testing.B, id string, metricRow, metricCol int, unit string) {
	run, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.QuickConfig()
	var last float64
	for i := 0; i < b.N; i++ {
		tbl, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cell := tbl.Rows[metricRow][metricCol]
		cell = strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			b.Fatalf("%s metric cell %q: %v", id, tbl.Rows[metricRow][metricCol], err)
		}
		last = v
	}
	b.ReportMetric(last, unit)
}

// BenchmarkE1OptimalGap regenerates E1 (small-network optimal comparison);
// reports the heuristic's mean tour length on the largest row.
func BenchmarkE1OptimalGap(b *testing.B) { runExperiment(b, "E1", 1, 2, "m_tour") }

// BenchmarkE2TourVsN regenerates E2 (tour length vs N); reports SHDG's
// tour length at the densest point.
func BenchmarkE2TourVsN(b *testing.B) { runExperiment(b, "E2", 1, 1, "m_tour") }

// BenchmarkE3TourVsRange regenerates E3 (tour length vs range).
func BenchmarkE3TourVsRange(b *testing.B) { runExperiment(b, "E3", 2, 1, "m_tour") }

// BenchmarkE4TourVsField regenerates E4 (tour length vs field side).
func BenchmarkE4TourVsField(b *testing.B) { runExperiment(b, "E4", 1, 1, "m_tour") }

// BenchmarkE5MultiCollector regenerates E5 (multi-collector splitting);
// reports the max sub-tour length of the last row.
func BenchmarkE5MultiCollector(b *testing.B) { runExperiment(b, "E5", 3, 3, "m_maxsub") }

// BenchmarkE6Lifetime regenerates E6 (network lifetime); reports the
// mobile scheme's lifetime in rounds at the densest point.
func BenchmarkE6Lifetime(b *testing.B) { runExperiment(b, "E6", 1, 1, "rounds") }

// BenchmarkE7Latency regenerates E7 (collection latency); reports the
// mobile scheme's round time.
func BenchmarkE7Latency(b *testing.B) { runExperiment(b, "E7", 1, 1, "s_round") }

// BenchmarkE8Ablations regenerates E8 (planner ablations); reports the
// default variant's tour length.
func BenchmarkE8Ablations(b *testing.B) { runExperiment(b, "E8", 0, 1, "m_tour") }

// BenchmarkE9BufferCapacity regenerates E9 (buffer-capacity extension);
// reports the tightest capacity's tour length.
func BenchmarkE9BufferCapacity(b *testing.B) { runExperiment(b, "E9", 2, 1, "m_tour") }

// BenchmarkE10DESLatency regenerates E10 (closed-form vs discrete-event
// latency); reports the static sink's DES drain time at the densest point.
func BenchmarkE10DESLatency(b *testing.B) { runExperiment(b, "E10", 1, 2, "s_drain") }

// BenchmarkE11Obstacles regenerates E11 (obstacle-aware planning); reports
// the driven tour length on the obstructed row.
func BenchmarkE11Obstacles(b *testing.B) { runExperiment(b, "E11", 1, 1, "m_driven") }

// BenchmarkE12LossyLinks regenerates E12 (lossy links); reports the mobile
// scheme's lifetime under the mild model.
func BenchmarkE12LossyLinks(b *testing.B) { runExperiment(b, "E12", 1, 1, "rounds") }

// BenchmarkE13Scheduling regenerates E13 (visit scheduling); reports the
// EDF loss fraction at the highest sampled rate.
func BenchmarkE13Scheduling(b *testing.B) { runExperiment(b, "E13", 1, 4, "lossfrac") }

// BenchmarkE14Hetero regenerates E14 (heterogeneous ranges); reports the
// all-weak tour length.
func BenchmarkE14Hetero(b *testing.B) { runExperiment(b, "E14", 2, 1, "m_tour") }

// BenchmarkE15Adaptive regenerates E15 (degradation past first death);
// reports the mobile half-service life.
func BenchmarkE15Adaptive(b *testing.B) { runExperiment(b, "E15", 0, 2, "rounds") }

// BenchmarkPlannerOnly isolates the heuristic planner itself (no sweep):
// one 200-sensor plan per iteration.
func BenchmarkPlannerOnly(b *testing.B) {
	nw := MustDeploy(DeployConfig{N: 200, FieldSide: 200, Range: 30, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanTour(nw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16Rotation regenerates E16 (plan rotation); reports the
// rotated lifetime on the multi-plan row.
func BenchmarkE16Rotation(b *testing.B) { runExperiment(b, "E16", 1, 1, "rounds") }
