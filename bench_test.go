package mobicol

// One benchmark per experiment table/figure, as required by the
// reproduction harness: `go test -bench=.` regenerates every table at
// reduced trial counts through exactly the code paths cmd/mdgbench uses at
// paper scale. Each benchmark reports the headline metric of its table as
// a custom unit so shapes are visible straight from the bench output.

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"mobicol/internal/bench"
	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/tsp"
)

func runExperiment(b *testing.B, id string, metricRow, metricCol int, unit string) {
	run, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.QuickConfig()
	var last float64
	for i := 0; i < b.N; i++ {
		tbl, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cell := tbl.Rows[metricRow][metricCol]
		cell = strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			b.Fatalf("%s metric cell %q: %v", id, tbl.Rows[metricRow][metricCol], err)
		}
		last = v
	}
	b.ReportMetric(last, unit)
}

// BenchmarkE1OptimalGap regenerates E1 (small-network optimal comparison);
// reports the heuristic's mean tour length on the largest row.
func BenchmarkE1OptimalGap(b *testing.B) { runExperiment(b, "E1", 1, 2, "m_tour") }

// BenchmarkE2TourVsN regenerates E2 (tour length vs N); reports SHDG's
// tour length at the densest point.
func BenchmarkE2TourVsN(b *testing.B) { runExperiment(b, "E2", 1, 1, "m_tour") }

// BenchmarkE3TourVsRange regenerates E3 (tour length vs range).
func BenchmarkE3TourVsRange(b *testing.B) { runExperiment(b, "E3", 2, 1, "m_tour") }

// BenchmarkE4TourVsField regenerates E4 (tour length vs field side).
func BenchmarkE4TourVsField(b *testing.B) { runExperiment(b, "E4", 1, 1, "m_tour") }

// BenchmarkE5MultiCollector regenerates E5 (multi-collector splitting);
// reports the max sub-tour length of the last row.
func BenchmarkE5MultiCollector(b *testing.B) { runExperiment(b, "E5", 3, 3, "m_maxsub") }

// BenchmarkE6Lifetime regenerates E6 (network lifetime); reports the
// mobile scheme's lifetime in rounds at the densest point.
func BenchmarkE6Lifetime(b *testing.B) { runExperiment(b, "E6", 1, 1, "rounds") }

// BenchmarkE7Latency regenerates E7 (collection latency); reports the
// mobile scheme's round time.
func BenchmarkE7Latency(b *testing.B) { runExperiment(b, "E7", 1, 1, "s_round") }

// BenchmarkE8Ablations regenerates E8 (planner ablations); reports the
// default variant's tour length.
func BenchmarkE8Ablations(b *testing.B) { runExperiment(b, "E8", 0, 1, "m_tour") }

// BenchmarkE9BufferCapacity regenerates E9 (buffer-capacity extension);
// reports the tightest capacity's tour length.
func BenchmarkE9BufferCapacity(b *testing.B) { runExperiment(b, "E9", 2, 1, "m_tour") }

// BenchmarkE10DESLatency regenerates E10 (closed-form vs discrete-event
// latency); reports the static sink's DES drain time at the densest point.
func BenchmarkE10DESLatency(b *testing.B) { runExperiment(b, "E10", 1, 2, "s_drain") }

// BenchmarkE11Obstacles regenerates E11 (obstacle-aware planning); reports
// the driven tour length on the obstructed row.
func BenchmarkE11Obstacles(b *testing.B) { runExperiment(b, "E11", 1, 1, "m_driven") }

// BenchmarkE12LossyLinks regenerates E12 (lossy links); reports the mobile
// scheme's lifetime under the mild model.
func BenchmarkE12LossyLinks(b *testing.B) { runExperiment(b, "E12", 1, 1, "rounds") }

// BenchmarkE13Scheduling regenerates E13 (visit scheduling); reports the
// EDF loss fraction at the highest sampled rate.
func BenchmarkE13Scheduling(b *testing.B) { runExperiment(b, "E13", 1, 4, "lossfrac") }

// BenchmarkE14Hetero regenerates E14 (heterogeneous ranges); reports the
// all-weak tour length.
func BenchmarkE14Hetero(b *testing.B) { runExperiment(b, "E14", 2, 1, "m_tour") }

// BenchmarkE15Adaptive regenerates E15 (degradation past first death);
// reports the mobile half-service life.
func BenchmarkE15Adaptive(b *testing.B) { runExperiment(b, "E15", 0, 2, "rounds") }

// BenchmarkPlannerOnly isolates the heuristic planner itself (no sweep):
// one 200-sensor plan per iteration.
func BenchmarkPlannerOnly(b *testing.B) {
	nw := MustDeploy(DeployConfig{N: 200, FieldSide: 200, Range: 30, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanTour(nw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16Rotation regenerates E16 (plan rotation); reports the
// rotated lifetime on the multi-plan row.
func BenchmarkE16Rotation(b *testing.B) { runExperiment(b, "E16", 1, 1, "rounds") }

// warmTSPScratch builds a 200-point instance, converges both local
// searches into the given scratch, and returns the shared state: after
// this, re-running either pass finds no improving move and — with the
// scratch buffers grown — must not allocate.
func warmTSPScratch(s *tsp.Scratch) (pts []geom.Point, tour tsp.Tour, neigh [][]int) {
	nw := MustDeploy(DeployConfig{N: 200, FieldSide: 200, Range: 30, Seed: 1})
	pts = nw.Positions()
	neigh = tsp.NeighborLists(pts, 12)
	tour = make(tsp.Tour, len(pts))
	for i := range tour {
		tour[i] = i
	}
	for s.TwoOpt(pts, tour, neigh)+s.OrOpt(pts, tour, neigh) > 0 {
	}
	return pts, tour, neigh
}

// BenchmarkTwoOptSteadyState pins the 2-opt pass at allocs/op == 0: on a
// converged tour with a warmed scratch the pass is a pure scan.
func BenchmarkTwoOptSteadyState(b *testing.B) {
	var s tsp.Scratch
	pts, tour, neigh := warmTSPScratch(&s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TwoOpt(pts, tour, neigh)
	}
}

// BenchmarkOrOptSteadyState pins the Or-opt pass at allocs/op == 0 under
// the same converged-tour, warmed-scratch regime.
func BenchmarkOrOptSteadyState(b *testing.B) {
	var s tsp.Scratch
	pts, tour, neigh := warmTSPScratch(&s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OrOpt(pts, tour, neigh)
	}
}

// warmGreedy builds a covering instance and runs one selection so the
// scratch buffers and the instance's lazy feasibility memo are in their
// steady state.
func warmGreedy(tb testing.TB, s *cover.GreedyScratch) (*cover.Instance, geom.Point) {
	tb.Helper()
	nw := MustDeploy(DeployConfig{N: 200, FieldSide: 200, Range: 30, Seed: 1})
	pts := nw.Positions()
	inst := cover.NewInstance(pts, pts, nw.Range)
	if _, err := inst.GreedyInto(nw.Sink, nil, s); err != nil {
		tb.Fatal(err)
	}
	return inst, nw.Sink
}

// BenchmarkGreedySteadyState pins the CELF greedy selection at
// allocs/op == 0 once the scratch has grown to the instance size.
func BenchmarkGreedySteadyState(b *testing.B) {
	var s cover.GreedyScratch
	inst, sink := warmGreedy(b, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.GreedyInto(sink, nil, &s); err != nil {
			b.Fatal(err)
		}
	}
}

// warmSpanTrace builds an enabled trace and runs a few full span round
// trips so the span free list, field slices, line buffer, and registry
// entries are all grown: after this, instrumenting a phase is free.
func warmSpanTrace() *obs.Trace {
	tr := obs.New(io.Discard)
	for i := 0; i < 8; i++ {
		spanRoundTrip(tr)
	}
	return tr
}

// spanRoundTrip is one representative unit of instrumentation work: a
// root span, a child span with typed fields, and metric updates — the
// shape every planner phase uses.
func spanRoundTrip(tr *obs.Trace) {
	root := tr.Start("bench.root")
	child := root.Child("bench.phase")
	child.SetInt("iters", 42)
	child.SetFloat("gain", 1.5)
	child.SetStr("algo", "shdg")
	child.Count("bench.calls", 1)
	child.Observe("bench.gain", 3)
	child.End()
	root.End()
}

// BenchmarkSpanSteadyState pins the obs span enter/exit path at
// allocs/op == 0: with the span pool, line buffer, and registry warmed,
// tracing a phase must not allocate.
func BenchmarkSpanSteadyState(b *testing.B) {
	tr := warmSpanTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spanRoundTrip(tr)
	}
}

// TestHotPathSteadyStateZeroAllocs enforces what the steady-state
// benchmarks report: the scratch-based hot passes must not allocate once
// their buffers have grown. A regression here means a heap allocation
// crept back into a planning inner loop.
func TestHotPathSteadyStateZeroAllocs(t *testing.T) {
	var ts tsp.Scratch
	pts, tour, neigh := warmTSPScratch(&ts)
	if n := testing.AllocsPerRun(20, func() { ts.TwoOpt(pts, tour, neigh) }); n != 0 {
		t.Errorf("Scratch.TwoOpt steady state allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { ts.OrOpt(pts, tour, neigh) }); n != 0 {
		t.Errorf("Scratch.OrOpt steady state allocates %.1f objects/op, want 0", n)
	}

	var gs cover.GreedyScratch
	inst, sink := warmGreedy(t, &gs)
	if n := testing.AllocsPerRun(20, func() {
		if _, err := inst.GreedyInto(sink, nil, &gs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Instance.GreedyInto steady state allocates %.1f objects/op, want 0", n)
	}

	tr := warmSpanTrace()
	if n := testing.AllocsPerRun(20, func() { spanRoundTrip(tr) }); n != 0 {
		t.Errorf("obs span round trip steady state allocates %.1f objects/op, want 0", n)
	}
}
