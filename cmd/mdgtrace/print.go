package main

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"mobicol/internal/obs/analyze"
)

// writeSummary prints the per-phase table followed by the metric tail.
// Without -timing every printed byte is deterministic content; with it,
// total/self wall-clock columns are appended.
func writeSummary(w io.Writer, tr *analyze.Trace, timing bool) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	if timing {
		fmt.Fprintln(tw, "phase\tcount\ttotal_ns\tself_ns")
	} else {
		fmt.Fprintln(tw, "phase\tcount")
	}
	for _, st := range tr.PhaseStats() {
		if timing {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", st.Name, st.Count, st.TotalNs, st.SelfNs)
		} else {
			fmt.Fprintf(tw, "%s\t%d\n", st.Name, st.Count)
		}
	}
	if len(tr.Metrics) > 0 {
		fmt.Fprintln(tw, "\nmetric\ttype\tvalue")
		for _, m := range tr.Metrics {
			switch m.Type {
			case "hist":
				fmt.Fprintf(tw, "%s\t%s\tcount=%d sum=%v\n", m.Name, m.Type, m.Count, m.Sum)
			default:
				fmt.Fprintf(tw, "%s\t%s\t%s\n", m.Name, m.Type, m.Value)
			}
		}
	}
	return tw.Flush()
}

// writeTree prints the reconstructed span tree, two spaces of indent
// per level, fields inline in sorted key order.
func writeTree(w io.Writer, tr *analyze.Trace, timing bool) error {
	var err error
	var walk func(s *analyze.Span, depth int)
	walk = func(s *analyze.Span, depth int) {
		if err != nil {
			return
		}
		var sb strings.Builder
		for i := 0; i < depth; i++ {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s id=%d", s.Name, s.ID)
		for _, f := range s.Fields {
			fmt.Fprintf(&sb, " %s=%s", f.Key, f.Value)
		}
		if timing {
			fmt.Fprintf(&sb, " dur_ns=%d", s.DurNs)
		}
		_, err = fmt.Fprintln(w, sb.String())
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range tr.Roots {
		walk(r, 0)
	}
	return err
}
