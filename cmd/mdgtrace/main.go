// mdgtrace reads the JSONL traces written by the -trace flag of the
// planning and simulation tools and answers questions about them:
//
//	mdgtrace summary trace.jsonl           per-phase aggregates + metric tail
//	mdgtrace tree trace.jsonl              reconstructed span tree
//	mdgtrace folded trace.jsonl            folded stacks (flamegraph input)
//	mdgtrace diff a.jsonl b.jsonl          canonical A/B comparison
//
// summary and tree print only deterministic content by default — phase
// names, counts, span structure, fields, and metric values, all derived
// from the algorithm's own state — so their output is byte-identical
// across same-seed runs. The -timing flag adds the wall-clock columns
// (total, self, duration), which naturally vary between runs. folded is
// always timing-bearing: its stack weights are nanoseconds of self time.
//
// diff canonicalises both traces (wall-clock keys stripped, remaining
// keys sorted) and exits 0 when they are semantically identical, 1 at
// the first divergence, 2 on usage or read errors — the same exit-code
// contract as the repo's other gates, so it slots into CI as a
// determinism check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobicol/internal/obs/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage: mdgtrace <command> [flags] <trace.jsonl>...

commands:
  summary [-timing] <trace.jsonl>   per-phase aggregates and metric tail
  tree    [-timing] <trace.jsonl>   reconstructed span tree
  folded  <trace.jsonl>             folded stacks, weighted by self time (ns)
  diff    <a.jsonl> <b.jsonl>       compare canonicalised traces; exit 1 on divergence

"-" reads the trace from stdin.
`)
}

func run(args []string, out io.Writer) int {
	if len(args) == 0 {
		usage(os.Stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary", "tree", "folded":
		fs := flag.NewFlagSet("mdgtrace "+cmd, flag.ContinueOnError)
		timing := false
		if cmd != "folded" {
			fs.BoolVar(&timing, "timing", false, "include wall-clock columns (non-deterministic across runs)")
		}
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			fmt.Fprintf(os.Stderr, "mdgtrace %s: want exactly one trace file\n", cmd)
			return 2
		}
		tr, err := parseFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdgtrace:", err)
			return 2
		}
		switch cmd {
		case "summary":
			err = writeSummary(out, tr, timing)
		case "tree":
			err = writeTree(out, tr, timing)
		case "folded":
			err = analyze.WriteFolded(out, tr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdgtrace:", err)
			return 2
		}
		return 0
	case "diff":
		return runDiff(rest, out)
	case "-h", "-help", "--help", "help":
		usage(out)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "mdgtrace: unknown command %q\n", cmd)
		usage(os.Stderr)
		return 2
	}
}

func runDiff(rest []string, out io.Writer) int {
	if len(rest) != 2 {
		fmt.Fprintln(os.Stderr, "mdgtrace diff: want exactly two trace files")
		return 2
	}
	a, err := openArg(rest[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgtrace:", err)
		return 2
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer a.Close()
	b, err := openArg(rest[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgtrace:", err)
		return 2
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer b.Close()
	res, err := analyze.Diff(a, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgtrace:", err)
		return 2
	}
	if res.Equal {
		fmt.Fprintf(out, "identical: %d canonical lines\n", res.ALines)
		return 0
	}
	fmt.Fprintf(out, "traces diverge at canonical line %d (%d vs %d lines):\n", res.Line, res.ALines, res.BLines)
	fmt.Fprintf(out, "  a: %s\n", orMissing(res.A))
	fmt.Fprintf(out, "  b: %s\n", orMissing(res.B))
	return 1
}

func orMissing(line string) string {
	if line == "" {
		return "<end of trace>"
	}
	return line
}

func openArg(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func parseFile(path string) (*analyze.Trace, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer r.Close()
	return analyze.Parse(r)
}
