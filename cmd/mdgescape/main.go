// Command mdgescape enforces the escape-diagnostic ratchet: it builds the
// hot packages with `go build -gcflags='-m -m'`, parses the compiler's
// escape diagnostics into (package, file, line, kind) records, and
// compares the per-file counts against the committed baseline. The lint
// engine's alloccheck flags allocation sites syntactically; mdgescape
// pins what the compiler actually decided, so a refactor that silently
// turns a stack allocation into a heap escape fails CI even when no
// flagged site changed.
//
// Usage:
//
//	mdgescape -baseline ESCAPE_baseline.txt [packages]
//	mdgescape -baseline ESCAPE_baseline.txt -update [packages]
//
// Without package arguments the planner hot packages are checked. The
// tool exits 0 when the baseline holds, 1 when any file gained escapes,
// and 2 on operational errors (build failure, unreadable baseline).
// Escape diagnostics replay from the build cache, so repeat runs are
// cheap.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"mobicol/internal/check"
)

// hotPackages is the default analysis set: the planning hot path plus
// the data structures it leans on.
//
//mdglint:ignore globalvar write-once default package list read only by main; a const slice is not expressible in Go
var hotPackages = []string{
	"./internal/tsp",
	"./internal/cover",
	"./internal/shdgp",
	"./internal/replan",
	"./internal/par",
	"./internal/bitset",
	"./internal/geom",
	"./internal/obs",
}

func main() {
	var (
		baselinePath = flag.String("baseline", "ESCAPE_baseline.txt", "committed escape-count baseline file")
		update       = flag.Bool("update", false, "regenerate the baseline from the measured diagnostics instead of comparing")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mdgescape [-baseline file] [-update] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Ratchets `go build -gcflags='-m -m'` escape diagnostics for the hot packages.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}

	recs, err := measure(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgescape:", err)
		os.Exit(2)
	}

	if *update {
		if err := writeBaseline(*baselinePath, recs); err != nil {
			fmt.Fprintln(os.Stderr, "mdgescape:", err)
			os.Exit(2)
		}
		fmt.Printf("mdgescape: wrote %d escape record(s) across %d package(s) to %s\n",
			len(recs), len(pkgs), *baselinePath)
		return
	}

	f, err := os.Open(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgescape:", err)
		os.Exit(2)
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer f.Close()
	baseline, err := check.ReadEscapeBaseline(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgescape:", err)
		os.Exit(2)
	}
	if bad := check.CompareEscapes(recs, baseline); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "mdgescape: %s\n", b)
		}
		fmt.Fprintf(os.Stderr, "mdgescape: %d file(s) above the escape baseline\n", len(bad))
		os.Exit(1)
	}
	fmt.Printf("mdgescape: %d escape record(s) hold against the baseline\n", len(recs))
}

// measure builds pkgs with escape diagnostics enabled and parses the
// compiler output. The -gcflags value applies only to the packages named
// on the command line, so dependencies stay quiet.
func measure(pkgs []string) ([]check.EscapeRecord, error) {
	args := append([]string{"build", "-gcflags=-m -m"}, pkgs...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stderr = &out
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build failed: %v\n%s", err, out.String())
	}
	return check.ParseEscapes(&out)
}

func writeBaseline(path string, recs []check.EscapeRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := check.WriteEscapeBaseline(f, check.CountEscapes(recs)); err != nil {
		_ = f.Close() // already failing; the write error is the one to report
		return err
	}
	// Close errors on the output file are real data loss: report them.
	return f.Close()
}
