// mdgcov enforces the per-package coverage ratchet: it parses
// `go test -cover` output on stdin, compares it against the committed
// floors, and fails when any package drops below its floor.
//
// Usage:
//
//	go test -cover ./... | mdgcov -ratchet COVERAGE_ratchet.txt
//	go test -cover ./... | mdgcov -ratchet COVERAGE_ratchet.txt -update
//
// -update regenerates the ratchet file from the measured coverage (minus
// -margin, so ordinary run-to-run jitter does not fail CI).
package main

import (
	"flag"
	"fmt"
	"os"

	"mobicol/internal/check"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mdgcov: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ratchetPath = flag.String("ratchet", "COVERAGE_ratchet.txt", "committed coverage-floor file")
		update      = flag.Bool("update", false, "regenerate the ratchet from measured coverage instead of comparing")
		margin      = flag.Float64("margin", 1.0, "percentage points subtracted from measurements when writing floors (-update)")
		slack       = flag.Float64("slack", 0.0, "extra percentage points of forgiveness when comparing")
	)
	flag.Parse()

	cov, err := check.ParseCover(os.Stdin)
	if err != nil {
		return err
	}
	if len(cov) == 0 {
		return fmt.Errorf("no coverage lines on stdin (pipe `go test -cover ./...` output in)")
	}

	if *update {
		f, err := os.Create(*ratchetPath)
		if err != nil {
			return err
		}
		if err := check.WriteRatchet(f, check.Floors(cov, *margin)); err != nil {
			_ = f.Close() // already failing; the write error is the one to report
			return err
		}
		// Close errors on the output file are real data loss: report them.
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("mdgcov: wrote %d floors to %s (margin %.1f)\n", len(cov), *ratchetPath, *margin)
		return nil
	}

	f, err := os.Open(*ratchetPath)
	if err != nil {
		return err
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer f.Close()
	floors, err := check.ReadRatchet(f)
	if err != nil {
		return err
	}
	if bad := check.CompareRatchet(cov, floors, *slack); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "mdgcov: %s\n", b)
		}
		return fmt.Errorf("%d package(s) below the coverage ratchet", len(bad))
	}
	fmt.Printf("mdgcov: %d measured packages hold against %d floors\n", len(cov), len(floors))
	return nil
}
