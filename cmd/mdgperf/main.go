// mdgperf is the performance ratchet: it runs the planner benchmark
// suite (the same measurement behind `mdgbench -bench-out`) and
// compares it against the committed PERF_baseline.json under a
// noise-aware policy — deterministic quality fields and span counts
// bit-exact, allocs_per_op exact in the regression direction, phase
// wall times and bytes within tolerance bands.
//
// Usage:
//
//	mdgperf                          compare a fresh run against PERF_baseline.json
//	mdgperf -k 3                     median of 3 fresh runs (sheds scheduler spikes)
//	mdgperf -update                  regenerate the baseline from a fresh run
//	mdgperf -current run.json        compare a pre-recorded artifact instead of running
//	mdgperf -phase-tol 3.0           loosen the wall-time band (CI runners are noisy)
//
// Exit codes, matching mdgcov/mdgescape: 0 pass, 1 regression, 2
// missing baseline or operational error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"mobicol/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baselinePath = flag.String("baseline", "PERF_baseline.json", "committed baseline artifact")
		update       = flag.Bool("update", false, "regenerate the baseline from the current measurement instead of comparing")
		currentPath  = flag.String("current", "", "compare this pre-recorded artifact instead of running the benchmark")
		k            = flag.Int("k", 1, "fresh runs to take the median of")
		trials       = flag.Int("trials", 5, "trials per algorithm (must match the baseline)")
		seed         = flag.Uint64("seed", 1, "base deployment seed (must match the baseline)")
		n            = flag.Int("n", 100, "sensors per deployment (must match the baseline)")
		workers      = flag.Int("workers", 1, "worker pool size for the measurement run (0 = one per CPU)")
		phaseTol     = flag.Float64("phase-tol", 0, "relative phase_ns tolerance (0 = default 0.5)")
		bytesTol     = flag.Float64("bytes-tol", 0, "relative bytes_per_op tolerance (0 = default 0.2)")
		noiseNs      = flag.Int64("noise-ns", -1, "absolute per-phase slack in ns (-1 = default 5ms)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mdgperf [flags]\n\nRatchets the planner benchmark against %s.\n", *baselinePath)
		flag.PrintDefaults()
	}
	flag.Parse()

	pol := bench.DefaultPerfPolicy()
	if *phaseTol > 0 {
		pol.PhaseTol = *phaseTol
	}
	if *bytesTol > 0 {
		pol.BytesTol = *bytesTol
	}
	if *noiseNs >= 0 {
		pol.MinPhaseNs = *noiseNs
	}

	cur, err := measure(*currentPath, *k, bench.Config{Trials: *trials, Seed: *seed, BenchN: *n, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgperf:", err)
		return 2
	}

	if *update {
		if err := writeArtifact(*baselinePath, cur); err != nil {
			fmt.Fprintln(os.Stderr, "mdgperf:", err)
			return 2
		}
		fmt.Printf("mdgperf: wrote baseline for %d algorithm(s) to %s\n", len(cur.Algos), *baselinePath)
		return 0
	}

	base, err := readArtifact(*baselinePath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "mdgperf: no baseline at %s (run mdgperf -update to create it)\n", *baselinePath)
		} else {
			fmt.Fprintln(os.Stderr, "mdgperf:", err)
		}
		return 2
	}

	if bad := bench.ComparePerf(base, cur, pol); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "mdgperf: %s\n", b)
		}
		fmt.Fprintf(os.Stderr, "mdgperf: %d regression(s) against %s\n", len(bad), *baselinePath)
		return 1
	}
	fmt.Printf("mdgperf: %d algorithm(s) hold against %s\n", len(cur.Algos), *baselinePath)
	return 0
}

// measure obtains the current result: a pre-recorded artifact when
// -current is set, otherwise the median of k fresh benchmark runs.
func measure(currentPath string, k int, cfg bench.Config) (*bench.PlannerBenchResult, error) {
	if currentPath != "" {
		return readArtifact(currentPath)
	}
	if k < 1 {
		k = 1
	}
	runs := make([]*bench.PlannerBenchResult, 0, k)
	for i := 0; i < k; i++ {
		res, err := bench.PlannerBenchmarks(cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, res)
	}
	return bench.MedianPerf(runs)
}

func readArtifact(path string) (*bench.PlannerBenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer f.Close()
	return bench.ReadPlannerBench(f)
}

func writeArtifact(path string, res *bench.PlannerBenchResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteBenchResult(f, res); err != nil {
		_ = f.Close() // already failing; the write error is the one to report
		return err
	}
	// Close errors on the output file are real data loss: report them.
	return f.Close()
}
