// mdglife simulates network lifetime and per-round latency for a
// deployment under each data-gathering scheme.
//
// Usage:
//
//	wsngen -n 200 | mdglife
//	mdglife -net net.json -battery 0.05 -tracks 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"mobicol/internal/baselines"
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/routing"
	"mobicol/internal/shdgp"
	"mobicol/internal/sim"
	"mobicol/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mdglife: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		netPath = flag.String("net", "-", "deployment JSON (wsngen output), or - for stdin")
		battery = flag.Float64("battery", 0.05, "initial battery energy per sensor (J)")
		tracks  = flag.Int("tracks", 2, "tracks for the straight-line baseline")
		speed   = flag.Float64("speed", 1, "collector speed (m/s)")
		relay   = flag.Float64("relay", 0.005, "per-hop relay delay (s)")
		horizon = flag.Int("horizon", 5_000_000, "maximum simulated rounds")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *netPath != "-" {
		f, err := os.Open(*netPath)
		if err != nil {
			return err
		}
		//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
		defer f.Close()
		in = f
	}
	nw, err := wsn.ReadJSON(in)
	if err != nil {
		return err
	}

	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		return err
	}
	claPlan, err := baselines.PlanCLA(nw)
	if err != nil {
		return err
	}
	slPlan, err := baselines.PlanStraightLine(nw, *tracks)
	if err != nil {
		return err
	}
	schemes := []sim.Scheme{
		sim.NewMobile("shdg", nw, sol.Plan),
		sim.NewCLA(nw, claPlan),
		sim.NewStraightLine(slPlan),
		sim.NewStatic(routing.BuildPlan(nw)),
	}

	model := energy.DefaultModel()
	model.InitialJ = *battery
	spec := collector.Spec{Speed: *speed, UploadTime: 0.1}

	fmt.Printf("network: %v, battery %.3f J\n\n", nw, *battery)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tlifetime(rounds)\tcoverage\tround latency(s)\ttour(m)\tresidual std(J)")
	for _, s := range schemes {
		res, err := sim.RunLifetime(s, nw.N(), model, *horizon)
		if err != nil {
			return err
		}
		lat := sim.MeasureLatency(s, spec, *relay)
		life := fmt.Sprintf("%d", res.Rounds)
		if !res.Died {
			life = fmt.Sprintf(">%d", res.Rounds)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.1f\t%.5f\n",
			s.Name(), life, s.Coverage(), lat.Seconds, lat.TourM, res.Residual.Std)
	}
	return tw.Flush()
}
