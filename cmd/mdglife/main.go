// mdglife simulates network lifetime and per-round latency for a
// deployment under each data-gathering scheme.
//
// Usage:
//
//	wsngen -n 200 | mdglife
//	mdglife -net net.json -battery 0.05 -tracks 3
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"mobicol/internal/baselines"
	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/engine"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/obs/report"
	"mobicol/internal/par"
	"mobicol/internal/routing"
	"mobicol/internal/sim"
	"mobicol/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mdglife: %v\n", err)
		os.Exit(1)
	}
}

// residualPercentiles buckets the final per-node residual energies on a
// fine fraction-of-battery ladder (the same shape the "sim.residual_j"
// trace histogram uses, just 4x finer) and reads p50/p90/p99 back via
// the registry's quantile estimator. Low percentiles near empty mean
// the scheme drains some sensors flat even when the mean looks healthy.
func residualPercentiles(residual []energy.Joules, battery float64) (p50, p90, p99 float64) {
	r := obs.NewRegistry()
	h := r.Histogram("residual", obs.LinearBuckets(0, battery/32, 32))
	for _, e := range residual {
		//mdglint:ignore unitcheck obs boundary: histogram samples carry raw numbers
		h.Observe(float64(e))
	}
	return h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
}

func run() error {
	var (
		netPath = flag.String("net", "-", "deployment JSON (wsngen output), or - for stdin")
		battery = flag.Float64("battery", 0.05, "initial battery energy per sensor (J)")
		tracks  = flag.Int("tracks", 2, "tracks for the straight-line baseline")
		speed   = flag.Float64("speed", 1, "collector speed (m/s)")
		relay   = flag.Float64("relay", 0.005, "per-hop relay delay (s)")
		horizon = flag.Int("horizon", 5_000_000, "maximum simulated rounds")
		trace   = flag.String("trace", "", "write a JSONL span/metric trace to this path")
		metrics = flag.Bool("metrics", false, "print a span/metric summary table to stderr")
		workers = flag.Int("workers", 0, "planner worker pool size (0 = one per CPU, 1 = sequential; the plan is identical either way)")
		doCheck = flag.Bool("check", false, "verify plans and energy ledgers against the invariant oracles; fail loudly on violation")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	prof, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "mdglife: %v\n", err)
		}
	}()
	tr, finishTrace, err := obs.CLITrace(*trace, *metrics)
	if err != nil {
		return err
	}
	defer func() {
		if err := finishTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "mdglife: %v\n", err)
		}
		if *metrics {
			if err := report.Write(os.Stderr, tr); err != nil {
				fmt.Fprintf(os.Stderr, "mdglife: %v\n", err)
			}
		}
	}()

	var in io.Reader = os.Stdin
	if *netPath != "-" {
		f, err := os.Open(*netPath)
		if err != nil {
			return err
		}
		//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
		defer f.Close()
		in = f
	}
	nw, err := wsn.ReadJSON(in)
	if err != nil {
		return err
	}

	sc := engine.Scenario{Net: nw}
	shdg, err := engine.Select("shdg")
	if err != nil {
		return err
	}
	shdgPl, shdgSt, err := shdg.Plan(context.Background(), sc,
		engine.Options{Pool: par.Workers(*workers), Obs: tr})
	if err != nil {
		return err
	}
	cla, err := engine.Select("cla")
	if err != nil {
		return err
	}
	// The CLA baseline runs untraced: the lifetime trace's planning spans
	// belong to the headline shdg planner only.
	claPl, _, err := cla.Plan(context.Background(), sc, engine.Options{})
	if err != nil {
		return err
	}
	// The straight-line baseline is a multi-hop relay structure, not a
	// tour plan, so it stays outside the engine seam.
	slPlan, err := baselines.PlanStraightLine(nw, *tracks)
	if err != nil {
		return err
	}
	if *doCheck {
		if err := check.Plan(nw, shdgPl.Tour, check.Options{}); err != nil {
			return fmt.Errorf("shdg: %w", err)
		}
		if err := check.RecordedLength(shdgPl.Tour, shdgSt.Length); err != nil {
			return fmt.Errorf("shdg: %w", err)
		}
		if err := check.Plan(nw, claPl.Tour, check.Options{UploadDist: claPl.UploadDist}); err != nil {
			return fmt.Errorf("cla: %w", err)
		}
	}
	schemes := []sim.Scheme{
		sim.NewMobile("shdg", nw, shdgPl.Tour),
		sim.NewCLA(nw, claPl.Tour),
		sim.NewStraightLine(slPlan),
		sim.NewStatic(routing.BuildPlan(nw)),
	}

	model := energy.DefaultModel()
	model.InitialJ = energy.Joules(*battery)
	spec := collector.Spec{Speed: geom.MetersPerSecond(*speed), UploadTime: 0.1}

	fmt.Printf("network: %v, battery %.3f J\n\n", nw, *battery)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tlifetime(rounds)\tcoverage\tround latency(s)\ttour(m)\tresidual std(J)\tresidual p50/p90/p99(J)")
	for _, s := range schemes {
		res, err := sim.RunLifetimeObs(s, nw.N(), model, *horizon, tr)
		if err != nil {
			return err
		}
		if *doCheck {
			//mdglint:ignore unitcheck oracle boundary: conservation is checked against the raw round count
			if err := check.Ledger(res.Ledger, int(res.Rounds)); err != nil {
				return fmt.Errorf("%s: %w", s.Name(), err)
			}
		}
		lat := sim.MeasureLatency(s, spec, *relay)
		life := fmt.Sprintf("%d", res.Rounds)
		if !res.Died {
			life = fmt.Sprintf(">%d", res.Rounds)
		}
		p50, p90, p99 := residualPercentiles(res.Ledger.Residual, *battery)
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.1f\t%.5f\t%.5f/%.5f/%.5f\n",
			s.Name(), life, s.Coverage(), lat.Seconds, lat.TourM, res.Residual.Std, p50, p90, p99)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if *doCheck {
		fmt.Printf("\ncheck: ok (plan invariants + energy conservation, all schemes)\n")
	}

	// One packet-granularity DES round over the planned tour: buffer
	// occupancy at the busiest stop is the paper's motivation for
	// bounding sensors per stop, and it reads straight off the trace.
	desSpan := tr.Start("des")
	rt, err := sim.DESMobileRoundObs(nw, shdgPl.Tour, spec, desSpan)
	desSpan.End()
	if err != nil {
		return err
	}
	fmt.Printf("\ndes round (shdg): finish %.1f s, peak stop buffer %d packets\n",
		rt.Finish, rt.MaxQueue())
	return nil
}
