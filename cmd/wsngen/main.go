// wsngen generates a random sensor deployment and writes it as JSON.
//
// Usage:
//
//	wsngen -n 200 -side 200 -range 30 -seed 1 -placement uniform -o net.json
//
// The output feeds cmd/mdgplan and cmd/mdglife. With -o "-" (the default)
// the JSON goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"mobicol/internal/obstacle"
	"mobicol/internal/wsn"
)

func main() {
	var (
		n         = flag.Int("n", 200, "number of sensors")
		side      = flag.Float64("side", 200, "field side in metres")
		rng       = flag.Float64("range", 30, "transmission range in metres")
		seed      = flag.Uint64("seed", 1, "deployment seed")
		placement = flag.String("placement", "uniform", "uniform|grid-jitter|clustered|ring|corridor")
		clusters  = flag.Int("clusters", 5, "cluster count for -placement clustered")
		corner    = flag.Bool("sink-corner", false, "place the sink at the field corner instead of the centre")
		obstPath  = flag.String("obstacles", "", "obstacle course JSON; sensors deploy outside the obstacles")
		out       = flag.String("o", "-", "output path, or - for stdout")
	)
	flag.Parse()

	var pl wsn.Placement
	switch *placement {
	case "uniform":
		pl = wsn.Uniform
	case "grid-jitter":
		pl = wsn.GridJitter
	case "clustered":
		pl = wsn.Clustered
	case "ring":
		pl = wsn.Ring
	case "corridor":
		pl = wsn.Corridor
	default:
		fmt.Fprintf(os.Stderr, "wsngen: unknown placement %q\n", *placement)
		os.Exit(2)
	}
	cfg := wsn.Config{
		N: *n, FieldSide: *side, Range: *rng, Seed: *seed,
		Placement: pl, Clusters: *clusters, SinkAtCorner: *corner,
	}
	var nw *wsn.Network
	var err error
	if *obstPath != "" {
		f, err := os.Open(*obstPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
			os.Exit(1)
		}
		course, err := obstacle.ReadJSON(f)
		// The file was only read; a close failure cannot lose data.
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
			os.Exit(1)
		}
		nw, err = obstacle.DeployAround(cfg, course)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
			os.Exit(1)
		}
	} else {
		nw, err = wsn.Deploy(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	if err := nw.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
		os.Exit(1)
	}
	if w != os.Stdout {
		// Close errors on the output file are real data loss: report them.
		if err := w.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "wsngen: %v, avg degree %.1f, %d component(s)\n",
		nw, nw.AvgDegree(), len(nw.Components()))
}
