// wsngen generates a random sensor deployment and writes it as JSON.
//
// Usage:
//
//	wsngen -n 200 -side 200 -range 30 -seed 1 -placement uniform -o net.json
//
// The output feeds cmd/mdgplan and cmd/mdglife. With -o "-" (the default)
// the JSON goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"mobicol/internal/obs"
	"mobicol/internal/obs/report"
	"mobicol/internal/obstacle"
	"mobicol/internal/wsn"
)

func main() {
	var (
		n         = flag.Int("n", 200, "number of sensors")
		side      = flag.Float64("side", 200, "field side in metres")
		rng       = flag.Float64("range", 30, "transmission range in metres")
		seed      = flag.Uint64("seed", 1, "deployment seed")
		placement = flag.String("placement", "uniform", "uniform|grid-jitter|clustered|ring|corridor")
		clusters  = flag.Int("clusters", 5, "cluster count for -placement clustered")
		corner    = flag.Bool("sink-corner", false, "place the sink at the field corner instead of the centre")
		obstPath  = flag.String("obstacles", "", "obstacle course JSON; sensors deploy outside the obstacles")
		trace     = flag.String("trace", "", "write a JSONL span/metric trace to this path")
		metrics   = flag.Bool("metrics", false, "print a span/metric summary table to stderr")
		out       = flag.String("o", "-", "output path, or - for stdout")
	)
	flag.Parse()

	var pl wsn.Placement
	switch *placement {
	case "uniform":
		pl = wsn.Uniform
	case "grid-jitter":
		pl = wsn.GridJitter
	case "clustered":
		pl = wsn.Clustered
	case "ring":
		pl = wsn.Ring
	case "corridor":
		pl = wsn.Corridor
	default:
		fmt.Fprintf(os.Stderr, "wsngen: unknown placement %q\n", *placement)
		os.Exit(2)
	}
	cfg := wsn.Config{
		N: *n, FieldSide: *side, Range: *rng, Seed: *seed,
		Placement: pl, Clusters: *clusters, SinkAtCorner: *corner,
	}
	if err := run(cfg, *placement, *obstPath, *trace, *metrics, *out); err != nil {
		fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg wsn.Config, placement, obstPath, trace string, metrics bool, out string) error {
	tr, finishTrace, err := obs.CLITrace(trace, metrics)
	if err != nil {
		return err
	}
	defer func() {
		if err := finishTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
		}
		if metrics {
			if err := report.Write(os.Stderr, tr); err != nil {
				fmt.Fprintf(os.Stderr, "wsngen: %v\n", err)
			}
		}
	}()

	sp := tr.Start("deploy")
	defer sp.End()
	sp.SetInt("n", int64(cfg.N))
	sp.SetInt("seed", int64(cfg.Seed))
	sp.SetStr("placement", placement)

	var nw *wsn.Network
	if obstPath != "" {
		f, err := os.Open(obstPath)
		if err != nil {
			return err
		}
		course, err := obstacle.ReadJSON(f)
		// The file was only read; a close failure cannot lose data.
		_ = f.Close()
		if err != nil {
			return err
		}
		sp.SetInt("obstacles", int64(len(course.Obstacles)))
		nw, err = obstacle.DeployAround(cfg, course)
		if err != nil {
			return err
		}
	} else {
		nw, err = wsn.Deploy(cfg)
		if err != nil {
			return err
		}
	}
	components := len(nw.Components())
	sp.SetInt("components", int64(components))
	sp.Gauge("wsn.avg_degree", nw.AvgDegree())
	sp.Gauge("wsn.side_m", cfg.FieldSide)
	sp.End()

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		w = f
	}
	if err := nw.WriteJSON(w); err != nil {
		return err
	}
	if w != os.Stdout {
		// Close errors on the output file are real data loss: report them.
		if err := w.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wsngen: %v, avg degree %.1f, %d component(s)\n",
		nw, nw.AvgDegree(), components)
	return nil
}
