// mdgplan plans a mobile data-gathering tour for a deployment.
//
// Usage:
//
//	wsngen -n 200 | mdgplan -algo shdg
//	mdgplan -net net.json -algo exact -svg tour.svg
//	mdgplan -net net.json -algo shdg -k 3      # split across 3 collectors
//
// Algorithms come from the engine registry: shdg (heuristic planner,
// default), exact (small instances), visit-all (tour over every sensor),
// sweep (SPT-preorder ablation), cla (covering-line baseline), warm
// (repair a previous plan; -warm-start selects it implicitly).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/cover"
	"mobicol/internal/engine"
	"mobicol/internal/geom"
	"mobicol/internal/mtsp"
	"mobicol/internal/obs"
	"mobicol/internal/obs/report"
	"mobicol/internal/obstacle"
	"mobicol/internal/par"
	"mobicol/internal/tsp"
	"mobicol/internal/viz"
	"mobicol/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mdgplan: %v\n", err)
		var unknown *engine.UnknownPlannerError
		if errors.As(err, &unknown) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		netPath    = flag.String("net", "-", "deployment JSON (wsngen output), or - for stdin")
		algo       = flag.String("algo", "shdg", "planning algorithm (a registered engine name: shdg, exact, visit-all, sweep, cla, warm)")
		candidates = flag.String("candidates", "sites", "sites|grid|intersections (shdg/exact)")
		gridStep   = flag.Float64("grid", 20, "grid spacing for -candidates grid")
		k          = flag.Int("k", 1, "number of collectors (>1 splits the tour)")
		bound      = flag.Float64("bound", 0, "per-collector tour bound in metres (0 = none)")
		svgPath    = flag.String("svg", "", "write an SVG rendering to this path")
		speed      = flag.Float64("speed", 1, "collector speed in m/s (latency report)")
		obstPath   = flag.String("obstacles", "", "obstacle course JSON; plans the driven path around them")
		jsonPath   = flag.String("json", "", "write the executable plan (stops + assignment) as JSON")
		tracePath  = flag.String("trace", "", "write a JSONL span/metric trace to this path")
		metrics    = flag.Bool("metrics", false, "print a span/metric summary table to stderr")
		workers    = flag.Int("workers", 0, "planner worker pool size (0 = one per CPU, 1 = sequential; the plan is identical either way)")
		warmStart  = flag.String("warm-start", "", "previous plan JSON (mdgplan -json output); repair it for the new deployment instead of planning cold")
		doCheck    = flag.Bool("check", false, "verify the plan against the single-hop invariants and fail loudly on violation")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf    = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	// Resolve the planner before touching any input so an unknown -algo
	// is a pure usage error (exit 2) that lists the registry.
	plannerName := *algo
	if *warmStart != "" {
		plannerName = "warm"
	}
	planner, err := engine.Select(plannerName)
	if err != nil {
		return err
	}

	prof, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "mdgplan: %v\n", err)
		}
	}()
	tr, finishTrace, err := obs.CLITrace(*tracePath, *metrics)
	if err != nil {
		return err
	}
	defer func() {
		if err := finishTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "mdgplan: %v\n", err)
		}
		if *metrics {
			if err := report.Write(os.Stderr, tr); err != nil {
				fmt.Fprintf(os.Stderr, "mdgplan: %v\n", err)
			}
		}
	}()

	var in io.Reader = os.Stdin
	if *netPath != "-" {
		f, err := os.Open(*netPath)
		if err != nil {
			return err
		}
		//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
		defer f.Close()
		in = f
	}
	nw, err := wsn.ReadJSON(in)
	if err != nil {
		return err
	}

	if *obstPath != "" {
		return runObstacles(nw, *obstPath, *svgPath, *speed)
	}

	engOpts := engine.Options{Pool: par.Workers(*workers), Obs: tr, GridSpacing: *gridStep}
	switch *candidates {
	case "sites":
		engOpts.Strategy = cover.SensorSites
	case "grid":
		engOpts.Strategy = cover.FieldGrid
	case "intersections":
		engOpts.Strategy = cover.Intersections
	default:
		return fmt.Errorf("unknown candidate strategy %q", *candidates)
	}

	sc := engine.Scenario{Net: nw}
	if *warmStart != "" {
		prev, err := readPrevPlan(*warmStart)
		if err != nil {
			return err
		}
		sc.Prev = prev
	}
	pl, st, err := planner.Plan(context.Background(), sc, engOpts)
	if err != nil {
		return err
	}
	plan, label := pl.Tour, pl.Algorithm
	if plannerName == "exact" && !st.Exact {
		fmt.Fprintln(os.Stderr, "mdgplan: warning: node cap tripped; solution may be suboptimal")
	}
	if st.Warm != nil {
		fmt.Printf("warm-start: kept %d, rehomed %d, recovered %d (+%d stops, -%d ejected, %d tour moves)\n",
			st.Warm.Kept, st.Warm.Rehomed, st.Warm.Recovered, st.Warm.NewStops, st.Warm.Ejected, st.Warm.Moves)
	}

	if *doCheck {
		// Planners whose recorded stops are not the physical upload
		// points (CLA) carry their true upload distance on the plan.
		if err := check.Plan(nw, plan, check.Options{UploadDist: pl.UploadDist}); err != nil {
			return err
		}
		if err := check.RecordedLength(plan, st.Length); err != nil {
			return err
		}
	}

	spec := collector.Spec{Speed: geom.MetersPerSecond(*speed), UploadTime: 0.1}
	fmt.Printf("network:    %v\n", nw)
	fmt.Printf("algorithm:  %s\n", label)
	if st.Cover != nil {
		fmt.Printf("candidates: %d (%s strategy, %d sensors)\n",
			st.Cover.Candidates, engOpts.Strategy, st.Cover.Universe)
		fmt.Printf("cover:      %d stops selected (%d after refinement), max %d sensors/stop\n",
			st.Cover.CoverStops, len(plan.Stops), st.Cover.MaxSensorsPerStop)
	}
	fmt.Printf("stops:      %d\n", len(plan.Stops))
	fmt.Printf("tour:       %.1f m\n", plan.Length())
	fmt.Printf("served:     %d/%d sensors\n", plan.Served(), nw.N())
	fmt.Printf("round time: %.1f s at %.1f m/s\n", plan.RoundTime(spec), *speed)
	if *doCheck {
		fmt.Printf("check:      ok (single-hop coverage, sink anchor, finite geometry)\n")
	}

	if *k > 1 || *bound > 0 {
		var mp *mtsp.MultiPlan
		if *bound > 0 {
			mp, err = mtsp.MinCollectors(nw.Sink, plan.Stops, *bound, tsp.DefaultOptions())
		} else {
			mp, err = mtsp.MinMaxSplit(nw.Sink, plan.Stops, *k, tsp.DefaultOptions())
		}
		if err != nil {
			return err
		}
		fmt.Printf("collectors: %d\n", mp.K())
		for i, l := range mp.Lengths() {
			fmt.Printf("  sub-tour %d: %.1f m (%d stops)\n", i+1, l, len(mp.Tours[i]))
		}
		fmt.Printf("max sub-tour: %.1f m (round time %.1f s)\n",
			mp.MaxLength(), mp.MaxLength()/(*speed))
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		if err := viz.RenderTour(f, nw, plan, viz.DefaultStyle()); err != nil {
			_ = f.Close() // already failing; the render error is the one to report
			return err
		}
		// Close errors on the output file are real data loss: report them.
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("svg:        %s\n", *svgPath)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		if err := plan.WriteJSON(f); err != nil {
			_ = f.Close() // already failing; the write error is the one to report
			return err
		}
		// Close errors on the output file are real data loss: report them.
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("json:       %s\n", *jsonPath)
	}
	return nil
}

// readPrevPlan loads a previous plan (mdgplan -json output) for the warm
// planner; sensors match positionally (stable ordering across saves).
func readPrevPlan(path string) (*collector.TourPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer f.Close()
	return collector.ReadPlanJSON(f)
}

// runObstacles handles the -obstacles mode: obstacle-aware planning with
// its own reporting and rendering.
func runObstacles(nw *wsn.Network, obstPath, svgPath string, speed float64) error {
	f, err := os.Open(obstPath)
	if err != nil {
		return err
	}
	//mdglint:ignore errcheck input file is read-only; a close failure cannot lose data
	defer f.Close()
	course, err := obstacle.ReadJSON(f)
	if err != nil {
		return err
	}
	tour, err := obstacle.PlanTour(nw, course)
	if err != nil {
		return err
	}
	fmt.Printf("network:    %v\n", nw)
	fmt.Printf("obstacles:  %d\n", len(course.Obstacles))
	fmt.Printf("stops:      %d\n", len(tour.Stops))
	fmt.Printf("euclidean:  %.1f m\n", tour.Euclidean)
	fmt.Printf("driven:     %.1f m (detour %.3fx, %d waypoints)\n",
		tour.Length, tour.DetourFactor(), len(tour.Waypoints))
	fmt.Printf("round time: %.1f s at %.1f m/s\n", tour.Length/speed, speed)
	if svgPath != "" {
		out, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := viz.RenderObstacleTour(out, nw, course, tour, viz.DefaultStyle()); err != nil {
			_ = out.Close() // already failing; the render error is the one to report
			return err
		}
		// Close errors on the output file are real data loss: report them.
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("svg:        %s\n", svgPath)
	}
	return nil
}
