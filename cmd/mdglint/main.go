// Command mdglint runs the repository's static-analysis suite: the
// determinism, floateq, nopanic, errcheck, and globalvar analyzers from
// internal/lint over every package in the module.
//
// Usage:
//
//	go run ./cmd/mdglint ./...
//
// Any package-pattern arguments are accepted for familiarity but the tool
// always lints the whole module containing the working directory — the
// quality gate is all-or-nothing. It prints one `file:line: analyzer:
// message` per finding and exits 1 when any survive their suppressions
// (`//mdglint:ignore <analyzer> <reason>`), 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"mobicol/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mdglint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Lints the whole module around the working directory.\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdglint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdglint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "mdglint: %d finding(s) across %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}
