// Command mdglint runs the repository's static-analysis suite: the
// determinism, floateq, nopanic, errcheck, globalvar, unitcheck,
// loopcapture, convcheck, alloccheck, parpure, purecheck, ctxflow, and
// errflow analyzers from internal/lint over every package in the
// module.
//
// Usage:
//
//	go run ./cmd/mdglint ./...
//
// Any package-pattern arguments are accepted for familiarity but the tool
// always lints the whole module containing the working directory — the
// quality gate is all-or-nothing. -run narrows the suite to a
// comma-separated list of analyzer names (see -list) for a focused
// audit, e.g. `-run purecheck,ctxflow,errflow` for the dataflow gate.
// It prints one `file:line: analyzer: message` per finding (or, with
// -json, one JSON object per line with file, line, analyzer, and
// message fields for CI annotation), globally ordered by (file, line,
// analyzer), and exits 1 when any survive their suppressions
// (`//mdglint:ignore <analyzer> <reason>`), 2 on load errors. Parse and
// type-check diagnostics surface as findings from the pseudo-analyzer
// "load" and fail the gate like any other finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mobicol/internal/lint"
)

// jsonFinding is the stable one-line-per-finding CI format.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit one JSON object per finding instead of file:line text")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mdglint [-list] [-json] [-run a,b,...] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Lints the whole module around the working directory.\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *run != "" {
		byName := make(map[string]*lint.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "mdglint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdglint:", err)
		os.Exit(2)
	}
	pkgs, diags, err := lint.LoadModule(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdglint:", err)
		os.Exit(2)
	}
	// Load diagnostics and analyzer findings interleave; re-sort so the
	// emitted order is globally stable by (file, line, analyzer) no
	// matter which side produced a finding.
	findings := append(diags, lint.Run(pkgs, analyzers)...)
	lint.SortFindings(findings)
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "mdglint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "mdglint: %d finding(s) across %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}
