// mdgbench regenerates the paper-reproduction experiment tables E1–E13
// documented in DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	mdgbench               # every experiment at the default 30 trials
//	mdgbench -e E2,E6      # selected experiments
//	mdgbench -trials 500   # paper-scale averaging (slow)
//	mdgbench -e E2 -csv    # machine-readable output for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobicol/internal/bench"
)

func main() {
	var (
		exps   = flag.String("e", "all", "comma-separated experiment IDs (E1..E13) or all")
		trials = flag.Int("trials", 30, "random topologies per parameter point (paper: 500)")
		seed   = flag.Uint64("seed", 1, "base seed")
		asCSV  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	cfg := bench.Config{Trials: *trials, Seed: *seed}

	var ids []string
	if *exps == "all" {
		ids = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			ids = append(ids, strings.TrimSpace(strings.ToUpper(id)))
		}
	}
	for _, id := range ids {
		run, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdgbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		tbl, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdgbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		render := tbl.Render
		if *asCSV {
			render = tbl.WriteCSV
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mdgbench: %v\n", err)
			os.Exit(1)
		}
	}
}
