// mdgbench regenerates the paper-reproduction experiment tables E1–E13
// documented in DESIGN.md and EXPERIMENTS.md, and maintains the repo's
// benchmark trajectory files.
//
// Usage:
//
//	mdgbench               # every experiment at the default 30 trials
//	mdgbench -e E2,E6      # selected experiments
//	mdgbench -trials 500   # paper-scale averaging (slow)
//	mdgbench -e E2 -csv    # machine-readable output for plotting
//	mdgbench -e none -bench-out BENCH_planner.json
//	                       # refresh the planner benchmark artifact only
//	mdgbench -e none -bench-out BENCH_planner.json -scale default -warm-start
//	                       # include the n=10k/100k scale rows with
//	                       # warm-start repair columns
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobicol/internal/bench"
	"mobicol/internal/engine"
	"mobicol/internal/obs"
)

func main() {
	var (
		exps     = flag.String("e", "all", "comma-separated experiment IDs (E1..E16), all, or none")
		algoList = flag.String("algo", "", "comma-separated engine planner names for the -bench-out rows (default shdg,visit-all,cla)")
		trials   = flag.Int("trials", 30, "random topologies per parameter point (paper: 500)")
		seed     = flag.Uint64("seed", 1, "base seed")
		workers  = flag.Int("workers", 0, "worker pool size for per-trial fan-out (0 = one per CPU, 1 = sequential; results are identical either way)")
		benchN   = flag.Int("bench-n", 0, "deployment size for the -bench-out planner benchmark (0 = default 100; field side scales to hold density)")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		benchOut = flag.String("bench-out", "", "write the planner benchmark (per-algo tour + per-phase durations) as JSON to this path")
		scale    = flag.String("scale", "", "comma-separated large-n sizes for single-trial scale rows in -bench-out (e.g. 10000,100000; default = the standard sizes when the flag is set empty via -scale default)")
		warm     = flag.Bool("warm-start", false, "add warm-start repair columns (repair time, speedup, quality ratio after a ~1% delta) to the shdg scale rows")
		doCheck  = flag.Bool("check", false, "verify every harness-produced plan against the invariant oracles; abort on violation")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()
	cfg := bench.Config{Trials: *trials, Seed: *seed, Workers: *workers, BenchN: *benchN, Check: *doCheck, WarmStart: *warm}
	if *algoList != "" {
		for _, name := range strings.Split(*algoList, ",") {
			name = strings.TrimSpace(name)
			if _, err := engine.Select(name); err != nil {
				fmt.Fprintf(os.Stderr, "mdgbench: %v\n", err)
				os.Exit(2)
			}
			cfg.Algos = append(cfg.Algos, name)
		}
	}
	if *scale != "" {
		sizes, err := parseSizes(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdgbench: -scale: %v\n", err)
			os.Exit(2)
		}
		cfg.ScaleSizes = sizes
	}

	prof, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdgbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "mdgbench: %v\n", err)
		}
	}()

	if *benchOut != "" {
		if err := writeBenchArtifact(*benchOut, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "mdgbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mdgbench: wrote %s\n", *benchOut)
	}

	var ids []string
	switch *exps {
	case "all":
		ids = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
	case "none":
		// -bench-out without experiment tables.
	default:
		for _, id := range strings.Split(*exps, ",") {
			ids = append(ids, strings.TrimSpace(strings.ToUpper(id)))
		}
	}
	for _, id := range ids {
		run, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdgbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		tbl, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdgbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		render := tbl.Render
		if *asCSV {
			render = tbl.WriteCSV
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mdgbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseSizes parses the -scale size list; "default" selects the standard
// scale sizes (10k and 100k).
func parseSizes(s string) ([]int, error) {
	if s == "default" {
		return bench.ScaleSizes(), nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// writeBenchArtifact writes the planner benchmark JSON to path.
func writeBenchArtifact(path string, cfg bench.Config) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WritePlannerBench(f, cfg); err != nil {
		_ = f.Close() // already failing; the bench error is the one to report
		return err
	}
	// Close errors on the output file are real data loss: report them.
	return f.Close()
}
