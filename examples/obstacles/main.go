// Obstacle-aware planning: buildings and terrain block the collector's
// movement but not its radio. The planner picks stops as usual, then
// threads the driving path around the obstacles via a visibility graph —
// the trajectory-planning concern the authors' SenCar system raises.
package main

import (
	"fmt"
	"log"
	"os"

	"mobicol"
)

func main() {
	// Three buildings on a 200 m campus.
	course, err := mobicol.NewObstacleCourse(
		mobicol.RectObstacle(mobicol.Pt(60, 55), mobicol.Pt(95, 90)),
		mobicol.RectObstacle(mobicol.Pt(115, 110), mobicol.Pt(150, 145)),
		mobicol.RectObstacle(mobicol.Pt(30, 130), mobicol.Pt(60, 160)),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Sensors deploy around the buildings (nobody mounts a sensor inside).
	nw, err := mobicol.DeployAroundObstacles(
		mobicol.DeployConfig{N: 150, FieldSide: 200, Range: 30, Seed: 33}, course)
	if err != nil {
		log.Fatal(err)
	}

	tour, err := mobicol.PlanTourAround(nw, course)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stops:        %d polling points\n", len(tour.Stops))
	fmt.Printf("euclidean:    %.0f m (if the collector could drive through walls)\n", tour.Euclidean)
	fmt.Printf("driven:       %.0f m along %d waypoints\n", tour.Length, len(tour.Waypoints))
	fmt.Printf("detour:       %.2fx\n", tour.DetourFactor())

	served := 0
	for _, s := range tour.UploadAt {
		if s >= 0 {
			served++
		}
	}
	fmt.Printf("coverage:     %d/%d sensors within one hop of a stop\n", served, nw.N())

	spec := mobicol.DefaultCollectorSpec()
	fmt.Printf("round time:   %.1f min at %.1f m/s\n", mobicol.Meters(tour.Length).TravelTime(spec.Speed)/60, spec.Speed)

	if len(os.Args) > 1 && os.Args[1] == "-svg" {
		fmt.Println("\n(render with cmd/mdgplan -svg for the no-obstacle case;")
		fmt.Println(" internal/viz.RenderObstacleTour draws this tour in library use)")
	}
}
