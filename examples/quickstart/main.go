// Quickstart: deploy a sensor field, plan a single-hop data-gathering
// tour, and compare it with the naive visit-every-sensor tour — the
// paper's motivating contrast.
package main

import (
	"fmt"
	"log"

	"mobicol"
)

func main() {
	// 200 sensors scattered uniformly over a 200 m × 200 m field, sink at
	// the centre, 30 m transmission range — the paper's canonical setup.
	nw, err := mobicol.Deploy(mobicol.DeployConfig{
		N: 200, FieldSide: 200, Range: 30, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(nw)

	// Plan the SHDGP tour: stops are chosen so every sensor uploads in a
	// single hop, and the tour over the stops is locally optimised.
	sol, err := mobicol.PlanTour(nw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SHDG plan:  %d polling points, tour %.1f m\n", sol.Stops(), sol.Length)

	// The d=0 extreme: drive to every sensor individually.
	all, err := mobicol.PlanVisitAll(nw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visit-all:  %d stops, tour %.1f m\n", all.Stops(), all.Length)
	fmt.Printf("saving:     %.0f%% shorter tour with identical single-hop uploads\n",
		100*(1-sol.Length/all.Length))

	// Latency at the paper's 1 m/s collector speed.
	spec := mobicol.DefaultCollectorSpec()
	fmt.Printf("round time: %.1f min (vs %.1f min visiting every sensor)\n",
		sol.Plan.RoundTime(spec)/60, all.Plan.RoundTime(spec)/60)

	// Every sensor gets a stop within range — verify the core guarantee.
	if err := sol.Validate(mobicol.NewProblem(nw)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("validated: every sensor within one hop of its stop")
}
