// Buffer-bounded planning: polling points hold their sensors' packets
// until the collector arrives, so each stop's affiliation is limited by
// its packet buffer. This example sweeps the capacity and shows the
// tour-length price of small buffers, verified against a packet-level
// replay of the round.
package main

import (
	"fmt"
	"log"

	"mobicol"
)

func main() {
	nw, err := mobicol.Deploy(mobicol.DeployConfig{
		N: 150, FieldSide: 200, Range: 30, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := mobicol.DefaultCollectorSpec()

	// Unconstrained plan first: how big do the buffers actually get?
	free, err := mobicol.PlanTour(nw)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := mobicol.SimulateMobileRound(nw, free.Plan, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconstrained: %d stops, %.0f m tour, largest stop buffers %d packets\n\n",
		free.Stops(), free.Length, trace.MaxQueue())

	fmt.Printf("%-10s %8s %8s %12s\n", "capacity", "stops", "tour(m)", "peak buffer")
	for _, cap := range []int{20, 10, 5, 2, 1} {
		sol, err := mobicol.PlanTourCapacitated(nw, cap)
		if err != nil {
			log.Fatal(err)
		}
		rt, err := mobicol.SimulateMobileRound(nw, sol.Plan, spec)
		if err != nil {
			log.Fatal(err)
		}
		if rt.MaxQueue() > cap {
			log.Fatalf("capacity %d violated: peak buffer %d", cap, rt.MaxQueue())
		}
		fmt.Printf("%-10d %8d %8.0f %12d\n", cap, sol.Stops(), sol.Length, rt.MaxQueue())
	}
	fmt.Println("\ncapacity 1 degenerates to one stop per sensor — the visit-all extreme;")
	fmt.Println("larger buffers buy shorter tours, the tradeoff the planner navigates.")
}
