// Disconnected networks: a clustered deployment too sparse for any
// multi-hop path to the sink. A static sink never hears from the stranded
// clusters; the mobile collector simply drives to them — one of the
// paper's key arguments for mobility.
package main

import (
	"fmt"
	"log"

	"mobicol"
)

func main() {
	// Four sensor clusters spread over a 500 m field with a 25 m range:
	// almost always several disconnected components.
	nw, err := mobicol.Deploy(mobicol.DeployConfig{
		N: 120, FieldSide: 500, Range: 25, Seed: 5,
		Placement: mobicol.Clustered, Clusters: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	comps := nw.Components()
	fmt.Printf("%v\n%d connected component(s)\n\n", nw, len(comps))

	// Static sink: stranded sensors are simply lost.
	static := mobicol.PlanStaticSink(nw)
	fmt.Printf("static sink reaches %.0f%% of sensors (%d stranded)\n",
		100*static.CoverageFraction(), len(static.Disconnected))

	// Straight-line mule: better, but clusters away from the tracks stay
	// dark.
	straight, err := mobicol.PlanStraightLine(nw, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("straight-line mule reaches %.0f%% of sensors\n", 100*straight.CoverageFraction())

	// SHDGP plan: full coverage by construction, whatever the topology.
	sol, err := mobicol.PlanTour(nw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mobile SHDG plan reaches 100%% of sensors with %d stops, tour %.0f m\n",
		sol.Stops(), sol.Length)
	if err := sol.Validate(mobicol.NewProblem(nw)); err != nil {
		log.Fatal(err)
	}

	spec := mobicol.DefaultCollectorSpec()
	fmt.Printf("round time %.1f min at %.1f m/s\n",
		sol.Plan.RoundTime(spec)/60, spec.Speed)
}
