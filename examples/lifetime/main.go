// Lifetime comparison: the paper's headline result. Single-hop mobile
// gathering spreads transmission load perfectly evenly, so the network
// survives far longer than with a static sink, whose sink-adjacent
// sensors burn out relaying everyone else's packets.
package main

import (
	"fmt"
	"log"

	"mobicol"
)

func main() {
	nw, err := mobicol.Deploy(mobicol.DeployConfig{
		N: 200, FieldSide: 200, Range: 30, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := mobicol.PlanTour(nw)
	if err != nil {
		log.Fatal(err)
	}
	static := mobicol.PlanStaticSink(nw)
	straight, err := mobicol.PlanStraightLine(nw, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Small batteries keep the simulation to hundreds of rounds; the
	// ordering is battery-size independent.
	model := mobicol.DefaultEnergyModel()
	model.InitialJ = 0.05

	schemes := []mobicol.Scheme{
		mobicol.MobileScheme("mobile single-hop (SHDG)", nw, sol.Plan),
		mobicol.StraightLineScheme(straight),
		mobicol.StaticScheme(static),
	}
	fmt.Printf("%-28s %10s %10s %14s\n", "scheme", "lifetime", "coverage", "residual std")
	var lifetimes []mobicol.Rounds
	for _, s := range schemes {
		res, err := mobicol.RunLifetime(s, nw.N(), model, 5_000_000)
		if err != nil {
			log.Fatal(err)
		}
		lifetimes = append(lifetimes, res.Rounds)
		fmt.Printf("%-28s %10d %10.2f %14.5f\n", s.Name(), res.Rounds, s.Coverage(), res.Residual.Std)
	}
	fmt.Printf("\nmobile single-hop outlives the static sink by %.1fx\n",
		//mdglint:ignore unitcheck dimensionless ratio of two lifetimes
		float64(lifetimes[0])/float64(lifetimes[2]))

	// The price: per-round latency. Multi-hop relay finishes in
	// milliseconds; the 1 m/s collector needs the whole tour.
	spec := mobicol.DefaultCollectorSpec()
	fmt.Printf("\nper-round latency: mobile %.1f min, static sink %.3f s\n",
		mobicol.RoundLatency(schemes[0], spec, 0.005)/60,
		mobicol.RoundLatency(schemes[2], spec, 0.005))
	fmt.Println("=> the energy/latency tradeoff the paper quantifies")
}
