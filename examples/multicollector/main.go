// Multi-collector planning: a time-constrained monitoring application
// needs every round finished within a deadline, so the gathering tour is
// split across several M-collectors that drive concurrently — the paper's
// answer to strict distance/time constraints.
package main

import (
	"fmt"
	"log"

	"mobicol"
)

func main() {
	// A larger, sparser field: a single collector's tour takes too long.
	nw, err := mobicol.Deploy(mobicol.DeployConfig{
		N: 300, FieldSide: 400, Range: 30, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := mobicol.PlanTour(nw)
	if err != nil {
		log.Fatal(err)
	}
	spec := mobicol.DefaultCollectorSpec()
	fmt.Printf("single collector: %.0f m tour, %.1f min per round\n",
		sol.Length, sol.Plan.RoundTime(spec)/60)

	// Question 1: the application tolerates 15 minutes per round at
	// 1 m/s, i.e. a ~900 m tour bound. How many collectors are needed?
	const boundMetres = 900
	mp, err := mobicol.MinCollectors(nw, sol, boundMetres)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%.0f m bound -> %d collectors:\n", float64(boundMetres), mp.K())
	for i, l := range mp.Lengths() {
		fmt.Printf("  collector %d: %.0f m (%d stops)\n", i+1, l, len(mp.Tours[i]))
	}

	// Question 2: the budget allows exactly 3 collectors. How fast can a
	// round finish?
	split, err := mobicol.SplitTour(nw, sol, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3 collectors -> longest sub-tour %.0f m (%.1f min per round)\n",
		split.MaxLength(), mobicol.Meters(split.MaxLength()).TravelTime(spec.Speed)/60)

	// Turn the split into executable per-collector plans; sensors follow
	// their stop to its collector.
	plans, err := mobicol.SubTourPlans(nw, sol, split)
	if err != nil {
		log.Fatal(err)
	}
	served := 0
	for _, p := range plans {
		served += p.Served()
	}
	fmt.Printf("sub-plans serve %d/%d sensors between them\n", served, nw.N())
}
