// Visit scheduling: sensors generate data continuously and polling points
// buffer it, so the collector must come back before buffers overflow. This
// example sizes the collector (minimum feasible speed), then overloads the
// system and compares the fixed cyclic tour against earliest-deadline-first
// visiting when one polling point runs 20x hot.
package main

import (
	"fmt"
	"log"

	"mobicol"
)

func main() {
	nw, err := mobicol.Deploy(mobicol.DeployConfig{N: 120, FieldSide: 200, Range: 30, Seed: 55})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := mobicol.PlanTour(nw)
	if err != nil {
		log.Fatal(err)
	}
	spec := mobicol.DefaultCollectorSpec()
	period := sol.Plan.RoundTime(spec)
	fmt.Printf("tour: %.0f m, round period %.0f s at %.1f m/s\n\n", sol.Length, period, spec.Speed)

	// Each sensor emits 0.005 packets/s; each stop buffers 40 packets.
	demands := mobicol.StopDemands(sol.Plan, 0.005, 40)
	if v, err := mobicol.MinCollectorSpeed(sol.Plan, demands, spec.UploadTime); err == nil {
		fmt.Printf("minimum feasible cyclic speed: %.2f m/s", v)
		if mobicol.CyclicTourFeasible(sol.Plan, demands, spec) {
			fmt.Println("  (our 1 m/s collector keeps up)")
		} else {
			fmt.Println("  (our 1 m/s collector is too slow: expect loss)")
		}
	}

	// Now one polling point turns hot: a cluster starts reporting 20x as
	// often. Compare visiting policies over eight nominal rounds.
	demands[0].Rate *= 20
	horizon := 8 * period
	for _, policy := range []mobicol.VisitPolicy{mobicol.VisitCyclic, mobicol.VisitEDF} {
		res, err := mobicol.RunSchedule(sol.Plan, demands, spec, policy, horizon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-7s: %4d visits, %.0f m driven, collected %.0f pkts, lost %.0f (%.1f%%)",
			policy, res.Visits, res.Driven, res.Collected, res.Lost, 100*res.LossFraction())
	}
	fmt.Println("\n\ndeadline-driven visiting spends its trips on the hot stop and loses less;")
	fmt.Println("under uniform load the oblivious cycle would win — see experiment E13.")
}
