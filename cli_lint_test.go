package mobicol

// End-to-end tests for the mdglint CLI: the -json finding format is a CI
// interface (one JSON object per line, stable field set), so it gets a
// golden test against a module with known findings.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runLintCLI runs mdglint in dir and returns stdout plus the exit code
// (mdglint exits 1 on findings, which is the expected case here).
func runLintCLI(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	bin := filepath.Join(buildCLIs(t), "mdglint")
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code := 0
	if exit, ok := err.(*exec.ExitError); ok {
		code = exit.ExitCode()
	} else if err != nil {
		t.Fatalf("mdglint %v: %v\nstderr: %s", args, err, errBuf.String())
	}
	return outBuf.String(), code
}

// lintFixtureModule writes a tiny module with exactly two findings — a
// floateq comparison and an errcheck drop — at known lines.
func lintFixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/lintme\n\ngo 1.22\n")
	write("pkg/p.go", `package pkg

import "errors"

func fallible() error { return errors.New("boom") }

func drop() {
	fallible()
}

func eq(a, b float64) bool {
	return a == b
}
`)
	return dir
}

func TestLintCLIJSONGolden(t *testing.T) {
	dir := lintFixtureModule(t)
	out, code := runLintCLI(t, dir, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present)\noutput: %s", code, out)
	}

	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2:\n%s", len(lines), out)
	}

	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	var got []finding
	for _, line := range lines {
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		// The field set is the CI contract: nothing extra, nothing missing.
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"file", "line", "analyzer", "message"} {
			if _, ok := raw[key]; !ok {
				t.Errorf("JSON line missing %q field: %s", key, line)
			}
		}
		if len(raw) != 4 {
			t.Errorf("JSON line has %d fields, want exactly 4: %s", len(raw), line)
		}
		got = append(got, f)
	}

	if got[0].Analyzer != "errcheck" || got[0].Line != 8 {
		t.Errorf("first finding = %+v, want errcheck at line 8", got[0])
	}
	if got[1].Analyzer != "floateq" || got[1].Line != 12 {
		t.Errorf("second finding = %+v, want floateq at line 12", got[1])
	}
	for _, f := range got {
		if !strings.HasSuffix(f.File, filepath.Join("pkg", "p.go")) {
			t.Errorf("finding file %q does not end in pkg/p.go", f.File)
		}
	}
}

// TestLintCLITextMatchesJSON pins that the two output modes agree on the
// finding set: same files, lines, and analyzers, different rendering.
func TestLintCLITextMatchesJSON(t *testing.T) {
	dir := lintFixtureModule(t)
	text, codeText := runLintCLI(t, dir)
	jsonOut, codeJSON := runLintCLI(t, dir, "-json")
	if codeText != codeJSON {
		t.Fatalf("exit codes disagree: text %d, json %d", codeText, codeJSON)
	}
	textLines := strings.Split(strings.TrimSpace(text), "\n")
	jsonLines := strings.Split(strings.TrimSpace(jsonOut), "\n")
	if len(textLines) != len(jsonLines) {
		t.Fatalf("text mode has %d findings, json mode %d", len(textLines), len(jsonLines))
	}
}

// TestLintCLIJSONInterprocedural drives the two call-graph-backed
// analyzers end to end: alloccheck must flag an allocation inside a
// //mdglint:hotpath root, and parpure must flag a named callee of a par
// callback that writes package-level state — each at the offending line.
func TestLintCLIJSONInterprocedural(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/hotmod\n\ngo 1.22\n")
	// The "/par" path suffix is what isParCall keys on, so a fixture
	// module can carry its own stand-in for internal/par.
	write("par/par.go", `package par

func ForEach(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`)
	write("pkg/p.go", `package pkg

import "example.com/hotmod/par"

var total int

func bump(i int) {
	total += i
}

//mdglint:hotpath
func Hot(n int) []int {
	return make([]int, n)
}

func Sum(n int) {
	par.ForEach(n, func(i int) {
		bump(i)
	})
}
`)

	out, code := runLintCLI(t, dir, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present)\noutput: %s", code, out)
	}
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	byAnalyzer := map[string][]finding{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f)
	}

	allocs := byAnalyzer["alloccheck"]
	if len(allocs) != 1 || allocs[0].Line != 13 {
		t.Errorf("alloccheck findings = %+v, want exactly one at pkg/p.go:13 (the make in the hotpath root)", allocs)
	}
	if len(allocs) == 1 && !strings.Contains(allocs[0].Message, "make allocates") {
		t.Errorf("alloccheck message = %q, want a make-allocates diagnostic", allocs[0].Message)
	}
	pures := byAnalyzer["parpure"]
	if len(pures) != 1 || pures[0].Line != 8 {
		t.Errorf("parpure findings = %+v, want exactly one at pkg/p.go:8 (the shared write in bump)", pures)
	}
	if len(pures) == 1 && !strings.Contains(pures[0].Message, "package-level total") {
		t.Errorf("parpure message = %q, want it to name the raced variable", pures[0].Message)
	}
	for _, f := range append(allocs, pures...) {
		if !strings.HasSuffix(f.File, filepath.Join("pkg", "p.go")) {
			t.Errorf("finding file %q does not end in pkg/p.go", f.File)
		}
	}
}

// TestLintCLIJSONLoadDiagnostics pins that type errors surface through
// -json as "load" findings and still fail the gate.
func TestLintCLIJSONLoadDiagnostics(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/broken\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte("package broken\n\nfunc f() int {\n\treturn \"nope\"\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runLintCLI(t, dir, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput: %s", code, out)
	}
	if !strings.Contains(out, `"analyzer":"load"`) {
		t.Errorf("no load diagnostic in JSON output:\n%s", out)
	}
}

// TestLintCLIJSONGlobalOrder pins the emission order contract: findings
// are globally sorted by (file, line, analyzer), so a load diagnostic
// lands between analyzer findings from neighboring files instead of
// being front-loaded.
func TestLintCLIJSONGlobalOrder(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/ordered\n\ngo 1.22\n")
	write("pkg/a/a.go", `package a

func eq(x, y float64) bool { return x == y }
`)
	write("pkg/b/b.go", `package b

func f() int { return "nope" }
`)
	write("pkg/c/c.go", `package c

import "errors"

func fallible() error { return errors.New("boom") }

func drop() { fallible() }
`)

	out, code := runLintCLI(t, dir, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput: %s", code, out)
	}
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
	}
	var got []finding
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		got = append(got, f)
	}
	if len(got) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(got), out)
	}
	wantOrder := []string{"floateq", "load", "errcheck"}
	for i, f := range got {
		if f.Analyzer != wantOrder[i] {
			t.Errorf("finding %d is from %s, want %s (global file order)", i, f.Analyzer, wantOrder[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].File > got[i].File {
			t.Errorf("files out of order: %q emitted before %q", got[i-1].File, got[i].File)
		}
	}
}

// TestLintCLIRunSubset pins the -run flag: only the named analyzers
// execute, and an unknown name is a usage error (exit 2), not a silent
// no-op gate.
func TestLintCLIRunSubset(t *testing.T) {
	dir := lintFixtureModule(t)
	out, code := runLintCLI(t, dir, "-run", "floateq", "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput: %s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"analyzer":"floateq"`) {
		t.Errorf("-run floateq must emit exactly the floateq finding:\n%s", out)
	}
	if out, code := runLintCLI(t, dir, "-run", "nosuch"); code != 2 {
		t.Errorf("unknown analyzer name: exit code = %d, want 2\noutput: %s", code, out)
	}
}
