// Package mobicol is a library for planning and evaluating mobile-collector
// data gathering in wireless sensor networks, reproducing "Data gathering
// in wireless sensor networks with mobile collectors" (Ma & Yang, IPDPS
// 2008).
//
// An M-collector — a mobile robot or vehicle with a powerful transceiver —
// departs from the static data sink, pauses at planned polling points
// where nearby sensors upload their data in a single hop, and returns to
// the sink. The library solves the Single-Hop Data Gathering Problem
// (SHDGP): choose the polling points and their visiting order so the tour
// is as short as possible while every sensor is within transmission range
// of some stop.
//
// # Quick start
//
//	nw, err := mobicol.Deploy(mobicol.DeployConfig{N: 200, FieldSide: 200, Range: 30, Seed: 1})
//	sol, err := mobicol.PlanTour(nw)       // heuristic SHDGP planner
//	fmt.Println(sol.Length, sol.Stops())   // tour length (m), #polling points
//
// The package exposes, through type aliases, the full machinery in the
// internal packages: exact small-instance solving (PlanTourExact),
// multi-collector splitting (SplitTour, MinCollectors), the paper's
// comparison baselines (CLA sweep, straight-line mule, static sink,
// visit-every-sensor TSP), and lifetime/latency simulation.
package mobicol

import (
	"mobicol/internal/baselines"
	"mobicol/internal/collector"
	"mobicol/internal/cover"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/mtsp"
	"mobicol/internal/obstacle"
	"mobicol/internal/radio"
	"mobicol/internal/routing"
	"mobicol/internal/schedule"
	"mobicol/internal/shdgp"
	"mobicol/internal/sim"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

// Point is a planar location in metres.
type Point = geom.Point

// Meters is a dimensioned tour length or distance.
type Meters = geom.Meters

// MetersPerSecond is a dimensioned collector speed.
type MetersPerSecond = geom.MetersPerSecond

// Joules is a dimensioned energy quantity.
type Joules = energy.Joules

// Rounds is a dimensioned gathering-round count.
type Rounds = sim.Rounds

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Network is a deployed sensor field (sensors, sink, range, field).
type Network = wsn.Network

// DeployConfig parameterises random deployments.
type DeployConfig = wsn.Config

// Placement selects the spatial distribution of a deployment.
type Placement = wsn.Placement

// Deployment distributions.
const (
	Uniform    = wsn.Uniform
	GridJitter = wsn.GridJitter
	Clustered  = wsn.Clustered
	Ring       = wsn.Ring
	Corridor   = wsn.Corridor
)

// Deploy generates a seeded random deployment, rejecting invalid
// configurations (negative N, non-positive field side or range, unknown
// placement).
func Deploy(cfg DeployConfig) (*Network, error) { return wsn.Deploy(cfg) }

// MustDeploy is Deploy for known-good configurations; it panics where
// Deploy would return an error.
func MustDeploy(cfg DeployConfig) *Network { return wsn.MustDeploy(cfg) }

// NewNetwork builds a network from explicit sensor positions.
func NewNetwork(sensors []Point, sink Point, transmissionRange float64, fieldSide float64) *Network {
	return wsn.New(sensors, sink, transmissionRange, geom.Square(fieldSide))
}

// Problem is an SHDGP instance over a network.
type Problem = shdgp.Problem

// Solution is a planned single-hop gathering tour.
type Solution = shdgp.Solution

// PlannerOptions configures the heuristic planner.
type PlannerOptions = shdgp.PlannerOptions

// TourPlan is an executable tour: ordered stops plus the sensor-to-stop
// upload assignment.
type TourPlan = collector.TourPlan

// CollectorSpec is the M-collector's kinematic profile.
type CollectorSpec = collector.Spec

// CandidateStrategy selects polling-point candidate generation.
type CandidateStrategy = cover.CandidateStrategy

// Candidate strategies.
const (
	SensorSites   = cover.SensorSites
	FieldGrid     = cover.FieldGrid
	Intersections = cover.Intersections
)

// PlanTour runs the heuristic SHDGP planner with default options.
func PlanTour(nw *Network) (*Solution, error) {
	return shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
}

// PlanTourWith runs the heuristic planner with explicit options.
func PlanTourWith(p *Problem, opts PlannerOptions) (*Solution, error) {
	return shdgp.Plan(p, opts)
}

// DefaultPlannerOptions returns the planner configuration used throughout
// the experiments.
func DefaultPlannerOptions() PlannerOptions { return shdgp.DefaultPlannerOptions() }

// NewProblem wraps a network as an SHDGP instance.
func NewProblem(nw *Network) *Problem { return shdgp.NewProblem(nw) }

// PlanTourExact solves small instances to optimality (the paper's CPLEX
// role). See shdgp.ExactLimits for the instance-size guards.
func PlanTourExact(nw *Network) (*Solution, error) {
	return shdgp.PlanExact(shdgp.NewProblem(nw), shdgp.DefaultExactLimits())
}

// PlanVisitAll returns the visit-every-sensor tour (the d = 0 extreme).
func PlanVisitAll(nw *Network) (*Solution, error) {
	return shdgp.PlanVisitAll(shdgp.NewProblem(nw), tsp.DefaultOptions())
}

// PlanTourCapacitated plans a tour in which no polling point buffers more
// than cap sensors' packets (the paper's buffer-overflow concern).
func PlanTourCapacitated(nw *Network, cap int) (*Solution, error) {
	return shdgp.PlanCapacitated(shdgp.NewProblem(nw), cap, tsp.DefaultOptions())
}

// PlanTourSweep runs the alternative SPT-sweep heuristic (stops opened
// along a preorder walk of each component's shortest-path tree).
func PlanTourSweep(nw *Network) (*Solution, error) {
	return shdgp.PlanSweep(shdgp.NewProblem(nw), tsp.DefaultOptions())
}

// PlanTourHetero plans with per-sensor transmission ranges: sensor i must
// be within radii[i] metres of its upload stop.
func PlanTourHetero(nw *Network, radii []float64) (*Solution, error) {
	return shdgp.PlanHetero(nw, radii, tsp.DefaultOptions())
}

// MultiPlan is a set of concurrent sink-anchored sub-tours.
type MultiPlan = mtsp.MultiPlan

// MinCollectors covers the solution's stops with the fewest sub-tours of
// closed length at most bound.
func MinCollectors(nw *Network, sol *Solution, bound float64) (*MultiPlan, error) {
	return mtsp.MinCollectors(nw.Sink, sol.Plan.Stops, bound, tsp.DefaultOptions())
}

// SplitTour divides the solution's stops among exactly k collectors,
// minimising the longest sub-tour.
func SplitTour(nw *Network, sol *Solution, k int) (*MultiPlan, error) {
	return mtsp.MinMaxSplit(nw.Sink, sol.Plan.Stops, k, tsp.DefaultOptions())
}

// SubTourPlans converts a MultiPlan into per-collector executable plans.
func SubTourPlans(nw *Network, sol *Solution, mp *MultiPlan) ([]*TourPlan, error) {
	return mp.TourPlans(nw.Positions(), sol.Plan.UploadAt, sol.Plan.Stops)
}

// PlanCLA builds the covering-line-approximation baseline sweep.
func PlanCLA(nw *Network) (*TourPlan, error) { return baselines.PlanCLA(nw) }

// StraightLinePlan is the fixed-track data-mule baseline.
type StraightLinePlan = baselines.StraightLinePlan

// PlanStraightLine builds the straight-line baseline with the given number
// of parallel tracks.
func PlanStraightLine(nw *Network, tracks int) (*StraightLinePlan, error) {
	return baselines.PlanStraightLine(nw, tracks)
}

// RoutingPlan is the static-sink multi-hop baseline.
type RoutingPlan = routing.Plan

// PlanStaticSink builds shortest-path-tree routing toward the sink.
func PlanStaticSink(nw *Network) *RoutingPlan { return routing.BuildPlan(nw) }

// EnergyModel is the first-order radio model.
type EnergyModel = energy.Model

// DefaultEnergyModel returns the canonical parameter set.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// Scheme is a data-gathering scheme under simulation.
type Scheme = sim.Scheme

// LifetimeResult summarises a lifetime simulation.
type LifetimeResult = sim.LifetimeResult

// MobileScheme adapts a tour plan for simulation.
func MobileScheme(name string, nw *Network, plan *TourPlan) Scheme {
	return sim.NewMobile(name, nw, plan)
}

// StaticScheme adapts a routing plan for simulation.
func StaticScheme(plan *RoutingPlan) Scheme { return sim.NewStatic(plan) }

// StraightLineScheme adapts a straight-line plan for simulation.
func StraightLineScheme(plan *StraightLinePlan) Scheme { return sim.NewStraightLine(plan) }

// RunLifetime simulates gathering rounds until the first sensor death.
func RunLifetime(s Scheme, n int, model EnergyModel, maxRounds int) (*LifetimeResult, error) {
	return sim.RunLifetime(s, n, model, maxRounds)
}

// AdaptiveResult describes degradation past the first death.
type AdaptiveResult = sim.AdaptiveResult

// RunAdaptiveMobile simulates mobile gathering with re-planning after
// every sensor death, to the half-service life.
func RunAdaptiveMobile(nw *Network, model EnergyModel, maxRounds int) (*AdaptiveResult, error) {
	return sim.RunAdaptiveMobile(nw, model, maxRounds)
}

// RunAdaptiveStatic simulates the static sink with routing rebuilt after
// every death; stranded survivors idle unserved.
func RunAdaptiveStatic(nw *Network, model EnergyModel, maxRounds int) (*AdaptiveResult, error) {
	return sim.RunAdaptiveStatic(nw, model, maxRounds)
}

// PlanDiverse returns up to k structurally different plans for rotation
// (round-robin plan alternation that averages per-sensor upload cost).
func PlanDiverse(nw *Network, k int) ([]*Solution, error) {
	return shdgp.PlanDiverse(shdgp.NewProblem(nw), k, tsp.DefaultOptions())
}

// RotationScheme alternates plans round-robin for lifetime simulation.
func RotationScheme(name string, nw *Network, plans []*TourPlan) (Scheme, error) {
	return sim.NewRotation(name, nw, plans)
}

// DefaultCollectorSpec is the paper's 1 m/s collector.
func DefaultCollectorSpec() CollectorSpec { return collector.DefaultSpec() }

// RoundLatency returns one round's collection latency in seconds for the
// scheme, given the collector profile and per-hop relay delay.
func RoundLatency(s Scheme, spec CollectorSpec, relayDelaySeconds float64) float64 {
	return sim.MeasureLatency(s, spec, relayDelaySeconds).Seconds
}

// ObstacleCourse is a set of movement-blocking polygons over the field.
type ObstacleCourse = obstacle.Course

// ObstaclePolygon is one simple polygon obstacle (counter-clockwise
// vertices).
type ObstaclePolygon = obstacle.Polygon

// ObstacleTour is an obstacle-aware gathering tour with its driven
// waypoint polyline.
type ObstacleTour = obstacle.Tour

// NewObstacleCourse validates and wraps obstacles.
func NewObstacleCourse(obs ...ObstaclePolygon) (*ObstacleCourse, error) {
	return obstacle.NewCourse(obs...)
}

// RectObstacle builds an axis-aligned rectangular obstacle from two
// opposite corners.
func RectObstacle(a, b Point) ObstaclePolygon {
	return obstacle.Rectangle(geom.NewRect(a, b))
}

// PlanTourAround plans a single-hop gathering tour that threads the
// collector's path around the obstacles (which block movement, not radio).
func PlanTourAround(nw *Network, course *ObstacleCourse) (*ObstacleTour, error) {
	return obstacle.PlanTour(nw, course)
}

// DeployAroundObstacles generates a deployment whose sensors avoid the
// obstacle interiors (blocked draws are deterministically resampled).
func DeployAroundObstacles(cfg DeployConfig, course *ObstacleCourse) (*Network, error) {
	return obstacle.DeployAround(cfg, course)
}

// RadioModel is a lossy-link model (PRR curve + ARQ budget).
type RadioModel = radio.Model

// PerfectRadio returns the paper's implicit loss-free link model.
func PerfectRadio() RadioModel { return radio.Perfect() }

// DefaultRadio returns a typical transitional-region link model.
func DefaultRadio() RadioModel { return radio.Default() }

// LossyMobileScheme adapts a tour plan with lossy uploads for simulation.
func LossyMobileScheme(name string, nw *Network, plan *TourPlan, rm RadioModel) *sim.LossyMobile {
	return sim.NewLossyMobile(name, nw, plan, rm)
}

// LossyStaticScheme adapts static-sink routing with lossy relays.
func LossyStaticScheme(plan *RoutingPlan, rm RadioModel) *sim.LossyStatic {
	return sim.NewLossyStatic(plan, rm)
}

// StopDemand is one polling point's data-generation and buffer profile.
type StopDemand = schedule.Demand

// VisitPolicy selects the collector's visiting order under deadlines.
type VisitPolicy = schedule.Policy

// Visit policies.
const (
	VisitCyclic = schedule.Cyclic
	VisitEDF    = schedule.EDF
)

// ScheduleResult summarises a deadline-driven visiting simulation.
type ScheduleResult = schedule.RunResult

// StopDemands derives per-stop demands from a plan: every sensor
// contributes ratePerSensor packets/s; every stop buffers bufferPackets.
func StopDemands(plan *TourPlan, ratePerSensor, bufferPackets float64) []StopDemand {
	return schedule.DemandsFromPlan(plan, ratePerSensor, bufferPackets)
}

// CyclicTourFeasible reports whether the cyclic tour revisits every stop
// before its buffer overflows.
func CyclicTourFeasible(plan *TourPlan, demands []StopDemand, spec CollectorSpec) bool {
	return schedule.CyclicFeasible(plan, demands, spec)
}

// MinCollectorSpeed returns the slowest feasible cyclic-tour speed.
func MinCollectorSpeed(plan *TourPlan, demands []StopDemand, uploadTime float64) (MetersPerSecond, error) {
	return schedule.MinSpeed(plan, demands, uploadTime)
}

// RunSchedule simulates deadline-driven visiting over the horizon.
func RunSchedule(plan *TourPlan, demands []StopDemand, spec CollectorSpec, policy VisitPolicy, horizonSeconds float64) (*ScheduleResult, error) {
	return schedule.Run(plan, demands, spec, policy, horizonSeconds)
}

// RoundTrace is the packet-level outcome of one simulated gathering round.
type RoundTrace = sim.RoundTrace

// SimulateMobileRound replays one collector round at packet granularity:
// per-sensor pickup times and per-stop peak buffer occupancy.
func SimulateMobileRound(nw *Network, plan *TourPlan, spec CollectorSpec) (*RoundTrace, error) {
	return sim.DESMobileRound(nw, plan, spec)
}

// SimulateStaticRound replays one static-sink round with store-and-forward
// queueing at the relays, exposing the congestion the closed-form
// hop-count latency model misses.
func SimulateStaticRound(plan *RoutingPlan, perHopDelaySeconds float64) (*RoundTrace, error) {
	return sim.DESStaticRound(plan, perHopDelaySeconds)
}
