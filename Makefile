GO ?= go

.PHONY: all build test race lint vet fmt bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# mdglint is this repo's own static-analysis suite (cmd/mdglint):
# determinism, float-equality, panic, discarded-error, and global-state
# checks. CI runs it; `make lint` reproduces the gate locally.
lint:
	$(GO) run ./cmd/mdglint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# check mirrors the CI pipeline end to end.
check: build vet lint test race
