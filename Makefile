GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race lint lint-json lint-dataflow lint-fix-hints vet fmt bench check conformance cover cover-update fuzz-smoke escape escape-update alloc-bench perf perf-update trace

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# mdglint is this repo's own static-analysis suite (cmd/mdglint):
# determinism, float-equality, panic, discarded-error, and global-state
# checks plus the type-aware unitcheck (units of measure), loopcapture
# (concurrency capture), and convcheck (lossy conversion) analyzers, the
# call-graph-backed alloccheck (hot-path allocation sites) and parpure
# (par-callback purity) analyzers, and the dataflow trio over the engine
# seam: purecheck (Scenario purity/retention), ctxflow (context
# threading), and errflow (dead/overwritten errors).
# CI runs it; `make lint` reproduces the gate locally.
lint:
	$(GO) run ./cmd/mdglint ./...

# lint-json emits one JSON object per finding (file, line, analyzer,
# message) — the format the CI annotation step consumes.
lint-json:
	$(GO) run ./cmd/mdglint -json ./...

# lint-dataflow runs just the three seam analyzers (purecheck, ctxflow,
# errflow) — the fast loop while auditing a planner for scenario
# mutation, context laundering, or dropped errors.
lint-dataflow:
	$(GO) run ./cmd/mdglint -run purecheck,ctxflow,errflow ./...

# lint-fix-hints lists the analyzers with their one-line docs as a
# reminder of what each finding class means and how to suppress one
# (//mdglint:ignore <analyzer> <reason> on or above the offending line).
lint-fix-hints:
	$(GO) run ./cmd/mdglint -list
	@echo
	@echo "suppress a finding with: //mdglint:ignore <analyzer> <reason>"
	@echo "unitcheck: keep unit types (geom.Meters, energy.Joules, sim.Rounds);"
	@echo "  annotate true conversion boundaries (JSON IO, math stdlib) instead"
	@echo "  of laundering through float64."

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# conformance runs the registry-wide planner contract suite under the
# race detector — oracle validity, cross-pool determinism, cancellation
# with leak checks, progress monotonicity — including the n=10k
# cancellation-under-load smoke (CI job: engine-conformance).
conformance:
	$(GO) test -race -count=1 ./internal/engine/...

# cover enforces the committed per-package coverage floors; cover-update
# regenerates them (measured minus a 1-point jitter margin).
cover:
	$(GO) test -cover ./... | $(GO) run ./cmd/mdgcov -ratchet COVERAGE_ratchet.txt

cover-update:
	$(GO) test -cover ./... | $(GO) run ./cmd/mdgcov -ratchet COVERAGE_ratchet.txt -update

# escape enforces the committed heap-escape baseline for the hot
# packages: `go build -gcflags='-m -m'` diagnostics may not grow per
# file. escape-update regenerates the baseline after a deliberate change.
escape:
	$(GO) run ./cmd/mdgescape -baseline ESCAPE_baseline.txt

escape-update:
	$(GO) run ./cmd/mdgescape -baseline ESCAPE_baseline.txt -update

# alloc-bench runs the steady-state hot-path benchmarks with allocation
# reporting; the SteadyState benchmarks must show 0 allocs/op (the test
# suite enforces this via TestHotPathSteadyStateZeroAllocs).
alloc-bench:
	$(GO) test -run=^$$ -bench=SteadyState -benchmem .

# perf enforces the committed planner perf baseline (PERF_baseline.json):
# quality fields and span counts bit-identical, allocs_per_op may not
# grow, bytes/wall-clock within noise-aware tolerances (median of
# PERF_K runs). perf-update regenerates the baseline after a deliberate
# change.
PERF_K ?= 3
perf:
	$(GO) run ./cmd/mdgperf -k $(PERF_K)

perf-update:
	$(GO) run ./cmd/mdgperf -k $(PERF_K) -update

# trace records a seeded planner trace and prints its per-phase summary
# (deterministic: byte-identical across runs of the same seed).
trace:
	$(GO) run ./cmd/wsngen -n 100 -side 200 -range 30 -seed 1 -o /tmp/mobicol-net.json
	$(GO) run ./cmd/mdgplan -net /tmp/mobicol-net.json -algo shdg -trace /tmp/mobicol-trace.jsonl
	$(GO) run ./cmd/mdgtrace summary /tmp/mobicol-trace.jsonl

# fuzz-smoke runs each native fuzz target for FUZZTIME on top of the
# committed corpora under testdata/fuzz/.
fuzz-smoke:
	$(GO) test -fuzz=FuzzTourPlanRoundTrip -fuzztime=$(FUZZTIME) ./internal/collector/
	$(GO) test -fuzz=FuzzNetworkRead -fuzztime=$(FUZZTIME) ./internal/wsn/

# check mirrors the CI pipeline end to end.
check: build vet lint test race cover escape
