GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race lint vet fmt bench check cover cover-update fuzz-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# mdglint is this repo's own static-analysis suite (cmd/mdglint):
# determinism, float-equality, panic, discarded-error, and global-state
# checks. CI runs it; `make lint` reproduces the gate locally.
lint:
	$(GO) run ./cmd/mdglint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# cover enforces the committed per-package coverage floors; cover-update
# regenerates them (measured minus a 1-point jitter margin).
cover:
	$(GO) test -cover ./... | $(GO) run ./cmd/mdgcov -ratchet COVERAGE_ratchet.txt

cover-update:
	$(GO) test -cover ./... | $(GO) run ./cmd/mdgcov -ratchet COVERAGE_ratchet.txt -update

# fuzz-smoke runs each native fuzz target for FUZZTIME on top of the
# committed corpora under testdata/fuzz/.
fuzz-smoke:
	$(GO) test -fuzz=FuzzTourPlanRoundTrip -fuzztime=$(FUZZTIME) ./internal/collector/
	$(GO) test -fuzz=FuzzNetworkRead -fuzztime=$(FUZZTIME) ./internal/wsn/

# check mirrors the CI pipeline end to end.
check: build vet lint test race cover
