module mobicol

go 1.22
