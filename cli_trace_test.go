package mobicol

// End-to-end tests of mdgtrace: drive real planner traces through the
// summary/tree/diff/folded subcommands and enforce the acceptance
// contract — deterministic subcommand output is byte-identical across
// same-seed runs, and diff's exit codes distinguish identical traces,
// semantic divergence, and operational errors.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mobicol/internal/obs"
)

// runExitCLI runs a built cmd binary and returns its exit code instead
// of failing on non-zero exits (for tools whose exit code is the API).
func runExitCLI(t *testing.T, name string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	bin := filepath.Join(buildCLIs(t), name)
	cmd := exec.Command(bin, args...)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", name, args, err)
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

// tracePair records two same-seed planner traces plus one from a
// different deployment.
func tracePair(t *testing.T) (same1, same2, other string) {
	t.Helper()
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.json")
	otherNet := filepath.Join(dir, "net2.json")
	runCLI(t, nil, "wsngen", "-n", "60", "-seed", "5", "-o", netPath)
	runCLI(t, nil, "wsngen", "-n", "60", "-seed", "6", "-o", otherNet)
	same1 = filepath.Join(dir, "a1.jsonl")
	same2 = filepath.Join(dir, "a2.jsonl")
	other = filepath.Join(dir, "b.jsonl")
	runCLI(t, nil, "mdgplan", "-net", netPath, "-trace", same1, "-metrics")
	runCLI(t, nil, "mdgplan", "-net", netPath, "-trace", same2, "-metrics")
	runCLI(t, nil, "mdgplan", "-net", otherNet, "-trace", other, "-metrics")
	return same1, same2, other
}

func TestCLITraceSummaryDeterministic(t *testing.T) {
	same1, same2, _ := tracePair(t)
	out1, _ := runCLI(t, nil, "mdgtrace", "summary", same1)
	out2, _ := runCLI(t, nil, "mdgtrace", "summary", same2)
	if out1 != out2 {
		t.Fatalf("summary output differs across same-seed runs:\n--- a ---\n%s--- b ---\n%s", out1, out2)
	}
	for _, want := range []string{"phase", "plan", "cover", "tsp", "metric", "planner.stops"} {
		if !strings.Contains(out1, want) {
			t.Errorf("summary missing %q:\n%s", want, out1)
		}
	}
	// tree shares the determinism contract.
	tree1, _ := runCLI(t, nil, "mdgtrace", "tree", same1)
	tree2, _ := runCLI(t, nil, "mdgtrace", "tree", same2)
	if tree1 != tree2 {
		t.Fatalf("tree output differs across same-seed runs:\n%s\nvs\n%s", tree1, tree2)
	}
	if !strings.Contains(tree1, "plan id=1") || !strings.Contains(tree1, "  cover id=") {
		t.Errorf("tree structure missing expected spans:\n%s", tree1)
	}
}

func TestCLITraceSummaryTiming(t *testing.T) {
	same1, _, _ := tracePair(t)
	out, _ := runCLI(t, nil, "mdgtrace", "summary", "-timing", same1)
	if !strings.Contains(out, "total_ns") || !strings.Contains(out, "self_ns") {
		t.Fatalf("-timing summary missing wall-clock columns:\n%s", out)
	}
}

func TestCLITraceDiffExitCodes(t *testing.T) {
	same1, same2, other := tracePair(t)

	out, _, code := runExitCLI(t, "mdgtrace", "diff", same1, same2)
	if code != 0 || !strings.Contains(out, "identical") {
		t.Fatalf("same-seed diff: code %d, out %q", code, out)
	}

	out, _, code = runExitCLI(t, "mdgtrace", "diff", same1, other)
	if code != 1 || !strings.Contains(out, "diverge") {
		t.Fatalf("different-seed diff: code %d, want 1; out %q", code, out)
	}

	_, errOut, code := runExitCLI(t, "mdgtrace", "diff", same1, filepath.Join(t.TempDir(), "missing.jsonl"))
	if code != 2 || !strings.Contains(errOut, "mdgtrace:") {
		t.Fatalf("missing file diff: code %d, want 2; stderr %q", code, errOut)
	}

	_, _, code = runExitCLI(t, "mdgtrace", "bogus")
	if code != 2 {
		t.Fatalf("unknown subcommand: code %d, want 2", code)
	}
}

// assertCanonicalTrace parses every line of a trace file through
// obs.CanonicalLine and asserts the named span was recorded.
func assertCanonicalTrace(t *testing.T, path, wantSpan string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range bytes.Split(raw, []byte("\n")) {
		c, err := obs.CanonicalLine(line)
		if err != nil {
			t.Fatalf("%s: uncanonicalisable line %q: %v", path, line, err)
		}
		if bytes.Contains(c, []byte(`"span":"`+wantSpan+`"`)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s: no %q span in trace:\n%s", path, wantSpan, raw)
	}
}

// TestCLITraceFlagsNewTools smoke-tests the -trace/-metrics wiring added
// to wsngen and mdgreport: both must write canonical JSONL traces.
func TestCLITraceFlagsNewTools(t *testing.T) {
	dir := t.TempDir()

	wsnTrace := filepath.Join(dir, "wsngen.jsonl")
	_, errOut := runCLI(t, nil, "wsngen", "-n", "30", "-seed", "8",
		"-trace", wsnTrace, "-metrics", "-o", filepath.Join(dir, "net.json"))
	assertCanonicalTrace(t, wsnTrace, "deploy")
	if !strings.Contains(errOut, "wsn.avg_degree") {
		t.Errorf("wsngen -metrics summary missing gauge:\n%s", errOut)
	}

	repTrace := filepath.Join(dir, "report.jsonl")
	_, errOut = runCLI(t, nil, "mdgreport", "-e", "E10", "-trials", "1",
		"-trace", repTrace, "-metrics", "-o", filepath.Join(dir, "report.md"))
	assertCanonicalTrace(t, repTrace, "experiment")
	assertCanonicalTrace(t, repTrace, "report")
	if !strings.Contains(errOut, "report.tables") {
		t.Errorf("mdgreport -metrics summary missing counter:\n%s", errOut)
	}
	md, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil || !bytes.Contains(md, []byte("E10")) {
		t.Fatalf("report artifact bad: %v\n%s", err, md)
	}
}

func TestCLITraceFolded(t *testing.T) {
	same1, _, _ := tracePair(t)
	out, _ := runCLI(t, nil, "mdgtrace", "folded", same1)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("folded output too small:\n%s", out)
	}
	foundNested := false
	for _, line := range lines {
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Fatalf("folded line not 'stack weight': %q", line)
		}
		if !strings.HasPrefix(parts[0], "plan") {
			t.Errorf("stack not rooted at plan: %q", line)
		}
		if strings.Contains(parts[0], ";") {
			foundNested = true
		}
	}
	if !foundNested {
		t.Errorf("no nested stacks in folded output:\n%s", out)
	}
}
