package mobicol

// Golden end-to-end tests of the mdgperf performance ratchet. The exit
// codes are driven through pre-recorded artifacts (-current) so the
// tests are deterministic: no wall-clock measurement can flake them.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobicol/internal/bench"
)

// perfFixture returns a small v2 artifact used as both baseline and
// (perturbed) current run.
func perfFixture() *bench.PlannerBenchResult {
	return &bench.PlannerBenchResult{
		Schema: bench.PlannerBenchSchema,
		Trials: 5, Seed: 1, N: 100, SideM: 200, RangeM: 30,
		Meta: bench.PlannerBenchMeta{Workers: 1, TrialsPerPhase: 5},
		Algos: []bench.PlannerAlgoBench{{
			Algo:        "shdg",
			MeanTourM:   779.4097257411898,
			MeanStops:   18,
			PhaseNs:     map[string]int64{"plan": 2_000_000, "tsp": 700_000},
			Spans:       map[string]int{"plan": 5, "tsp": 5},
			AllocsPerOp: 1000, BytesPerOp: 50_000,
		}},
	}
}

func writePerfArtifact(t *testing.T, dir, name string, res *bench.PlannerBenchResult) string {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIPerfRatchetGolden(t *testing.T) {
	dir := t.TempDir()
	baseline := writePerfArtifact(t, dir, "baseline.json", perfFixture())

	// Clean compare: identical artifact holds.
	clean := writePerfArtifact(t, dir, "clean.json", perfFixture())
	out, errOut, code := runExitCLI(t, "mdgperf", "-baseline", baseline, "-current", clean)
	if code != 0 || !strings.Contains(out, "hold against") {
		t.Fatalf("clean compare: code %d, out %q, stderr %q", code, out, errOut)
	}

	// Wall-time regression beyond tolerance trips the gate.
	slow := perfFixture()
	slow.Algos[0].PhaseNs["plan"] = 200_000_000
	slowPath := writePerfArtifact(t, dir, "slow.json", slow)
	_, errOut, code = runExitCLI(t, "mdgperf", "-baseline", baseline, "-current", slowPath)
	if code != 1 || !strings.Contains(errOut, `phase "plan"`) {
		t.Fatalf("phase regression: code %d, want 1; stderr %q", code, errOut)
	}

	// Any allocs_per_op increase trips the exact gate.
	alloc := perfFixture()
	alloc.Algos[0].AllocsPerOp++
	allocPath := writePerfArtifact(t, dir, "alloc.json", alloc)
	_, errOut, code = runExitCLI(t, "mdgperf", "-baseline", baseline, "-current", allocPath)
	if code != 1 || !strings.Contains(errOut, "allocs_per_op") {
		t.Fatalf("alloc regression: code %d, want 1; stderr %q", code, errOut)
	}

	// Missing baseline is operational, not a regression.
	_, errOut, code = runExitCLI(t, "mdgperf", "-baseline", filepath.Join(dir, "nope.json"), "-current", clean)
	if code != 2 || !strings.Contains(errOut, "-update") {
		t.Fatalf("missing baseline: code %d, want 2; stderr %q", code, errOut)
	}
}

func TestCLIPerfUpdateWritesBaseline(t *testing.T) {
	dir := t.TempDir()
	cur := writePerfArtifact(t, dir, "cur.json", perfFixture())
	baseline := filepath.Join(dir, "new-baseline.json")
	out, errOut, code := runExitCLI(t, "mdgperf", "-baseline", baseline, "-current", cur, "-update")
	if code != 0 || !strings.Contains(out, "wrote baseline") {
		t.Fatalf("-update: code %d, out %q, stderr %q", code, out, errOut)
	}
	f, err := os.Open(baseline)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := bench.ReadPlannerBench(f)
	if err != nil || len(res.Algos) != 1 {
		t.Fatalf("written baseline unreadable: %v, %+v", err, res)
	}
}

// TestCLIPerfCommittedBaseline validates the artifact this repo ships:
// it must parse at the current schema and hold against itself.
func TestCLIPerfCommittedBaseline(t *testing.T) {
	out, errOut, code := runExitCLI(t, "mdgperf", "-baseline", "PERF_baseline.json", "-current", "PERF_baseline.json")
	if code != 0 {
		t.Fatalf("committed PERF_baseline.json does not hold against itself: code %d\n%s%s", code, out, errOut)
	}
}
