// Package energy implements the first-order radio model standard in the
// WSN literature (Heinzelman et al.) and per-node energy ledgers. The
// lifetime experiments charge each sensor for its transmissions and
// receptions per gathering round and track the round of first death —
// the paper's lifetime metric.
package energy

import (
	"fmt"
	"math"
)

// Joules is an amount of energy. Like geom.Meters it is a zero-cost
// named type: identical code to float64, but the compiler rejects
// mixing it with tour lengths or times, and the mdglint unitcheck
// analyzer rejects conversions that strip the dimension outside
// annotated boundaries.
type Joules float64

// Scale returns the energy scaled by the dimensionless factor f (e.g.
// an expected retransmission count).
func (j Joules) Scale(f float64) Joules { return j * Joules(f) }

// Abs returns the magnitude of j. Ledger conservation checks compare
// signed residuals; keeping the fold on Joules avoids laundering the
// dimension through math.Abs.
func (j Joules) Abs() Joules {
	if j < 0 {
		return -j
	}
	return j
}

// Model is the first-order radio model:
//
//	E_tx(k bits, d metres) = k·Elec + k·Amp·d^PathLossExp
//	E_rx(k bits)           = k·Elec
type Model struct {
	Elec        float64 // electronics energy per bit (J/bit)
	Amp         float64 // amplifier energy per bit per m^PathLossExp
	PathLossExp float64 // path-loss exponent (2 free space, 4 multipath)
	PacketBits  float64 // bits per data packet
	InitialJ    Joules  // initial battery energy per sensor (J)
}

// DefaultModel returns the parameter set used throughout the experiments:
// 50 nJ/bit electronics, 100 pJ/bit/m² amplifier, free-space exponent,
// 4000-bit packets, 1 J batteries. These are the canonical values from the
// LEACH line of work that the paper's era of simulations used.
func DefaultModel() Model {
	return Model{
		Elec:        50e-9,
		Amp:         100e-12,
		PathLossExp: 2,
		PacketBits:  4000,
		InitialJ:    1.0,
	}
}

// TxCost returns the energy to transmit one packet over distance d.
func (m Model) TxCost(d float64) Joules {
	if d < 0 {
		//mdglint:ignore nopanic distances are Euclidean norms, so negative input is a caller bug, not a data condition
		panic("energy: negative distance")
	}
	return Joules(m.PacketBits * (m.Elec + m.Amp*math.Pow(d, m.PathLossExp)))
}

// RxCost returns the energy to receive one packet.
func (m Model) RxCost() Joules { return Joules(m.PacketBits * m.Elec) }

// Ledger tracks per-node residual energy across rounds. Alongside the
// residual it records the energy each node actually spent (charges are
// capped at the remaining charge, so a fatal overdraw spends only what
// the battery held): spent + residual = initial battery is the
// conservation invariant internal/check verifies after simulations.
type Ledger struct {
	Model    Model
	Residual []Joules
	spent    []Joules
	deadAt   []int // round of death, -1 while alive
	round    int
}

// NewLedger returns a ledger for n sensors, all at full charge.
func NewLedger(n int, m Model) *Ledger {
	l := &Ledger{
		Model:    m,
		Residual: make([]Joules, n),
		spent:    make([]Joules, n),
		deadAt:   make([]int, n),
	}
	for i := range l.Residual {
		l.Residual[i] = m.InitialJ
		l.deadAt[i] = -1
	}
	return l
}

// N returns the number of tracked sensors.
func (l *Ledger) N() int { return len(l.Residual) }

// Round returns the number of completed rounds.
func (l *Ledger) Round() int { return l.round }

// ChargeTx debits node i for transmitting one packet over distance d.
func (l *Ledger) ChargeTx(i int, d float64) { l.charge(i, l.Model.TxCost(d)) }

// ChargeRx debits node i for receiving one packet.
func (l *Ledger) ChargeRx(i int) { l.charge(i, l.Model.RxCost()) }

// Debit removes an arbitrary non-negative amount of energy from node i.
// The lossy-link accounting uses it for fractional expected-transmission
// costs that the unit ChargeTx/ChargeRx operations cannot express.
func (l *Ledger) Debit(i int, joules Joules) {
	if joules < 0 {
		//mdglint:ignore nopanic negative debit would silently mint energy; callers pass computed non-negative costs
		panic("energy: negative debit")
	}
	l.charge(i, joules)
}

func (l *Ledger) charge(i int, e Joules) {
	if l.deadAt[i] >= 0 {
		return // the dead spend nothing
	}
	if e > l.Residual[i] {
		e = l.Residual[i] // a fatal overdraw only spends what was left
	}
	l.spent[i] += e
	l.Residual[i] -= e
	if l.Residual[i] <= 0 {
		l.Residual[i] = 0
		l.deadAt[i] = l.round
	}
}

// SpentJ returns the total energy node i has spent so far. For every node
// SpentJ(i) + Residual[i] equals Model.InitialJ up to floating-point
// accumulation — the conservation invariant the check oracles enforce.
func (l *Ledger) SpentJ(i int) Joules { return l.spent[i] }

// EndRound marks the end of a gathering round.
func (l *Ledger) EndRound() { l.round++ }

// Alive reports whether node i still has energy.
func (l *Ledger) Alive(i int) bool { return l.deadAt[i] < 0 }

// AliveCount returns the number of living sensors.
func (l *Ledger) AliveCount() int {
	c := 0
	for _, d := range l.deadAt {
		if d < 0 {
			c++
		}
	}
	return c
}

// FirstDeath returns the round at which the first sensor died, or -1 when
// all sensors are alive. This is the paper's network-lifetime metric.
func (l *Ledger) FirstDeath() int {
	first := -1
	for _, d := range l.deadAt {
		if d >= 0 && (first < 0 || d < first) {
			first = d
		}
	}
	return first
}

// Stats summarises residual energy across living and dead sensors.
type Stats struct {
	Min, Max, Mean, Std Joules
}

// ResidualStats returns summary statistics of residual energy. The paper
// argues single-hop mobile gathering gives perfectly uniform consumption;
// Std quantifies that against the multi-hop baselines.
func (l *Ledger) ResidualStats() Stats {
	n := len(l.Residual)
	if n == 0 {
		return Stats{}
	}
	st := Stats{Min: Joules(math.Inf(1)), Max: Joules(math.Inf(-1))}
	sum := Joules(0)
	for _, r := range l.Residual {
		if r < st.Min {
			st.Min = r
		}
		if r > st.Max {
			st.Max = r
		}
		sum += r
	}
	st.Mean = sum / Joules(n)
	// Two-pass variance: the one-pass formula cancels catastrophically
	// when residuals cluster near a large mean, which is the common case
	// (full batteries minus tiny per-round costs).
	variance := 0.0
	for _, r := range l.Residual {
		//mdglint:ignore unitcheck math boundary: variance accumulates squared joules, which has no named type
		d := float64(r - st.Mean)
		variance += d * d
	}
	st.Std = Joules(math.Sqrt(variance / float64(n)))
	return st
}

// String summarises the ledger.
func (l *Ledger) String() string {
	return fmt.Sprintf("energy.Ledger{n=%d, round=%d, alive=%d}", l.N(), l.round, l.AliveCount())
}
