package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTxCostMonotoneInDistance(t *testing.T) {
	m := DefaultModel()
	prev := m.TxCost(0)
	for d := 5.0; d <= 100; d += 5 {
		cur := m.TxCost(d)
		if cur <= prev {
			t.Fatalf("TxCost not increasing at d=%v", d)
		}
		prev = cur
	}
}

func TestTxCostZeroDistanceEqualsElectronics(t *testing.T) {
	m := DefaultModel()
	if got, want := m.TxCost(0), Joules(m.PacketBits*m.Elec); math.Abs(float64(got-want)) > 1e-15 {
		t.Fatalf("TxCost(0) = %v, want %v", got, want)
	}
}

func TestRxCost(t *testing.T) {
	m := DefaultModel()
	if got, want := m.RxCost(), Joules(4000*50e-9); math.Abs(float64(got-want)) > 1e-15 {
		t.Fatalf("RxCost = %v, want %v", got, want)
	}
}

func TestTxCostNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative distance did not panic")
		}
	}()
	DefaultModel().TxCost(-1)
}

func TestPathLossExponent(t *testing.T) {
	m := DefaultModel()
	m.PathLossExp = 4
	// Quadrupling cost ratio: (2d)^4 / d^4 = 16 on the amplifier term.
	amp1 := m.TxCost(10) - m.TxCost(0)
	amp2 := m.TxCost(20) - m.TxCost(0)
	if math.Abs(float64(amp2/amp1)-16) > 1e-9 {
		t.Fatalf("exponent-4 amplifier ratio = %v, want 16", amp2/amp1)
	}
}

func TestLedgerLifecycle(t *testing.T) {
	m := DefaultModel()
	m.InitialJ = 3 * m.TxCost(10) // exactly three transmissions at 10 m
	l := NewLedger(2, m)
	if l.FirstDeath() != -1 || l.AliveCount() != 2 {
		t.Fatal("fresh ledger state wrong")
	}
	for round := 0; round < 3; round++ {
		l.ChargeTx(0, 10)
		l.EndRound()
	}
	if l.Alive(0) {
		t.Fatal("node 0 should be dead after three full-cost transmissions")
	}
	if !l.Alive(1) {
		t.Fatal("idle node died")
	}
	if l.FirstDeath() != 2 {
		t.Fatalf("FirstDeath = %d, want 2", l.FirstDeath())
	}
	if l.AliveCount() != 1 {
		t.Fatalf("AliveCount = %d", l.AliveCount())
	}
}

func TestDeadNodesSpendNothing(t *testing.T) {
	m := DefaultModel()
	m.InitialJ = m.TxCost(10) / 2
	l := NewLedger(1, m)
	l.ChargeTx(0, 10)
	if l.Alive(0) {
		t.Fatal("node should be dead")
	}
	r := l.Residual[0]
	l.ChargeTx(0, 10)
	l.ChargeRx(0)
	if l.Residual[0] != r {
		t.Fatal("dead node kept spending")
	}
}

func TestResidualStatsUniformVsSkewed(t *testing.T) {
	m := DefaultModel()
	uniform := NewLedger(10, m)
	skewed := NewLedger(10, m)
	for i := 0; i < 10; i++ {
		uniform.ChargeTx(i, 20)
	}
	for r := 0; r < 10; r++ {
		skewed.ChargeTx(0, 20) // all load on node 0
	}
	us, ss := uniform.ResidualStats(), skewed.ResidualStats()
	if us.Std > 1e-12 {
		t.Fatalf("uniform load Std = %v, want 0", us.Std)
	}
	if ss.Std <= us.Std {
		t.Fatal("skewed load should have larger Std")
	}
	if math.Abs(float64(us.Mean-(m.InitialJ-m.TxCost(20)))) > 1e-12 {
		t.Fatalf("uniform Mean = %v", us.Mean)
	}
}

func TestResidualStatsEmpty(t *testing.T) {
	l := NewLedger(0, DefaultModel())
	if st := l.ResidualStats(); st != (Stats{}) {
		t.Fatalf("empty stats = %+v", st)
	}
}

// Property: residual energy never goes negative and never increases.
func TestQuickResidualMonotone(t *testing.T) {
	f := func(dists []uint8) bool {
		m := DefaultModel()
		m.InitialJ = 0.001
		l := NewLedger(1, m)
		prev := l.Residual[0]
		for _, d := range dists {
			l.ChargeTx(0, float64(d))
			if l.Residual[0] > prev || l.Residual[0] < 0 {
				return false
			}
			prev = l.Residual[0]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoulesScaleAndAbs(t *testing.T) {
	if got := Joules(2).Scale(1.5); got != 3 {
		t.Errorf("Scale(1.5) = %v, want 3", got)
	}
	if got := Joules(-0.25).Abs(); got != 0.25 {
		t.Errorf("Abs(-0.25) = %v, want 0.25", got)
	}
	if got := Joules(0.25).Abs(); got != 0.25 {
		t.Errorf("Abs(0.25) = %v, want 0.25", got)
	}
}

// TestLedgerAccessorsAndConservation exercises N/Round/Debit/SpentJ and
// the conservation invariant SpentJ(i) + Residual[i] == InitialJ.
func TestLedgerAccessorsAndConservation(t *testing.T) {
	m := DefaultModel()
	l := NewLedger(3, m)
	if l.N() != 3 {
		t.Fatalf("N() = %d, want 3", l.N())
	}
	if l.Round() != 0 {
		t.Fatalf("Round() = %d before any EndRound, want 0", l.Round())
	}
	l.ChargeTx(0, 40)
	l.Debit(1, Joules(0.125))
	l.EndRound()
	if l.Round() != 1 {
		t.Fatalf("Round() = %d after EndRound, want 1", l.Round())
	}
	for i := 0; i < l.N(); i++ {
		sum := l.SpentJ(i) + l.Residual[i]
		if (sum - m.InitialJ).Abs() > 1e-12 {
			t.Errorf("node %d: spent %v + residual %v != initial %v", i, l.SpentJ(i), l.Residual[i], m.InitialJ)
		}
	}
	if l.SpentJ(1) != 0.125 {
		t.Errorf("SpentJ(1) = %v, want 0.125", l.SpentJ(1))
	}
	if s := l.String(); !strings.Contains(s, "n=3") || !strings.Contains(s, "round=1") {
		t.Errorf("String() = %q, want n=3 and round=1 in summary", s)
	}
}

func TestDebitNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Debit did not panic")
		}
	}()
	NewLedger(1, DefaultModel()).Debit(0, Joules(-1))
}

// TestDebitOverdrawKillsNode pins the fatal-overdraw clamp: a debit
// larger than the residual spends only what was left and records death.
func TestDebitOverdrawKillsNode(t *testing.T) {
	m := DefaultModel()
	m.InitialJ = 0.01
	l := NewLedger(1, m)
	l.Debit(0, Joules(1))
	if l.Alive(0) {
		t.Error("node survived a debit larger than its battery")
	}
	if l.Residual[0] != 0 || l.SpentJ(0) != m.InitialJ {
		t.Errorf("overdraw: residual %v, spent %v, want 0 and %v", l.Residual[0], l.SpentJ(0), m.InitialJ)
	}
	l.Debit(0, Joules(1)) // the dead spend nothing
	if l.SpentJ(0) != m.InitialJ {
		t.Errorf("dead node spent more energy: %v", l.SpentJ(0))
	}
}
