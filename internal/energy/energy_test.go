package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTxCostMonotoneInDistance(t *testing.T) {
	m := DefaultModel()
	prev := m.TxCost(0)
	for d := 5.0; d <= 100; d += 5 {
		cur := m.TxCost(d)
		if cur <= prev {
			t.Fatalf("TxCost not increasing at d=%v", d)
		}
		prev = cur
	}
}

func TestTxCostZeroDistanceEqualsElectronics(t *testing.T) {
	m := DefaultModel()
	if got, want := m.TxCost(0), m.PacketBits*m.Elec; math.Abs(got-want) > 1e-15 {
		t.Fatalf("TxCost(0) = %v, want %v", got, want)
	}
}

func TestRxCost(t *testing.T) {
	m := DefaultModel()
	if got, want := m.RxCost(), 4000*50e-9; math.Abs(got-want) > 1e-15 {
		t.Fatalf("RxCost = %v, want %v", got, want)
	}
}

func TestTxCostNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative distance did not panic")
		}
	}()
	DefaultModel().TxCost(-1)
}

func TestPathLossExponent(t *testing.T) {
	m := DefaultModel()
	m.PathLossExp = 4
	// Quadrupling cost ratio: (2d)^4 / d^4 = 16 on the amplifier term.
	amp1 := m.TxCost(10) - m.TxCost(0)
	amp2 := m.TxCost(20) - m.TxCost(0)
	if math.Abs(amp2/amp1-16) > 1e-9 {
		t.Fatalf("exponent-4 amplifier ratio = %v, want 16", amp2/amp1)
	}
}

func TestLedgerLifecycle(t *testing.T) {
	m := DefaultModel()
	m.InitialJ = 3 * m.TxCost(10) // exactly three transmissions at 10 m
	l := NewLedger(2, m)
	if l.FirstDeath() != -1 || l.AliveCount() != 2 {
		t.Fatal("fresh ledger state wrong")
	}
	for round := 0; round < 3; round++ {
		l.ChargeTx(0, 10)
		l.EndRound()
	}
	if l.Alive(0) {
		t.Fatal("node 0 should be dead after three full-cost transmissions")
	}
	if !l.Alive(1) {
		t.Fatal("idle node died")
	}
	if l.FirstDeath() != 2 {
		t.Fatalf("FirstDeath = %d, want 2", l.FirstDeath())
	}
	if l.AliveCount() != 1 {
		t.Fatalf("AliveCount = %d", l.AliveCount())
	}
}

func TestDeadNodesSpendNothing(t *testing.T) {
	m := DefaultModel()
	m.InitialJ = m.TxCost(10) / 2
	l := NewLedger(1, m)
	l.ChargeTx(0, 10)
	if l.Alive(0) {
		t.Fatal("node should be dead")
	}
	r := l.Residual[0]
	l.ChargeTx(0, 10)
	l.ChargeRx(0)
	if l.Residual[0] != r {
		t.Fatal("dead node kept spending")
	}
}

func TestResidualStatsUniformVsSkewed(t *testing.T) {
	m := DefaultModel()
	uniform := NewLedger(10, m)
	skewed := NewLedger(10, m)
	for i := 0; i < 10; i++ {
		uniform.ChargeTx(i, 20)
	}
	for r := 0; r < 10; r++ {
		skewed.ChargeTx(0, 20) // all load on node 0
	}
	us, ss := uniform.ResidualStats(), skewed.ResidualStats()
	if us.Std > 1e-12 {
		t.Fatalf("uniform load Std = %v, want 0", us.Std)
	}
	if ss.Std <= us.Std {
		t.Fatal("skewed load should have larger Std")
	}
	if math.Abs(us.Mean-(m.InitialJ-m.TxCost(20))) > 1e-12 {
		t.Fatalf("uniform Mean = %v", us.Mean)
	}
}

func TestResidualStatsEmpty(t *testing.T) {
	l := NewLedger(0, DefaultModel())
	if st := l.ResidualStats(); st != (Stats{}) {
		t.Fatalf("empty stats = %+v", st)
	}
}

// Property: residual energy never goes negative and never increases.
func TestQuickResidualMonotone(t *testing.T) {
	f := func(dists []uint8) bool {
		m := DefaultModel()
		m.InitialJ = 0.001
		l := NewLedger(1, m)
		prev := l.Residual[0]
		for _, d := range dists {
			l.ChargeTx(0, float64(d))
			if l.Residual[0] > prev || l.Residual[0] < 0 {
				return false
			}
			prev = l.Residual[0]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
