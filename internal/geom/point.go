// Package geom implements the 2-D computational-geometry substrate used by
// the data-gathering planners: points, segments, circles, convex hulls,
// axis-aligned rectangles, and two spatial indexes (a uniform hash grid and
// a k-d tree) for range and nearest-neighbour queries over sensor fields.
//
// All coordinates are in metres, matching the paper's simulation setup.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric predicates that must absorb
// floating-point rounding (e.g. "is this point on that circle?").
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is a shorthand constructor.
func Pt(x, y float64) Point { return Point{x, y} }

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p + q (vector addition).
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. Prefer it
// over Dist in comparisons: it avoids the square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Rotate returns p rotated by theta radians about the origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// Polar returns the point at distance r and angle theta from p.
func (p Point) Polar(r, theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X + r*c, p.Y + r*s}
}

// Mid returns the midpoint of p and q.
func Mid(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Centroid returns the arithmetic mean of pts. It panics on an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		//mdglint:ignore nopanic documented in the doc comment; the mean of nothing has no value to return
		panic("geom: Centroid of empty point set")
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// Orientation classifies the turn a->b->c: +1 for counter-clockwise,
// -1 for clockwise, 0 for collinear (within Eps scaled by magnitude).
func Orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	scale := math.Max(1, b.Sub(a).Norm()*c.Sub(a).Norm())
	switch {
	case v > Eps*scale:
		return 1
	case v < -Eps*scale:
		return -1
	default:
		return 0
	}
}

// PathLength returns the total length of the open polyline through pts.
func PathLength(pts []Point) Meters {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return Meters(total)
}

// ClosedPathLength returns the length of the closed polygon through pts
// (the final edge returns to pts[0]).
func ClosedPathLength(pts []Point) Meters {
	if len(pts) < 2 {
		return 0
	}
	return PathLength(pts) + Meters(pts[len(pts)-1].Dist(pts[0]))
}
