package geom

import "sort"

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone chain. Collinear boundary points are dropped.
// Degenerate inputs (fewer than three distinct points, or all collinear)
// return the distinct extreme points in order.
func ConvexHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	n := len(uniq)
	if n < 3 {
		return append([]Point(nil), uniq...)
	}
	hull := make([]Point, 0, 2*n)
	// Lower chain.
	for _, p := range uniq {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper chain.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point repeats the first
}

// PolygonPerimeter returns the perimeter of the closed polygon poly.
func PolygonPerimeter(poly []Point) Meters { return ClosedPathLength(poly) }

// PolygonArea returns the (positive) area of the simple polygon poly via
// the shoelace formula.
func PolygonArea(poly []Point) float64 {
	if len(poly) < 3 {
		return 0
	}
	sum := 0.0
	for i := range poly {
		j := (i + 1) % len(poly)
		sum += poly[i].Cross(poly[j])
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}

// InConvexPolygon reports whether p lies inside or on the convex polygon
// poly given in counter-clockwise order.
func InConvexPolygon(poly []Point, p Point) bool {
	if len(poly) == 0 {
		return false
	}
	if len(poly) == 1 {
		return poly[0].Eq(p)
	}
	if len(poly) == 2 {
		return Seg(poly[0], poly[1]).Dist(p) <= Eps
	}
	for i := range poly {
		j := (i + 1) % len(poly)
		if Orientation(poly[i], poly[j], p) < 0 {
			return false
		}
	}
	return true
}
