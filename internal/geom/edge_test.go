package geom

import (
	"math"
	"testing"
)

// Edge-case tables for degenerate geometry: coincident points, zero-length
// tours, and collinear configurations. The coincident/collinear scenario
// layouts in internal/check push the planners through these predicates, so
// they are pinned here at the primitive level.

func TestDistDegenerate(t *testing.T) {
	cases := []struct {
		name string
		p, q Point
		want float64
	}{
		{"coincident-origin", Pt(0, 0), Pt(0, 0), 0},
		{"coincident-offset", Pt(3.5, -2.25), Pt(3.5, -2.25), 0},
		{"negative-zero", Pt(0, 0), Pt(math.Copysign(0, -1), 0), 0},
		{"axis-aligned", Pt(1, 2), Pt(1, 7), 5},
		{"tiny-separation", Pt(0, 0), Pt(5e-324, 0), 5e-324},
		{"huge-no-overflow", Pt(-1e308, 0), Pt(1e308, 0), math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.p.Dist(tc.q)
			if math.IsInf(tc.want, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("Dist = %v, want +Inf", got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("Dist = %v, want %v", got, tc.want)
			}
			if d2 := tc.p.Dist2(tc.q); math.Abs(d2-tc.want*tc.want) > 1e-12 {
				t.Fatalf("Dist2 = %v, want %v", d2, tc.want*tc.want)
			}
		})
	}
}

func TestPathLengthDegenerate(t *testing.T) {
	cases := []struct {
		name       string
		pts        []Point
		open, loop float64
	}{
		{"empty", nil, 0, 0},
		{"single", []Point{Pt(4, 5)}, 0, 0},
		{"two-coincident", []Point{Pt(1, 1), Pt(1, 1)}, 0, 0},
		{"all-coincident", []Point{Pt(2, 3), Pt(2, 3), Pt(2, 3), Pt(2, 3)}, 0, 0},
		{"zero-area-loop", []Point{Pt(0, 0), Pt(10, 0)}, 10, 20},
		{"unit-square", []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}, 3, 4},
		{"collinear-backtrack", []Point{Pt(0, 0), Pt(5, 0), Pt(2, 0)}, 8, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := PathLength(tc.pts); got != Meters(tc.open) {
				t.Fatalf("PathLength = %v, want %v", got, tc.open)
			}
			if got := ClosedPathLength(tc.pts); got != Meters(tc.loop) {
				t.Fatalf("ClosedPathLength = %v, want %v", got, tc.loop)
			}
		})
	}
}

func TestOrientationDegenerate(t *testing.T) {
	cases := []struct {
		name    string
		a, b, c Point
		want    int
	}{
		{"all-coincident", Pt(1, 1), Pt(1, 1), Pt(1, 1), 0},
		{"two-coincident", Pt(0, 0), Pt(0, 0), Pt(5, 5), 0},
		{"collinear-horizontal", Pt(0, 0), Pt(5, 0), Pt(10, 0), 0},
		{"collinear-reversed", Pt(10, 0), Pt(5, 0), Pt(0, 0), 0},
		{"collinear-large-coords", Pt(1e6, 1e6), Pt(2e6, 2e6), Pt(3e6, 3e6), 0},
		{"ccw", Pt(0, 0), Pt(1, 0), Pt(1, 1), 1},
		{"cw", Pt(0, 0), Pt(1, 0), Pt(1, -1), -1},
		{"near-collinear-within-eps", Pt(0, 0), Pt(1, 0), Pt(2, 1e-13), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Orientation(tc.a, tc.b, tc.c); got != tc.want {
				t.Fatalf("Orientation = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestConvexHullCoincidentAndCollinear(t *testing.T) {
	// Coincident and collinear inputs must not panic and must return a
	// hull whose perimeter PathLength agrees with.
	all := []Point{Pt(3, 3), Pt(3, 3), Pt(3, 3)}
	if h := ConvexHull(all); len(h) < 1 {
		t.Fatalf("hull of coincident points: %v", h)
	}
	line := []Point{Pt(0, 0), Pt(2, 2), Pt(4, 4), Pt(1, 1)}
	h := ConvexHull(line)
	if area := PolygonArea(h); math.Abs(area) > 1e-9 {
		t.Fatalf("collinear hull has area %v", area)
	}
}

func TestCentroidCoincident(t *testing.T) {
	c := Centroid([]Point{Pt(7, -2), Pt(7, -2), Pt(7, -2)})
	if !c.Eq(Pt(7, -2)) {
		t.Fatalf("centroid of coincident points: %v", c)
	}
}
