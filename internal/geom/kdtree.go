package geom

import (
	"math"
	"sort"
)

// KDTree is a static 2-d tree over a point set supporting nearest-neighbour
// and radius queries in O(log n) expected time. The tour planners use it to
// find the closest unvisited stop (nearest-neighbour TSP construction) and
// to assign sensors to their nearest polling point.
type KDTree struct {
	pts   []Point
	nodes []kdNode
	root  int32
}

type kdNode struct {
	idx         int32 // index into pts
	left, right int32 // -1 when absent
	axis        uint8 // 0 = x, 1 = y
}

// NewKDTree builds a balanced tree over pts. The tree keeps a reference to
// pts; callers must not mutate the slice afterwards.
func NewKDTree(pts []Point) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(idx, 0)
	return t
}

func (t *KDTree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := uint8(depth & 1)
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := t.pts[idx[a]], t.pts[idx[b]]
		if axis == 0 {
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return pa.Y < pb.Y
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return pa.X < pb.X
	})
	m := len(idx) / 2
	node := kdNode{idx: idx[m], axis: axis}
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, node)
	left := t.build(idx[:m], depth+1)
	right := t.build(idx[m+1:], depth+1)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// Nearest returns the index of the point closest to q and its distance.
// It returns (-1, +Inf) for an empty tree. The skip function, when non-nil,
// excludes points (e.g. already-visited tour stops).
func (t *KDTree) Nearest(q Point, skip func(i int) bool) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	var rec func(n int32)
	rec = func(n int32) {
		if n < 0 {
			return
		}
		node := t.nodes[n]
		p := t.pts[node.idx]
		if skip == nil || !skip(int(node.idx)) {
			d2 := p.Dist2(q)
			if d2 < bestD2 || (d2 == bestD2 && int(node.idx) < best) {
				best, bestD2 = int(node.idx), d2
			}
		}
		var delta float64
		if node.axis == 0 {
			delta = q.X - p.X
		} else {
			delta = q.Y - p.Y
		}
		near, far := node.left, node.right
		if delta > 0 {
			near, far = far, near
		}
		rec(near)
		if delta*delta <= bestD2 {
			rec(far)
		}
	}
	rec(t.root)
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD2)
}

// Within appends to dst the indices of all points within distance r of q
// and returns the extended slice.
func (t *KDTree) Within(q Point, r float64, dst []int) []int {
	r2 := r*r + Eps
	var rec func(n int32)
	rec = func(n int32) {
		if n < 0 {
			return
		}
		node := t.nodes[n]
		p := t.pts[node.idx]
		if p.Dist2(q) <= r2 {
			dst = append(dst, int(node.idx))
		}
		var delta float64
		if node.axis == 0 {
			delta = q.X - p.X
		} else {
			delta = q.Y - p.Y
		}
		if delta <= r {
			rec(node.left)
		}
		if delta >= -r {
			rec(node.right)
		}
	}
	rec(t.root)
	return dst
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }
