package geom

import (
	"math"
	"testing"

	"mobicol/internal/rng"
)

func TestBatchKernelsMatchScalar(t *testing.T) {
	s := rng.New(7)
	pts := randPoints(s, 500, 300)
	xs, ys := SplitXY(pts, nil, nil)
	out := make([]float64, len(pts))
	for trial := 0; trial < 20; trial++ {
		q := Pt(s.Uniform(-20, 320), s.Uniform(-20, 320))
		Dist2Batch(xs, ys, q, out)
		for i, p := range pts {
			if out[i] != p.Dist2(q) {
				t.Fatalf("Dist2Batch[%d] = %v, Dist2 = %v", i, out[i], p.Dist2(q))
			}
		}
		gotI, gotD2 := NearestBatch(xs, ys, q)
		wantI := bruteNearest(pts, q)
		if gotI != wantI || gotD2 != pts[wantI].Dist2(q) {
			t.Fatalf("NearestBatch = (%d, %v), brute = (%d, %v)", gotI, gotD2, wantI, pts[wantI].Dist2(q))
		}
		r := s.Uniform(5, 80)
		want := bruteWithin(pts, q, r)
		if got := CountWithinBatch(xs, ys, q, r*r); got != len(want) {
			t.Fatalf("CountWithinBatch = %d, brute = %d", got, len(want))
		}
		sel := SelectWithinBatch(xs, ys, q, r*r, 0, nil)
		got := make([]int, len(sel))
		for i, v := range sel {
			got[i] = int(v)
		}
		sameIndexSet(t, got, want, "SelectWithinBatch")
	}
}

func TestDist2Gather(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 4), Pt(6, 8), Pt(1, 1)}
	xs, ys := SplitXY(pts, nil, nil)
	idx := []int32{2, 0, 3}
	out := make([]float64, len(idx))
	Dist2Gather(xs, ys, idx, Pt(0, 0), out)
	want := []float64{100, 0, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Dist2Gather[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestSelectWithinBatchBase(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 0, 0}
	got := SelectWithinBatch(xs, ys, Pt(0, 0), 1.1, 100, nil)
	if len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("SelectWithinBatch with base = %v", got)
	}
}

func TestNearestBatchEmpty(t *testing.T) {
	if i, d := NearestBatch(nil, nil, Pt(0, 0)); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("NearestBatch(empty) = (%d, %v)", i, d)
	}
}

func TestSplitXYReusesBuffers(t *testing.T) {
	pts := []Point{Pt(1, 2), Pt(3, 4)}
	xs := make([]float64, 0, 8)
	ys := make([]float64, 0, 8)
	xs, ys = SplitXY(pts, xs, ys)
	if len(xs) != 2 || xs[1] != 3 || ys[1] != 4 {
		t.Fatalf("SplitXY = %v, %v", xs, ys)
	}
}

func BenchmarkDist2Batch10k(b *testing.B) {
	pts := randPoints(rng.New(1), 10_000, 2000)
	xs, ys := SplitXY(pts, nil, nil)
	out := make([]float64, len(pts))
	q := Pt(1000, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dist2Batch(xs, ys, q, out)
	}
}

func BenchmarkGridIndexAutoBuild10k(b *testing.B) {
	pts := randPoints(rng.New(1), 10_000, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewGridIndexAuto(pts, 0)
	}
}
