package geom

import (
	"math"
	"sort"
	"testing"

	"mobicol/internal/rng"
)

func randPoints(s *rng.Source, n int, l float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(s.Uniform(0, l), s.Uniform(0, l))
	}
	return pts
}

// bruteWithin is the reference implementation for range queries.
func bruteWithin(pts []Point, q Point, r float64) []int {
	var out []int
	for i, p := range pts {
		if p.Dist2(q) <= r*r+Eps {
			out = append(out, i)
		}
	}
	return out
}

func bruteNearest(pts []Point, q Point) int {
	best, bestD2 := -1, math.Inf(1)
	for i, p := range pts {
		if d2 := p.Dist2(q); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best
}

func sameIndexSet(t *testing.T, got, want []int, what string) {
	t.Helper()
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d (%v vs %v)", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: mismatch at %d: %v vs %v", what, i, got, want)
		}
	}
}

func TestGridIndexWithinMatchesBrute(t *testing.T) {
	s := rng.New(10)
	pts := randPoints(s, 300, 200)
	g := NewGridIndex(pts, 30)
	for trial := 0; trial < 50; trial++ {
		q := Pt(s.Uniform(-20, 220), s.Uniform(-20, 220))
		r := s.Uniform(5, 60)
		got := g.Within(q, r, nil)
		sameIndexSet(t, got, bruteWithin(pts, q, r), "GridIndex.Within")
	}
}

func TestGridIndexNearestMatchesBrute(t *testing.T) {
	s := rng.New(11)
	pts := randPoints(s, 200, 150)
	g := NewGridIndex(pts, 25)
	for trial := 0; trial < 100; trial++ {
		q := Pt(s.Uniform(-30, 180), s.Uniform(-30, 180))
		got := g.Nearest(q)
		want := bruteNearest(pts, q)
		if pts[got].Dist(q) > pts[want].Dist(q)+1e-9 {
			t.Fatalf("Nearest returned %d (d=%v), brute %d (d=%v)",
				got, pts[got].Dist(q), want, pts[want].Dist(q))
		}
	}
}

func TestGridIndexEmpty(t *testing.T) {
	g := NewGridIndex(nil, 10)
	if g.Nearest(Pt(0, 0)) != -1 {
		t.Fatal("Nearest on empty index should be -1")
	}
	if got := g.Within(Pt(0, 0), 5, nil); len(got) != 0 {
		t.Fatal("Within on empty index should be empty")
	}
}

func TestGridIndexSinglePoint(t *testing.T) {
	g := NewGridIndex([]Point{Pt(7, 7)}, 10)
	if g.Nearest(Pt(100, 100)) != 0 {
		t.Fatal("Nearest should find the only point")
	}
	if got := g.Within(Pt(7, 8), 2, nil); len(got) != 1 {
		t.Fatal("Within should find the only point")
	}
}

func TestGridIndexReusesBuffer(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(2, 0)}
	g := NewGridIndex(pts, 1)
	buf := make([]int, 0, 8)
	got := g.Within(Pt(0, 0), 1.5, buf)
	if len(got) != 2 {
		t.Fatalf("Within = %v", got)
	}
}

// TestGridIndexAuto10k is the large-n sizing test: at 10k points on a
// dense field, an occupancy-derived cell must keep the table O(n), keep
// per-cell population near the target, and answer queries identically
// to brute force.
func TestGridIndexAuto10k(t *testing.T) {
	const n = 10_000
	side := 200.0 * math.Sqrt(float64(n)/100.0)
	s := rng.New(42)
	pts := randPoints(s, n, side)
	g := NewGridIndexAuto(pts, 0)
	cols, rows := g.Cells()
	if cells := cols * rows; cells > 4*n+64 {
		t.Fatalf("auto-sized table has %d cells for %d points; want O(n)", cells, n)
	}
	if occ := float64(n) / float64(cols*rows); occ < 0.5 || occ > 8 {
		t.Fatalf("auto-sized occupancy %.2f points/cell; want near %v", occ, DefaultGridOccupancy)
	}
	for trial := 0; trial < 25; trial++ {
		q := Pt(s.Uniform(-40, side+40), s.Uniform(-40, side+40))
		r := s.Uniform(5, 60)
		sameIndexSet(t, g.Within(q, r, nil), bruteWithin(pts, q, r), "auto GridIndex.Within")
		got := g.Nearest(q)
		want := bruteNearest(pts, q)
		if pts[got].Dist(q) > pts[want].Dist(q)+1e-9 {
			t.Fatalf("auto Nearest returned %d (d=%v), brute %d (d=%v)",
				got, pts[got].Dist(q), want, pts[want].Dist(q))
		}
		gotIn, gotD2 := g.NearestWithin(q, r)
		wantIn := -1
		for _, i := range bruteWithin(pts, q, r) {
			if wantIn == -1 || pts[i].Dist2(q) < pts[wantIn].Dist2(q) {
				wantIn = i
			}
		}
		if gotIn != wantIn {
			t.Fatalf("NearestWithin = %d, brute %d", gotIn, wantIn)
		}
		if wantIn >= 0 && gotD2 != pts[wantIn].Dist2(q) {
			t.Fatalf("NearestWithin d2 = %v, want %v", gotD2, pts[wantIn].Dist2(q))
		}
	}
}

func TestGridIndexAutoDegenerate(t *testing.T) {
	coincident := []Point{Pt(3, 3), Pt(3, 3), Pt(3, 3)}
	g := NewGridIndexAuto(coincident, 2)
	if got := g.Within(Pt(3, 3), 1, nil); len(got) != 3 {
		t.Fatalf("coincident Within = %v", got)
	}
	collinear := []Point{Pt(0, 5), Pt(10, 5), Pt(20, 5), Pt(30, 5)}
	g = NewGridIndexAuto(collinear, 2)
	sameIndexSet(t, g.Within(Pt(15, 5), 6, nil), bruteWithin(collinear, Pt(15, 5), 6), "collinear Within")
	if g.Nearest(Pt(8, 5)) != 1 {
		t.Fatalf("collinear Nearest = %d, want 1", g.Nearest(Pt(8, 5)))
	}
	if NewGridIndexAuto(nil, 0).Nearest(Pt(0, 0)) != -1 {
		t.Fatal("empty auto index Nearest should be -1")
	}
}

// TestGridIndexForDense asserts the radius-aware constructor switches to
// occupancy sizing on dense fields (where radius-sized cells would hold
// many points) and keeps query results exact either way.
func TestGridIndexForDense(t *testing.T) {
	s := rng.New(17)
	pts := randPoints(s, 2000, 200) // dense: r=30 cells would hold ~45 points
	g := NewGridIndexFor(pts, 30)
	if g.CellSize() >= 30 {
		t.Fatalf("dense field kept radius-sized cell %v", g.CellSize())
	}
	for trial := 0; trial < 20; trial++ {
		q := Pt(s.Uniform(0, 200), s.Uniform(0, 200))
		sameIndexSet(t, g.Within(q, 30, nil), bruteWithin(pts, q, 30), "dense NewGridIndexFor.Within")
	}
	sparse := randPoints(s, 20, 200)
	if g := NewGridIndexFor(sparse, 30); g.CellSize() != 30 {
		t.Fatalf("sparse field should keep radius-sized cell, got %v", g.CellSize())
	}
}

func TestKDTreeNearestMatchesBrute(t *testing.T) {
	s := rng.New(12)
	pts := randPoints(s, 400, 300)
	kt := NewKDTree(pts)
	for trial := 0; trial < 200; trial++ {
		q := Pt(s.Uniform(-50, 350), s.Uniform(-50, 350))
		got, gd := kt.Nearest(q, nil)
		want := bruteNearest(pts, q)
		if math.Abs(gd-pts[want].Dist(q)) > 1e-9 {
			t.Fatalf("KDTree.Nearest dist %v, brute %v (idx %d vs %d)", gd, pts[want].Dist(q), got, want)
		}
	}
}

func TestKDTreeNearestWithSkip(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(5, 0)}
	kt := NewKDTree(pts)
	got, _ := kt.Nearest(Pt(0.1, 0), func(i int) bool { return i == 0 })
	if got != 1 {
		t.Fatalf("skip: got %d, want 1", got)
	}
	got, d := kt.Nearest(Pt(0, 0), func(i int) bool { return true })
	if got != -1 || !math.IsInf(d, 1) {
		t.Fatal("all-skipped query should return -1, +Inf")
	}
}

func TestKDTreeWithinMatchesBrute(t *testing.T) {
	s := rng.New(13)
	pts := randPoints(s, 300, 200)
	kt := NewKDTree(pts)
	for trial := 0; trial < 50; trial++ {
		q := Pt(s.Uniform(0, 200), s.Uniform(0, 200))
		r := s.Uniform(5, 80)
		got := kt.Within(q, r, nil)
		sameIndexSet(t, got, bruteWithin(pts, q, r), "KDTree.Within")
	}
}

func TestKDTreeEmpty(t *testing.T) {
	kt := NewKDTree(nil)
	if i, d := kt.Nearest(Pt(0, 0), nil); i != -1 || !math.IsInf(d, 1) {
		t.Fatal("empty KDTree Nearest should be (-1, +Inf)")
	}
	if got := kt.Within(Pt(0, 0), 10, nil); len(got) != 0 {
		t.Fatal("empty KDTree Within should be empty")
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1), Pt(2, 2)}
	kt := NewKDTree(pts)
	got := kt.Within(Pt(1, 1), 0.5, nil)
	if len(got) != 3 {
		t.Fatalf("duplicates: got %v", got)
	}
}

func BenchmarkGridIndexBuild(b *testing.B) {
	pts := randPoints(rng.New(1), 1000, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewGridIndex(pts, 30)
	}
}

func BenchmarkGridIndexWithin(b *testing.B) {
	pts := randPoints(rng.New(1), 1000, 500)
	g := NewGridIndex(pts, 30)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(pts[i%len(pts)], 30, buf[:0])
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	pts := randPoints(rng.New(1), 1000, 500)
	kt := NewKDTree(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kt.Nearest(pts[i%len(pts)], nil)
	}
}
