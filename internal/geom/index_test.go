package geom

import (
	"math"
	"sort"
	"testing"

	"mobicol/internal/rng"
)

func randPoints(s *rng.Source, n int, l float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(s.Uniform(0, l), s.Uniform(0, l))
	}
	return pts
}

// bruteWithin is the reference implementation for range queries.
func bruteWithin(pts []Point, q Point, r float64) []int {
	var out []int
	for i, p := range pts {
		if p.Dist2(q) <= r*r+Eps {
			out = append(out, i)
		}
	}
	return out
}

func bruteNearest(pts []Point, q Point) int {
	best, bestD2 := -1, math.Inf(1)
	for i, p := range pts {
		if d2 := p.Dist2(q); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best
}

func sameIndexSet(t *testing.T, got, want []int, what string) {
	t.Helper()
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d (%v vs %v)", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: mismatch at %d: %v vs %v", what, i, got, want)
		}
	}
}

func TestGridIndexWithinMatchesBrute(t *testing.T) {
	s := rng.New(10)
	pts := randPoints(s, 300, 200)
	g := NewGridIndex(pts, 30)
	for trial := 0; trial < 50; trial++ {
		q := Pt(s.Uniform(-20, 220), s.Uniform(-20, 220))
		r := s.Uniform(5, 60)
		got := g.Within(q, r, nil)
		sameIndexSet(t, got, bruteWithin(pts, q, r), "GridIndex.Within")
	}
}

func TestGridIndexNearestMatchesBrute(t *testing.T) {
	s := rng.New(11)
	pts := randPoints(s, 200, 150)
	g := NewGridIndex(pts, 25)
	for trial := 0; trial < 100; trial++ {
		q := Pt(s.Uniform(-30, 180), s.Uniform(-30, 180))
		got := g.Nearest(q)
		want := bruteNearest(pts, q)
		if pts[got].Dist(q) > pts[want].Dist(q)+1e-9 {
			t.Fatalf("Nearest returned %d (d=%v), brute %d (d=%v)",
				got, pts[got].Dist(q), want, pts[want].Dist(q))
		}
	}
}

func TestGridIndexEmpty(t *testing.T) {
	g := NewGridIndex(nil, 10)
	if g.Nearest(Pt(0, 0)) != -1 {
		t.Fatal("Nearest on empty index should be -1")
	}
	if got := g.Within(Pt(0, 0), 5, nil); len(got) != 0 {
		t.Fatal("Within on empty index should be empty")
	}
}

func TestGridIndexSinglePoint(t *testing.T) {
	g := NewGridIndex([]Point{Pt(7, 7)}, 10)
	if g.Nearest(Pt(100, 100)) != 0 {
		t.Fatal("Nearest should find the only point")
	}
	if got := g.Within(Pt(7, 8), 2, nil); len(got) != 1 {
		t.Fatal("Within should find the only point")
	}
}

func TestGridIndexReusesBuffer(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(2, 0)}
	g := NewGridIndex(pts, 1)
	buf := make([]int, 0, 8)
	got := g.Within(Pt(0, 0), 1.5, buf)
	if len(got) != 2 {
		t.Fatalf("Within = %v", got)
	}
}

func TestKDTreeNearestMatchesBrute(t *testing.T) {
	s := rng.New(12)
	pts := randPoints(s, 400, 300)
	kt := NewKDTree(pts)
	for trial := 0; trial < 200; trial++ {
		q := Pt(s.Uniform(-50, 350), s.Uniform(-50, 350))
		got, gd := kt.Nearest(q, nil)
		want := bruteNearest(pts, q)
		if math.Abs(gd-pts[want].Dist(q)) > 1e-9 {
			t.Fatalf("KDTree.Nearest dist %v, brute %v (idx %d vs %d)", gd, pts[want].Dist(q), got, want)
		}
	}
}

func TestKDTreeNearestWithSkip(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(5, 0)}
	kt := NewKDTree(pts)
	got, _ := kt.Nearest(Pt(0.1, 0), func(i int) bool { return i == 0 })
	if got != 1 {
		t.Fatalf("skip: got %d, want 1", got)
	}
	got, d := kt.Nearest(Pt(0, 0), func(i int) bool { return true })
	if got != -1 || !math.IsInf(d, 1) {
		t.Fatal("all-skipped query should return -1, +Inf")
	}
}

func TestKDTreeWithinMatchesBrute(t *testing.T) {
	s := rng.New(13)
	pts := randPoints(s, 300, 200)
	kt := NewKDTree(pts)
	for trial := 0; trial < 50; trial++ {
		q := Pt(s.Uniform(0, 200), s.Uniform(0, 200))
		r := s.Uniform(5, 80)
		got := kt.Within(q, r, nil)
		sameIndexSet(t, got, bruteWithin(pts, q, r), "KDTree.Within")
	}
}

func TestKDTreeEmpty(t *testing.T) {
	kt := NewKDTree(nil)
	if i, d := kt.Nearest(Pt(0, 0), nil); i != -1 || !math.IsInf(d, 1) {
		t.Fatal("empty KDTree Nearest should be (-1, +Inf)")
	}
	if got := kt.Within(Pt(0, 0), 10, nil); len(got) != 0 {
		t.Fatal("empty KDTree Within should be empty")
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1), Pt(2, 2)}
	kt := NewKDTree(pts)
	got := kt.Within(Pt(1, 1), 0.5, nil)
	if len(got) != 3 {
		t.Fatalf("duplicates: got %v", got)
	}
}

func BenchmarkGridIndexBuild(b *testing.B) {
	pts := randPoints(rng.New(1), 1000, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewGridIndex(pts, 30)
	}
}

func BenchmarkGridIndexWithin(b *testing.B) {
	pts := randPoints(rng.New(1), 1000, 500)
	g := NewGridIndex(pts, 30)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(pts[i%len(pts)], 30, buf[:0])
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	pts := randPoints(rng.New(1), 1000, 500)
	kt := NewKDTree(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kt.Nearest(pts[i%len(pts)], nil)
	}
}
