package geom

import "math"

// GridIndex is a uniform spatial hash over points that answers
// fixed-radius range queries in expected O(1 + output) time. It is the
// workhorse behind unit-disk-graph construction: building the neighbour
// lists of an N-sensor field costs O(N) with a cell size equal to the
// transmission range, versus O(N²) for the naive double loop.
//
// Internally the index stores the points twice: once as the caller's
// []Point (for identity) and once as flat xs/ys coordinate slices
// grouped by cell in CSR layout (cellStart/order). Queries scan each
// candidate cell's contiguous coordinate range with the batch kernels
// from batch.go instead of chasing a map of bucket slices, which is
// both allocation-free at query time and vectorisation-friendly.
type GridIndex struct {
	cell float64
	pts  []Point
	minX float64
	minY float64
	cols int
	rows int
	// CSR buckets: cell k holds points order[cellStart[k]:cellStart[k+1]],
	// ascending by point index. xs/ys are the coordinates of order[i]'s
	// point at flat position i, so one cell is one contiguous slice pair.
	cellStart []int32
	order     []int32
	xs        []float64
	ys        []float64
}

// NewGridIndex indexes pts with the given cell size (> 0). The index keeps
// a reference to pts; callers must not mutate the slice afterwards.
//
//mdglint:allow-mut(initializes only the index's freshly allocated CSR arrays; pts is retained read-only by the documented contract above)
func NewGridIndex(pts []Point, cell float64) *GridIndex {
	if cell <= 0 {
		//mdglint:ignore nopanic documented precondition; cell sizes are positive literals or ranges in all callers
		panic("geom: NewGridIndex with non-positive cell size")
	}
	g := &GridIndex{cell: cell, pts: pts}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		g.cellStart = make([]int32, 2)
		return g
	}
	b := Bound(pts)
	g.minX, g.minY = b.Min.X, b.Min.Y
	g.cols = int(math.Floor((b.Max.X-b.Min.X)/cell)) + 1
	g.rows = int(math.Floor((b.Max.Y-b.Min.Y)/cell)) + 1
	// Counting sort by cell key. Appending point indices in input order
	// keeps each cell's bucket ascending, matching the map-of-slices
	// construction this replaces bit for bit.
	cells := g.cols * g.rows
	g.cellStart = make([]int32, cells+1)
	for _, p := range pts {
		g.cellStart[g.key(p)+1]++
	}
	for k := 0; k < cells; k++ {
		g.cellStart[k+1] += g.cellStart[k]
	}
	g.order = make([]int32, len(pts))
	g.xs = make([]float64, len(pts))
	g.ys = make([]float64, len(pts))
	fill := make([]int32, cells)
	for i, p := range pts {
		k := g.key(p)
		at := g.cellStart[k] + fill[k]
		fill[k]++
		g.order[at] = int32(i)
		g.xs[at] = p.X
		g.ys[at] = p.Y
	}
	return g
}

// DefaultGridOccupancy is the points-per-cell target NewGridIndexAuto
// aims for. Around two points per cell keeps range queries touching a
// handful of points per cell without exploding the cell table.
const DefaultGridOccupancy = 2.0

// NewGridIndexAuto indexes pts with a cell size derived from the point
// density instead of a caller-supplied radius: cells are sized so the
// expected occupancy is targetOccupancy points per cell (<= 0 selects
// DefaultGridOccupancy). Radius-derived cell sizes degrade at scale —
// at n=100k a range-sized cell on a dense field holds hundreds of
// points and every query degenerates toward a linear scan — while
// occupancy-derived cells keep per-cell work constant at any n. The
// cell table is capped near 4 cells per point so degenerate aspect
// ratios cannot balloon memory, and coincident point sets fall back to
// a single-cell index.
func NewGridIndexAuto(pts []Point, targetOccupancy float64) *GridIndex {
	if targetOccupancy <= 0 {
		targetOccupancy = DefaultGridOccupancy
	}
	n := len(pts)
	if n == 0 {
		return NewGridIndex(pts, 1)
	}
	b := Bound(pts)
	w, h := b.Max.X-b.Min.X, b.Max.Y-b.Min.Y
	span := math.Max(w, h)
	if !(span > 0) {
		// All points coincident: any cell size yields one bucket.
		return NewGridIndex(pts, 1)
	}
	var cell float64
	if w > 0 && h > 0 {
		cell = math.Sqrt(w * h * targetOccupancy / float64(n))
	} else {
		// Collinear points: one axis is degenerate, so size along the
		// populated axis only.
		cell = span * targetOccupancy / float64(n)
	}
	// Never allow more than ~4 cells per point (plus slack for tiny n):
	// the table must stay O(n) even for extreme occupancy requests.
	if minCell := span / math.Sqrt(4*float64(n)+64); cell < minCell {
		cell = minCell
	}
	return NewGridIndex(pts, cell)
}

// NewGridIndexFor indexes pts for fixed-radius queries of radius r: the
// classic radius-sized cell on sparse fields, shrinking toward the
// occupancy-derived auto size when the field is dense enough that
// r-sized cells would hold many points each. Use it wherever the query
// radius is known up front (coverage construction, neighbour queries).
func NewGridIndexFor(pts []Point, r float64) *GridIndex {
	if r <= 0 {
		//mdglint:ignore nopanic documented precondition; query radii are positive ranges in all callers
		panic("geom: NewGridIndexFor with non-positive radius")
	}
	n := len(pts)
	if n == 0 {
		return NewGridIndex(pts, r)
	}
	b := Bound(pts)
	w, h := b.Max.X-b.Min.X, b.Max.Y-b.Min.Y
	if w > 0 && h > 0 {
		if auto := math.Sqrt(w * h * DefaultGridOccupancy / float64(n)); auto < r {
			return NewGridIndexAuto(pts, DefaultGridOccupancy)
		}
	}
	return NewGridIndex(pts, r)
}

// CellSize returns the index's cell edge length in metres.
func (g *GridIndex) CellSize() float64 { return g.cell }

// Cells returns the dimensions of the cell table.
func (g *GridIndex) Cells() (cols, rows int) { return g.cols, g.rows }

func (g *GridIndex) cellOf(p Point) (cx, cy int) {
	cx = int(math.Floor((p.X - g.minX) / g.cell))
	cy = int(math.Floor((p.Y - g.minY) / g.cell))
	return cx, cy
}

func (g *GridIndex) key(p Point) int {
	cx, cy := g.cellOf(p)
	return cy*g.cols + cx
}

// Within appends to dst the indices of all indexed points within distance r
// of q (inclusive) and returns the extended slice. Pass a reused buffer to
// avoid allocation in hot loops.
func (g *GridIndex) Within(q Point, r float64, dst []int) []int {
	if len(g.pts) == 0 {
		return dst
	}
	r2 := r*r + Eps
	span := int(math.Ceil(r/g.cell)) + 1
	cx, cy := g.cellOf(q)
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		lo := max(cx-span, 0)
		hi := min(cx+span, g.cols-1)
		for x := lo; x <= hi; x++ {
			k := y*g.cols + x
			s, e := g.cellStart[k], g.cellStart[k+1]
			xs, ys := g.xs[s:e], g.ys[s:e]
			for i := range xs {
				dx := xs[i] - q.X
				dyy := ys[i] - q.Y
				if dx*dx+dyy*dyy <= r2 {
					//mdglint:allow-alloc(amortized growth of the caller's hit buffer)
					dst = append(dst, int(g.order[s+int32(i)]))
				}
			}
		}
	}
	return dst
}

// Nearest returns the index of the indexed point closest to q, or -1 for an
// empty index. Ties break toward the lower index.
func (g *GridIndex) Nearest(q Point) int {
	if len(g.pts) == 0 {
		return -1
	}
	// Expand ring by ring until a hit is found, then one more ring to be
	// safe (a closer point can live in the next ring than the first hit's).
	best, bestD2 := -1, math.Inf(1)
	cx, cy := g.cellOf(q)
	// The search must be able to reach every cell even when q lies far
	// outside the indexed bounding box.
	maxSpan := max(max(abs(cx), abs(g.cols-1-cx)), max(abs(cy), abs(g.rows-1-cy)))
	for span := 0; span <= maxSpan; span++ {
		found := false
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= g.rows {
				continue
			}
			for dx := -span; dx <= span; dx++ {
				if abs(dx) != span && abs(dy) != span {
					continue // interior already scanned in earlier rings
				}
				x := cx + dx
				if x < 0 || x >= g.cols {
					continue
				}
				k := y*g.cols + x
				s, e := g.cellStart[k], g.cellStart[k+1]
				xs, ys := g.xs[s:e], g.ys[s:e]
				for i := range xs {
					ddx := xs[i] - q.X
					ddy := ys[i] - q.Y
					d2 := ddx*ddx + ddy*ddy
					idx := int(g.order[s+int32(i)])
					if d2 < bestD2 || (d2 == bestD2 && idx < best) {
						best, bestD2 = idx, d2
						found = true
					}
				}
			}
		}
		// Once a candidate exists and the ring is farther than the best
		// distance, no closer point can appear.
		if best >= 0 && !found {
			ringDist := float64(span-1) * g.cell
			if ringDist*ringDist > bestD2 {
				break
			}
		}
	}
	return best
}

// NearestWithin returns the index of the closest indexed point within
// distance r of q and its squared distance, or (-1, +inf) when no point
// is in range. Ties break toward the lower index. Unlike Nearest it
// never expands past the radius, so dense-field callers with a known
// bound (warm-start stop assignment) pay O(cells under r), not O(rings
// to the nearest point).
func (g *GridIndex) NearestWithin(q Point, r float64) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	if len(g.pts) == 0 {
		return best, bestD2
	}
	bound := r*r + Eps
	span := int(math.Ceil(r/g.cell)) + 1
	cx, cy := g.cellOf(q)
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		lo := max(cx-span, 0)
		hi := min(cx+span, g.cols-1)
		for x := lo; x <= hi; x++ {
			k := y*g.cols + x
			s, e := g.cellStart[k], g.cellStart[k+1]
			xs, ys := g.xs[s:e], g.ys[s:e]
			for i := range xs {
				dx := xs[i] - q.X
				dyy := ys[i] - q.Y
				d2 := dx*dx + dyy*dyy
				if d2 > bound {
					continue
				}
				idx := int(g.order[s+int32(i)])
				if d2 < bestD2 || (d2 == bestD2 && idx < best) {
					best, bestD2 = idx, d2
				}
			}
		}
	}
	return best, bestD2
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
