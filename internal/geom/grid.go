package geom

import "math"

// GridIndex is a uniform spatial hash over points that answers
// fixed-radius range queries in expected O(1 + output) time. It is the
// workhorse behind unit-disk-graph construction: building the neighbour
// lists of an N-sensor field costs O(N) with a cell size equal to the
// transmission range, versus O(N²) for the naive double loop.
type GridIndex struct {
	cell   float64
	pts    []Point
	minX   float64
	minY   float64
	cols   int
	rows   int
	bucket map[int][]int32
}

// NewGridIndex indexes pts with the given cell size (> 0). The index keeps
// a reference to pts; callers must not mutate the slice afterwards.
func NewGridIndex(pts []Point, cell float64) *GridIndex {
	if cell <= 0 {
		//mdglint:ignore nopanic documented precondition; cell sizes are positive literals or ranges in all callers
		panic("geom: NewGridIndex with non-positive cell size")
	}
	g := &GridIndex{cell: cell, pts: pts, bucket: make(map[int][]int32, len(pts))}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		return g
	}
	b := Bound(pts)
	g.minX, g.minY = b.Min.X, b.Min.Y
	g.cols = int(math.Floor((b.Max.X-b.Min.X)/cell)) + 1
	g.rows = int(math.Floor((b.Max.Y-b.Min.Y)/cell)) + 1
	for i, p := range pts {
		k := g.key(p)
		g.bucket[k] = append(g.bucket[k], int32(i))
	}
	return g
}

func (g *GridIndex) cellOf(p Point) (cx, cy int) {
	cx = int(math.Floor((p.X - g.minX) / g.cell))
	cy = int(math.Floor((p.Y - g.minY) / g.cell))
	return cx, cy
}

func (g *GridIndex) key(p Point) int {
	cx, cy := g.cellOf(p)
	return cy*g.cols + cx
}

// Within appends to dst the indices of all indexed points within distance r
// of q (inclusive) and returns the extended slice. Pass a reused buffer to
// avoid allocation in hot loops.
func (g *GridIndex) Within(q Point, r float64, dst []int) []int {
	if len(g.pts) == 0 {
		return dst
	}
	r2 := r * r
	span := int(math.Ceil(r/g.cell)) + 1
	cx, cy := g.cellOf(q)
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, i := range g.bucket[y*g.cols+x] {
				if g.pts[i].Dist2(q) <= r2+Eps {
					dst = append(dst, int(i))
				}
			}
		}
	}
	return dst
}

// Nearest returns the index of the indexed point closest to q, or -1 for an
// empty index. Ties break toward the lower index.
func (g *GridIndex) Nearest(q Point) int {
	if len(g.pts) == 0 {
		return -1
	}
	// Expand ring by ring until a hit is found, then one more ring to be
	// safe (a closer point can live in the next ring than the first hit's).
	best, bestD2 := -1, math.Inf(1)
	cx, cy := g.cellOf(q)
	// The search must be able to reach every cell even when q lies far
	// outside the indexed bounding box.
	maxSpan := max(max(abs(cx), abs(g.cols-1-cx)), max(abs(cy), abs(g.rows-1-cy)))
	for span := 0; span <= maxSpan; span++ {
		found := false
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= g.rows {
				continue
			}
			for dx := -span; dx <= span; dx++ {
				if abs(dx) != span && abs(dy) != span {
					continue // interior already scanned in earlier rings
				}
				x := cx + dx
				if x < 0 || x >= g.cols {
					continue
				}
				for _, i := range g.bucket[y*g.cols+x] {
					d2 := g.pts[i].Dist2(q)
					if d2 < bestD2 || (d2 == bestD2 && int(i) < best) {
						best, bestD2 = int(i), d2
						found = true
					}
				}
			}
		}
		// Once a candidate exists and the ring is farther than the best
		// distance, no closer point can appear.
		if best >= 0 && !found {
			ringDist := float64(span-1) * g.cell
			if ringDist*ringDist > bestD2 {
				break
			}
		}
	}
	return best
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
