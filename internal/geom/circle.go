package geom

import "math"

// Circle is the disk of radius R centred at C. In this repository a
// circle almost always models a sensor's transmission range: the mobile
// collector can receive a sensor's single-hop upload from any point
// inside the disk.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies inside or on the circle (within Eps).
func (c Circle) Contains(p Point) bool {
	return c.C.Dist2(p) <= (c.R+Eps)*(c.R+Eps)
}

// ContainsStrict reports whether p lies strictly inside the circle.
func (c Circle) ContainsStrict(p Point) bool {
	return c.C.Dist2(p) < c.R*c.R-Eps
}

// OnBoundary reports whether p lies on the circle boundary within Eps.
func (c Circle) OnBoundary(p Point) bool {
	return math.Abs(c.C.Dist(p)-c.R) <= 1e-6*(1+c.R)
}

// Intersect returns the 0, 1 or 2 intersection points of circles c and d.
// Coincident circles return no points (infinitely many exist; callers that
// generate candidate polling points do not need them — the shared centre
// covers the same set).
func (c Circle) Intersect(d Circle) []Point {
	dist := c.C.Dist(d.C)
	if dist < Eps && math.Abs(c.R-d.R) < Eps {
		return nil // coincident
	}
	if dist > c.R+d.R+Eps {
		return nil // separate
	}
	if dist < math.Abs(c.R-d.R)-Eps {
		return nil // one inside the other
	}
	// a is the distance from c.C to the chord midpoint along the centre line.
	a := (dist*dist + c.R*c.R - d.R*d.R) / (2 * dist)
	h2 := c.R*c.R - a*a
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	dir := d.C.Sub(c.C).Scale(1 / dist)
	mid := c.C.Add(dir.Scale(a))
	if h < Eps {
		return []Point{mid} // tangent
	}
	perp := Point{-dir.Y, dir.X}
	return []Point{mid.Add(perp.Scale(h)), mid.Sub(perp.Scale(h))}
}

// Overlaps reports whether the two disks share interior points.
func (c Circle) Overlaps(d Circle) bool {
	sum := c.R + d.R
	return c.C.Dist2(d.C) < sum*sum+Eps
}

// CoverPointCandidates returns, for the family of disks of radius r
// centred at sites, the classic candidate set for geometric disk cover:
// every site itself plus every intersection point of two site circles of
// radius r. A standard result for covering points by radius-r disks is
// that some optimal cover uses only centres from this set, because any
// disk can be slid until its boundary touches two covered sites (or is
// centred on one) without losing coverage.
func CoverPointCandidates(sites []Point, r float64) []Point {
	out := make([]Point, 0, len(sites)*3)
	out = append(out, sites...)
	for i := 0; i < len(sites); i++ {
		ci := Circle{sites[i], r}
		for j := i + 1; j < len(sites); j++ {
			// Two radius-r circles intersect only if centres are within 2r.
			if sites[i].Dist2(sites[j]) > 4*r*r+Eps {
				continue
			}
			out = append(out, ci.Intersect(Circle{sites[j], r})...)
		}
	}
	return out
}
