package geom

// Dimensioned quantities.
//
// The planners juggle three physical dimensions — length, energy, and
// time — and a bare float64 lets a meters-for-joules swap compile
// silently. The named types below (and energy.Joules, sim.Rounds) are
// zero-cost: they compile to exactly the same code as float64, but the
// compiler rejects cross-dimension assignment and arithmetic, and the
// mdglint unitcheck analyzer rejects conversions that would launder a
// dimensioned value back through a bare float64.
//
// Policy (see DESIGN.md "Static analysis"): geometric *primitives* —
// Point coordinates, Dist/Dist2 results, radii inside the covering
// engine — stay raw float64, because dimensional algebra (squared
// distances, scale factors) lives there. The dimensioned types start
// where quantities become results that cross package boundaries: path
// and tour lengths, speeds, energies, and lifetimes. Promoting a raw
// float64 into a dimensioned type is always allowed; stripping the
// dimension requires an annotated conversion boundary.

// Meters is a length or distance in metres, the unit of every tour
// length the experiments report.
type Meters float64

// Scale returns the length scaled by the dimensionless factor f.
func (m Meters) Scale(f float64) Meters { return m * Meters(f) }

// TravelTime returns the time in seconds to cover m at speed v.
func (m Meters) TravelTime(v MetersPerSecond) float64 {
	//mdglint:ignore unitcheck dimensional division boundary: metres over metres-per-second yields seconds
	return float64(m) / float64(v)
}

// MetersPerSecond is a collector speed. The paper cites practical mobile
// systems moving at 0.1-2 m/s.
type MetersPerSecond float64

// Distance returns the length covered in the given number of seconds.
func (v MetersPerSecond) Distance(seconds float64) Meters {
	//mdglint:ignore unitcheck dimensional product boundary: speed times seconds yields metres
	return Meters(float64(v) * seconds)
}
