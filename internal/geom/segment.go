package geom

import "math"

// Segment is the closed line segment between A and B.
type Segment struct {
	A, B Point
}

// Seg is a shorthand constructor.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Mid returns the segment midpoint.
func (s Segment) Mid() Point { return Mid(s.A, s.B) }

// ClosestPoint returns the point on s closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return s.A.Lerp(s.B, t)
}

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Point) float64 { return p.Dist(s.ClosestPoint(p)) }

// PointAt returns the point a fraction t in [0,1] along the segment.
func (s Segment) PointAt(t float64) Point { return s.A.Lerp(s.B, t) }

// Intersects reports whether segments s and u share at least one point.
// Collinear overlaps count as intersections.
func (s Segment) Intersects(u Segment) bool {
	o1 := Orientation(s.A, s.B, u.A)
	o2 := Orientation(s.A, s.B, u.B)
	o3 := Orientation(u.A, u.B, s.A)
	o4 := Orientation(u.A, u.B, s.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear special cases: an endpoint lies on the other segment.
	return (o1 == 0 && onSegment(s, u.A)) ||
		(o2 == 0 && onSegment(s, u.B)) ||
		(o3 == 0 && onSegment(u, s.A)) ||
		(o4 == 0 && onSegment(u, s.B))
}

// onSegment reports whether collinear point p lies within s's bounding box.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X)-Eps <= p.X && p.X <= math.Max(s.A.X, s.B.X)+Eps &&
		math.Min(s.A.Y, s.B.Y)-Eps <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)+Eps
}

// Intersection returns the intersection point of the lines through s and u
// and whether the two segments properly intersect at that point. For
// parallel or collinear segments ok is false.
func (s Segment) Intersection(u Segment) (p Point, ok bool) {
	d1 := s.B.Sub(s.A)
	d2 := u.B.Sub(u.A)
	denom := d1.Cross(d2)
	if math.Abs(denom) < Eps {
		return Point{}, false
	}
	t := u.A.Sub(s.A).Cross(d2) / denom
	w := u.A.Sub(s.A).Cross(d1) / denom
	if t < -Eps || t > 1+Eps || w < -Eps || w > 1+Eps {
		return Point{}, false
	}
	return s.A.Add(d1.Scale(t)), true
}
