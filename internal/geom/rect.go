package geom

import "math"

// Rect is an axis-aligned rectangle with Min at the lower-left corner and
// Max at the upper-right corner. The sensing fields in the paper are
// L×L squares; Rect generalises them.
type Rect struct {
	Min, Max Point
}

// Square returns the L×L field with lower-left corner at the origin.
func Square(l float64) Rect { return Rect{Point{0, 0}, Point{l, l}} }

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle centre — the paper's default sink location.
func (r Rect) Center() Point { return Mid(r.Min, r.Max) }

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Expand returns the rectangle grown by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{Point{r.Min.X - m, r.Min.Y - m}, Point{r.Max.X + m, r.Max.Y + m}}
}

// Intersects reports whether the two closed rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X+Eps && o.Min.X <= r.Max.X+Eps &&
		r.Min.Y <= o.Max.Y+Eps && o.Min.Y <= r.Max.Y+Eps
}

// Bound returns the smallest rectangle containing all pts. It panics on an
// empty slice.
func Bound(pts []Point) Rect {
	if len(pts) == 0 {
		//mdglint:ignore nopanic documented in the doc comment; the bounding box of nothing has no value to return
		panic("geom: Bound of empty point set")
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// GridPoints returns the lattice of points inside r with the given spacing,
// starting at r.Min. This is the "predefined positions on a grid" candidate
// set used in the paper's evaluation of the single-hop scheme (20 m apart).
// The lattice always includes points on the Max edges if the spacing divides
// the extent exactly (within Eps).
func (r Rect) GridPoints(spacing float64) []Point {
	if spacing <= 0 {
		//mdglint:ignore nopanic documented precondition; spacing comes from validated configs or literals
		panic("geom: GridPoints with non-positive spacing")
	}
	nx := int(math.Floor(r.Width()/spacing+Eps)) + 1
	ny := int(math.Floor(r.Height()/spacing+Eps)) + 1
	pts := make([]Point, 0, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			pts = append(pts, Point{r.Min.X + float64(i)*spacing, r.Min.Y + float64(j)*spacing})
		}
	}
	return pts
}
