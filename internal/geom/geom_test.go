package geom

import (
	"math"
	"testing"
	"testing/quick"

	"mobicol/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Fatalf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Fatalf("Cross = %v", got)
	}
}

func TestDistAgreesWithDist2(t *testing.T) {
	s := rng.New(1)
	for i := 0; i < 1000; i++ {
		p := Pt(s.Uniform(-100, 100), s.Uniform(-100, 100))
		q := Pt(s.Uniform(-100, 100), s.Uniform(-100, 100))
		if !almostEq(p.Dist(q)*p.Dist(q), p.Dist2(q), 1e-6) {
			t.Fatalf("Dist^2 != Dist2 for %v %v", p, q)
		}
	}
}

func TestLerpEndpoints(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if !p.Lerp(q, 0).Eq(p) || !p.Lerp(q, 1).Eq(q) {
		t.Fatal("Lerp endpoints wrong")
	}
	if !p.Lerp(q, 0.5).Eq(Pt(5, 10)) {
		t.Fatal("Lerp midpoint wrong")
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	s := rng.New(2)
	for i := 0; i < 500; i++ {
		p := Pt(s.Uniform(-5, 5), s.Uniform(-5, 5))
		theta := s.Uniform(0, 2*math.Pi)
		if !almostEq(p.Rotate(theta).Norm(), p.Norm(), 1e-9) {
			t.Fatalf("rotation changed norm of %v", p)
		}
	}
}

func TestPolar(t *testing.T) {
	p := Pt(1, 1).Polar(2, math.Pi/2)
	if !p.Eq(Pt(1, 3)) {
		t.Fatalf("Polar = %v, want (1,3)", p)
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)})
	if !c.Eq(Pt(1, 1)) {
		t.Fatalf("Centroid = %v", c)
	}
}

func TestOrientation(t *testing.T) {
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(1, 1)) != 1 {
		t.Fatal("ccw not detected")
	}
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(1, -1)) != -1 {
		t.Fatal("cw not detected")
	}
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(2, 0)) != 0 {
		t.Fatal("collinear not detected")
	}
}

func TestPathLengths(t *testing.T) {
	sq := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	if got := PathLength(sq); !almostEq(float64(got), 3, 1e-12) {
		t.Fatalf("PathLength = %v", got)
	}
	if got := ClosedPathLength(sq); !almostEq(float64(got), 4, 1e-12) {
		t.Fatalf("ClosedPathLength = %v", got)
	}
	if ClosedPathLength([]Point{Pt(3, 3)}) != 0 {
		t.Fatal("singleton closed path should be 0")
	}
}

func TestSegmentClosestPointAndDist(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p    Point
		want Point
		d    float64
	}{
		{Pt(5, 3), Pt(5, 0), 3},
		{Pt(-2, 0), Pt(0, 0), 2},
		{Pt(14, 3), Pt(10, 0), 5},
	}
	for _, c := range cases {
		got := s.ClosestPoint(c.p)
		if !got.Eq(c.want) {
			t.Fatalf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
		if !almostEq(s.Dist(c.p), c.d, 1e-12) {
			t.Fatalf("Dist(%v) = %v, want %v", c.p, s.Dist(c.p), c.d)
		}
	}
}

func TestSegmentDegenerate(t *testing.T) {
	s := Seg(Pt(2, 2), Pt(2, 2))
	if !s.ClosestPoint(Pt(9, 9)).Eq(Pt(2, 2)) {
		t.Fatal("degenerate segment closest point wrong")
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true},
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 2), Pt(3, 3)), false},
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(3, 0)), true}, // collinear overlap
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 1)), true}, // shared endpoint
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), false},
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Fatalf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	p, ok := Seg(Pt(0, 0), Pt(2, 2)).Intersection(Seg(Pt(0, 2), Pt(2, 0)))
	if !ok || !p.Eq(Pt(1, 1)) {
		t.Fatalf("Intersection = %v, %v", p, ok)
	}
	if _, ok := Seg(Pt(0, 0), Pt(1, 0)).Intersection(Seg(Pt(0, 1), Pt(1, 1))); ok {
		t.Fatal("parallel segments should not intersect")
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Pt(0, 0), 5}
	if !c.Contains(Pt(3, 4)) {
		t.Fatal("boundary point not contained")
	}
	if c.Contains(Pt(3.1, 4.1)) {
		t.Fatal("exterior point contained")
	}
	if !c.ContainsStrict(Pt(1, 1)) {
		t.Fatal("interior point not strictly contained")
	}
	if c.ContainsStrict(Pt(3, 4)) {
		t.Fatal("boundary point strictly contained")
	}
}

func TestCircleIntersectTwoPoints(t *testing.T) {
	a := Circle{Pt(0, 0), 5}
	b := Circle{Pt(6, 0), 5}
	pts := a.Intersect(b)
	if len(pts) != 2 {
		t.Fatalf("got %d intersection points, want 2", len(pts))
	}
	for _, p := range pts {
		if !a.OnBoundary(p) || !b.OnBoundary(p) {
			t.Fatalf("intersection point %v not on both boundaries", p)
		}
	}
}

func TestCircleIntersectTangent(t *testing.T) {
	a := Circle{Pt(0, 0), 2}
	b := Circle{Pt(4, 0), 2}
	pts := a.Intersect(b)
	if len(pts) != 1 || !pts[0].Eq(Pt(2, 0)) {
		t.Fatalf("tangent intersection = %v", pts)
	}
}

func TestCircleIntersectDisjointAndNested(t *testing.T) {
	a := Circle{Pt(0, 0), 1}
	if pts := a.Intersect(Circle{Pt(10, 0), 1}); len(pts) != 0 {
		t.Fatalf("disjoint circles intersect: %v", pts)
	}
	if pts := a.Intersect(Circle{Pt(0.1, 0), 5}); len(pts) != 0 {
		t.Fatalf("nested circles intersect: %v", pts)
	}
	if pts := a.Intersect(a); len(pts) != 0 {
		t.Fatalf("coincident circles returned points: %v", pts)
	}
}

// Property: every returned intersection point lies on both circles.
func TestQuickCircleIntersection(t *testing.T) {
	s := rng.New(4)
	f := func() bool {
		a := Circle{Pt(s.Uniform(-10, 10), s.Uniform(-10, 10)), s.Uniform(0.5, 8)}
		b := Circle{Pt(s.Uniform(-10, 10), s.Uniform(-10, 10)), s.Uniform(0.5, 8)}
		for _, p := range a.Intersect(b) {
			if !a.OnBoundary(p) || !b.OnBoundary(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverPointCandidatesContainSites(t *testing.T) {
	sites := []Point{Pt(0, 0), Pt(10, 0), Pt(100, 100)}
	cands := CoverPointCandidates(sites, 6)
	if len(cands) < len(sites) {
		t.Fatal("candidate set smaller than site set")
	}
	for i, s := range sites {
		if !cands[i].Eq(s) {
			t.Fatalf("site %d missing from candidates", i)
		}
	}
	// Sites 0 and 1 are 10 apart with r=6: two intersection points expected.
	// Site 2 is isolated.
	if len(cands) != 5 {
		t.Fatalf("got %d candidates, want 5", len(cands))
	}
}

func TestRectBasics(t *testing.T) {
	r := Square(100)
	if r.Width() != 100 || r.Height() != 100 || r.Area() != 10000 {
		t.Fatal("Square dimensions wrong")
	}
	if !r.Center().Eq(Pt(50, 50)) {
		t.Fatal("Square centre wrong")
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(100, 100)) || r.Contains(Pt(100.1, 50)) {
		t.Fatal("Contains wrong")
	}
	if got := r.Clamp(Pt(-5, 120)); !got.Eq(Pt(0, 100)) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestNewRectNormalises(t *testing.T) {
	r := NewRect(Pt(5, -1), Pt(-2, 7))
	if !r.Min.Eq(Pt(-2, -1)) || !r.Max.Eq(Pt(5, 7)) {
		t.Fatalf("NewRect = %+v", r)
	}
}

func TestBound(t *testing.T) {
	r := Bound([]Point{Pt(1, 5), Pt(-3, 2), Pt(4, -7)})
	if !r.Min.Eq(Pt(-3, -7)) || !r.Max.Eq(Pt(4, 5)) {
		t.Fatalf("Bound = %+v", r)
	}
}

func TestGridPoints(t *testing.T) {
	pts := Square(40).GridPoints(20)
	if len(pts) != 9 { // 3x3 lattice: 0,20,40 in each axis
		t.Fatalf("got %d grid points, want 9", len(pts))
	}
	for _, p := range pts {
		if !Square(40).Contains(p) {
			t.Fatalf("grid point %v outside field", p)
		}
	}
}

func TestConvexHullSquareWithInterior(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), Pt(2, 2), Pt(1, 3)}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size %d, want 4: %v", len(h), h)
	}
	if !almostEq(PolygonArea(h), 16, 1e-9) {
		t.Fatalf("hull area %v, want 16", PolygonArea(h))
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Fatal("empty hull should be nil")
	}
	h := ConvexHull([]Point{Pt(1, 1), Pt(1, 1)})
	if len(h) != 1 {
		t.Fatalf("duplicate-point hull = %v", h)
	}
	h = ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)})
	if len(h) != 2 {
		t.Fatalf("collinear hull = %v", h)
	}
}

// Property: every input point is inside (or on) the hull, and the hull is
// convex (all turns counter-clockwise).
func TestQuickConvexHull(t *testing.T) {
	s := rng.New(6)
	f := func() bool {
		n := 3 + s.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(s.Uniform(0, 50), s.Uniform(0, 50))
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			return true // degenerate random draw; nothing to check
		}
		for i := range h {
			j, k := (i+1)%len(h), (i+2)%len(h)
			if Orientation(h[i], h[j], h[k]) < 0 {
				return false
			}
		}
		for _, p := range pts {
			if !InConvexPolygon(h, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolygonAreaTriangle(t *testing.T) {
	a := PolygonArea([]Point{Pt(0, 0), Pt(4, 0), Pt(0, 3)})
	if !almostEq(a, 6, 1e-12) {
		t.Fatalf("triangle area %v, want 6", a)
	}
}
