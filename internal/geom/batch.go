package geom

// Batched distance kernels over flat coordinate slices. The planners at
// n=10k-100k spend most of their time asking "how far is every point in
// this set from q?"; answering over []Point forces a 16-byte strided
// load per point, while answering over parallel xs/ys []float64 slices
// keeps the inner loop in registers and lets the compiler vectorise it.
// The kernels below are the shared primitives: the grid index, candidate
// generation, TSP neighbour-list construction, and warm-start repair all
// thread through them.
//
// All kernels work on squared distances (the comparison-safe form that
// avoids the square root) and perform no allocation; callers own every
// buffer. Arithmetic is dx*dx + dy*dy, bit-identical to Point.Dist2, so
// swapping a scalar loop for a kernel never changes a plan.

import "math"

// SplitXY appends the coordinates of pts to xs and ys and returns the
// extended slices. Pass reused buffers (xs[:0], ys[:0]) to avoid
// allocation in hot loops; pass nil to let append size them.
func SplitXY(pts []Point, xs, ys []float64) ([]float64, []float64) {
	for _, p := range pts {
		//mdglint:allow-alloc(amortized growth of the caller's coordinate buffers)
		xs = append(xs, p.X)
		//mdglint:allow-alloc(amortized growth of the caller's coordinate buffers)
		ys = append(ys, p.Y)
	}
	return xs, ys
}

// Dist2Batch writes out[i] = squared distance from (xs[i], ys[i]) to q
// for every i < len(out). xs and ys must have at least len(out) entries.
//
//mdglint:hotpath
func Dist2Batch(xs, ys []float64, q Point, out []float64) {
	n := len(out)
	xs = xs[:n]
	ys = ys[:n]
	for i := 0; i < n; i++ {
		dx := xs[i] - q.X
		dy := ys[i] - q.Y
		out[i] = dx*dx + dy*dy
	}
}

// Dist2Gather writes out[k] = squared distance from point idx[k] to q,
// gathering coordinates through the index slice. It is the kernel behind
// grid-bucket filtering, where the candidate indices are not contiguous.
//
//mdglint:hotpath
func Dist2Gather(xs, ys []float64, idx []int32, q Point, out []float64) {
	n := len(idx)
	out = out[:n]
	for k := 0; k < n; k++ {
		i := idx[k]
		dx := xs[i] - q.X
		dy := ys[i] - q.Y
		out[k] = dx*dx + dy*dy
	}
}

// NearestBatch returns the index of the point closest to q and its
// squared distance, ties toward the lower index. It returns (-1, +inf)
// for empty input. This is the linear-scan nearest kernel the grid index
// runs per candidate cell.
//
//mdglint:hotpath
func NearestBatch(xs, ys []float64, q Point) (int, float64) {
	best := -1
	bestD2 := math.Inf(1)
	n := len(xs)
	ys = ys[:n]
	for i := 0; i < n; i++ {
		dx := xs[i] - q.X
		dy := ys[i] - q.Y
		if d2 := dx*dx + dy*dy; d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, bestD2
}

// CountWithinBatch returns how many of the first len(xs) points lie
// within squared distance r2 (inclusive, plus Eps) of q — the coverage
// counting kernel.
//
//mdglint:hotpath
func CountWithinBatch(xs, ys []float64, q Point, r2 float64) int {
	c := 0
	bound := r2 + Eps
	n := len(xs)
	ys = ys[:n]
	for i := 0; i < n; i++ {
		dx := xs[i] - q.X
		dy := ys[i] - q.Y
		if dx*dx+dy*dy <= bound {
			c++
		}
	}
	return c
}

// SelectWithinBatch appends to dst the index (offset by base) of every
// point within squared distance r2 (inclusive, plus Eps) of q and
// returns the extended slice. base lets a caller scanning a sub-range
// emit absolute indices; pass a reused buffer to avoid allocation.
//
//mdglint:hotpath
func SelectWithinBatch(xs, ys []float64, q Point, r2 float64, base int32, dst []int32) []int32 {
	bound := r2 + Eps
	n := len(xs)
	ys = ys[:n]
	for i := 0; i < n; i++ {
		dx := xs[i] - q.X
		dy := ys[i] - q.Y
		if dx*dx+dy*dy <= bound {
			//mdglint:allow-alloc(amortized growth of the caller's hit buffer)
			dst = append(dst, base+int32(i))
		}
	}
	return dst
}
