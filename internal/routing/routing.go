// Package routing implements multi-hop relay routing toward a static data
// sink — the conventional data-gathering baseline the paper's mobile
// scheme is measured against. Sensors forward packets along a shortest
// hop-count tree; each sensor's per-round load is one transmission per
// descendant (plus its own packet) and one reception per descendant.
package routing

import (
	"fmt"

	"mobicol/internal/graph"
	"mobicol/internal/wsn"
)

// Plan is a static-sink routing plan.
type Plan struct {
	Net *wsn.Network
	// NextHop[i] is the sensor that i forwards to, or -1 when i uploads
	// directly to the sink, or -2 when i is disconnected from the sink.
	NextHop []int
	// Load[i] is the number of packets i transmits per round (its own
	// plus everything it relays). Disconnected sensors have load 0.
	Load []int
	// Hops[i] is i's hop count to the sink (-1 when disconnected).
	Hops []int
	// Disconnected lists sensors with no path to the sink; a static-sink
	// network simply never hears from them (the paper's motivation for
	// mobility in sparse fields).
	Disconnected []int
}

// DirectUpload is the NextHop value of sensors within sink range.
const DirectUpload = -1

// Unreachable is the NextHop value of sensors with no path to the sink.
const Unreachable = -2

// BuildPlan computes the shortest-path-tree routing plan for nw.
func BuildPlan(nw *wsn.Network) *Plan {
	n := nw.N()
	p := &Plan{
		Net:     nw,
		NextHop: make([]int, n),
		Load:    make([]int, n),
		Hops:    nw.HopsToSink(),
	}
	sinkAdj := make(map[int]bool)
	for _, s := range nw.SinkNeighbors() {
		sinkAdj[s] = true
	}
	r := graph.MultiBFS(nw.Graph(), nw.SinkNeighbors())
	for i := 0; i < n; i++ {
		switch {
		case sinkAdj[i]:
			p.NextHop[i] = DirectUpload
		case r.Dist[i] > 0:
			p.NextHop[i] = r.Parent[i]
		default:
			p.NextHop[i] = Unreachable
			p.Disconnected = append(p.Disconnected, i)
		}
	}
	// Load: count descendants by walking each sensor's path. O(N·depth),
	// fine at these scales and independent of the tree representation.
	for i := 0; i < n; i++ {
		if p.NextHop[i] == Unreachable {
			continue
		}
		for v := i; v != DirectUpload; v = p.NextHop[v] {
			p.Load[v]++
		}
	}
	return p
}

// Connected reports whether sensor i can reach the sink.
func (p *Plan) Connected(i int) bool { return p.NextHop[i] != Unreachable }

// CoverageFraction returns the fraction of sensors whose data reaches the
// static sink at all.
func (p *Plan) CoverageFraction() float64 {
	if p.Net.N() == 0 {
		return 1
	}
	return float64(p.Net.N()-len(p.Disconnected)) / float64(p.Net.N())
}

// MaxLoad returns the heaviest per-round transmission load and the sensor
// carrying it. Sink-adjacent sensors relay everything in a static-sink
// network — the hot-spot problem mobility removes.
func (p *Plan) MaxLoad() (load, sensor int) {
	for i, l := range p.Load {
		if l > load {
			load, sensor = l, i
		}
	}
	return load, sensor
}

// TotalTransmissions returns the network-wide packet transmissions per
// round (each hop of each packet counts once).
func (p *Plan) TotalTransmissions() int {
	total := 0
	for _, l := range p.Load {
		total += l
	}
	return total
}

// Validate checks plan invariants: every connected sensor's forwarding
// chain terminates at the sink without cycles, and loads are consistent.
func (p *Plan) Validate() error {
	n := p.Net.N()
	for i := 0; i < n; i++ {
		if !p.Connected(i) {
			continue
		}
		steps := 0
		for v := i; v != DirectUpload; v = p.NextHop[v] {
			if v == Unreachable {
				return fmt.Errorf("routing: connected sensor %d routes into unreachable node", i)
			}
			steps++
			if steps > n {
				return fmt.Errorf("routing: forwarding cycle reachable from sensor %d", i)
			}
		}
		if steps != p.Hops[i] {
			return fmt.Errorf("routing: sensor %d path length %d != hop count %d", i, steps, p.Hops[i])
		}
	}
	return nil
}
