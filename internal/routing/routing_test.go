package routing

import (
	"testing"

	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

// chainNet builds sink at origin with sensors in a line every 8 m, range 10.
func chainNet(n int) *wsn.Network {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(8*(i+1)), 0)
	}
	return wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(500))
}

func TestBuildPlanChain(t *testing.T) {
	p := BuildPlan(chainNet(4))
	if p.NextHop[0] != DirectUpload {
		t.Fatalf("NextHop[0] = %d", p.NextHop[0])
	}
	for i := 1; i < 4; i++ {
		if p.NextHop[i] != i-1 {
			t.Fatalf("NextHop[%d] = %d", i, p.NextHop[i])
		}
	}
	// Loads: node 0 relays everyone: 4; node 3 only itself: 1.
	want := []int{4, 3, 2, 1}
	for i, w := range want {
		if p.Load[i] != w {
			t.Fatalf("Load = %v, want %v", p.Load, want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, sensor := p.MaxLoad(); got != 4 || sensor != 0 {
		t.Fatalf("MaxLoad = %d at %d", got, sensor)
	}
	if p.TotalTransmissions() != 10 {
		t.Fatalf("TotalTransmissions = %d", p.TotalTransmissions())
	}
}

func TestDisconnectedSensors(t *testing.T) {
	pts := []geom.Point{geom.Pt(8, 0), geom.Pt(400, 400)}
	nw := wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(500))
	p := BuildPlan(nw)
	if p.Connected(1) {
		t.Fatal("far sensor reported connected")
	}
	if p.NextHop[1] != Unreachable || p.Load[1] != 0 {
		t.Fatal("unreachable bookkeeping wrong")
	}
	if len(p.Disconnected) != 1 || p.Disconnected[0] != 1 {
		t.Fatalf("Disconnected = %v", p.Disconnected)
	}
	if got := p.CoverageFraction(); got != 0.5 {
		t.Fatalf("CoverageFraction = %v", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanOnRandomDeployments(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		nw := wsn.MustDeploy(wsn.Config{N: 150, FieldSide: 200, Range: 30, Seed: seed})
		p := BuildPlan(nw)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Conservation: total transmissions equals sum over connected
		// sensors of their hop counts (each packet transmits once per hop).
		wantTotal := 0
		for i := 0; i < nw.N(); i++ {
			if p.Connected(i) {
				wantTotal += p.Hops[i]
			}
		}
		if got := p.TotalTransmissions(); got != wantTotal {
			t.Fatalf("seed %d: total tx %d != sum of hops %d", seed, got, wantTotal)
		}
	}
}

func TestSinkAdjacentCarryTheLoad(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 300, FieldSide: 200, Range: 30, Seed: 5})
	p := BuildPlan(nw)
	maxLoad, sensor := p.MaxLoad()
	if maxLoad < 2 {
		t.Skip("degenerate deployment")
	}
	if p.Hops[sensor] != 1 {
		t.Fatalf("hottest sensor at %d hops, expected sink-adjacent (1)", p.Hops[sensor])
	}
}

func TestEmptyNetwork(t *testing.T) {
	nw := wsn.New(nil, geom.Pt(0, 0), 10, geom.Square(10))
	p := BuildPlan(nw)
	if p.CoverageFraction() != 1 {
		t.Fatal("empty network coverage should be 1")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
