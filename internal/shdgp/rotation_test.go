package shdgp

import (
	"testing"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/tsp"
)

func TestPlanDiverseInPackage(t *testing.T) {
	p := deploy(150, 200, 30, 41)
	sols, err := PlanDiverse(p, 5, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("no plans returned")
	}
	for i, s := range sols {
		if err := s.Validate(p); err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
	}
	// Fingerprints must be pairwise distinct (duplicates are filtered).
	seen := map[string]bool{}
	for _, s := range sols {
		k := stopKey(s)
		if seen[k] {
			t.Fatal("duplicate plan survived filtering")
		}
		seen[k] = true
	}
}

func TestPlanDiverseKOne(t *testing.T) {
	p := deploy(60, 150, 30, 42)
	sols, err := PlanDiverse(p, 1, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("k=1 returned %d plans", len(sols))
	}
}

func TestStopKeyOrderInsensitive(t *testing.T) {
	a := &Solution{Plan: planWithStops(geom.Pt(1, 1), geom.Pt(2, 2))}
	b := &Solution{Plan: planWithStops(geom.Pt(2, 2), geom.Pt(1, 1))}
	if stopKey(a) != stopKey(b) {
		t.Fatal("stopKey depends on stop order")
	}
	c := &Solution{Plan: planWithStops(geom.Pt(3, 3), geom.Pt(1, 1))}
	if stopKey(a) == stopKey(c) {
		t.Fatal("different stop sets share a key")
	}
}

func planWithStops(stops ...geom.Point) *collector.TourPlan {
	return &collector.TourPlan{Stops: stops}
}

func TestSolutionValidateCatchesTampering(t *testing.T) {
	p := deploy(80, 150, 30, 43)
	sol, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: wrong recorded length.
	sol.Length += 10
	if err := sol.Validate(p); err == nil {
		t.Fatal("length tampering undetected")
	}
	sol.Length -= 10
	// Tamper: unserve a sensor.
	old := sol.Plan.UploadAt[0]
	sol.Plan.UploadAt[0] = -1
	if err := sol.Validate(p); err == nil {
		t.Fatal("unserved sensor undetected")
	}
	sol.Plan.UploadAt[0] = old
	// Tamper: move the sink.
	sol.Plan.Sink = geom.Pt(-1, -1)
	if err := sol.Validate(p); err == nil {
		t.Fatal("sink mismatch undetected")
	}
}
