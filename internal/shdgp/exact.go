package shdgp

import (
	"fmt"
	"math"

	"mobicol/internal/bitset"
	"mobicol/internal/geom"
	"mobicol/internal/lp"
	"mobicol/internal/tsp"
)

// ExactLimits bounds the exact solver. The paper only certifies optima on
// small networks (CPLEX on ~25-sensor instances); the same restriction
// applies here.
type ExactLimits struct {
	// MaxCandidates rejects instances with more candidates after
	// dominance pruning (default 64).
	MaxCandidates int
	// MaxStops rejects covers larger than this during enumeration
	// (default 14, keeping the leaf TSPs within Held–Karp range).
	MaxStops int
	// MaxNodes caps enumeration nodes; when it trips the best solution
	// found is returned with Exact=false (default 5e6).
	MaxNodes int
}

// DefaultExactLimits returns the documented defaults.
func DefaultExactLimits() ExactLimits {
	return ExactLimits{MaxCandidates: 64, MaxStops: 14, MaxNodes: 5_000_000}
}

// PlanExact solves the SHDGP to optimality (within limits) by enumerating
// covers and solving each leaf's TSP exactly.
//
// Enumeration branches on the lowest-index uncovered sensor: any feasible
// cover must contain some candidate covering it, so the search tree is
// complete over *minimal* covers. Supersets of a cover are never cheaper —
// in a metric space, the optimal tour over a superset of stops is at least
// the optimal tour over the subset — so restricting to minimal covers
// preserves optimality. Partial selections are pruned with the MST lower
// bound over {sink} ∪ chosen stops for the same monotonicity reason.
func PlanExact(p *Problem, limits ExactLimits) (*Solution, error) {
	if limits.MaxCandidates == 0 {
		limits = DefaultExactLimits()
	}
	instFull, err := p.Instance()
	if err != nil {
		return nil, err
	}
	inst, orig := instFull.Prune()
	if inst.NumCandidates() > limits.MaxCandidates {
		return nil, fmt.Errorf("shdgp: exact solver limited to %d candidates, instance has %d after pruning",
			limits.MaxCandidates, inst.NumCandidates())
	}
	// Bounded to MaxCandidates candidates: the dense set view is cheap and
	// keeps the enumeration on bitset algebra.
	covers := inst.CoverSets()

	// Incumbent from the heuristic planner: tight pruning from node one.
	heur, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		return nil, err
	}
	bestLen := heur.Length
	var bestChosen []int
	exact := true

	// coversSensor[s]: candidates covering s, largest cover first.
	coversSensor := make([][]int, inst.Universe)
	for c, set := range covers {
		set.ForEach(func(s int) { coversSensor[s] = append(coversSensor[s], c) })
	}
	for s := range coversSensor {
		cs := coversSensor[s]
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && covers[cs[j]].Count() > covers[cs[j-1]].Count(); j-- {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			}
		}
	}

	uncovered := bitset.New(inst.Universe)
	uncovered.Fill()
	var cur []int
	nodes := 0

	tourLB := func() geom.Meters {
		pts := make([]geom.Point, 0, len(cur)+1)
		pts = append(pts, p.Net.Sink)
		for _, c := range cur {
			pts = append(pts, inst.Candidates[c])
		}
		return tsp.MSTLowerBound(pts)
	}
	leafLen := func() geom.Meters {
		pts := make([]geom.Point, 0, len(cur)+1)
		pts = append(pts, p.Net.Sink)
		for _, c := range cur {
			pts = append(pts, inst.Candidates[c])
		}
		if len(pts) <= tsp.HeldKarpMax {
			t, err := tsp.HeldKarp(pts)
			if err == nil {
				return t.Length(pts)
			}
		}
		t, _ := tsp.BranchBound(pts, 2_000_000)
		return t.Length(pts)
	}

	var rec func()
	rec = func() {
		nodes++
		if limits.MaxNodes > 0 && nodes > limits.MaxNodes {
			exact = false
			return
		}
		if uncovered.Empty() {
			if l := leafLen(); l < bestLen-1e-9 {
				bestLen = l
				bestChosen = append(bestChosen[:0], cur...)
			}
			return
		}
		if len(cur) >= limits.MaxStops {
			return
		}
		if tourLB() >= bestLen-1e-9 {
			return
		}
		s := uncovered.NextSet(0)
		for _, c := range coversSensor[s] {
			newly := covers[c].Clone()
			newly.And(uncovered)
			if newly.Empty() {
				continue // c covers nothing new on this branch
			}
			uncovered.AndNot(covers[c])
			cur = append(cur, c)
			rec()
			cur = cur[:len(cur)-1]
			uncovered.Or(newly)
			if limits.MaxNodes > 0 && nodes > limits.MaxNodes {
				return
			}
		}
	}
	rec()

	if bestChosen == nil {
		// The heuristic was already optimal (or the cap tripped before
		// anything better appeared). Re-label and return it.
		heur.Exact = exact
		heur.Algorithm = "exact(=heuristic)"
		if !exact {
			heur.Algorithm = "exact-capped(heuristic incumbent)"
		}
		return heur, nil
	}
	mapped := make([]int, len(bestChosen))
	for i, c := range bestChosen {
		mapped[i] = orig[c]
	}
	// MaxStops <= 14 keeps the final instance within Held–Karp range, so
	// buildSolution re-solves the winning stop set exactly.
	sol := buildSolution(p, instFull, mapped, tsp.Options{Construction: tsp.ConstructGreedy, TwoOpt: true, OrOpt: true, ExactBelow: tsp.HeldKarpMax}, "exact")
	sol.Exact = exact
	return sol, nil
}

// MinStopsILP returns the LP-certified minimum number of stops for the
// instance — the set-cover component of the paper's MIP, solved with the
// in-repo branch-and-bound ILP. It is used by the E1 experiment to verify
// the combinatorial exact search against an independent solver.
func MinStopsILP(p *Problem, maxNodes int) (int, bool, error) {
	full, err := p.Instance()
	if err != nil {
		return 0, false, err
	}
	inst, _ := full.Prune()
	m := lp.SetCoverModel(inst.Universe, inst.CoverSets())
	sol, err := m.SolveBinary(maxNodes)
	if err != nil {
		return 0, false, err
	}
	if sol.Status != lp.Optimal {
		return 0, false, fmt.Errorf("shdgp: set-cover ILP status %v", sol.Status)
	}
	return int(math.Round(sol.Obj)), sol.Exact, nil
}
