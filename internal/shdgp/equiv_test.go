package shdgp

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"mobicol/internal/bitset"
	"mobicol/internal/check"
	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/par"
	"mobicol/internal/tsp"
)

// dropRedundantOracle is the pre-cache fixed-point implementation, kept
// verbatim: remove the first redundant stop, restart, repeat.
func dropRedundantOracle(inst *cover.Instance, chosen *[]int) bool {
	covers := inst.CoverSets()
	dropped := false
	for {
		cur := *chosen
		removeAt := -1
		for i := range cur {
			rest := bitset.New(inst.Universe)
			for j, c := range cur {
				if j != i {
					rest.Or(covers[c])
				}
			}
			if covers[cur[i]].SubsetOf(rest) {
				removeAt = i
				break
			}
		}
		if removeAt < 0 {
			return dropped
		}
		*chosen = append(cur[:removeAt], cur[removeAt+1:]...)
		dropped = true
	}
}

func TestDropRedundantMatchesOracle(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		p := deploy(180, 220, 30, seed)
		inst, err := p.Instance()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chosen, err := inst.Greedy(p.Net.Sink)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Greedy covers are rarely redundant; pad with extra candidates so
		// the removal path actually runs.
		padded := append([]int(nil), chosen...)
		for c := 0; c < inst.NumCandidates() && len(padded) < len(chosen)+12; c += 5 {
			padded = append(padded, c)
		}
		got := append([]int(nil), padded...)
		want := append([]int(nil), padded...)
		gotDrop := dropRedundant(inst, &got, newRefineScratch(inst))
		wantDrop := dropRedundantOracle(inst, &want)
		if gotDrop != wantDrop {
			t.Fatalf("seed %d: dropped=%v, oracle %v", seed, gotDrop, wantDrop)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: kept %d stops, oracle kept %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: slot %d = %d, oracle %d", seed, i, got[i], want[i])
			}
		}
	}
}

// relocateStopsOracle is the pre-cache implementation: critical sets via
// an O(k) bitset union per stop, replacements via a scan of every
// candidate.
func relocateStopsOracle(p *Problem, inst *cover.Instance, chosen []int) bool {
	if len(chosen) == 0 {
		return false
	}
	pts := make([]geom.Point, 0, len(chosen)+1)
	pts = append(pts, p.Net.Sink)
	for _, c := range chosen {
		pts = append(pts, inst.Candidates[c])
	}
	tour := tsp.Solve(pts, tsp.Options{Construction: tsp.ConstructGreedy, TwoOpt: true})
	tour.RotateTo(0)
	prev := make([]geom.Point, len(chosen))
	next := make([]geom.Point, len(chosen))
	for ti, idx := range tour {
		if idx == 0 {
			continue
		}
		prev[idx-1] = pts[tour[(ti-1+len(tour))%len(tour)]]
		next[idx-1] = pts[tour[(ti+1)%len(tour)]]
	}
	covers := inst.CoverSets()
	moved := false
	for i := range chosen {
		critical := covers[chosen[i]].Clone()
		for j, c := range chosen {
			if j != i {
				critical.AndNot(covers[c])
			}
		}
		cur := inst.Candidates[chosen[i]]
		bestCost := prev[i].Dist(cur) + cur.Dist(next[i])
		bestCand := chosen[i]
		for c := range covers {
			if c == chosen[i] {
				continue
			}
			if !critical.SubsetOf(covers[c]) {
				continue
			}
			alt := inst.Candidates[c]
			if cost := prev[i].Dist(alt) + alt.Dist(next[i]); cost < bestCost-1e-9 {
				bestCost = cost
				bestCand = c
			}
		}
		if bestCand != chosen[i] {
			chosen[i] = bestCand
			moved = true
		}
	}
	return moved
}

func TestRelocateStopsMatchesOracle(t *testing.T) {
	for seed := uint64(10); seed < 16; seed++ {
		p := deploy(160, 240, 30, seed)
		inst, err := p.Instance()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chosen, err := inst.Greedy(p.Net.Sink)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := append([]int(nil), chosen...)
		want := append([]int(nil), chosen...)
		gotMoved := relocateStops(p, inst, got, newRefineScratch(inst))
		wantMoved := relocateStopsOracle(p, inst, want)
		if gotMoved != wantMoved {
			t.Fatalf("seed %d: moved=%v, oracle %v", seed, gotMoved, wantMoved)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: stop %d relocated to %d, oracle chose %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestPlanPoolEquivalence pins the tentpole contract end to end: a full
// Plan run under an 8-worker pool must match the sequential run on every
// deterministic output — stops, assignment, and the canonical obs trace
// (which embeds tour lengths, span structure, and every metric).
func TestPlanPoolEquivalence(t *testing.T) {
	canonicalRun := func(n int, side float64, seed uint64, pool par.Pool) (*Solution, []string) {
		t.Helper()
		p := deploy(n, side, 30, seed)
		p.Pool = pool
		var buf bytes.Buffer
		tr := obs.New(&buf)
		opts := DefaultPlannerOptions()
		opts.Obs = tr
		sol, err := Plan(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Equivalence alone is not enough — both runs must also be
		// *valid*: full single-hop coverage on a sink-anchored tour.
		if err := check.Plan(p.Net, sol.Plan, check.Options{}); err != nil {
			t.Fatal(err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
			c, err := obs.CanonicalLine(line)
			if err != nil {
				t.Fatalf("trace line %q: %v", line, err)
			}
			if c != nil {
				lines = append(lines, string(c))
			}
		}
		return sol, lines
	}
	cases := []struct {
		n    int
		side float64
	}{{100, 200}, {200, 300}}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			seqSol, seqTrace := canonicalRun(tc.n, tc.side, seed, par.Seq())
			parSol, parTrace := canonicalRun(tc.n, tc.side, seed, par.Workers(8))
			if len(parSol.Plan.Stops) != len(seqSol.Plan.Stops) {
				t.Fatalf("n=%d seed=%d: %d stops parallel, %d sequential",
					tc.n, seed, len(parSol.Plan.Stops), len(seqSol.Plan.Stops))
			}
			for i := range seqSol.Plan.Stops {
				if !parSol.Plan.Stops[i].Eq(seqSol.Plan.Stops[i]) {
					t.Fatalf("n=%d seed=%d: stop %d differs", tc.n, seed, i)
				}
			}
			for i := range seqSol.Plan.UploadAt {
				if parSol.Plan.UploadAt[i] != seqSol.Plan.UploadAt[i] {
					t.Fatalf("n=%d seed=%d: sensor %d uploads at %d vs %d",
						tc.n, seed, i, parSol.Plan.UploadAt[i], seqSol.Plan.UploadAt[i])
				}
			}
			if len(parTrace) != len(seqTrace) {
				t.Fatalf("n=%d seed=%d: trace lengths differ: %d vs %d",
					tc.n, seed, len(parTrace), len(seqTrace))
			}
			for i := range seqTrace {
				if parTrace[i] != seqTrace[i] {
					t.Fatalf("n=%d seed=%d: trace line %d differs:\npar: %s\nseq: %s",
						tc.n, seed, i, parTrace[i], seqTrace[i])
				}
			}
		}
	}
}

func BenchmarkPlan(b *testing.B) {
	for _, n := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			side := 200 * math.Sqrt(float64(n)/100)
			p := deploy(n, side, 30, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Plan(p, DefaultPlannerOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
