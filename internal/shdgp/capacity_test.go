package shdgp

import (
	"testing"

	"mobicol/internal/cover"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

func TestPlanCapacitatedRespectsCap(t *testing.T) {
	for _, cap := range []int{1, 3, 5, 10, 20} {
		for seed := uint64(0); seed < 4; seed++ {
			p := deploy(120, 200, 30, seed)
			sol, err := PlanCapacitated(p, cap, tsp.DefaultOptions())
			if err != nil {
				t.Fatalf("cap=%d seed=%d: %v", cap, seed, err)
			}
			if err := sol.Validate(p); err != nil {
				t.Fatalf("cap=%d seed=%d: %v", cap, seed, err)
			}
			if err := sol.ValidateCapacity(cap); err != nil {
				t.Fatalf("cap=%d seed=%d: %v", cap, seed, err)
			}
		}
	}
}

func TestPlanCapacitatedCapOneVisitsEverySensorEquivalent(t *testing.T) {
	p := deploy(60, 150, 30, 2)
	sol, err := PlanCapacitated(p, 1, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stops() != p.Net.N() {
		t.Fatalf("cap=1 produced %d stops for %d sensors", sol.Stops(), p.Net.N())
	}
}

func TestPlanCapacitatedTourShrinksWithCap(t *testing.T) {
	p := deploy(150, 200, 30, 5)
	prev := -1.0
	for _, cap := range []int{1, 2, 5, 50} {
		sol, err := PlanCapacitated(p, cap, tsp.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && float64(sol.Length) > prev*1.05 {
			t.Fatalf("tour grew as capacity rose to %d: %.1f -> %.1f", cap, prev, sol.Length)
		}
		prev = float64(sol.Length)
	}
}

func TestPlanCapacitatedLooseCapMatchesUncapacitatedScale(t *testing.T) {
	p := deploy(100, 200, 30, 7)
	loose, err := PlanCapacitated(p, 1000, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	free, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same greedy family: within 25% of each other.
	if loose.Length > free.Length*1.25 {
		t.Fatalf("loose-cap plan %.1f much worse than uncapacitated %.1f", loose.Length, free.Length)
	}
}

func TestPlanCapacitatedRejectsBadCap(t *testing.T) {
	p := deploy(10, 100, 30, 1)
	if _, err := PlanCapacitated(p, 0, tsp.DefaultOptions()); err == nil {
		t.Fatal("cap=0 accepted")
	}
}

func TestPlanCapacitatedGridStrategy(t *testing.T) {
	p := deploy(80, 200, 30, 9)
	p.Strategy = cover.FieldGrid
	sol, err := PlanCapacitated(p, 8, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if err := sol.ValidateCapacity(8); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCapacityDetectsViolation(t *testing.T) {
	p := deploy(100, 150, 30, 3)
	sol, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	// An uncapacitated plan on a dense field almost surely has a stop
	// serving more than one sensor.
	if err := sol.ValidateCapacity(1); err == nil {
		t.Skip("rare draw: every stop serves exactly one sensor")
	}
}

func TestPlanSweepValidAndComplete(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		p := deploy(150, 200, 30, seed)
		sol, err := PlanSweep(p, tsp.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Plan.Served() != p.Net.N() {
			t.Fatalf("seed %d: served %d of %d", seed, sol.Plan.Served(), p.Net.N())
		}
	}
}

func TestPlanSweepDisconnected(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 80, FieldSide: 500, Range: 25, Placement: wsn.Clustered, Clusters: 4, Seed: 3})
	p := NewProblem(nw)
	sol, err := PlanSweep(p, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Plan.Served() != nw.N() {
		t.Fatalf("served %d of %d across components", sol.Plan.Served(), nw.N())
	}
}

func TestPlanSweepComparableToGreedy(t *testing.T) {
	// Sweep is a weaker global optimiser but must stay in the same league
	// (within 40% on a dense field).
	p := deploy(200, 200, 30, 11)
	sweep, err := PlanSweep(p, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Length > greedy.Length*1.4 {
		t.Fatalf("sweep %.1f far worse than greedy %.1f", sweep.Length, greedy.Length)
	}
}

func TestPlanSweepEmptyNetwork(t *testing.T) {
	nw := wsn.New(nil, wsn.MustDeploy(wsn.Config{N: 1, FieldSide: 10, Range: 5, Seed: 1}).Sink, 5, wsn.MustDeploy(wsn.Config{N: 1, FieldSide: 10, Range: 5, Seed: 1}).Field)
	if _, err := PlanSweep(NewProblem(nw), tsp.DefaultOptions()); err == nil {
		t.Fatal("empty network accepted")
	}
}
