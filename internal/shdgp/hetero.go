package shdgp

import (
	"fmt"

	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

// PlanHetero plans a single-hop gathering tour for sensors with
// per-sensor transmission ranges (mixed hardware, or radios derated as
// batteries sag). Sensor i can upload to a stop within radii[i] metres;
// the candidate set is the sensor sites (every sensor reaches a stop at
// its own position, so the instance is always feasible). The network's
// nominal Range is ignored for coverage.
func PlanHetero(nw *wsn.Network, radii []float64, opts tsp.Options) (*Solution, error) {
	if len(radii) != nw.N() {
		return nil, fmt.Errorf("shdgp: %d radii for %d sensors", len(radii), nw.N())
	}
	if nw.N() == 0 {
		return nil, fmt.Errorf("shdgp: empty network")
	}
	sensors := nw.Positions()
	inst := cover.NewInstanceRadii(sensors, radii, sensors)
	if err := inst.Err(); err != nil {
		return nil, err
	}
	chosen, err := inst.Greedy(nw.Sink)
	if err != nil {
		return nil, err
	}
	p := NewProblem(nw)
	sol := buildSolution(p, inst, chosen, opts, "shdg-hetero")
	return sol, nil
}

// ValidateHetero checks the per-sensor single-hop guarantee of a
// heterogeneous-range solution.
func (s *Solution) ValidateHetero(sensors []geom.Point, radii []float64) error {
	if len(s.Plan.UploadAt) != len(sensors) || len(radii) != len(sensors) {
		return fmt.Errorf("shdgp: size mismatch validating heterogeneous plan")
	}
	for i, stop := range s.Plan.UploadAt {
		if stop < 0 {
			return fmt.Errorf("shdgp: sensor %d unserved", i)
		}
		if d := sensors[i].Dist(s.Plan.Stops[stop]); d > radii[i]+geom.Eps {
			return fmt.Errorf("shdgp: sensor %d uploads over %.2fm, its range is %.2fm", i, d, radii[i])
		}
	}
	return nil
}
