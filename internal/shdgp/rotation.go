package shdgp

import (
	"fmt"
	"math"

	"mobicol/internal/tsp"
)

// PlanDiverse returns up to k structurally different solutions for the
// same problem by steering the greedy cover's tie-break toward k points
// spread around the sink. Different tie-breaks pull the chosen stops
// toward different sides of the field, so the plans stress different
// sensors' upload distances — the raw material for round-robin rotation,
// which averages each sensor's per-round cost and postpones the first
// death (lifetime is set by the per-sensor *mean* cost under rotation,
// versus the worst single-plan cost without it).
//
// Duplicate plans (identical stop multisets) are filtered; fewer than k
// plans may come back on fields where the cover is insensitive to the
// tie-break.
func PlanDiverse(p *Problem, k int, opts tsp.Options) ([]*Solution, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shdgp: need at least one plan, got %d", k)
	}
	inst, err := p.Instance()
	if err != nil {
		return nil, err
	}
	spread := p.Net.Field.Width() / 4
	var out []*Solution
	seen := map[string]bool{}
	for j := 0; j < k; j++ {
		tieBreak := p.Net.Sink
		if j > 0 {
			theta := 2 * math.Pi * float64(j-1) / float64(k-1)
			tieBreak = p.Net.Sink.Polar(spread, theta)
		}
		chosen, err := inst.Greedy(tieBreak)
		if err != nil {
			return nil, err
		}
		sol := buildSolution(p, inst, chosen, opts, fmt.Sprintf("shdg-diverse%d", j))
		key := stopKey(sol)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, sol)
	}
	return out, nil
}

// stopKey canonically fingerprints a solution's stop set.
func stopKey(sol *Solution) string {
	// Stops are few; an order-insensitive fingerprint via sorted strings.
	keys := make([]string, len(sol.Plan.Stops))
	for i, s := range sol.Plan.Stops {
		keys[i] = s.String()
	}
	// Insertion sort: n is tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}
