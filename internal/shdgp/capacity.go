package shdgp

import (
	"fmt"
	"sort"

	"mobicol/internal/bitset"
	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/graph"
	"mobicol/internal/tsp"
)

// PlanCapacitated plans a tour in which no stop serves more than cap
// sensors. The bound models the polling point's packet buffer: a stop must
// hold its sensors' packets until the collector arrives, so the buffer
// size caps how many sensors may affiliate with it (the buffer-overflow
// concern the paper raises when motivating planned mobile gathering).
//
// Selection is capacity-aware greedy: pick the unused candidate with the
// largest capped marginal coverage (ties toward the sink), then assign it
// its cap nearest uncovered sensors. Because every sensor's own site is a
// candidate in all strategies and a sensor is its own nearest uncovered
// sensor at distance zero, the loop always makes progress, so any cap >= 1
// is feasible.
func PlanCapacitated(p *Problem, cap int, opts tsp.Options) (*Solution, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("shdgp: capacity must be positive, got %d", cap)
	}
	inst, err := p.Instance()
	if err != nil {
		return nil, err
	}
	sensors := p.Net.Positions()

	uncovered := bitset.New(inst.Universe)
	uncovered.Fill()
	used := make([]bool, inst.NumCandidates())
	var stopsCand []int     // chosen candidate per stop
	var stopsAssign [][]int // sensors served by each stop

	countUncovered := func(c int) int {
		g := 0
		for _, s := range inst.Cover(c) {
			if uncovered.Has(int(s)) {
				g++
			}
		}
		return g
	}
	for !uncovered.Empty() {
		best, bestGain := -1, 0
		var bestDist float64
		for c := 0; c < inst.NumCandidates(); c++ {
			if used[c] {
				continue
			}
			gain := countUncovered(c)
			if gain > cap {
				gain = cap
			}
			if gain == 0 {
				continue
			}
			dist := inst.Candidates[c].Dist2(p.Net.Sink)
			if gain > bestGain || (gain == bestGain && dist < bestDist) {
				best, bestGain, bestDist = c, gain, dist
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("shdgp: capacitated greedy stalled with %d sensors uncovered", uncovered.Count())
		}
		used[best] = true
		// Serve the cap nearest uncovered sensors in this stop's range.
		var eligible []int
		for _, s := range inst.Cover(best) {
			if uncovered.Has(int(s)) {
				eligible = append(eligible, int(s))
			}
		}
		pos := inst.Candidates[best]
		sort.Slice(eligible, func(a, b int) bool {
			return sensors[eligible[a]].Dist2(pos) < sensors[eligible[b]].Dist2(pos)
		})
		if len(eligible) > cap {
			eligible = eligible[:cap]
		}
		for _, s := range eligible {
			uncovered.Remove(s)
		}
		stopsCand = append(stopsCand, best)
		stopsAssign = append(stopsAssign, eligible)
	}

	// Order the stops with the TSP engine (sink anchored at index 0).
	pts := make([]geom.Point, 0, len(stopsCand)+1)
	pts = append(pts, p.Net.Sink)
	for _, c := range stopsCand {
		pts = append(pts, inst.Candidates[c])
	}
	tour := tsp.Solve(pts, opts)
	tour.RotateTo(0)
	orderedStops := make([]geom.Point, 0, len(stopsCand))
	orderPos := make([]int, len(stopsCand))
	for _, idx := range tour[1:] {
		orderPos[idx-1] = len(orderedStops)
		orderedStops = append(orderedStops, pts[idx])
	}
	uploadAt := make([]int, len(sensors))
	for i := range uploadAt {
		uploadAt[i] = -1
	}
	for sIdx, members := range stopsAssign {
		for _, s := range members {
			uploadAt[s] = orderPos[sIdx]
		}
	}
	plan := &collector.TourPlan{Sink: p.Net.Sink, Stops: orderedStops, UploadAt: uploadAt}
	return &Solution{
		Plan:      plan,
		Length:    plan.Length(),
		Algorithm: fmt.Sprintf("shdg-cap%d", cap),
	}, nil
}

// ValidateCapacity checks that no stop serves more than cap sensors.
func (s *Solution) ValidateCapacity(cap int) error {
	for stop, count := range s.Plan.SensorsAt() {
		if count > cap {
			return fmt.Errorf("shdgp: stop %d serves %d sensors, capacity %d", stop, count, cap)
		}
	}
	return nil
}

// PlanSweep is an alternative heuristic in the traversal family: build a
// hop-count shortest-path tree over each connected component (rooted at
// the component's sensor nearest the sink), walk it in preorder, and the
// first time the walk reaches an uncovered sensor, open a stop at the
// candidate that covers it with the largest uncovered gain. The walk makes
// consecutive stops spatially coherent, which the final TSP pass then
// exploits. It exists as an E8 ablation point against the global greedy.
func PlanSweep(p *Problem, opts tsp.Options) (*Solution, error) {
	inst, err := p.Instance()
	if err != nil {
		return nil, err
	}
	sensors := p.Net.Positions()
	if len(sensors) == 0 {
		return nil, fmt.Errorf("shdgp: empty network")
	}
	// coversSensor[s]: candidate indices covering sensor s.
	coversSensor := make([][]int, inst.Universe)
	for c := 0; c < inst.NumCandidates(); c++ {
		for _, s := range inst.Cover(c) {
			coversSensor[s] = append(coversSensor[s], c)
		}
	}

	countUncovered := func(c int, uncovered *bitset.Set) int {
		g := 0
		for _, s := range inst.Cover(c) {
			if uncovered.Has(int(s)) {
				g++
			}
		}
		return g
	}
	uncovered := bitset.New(inst.Universe)
	uncovered.Fill()
	var chosen []int
	for _, s := range sweepOrder(p) {
		if !uncovered.Has(s) {
			continue
		}
		best, bestGain := -1, -1
		for _, c := range coversSensor[s] {
			gain := countUncovered(c, uncovered)
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("shdgp: sweep found no candidate for sensor %d", s)
		}
		chosen = append(chosen, best)
		for _, sv := range inst.Cover(best) {
			uncovered.Remove(int(sv))
		}
	}
	sol := buildSolution(p, inst, chosen, opts, "shdg-sweep")
	return sol, nil
}

// sweepOrder returns all sensors in component-by-component preorder of the
// hop-count SPT rooted at each component's sensor nearest the sink.
func sweepOrder(p *Problem) []int {
	nw := p.Net
	g := nw.Graph()
	order := make([]int, 0, nw.N())
	for _, comp := range nw.Components() {
		root := comp[0]
		bestD := nw.Nodes[root].Pos.Dist2(nw.Sink)
		for _, v := range comp[1:] {
			if d := nw.Nodes[v].Pos.Dist2(nw.Sink); d < bestD {
				root, bestD = v, d
			}
		}
		// Preorder walk of the BFS tree: the hop-count SPT of the
		// component.
		r := graph.BFS(g, root)
		tree := graph.NewTreeFromParents(root, r.Parent)
		order = append(order, tree.Preorder()...)
	}
	return order
}
