package shdgp

import (
	"testing"

	"mobicol/internal/rng"
	"mobicol/internal/tsp"
)

func TestPlanHeteroUniformMatchesSemantics(t *testing.T) {
	p := deploy(100, 200, 30, 1)
	radii := make([]float64, p.Net.N())
	for i := range radii {
		radii[i] = p.Net.Range
	}
	sol, err := PlanHetero(p.Net, radii, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.ValidateHetero(p.Net.Positions(), radii); err != nil {
		t.Fatal(err)
	}
	// With uniform radii this is ordinary SHDGP: the standard validator
	// must also pass.
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestPlanHeteroRespectsWeakSensors(t *testing.T) {
	p := deploy(120, 200, 30, 3)
	s := rng.New(7)
	radii := make([]float64, p.Net.N())
	for i := range radii {
		if s.Bool(0.5) {
			radii[i] = 12 // weak radio
		} else {
			radii[i] = 30
		}
	}
	sol, err := PlanHetero(p.Net, radii, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.ValidateHetero(p.Net.Positions(), radii); err != nil {
		t.Fatal(err)
	}
}

func TestPlanHeteroWeakSensorsLengthenTour(t *testing.T) {
	p := deploy(150, 200, 30, 5)
	strong := make([]float64, p.Net.N())
	weak := make([]float64, p.Net.N())
	for i := range strong {
		strong[i] = 30
		weak[i] = 10
	}
	a, err := PlanHetero(p.Net, strong, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanHetero(p.Net, weak, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.Length <= a.Length {
		t.Fatalf("weak radios (%.1f) should need a longer tour than strong (%.1f)", b.Length, a.Length)
	}
	if b.Stops() <= a.Stops() {
		t.Fatalf("weak radios should need more stops: %d vs %d", b.Stops(), a.Stops())
	}
}

func TestPlanHeteroRejectsBadInput(t *testing.T) {
	p := deploy(10, 100, 30, 1)
	if _, err := PlanHetero(p.Net, make([]float64, 3), tsp.DefaultOptions()); err == nil {
		t.Fatal("mismatched radii accepted")
	}
	bad := make([]float64, p.Net.N())
	if _, err := PlanHetero(p.Net, bad, tsp.DefaultOptions()); err == nil {
		t.Fatal("non-positive radius accepted")
	}
}
