// Package shdgp implements the paper's core contribution: the Single-Hop
// Data Gathering Problem and its planners.
//
// Problem statement (Ma & Yang, IPDPS 2008). An M-collector departs from
// the static data sink, pauses at a sequence of stop positions ("polling
// points"), and returns to the sink. While paused at a stop it polls the
// sensors within transmission range, each of which uploads its data in a
// single hop. The SHDGP asks for the stop set and visiting order that
// minimise the total tour length subject to every sensor being within
// range of at least one stop. Minimising tour length minimises the
// dominant term of data-collection latency, since the collector moves at
// ~1 m/s while radio transfers are near-instant by comparison.
//
// The problem jointly contains geometric disk cover (choose the stops) and
// the Euclidean TSP (order them), and is NP-hard; the package provides the
// heuristic planner used at scale plus an exact solver for the small
// instances the paper certifies against CPLEX.
package shdgp

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/par"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

// Problem is one SHDGP instance.
type Problem struct {
	Net *wsn.Network
	// Strategy selects candidate stop generation (default SensorSites).
	Strategy cover.CandidateStrategy
	// GridSpacing applies to the FieldGrid strategy (default 20 m, the
	// paper's evaluation setting).
	GridSpacing float64
	// Pool bounds the parallelism the planners may use. The zero value
	// runs sequentially; any pool size produces byte-identical plans.
	Pool par.Pool
}

// NewProblem wraps a network with default candidate generation.
func NewProblem(nw *wsn.Network) *Problem { return &Problem{Net: nw} }

// Instance materialises the covering instance for the problem. It fails
// when the candidate strategy is unknown or the instance is infeasible
// (some sensor out of range of every candidate).
//
//mdglint:allow-alloc(instance materialisation runs once per plan and owns the candidate/cover storage)
func (p *Problem) Instance() (*cover.Instance, error) {
	sensors := p.Net.Positions()
	cands, err := cover.GenerateCandidates(sensors, p.Net.Field, p.Net.Range, p.Strategy, p.GridSpacing)
	if err != nil {
		return nil, err
	}
	inst := cover.NewInstancePool(sensors, cands, p.Net.Range, p.Pool)
	if err := inst.Err(); err != nil {
		return nil, err
	}
	return inst, nil
}

// Solution is a planned single-hop gathering tour.
type Solution struct {
	// Plan is the executable tour: ordered stops (sink excluded) plus
	// the sensor-to-stop assignment.
	Plan *collector.TourPlan
	// Length is the closed tour length in metres.
	Length geom.Meters
	// Exact is true when the solution is provably optimal.
	Exact bool
	// Algorithm names the planner that produced the solution.
	Algorithm string
	// Stats summarises the covering phase for reporting.
	Stats PlanStats
}

// PlanStats carries the candidate-generation and cover statistics the
// CLIs report alongside the tour: how large the instance was, how many
// stops the cover phase picked before refinement, and how loaded the
// busiest stop is (the buffer-sizing number from the paper's single-hop
// argument).
type PlanStats struct {
	// Candidates is the number of candidate stop positions that cover
	// at least one sensor.
	Candidates int
	// Universe is the number of sensors to cover.
	Universe int
	// CoverStops is the cover size before refinement (== final stop
	// count when refinement is off or changed nothing).
	CoverStops int
	// MaxSensorsPerStop is the largest number of sensors assigned to
	// upload at a single stop.
	MaxSensorsPerStop int
}

// Stops returns the number of polling points (excluding the sink).
func (s *Solution) Stops() int { return len(s.Plan.Stops) }

// Validate checks the single-hop guarantee and tour consistency against
// the problem's network.
func (s *Solution) Validate(p *Problem) error {
	sensors := p.Net.Positions()
	if err := s.Plan.Validate(sensors, p.Net.Range); err != nil {
		return err
	}
	for i, stop := range s.Plan.UploadAt {
		if stop < 0 {
			return fmt.Errorf("shdgp: sensor %d has no upload stop", i)
		}
	}
	if got := s.Plan.Length(); !almostEq(got, s.Length) {
		return fmt.Errorf("shdgp: recorded length %.4f != recomputed %.4f", s.Length, got)
	}
	if !s.Plan.Sink.Eq(p.Net.Sink) {
		return fmt.Errorf("shdgp: tour anchored at %v, sink is %v", s.Plan.Sink, p.Net.Sink)
	}
	return nil
}

func almostEq(a, b geom.Meters) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+b)
}

// buildSolution assembles a Solution from chosen candidate indices: order
// the stops with the TSP engine (sink included as an anchor), rotate the
// sink first, and assign each sensor to its nearest chosen stop.
//
//mdglint:allow-alloc(solution assembly runs once per plan and owns the tour plan it returns)
func buildSolution(p *Problem, inst *cover.Instance, chosen []int, opts tsp.Options, algorithm string) *Solution {
	sensors := p.Net.Positions()
	// Tour points: index 0 is the sink, 1..k are the stops.
	pts := make([]geom.Point, 0, len(chosen)+1)
	pts = append(pts, p.Net.Sink)
	for _, c := range chosen {
		pts = append(pts, inst.Candidates[c])
	}
	tour := tsp.Solve(pts, opts)
	tour.RotateTo(0)

	orderedStops := make([]geom.Point, 0, len(chosen))
	// orderPos[i] = position of chosen[i] in the ordered stop list.
	orderPos := make([]int, len(chosen))
	for _, idx := range tour[1:] {
		orderPos[idx-1] = len(orderedStops)
		orderedStops = append(orderedStops, pts[idx])
	}
	rawAssign := inst.Assign(sensors, chosen)
	uploadAt := make([]int, len(sensors))
	for i, a := range rawAssign {
		if a < 0 {
			uploadAt[i] = -1
		} else {
			uploadAt[i] = orderPos[a]
		}
	}
	plan := &collector.TourPlan{Sink: p.Net.Sink, Stops: orderedStops, UploadAt: uploadAt}
	perStop := make([]int, len(orderedStops))
	maxPerStop := 0
	for _, s := range uploadAt {
		if s >= 0 {
			perStop[s]++
			if perStop[s] > maxPerStop {
				maxPerStop = perStop[s]
			}
		}
	}
	return &Solution{
		Plan:      plan,
		Length:    plan.Length(),
		Algorithm: algorithm,
		Stats: PlanStats{
			Candidates:        len(inst.Candidates),
			Universe:          inst.Universe,
			CoverStops:        len(chosen),
			MaxSensorsPerStop: maxPerStop,
		},
	}
}
