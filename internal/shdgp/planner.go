package shdgp

import (
	"fmt"

	"mobicol/internal/bitset"
	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/tsp"
)

// PlannerOptions configures the heuristic planner.
type PlannerOptions struct {
	// TSP configures tour construction and improvement.
	TSP tsp.Options
	// Refine enables the drop-redundant-stop and relocate-stop passes.
	Refine bool
	// RefinePasses bounds refinement iterations (default 3).
	RefinePasses int
	// ExactCover uses the exact minimum-cardinality cover instead of
	// greedy (small instances only; greedy is the default at scale).
	ExactCover bool
	// Obs, when non-nil, receives per-phase spans (candidates, cover,
	// refine, tsp) and planner metrics. Nil disables tracing.
	Obs *obs.Trace
}

// DefaultPlannerOptions is the configuration the experiments label
// "SHDG": greedy covering, greedy-edge + 2-opt + Or-opt tour, refinement.
func DefaultPlannerOptions() PlannerOptions {
	return PlannerOptions{TSP: tsp.DefaultOptions(), Refine: true, RefinePasses: 3}
}

// Plan runs the heuristic single-collector planner:
//
//  1. Generate candidate stops and pick a cover greedily, breaking ties
//     toward the sink so stops gravitate inward.
//  2. Order sink + stops with the TSP engine.
//  3. Refine: drop stops whose sensors are absorbed by remaining stops,
//     and relocate each stop to the candidate that covers the same
//     critical sensors with the smallest tour detour.
func Plan(p *Problem, opts PlannerOptions) (*Solution, error) {
	root := opts.Obs.Start("plan")
	defer root.End()

	spCand := root.Child("candidates")
	inst, err := p.Instance()
	if err != nil {
		spCand.End()
		return nil, err
	}
	spCand.SetStr("strategy", p.Strategy.String())
	spCand.SetInt("candidates", int64(len(inst.Candidates)))
	spCand.SetInt("universe", int64(inst.Universe))
	spCand.Gauge("cover.candidates", float64(len(inst.Candidates)))
	spCand.End()

	spCover := root.Child("cover")
	var chosen []int
	if opts.ExactCover {
		chosen, _, err = inst.ExactMin(2_000_000)
		spCover.SetInt("chosen", int64(len(chosen)))
	} else {
		chosen, err = inst.GreedyObs(p.Net.Sink, spCover)
	}
	spCover.End()
	if err != nil {
		return nil, err
	}
	coverStops := len(chosen)

	if opts.Refine {
		passes := opts.RefinePasses
		if passes <= 0 {
			passes = 3
		}
		spRefine := root.Child("refine")
		ran := 0
		for pass := 0; pass < passes; pass++ {
			ran++
			changed := dropRedundant(inst, &chosen)
			changed = relocateStops(p, inst, chosen) || changed
			if !changed {
				break
			}
		}
		spRefine.SetInt("passes", int64(ran))
		spRefine.SetInt("dropped", int64(coverStops-len(chosen)))
		spRefine.End()
	}

	spTSP := root.Child("tsp")
	tspOpts := opts.TSP
	tspOpts.Obs = spTSP
	sol := buildSolution(p, inst, chosen, tspOpts, algorithmName(opts))
	spTSP.SetInt("stops", int64(len(chosen)))
	spTSP.SetFloat("tour_m", sol.Length)
	spTSP.End()

	sol.Stats.Candidates = len(inst.Candidates)
	sol.Stats.Universe = inst.Universe
	sol.Stats.CoverStops = coverStops
	root.Gauge("planner.stops", float64(len(sol.Plan.Stops)))
	root.Gauge("planner.tour_m", sol.Length)
	return sol, nil
}

func algorithmName(opts PlannerOptions) string {
	name := "shdg-greedy"
	if opts.ExactCover {
		name = "shdg-exactcover"
	}
	if opts.Refine {
		name += "+refine"
	}
	return name
}

// dropRedundant removes chosen stops whose covered sensors are all covered
// by the other chosen stops. Fewer stops can only shorten the tour. Stops
// are considered in increasing unique-coverage order so the least useful
// go first. Returns whether anything was dropped.
func dropRedundant(inst *cover.Instance, chosen *[]int) bool {
	dropped := false
	for {
		cur := *chosen
		removeAt := -1
		for i := range cur {
			rest := bitset.New(inst.Universe)
			for j, c := range cur {
				if j != i {
					rest.Or(inst.Covers[c])
				}
			}
			if inst.Covers[cur[i]].SubsetOf(rest) {
				removeAt = i
				break
			}
		}
		if removeAt < 0 {
			return dropped
		}
		*chosen = append(cur[:removeAt], cur[removeAt+1:]...)
		dropped = true
	}
}

// relocateStops tries to replace each chosen stop with an alternative
// candidate that still covers the stop's critical sensors (those no other
// chosen stop covers) while sitting closer to the tour through the
// remaining stops. The proxy objective is the detour relative to the
// stop's two current tour neighbours. Returns whether any stop moved.
func relocateStops(p *Problem, inst *cover.Instance, chosen []int) bool {
	if len(chosen) == 0 {
		return false
	}
	// Current tour order over sink + stops to know each stop's neighbours.
	pts := make([]geom.Point, 0, len(chosen)+1)
	pts = append(pts, p.Net.Sink)
	for _, c := range chosen {
		pts = append(pts, inst.Candidates[c])
	}
	tour := tsp.Solve(pts, tsp.Options{Construction: tsp.ConstructGreedy, TwoOpt: true})
	tour.RotateTo(0)
	prev := make([]geom.Point, len(chosen))
	next := make([]geom.Point, len(chosen))
	for ti, idx := range tour {
		if idx == 0 {
			continue
		}
		prev[idx-1] = pts[tour[(ti-1+len(tour))%len(tour)]]
		next[idx-1] = pts[tour[(ti+1)%len(tour)]]
	}

	moved := false
	for i := range chosen {
		// Critical sensors: covered by stop i and by no other stop.
		critical := inst.Covers[chosen[i]].Clone()
		for j, c := range chosen {
			if j != i {
				critical.AndNot(inst.Covers[c])
			}
		}
		cur := inst.Candidates[chosen[i]]
		bestCost := prev[i].Dist(cur) + cur.Dist(next[i])
		bestCand := chosen[i]
		for c := range inst.Covers {
			if c == chosen[i] {
				continue
			}
			if !critical.SubsetOf(inst.Covers[c]) {
				continue
			}
			alt := inst.Candidates[c]
			if cost := prev[i].Dist(alt) + alt.Dist(next[i]); cost < bestCost-1e-9 {
				bestCost = cost
				bestCand = c
			}
		}
		if bestCand != chosen[i] {
			chosen[i] = bestCand
			moved = true
		}
	}
	return moved
}

// PlanVisitAll returns the "d = 0" extreme: the collector visits every
// sensor position (single hop at zero distance). The paper's introduction
// uses it to motivate covering stops; the experiments use it as the
// maximum-energy-saving baseline.
func PlanVisitAll(p *Problem, opts tsp.Options) (*Solution, error) {
	sensors := p.Net.Positions()
	if len(sensors) == 0 {
		return nil, fmt.Errorf("shdgp: empty network")
	}
	inst := cover.NewInstance(sensors, sensors, p.Net.Range)
	chosen := make([]int, len(inst.Candidates))
	for i := range chosen {
		chosen[i] = i
	}
	// Assign every sensor to its own position, not the nearest stop: with
	// all sensors as stops the nearest stop IS its own position.
	sol := buildSolution(p, inst, chosen, opts, "visit-all-tsp")
	return sol, nil
}
