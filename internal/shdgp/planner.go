package shdgp

import (
	"fmt"

	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/tsp"
)

// PlannerOptions configures the heuristic planner.
type PlannerOptions struct {
	// TSP configures tour construction and improvement.
	TSP tsp.Options
	// Refine enables the drop-redundant-stop and relocate-stop passes.
	Refine bool
	// RefinePasses bounds refinement iterations (default 3).
	RefinePasses int
	// ExactCover uses the exact minimum-cardinality cover instead of
	// greedy (small instances only; greedy is the default at scale).
	ExactCover bool
	// Obs, when non-nil, receives per-phase spans (candidates, cover,
	// refine, tsp) and planner metrics. Nil disables tracing.
	Obs *obs.Trace
	// Step, when non-nil, is consulted at every phase boundary
	// (candidates → cover → refine → tsp); a non-nil return aborts the
	// plan with that error. The engine seam wires context cancellation
	// here (opts.Step = ctx.Err), so a canceled plan stops at the next
	// boundary instead of running to completion. A Step that always
	// returns nil never changes the planner's output.
	Step func() error
}

// step consults the phase-boundary hook, if any.
func (o PlannerOptions) step() error {
	if o.Step == nil {
		return nil
	}
	return o.Step()
}

// DefaultPlannerOptions is the configuration the experiments label
// "SHDG": greedy covering, greedy-edge + 2-opt + Or-opt tour, refinement.
func DefaultPlannerOptions() PlannerOptions {
	return PlannerOptions{TSP: tsp.DefaultOptions(), Refine: true, RefinePasses: 3}
}

// Plan runs the heuristic single-collector planner:
//
//  1. Generate candidate stops and pick a cover greedily, breaking ties
//     toward the sink so stops gravitate inward.
//  2. Order sink + stops with the TSP engine.
//  3. Refine: drop stops whose sensors are absorbed by remaining stops,
//     and relocate each stop to the candidate that covers the same
//     critical sensors with the smallest tour detour.
//
//mdglint:hotpath
func Plan(p *Problem, opts PlannerOptions) (*Solution, error) {
	root := opts.Obs.Start("plan")
	defer root.End()

	if err := opts.step(); err != nil {
		return nil, err
	}
	spCand := root.Child("candidates")
	inst, err := p.Instance()
	if err != nil {
		spCand.End()
		return nil, err
	}
	spCand.SetStr("strategy", p.Strategy.String())
	spCand.SetInt("candidates", int64(len(inst.Candidates)))
	spCand.SetInt("universe", int64(inst.Universe))
	spCand.Gauge("cover.candidates", float64(len(inst.Candidates)))
	spCand.End()

	if err := opts.step(); err != nil {
		return nil, err
	}
	spCover := root.Child("cover")
	var chosen []int
	if opts.ExactCover {
		chosen, _, err = inst.ExactMin(2_000_000)
		spCover.SetInt("chosen", int64(len(chosen)))
	} else {
		chosen, err = inst.GreedyObs(p.Net.Sink, spCover)
	}
	spCover.End()
	if err != nil {
		return nil, err
	}
	if err := opts.step(); err != nil {
		return nil, err
	}
	coverStops := len(chosen)

	if opts.Refine {
		passes := opts.RefinePasses
		if passes <= 0 {
			passes = 3
		}
		spRefine := root.Child("refine")
		rs := newRefineScratch(inst)
		ran := 0
		for pass := 0; pass < passes; pass++ {
			ran++
			changed := dropRedundant(inst, &chosen, rs)
			changed = relocateStops(p, inst, chosen, rs) || changed
			if !changed {
				break
			}
		}
		spRefine.SetInt("passes", int64(ran))
		spRefine.SetInt("dropped", int64(coverStops-len(chosen)))
		spRefine.End()
	}

	if err := opts.step(); err != nil {
		return nil, err
	}
	spTSP := root.Child("tsp")
	tspOpts := opts.TSP
	tspOpts.Obs = spTSP
	sol := buildSolution(p, inst, chosen, tspOpts, algorithmName(opts))
	spTSP.SetInt("stops", int64(len(chosen)))
	//mdglint:ignore unitcheck obs boundary: trace fields carry raw numbers
	spTSP.SetFloat("tour_m", float64(sol.Length))
	spTSP.End()

	sol.Stats.Candidates = len(inst.Candidates)
	sol.Stats.Universe = inst.Universe
	sol.Stats.CoverStops = coverStops
	root.Gauge("planner.stops", float64(len(sol.Plan.Stops)))
	//mdglint:ignore unitcheck obs boundary: metric gauges carry raw numbers
	root.Gauge("planner.tour_m", float64(sol.Length))
	return sol, nil
}

func algorithmName(opts PlannerOptions) string {
	name := "shdg-greedy"
	if opts.ExactCover {
		name = "shdg-exactcover"
	}
	if opts.Refine {
		name += "+refine"
	}
	return name
}

// refineScratch holds the buffers the refinement passes share: coverage
// counts, the per-sensor coverer lists (transposed covers), the
// critical-sensor scratch, and the tour-neighbour arrays. Plan builds one
// per call and reuses it across every refinement pass, so the passes
// themselves stay allocation-free.
type refineScratch struct {
	counts []int // counts[s] = kept stops covering sensor s
	// Transpose of the instance's CSR covers: sensor s is covered by
	// candidates covIdx[covOff[s]:covOff[s+1]], ascending.
	covOff   []int32
	covIdx   []int32
	critical []int32      // scratch for one stop's critical sensors, ascending
	pts      []geom.Point // sink + stop positions for the proxy tour
	prev     []geom.Point // prev[i] = tour predecessor of stop i
	next     []geom.Point // next[i] = tour successor of stop i
}

// newRefineScratch sizes the buffers for the instance. The coverer lists
// depend only on the instance's candidate covers — not on the current
// selection — so building them here once serves every refinement pass.
// The transpose is a counting sort over the cover lists: two O(pairs)
// passes, no per-sensor slice headers.
//
//mdglint:allow-alloc(refine scratch is built once per Plan and reused across all passes)
func newRefineScratch(inst *cover.Instance) *refineScratch {
	rs := &refineScratch{
		counts: make([]int, inst.Universe),
		covOff: make([]int32, inst.Universe+1),
	}
	total := 0
	for c := 0; c < inst.NumCandidates(); c++ {
		for _, s := range inst.Cover(c) {
			rs.covOff[s+1]++
		}
		total += len(inst.Cover(c))
	}
	for s := 0; s < inst.Universe; s++ {
		rs.covOff[s+1] += rs.covOff[s]
	}
	rs.covIdx = make([]int32, total)
	fill := make([]int32, inst.Universe)
	// Ascending candidate order per sensor falls out of the ascending
	// outer loop — the same order the per-sensor append lists had.
	for c := 0; c < inst.NumCandidates(); c++ {
		for _, s := range inst.Cover(c) {
			rs.covIdx[rs.covOff[s]+fill[s]] = int32(c)
			fill[s]++
		}
	}
	return rs
}

// coverersOf returns the candidates covering sensor s, ascending.
func (rs *refineScratch) coverersOf(s int32) []int32 {
	return rs.covIdx[rs.covOff[s]:rs.covOff[s+1]]
}

// subsetOfSorted reports whether every element of a (ascending) is also
// in b (ascending).
func subsetOfSorted(a, b []int32) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}

// ensureTour grows the proxy-tour buffers to hold k stops.
//
//mdglint:allow-alloc(tour-buffer growth is amortized; later passes reuse the retained arrays)
func (rs *refineScratch) ensureTour(k int) {
	if cap(rs.pts) < k+1 {
		rs.pts = make([]geom.Point, 0, k+1)
		rs.prev = make([]geom.Point, k)
		rs.next = make([]geom.Point, k)
	}
	rs.pts = rs.pts[:0]
	rs.prev = rs.prev[:k]
	rs.next = rs.next[:k]
}

// resetCounts recomputes the coverage counts for the current selection.
func (rs *refineScratch) resetCounts(inst *cover.Instance, chosen []int) {
	for i := range rs.counts {
		rs.counts[i] = 0
	}
	for _, c := range chosen {
		for _, s := range inst.Cover(c) {
			rs.counts[s]++
		}
	}
}

// dropRedundant removes chosen stops whose covered sensors are all covered
// by the other chosen stops. Fewer stops can only shorten the tour. Stops
// are considered in selection order. Returns whether anything was dropped.
//
// A coverage-count cache makes this a single O(k·cover) pass: stop c is
// redundant exactly when every sensor it covers has coverage count >= 2,
// and removals only decrement counts, so a stop that survives its check
// can never become redundant later. That monotonicity makes the
// left-to-right pass with live counts equivalent to the old
// remove-first-and-restart fixed point (TestDropRedundantMatchesOracle
// pins it), without rebuilding an O(k) bitset union per stop per round.
func dropRedundant(inst *cover.Instance, chosen *[]int, rs *refineScratch) bool {
	cur := *chosen
	rs.resetCounts(inst, cur)
	counts := rs.counts
	redundant := func(c int) bool {
		for _, s := range inst.Cover(c) {
			if counts[s] < 2 {
				return false
			}
		}
		return true
	}
	out := cur[:0]
	dropped := false
	for _, c := range cur {
		if redundant(c) {
			for _, s := range inst.Cover(c) {
				counts[s]--
			}
			dropped = true
			continue
		}
		//mdglint:allow-alloc(out aliases cur[:0]; the append writes into the selection's own storage)
		out = append(out, c)
	}
	*chosen = out
	return dropped
}

// relocateStops tries to replace each chosen stop with an alternative
// candidate that still covers the stop's critical sensors (those no other
// chosen stop covers) while sitting closer to the tour through the
// remaining stops. The proxy objective is the detour relative to the
// stop's two current tour neighbours. Returns whether any stop moved.
func relocateStops(p *Problem, inst *cover.Instance, chosen []int, rs *refineScratch) bool {
	if len(chosen) == 0 {
		return false
	}
	// Current tour order over sink + stops to know each stop's neighbours.
	rs.ensureTour(len(chosen))
	pts := rs.pts
	//mdglint:allow-alloc(append stays within the capacity ensureTour reserved)
	pts = append(pts, p.Net.Sink)
	for _, c := range chosen {
		//mdglint:allow-alloc(append stays within the capacity ensureTour reserved)
		pts = append(pts, inst.Candidates[c])
	}
	tour := tsp.Solve(pts, tsp.Options{Construction: tsp.ConstructGreedy, TwoOpt: true})
	tour.RotateTo(0)
	prev, next := rs.prev, rs.next
	for ti, idx := range tour {
		if idx == 0 {
			continue
		}
		prev[idx-1] = pts[tour[(ti-1+len(tour))%len(tour)]]
		next[idx-1] = pts[tour[(ti+1)%len(tour)]]
	}

	// counts[s] = number of chosen stops covering sensor s, maintained
	// across relocations so each stop's critical set (sensors only it
	// covers, i.e. count exactly 1) reflects every earlier move — the
	// same set the old per-stop O(k) bitset union produced.
	rs.resetCounts(inst, chosen)
	counts := rs.counts
	moved := false
	for i := range chosen {
		// The critical set inherits ascending order from the cover list,
		// so subset checks against other covers are sorted merges.
		critical := rs.critical[:0]
		for _, s := range inst.Cover(chosen[i]) {
			if counts[s] == 1 {
				//mdglint:allow-alloc(append reuses critical-set capacity retained in the scratch)
				critical = append(critical, s)
			}
		}
		rs.critical = critical
		cur := inst.Candidates[chosen[i]]
		bestCost := prev[i].Dist(cur) + cur.Dist(next[i])
		bestCand := chosen[i]
		consider := func(c int) {
			if c == chosen[i] {
				return
			}
			if !subsetOfSorted(critical, inst.Cover(c)) {
				return
			}
			alt := inst.Candidates[c]
			if cost := prev[i].Dist(alt) + alt.Dist(next[i]); cost < bestCost-1e-9 {
				bestCost = cost
				bestCand = c
			}
		}
		if len(critical) > 0 {
			// Any replacement must cover every critical sensor, so scanning
			// the coverers of the first one — ascending, like the full scan
			// — preserves tie-breaks while touching a handful of candidates.
			for _, c := range rs.coverersOf(critical[0]) {
				consider(int(c))
			}
		} else {
			// No critical sensors (the stop is redundant): every
			// candidate qualifies, as in the full scan.
			for c := 0; c < inst.NumCandidates(); c++ {
				consider(c)
			}
		}
		if bestCand != chosen[i] {
			for _, s := range inst.Cover(chosen[i]) {
				counts[s]--
			}
			for _, s := range inst.Cover(bestCand) {
				counts[s]++
			}
			chosen[i] = bestCand
			moved = true
		}
	}
	return moved
}

// PlanVisitAll returns the "d = 0" extreme: the collector visits every
// sensor position (single hop at zero distance). The paper's introduction
// uses it to motivate covering stops; the experiments use it as the
// maximum-energy-saving baseline.
func PlanVisitAll(p *Problem, opts tsp.Options) (*Solution, error) {
	sensors := p.Net.Positions()
	if len(sensors) == 0 {
		return nil, fmt.Errorf("shdgp: empty network")
	}
	inst := cover.NewInstancePool(sensors, sensors, p.Net.Range, p.Pool)
	chosen := make([]int, len(inst.Candidates))
	for i := range chosen {
		chosen[i] = i
	}
	// Assign every sensor to its own position, not the nearest stop: with
	// all sensors as stops the nearest stop IS its own position.
	sol := buildSolution(p, inst, chosen, opts, "visit-all-tsp")
	return sol, nil
}
