package shdgp

import (
	"math"
	"testing"

	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

func deploy(n int, side, r float64, seed uint64) *Problem {
	return NewProblem(wsn.MustDeploy(wsn.Config{N: n, FieldSide: side, Range: r, Seed: seed}))
}

func TestPlanProducesValidSolution(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		p := deploy(150, 200, 30, seed)
		sol, err := Plan(p, DefaultPlannerOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Stops() == 0 || sol.Length <= 0 {
			t.Fatalf("seed %d: degenerate solution %d stops %.1fm", seed, sol.Stops(), sol.Length)
		}
	}
}

func TestPlanCoversEverySensorSingleHop(t *testing.T) {
	p := deploy(200, 250, 30, 3)
	sol, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	sensors := p.Net.Positions()
	for i, stop := range sol.Plan.UploadAt {
		if stop < 0 {
			t.Fatalf("sensor %d unserved", i)
		}
		if d := sensors[i].Dist(sol.Plan.Stops[stop]); d > p.Net.Range+1e-9 {
			t.Fatalf("sensor %d uploads over %.2fm, range %.2fm", i, d, p.Net.Range)
		}
	}
}

func TestPlanHandlesDisconnectedNetworks(t *testing.T) {
	// Clustered sparse deployment: multi-hop to a static sink would strand
	// sensors, but the SHDGP plan must still serve all of them.
	nw := wsn.MustDeploy(wsn.Config{N: 80, FieldSide: 500, Range: 25, Placement: wsn.Clustered, Clusters: 4, Seed: 7})
	p := NewProblem(nw)
	sol, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if sol.Plan.Served() != nw.N() {
		t.Fatalf("served %d of %d sensors", sol.Plan.Served(), nw.N())
	}
}

func TestRefinementNeverHurts(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		p := deploy(120, 200, 30, seed)
		raw, err := Plan(p, PlannerOptions{TSP: tsp.DefaultOptions(), Refine: false})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Plan(p, DefaultPlannerOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Refinement is heuristic; allow a tiny tolerance but catch
		// systematic regressions.
		if refined.Length > raw.Length*1.02+1e-9 {
			t.Fatalf("seed %d: refinement worsened tour %.1f -> %.1f", seed, raw.Length, refined.Length)
		}
	}
}

func TestPlanShorterThanVisitAll(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		p := deploy(200, 200, 30, seed)
		sol, err := Plan(p, DefaultPlannerOptions())
		if err != nil {
			t.Fatal(err)
		}
		all, err := PlanVisitAll(p, tsp.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := all.Validate(p); err != nil {
			t.Fatal(err)
		}
		if sol.Length >= all.Length {
			t.Fatalf("seed %d: covering tour %.1f not shorter than visit-all %.1f", seed, sol.Length, all.Length)
		}
	}
}

func TestPlanGridStrategyFeasible(t *testing.T) {
	p := deploy(100, 200, 30, 11)
	p.Strategy = cover.FieldGrid
	p.GridSpacing = 20
	sol, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestPlanIntersectionStrategyAtLeastAsShort(t *testing.T) {
	// Denser candidate sets should on average shorten tours; require it
	// not to be dramatically worse on a fixed seed.
	p := deploy(80, 150, 30, 13)
	sites, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2 := deploy(80, 150, 30, 13)
	p2.Strategy = cover.Intersections
	inter, err := Plan(p2, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if inter.Length > sites.Length*1.15 {
		t.Fatalf("intersection candidates %.1f much worse than sites %.1f", inter.Length, sites.Length)
	}
}

func TestSingleSensorNetwork(t *testing.T) {
	nw := wsn.New([]geom.Point{geom.Pt(80, 50)}, geom.Pt(50, 50), 20, geom.Square(100))
	p := NewProblem(nw)
	sol, err := Plan(p, DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stops() != 1 {
		t.Fatalf("stops = %d", sol.Stops())
	}
	// Out to the sensor and back: 2 * 30 (stop at the sensor site).
	if math.Abs(float64(sol.Length)-60) > 1e-6 {
		t.Fatalf("length = %v, want 60", sol.Length)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestPlanExactSmallInstances(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		p := deploy(15, 80, 25, seed)
		ex, err := PlanExact(p, DefaultExactLimits())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ex.Exact {
			t.Fatalf("seed %d: tiny instance not solved exactly", seed)
		}
		if err := ex.Validate(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		heur, err := Plan(p, DefaultPlannerOptions())
		if err != nil {
			t.Fatal(err)
		}
		if ex.Length > heur.Length+1e-6 {
			t.Fatalf("seed %d: exact %.3f worse than heuristic %.3f", seed, ex.Length, heur.Length)
		}
	}
}

func TestPlanExactBeatsOrMatchesVisitAll(t *testing.T) {
	p := deploy(12, 70, 25, 21)
	ex, err := PlanExact(p, DefaultExactLimits())
	if err != nil {
		t.Fatal(err)
	}
	all, err := PlanVisitAll(p, tsp.Options{Construction: tsp.ConstructGreedy, TwoOpt: true, OrOpt: true, ExactBelow: tsp.HeldKarpMax})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Length > all.Length+1e-6 {
		t.Fatalf("exact %.3f worse than visit-all %.3f", ex.Length, all.Length)
	}
}

func TestPlanExactRejectsHugeInstances(t *testing.T) {
	p := deploy(300, 300, 25, 1)
	if _, err := PlanExact(p, ExactLimits{MaxCandidates: 10, MaxStops: 14, MaxNodes: 1000}); err == nil {
		t.Fatal("oversized exact instance accepted")
	}
}

func TestMinStopsILPMatchesExactCover(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		p := deploy(14, 80, 25, seed)
		inst, err := p.Instance()
		if err != nil {
			t.Fatal(err)
		}
		chosen, exact, err := inst.ExactMin(0)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatal("combinatorial cover search capped on tiny instance")
		}
		ilp, ilpExact, err := MinStopsILP(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ilpExact {
			t.Fatal("ILP capped on tiny instance")
		}
		if ilp != len(chosen) {
			t.Fatalf("seed %d: ILP min stops %d != combinatorial %d", seed, ilp, len(chosen))
		}
	}
}

func TestInfeasibleWhenNoCandidates(t *testing.T) {
	// A network with sensors but a candidate strategy that yields no
	// feasible cover can't happen with sensor sites; simulate by an empty
	// network instead and expect a planner error from PlanVisitAll.
	nw := wsn.New(nil, geom.Pt(0, 0), 10, geom.Square(10))
	if _, err := PlanVisitAll(NewProblem(nw), tsp.DefaultOptions()); err == nil {
		t.Fatal("empty network accepted by visit-all")
	}
}

func BenchmarkPlan200(b *testing.B) {
	p := deploy(200, 200, 30, 1)
	opts := DefaultPlannerOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanExact15(b *testing.B) {
	p := deploy(15, 80, 25, 2)
	limits := DefaultExactLimits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanExact(p, limits); err != nil {
			b.Fatal(err)
		}
	}
}
