// Package bitset implements dense fixed-capacity bitsets. The covering
// engine represents "which sensors does candidate stop c cover?" as a
// bitset, making the greedy and exact set-cover inner loops word-parallel:
// coverage gain is a popcount of AndNot rather than a per-sensor scan.
package bitset

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over [0, Len()). The zero value is an empty set of
// capacity 0; use New for a sized set.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		//mdglint:ignore nopanic documented precondition on a programmer-supplied constant capacity
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// check panics when i is outside [0, n).
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		//mdglint:ignore nopanic bounds check mirroring slice-index semantics; an error return would poison every hot-path bit op
		panic("bitset: index out of range")
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of o. The two sets must have equal
// capacity.
func (s *Set) Copy(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

// Clear removes every element.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit in [0, n).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond n in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		//mdglint:ignore nopanic set-algebra on mismatched capacities is a programming error, like mismatched matrix dimensions
		panic("bitset: capacity mismatch")
	}
}

// Or sets s to s ∪ o.
func (s *Set) Or(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// And sets s to s ∩ o.
func (s *Set) And(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNot sets s to s \ o.
func (s *Set) AndNot(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// CountAndNot returns |s \ o| without modifying either set. This is the
// greedy set cover "marginal gain" primitive.
func (s *Set) CountAndNot(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ o.words[i])
	}
	return c
}

// CountAnd returns |s ∩ o| without modifying either set.
func (s *Set) CountAnd(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// IntersectsWith reports whether s and o share any element.
func (s *Set) IntersectsWith(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the smallest set bit >= i, or -1 when none exists.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			fn(wi*wordBits + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Slice returns the set elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		writeInt(&b, i)
	})
	b.WriteByte('}')
	return b.String()
}

func writeInt(b *strings.Builder, v int) {
	if v >= 10 {
		writeInt(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}
