package bitset

import (
	"testing"
	"testing/quick"

	"mobicol/internal/rng"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 7 {
		t.Fatal("Remove(64) failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Has(10) },
		func() { s.Remove(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFillTrimsTail(t *testing.T) {
	s := New(70)
	s.Fill()
	if s.Count() != 70 {
		t.Fatalf("Fill count = %d, want 70", s.Count())
	}
}

func TestClearEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(50)
	if s.Empty() {
		t.Fatal("set with element reports empty")
	}
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(200), New(200)
	for i := 0; i < 200; i += 2 {
		a.Add(i) // evens
	}
	for i := 0; i < 200; i += 3 {
		b.Add(i) // multiples of 3
	}
	union := a.Clone()
	union.Or(b)
	inter := a.Clone()
	inter.And(b)
	diff := a.Clone()
	diff.AndNot(b)
	// Inclusion–exclusion.
	if union.Count() != a.Count()+b.Count()-inter.Count() {
		t.Fatal("inclusion-exclusion violated")
	}
	if diff.Count() != a.Count()-inter.Count() {
		t.Fatal("difference count wrong")
	}
	if got := a.CountAnd(b); got != inter.Count() {
		t.Fatalf("CountAnd = %d, want %d", got, inter.Count())
	}
	if got := a.CountAndNot(b); got != diff.Count() {
		t.Fatalf("CountAndNot = %d, want %d", got, diff.Count())
	}
	for i := 0; i < 200; i++ {
		if inter.Has(i) != (i%6 == 0) {
			t.Fatalf("intersection wrong at %d", i)
		}
	}
}

func TestSubsetEqualIntersects(t *testing.T) {
	a, b := New(64), New(64)
	a.Add(3)
	a.Add(40)
	b.Add(3)
	b.Add(40)
	b.Add(63)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if a.Equal(b) {
		t.Fatal("Equal wrong for proper subset")
	}
	a.Add(63)
	if !a.Equal(b) {
		t.Fatal("Equal wrong for identical sets")
	}
	c := New(64)
	if c.IntersectsWith(a) {
		t.Fatal("empty set intersects")
	}
	c.Add(40)
	if !c.IntersectsWith(a) {
		t.Fatal("IntersectsWith missed shared element")
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	for _, i := range []int{5, 64, 200, 299} {
		s.Add(i)
	}
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {65, 200}, {201, 299}, {299, 299}, {300, -1}, {-5, 5},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(10).NextSet(0) != -1 {
		t.Fatal("NextSet on empty set should be -1")
	}
}

func TestForEachAndSliceOrdered(t *testing.T) {
	s := New(150)
	want := []int{0, 7, 63, 64, 100, 149}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(20)
	s.Add(1)
	s.Add(15)
	if got := s.String(); got != "{1, 15}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestCopyAndCloneIndependence(t *testing.T) {
	a := New(80)
	a.Add(10)
	b := a.Clone()
	b.Add(20)
	if a.Has(20) {
		t.Fatal("Clone shares storage")
	}
	c := New(80)
	c.Copy(b)
	if !c.Has(10) || !c.Has(20) {
		t.Fatal("Copy missed elements")
	}
	c.Remove(10)
	if !b.Has(10) {
		t.Fatal("Copy shares storage")
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	New(10).Or(New(20))
}

// Property: a set built from a random membership slice reproduces it bit
// for bit, and Count matches the number of trues.
func TestQuickMembership(t *testing.T) {
	f := func(members []bool) bool {
		s := New(len(members))
		want := 0
		for i, m := range members {
			if m {
				s.Add(i)
				want++
			}
		}
		if s.Count() != want {
			return false
		}
		for i, m := range members {
			if s.Has(i) != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |a| = |a∩b| + |a\b|.
func TestQuickCountSplit(t *testing.T) {
	src := rng.New(99)
	f := func() bool {
		n := 1 + src.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if src.Bool(0.4) {
				a.Add(i)
			}
			if src.Bool(0.4) {
				b.Add(i)
			}
		}
		return a.Count() == a.CountAnd(b)+a.CountAndNot(b)
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountAndNot(b *testing.B) {
	src := rng.New(1)
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i++ {
		if src.Bool(0.5) {
			x.Add(i)
		}
		if src.Bool(0.5) {
			y.Add(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.CountAndNot(y)
	}
}
