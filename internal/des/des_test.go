package des

import (
	"testing"
	"testing/quick"

	"mobicol/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.At(tm, func(now float64) { order = append(order, now) })
	}
	end, drained := s.Run(0)
	if !drained || end != 5 {
		t.Fatalf("end=%v drained=%v", end, drained)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events out of order: %v", order)
		}
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func(float64) { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var hits []float64
	s.At(1, func(now float64) {
		hits = append(hits, now)
		s.After(2, func(now float64) { hits = append(hits, now) })
	})
	end, _ := s.Run(0)
	if end != 3 || len(hits) != 2 || hits[1] != 3 {
		t.Fatalf("nested scheduling: end=%v hits=%v", end, hits)
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	s := New()
	src := rng.New(3)
	prev := -1.0
	bad := false
	var spawn func(now float64)
	count := 0
	spawn = func(now float64) {
		if now < prev {
			bad = true
		}
		prev = now
		count++
		if count < 500 {
			s.After(src.Uniform(0, 10), spawn)
		}
	}
	s.After(0, spawn)
	s.Run(0)
	if bad {
		t.Fatal("clock went backwards")
	}
	if count != 500 {
		t.Fatalf("ran %d events", count)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	s := New()
	s.At(5, func(float64) {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("past scheduling did not panic")
		}
	}()
	s.At(1, func(float64) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func(float64) {})
}

func TestMaxEventsCap(t *testing.T) {
	s := New()
	var ping func(now float64)
	ping = func(float64) { s.After(1, ping) } // would run forever
	s.After(0, ping)
	_, drained := s.Run(100)
	if drained {
		t.Fatal("infinite chain reported drained")
	}
	if s.Steps() != 100 {
		t.Fatalf("Steps = %d", s.Steps())
	}
}

func TestPending(t *testing.T) {
	s := New()
	s.At(1, func(float64) {})
	s.At(2, func(float64) {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run(0)
	if s.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}

// Property: N events at random times all fire, in non-decreasing order.
func TestQuickAllEventsFire(t *testing.T) {
	src := rng.New(9)
	f := func() bool {
		s := New()
		n := 1 + src.Intn(200)
		fired := 0
		last := -1.0
		ok := true
		for i := 0; i < n; i++ {
			s.At(src.Uniform(0, 100), func(now float64) {
				fired++
				if now < last {
					ok = false
				}
				last = now
			})
		}
		s.Run(0)
		return ok && fired == n
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
