// Package des is a minimal discrete-event simulation kernel: a time-ordered
// event queue with deterministic tie-breaking. The fine-grained latency
// experiments use it to simulate data gathering at packet granularity —
// collector motion, per-packet uploads, and store-and-forward relaying
// with queueing at the relays (which the closed-form hop-count model
// ignores).
package des

import "container/heap"

// Event is a scheduled callback.
type Event struct {
	Time float64
	// Fn runs when the event fires. It may schedule further events.
	Fn func(now float64)

	seq int // insertion order breaks time ties deterministically
}

// Simulator owns the event queue and the clock.
type Simulator struct {
	now    float64
	queue  eventQueue
	nextID int
	steps  int
}

// New returns a simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() int { return s.steps }

// At schedules fn at absolute time t (>= Now, or it panics: the past is
// immutable).
func (s *Simulator) At(t float64, fn func(now float64)) {
	if t < s.now {
		//mdglint:ignore nopanic documented contract: the event calendar is append-only in time; violating it is a simulation bug
		panic("des: scheduling into the past")
	}
	s.nextID++
	heap.Push(&s.queue, &Event{Time: t, Fn: fn, seq: s.nextID})
}

// After schedules fn delay seconds from now (delay >= 0).
func (s *Simulator) After(delay float64, fn func(now float64)) {
	if delay < 0 {
		//mdglint:ignore nopanic documented contract: delays are non-negative by construction in every caller
		panic("des: negative delay")
	}
	s.At(s.now+delay, fn)
}

// Run executes events until the queue empties or maxEvents fire
// (0 = unlimited). It returns the final clock value and whether the queue
// drained completely.
func (s *Simulator) Run(maxEvents int) (end float64, drained bool) {
	for s.queue.Len() > 0 {
		if maxEvents > 0 && s.steps >= maxEvents {
			return s.now, false
		}
		ev := heap.Pop(&s.queue).(*Event)
		s.now = ev.Time
		s.steps++
		ev.Fn(s.now)
	}
	return s.now, true
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// eventQueue is a min-heap on (Time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	//mdglint:ignore floateq exact tie-break contract: equal timestamps fall through to FIFO seq order
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
