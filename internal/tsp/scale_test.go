package tsp

import (
	"slices"
	"testing"

	"mobicol/internal/rng"
)

// TestGreedyEdgeSparseValid pins the large-n construction path: above
// greedyEdgeDenseMax, GreedyEdge must still emit a valid Hamiltonian
// cycle and stay competitive with nearest neighbour.
func TestGreedyEdgeSparseValid(t *testing.T) {
	n := greedyEdgeDenseMax + 500
	pts := randPts(rng.New(3), n, 2000)
	tour := GreedyEdge(pts)
	if err := tour.Validate(n); err != nil {
		t.Fatalf("sparse greedy-edge: %v", err)
	}
	nn := NearestNeighbor(pts, 0)
	if tour.Length(pts) > nn.Length(pts)*1.1 {
		t.Fatalf("sparse greedy-edge %.0f much worse than NN %.0f",
			tour.Length(pts), nn.Length(pts))
	}
}

// TestGreedyEdgeSparseMatchesDenseQuality compares the sparse and dense
// constructions on the same mid-size instance (forcing the sparse path
// directly): the k-nearest edge set should land within a few percent.
func TestGreedyEdgeSparseMatchesDenseQuality(t *testing.T) {
	for seed := uint64(9); seed < 12; seed++ {
		pts := randPts(rng.New(seed), 600, 800)
		dense := GreedyEdge(pts)
		sparse := greedyEdgeSparse(pts)
		if err := sparse.Validate(len(pts)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sparse.Length(pts) > dense.Length(pts)*1.08 {
			t.Fatalf("seed %d: sparse %.1f vs dense %.1f", seed,
				sparse.Length(pts), dense.Length(pts))
		}
	}
}

// TestSeededMatchesFullWhenSeededEverywhere pins the seeded local-search
// variants to their full counterparts: seeding with the whole tour in
// tour order is the same initial queue, so the move sequences — and the
// final tours — are identical.
func TestSeededMatchesFullWhenSeededEverywhere(t *testing.T) {
	for seed := uint64(21); seed < 25; seed++ {
		pts := randPts(rng.New(seed), 150, 400)
		neigh := neighborLists(pts, neighborK)
		base := GreedyEdge(pts)

		full := slices.Clone(base)
		seeded := slices.Clone(base)
		var s1, s2 Scratch
		m1 := s1.TwoOpt(pts, full, neigh)
		m2 := s2.TwoOptSeeded(pts, seeded, neigh, []int(seeded))
		if m1 != m2 || !slices.Equal(full, seeded) {
			t.Fatalf("seed %d: TwoOptSeeded(all) diverged from TwoOpt (%d vs %d moves)", seed, m2, m1)
		}
		m1 = s1.OrOpt(pts, full, neigh)
		m2 = s2.OrOptSeeded(pts, seeded, neigh, []int(seeded))
		if m1 != m2 || !slices.Equal(full, seeded) {
			t.Fatalf("seed %d: OrOptSeeded(all) diverged from OrOpt (%d vs %d moves)", seed, m2, m1)
		}
	}
}

// TestSeededEmptyIsNoop: an empty seed set must leave the tour untouched
// — the invariant warm-start repair relies on for the Δ=∅ case.
func TestSeededEmptyIsNoop(t *testing.T) {
	pts := randPts(rng.New(5), 80, 300)
	neigh := neighborLists(pts, neighborK)
	tour := GreedyEdge(pts)
	before := slices.Clone(tour)
	var s Scratch
	if m := s.TwoOptSeeded(pts, tour, neigh, nil2()); m != 0 || !slices.Equal(tour, before) {
		t.Fatalf("TwoOptSeeded(empty) moved: %d", m)
	}
	if m := s.OrOptSeeded(pts, tour, neigh, nil2()); m != 0 || !slices.Equal(tour, before) {
		t.Fatalf("OrOptSeeded(empty) moved: %d", m)
	}
}

// nil2 returns an empty non-nil seed slice: nil means "seed everywhere",
// empty means "seed nothing".
func nil2() []int { return []int{} }

// TestSeededLocalises: seeding a single point must examine (and move)
// only near the seed, leaving a far-away already-locally-optimal region
// alone, and never lengthen the tour.
func TestSeededLocalises(t *testing.T) {
	pts := randPts(rng.New(7), 200, 500)
	neigh := neighborLists(pts, neighborK)
	tour := NearestNeighbor(pts, 0)
	before := tour.Length(pts)
	var s Scratch
	s.TwoOptSeeded(pts, tour, neigh, []int{tour[10], tour[11]})
	if err := tour.Validate(len(pts)); err != nil {
		t.Fatal(err)
	}
	if after := tour.Length(pts); after > before+1e-9 {
		t.Fatalf("seeded 2-opt lengthened the tour: %.3f -> %.3f", before, after)
	}
}

// TestSeededMatchesFullOnDuplicateSeeds: duplicate seeds collapse via the
// don't-look bits, so the result matches the deduplicated seed set.
func TestSeededMatchesFullOnDuplicateSeeds(t *testing.T) {
	pts := randPts(rng.New(8), 100, 300)
	neigh := neighborLists(pts, neighborK)
	a := NearestNeighbor(pts, 0)
	b := slices.Clone(a)
	var s1, s2 Scratch
	m1 := s1.TwoOptSeeded(pts, a, neigh, []int{3, 7})
	m2 := s2.TwoOptSeeded(pts, b, neigh, []int{3, 7, 3, 7, 7})
	if m1 != m2 || !slices.Equal(a, b) {
		t.Fatalf("duplicate seeds diverged: %d vs %d moves", m1, m2)
	}
}
