package tsp

import (
	"fmt"
	"math"
)

// SolveMatrix plans a closed tour over an arbitrary symmetric distance
// matrix — the obstacle-aware planner's entry point, where distances are
// shortest obstacle-avoiding path lengths rather than Euclidean. The
// pipeline mirrors Solve: nearest-neighbour construction from vertex 0,
// then full 2-opt and Or-opt(1..3) local search to convergence. Infinite
// entries mark unreachable pairs; the construction avoids them when any
// finite alternative exists.
func SolveMatrix(d [][]float64) (Tour, error) {
	n := len(d)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("tsp: distance matrix row %d has %d entries, want %d", i, len(d[i]), n)
		}
	}
	if n <= 3 {
		return trivialTour(n), nil
	}
	// Nearest neighbour.
	visited := make([]bool, n)
	tour := make(Tour, 0, n)
	cur := 0
	visited[0] = true
	tour = append(tour, 0)
	for len(tour) < n {
		next, nd := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !visited[v] && d[cur][v] < nd {
				next, nd = v, d[cur][v]
			}
		}
		if next < 0 {
			// Everything remaining is unreachable from cur; append in
			// index order (the caller sees +Inf in the resulting length).
			for v := 0; v < n; v++ {
				if !visited[v] {
					visited[v] = true
					tour = append(tour, v)
				}
			}
			break
		}
		visited[next] = true
		tour = append(tour, next)
		cur = next
	}
	twoOptMatrix(d, tour)
	orOptMatrix(d, tour)
	twoOptMatrix(d, tour)
	return tour, nil
}

// MatrixLength returns the closed tour length under the matrix metric.
func MatrixLength(d [][]float64, tour Tour) float64 {
	if len(tour) < 2 {
		return 0
	}
	total := 0.0
	for i := range tour {
		total += d[tour[i]][tour[(i+1)%len(tour)]]
	}
	return total
}

// twoOptMatrix is a full-scan 2-opt over the matrix metric.
func twoOptMatrix(d [][]float64, tour Tour) {
	n := len(tour)
	improved := true
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 2; j < n; j++ {
				if i == 0 && j == n-1 {
					continue // same edge pair
				}
				a, b := tour[i], tour[i+1]
				c, e := tour[j], tour[(j+1)%n]
				if d[a][b]+d[c][e] > d[a][c]+d[b][e]+1e-12 {
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						tour[lo], tour[hi] = tour[hi], tour[lo]
					}
					improved = true
				}
			}
		}
	}
}

// orOptMatrix relocates chains of 1–3 stops under the matrix metric.
func orOptMatrix(d [][]float64, tour Tour) {
	n := len(tour)
	if n < 5 {
		return
	}
	buf := make(Tour, 0, n)
	improved := true
	for improved {
		improved = false
	scan:
		for segLen := 1; segLen <= 3; segLen++ {
			if segLen >= n-2 {
				continue
			}
			for i := 0; i < n; i++ {
				p0 := tour[(i-1+n)%n]
				s0 := tour[i]
				s1 := tour[(i+segLen-1)%n]
				p1 := tour[(i+segLen)%n]
				removed := d[p0][s0] + d[s1][p1] - d[p0][p1]
				if removed <= 1e-12 {
					continue
				}
				for j := 0; j < n; j++ {
					if within(i, segLen, j, n) || (j+1)%n == i {
						continue
					}
					a, b := tour[j], tour[(j+1)%n]
					forward := d[a][s0] + d[s1][b] - d[a][b]
					backward := d[a][s1] + d[s0][b] - d[a][b]
					rev := backward < forward
					added := forward
					if rev {
						added = backward
					}
					if added < removed-1e-12 {
						relocate(tour, i, segLen, j, rev, buf)
						improved = true
						break scan
					}
				}
			}
		}
	}
}
