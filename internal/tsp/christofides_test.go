package tsp

import (
	"testing"

	"mobicol/internal/rng"
)

func TestChristofidesValidTours(t *testing.T) {
	s := rng.New(90)
	for _, n := range []int{1, 2, 3, 4, 5, 10, 50, 150} {
		pts := randPts(s, n, 200)
		tour := Christofides(pts)
		if err := tour.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestChristofidesAboveMSTBound(t *testing.T) {
	s := rng.New(91)
	for trial := 0; trial < 15; trial++ {
		pts := randPts(s, 10+s.Intn(80), 200)
		tour := Christofides(pts)
		if got, lb := tour.Length(pts), MSTLowerBound(pts); got < lb-1e-9 {
			t.Fatalf("tour %v below MST bound %v: impossible", got, lb)
		}
	}
}

func TestChristofidesNearOptimalSmall(t *testing.T) {
	s := rng.New(92)
	for trial := 0; trial < 8; trial++ {
		pts := randPts(s, 8+s.Intn(5), 100)
		tour := Christofides(pts)
		opt, err := HeldKarp(pts)
		if err != nil {
			t.Fatal(err)
		}
		if tour.Length(pts) > 1.6*opt.Length(pts) {
			t.Fatalf("christofides %v vs optimum %v: worse than 1.6x", tour.Length(pts), opt.Length(pts))
		}
	}
}

func TestChristofidesUsuallyBeatsDoubleTree(t *testing.T) {
	s := rng.New(93)
	wins, total := 0, 20
	for trial := 0; trial < total; trial++ {
		pts := randPts(s, 60, 200)
		c := Christofides(pts).Length(pts)
		d := DoubleTree(pts).Length(pts)
		if c <= d+1e-9 {
			wins++
		}
	}
	if wins < total*3/5 {
		t.Fatalf("christofides beat/matched double-tree in only %d of %d fields", wins, total)
	}
}

func TestChristofidesDuplicatesAndCollinear(t *testing.T) {
	pts := randPts(rng.New(94), 10, 50)
	pts[3] = pts[7] // duplicate
	tour := Christofides(pts)
	if err := tour.Validate(len(pts)); err != nil {
		t.Fatal(err)
	}
	line := randPts(rng.New(95), 0, 0)
	for i := 0; i < 8; i++ {
		line = append(line, pts[0].Add(pts[1].Sub(pts[0]).Scale(float64(i))))
	}
	tour = Christofides(line)
	if err := tour.Validate(len(line)); err != nil {
		t.Fatal(err)
	}
}
