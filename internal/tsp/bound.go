package tsp

import (
	"math"

	"mobicol/internal/geom"
	"mobicol/internal/graph"
)

// MSTLowerBound returns the weight of the minimum spanning tree over pts,
// a classic lower bound on the optimal closed tour: deleting any tour edge
// yields a spanning tree, so OPT >= MST.
func MSTLowerBound(pts []geom.Point) geom.Meters {
	if len(pts) < 2 {
		return 0
	}
	_, w := graph.CompleteEuclideanMST(len(pts), func(i, j int) float64 { return pts[i].Dist(pts[j]) })
	return geom.Meters(w)
}

// OneTreeLowerBound returns the best 1-tree bound over all choices of the
// special vertex: MST over the other n-1 points plus that vertex's two
// cheapest edges. The 1-tree bound dominates the plain MST bound and is
// what the experiment tables report as "LB".
func OneTreeLowerBound(pts []geom.Point) geom.Meters {
	n := len(pts)
	if n < 3 {
		return MSTLowerBound(pts)
	}
	best := 0.0
	rest := make([]geom.Point, 0, n-1)
	for special := 0; special < n; special++ {
		rest = rest[:0]
		for i, p := range pts {
			if i != special {
				rest = append(rest, p)
			}
		}
		_, mst := graph.CompleteEuclideanMST(len(rest), func(i, j int) float64 { return rest[i].Dist(rest[j]) })
		// Two cheapest edges from the special vertex.
		e1, e2 := math.Inf(1), math.Inf(1)
		for i, p := range pts {
			if i == special {
				continue
			}
			d := pts[special].Dist(p)
			if d < e1 {
				e1, e2 = d, e1
			} else if d < e2 {
				e2 = d
			}
		}
		if b := mst + e1 + e2; b > best {
			best = b
		}
	}
	return geom.Meters(best)
}
