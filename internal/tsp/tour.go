// Package tsp implements the travelling-salesman engine used to turn a set
// of polling points into a short closed data-gathering tour. It offers
// five construction heuristics, 2-opt and Or-opt local search, exact
// solvers for small instances (Held–Karp dynamic programming and an
// MST-bounded branch & bound), and spanning-tree / one-tree lower bounds.
//
// All tours are closed (the collector returns to the sink). A tour is a
// permutation of point indices; its length includes the final edge back to
// the first point.
package tsp

import (
	"fmt"

	"mobicol/internal/geom"
)

// Tour is an ordering of the points [0, n). The tour is closed: after the
// last index the collector returns to the first.
type Tour []int

// Length returns the closed tour length over pts.
func (t Tour) Length(pts []geom.Point) geom.Meters {
	if len(t) < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < len(t); i++ {
		j := (i + 1) % len(t)
		total += pts[t[i]].Dist(pts[t[j]])
	}
	return geom.Meters(total)
}

// Points materialises the tour as the visited point sequence.
func (t Tour) Points(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(t))
	for i, idx := range t {
		out[i] = pts[idx]
	}
	return out
}

// Validate checks that t is a permutation of [0, n).
func (t Tour) Validate(n int) error {
	if len(t) != n {
		return fmt.Errorf("tsp: tour has %d stops, want %d", len(t), n)
	}
	seen := make([]bool, n)
	for _, v := range t {
		if v < 0 || v >= n {
			return fmt.Errorf("tsp: tour index %d out of range [0,%d)", v, n)
		}
		if seen[v] {
			return fmt.Errorf("tsp: tour visits %d twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Clone returns an independent copy of t.
func (t Tour) Clone() Tour { return append(Tour(nil), t...) }

// RotateTo rotates the tour in place so that it begins at the stop with
// index start. Closed-tour length is rotation invariant; the collector
// conventionally departs from the sink, so planners rotate the sink first.
// The rotation is the classic three-reversal, so no buffer is needed.
func (t Tour) RotateTo(start int) {
	pos := -1
	for i, v := range t {
		if v == start {
			pos = i
			break
		}
	}
	if pos <= 0 {
		return
	}
	reverseTour(t[:pos])
	reverseTour(t[pos:])
	reverseTour(t)
}

func reverseTour(t Tour) {
	for i, j := 0, len(t)-1; i < j; i, j = i+1, j-1 {
		t[i], t[j] = t[j], t[i]
	}
}

// trivialTour returns the identity ordering for n points, handling the
// degenerate sizes every solver must accept.
func trivialTour(n int) Tour {
	t := make(Tour, n)
	for i := range t {
		t[i] = i
	}
	return t
}
