package tsp

import (
	"math"
	"testing"
	"testing/quick"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
)

func randPts(s *rng.Source, n int, l float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(s.Uniform(0, l), s.Uniform(0, l))
	}
	return pts
}

// square4 is a unit square whose optimal tour has length 4.
var square4 = []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}

func TestTourLengthAndValidate(t *testing.T) {
	tour := Tour{0, 1, 2, 3}
	if got := tour.Length(square4); math.Abs(float64(got)-4) > 1e-12 {
		t.Fatalf("Length = %v", got)
	}
	if err := tour.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := (Tour{0, 1, 1, 3}).Validate(4); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := (Tour{0, 1, 2}).Validate(4); err == nil {
		t.Fatal("short tour accepted")
	}
	if err := (Tour{0, 1, 2, 4}).Validate(4); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestTourDegenerateLengths(t *testing.T) {
	if (Tour{}).Length(nil) != 0 || (Tour{0}).Length(square4) != 0 {
		t.Fatal("degenerate tour lengths should be 0")
	}
	two := Tour{0, 1}
	if got := two.Length(square4); math.Abs(float64(got)-2) > 1e-12 {
		t.Fatalf("two-point tour length = %v (out and back)", got)
	}
}

func TestRotateTo(t *testing.T) {
	tour := Tour{2, 0, 3, 1}
	before := float64(tour.Length(square4))
	tour.RotateTo(3)
	if tour[0] != 3 {
		t.Fatalf("RotateTo: %v", tour)
	}
	if err := tour.Validate(4); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(tour.Length(square4))-before) > 1e-12 {
		t.Fatal("rotation changed length")
	}
	tour.RotateTo(99) // absent: no-op
	if tour[0] != 3 {
		t.Fatal("RotateTo absent index mutated tour")
	}
}

type namedConstruction struct {
	name  string
	build func([]geom.Point) Tour
}

// constructions returns the heuristics in a fixed order so tests iterate
// deterministically (map order would randomize failure reporting).
func constructions() []namedConstruction {
	return []namedConstruction{
		{"nn", func(p []geom.Point) Tour { return NearestNeighbor(p, 0) }},
		{"greedy", GreedyEdge},
		{"cheapest", CheapestInsertion},
		{"hull", HullInsertion},
		{"dtree", DoubleTree},
	}
}

func TestConstructionsProduceValidTours(t *testing.T) {
	s := rng.New(50)
	for _, c := range constructions() {
		name, build := c.name, c.build
		for _, n := range []int{1, 2, 3, 4, 5, 10, 40, 120} {
			pts := randPts(s, n, 100)
			tour := build(pts)
			if err := tour.Validate(n); err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
		}
	}
}

func TestConstructionsOnSquare(t *testing.T) {
	for _, c := range constructions() {
		name, build := c.name, c.build
		tour := build(square4)
		if got := tour.Length(square4); math.Abs(float64(got)-4) > 1e-9 {
			t.Fatalf("%s on unit square: length %v, want 4", name, got)
		}
	}
}

func TestDoubleTreeWithinTwiceMST(t *testing.T) {
	s := rng.New(51)
	for trial := 0; trial < 20; trial++ {
		pts := randPts(s, 5+s.Intn(80), 200)
		tour := DoubleTree(pts)
		mst := MSTLowerBound(pts)
		if got := tour.Length(pts); got > 2*mst+1e-9 {
			t.Fatalf("double-tree %v exceeds 2*MST %v", got, 2*mst)
		}
	}
}

func TestTwoOptNeverIncreasesLength(t *testing.T) {
	s := rng.New(52)
	for trial := 0; trial < 30; trial++ {
		pts := randPts(s, 4+s.Intn(100), 150)
		tour := NearestNeighbor(pts, 0)
		before := tour.Length(pts)
		TwoOpt(pts, tour)
		after := tour.Length(pts)
		if after > before+1e-9 {
			t.Fatalf("2-opt increased length %v -> %v", before, after)
		}
		if err := tour.Validate(len(pts)); err != nil {
			t.Fatalf("2-opt broke tour: %v", err)
		}
	}
}

func TestOrOptNeverIncreasesLength(t *testing.T) {
	s := rng.New(53)
	for trial := 0; trial < 30; trial++ {
		pts := randPts(s, 5+s.Intn(60), 150)
		tour := NearestNeighbor(pts, 0)
		before := tour.Length(pts)
		OrOpt(pts, tour)
		after := tour.Length(pts)
		if after > before+1e-9 {
			t.Fatalf("Or-opt increased length %v -> %v", before, after)
		}
		if err := tour.Validate(len(pts)); err != nil {
			t.Fatalf("Or-opt broke tour: %v", err)
		}
	}
}

func TestTwoOptUncrossesSquare(t *testing.T) {
	// The crossing tour 0,2,1,3 on the unit square has length 2+2*sqrt2;
	// 2-opt must uncross it to length 4.
	pts := square4
	tour := Tour{0, 2, 1, 3}
	TwoOpt(pts, tour)
	if got := tour.Length(pts); math.Abs(float64(got)-4) > 1e-9 {
		t.Fatalf("2-opt left length %v, want 4", got)
	}
}

func TestHeldKarpKnownOptimum(t *testing.T) {
	tour, err := HeldKarp(square4)
	if err != nil {
		t.Fatal(err)
	}
	if got := tour.Length(square4); math.Abs(float64(got)-4) > 1e-9 {
		t.Fatalf("HeldKarp square length %v", got)
	}
	if err := tour.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestHeldKarpRejectsLarge(t *testing.T) {
	if _, err := HeldKarp(make([]geom.Point, HeldKarpMax+1)); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestHeldKarpMatchesBruteForce(t *testing.T) {
	s := rng.New(54)
	for trial := 0; trial < 10; trial++ {
		n := 4 + s.Intn(5) // 4..8
		pts := randPts(s, n, 100)
		hk, err := HeldKarp(pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := hk.Validate(n); err != nil {
			t.Fatal(err)
		}
		want := bruteForceOpt(pts)
		if got := hk.Length(pts); math.Abs(float64(got)-want) > 1e-6 {
			t.Fatalf("HeldKarp %v != brute force %v (n=%d)", got, want, n)
		}
	}
}

// bruteForceOpt enumerates all permutations fixing point 0 first.
func bruteForceOpt(pts []geom.Point) float64 {
	n := len(pts)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if l := float64(Tour(perm).Length(pts)); l < best {
				best = l
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(1)
	return best
}

func TestBranchBoundMatchesHeldKarp(t *testing.T) {
	s := rng.New(55)
	for trial := 0; trial < 8; trial++ {
		n := 5 + s.Intn(8) // 5..12
		pts := randPts(s, n, 100)
		hk, err := HeldKarp(pts)
		if err != nil {
			t.Fatal(err)
		}
		bb, exact := BranchBound(pts, 0)
		if !exact {
			t.Fatal("uncapped branch & bound reported inexact")
		}
		if math.Abs(float64(bb.Length(pts)-hk.Length(pts))) > 1e-6 {
			t.Fatalf("B&B %v != HeldKarp %v", bb.Length(pts), hk.Length(pts))
		}
	}
}

func TestBranchBoundNodeCap(t *testing.T) {
	pts := randPts(rng.New(56), 25, 100)
	tour, exact := BranchBound(pts, 10)
	if exact {
		t.Fatal("capped search on 25 points claimed exactness")
	}
	if err := tour.Validate(25); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundsBelowOptimum(t *testing.T) {
	s := rng.New(57)
	for trial := 0; trial < 10; trial++ {
		n := 5 + s.Intn(6)
		pts := randPts(s, n, 100)
		opt, err := HeldKarp(pts)
		if err != nil {
			t.Fatal(err)
		}
		optLen := opt.Length(pts)
		mst := MSTLowerBound(pts)
		oneTree := OneTreeLowerBound(pts)
		if mst > optLen+1e-9 {
			t.Fatalf("MST bound %v exceeds optimum %v", mst, optLen)
		}
		if oneTree > optLen+1e-9 {
			t.Fatalf("1-tree bound %v exceeds optimum %v", oneTree, optLen)
		}
		if oneTree < mst-1e-9 {
			t.Fatalf("1-tree bound %v below MST bound %v", oneTree, mst)
		}
	}
}

func TestSolveDefaultNearOptimalSmall(t *testing.T) {
	s := rng.New(58)
	for trial := 0; trial < 10; trial++ {
		n := 6 + s.Intn(6)
		pts := randPts(s, n, 100)
		got := Solve(pts, DefaultOptions()).Length(pts)
		opt, _ := HeldKarp(pts)
		if got > opt.Length(pts)+1e-6 {
			t.Fatalf("Solve with ExactBelow missed optimum: %v vs %v", got, opt.Length(pts))
		}
	}
}

func TestSolveQualityOrdering(t *testing.T) {
	// With local search the tour should beat raw nearest neighbour and
	// stay above the 1-tree lower bound.
	s := rng.New(59)
	pts := randPts(s, 80, 200)
	nn := NearestNeighbor(pts, 0).Length(pts)
	solved := Solve(pts, DefaultOptions()).Length(pts)
	lb := OneTreeLowerBound(pts)
	if solved > nn+1e-9 {
		t.Fatalf("Solve (%v) worse than raw NN (%v)", solved, nn)
	}
	if solved < lb-1e-9 {
		t.Fatalf("Solve (%v) below lower bound (%v): impossible", solved, lb)
	}
	if solved > 1.3*lb {
		t.Fatalf("Solve (%v) more than 30%% above lower bound (%v): local search broken?", solved, lb)
	}
}

func TestSolveAllConstructions(t *testing.T) {
	pts := randPts(rng.New(60), 50, 150)
	for _, c := range []Construction{ConstructNN, ConstructGreedy, ConstructCheapest, ConstructHull, ConstructDoubleTree} {
		tour := Solve(pts, Options{Construction: c, TwoOpt: true, OrOpt: true})
		if err := tour.Validate(len(pts)); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
	}
}

// Property: 2-opt + Or-opt preserve the permutation property and never
// lengthen the tour, from any construction, on any instance size.
func TestQuickLocalSearchInvariants(t *testing.T) {
	s := rng.New(61)
	f := func() bool {
		n := 4 + s.Intn(50)
		pts := randPts(s, n, 120)
		tour := GreedyEdge(pts)
		before := tour.Length(pts)
		TwoOpt(pts, tour)
		OrOpt(pts, tour)
		if tour.Validate(n) != nil {
			return false
		}
		return tour.Length(pts) <= before+1e-9
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCollinearPoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0)}
	for _, c := range constructions() {
		name, build := c.name, c.build
		tour := build(pts)
		if err := tour.Validate(5); err != nil {
			t.Fatalf("%s collinear: %v", name, err)
		}
		// Optimal is out-and-back: length 8.
		TwoOpt(pts, tour)
		if got := tour.Length(pts); got < 8-1e-9 {
			t.Fatalf("%s collinear length %v below the possible minimum 8", name, got)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(5, 5), geom.Pt(1, 1), geom.Pt(9, 2)}
	for _, c := range constructions() {
		name, build := c.name, c.build
		tour := build(pts)
		if err := tour.Validate(5); err != nil {
			t.Fatalf("%s duplicates: %v", name, err)
		}
	}
}

func BenchmarkSolve200(b *testing.B) {
	pts := randPts(rng.New(1), 200, 300)
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(pts, opts)
	}
}

func BenchmarkTwoOpt500(b *testing.B) {
	pts := randPts(rng.New(2), 500, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tour := NearestNeighbor(pts, 0)
		b.StartTimer()
		TwoOpt(pts, tour)
	}
}

func BenchmarkHeldKarp12(b *testing.B) {
	pts := randPts(rng.New(3), 12, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HeldKarp(pts); err != nil {
			b.Fatal(err)
		}
	}
}
