package tsp

import (
	"mobicol/internal/geom"
	"mobicol/internal/par"
	"mobicol/internal/rng"
)

// SolveBest runs a multi-start search: the configured construction plus
// restarts-1 nearest-neighbour tours from random starting points, each
// polished by the configured local search, keeping the shortest. Restarts
// buy tour quality linearly in time; the planners use a single start by
// default and the harness exposes this as a quality knob.
func SolveBest(pts []geom.Point, opts Options, restarts int, seed uint64) Tour {
	return SolveBestPool(pts, opts, restarts, seed, par.Seq())
}

// SolveBestPool is SolveBest with the restarts spread across a worker
// pool. Each restart draws from its own rng substream (split from seed
// before any worker starts) and polishes against a shared read-only
// neighbour list, and the winner is picked by an ordered reduction with
// strict improvement — so the returned tour is byte-identical for every
// pool size.
func SolveBestPool(pts []geom.Point, opts Options, restarts int, seed uint64, pool par.Pool) Tour {
	best := Solve(pts, opts)
	if restarts <= 1 || len(pts) < 5 {
		return best
	}
	bestLen := best.Length(pts)
	streams := par.Streams(seed, restarts-1)
	neigh := neighborLists(pts, neighborK)
	tours := par.Map(pool, restarts-1, func(r int) Tour {
		t := NearestNeighbor(pts, streams[r].Intn(len(pts)))
		if opts.TwoOpt {
			TwoOptNeighbors(pts, t, neigh)
		}
		if opts.OrOpt {
			OrOptNeighbors(pts, t, neigh)
			if opts.TwoOpt {
				TwoOptNeighbors(pts, t, neigh)
			}
		}
		return t
	})
	// Strict improvement in restart order: the lowest restart index wins
	// ties, exactly as the sequential loop folded.
	for _, t := range tours {
		if l := t.Length(pts); l < bestLen {
			best, bestLen = t, l
		}
	}
	return best
}

// Perturb applies a random double-bridge move (the classic 4-opt kick used
// by iterated local search): the tour is cut into four arcs A B C D and
// reconnected as A C B D. Unlike 2-opt moves, a double bridge cannot be
// undone by 2-opt, so it escapes local optima while preserving most of the
// tour's structure.
func Perturb(tour Tour, src *rng.Source) {
	n := len(tour)
	if n < 8 {
		return
	}
	// Three distinct interior cut points in increasing order.
	p1 := 1 + src.Intn(n-3)
	p2 := p1 + 1 + src.Intn(n-p1-2)
	p3 := p2 + 1 + src.Intn(n-p2-1)
	out := make(Tour, 0, n)
	out = append(out, tour[:p1]...)
	out = append(out, tour[p2:p3]...)
	out = append(out, tour[p1:p2]...)
	out = append(out, tour[p3:]...)
	copy(tour, out)
}

// SolveILS runs iterated local search: start from Solve, then repeatedly
// double-bridge-kick the incumbent and re-optimise, accepting
// improvements. kicks bounds the iterations.
func SolveILS(pts []geom.Point, opts Options, kicks int, seed uint64) Tour {
	best := Solve(pts, opts)
	if kicks <= 0 || len(pts) < 8 {
		return best
	}
	bestLen := best.Length(pts)
	src := rng.New(seed)
	neigh := neighborLists(pts, neighborK)
	cur := best.Clone()
	for k := 0; k < kicks; k++ {
		Perturb(cur, src)
		if opts.TwoOpt {
			TwoOptNeighbors(pts, cur, neigh)
		}
		if opts.OrOpt {
			OrOptNeighbors(pts, cur, neigh)
		}
		if l := cur.Length(pts); l < bestLen {
			best, bestLen = cur.Clone(), l
		} else {
			copy(cur, best) // restart the kick from the incumbent
		}
	}
	return best
}
