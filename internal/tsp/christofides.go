package tsp

import (
	"math"
	"sort"

	"mobicol/internal/geom"
	"mobicol/internal/graph"
)

// Christofides builds a tour in the Christofides style: minimum spanning
// tree, a perfect matching on the MST's odd-degree vertices, an Euler
// circuit of the combined multigraph, and shortcutting of repeats.
//
// The matching is greedy (closest unmatched pairs first) rather than
// minimum-weight, so the classic 1.5-approximation guarantee does not
// carry over — but the 2-approximation of the double-tree bound still
// holds empirically and the construction is typically several percent
// shorter than DoubleTree because the Euler walk wastes no doubled edges.
func Christofides(pts []geom.Point) Tour {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n)
	}
	parent, _ := graph.CompleteEuclideanMST(n, func(i, j int) float64 { return pts[i].Dist(pts[j]) })
	var edges []graph.Edge
	deg := make([]int, n)
	for v, p := range parent {
		if p >= 0 {
			edges = append(edges, graph.Edge{U: p, V: v, W: pts[p].Dist(pts[v])})
			deg[p]++
			deg[v]++
		}
	}
	// Odd-degree vertices (always an even count).
	var odd []int
	for v, d := range deg {
		if d%2 == 1 {
			odd = append(odd, v)
		}
	}
	// Greedy perfect matching on the odd set: closest pairs first.
	type pair struct {
		u, v int
		d    float64
	}
	pairs := make([]pair, 0, len(odd)*(len(odd)-1)/2)
	for i := 0; i < len(odd); i++ {
		for j := i + 1; j < len(odd); j++ {
			pairs = append(pairs, pair{odd[i], odd[j], pts[odd[i]].Dist2(pts[odd[j]])})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })
	matched := make([]bool, n)
	for _, p := range pairs {
		if !matched[p.u] && !matched[p.v] {
			matched[p.u] = true
			matched[p.v] = true
			edges = append(edges, graph.Edge{U: p.u, V: p.v, W: math.Sqrt(p.d)})
		}
	}
	walk, err := graph.EulerCircuit(n, edges, 0)
	if err != nil {
		// Cannot happen: MST+matching has all-even degrees and is
		// connected; fall back defensively.
		return DoubleTree(pts)
	}
	// Shortcut repeated vertices.
	seen := make([]bool, n)
	tour := make(Tour, 0, n)
	for _, v := range walk {
		if !seen[v] {
			seen[v] = true
			tour = append(tour, v)
		}
	}
	return tour
}
