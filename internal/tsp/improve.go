package tsp

import (
	"math"
	"sort"

	"mobicol/internal/geom"
)

// neighborK is the candidate-list width shared by the local searches.
// 10–16 captures almost all improving 2-opt/Or-opt moves on Euclidean
// instances; 12 matches the classic Lin–Kernighan setting.
const neighborK = 12

// neighborLists returns, for every point, the indices of its k nearest
// other points, sorted by ascending distance (ties toward the lower
// index, so the lists are independent of construction path). Local search
// restricted to near neighbours finds almost all the improving moves of
// the full quadratic scan at a fraction of the cost.
//
// The lists are built from an occupancy-auto-sized geom.GridIndex disk
// query with radius doubling — expected O(k) work per point at any n —
// with candidate distances computed through the flat-slice batch kernels,
// and fall back to a full sort only for degenerate geometry (all points
// coincident) where a grid cannot be built. The result is the exact
// k-nearest set however the grid is sized, so the auto sizing never
// changes a tour.
func neighborLists(pts []geom.Point, k int) [][]int {
	n := len(pts)
	if k >= n {
		k = n - 1
	}
	lists := make([][]int, n)
	if k <= 0 {
		return lists
	}
	b := geom.Bound(pts)
	w, h := b.Max.X-b.Min.X, b.Max.Y-b.Min.Y
	span := max(w, h)
	if !(span > 0) {
		// Coincident points: no usable grid cell. Quadratic fallback.
		for i := range lists {
			lists[i] = sortedNeighbors(pts, i, k)
		}
		return lists
	}
	idx := geom.NewGridIndexAuto(pts, 1)
	cell := idx.CellSize()
	diag := math.Hypot(w, h)
	xs, ys := geom.SplitXY(pts, nil, nil)
	buf := make([]int, 0, 4*k)
	cand := make([]int32, 0, 4*k)
	keys := make([]float64, 0, 4*k)
	for i := range pts {
		r := cell
		others := 0
		for {
			buf = idx.Within(pts[i], r, buf[:0])
			others = len(buf)
			for _, j := range buf {
				if j == i {
					others--
				}
			}
			if others >= k || r > diag {
				break
			}
			r *= 2
		}
		if others < k {
			// Unreachable once r exceeds the bounding-box diagonal (every
			// point is within diag of every other), but keep the exact path
			// as a safety net.
			lists[i] = sortedNeighbors(pts, i, k)
			continue
		}
		cand = cand[:0]
		for _, j := range buf {
			if j != i {
				cand = append(cand, int32(j))
			}
		}
		if cap(keys) < len(cand) {
			keys = make([]float64, len(cand))
		}
		keys = keys[:len(cand)]
		geom.Dist2Gather(xs, ys, cand, pts[i], keys)
		sort.Sort(&distSorter{idx: cand, key: keys})
		list := make([]int, k)
		for j := range list {
			list[j] = int(cand[j])
		}
		lists[i] = list
	}
	return lists
}

// distSorter orders candidate indices by ascending precomputed squared
// distance, ties toward the lower index — the same total order
// sortByDist's comparator produces, without recomputing distances per
// comparison.
type distSorter struct {
	idx []int32
	key []float64
}

func (d *distSorter) Len() int { return len(d.idx) }
func (d *distSorter) Less(a, b int) bool {
	//mdglint:ignore floateq sort comparator needs exact ordering; an epsilon would break strict weak ordering
	if d.key[a] != d.key[b] {
		return d.key[a] < d.key[b]
	}
	return d.idx[a] < d.idx[b]
}
func (d *distSorter) Swap(a, b int) {
	d.idx[a], d.idx[b] = d.idx[b], d.idx[a]
	d.key[a], d.key[b] = d.key[b], d.key[a]
}

// sortedNeighbors is the exact quadratic construction of one point's
// k-nearest list; neighborLists uses it only for degenerate geometry.
func sortedNeighbors(pts []geom.Point, i, k int) []int {
	cand := make([]int, 0, len(pts)-1)
	for j := range pts {
		if j != i {
			cand = append(cand, j)
		}
	}
	sortByDist(pts, i, cand)
	return cand[:k:k]
}

// sortByDist orders cand by ascending squared distance to pts[i], ties
// toward the lower index so the order is total and path-independent.
func sortByDist(pts []geom.Point, i int, cand []int) {
	sort.Slice(cand, func(a, b int) bool {
		da, db := pts[cand[a]].Dist2(pts[i]), pts[cand[b]].Dist2(pts[i])
		if da < db {
			return true
		}
		if db < da {
			return false
		}
		return cand[a] < cand[b]
	})
}

// Scratch holds the reusable working state of the local-search passes.
// The zero value is ready to use; buffers grow to the largest instance
// seen and are retained, so repeated passes touch the allocator only on
// first use. Solve threads one Scratch through all of its improvement
// passes, and callers running many solves (the planners' refinement
// loops, the benchmark harness) can hold their own across calls. A
// Scratch must not be shared between concurrent passes.
type Scratch struct {
	pos      []int  // point -> position in tour
	dontLook []bool // don't-look bits
	queue    []int  // work queue of points to (re-)examine
	reloc    Tour   // relocation splice buffer
}

// ensure sizes the buffers for an n-stop tour and resets per-pass state.
//
//mdglint:allow-alloc(scratch growth is amortized; steady state reuses the retained buffers)
func (s *Scratch) ensure(n int) {
	if cap(s.pos) < n {
		s.pos = make([]int, n)
		s.dontLook = make([]bool, n)
		s.reloc = make(Tour, 0, n)
	}
	if cap(s.queue) < n {
		s.queue = make([]int, 0, n)
	}
	s.pos = s.pos[:n]
	s.dontLook = s.dontLook[:n]
	for i := range s.dontLook {
		s.dontLook[i] = false
	}
	s.queue = s.queue[:0]
}

// TwoOpt improves tour in place with 2-opt moves (reverse a segment when
// doing so shortens the tour), restricted to candidate edges between near
// neighbours and accelerated with don't-look bits. It returns the number
// of improving moves applied.
func TwoOpt(pts []geom.Point, tour Tour) int {
	if len(tour) < 4 {
		return 0
	}
	return TwoOptNeighbors(pts, tour, neighborLists(pts, neighborK))
}

// NeighborLists builds the k-nearest candidate lists the improvement
// passes take (the solver uses k = 12). The lists depend only on the
// point set, so callers holding a Scratch across passes build them once
// and share them between TwoOpt and OrOpt.
func NeighborLists(pts []geom.Point, k int) [][]int {
	return neighborLists(pts, k)
}

// TwoOptNeighbors is TwoOpt over a caller-supplied neighbour list, so a
// solver running several improvement passes builds the lists once and
// shares them between TwoOpt and OrOptNeighbors. It builds fresh scratch
// state per call; hot loops should hold a Scratch and call its TwoOpt.
func TwoOptNeighbors(pts []geom.Point, tour Tour, neigh [][]int) int {
	var s Scratch
	return s.TwoOpt(pts, tour, neigh)
}

// TwoOpt is TwoOptNeighbors over caller-owned scratch state: the
// steady-state pass allocates nothing once the buffers have grown to the
// instance size. The move sequence is identical to TwoOptNeighbors.
//
//mdglint:hotpath
func (s *Scratch) TwoOpt(pts []geom.Point, tour Tour, neigh [][]int) int {
	return s.twoOpt(pts, tour, neigh, nil)
}

// TwoOptSeeded is TwoOpt with the work queue seeded from the given point
// indices instead of the whole tour: only the seeds and points later
// touched by improving moves are examined, so the pass cost scales with
// the size of the disturbed region rather than the tour. Warm-start
// repair seeds it with the stops around spliced or ejected segments. An
// empty seed set is a no-op by construction.
//
//mdglint:hotpath
func (s *Scratch) TwoOptSeeded(pts []geom.Point, tour Tour, neigh [][]int, seeds []int) int {
	return s.twoOpt(pts, tour, neigh, seeds)
}

// seedQueue initialises the work queue: nil seeds enqueue the whole tour
// with every don't-look bit clear (the full pass); explicit seeds enqueue
// only themselves, with every other point parked behind a set bit until a
// move wakes it.
//
//mdglint:hotpath
func (s *Scratch) seedQueue(tour Tour, seeds []int) {
	if seeds == nil {
		//mdglint:allow-alloc(append reuses queue capacity retained in the scratch)
		s.queue = append(s.queue, tour...)
		return
	}
	for i := range s.dontLook {
		s.dontLook[i] = true
	}
	for _, v := range seeds {
		if s.dontLook[v] {
			s.dontLook[v] = false
			//mdglint:allow-alloc(append reuses queue capacity retained in the scratch)
			s.queue = append(s.queue, v)
		}
	}
}

//mdglint:hotpath
func (s *Scratch) twoOpt(pts []geom.Point, tour Tour, neigh [][]int, seeds []int) int {
	n := len(tour)
	if n < 4 {
		return 0
	}
	s.ensure(n)
	pos, dontLook := s.pos, s.dontLook
	for i, v := range tour {
		pos[v] = i
	}
	s.seedQueue(tour, seeds)
	head := 0
	moves := 0
	d := func(a, b int) float64 { return pts[a].Dist(pts[b]) }
	succ := func(i int) int { return tour[(pos[i]+1)%n] }
	pred := func(i int) int { return tour[(pos[i]-1+n)%n] }

	reverse := func(i, j int) {
		// Reverse tour positions i..j (inclusive, i<j).
		for i < j {
			tour[i], tour[j] = tour[j], tour[i]
			pos[tour[i]], pos[tour[j]] = i, j
			i++
			j--
		}
	}

	improveAt := func(a int) bool {
		// Try 2-opt moves removing edge (a, succ(a)) or (pred(a), a).
		for _, dir := range [2]bool{true, false} {
			var b int
			if dir {
				b = succ(a)
			} else {
				b = pred(a)
			}
			dab := d(a, b)
			for _, c := range neigh[a] {
				dac := d(a, c)
				if dac >= dab {
					break // neighbours sorted: no closer candidate remains
				}
				var e int
				if dir {
					e = succ(c)
				} else {
					e = pred(c)
				}
				if c == a || c == b || e == a {
					continue
				}
				// Replace edges (a,b) and (c,e) with (a,c) and (b,e).
				if dab+d(c, e) > dac+d(b, e)+1e-12 {
					// A 2-opt move reverses one of the two arcs between
					// the removed edges; pick the one that does not wrap
					// around the array boundary. In the successor
					// direction the removed edges are (a→b) and (c→e);
					// in the predecessor direction, (b→a) and (e→c).
					var i, j int
					if dir {
						if pos[b] <= pos[c] {
							i, j = pos[b], pos[c]
						} else {
							i, j = pos[e], pos[a]
						}
					} else {
						if pos[a] <= pos[e] {
							i, j = pos[a], pos[e]
						} else {
							i, j = pos[c], pos[b]
						}
					}
					if i >= j {
						continue // degenerate: would be a no-op, not a gain
					}
					reverse(i, j)
					for _, v := range [4]int{a, b, c, e} {
						if dontLook[v] {
							dontLook[v] = false
							//mdglint:allow-alloc(append reuses queue capacity retained in the scratch)
							s.queue = append(s.queue, v)
						}
					}
					moves++
					return true
				}
			}
		}
		return false
	}

	for head < len(s.queue) {
		a := s.queue[head]
		head++
		if dontLook[a] {
			continue
		}
		if improveAt(a) {
			//mdglint:allow-alloc(append reuses queue capacity retained in the scratch)
			s.queue = append(s.queue, a)
		} else {
			dontLook[a] = true
		}
	}
	return moves
}

// OrOpt improves tour in place by relocating chains of 1–3 consecutive
// stops to a better position (possibly reversed). It returns the number of
// improving moves applied. Run it after TwoOpt: the two neighbourhoods are
// complementary.
//
// The scan is first-improvement but keeps going within a pass: after an
// improving relocation it moves on to the next segment start rather than
// restarting the whole O(n²) sweep, so a pass is O(n²) regardless of how
// many moves it finds.
func OrOpt(pts []geom.Point, tour Tour) int {
	n := len(tour)
	if n < 5 {
		return 0
	}
	d := func(a, b int) float64 { return pts[a].Dist(pts[b]) }
	moves := 0
	maxSeg := min(3, n-3)
	buf := make(Tour, 0, n)
	improved := true
	for improved {
		improved = false
		for segLen := 1; segLen <= maxSeg; segLen++ {
			for i := 0; i < n; i++ {
				// Segment occupies positions i..i+segLen-1 (mod n).
				p0 := tour[(i-1+n)%n]      // before segment
				s0 := tour[i]              // segment head
				s1 := tour[(i+segLen-1)%n] // segment tail
				p1 := tour[(i+segLen)%n]   // after segment
				removed := d(p0, s0) + d(s1, p1) - d(p0, p1)
				if removed <= 1e-12 {
					continue
				}
				// Try inserting between every other consecutive pair.
				for j := 0; j < n; j++ {
					// Skip positions inside or adjacent to the segment.
					if within(i, segLen, j, n) || (j+1)%n == i {
						continue
					}
					a, b := tour[j], tour[(j+1)%n]
					forward := d(a, s0) + d(s1, b) - d(a, b)
					backward := d(a, s1) + d(s0, b) - d(a, b)
					rev := backward < forward
					added := forward
					if rev {
						added = backward
					}
					if added < removed-1e-12 {
						relocate(tour, i, segLen, j, rev, buf)
						moves++
						improved = true
						// This segment has moved; continue the pass at the
						// next start position instead of restarting.
						break
					}
				}
			}
		}
	}
	return moves
}

// OrOptNeighbors is Or-opt restricted to candidate insertion points near
// the segment endpoints, with don't-look bits: each point anchors segment
// relocations, and points are re-examined only when a move touches them.
// A good insertion splices the segment between stops a and b where a is
// near the new head or b is near the new tail, so trying the tour edges on
// both sides of each near neighbour of s0 and s1 covers (for either
// orientation) the insertions the full scan would find. It returns the
// number of improving moves applied.
func OrOptNeighbors(pts []geom.Point, tour Tour, neigh [][]int) int {
	var s Scratch
	return s.OrOpt(pts, tour, neigh)
}

// OrOpt is OrOptNeighbors over caller-owned scratch state: the
// steady-state pass allocates nothing once the buffers have grown to the
// instance size. The move sequence is identical to OrOptNeighbors.
//
//mdglint:hotpath
func (s *Scratch) OrOpt(pts []geom.Point, tour Tour, neigh [][]int) int {
	return s.orOpt(pts, tour, neigh, nil)
}

// OrOptSeeded is OrOpt with the work queue seeded from the given point
// indices, the relocation counterpart of TwoOptSeeded: only seeds and
// points woken by improving moves anchor segment relocations. Warm-start
// repair uses it to tidy the tour around spliced stops. An empty seed
// set is a no-op by construction.
//
//mdglint:hotpath
func (s *Scratch) OrOptSeeded(pts []geom.Point, tour Tour, neigh [][]int, seeds []int) int {
	return s.orOpt(pts, tour, neigh, seeds)
}

//mdglint:hotpath
func (s *Scratch) orOpt(pts []geom.Point, tour Tour, neigh [][]int, seeds []int) int {
	n := len(tour)
	if n < 5 {
		return 0
	}
	s.ensure(n)
	d := func(a, b int) float64 { return pts[a].Dist(pts[b]) }
	pos, dontLook := s.pos, s.dontLook
	rebuild := func() {
		for i, v := range tour {
			pos[v] = i
		}
	}
	rebuild()
	s.seedQueue(tour, seeds)
	head := 0
	moves := 0
	maxSeg := min(3, n-3)

	improveAt := func(s0 int) bool {
		i := pos[s0]
		for segLen := 1; segLen <= maxSeg; segLen++ {
			p0 := tour[(i-1+n)%n]
			s1 := tour[(i+segLen-1)%n]
			p1 := tour[(i+segLen)%n]
			removed := d(p0, s0) + d(s1, p1) - d(p0, p1)
			if removed <= 1e-12 {
				continue
			}
			for _, list := range [2][]int{neigh[s0], neigh[s1]} {
				for _, c := range list {
					// Anchor on the tour edge after c and the one before
					// it, so c can serve as either endpoint of the broken
					// edge.
					for _, j := range [2]int{pos[c], (pos[c] - 1 + n) % n} {
						if within(i, segLen, j, n) || (j+1)%n == i {
							continue
						}
						a, b := tour[j], tour[(j+1)%n]
						forward := d(a, s0) + d(s1, b) - d(a, b)
						backward := d(a, s1) + d(s0, b) - d(a, b)
						rev := backward < forward
						added := forward
						if rev {
							added = backward
						}
						if added < removed-1e-12 {
							relocate(tour, i, segLen, j, rev, s.reloc)
							rebuild()
							for _, v := range [6]int{p0, p1, s0, s1, a, b} {
								if dontLook[v] {
									dontLook[v] = false
									//mdglint:allow-alloc(append reuses queue capacity retained in the scratch)
									s.queue = append(s.queue, v)
								}
							}
							moves++
							return true
						}
					}
				}
			}
		}
		return false
	}

	for head < len(s.queue) {
		s0 := s.queue[head]
		head++
		if dontLook[s0] {
			continue
		}
		if improveAt(s0) {
			//mdglint:allow-alloc(append reuses queue capacity retained in the scratch)
			s.queue = append(s.queue, s0)
		} else {
			dontLook[s0] = true
		}
	}
	return moves
}

// within reports whether tour position j lies inside the segment starting
// at position i with the given length (mod n).
func within(i, segLen, j, n int) bool {
	for k := 0; k < segLen; k++ {
		if (i+k)%n == j {
			return true
		}
	}
	return false
}

// relocate moves the segment of segLen stops (at most 3) starting at
// position i to just after position j, optionally reversing it. It
// rebuilds the tour by value: remove the segment, then splice it back in
// after the stop that was at position j. buf is a caller-owned splice
// buffer with capacity >= len(tour); relocate never retains it.
func relocate(tour Tour, i, segLen, j int, rev bool, buf Tour) {
	var seg [3]int
	for k := 0; k < segLen; k++ {
		seg[k] = tour[(i+k)%len(tour)]
	}
	if rev {
		for a, b := 0, segLen-1; a < b; a, b = a+1, b-1 {
			seg[a], seg[b] = seg[b], seg[a]
		}
	}
	anchor := tour[j]
	out := buf[:0]
	for _, v := range tour {
		if v == seg[0] || (segLen > 1 && v == seg[1]) || (segLen > 2 && v == seg[2]) {
			continue
		}
		//mdglint:allow-alloc(append writes within buf's reserved capacity; relocate emits exactly len(tour) values)
		out = append(out, v)
		if v == anchor {
			//mdglint:allow-alloc(append writes within buf's reserved capacity; relocate emits exactly len(tour) values)
			out = append(out, seg[:segLen]...)
		}
	}
	copy(tour, out)
}
