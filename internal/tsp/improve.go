package tsp

import (
	"sort"

	"mobicol/internal/geom"
)

// neighborLists returns, for every point, the indices of its k nearest
// other points. 2-opt restricted to near neighbours finds almost all the
// improving moves of the full quadratic scan at a fraction of the cost.
func neighborLists(pts []geom.Point, k int) [][]int {
	n := len(pts)
	if k >= n {
		k = n - 1
	}
	lists := make([][]int, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		// Exclude i explicitly: with coincident points a distance-0 tie
		// could otherwise leave i inside its own list.
		cand := make([]int, 0, n-1)
		for _, j := range idx {
			if j != i {
				cand = append(cand, j)
			}
		}
		sort.Slice(cand, func(a, b int) bool {
			return pts[cand[a]].Dist2(pts[i]) < pts[cand[b]].Dist2(pts[i])
		})
		lists[i] = cand[:k]
	}
	return lists
}

// TwoOpt improves tour in place with 2-opt moves (reverse a segment when
// doing so shortens the tour), restricted to candidate edges between near
// neighbours and accelerated with don't-look bits. It returns the number
// of improving moves applied.
func TwoOpt(pts []geom.Point, tour Tour) int {
	n := len(tour)
	if n < 4 {
		return 0
	}
	k := 12
	neigh := neighborLists(pts, k)
	pos := make([]int, n) // point -> position in tour
	for i, v := range tour {
		pos[v] = i
	}
	dontLook := make([]bool, n)
	queue := make([]int, n)
	copy(queue, tour)
	moves := 0
	d := func(a, b int) float64 { return pts[a].Dist(pts[b]) }
	succ := func(i int) int { return tour[(pos[i]+1)%n] }
	pred := func(i int) int { return tour[(pos[i]-1+n)%n] }

	reverse := func(i, j int) {
		// Reverse tour positions i..j (inclusive, i<j).
		for i < j {
			tour[i], tour[j] = tour[j], tour[i]
			pos[tour[i]], pos[tour[j]] = i, j
			i++
			j--
		}
	}

	improveAt := func(a int) bool {
		// Try 2-opt moves removing edge (a, succ(a)) or (pred(a), a).
		for _, dir := range [2]bool{true, false} {
			var b int
			if dir {
				b = succ(a)
			} else {
				b = pred(a)
			}
			dab := d(a, b)
			for _, c := range neigh[a] {
				dac := d(a, c)
				if dac >= dab {
					break // neighbours sorted: no closer candidate remains
				}
				var e int
				if dir {
					e = succ(c)
				} else {
					e = pred(c)
				}
				if c == a || c == b || e == a {
					continue
				}
				// Replace edges (a,b) and (c,e) with (a,c) and (b,e).
				if dab+d(c, e) > dac+d(b, e)+1e-12 {
					// A 2-opt move reverses one of the two arcs between
					// the removed edges; pick the one that does not wrap
					// around the array boundary. In the successor
					// direction the removed edges are (a→b) and (c→e);
					// in the predecessor direction, (b→a) and (e→c).
					var i, j int
					if dir {
						if pos[b] <= pos[c] {
							i, j = pos[b], pos[c]
						} else {
							i, j = pos[e], pos[a]
						}
					} else {
						if pos[a] <= pos[e] {
							i, j = pos[a], pos[e]
						} else {
							i, j = pos[c], pos[b]
						}
					}
					if i >= j {
						continue // degenerate: would be a no-op, not a gain
					}
					reverse(i, j)
					for _, v := range [4]int{a, b, c, e} {
						if dontLook[v] {
							dontLook[v] = false
							queue = append(queue, v)
						}
					}
					moves++
					return true
				}
			}
		}
		return false
	}

	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		if dontLook[a] {
			continue
		}
		if improveAt(a) {
			queue = append(queue, a)
		} else {
			dontLook[a] = true
		}
	}
	return moves
}

// OrOpt improves tour in place by relocating chains of 1–3 consecutive
// stops to a better position (possibly reversed). It returns the number of
// improving moves applied. Run it after TwoOpt: the two neighbourhoods are
// complementary.
func OrOpt(pts []geom.Point, tour Tour) int {
	n := len(tour)
	if n < 5 {
		return 0
	}
	d := func(a, b int) float64 { return pts[a].Dist(pts[b]) }
	moves := 0
	improved := true
	for improved {
		improved = false
		for segLen := 1; segLen <= 3; segLen++ {
			for i := 0; i < n; i++ {
				// Segment occupies positions i..i+segLen-1 (mod n).
				if segLen >= n-2 {
					continue
				}
				p0 := tour[(i-1+n)%n]      // before segment
				s0 := tour[i]              // segment head
				s1 := tour[(i+segLen-1)%n] // segment tail
				p1 := tour[(i+segLen)%n]   // after segment
				removed := d(p0, s0) + d(s1, p1) - d(p0, p1)
				if removed <= 1e-12 {
					continue
				}
				// Try inserting between every other consecutive pair.
				for j := 0; j < n; j++ {
					// Skip positions inside or adjacent to the segment.
					if within(i, segLen, j, n) || (j+1)%n == i {
						continue
					}
					a, b := tour[j], tour[(j+1)%n]
					forward := d(a, s0) + d(s1, b) - d(a, b)
					backward := d(a, s1) + d(s0, b) - d(a, b)
					rev := backward < forward
					added := forward
					if rev {
						added = backward
					}
					if added < removed-1e-12 {
						relocate(tour, i, segLen, j, rev)
						moves++
						improved = true
						break
					}
				}
				if improved {
					break
				}
			}
			if improved {
				break
			}
		}
	}
	return moves
}

// within reports whether tour position j lies inside the segment starting
// at position i with the given length (mod n).
func within(i, segLen, j, n int) bool {
	for k := 0; k < segLen; k++ {
		if (i+k)%n == j {
			return true
		}
	}
	return false
}

// relocate moves the segment of segLen stops starting at position i to
// just after position j, optionally reversing it. It rebuilds the tour by
// value: remove the segment, then splice it back in after the stop that
// was at position j.
func relocate(tour Tour, i, segLen, j int, rev bool) {
	n := len(tour)
	seg := make([]int, segLen)
	inSeg := make(map[int]bool, segLen)
	for k := 0; k < segLen; k++ {
		seg[k] = tour[(i+k)%n]
		inSeg[seg[k]] = true
	}
	if rev {
		for a, b := 0, segLen-1; a < b; a, b = a+1, b-1 {
			seg[a], seg[b] = seg[b], seg[a]
		}
	}
	anchor := tour[j]
	out := make(Tour, 0, n)
	for _, v := range tour {
		if inSeg[v] {
			continue
		}
		out = append(out, v)
		if v == anchor {
			out = append(out, seg...)
		}
	}
	copy(tour, out)
}
