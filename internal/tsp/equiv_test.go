package tsp

import (
	"fmt"
	"math"
	"testing"

	"mobicol/internal/par"
	"mobicol/internal/rng"
)

// TestNeighborListsMatchFullSort pins the grid-backed construction to the
// quadratic oracle: same neighbours, same order, for every point.
func TestNeighborListsMatchFullSort(t *testing.T) {
	for _, n := range []int{5, 30, 200} {
		for seed := uint64(5); seed < 8; seed++ {
			pts := randPts(rng.New(seed), n, 300)
			k := min(neighborK, n-1)
			got := neighborLists(pts, neighborK)
			for i := range pts {
				want := sortedNeighbors(pts, i, k)
				if len(got[i]) != len(want) {
					t.Fatalf("n=%d seed=%d point %d: %d neighbours, want %d",
						n, seed, i, len(got[i]), len(want))
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("n=%d seed=%d point %d slot %d: %d, want %d",
							n, seed, i, j, got[i][j], want[j])
					}
				}
			}
		}
	}
}

// TestNeighborListsCoincidentPoints exercises the degenerate-geometry
// fallback: every point at the same location still yields full lists.
func TestNeighborListsCoincidentPoints(t *testing.T) {
	pts := randPts(rng.New(1), 6, 0) // Uniform(0,0) puts every point at the origin
	lists := neighborLists(pts, neighborK)
	for i, l := range lists {
		if len(l) != 5 {
			t.Fatalf("point %d: %d neighbours, want 5", i, len(l))
		}
		for _, j := range l {
			if j == i {
				t.Fatalf("point %d lists itself", i)
			}
		}
	}
}

// TestSolveBestPoolEquivalence pins the tentpole contract for the
// multistart layer: any pool size returns the identical tour.
func TestSolveBestPoolEquivalence(t *testing.T) {
	opts := DefaultOptions()
	for _, n := range []int{40, 120} {
		for seed := uint64(51); seed < 54; seed++ {
			pts := randPts(rng.New(seed), n, 250)
			seqTour := SolveBestPool(pts, opts, 8, seed, par.Seq())
			parTour := SolveBestPool(pts, opts, 8, seed, par.Workers(8))
			wrapped := SolveBest(pts, opts, 8, seed)
			if len(seqTour) != len(parTour) || len(seqTour) != len(wrapped) {
				t.Fatalf("n=%d seed=%d: tour lengths differ", n, seed)
			}
			for i := range seqTour {
				if seqTour[i] != parTour[i] {
					t.Fatalf("n=%d seed=%d: position %d: %d vs %d",
						n, seed, i, parTour[i], seqTour[i])
				}
				if seqTour[i] != wrapped[i] {
					t.Fatalf("n=%d seed=%d: SolveBest wrapper diverged at %d", n, seed, i)
				}
			}
		}
	}
}

// TestOrOptNeighborsNeverLengthens guards the new neighbour-restricted
// pass: it must only ever shorten the tour and leave it a permutation.
func TestOrOptNeighborsNeverLengthens(t *testing.T) {
	for seed := uint64(60); seed < 66; seed++ {
		pts := randPts(rng.New(seed), 90, 200)
		tour := NearestNeighbor(pts, 0)
		neigh := neighborLists(pts, neighborK)
		before := tour.Length(pts)
		moves := OrOptNeighbors(pts, tour, neigh)
		after := tour.Length(pts)
		if err := tour.Validate(len(pts)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if after > before+1e-9 {
			t.Fatalf("seed %d: lengthened %.4f -> %.4f", seed, before, after)
		}
		if moves > 0 && !(after < before) {
			t.Fatalf("seed %d: %d moves claimed but no improvement", seed, moves)
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	for _, n := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := randPts(rng.New(1), n, 200*math.Sqrt(float64(n)/100))
			opts := DefaultOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Solve(pts, opts)
			}
		})
	}
}
