package tsp

import (
	"fmt"

	"mobicol/internal/geom"
	"mobicol/internal/obs"
)

// Construction selects the tour-construction heuristic.
type Construction int

const (
	// ConstructNN is nearest neighbour from point 0.
	ConstructNN Construction = iota
	// ConstructGreedy is greedy-edge matching.
	ConstructGreedy
	// ConstructCheapest is cheapest insertion.
	ConstructCheapest
	// ConstructHull is convex-hull + cheapest insertion.
	ConstructHull
	// ConstructDoubleTree is the MST 2-approximation.
	ConstructDoubleTree
	// ConstructChristofides is MST + odd-vertex matching + Euler walk.
	ConstructChristofides
)

// String names the construction.
func (c Construction) String() string {
	switch c {
	case ConstructNN:
		return "nearest-neighbor"
	case ConstructGreedy:
		return "greedy-edge"
	case ConstructCheapest:
		return "cheapest-insertion"
	case ConstructHull:
		return "hull-insertion"
	case ConstructDoubleTree:
		return "double-tree"
	case ConstructChristofides:
		return "christofides"
	default:
		return fmt.Sprintf("Construction(%d)", int(c))
	}
}

// Options configures Solve.
type Options struct {
	Construction Construction
	TwoOpt       bool // run 2-opt local search
	OrOpt        bool // run Or-opt local search (after 2-opt)
	ExactBelow   int  // use Held–Karp when n <= ExactBelow (and <= HeldKarpMax)
	// Obs, when non-nil, receives one child span per solver stage
	// (construction and each improvement pass) with the tour-length
	// delta each stage contributed. Nil disables tracing at zero cost.
	Obs *obs.Span
}

// DefaultOptions is the configuration the planners use: greedy-edge
// construction, both local searches, exact solving for tiny instances.
func DefaultOptions() Options {
	return Options{Construction: ConstructGreedy, TwoOpt: true, OrOpt: true, ExactBelow: 12}
}

// Solve returns a closed tour over pts according to opts.
//
//mdglint:allow-alloc(per-solve setup: construction and neighbour lists allocate once; the improvement passes are scratch-based hot roots)
func Solve(pts []geom.Point, opts Options) Tour {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n)
	}
	if opts.ExactBelow > 0 && n <= opts.ExactBelow && n <= HeldKarpMax {
		if t, err := HeldKarp(pts); err == nil {
			sp := opts.Obs.Child("construct")
			sp.SetStr("method", "held-karp")
			sp.SetInt("n", int64(n))
			//mdglint:ignore unitcheck obs boundary: trace fields carry raw numbers
			sp.SetFloat("len", float64(t.Length(pts)))
			sp.End()
			return t
		}
	}
	sp := opts.Obs.Child("construct")
	var t Tour
	switch opts.Construction {
	case ConstructNN:
		t = NearestNeighbor(pts, 0)
	case ConstructGreedy:
		t = GreedyEdge(pts)
	case ConstructCheapest:
		t = CheapestInsertion(pts)
	case ConstructHull:
		t = HullInsertion(pts)
	case ConstructDoubleTree:
		t = DoubleTree(pts)
	case ConstructChristofides:
		t = Christofides(pts)
	default:
		//mdglint:ignore nopanic exhaustive switch over a closed enum; a new variant must fail loudly in tests
		panic(fmt.Sprintf("tsp: unknown construction %v", opts.Construction))
	}
	// Length recomputation is O(n); only pay for it when traced.
	if opts.Obs != nil {
		sp.SetStr("method", opts.Construction.String())
		sp.SetInt("n", int64(n))
		//mdglint:ignore unitcheck obs boundary: trace fields carry raw numbers
		sp.SetFloat("len", float64(t.Length(pts)))
	}
	sp.End()
	// Both local searches work off the same k-nearest candidate lists;
	// build them once and share across every pass.
	var neigh [][]int
	if opts.TwoOpt || opts.OrOpt {
		neigh = neighborLists(pts, neighborK)
	}
	// One scratch serves every pass: the second 2-opt pass reuses the
	// buffers the first one grew.
	var s Scratch
	twoOpt := func(p []geom.Point, t Tour) int { return s.TwoOpt(p, t, neigh) }
	orOpt := func(p []geom.Point, t Tour) int { return s.OrOpt(p, t, neigh) }
	if opts.TwoOpt {
		improvePass(pts, t, opts.Obs, "twoopt", "tsp.twoopt_moves", twoOpt)
	}
	if opts.OrOpt {
		improvePass(pts, t, opts.Obs, "oropt", "tsp.oropt_moves", orOpt)
		if opts.TwoOpt {
			// Or-opt moves can open new 2-opt improvements; one more
			// pass is cheap and usually closes them.
			improvePass(pts, t, opts.Obs, "twoopt", "tsp.twoopt_moves", twoOpt)
		}
	}
	return t
}

// improvePass runs one local-search pass, recording — when traced — the
// pass's span with its move count and the tour-length delta it bought,
// plus a running counter of improvement moves per neighbourhood.
func improvePass(pts []geom.Point, t Tour, parent *obs.Span, name, counter string, pass func([]geom.Point, Tour) int) {
	if parent == nil {
		pass(pts, t)
		return
	}
	sp := parent.Child(name)
	before := t.Length(pts)
	moves := pass(pts, t)
	after := t.Length(pts)
	sp.SetInt("moves", int64(moves))
	//mdglint:ignore unitcheck obs boundary: trace fields carry raw numbers
	sp.SetFloat("delta", float64(before-after))
	//mdglint:ignore unitcheck obs boundary: trace fields carry raw numbers
	sp.SetFloat("len", float64(after))
	sp.Count(counter, int64(moves))
	sp.End()
}
