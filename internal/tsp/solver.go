package tsp

import (
	"fmt"

	"mobicol/internal/geom"
)

// Construction selects the tour-construction heuristic.
type Construction int

const (
	// ConstructNN is nearest neighbour from point 0.
	ConstructNN Construction = iota
	// ConstructGreedy is greedy-edge matching.
	ConstructGreedy
	// ConstructCheapest is cheapest insertion.
	ConstructCheapest
	// ConstructHull is convex-hull + cheapest insertion.
	ConstructHull
	// ConstructDoubleTree is the MST 2-approximation.
	ConstructDoubleTree
	// ConstructChristofides is MST + odd-vertex matching + Euler walk.
	ConstructChristofides
)

// String names the construction.
func (c Construction) String() string {
	switch c {
	case ConstructNN:
		return "nearest-neighbor"
	case ConstructGreedy:
		return "greedy-edge"
	case ConstructCheapest:
		return "cheapest-insertion"
	case ConstructHull:
		return "hull-insertion"
	case ConstructDoubleTree:
		return "double-tree"
	case ConstructChristofides:
		return "christofides"
	default:
		return fmt.Sprintf("Construction(%d)", int(c))
	}
}

// Options configures Solve.
type Options struct {
	Construction Construction
	TwoOpt       bool // run 2-opt local search
	OrOpt        bool // run Or-opt local search (after 2-opt)
	ExactBelow   int  // use Held–Karp when n <= ExactBelow (and <= HeldKarpMax)
}

// DefaultOptions is the configuration the planners use: greedy-edge
// construction, both local searches, exact solving for tiny instances.
func DefaultOptions() Options {
	return Options{Construction: ConstructGreedy, TwoOpt: true, OrOpt: true, ExactBelow: 12}
}

// Solve returns a closed tour over pts according to opts.
func Solve(pts []geom.Point, opts Options) Tour {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n)
	}
	if opts.ExactBelow > 0 && n <= opts.ExactBelow && n <= HeldKarpMax {
		if t, err := HeldKarp(pts); err == nil {
			return t
		}
	}
	var t Tour
	switch opts.Construction {
	case ConstructNN:
		t = NearestNeighbor(pts, 0)
	case ConstructGreedy:
		t = GreedyEdge(pts)
	case ConstructCheapest:
		t = CheapestInsertion(pts)
	case ConstructHull:
		t = HullInsertion(pts)
	case ConstructDoubleTree:
		t = DoubleTree(pts)
	case ConstructChristofides:
		t = Christofides(pts)
	default:
		//mdglint:ignore nopanic exhaustive switch over a closed enum; a new variant must fail loudly in tests
		panic(fmt.Sprintf("tsp: unknown construction %v", opts.Construction))
	}
	if opts.TwoOpt {
		TwoOpt(pts, t)
	}
	if opts.OrOpt {
		OrOpt(pts, t)
		if opts.TwoOpt {
			// Or-opt moves can open new 2-opt improvements; one more
			// pass is cheap and usually closes them.
			TwoOpt(pts, t)
		}
	}
	return t
}
