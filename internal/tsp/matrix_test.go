package tsp

import (
	"math"
	"testing"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
)

// euclidMatrix builds the distance matrix of pts.
func euclidMatrix(pts []geom.Point) [][]float64 {
	n := len(pts)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = pts[i].Dist(pts[j])
		}
	}
	return m
}

func TestSolveMatrixMatchesEuclideanQuality(t *testing.T) {
	s := rng.New(70)
	for trial := 0; trial < 10; trial++ {
		pts := randPts(s, 6+s.Intn(8), 100)
		m := euclidMatrix(pts)
		tour, err := SolveMatrix(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := tour.Validate(len(pts)); err != nil {
			t.Fatal(err)
		}
		opt, err := HeldKarp(pts)
		if err != nil {
			t.Fatal(err)
		}
		got := MatrixLength(m, tour)
		want := float64(opt.Length(pts))
		if got < want-1e-9 {
			t.Fatalf("matrix tour %v beat the optimum %v: impossible", got, want)
		}
		if got > want*1.15 {
			t.Fatalf("matrix tour %v more than 15%% above optimum %v", got, want)
		}
	}
}

func TestSolveMatrixAgreesWithTourLength(t *testing.T) {
	s := rng.New(71)
	pts := randPts(s, 30, 150)
	m := euclidMatrix(pts)
	tour, err := SolveMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(MatrixLength(m, tour)-float64(tour.Length(pts))) > 1e-9 {
		t.Fatal("MatrixLength disagrees with Euclidean Length on a Euclidean matrix")
	}
}

func TestSolveMatrixNonEuclidean(t *testing.T) {
	// A metric the planner actually uses: shortest-path detours make some
	// pairs "farther" than their straight line. 4 points on a line with
	// an inflated middle edge.
	m := [][]float64{
		{0, 1, 10, 11},
		{1, 0, 9, 10},
		{10, 9, 0, 1},
		{11, 10, 1, 0},
	}
	tour, err := SolveMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tour.Validate(4); err != nil {
		t.Fatal(err)
	}
	// Optimal closed tour: 0-1-2-3-0 = 1+9+1+11 = 22.
	if got := MatrixLength(m, tour); math.Abs(got-22) > 1e-9 {
		t.Fatalf("length %v, want 22", got)
	}
}

func TestSolveMatrixDegenerate(t *testing.T) {
	for n := 0; n <= 3; n++ {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		tour, err := SolveMatrix(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(tour) != n {
			t.Fatalf("n=%d: tour %v", n, tour)
		}
	}
}

func TestSolveMatrixRejectsRagged(t *testing.T) {
	if _, err := SolveMatrix([][]float64{{0, 1}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSolveMatrixUnreachablePairs(t *testing.T) {
	inf := math.Inf(1)
	m := [][]float64{
		{0, 1, inf, inf},
		{1, 0, inf, inf},
		{inf, inf, 0, 1},
		{inf, inf, 1, 0},
	}
	tour, err := SolveMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tour.Validate(4); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(MatrixLength(m, tour), 1) {
		t.Fatal("disconnected metric should yield infinite tour length")
	}
}

func TestMatrixLengthDegenerate(t *testing.T) {
	if MatrixLength(nil, Tour{}) != 0 {
		t.Fatal("empty matrix length")
	}
	if MatrixLength([][]float64{{0}}, Tour{0}) != 0 {
		t.Fatal("singleton matrix length")
	}
}

func TestTourPoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	got := (Tour{2, 0, 1}).Points(pts)
	if !got[0].Eq(pts[2]) || !got[1].Eq(pts[0]) || !got[2].Eq(pts[1]) {
		t.Fatalf("Points = %v", got)
	}
}

func TestConstructionString(t *testing.T) {
	names := []struct {
		c    Construction
		want string
	}{
		{ConstructNN, "nearest-neighbor"},
		{ConstructGreedy, "greedy-edge"},
		{ConstructCheapest, "cheapest-insertion"},
		{ConstructHull, "hull-insertion"},
		{ConstructDoubleTree, "double-tree"},
		{Construction(99), "Construction(99)"},
	}
	for _, tc := range names {
		c, want := tc.c, tc.want
		if c.String() != want {
			t.Fatalf("%d.String() = %q", int(c), c.String())
		}
	}
}
