package tsp

import (
	"testing"

	"mobicol/internal/rng"
)

func TestSolveBestNeverWorseThanSolve(t *testing.T) {
	s := rng.New(62)
	for trial := 0; trial < 10; trial++ {
		pts := randPts(s, 10+s.Intn(80), 200)
		opts := DefaultOptions()
		single := Solve(pts, opts).Length(pts)
		multi := SolveBest(pts, opts, 5, 7).Length(pts)
		if multi > single+1e-9 {
			t.Fatalf("multi-start %.3f worse than single %.3f", multi, single)
		}
	}
}

func TestSolveBestValid(t *testing.T) {
	s := rng.New(63)
	for _, n := range []int{1, 4, 5, 30, 100} {
		pts := randPts(s, n, 150)
		tour := SolveBest(pts, DefaultOptions(), 4, 1)
		if err := tour.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPerturbPreservesPermutation(t *testing.T) {
	s := rng.New(64)
	for trial := 0; trial < 50; trial++ {
		n := 8 + s.Intn(100)
		tour := make(Tour, n)
		for i := range tour {
			tour[i] = i
		}
		Perturb(tour, s)
		if err := tour.Validate(n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPerturbChangesTour(t *testing.T) {
	s := rng.New(65)
	tour := make(Tour, 30)
	for i := range tour {
		tour[i] = i
	}
	orig := tour.Clone()
	Perturb(tour, s)
	same := true
	for i := range tour {
		if tour[i] != orig[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("double bridge left the tour unchanged")
	}
}

func TestPerturbSmallTourNoop(t *testing.T) {
	tour := Tour{0, 1, 2, 3, 4}
	orig := tour.Clone()
	Perturb(tour, rng.New(1))
	for i := range tour {
		if tour[i] != orig[i] {
			t.Fatal("small tour mutated")
		}
	}
}

func TestSolveILSNeverWorseThanSolve(t *testing.T) {
	s := rng.New(66)
	for trial := 0; trial < 5; trial++ {
		pts := randPts(s, 30+s.Intn(60), 200)
		opts := DefaultOptions()
		base := Solve(pts, opts).Length(pts)
		ils := SolveILS(pts, opts, 10, 3)
		if err := ils.Validate(len(pts)); err != nil {
			t.Fatal(err)
		}
		if ils.Length(pts) > base+1e-9 {
			t.Fatalf("ILS %.3f worse than base %.3f", ils.Length(pts), base)
		}
	}
}

func TestSolveILSFindsOptimumSmall(t *testing.T) {
	s := rng.New(67)
	pts := randPts(s, 14, 100)
	opt, err := HeldKarp(pts)
	if err != nil {
		t.Fatal(err)
	}
	ils := SolveILS(pts, Options{Construction: ConstructNN, TwoOpt: true, OrOpt: true}, 50, 9)
	// ILS should land within 2% of optimum on 14 points.
	if ils.Length(pts) > opt.Length(pts)*1.02 {
		t.Fatalf("ILS %.3f vs optimum %.3f", ils.Length(pts), opt.Length(pts))
	}
}
