package tsp

import (
	"math"
	"sort"

	"mobicol/internal/geom"
	"mobicol/internal/graph"
)

// NearestNeighbor builds a tour by repeatedly travelling to the closest
// unvisited point, starting from start. This is the construction the
// paper's simulations use for the final tour over polling points.
func NearestNeighbor(pts []geom.Point, start int) Tour {
	n := len(pts)
	if n <= 2 {
		return trivialTour(n)
	}
	kt := geom.NewKDTree(pts)
	visited := make([]bool, n)
	tour := make(Tour, 0, n)
	cur := start
	visited[cur] = true
	tour = append(tour, cur)
	for len(tour) < n {
		next, _ := kt.Nearest(pts[cur], func(i int) bool { return visited[i] })
		visited[next] = true
		tour = append(tour, next)
		cur = next
	}
	return tour
}

// greedyEdgeDenseMax bounds the all-pairs greedy-edge construction: above
// it, the O(n²) edge list (n²/2 × 24 bytes, plus the sort) stops being a
// rounding error — at n=10k it would be 1.2 GB — and GreedyEdge switches
// to the k-nearest sparse construction instead. Committed baselines all
// sit far below the threshold, so their tours are unchanged.
const greedyEdgeDenseMax = 2048

// GreedyEdge builds a tour by adding the globally shortest edges that keep
// degree <= 2 and avoid premature subtours (the "greedy matching"
// construction; typically a few percent shorter than nearest neighbour).
// Instances above greedyEdgeDenseMax points use the sparse k-nearest
// variant: same greedy rule over the union of each point's k-nearest
// candidate edges, with leftover path fragments linked nearest-first.
func GreedyEdge(pts []geom.Point) Tour {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n)
	}
	if n > greedyEdgeDenseMax {
		return greedyEdgeSparse(pts)
	}
	type edge struct {
		u, v int
		w    float64
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{i, j, pts[i].Dist2(pts[j])})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].w < edges[b].w })
	deg := make([]int, n)
	uf := graph.NewUnionFind(n)
	adj := make([][2]int, n)
	for i := range adj {
		adj[i] = [2]int{-1, -1}
	}
	added := 0
	for _, e := range edges {
		if added == n {
			break
		}
		if deg[e.u] >= 2 || deg[e.v] >= 2 {
			continue
		}
		if uf.Connected(e.u, e.v) && added != n-1 {
			continue // would close a subtour early
		}
		uf.Union(e.u, e.v)
		adj[e.u][deg[e.u]] = e.v
		adj[e.v][deg[e.v]] = e.u
		deg[e.u]++
		deg[e.v]++
		added++
	}
	// Walk the cycle.
	tour := make(Tour, 0, n)
	prev, cur := -1, 0
	for len(tour) < n {
		tour = append(tour, cur)
		next := adj[cur][0]
		if next == prev {
			next = adj[cur][1]
		}
		prev, cur = cur, next
	}
	return tour
}

// greedyEdgeSparse is greedy-edge over the k-nearest candidate edge set:
// O(nk) edges instead of O(n²). Almost every edge the dense construction
// actually uses connects near neighbours, so the tours are near-identical
// in length; the local searches erase the rest of the gap. The candidate
// pass generally leaves a forest of path fragments (a point whose k
// nearest are all full keeps degree < 2), so a second pass links fragment
// endpoints nearest-first through a kd-tree, then closes the cycle.
func greedyEdgeSparse(pts []geom.Point) Tour {
	n := len(pts)
	neigh := neighborLists(pts, neighborK)
	type edge struct {
		u, v int32
		w    float64
	}
	edges := make([]edge, 0, n*neighborK)
	for u, list := range neigh {
		for _, v := range list {
			// Normalise so both directions of a mutual pair collide; the
			// duplicate is skipped by the degree/component checks.
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			edges = append(edges, edge{int32(a), int32(b), pts[a].Dist2(pts[b])})
		}
	}
	// Ties sorted by (w, u, v) keep the edge order — and thus the tour —
	// independent of neighbour-list assembly order.
	sort.Slice(edges, func(a, b int) bool {
		//mdglint:ignore floateq sort comparator needs exact ordering; an epsilon would break strict weak ordering
		if edges[a].w != edges[b].w {
			return edges[a].w < edges[b].w
		}
		if edges[a].u != edges[b].u {
			return edges[a].u < edges[b].u
		}
		return edges[a].v < edges[b].v
	})
	deg := make([]int, n)
	uf := graph.NewUnionFind(n)
	adj := make([][2]int, n)
	for i := range adj {
		adj[i] = [2]int{-1, -1}
	}
	added := 0
	link := func(u, v int) {
		uf.Union(u, v)
		adj[u][deg[u]] = v
		adj[v][deg[v]] = u
		deg[u]++
		deg[v]++
		added++
	}
	for _, e := range edges {
		if added == n-1 {
			break
		}
		u, v := int(e.u), int(e.v)
		if deg[u] >= 2 || deg[v] >= 2 || uf.Connected(u, v) {
			continue
		}
		link(u, v)
	}
	// Link the remaining fragments: for the lowest-index endpoint, attach
	// the nearest endpoint of another fragment, until one path remains.
	kt := geom.NewKDTree(pts)
	scan := 0
	for added < n-1 {
		u := -1
		for i := scan; i < n; i++ {
			if deg[i] < 2 {
				u, scan = i, i
				break
			}
		}
		v, _ := kt.Nearest(pts[u], func(j int) bool {
			return j == u || deg[j] >= 2 || uf.Connected(u, j)
		})
		link(u, v)
	}
	// Close the Hamiltonian path into a cycle.
	a, b := -1, -1
	for i := 0; i < n; i++ {
		if deg[i] < 2 {
			if a < 0 {
				a = i
			} else {
				b = i
			}
		}
	}
	link(a, b)
	tour := make(Tour, 0, n)
	prev, cur := -1, 0
	for len(tour) < n {
		tour = append(tour, cur)
		next := adj[cur][0]
		if next == prev {
			next = adj[cur][1]
		}
		prev, cur = cur, next
	}
	return tour
}

// CheapestInsertion builds a tour by starting from the two closest points
// and repeatedly inserting the point whose best insertion position costs
// the least extra length.
func CheapestInsertion(pts []geom.Point) Tour {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n)
	}
	// Seed with the closest pair.
	bi, bj, best := 0, 1, math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := pts[i].Dist2(pts[j]); d < best {
				bi, bj, best = i, j, d
			}
		}
	}
	tour := Tour{bi, bj}
	in := make([]bool, n)
	in[bi], in[bj] = true, true
	for len(tour) < n {
		bestPt, bestPos, bestCost := -1, -1, math.Inf(1)
		for p := 0; p < n; p++ {
			if in[p] {
				continue
			}
			for i := 0; i < len(tour); i++ {
				j := (i + 1) % len(tour)
				cost := pts[tour[i]].Dist(pts[p]) + pts[p].Dist(pts[tour[j]]) - pts[tour[i]].Dist(pts[tour[j]])
				if cost < bestCost {
					bestPt, bestPos, bestCost = p, i+1, cost
				}
			}
		}
		tour = append(tour, 0)
		copy(tour[bestPos+1:], tour[bestPos:])
		tour[bestPos] = bestPt
		in[bestPt] = true
	}
	return tour
}

// HullInsertion builds a tour starting from the convex hull of the points
// (which every optimal Euclidean tour visits in hull order) and inserts
// the interior points by cheapest insertion.
func HullInsertion(pts []geom.Point) Tour {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n)
	}
	hull := geom.ConvexHull(pts)
	if len(hull) < 3 {
		return CheapestInsertion(pts)
	}
	// Map hull points back to indices (first match wins; duplicates are
	// inserted later like interior points).
	in := make([]bool, n)
	var tour Tour
	for _, hp := range hull {
		for i, p := range pts {
			if !in[i] && p.Eq(hp) {
				tour = append(tour, i)
				in[i] = true
				break
			}
		}
	}
	for len(tour) < n {
		bestPt, bestPos, bestCost := -1, -1, math.Inf(1)
		for p := 0; p < n; p++ {
			if in[p] {
				continue
			}
			for i := 0; i < len(tour); i++ {
				j := (i + 1) % len(tour)
				cost := pts[tour[i]].Dist(pts[p]) + pts[p].Dist(pts[tour[j]]) - pts[tour[i]].Dist(pts[tour[j]])
				if cost < bestCost {
					bestPt, bestPos, bestCost = p, i+1, cost
				}
			}
		}
		tour = append(tour, 0)
		copy(tour[bestPos+1:], tour[bestPos:])
		tour[bestPos] = bestPt
		in[bestPt] = true
	}
	return tour
}

// DoubleTree builds the classic MST 2-approximation: compute a minimum
// spanning tree, walk it in preorder, and shortcut repeated vertices. The
// result is guaranteed to be at most twice the optimal tour length in any
// metric space.
func DoubleTree(pts []geom.Point) Tour {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n)
	}
	parent, _ := graph.CompleteEuclideanMST(n, func(i, j int) float64 { return pts[i].Dist(pts[j]) })
	tree := graph.NewTreeFromParents(0, parent)
	return Tour(tree.Preorder())
}
