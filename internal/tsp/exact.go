package tsp

import (
	"fmt"
	"math"

	"mobicol/internal/geom"
)

// HeldKarpMax is the largest instance HeldKarp accepts: the DP table holds
// n·2^n float64s, so 18 points cost ~38 MB — the practical ceiling.
const HeldKarpMax = 18

// HeldKarp solves the TSP exactly by Bellman–Held–Karp dynamic programming
// in O(n²·2ⁿ) time. It returns the optimal closed tour. Instances larger
// than HeldKarpMax return an error; use BranchBound or a heuristic instead.
func HeldKarp(pts []geom.Point) (Tour, error) {
	n := len(pts)
	if n > HeldKarpMax {
		return nil, fmt.Errorf("tsp: HeldKarp limited to %d points, got %d", HeldKarpMax, n)
	}
	if n <= 3 {
		return trivialTour(n), nil
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = pts[i].Dist(pts[j])
		}
	}
	// dp[mask][v]: shortest path visiting exactly the set mask (which must
	// contain 0 and v), starting at 0 and ending at v.
	size := 1 << uint(n)
	dp := make([][]float64, size)
	parent := make([][]int8, size)
	for m := range dp {
		dp[m] = make([]float64, n)
		parent[m] = make([]int8, n)
		for v := range dp[m] {
			dp[m][v] = math.Inf(1)
			parent[m][v] = -1
		}
	}
	dp[1][0] = 0
	for mask := 1; mask < size; mask++ {
		if mask&1 == 0 {
			continue // every partial path starts at 0
		}
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) == 0 || math.IsInf(dp[mask][v], 1) {
				continue
			}
			base := dp[mask][v]
			for w := 1; w < n; w++ {
				if mask&(1<<uint(w)) != 0 {
					continue
				}
				nm := mask | 1<<uint(w)
				if nd := base + d[v][w]; nd < dp[nm][w] {
					dp[nm][w] = nd
					parent[nm][w] = int8(v)
				}
			}
		}
	}
	full := size - 1
	bestV, best := -1, math.Inf(1)
	for v := 1; v < n; v++ {
		if c := dp[full][v] + d[v][0]; c < best {
			bestV, best = v, c
		}
	}
	// Reconstruct.
	tour := make(Tour, 0, n)
	mask, v := full, bestV
	for v != -1 {
		tour = append(tour, v)
		pv := parent[mask][v]
		mask &^= 1 << uint(v)
		v = int(pv)
	}
	// tour is reversed and ends at 0.
	for i, j := 0, len(tour)-1; i < j; i, j = i+1, j-1 {
		tour[i], tour[j] = tour[j], tour[i]
	}
	return tour, nil
}

// BranchBound solves the TSP exactly by depth-first branch and bound with
// an MST lower bound on the unvisited remainder. maxNodes caps the search
// (0 means no cap); when the cap trips, the best tour found so far is
// returned with exact=false.
func BranchBound(pts []geom.Point, maxNodes int) (tour Tour, exact bool) {
	n := len(pts)
	if n <= 3 {
		return trivialTour(n), true
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = pts[i].Dist(pts[j])
		}
	}
	// Seed the incumbent with a good heuristic tour: tight incumbents
	// prune far more of the search tree.
	incumbent := NearestNeighbor(pts, 0)
	TwoOpt(pts, incumbent)
	OrOpt(pts, incumbent)
	//mdglint:ignore unitcheck hot search boundary: branch & bound prunes on the raw distance matrix
	bestLen := float64(incumbent.Length(pts))
	best := incumbent.Clone()

	visited := make([]bool, n)
	visited[0] = true
	path := make([]int, 1, n)
	path[0] = 0
	nodes := 0
	exact = true

	// mstBound lower-bounds the cost to complete the path: the MST over
	// {last} ∪ unvisited ∪ {0} connects everything the remaining tour must.
	mstBound := func(last int) float64 {
		var rem []int
		rem = append(rem, last)
		for v := 1; v < n; v++ {
			if !visited[v] {
				rem = append(rem, v)
			}
		}
		rem = append(rem, 0)
		// Dense Prim over rem.
		m := len(rem)
		inTree := make([]bool, m)
		bestD := make([]float64, m)
		for i := range bestD {
			bestD[i] = math.Inf(1)
		}
		bestD[0] = 0
		total := 0.0
		for it := 0; it < m; it++ {
			u, ud := -1, math.Inf(1)
			for v := 0; v < m; v++ {
				if !inTree[v] && bestD[v] < ud {
					u, ud = v, bestD[v]
				}
			}
			inTree[u] = true
			total += ud
			for v := 0; v < m; v++ {
				if !inTree[v] {
					if w := d[rem[u]][rem[v]]; w < bestD[v] {
						bestD[v] = w
					}
				}
			}
		}
		return total
	}

	var rec func(last int, length float64)
	rec = func(last int, length float64) {
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			exact = false
			return
		}
		if len(path) == n {
			if total := length + d[last][0]; total < bestLen {
				bestLen = total
				best = append(best[:0], path...)
			}
			return
		}
		if length+mstBound(last) >= bestLen-1e-12 {
			return
		}
		// Branch to unvisited vertices, nearest first.
		order := make([]int, 0, n)
		for v := 1; v < n; v++ {
			if !visited[v] {
				order = append(order, v)
			}
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && d[last][order[j]] < d[last][order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, v := range order {
			visited[v] = true
			path = append(path, v)
			rec(v, length+d[last][v])
			path = path[:len(path)-1]
			visited[v] = false
			if maxNodes > 0 && nodes > maxNodes {
				return
			}
		}
	}
	rec(0, 0)
	return best, exact
}
