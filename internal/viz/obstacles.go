package viz

import (
	"fmt"
	"io"
	"strings"

	"mobicol/internal/geom"
	"mobicol/internal/obstacle"
	"mobicol/internal/wsn"
)

// RenderObstacleTour writes an SVG of the network, the obstacle course,
// and the driven waypoint polyline of an obstacle-aware tour.
func RenderObstacleTour(w io.Writer, nw *wsn.Network, course *obstacle.Course, tour *obstacle.Tour, st Style) error {
	if st.Scale <= 0 {
		st = DefaultStyle()
	}
	f := nw.Field.Expand(st.Margin)
	px := func(p geom.Point) (float64, float64) {
		return (p.X - f.Min.X) * st.Scale, (f.Max.Y - p.Y) * st.Scale
	}
	var b strings.Builder
	wpx, hpx := f.Width()*st.Scale, f.Height()*st.Scale
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", wpx, hpx, wpx, hpx)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="#ffffff"/>`+"\n", wpx, hpx)
	// Obstacles first, as filled polygons.
	for _, poly := range course.Obstacles {
		var pts strings.Builder
		for i, v := range poly.V {
			x, y := px(v)
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="#555555" fill-opacity="0.55" stroke="#222222"/>`+"\n", pts.String())
	}
	// Driven polyline.
	if tour != nil && len(tour.Waypoints) > 1 {
		var pts strings.Builder
		for i, p := range tour.Waypoints {
			x, y := px(p)
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", pts.String(), st.TourColor)
		for _, s := range tour.Stops {
			x, y := px(s)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="6" height="6" fill="%s"/>`+"\n", x-3, y-3, st.StopColor)
		}
	}
	for _, node := range nw.Nodes {
		x, y := px(node.Pos)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`+"\n", x, y, st.SensorColor)
	}
	sx, sy := px(nw.Sink)
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="5" fill="%s" stroke="#000000"/>`+"\n", sx, sy, st.SinkColor)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
