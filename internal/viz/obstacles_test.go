package viz

import (
	"bytes"
	"strings"
	"testing"

	"mobicol/internal/geom"
	"mobicol/internal/obstacle"
	"mobicol/internal/wsn"
)

func TestRenderObstacleTour(t *testing.T) {
	course, err := obstacle.NewCourse(
		obstacle.Rectangle(geom.NewRect(geom.Pt(60, 60), geom.Pt(90, 90))),
	)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := obstacle.DeployAround(wsn.Config{N: 60, FieldSide: 200, Range: 30, Seed: 5}, course)
	if err != nil {
		t.Fatal(err)
	}
	tour, err := obstacle.PlanTour(nw, course)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderObstacleTour(&buf, nw, course, tour, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.Contains(svg, "<polygon") {
		t.Fatal("obstacle polygon missing")
	}
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("waypoint polyline missing")
	}
	if strings.Count(svg, "<circle") < nw.N() {
		t.Fatal("sensors missing")
	}
}

func TestRenderObstacleTourNilTour(t *testing.T) {
	course, err := obstacle.NewCourse()
	if err != nil {
		t.Fatal(err)
	}
	nw := wsn.MustDeploy(wsn.Config{N: 10, FieldSide: 100, Range: 30, Seed: 1})
	var buf bytes.Buffer
	if err := RenderObstacleTour(&buf, nw, course, nil, Style{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<polyline") {
		t.Fatal("polyline rendered without a tour")
	}
}
