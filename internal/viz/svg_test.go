package viz

import (
	"bytes"
	"strings"
	"testing"

	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

func TestRenderTourWellFormed(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 60, FieldSide: 150, Range: 25, Seed: 2})
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTour(&buf, nw, sol.Plan, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("output is not an SVG document")
	}
	if got := strings.Count(svg, "<circle"); got < nw.N()+1 { // sensors + sink
		t.Fatalf("only %d circles for %d sensors", got, nw.N())
	}
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("tour polyline missing")
	}
	if strings.Count(svg, "<rect") < sol.Stops() {
		t.Fatal("stop markers missing")
	}
}

func TestRenderTourNilPlan(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 20, FieldSide: 100, Range: 25, Seed: 3})
	var buf bytes.Buffer
	if err := RenderTour(&buf, nw, nil, Style{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Fatal("sensors not rendered without a plan")
	}
	if strings.Contains(buf.String(), "<polyline") {
		t.Fatal("polyline rendered without a plan")
	}
}
