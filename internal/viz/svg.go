// Package viz renders deployments, covers, and tours to SVG using only the
// standard library. cmd/mdgplan uses it so a planned tour can be inspected
// visually, mirroring the figures in the paper.
package viz

import (
	"fmt"
	"io"
	"strings"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

// Style configures rendering.
type Style struct {
	Scale       float64 // pixels per metre (default 3)
	Margin      float64 // margin in metres (default 10)
	ShowRanges  bool    // draw stop coverage disks
	SensorColor string
	StopColor   string
	TourColor   string
	SinkColor   string
}

// DefaultStyle returns the default palette.
func DefaultStyle() Style {
	return Style{
		Scale:       3,
		Margin:      10,
		ShowRanges:  true,
		SensorColor: "#4477aa",
		StopColor:   "#cc3311",
		TourColor:   "#cc3311",
		SinkColor:   "#228833",
	}
}

// RenderTour writes an SVG of the network and (optionally nil) tour plan.
func RenderTour(w io.Writer, nw *wsn.Network, plan *collector.TourPlan, st Style) error {
	if st.Scale <= 0 {
		st = DefaultStyle()
	}
	f := nw.Field.Expand(st.Margin)
	px := func(p geom.Point) (float64, float64) {
		// SVG y grows downward; flip so the field reads like the paper's
		// figures.
		return (p.X - f.Min.X) * st.Scale, (f.Max.Y - p.Y) * st.Scale
	}
	var b strings.Builder
	wpx, hpx := f.Width()*st.Scale, f.Height()*st.Scale
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", wpx, hpx, wpx, hpx)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="#ffffff"/>`+"\n", wpx, hpx)

	// Field border.
	x0, y0 := px(geom.Pt(nw.Field.Min.X, nw.Field.Max.Y))
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#bbbbbb"/>`+"\n",
		x0, y0, nw.Field.Width()*st.Scale, nw.Field.Height()*st.Scale)

	if plan != nil {
		// Coverage disks behind everything else.
		if st.ShowRanges {
			for _, s := range plan.Stops {
				cx, cy := px(s)
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.07" stroke="none"/>`+"\n",
					cx, cy, nw.Range*st.Scale, st.StopColor)
			}
		}
		// Tour polyline: sink -> stops -> sink.
		pts := append([]geom.Point{plan.Sink}, plan.Stops...)
		pts = append(pts, plan.Sink)
		var poly strings.Builder
		for i, p := range pts {
			cx, cy := px(p)
			if i > 0 {
				poly.WriteByte(' ')
			}
			fmt.Fprintf(&poly, "%.1f,%.1f", cx, cy)
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", poly.String(), st.TourColor)
		// Upload assignments as faint spokes.
		for i, sIdx := range plan.UploadAt {
			if sIdx < 0 {
				continue
			}
			ax, ay := px(nw.Nodes[i].Pos)
			bx, by := px(plan.Stops[sIdx])
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999999" stroke-width="0.4"/>`+"\n", ax, ay, bx, by)
		}
		for _, s := range plan.Stops {
			cx, cy := px(s)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="6" height="6" fill="%s"/>`+"\n", cx-3, cy-3, st.StopColor)
		}
	}
	for _, node := range nw.Nodes {
		cx, cy := px(node.Pos)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`+"\n", cx, cy, st.SensorColor)
	}
	sx, sy := px(nw.Sink)
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="5" fill="%s" stroke="#000000"/>`+"\n", sx, sy, st.SinkColor)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
