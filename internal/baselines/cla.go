// Package baselines implements the comparison schemes the paper evaluates
// against:
//
//   - CLA, the covering-line approximation: the collector sweeps parallel
//     straight lines spaced so that every sensor is within range of some
//     line, uploading in a single hop as the collector passes.
//   - The straight-line data mule (after Jea et al.): the collector is
//     confined to fixed tracks; out-of-range sensors relay packets over
//     multiple hops toward track-adjacent sensors.
//   - The static sink: no mobility at all, pure multi-hop relay routing
//     (implemented in internal/routing; wrapped here for the harness).
//   - Visit-all TSP: the d = 0 extreme where the collector drives to
//     every sensor (implemented in internal/shdgp.PlanVisitAll).
package baselines

import (
	"fmt"
	"math"
	"sort"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

// PlanCLA builds the covering-line approximation tour. Horizontal sweep
// lines are placed so their spacing never exceeds 2·R (every sensor is
// within R of a line); each line is trimmed to the x-extent of the sensors
// it serves, lines with no sensors are skipped, and consecutive lines are
// joined serpentine-fashion. The tour starts and ends at the sink. Every
// sensor uploads in a single hop when the collector passes the nearest
// point of its line, so the upload stop recorded for sensor i is its
// projection onto the assigned line.
func PlanCLA(nw *wsn.Network) (*collector.TourPlan, error) {
	n := nw.N()
	if n == 0 {
		return nil, fmt.Errorf("baselines: CLA on empty network")
	}
	r := nw.Range
	field := nw.Field
	// Place lines every 2R starting R above the field bottom; clamp the
	// topmost line into the field.
	var ys []float64
	for y := field.Min.Y + r; y < field.Max.Y+r; y += 2 * r {
		ys = append(ys, math.Min(y, field.Max.Y))
	}
	// Assign each sensor to the nearest line; verify coverage.
	lineOf := make([]int, n)
	for i, node := range nw.Nodes {
		best, bd := -1, math.Inf(1)
		for li, y := range ys {
			if d := math.Abs(node.Pos.Y - y); d < bd {
				best, bd = li, d
			}
		}
		if bd > r+geom.Eps {
			return nil, fmt.Errorf("baselines: CLA line spacing leaves sensor %d uncovered (%.2fm)", i, bd)
		}
		lineOf[i] = best
	}
	// Trim each occupied line to its sensors' x-extent.
	type segment struct {
		y, x0, x1 float64
		any       bool
	}
	segs := make([]segment, len(ys))
	for li, y := range ys {
		segs[li] = segment{y: y, x0: math.Inf(1), x1: math.Inf(-1)}
	}
	for i, node := range nw.Nodes {
		s := &segs[lineOf[i]]
		s.any = true
		s.x0 = math.Min(s.x0, node.Pos.X)
		s.x1 = math.Max(s.x1, node.Pos.X)
	}
	occupied := segs[:0]
	for _, s := range segs {
		if s.any {
			occupied = append(occupied, s)
		}
	}
	sort.Slice(occupied, func(i, j int) bool { return occupied[i].y < occupied[j].y })

	// Serpentine: traverse lines bottom-up, alternating direction, with
	// each line's endpoints as tour stops. Remember the stop index of
	// each line's left endpoint so sensors can be anchored later.
	var stops []geom.Point
	lineStart := make(map[float64]int, len(occupied)) // y -> index of first stop of that line
	leftToRight := true
	for _, s := range occupied {
		a, b := geom.Pt(s.x0, s.y), geom.Pt(s.x1, s.y)
		if !leftToRight {
			a, b = b, a
		}
		lineStart[s.y] = len(stops)
		stops = append(stops, a)
		if !a.Eq(b) {
			stops = append(stops, b)
		}
		leftToRight = !leftToRight
	}
	// Upload stops: each sensor uploads as the collector passes its
	// projection onto its line. Executable plans need a discrete stop, so
	// insert per-sensor projection stops only logically: assign the
	// sensor to the nearer endpoint stop of its line. The tour length is
	// unchanged (the projection lies on the driven segment), and the
	// single-hop property holds for the vertical component; Validate is
	// therefore called with the line-distance semantics by the caller.
	uploadAt := make([]int, n)
	for i, node := range nw.Nodes {
		y := ys[lineOf[i]]
		start := lineStart[y]
		uploadAt[i] = start
		//mdglint:ignore floateq stop Y coordinates are copied verbatim from ys, so equality is exact by construction
		if start+1 < len(stops) && stops[start+1].Y == y {
			if node.Pos.Dist2(stops[start+1]) < node.Pos.Dist2(stops[start]) {
				uploadAt[i] = start + 1
			}
		}
	}
	return &collector.TourPlan{Sink: nw.Sink, Stops: stops, UploadAt: uploadAt}, nil
}

// CLAUploadDistance returns the true single-hop upload distance of sensor
// i under CLA semantics: the perpendicular distance to its sweep line
// (the collector passes the sensor's projection). Energy accounting uses
// this rather than the endpoint-stop distance.
func CLAUploadDistance(nw *wsn.Network, plan *collector.TourPlan, i int) float64 {
	stop := plan.Stops[plan.UploadAt[i]]
	return math.Abs(nw.Nodes[i].Pos.Y - stop.Y)
}
