package baselines

import (
	"math"
	"testing"

	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

func TestPlanCLACoversAllSensors(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		nw := wsn.MustDeploy(wsn.Config{N: 150, FieldSide: 200, Range: 30, Seed: seed})
		plan, err := PlanCLA(nw)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if plan.Served() != nw.N() {
			t.Fatalf("seed %d: CLA serves %d of %d", seed, plan.Served(), nw.N())
		}
		// Single-hop property in CLA semantics: perpendicular distance to
		// the line is within range.
		for i := range nw.Nodes {
			if d := CLAUploadDistance(nw, plan, i); d > nw.Range+1e-9 {
				t.Fatalf("seed %d: sensor %d uploads over %.2fm", seed, i, d)
			}
		}
	}
}

func TestCLAStopsOnLines(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 80, FieldSide: 150, Range: 25, Seed: 3})
	plan, err := PlanCLA(nw)
	if err != nil {
		t.Fatal(err)
	}
	// Stops come in per-line groups with constant y.
	for i, s := range plan.Stops {
		onLine := false
		for y := nw.Field.Min.Y + nw.Range; y < nw.Field.Max.Y+nw.Range; y += 2 * nw.Range {
			if math.Abs(s.Y-math.Min(y, nw.Field.Max.Y)) < 1e-9 {
				onLine = true
				break
			}
		}
		if !onLine {
			t.Fatalf("stop %d at %v is not on a sweep line", i, s)
		}
	}
}

func TestCLATourLongerThanFieldWidthTimesLines(t *testing.T) {
	// With a dense uniform deployment, each occupied line spans nearly the
	// whole field, so the tour must be at least (#lines - small) * width.
	nw := wsn.MustDeploy(wsn.Config{N: 400, FieldSide: 200, Range: 25, Seed: 4})
	plan, err := PlanCLA(nw)
	if err != nil {
		t.Fatal(err)
	}
	lines := int(math.Ceil(200.0 / 50.0))
	if float64(plan.Length()) < float64(lines-1)*180 {
		t.Fatalf("CLA tour %.1f suspiciously short for %d lines", plan.Length(), lines)
	}
}

func TestCLAEmptyNetwork(t *testing.T) {
	nw := wsn.New(nil, geom.Pt(0, 0), 10, geom.Square(100))
	if _, err := PlanCLA(nw); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestStraightLineChainRelay(t *testing.T) {
	// Field 100x100, one track at y=50. Sensors: one on the track, a
	// chain reaching away from it, and one stranded far sensor.
	pts := []geom.Point{
		geom.Pt(50, 52), // adjacent (2 m from track, r=10)
		geom.Pt(50, 68), // two hops: via 2 then 0
		geom.Pt(50, 61), // 11 m from track: one hop via 0
		geom.Pt(95, 95), // stranded
	}
	nw := wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(100))
	p, err := PlanStraightLine(nw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Hops[0] != 0 {
		t.Fatalf("on-track sensor hops = %d", p.Hops[0])
	}
	if p.Hops[2] != 1 || p.Hops[1] != 2 {
		t.Fatalf("chain hops = %v", p.Hops)
	}
	if len(p.Stranded) != 1 || p.Stranded[0] != 3 {
		t.Fatalf("Stranded = %v", p.Stranded)
	}
	if got := p.CoverageFraction(); got != 0.75 {
		t.Fatalf("coverage = %v", got)
	}
}

func TestStraightLineLoads(t *testing.T) {
	pts := []geom.Point{geom.Pt(50, 52), geom.Pt(50, 61), geom.Pt(50, 70)}
	nw := wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(100))
	p, err := PlanStraightLine(nw, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 1}
	for i, w := range want {
		if p.Load[i] != w {
			t.Fatalf("Load = %v, want %v", p.Load, want)
		}
	}
}

func TestStraightLineTourLengthIndependentOfDeployment(t *testing.T) {
	a := wsn.MustDeploy(wsn.Config{N: 50, FieldSide: 200, Range: 30, Seed: 1})
	b := wsn.MustDeploy(wsn.Config{N: 500, FieldSide: 200, Range: 30, Seed: 2})
	pa, err := PlanStraightLine(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := PlanStraightLine(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(pa.TourLength()-pb.TourLength())) > 1e-9 {
		t.Fatalf("fixed-track tour varies with deployment: %v vs %v", pa.TourLength(), pb.TourLength())
	}
	if pa.TourLength() < 3*200 {
		t.Fatalf("3-track tour %.1f shorter than the tracks themselves", pa.TourLength())
	}
}

func TestStraightLineMoreTracksMoreCoverage(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 200, FieldSide: 400, Range: 25, Seed: 9})
	p1, err := PlanStraightLine(nw, 1)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := PlanStraightLine(nw, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p5.CoverageFraction() < p1.CoverageFraction()-1e-9 {
		t.Fatalf("coverage dropped with more tracks: %v -> %v", p1.CoverageFraction(), p5.CoverageFraction())
	}
	if p5.AvgHops() > p1.AvgHops()+1e-9 {
		t.Fatalf("avg hops grew with more tracks: %v -> %v", p1.AvgHops(), p5.AvgHops())
	}
}

func TestStraightLineAllStranded(t *testing.T) {
	// One sensor far from the single track through the middle.
	pts := []geom.Point{geom.Pt(5, 5)}
	nw := wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(200))
	p, err := PlanStraightLine(nw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stranded) != 1 || p.CoverageFraction() != 0 {
		t.Fatalf("Stranded = %v, coverage %v", p.Stranded, p.CoverageFraction())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStraightLineRejectsBadArgs(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 10, FieldSide: 100, Range: 20, Seed: 1})
	if _, err := PlanStraightLine(nw, 0); err == nil {
		t.Fatal("zero tracks accepted")
	}
	empty := wsn.New(nil, geom.Pt(0, 0), 10, geom.Square(100))
	if _, err := PlanStraightLine(empty, 1); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestUploadDistanceWithinRangeForAdjacent(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 300, FieldSide: 200, Range: 30, Seed: 10})
	p, err := PlanStraightLine(nw, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nw.Nodes {
		if p.Hops[i] == 0 {
			if d := p.UploadDistance(i); d > nw.Range+1e-9 {
				t.Fatalf("adjacent sensor %d upload distance %.2f exceeds range", i, d)
			}
		}
	}
}
