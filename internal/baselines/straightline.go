package baselines

import (
	"fmt"
	"math"

	"mobicol/internal/geom"
	"mobicol/internal/graph"
	"mobicol/internal/wsn"
)

// StraightLinePlan models the data-mule baseline with uncontrolled
// trajectory: the collector shuttles along fixed horizontal tracks (the
// middle track through the field centre), and sensors out of range of any
// track relay packets over multiple hops toward the nearest track-adjacent
// sensor.
type StraightLinePlan struct {
	Net    *wsn.Network
	Tracks []geom.Segment
	// NextHop[i] is the relay target of sensor i, -1 when i is
	// track-adjacent (uploads directly as the collector passes), and -2
	// when i has no multi-hop path to any track-adjacent sensor.
	NextHop []int
	// Hops[i] is the relay hop count of sensor i's packets before the
	// final upload (0 for track-adjacent sensors, -1 for stranded ones).
	Hops []int
	// Load[i] is the packets sensor i transmits per round.
	Load []int
	// Stranded lists sensors whose data never reaches the collector.
	Stranded []int
}

// PlanStraightLine builds the plan with the given number of evenly spaced
// horizontal tracks (>= 1). With one track it runs through the field
// centre; with k tracks they split the field height evenly, mirroring the
// straight-track configurations in the paper's comparison.
func PlanStraightLine(nw *wsn.Network, tracks int) (*StraightLinePlan, error) {
	if tracks <= 0 {
		return nil, fmt.Errorf("baselines: need at least one track, got %d", tracks)
	}
	if nw.N() == 0 {
		return nil, fmt.Errorf("baselines: straight-line plan on empty network")
	}
	field := nw.Field
	p := &StraightLinePlan{Net: nw}
	for t := 0; t < tracks; t++ {
		y := field.Min.Y + field.Height()*(float64(t)+0.5)/float64(tracks)
		p.Tracks = append(p.Tracks, geom.Seg(geom.Pt(field.Min.X, y), geom.Pt(field.Max.X, y)))
	}
	n := nw.N()
	p.NextHop = make([]int, n)
	p.Hops = make([]int, n)
	p.Load = make([]int, n)

	// Track-adjacent sensors: within range of some track segment.
	var adjacent []int
	isAdjacent := make([]bool, n)
	for i, node := range nw.Nodes {
		for _, tr := range p.Tracks {
			if tr.Dist(node.Pos) <= nw.Range+geom.Eps {
				isAdjacent[i] = true
				adjacent = append(adjacent, i)
				break
			}
		}
	}
	if len(adjacent) == 0 {
		// Nothing uploads; everyone is stranded.
		for i := range p.NextHop {
			p.NextHop[i] = -2
			p.Hops[i] = -1
			p.Stranded = append(p.Stranded, i)
		}
		return p, nil
	}
	r := graph.MultiBFS(nw.Graph(), adjacent)
	for i := 0; i < n; i++ {
		switch {
		case isAdjacent[i]:
			p.NextHop[i] = -1
			p.Hops[i] = 0
		case r.Dist[i] > 0:
			p.NextHop[i] = r.Parent[i]
			p.Hops[i] = r.Dist[i]
		default:
			p.NextHop[i] = -2
			p.Hops[i] = -1
			p.Stranded = append(p.Stranded, i)
		}
	}
	for i := 0; i < n; i++ {
		if p.NextHop[i] == -2 {
			continue
		}
		for v := i; v != -1; v = p.NextHop[v] {
			p.Load[v]++
		}
	}
	return p, nil
}

// TourLength returns the fixed per-round driving distance: from the sink
// to the first track, along every track, between consecutive tracks along
// the field border, and back to the sink. The tracks are fixed
// infrastructure, so this length is independent of the deployment — the
// defining property (and weakness) of the scheme.
func (p *StraightLinePlan) TourLength() geom.Meters {
	total := 0.0
	cur := p.Net.Sink
	for i, tr := range p.Tracks {
		// Enter at the near end.
		a, b := tr.A, tr.B
		if cur.Dist(b) < cur.Dist(a) {
			a, b = b, a
		}
		total += cur.Dist(a) + a.Dist(b)
		cur = b
		_ = i
	}
	return geom.Meters(total + cur.Dist(p.Net.Sink))
}

// UploadDistance returns the single-hop upload distance of track-adjacent
// sensor i (distance to the nearest point of its nearest track).
func (p *StraightLinePlan) UploadDistance(i int) float64 {
	best := math.Inf(1)
	for _, tr := range p.Tracks {
		best = math.Min(best, tr.Dist(p.Net.Nodes[i].Pos))
	}
	return best
}

// CoverageFraction returns the fraction of sensors whose data reaches the
// collector.
func (p *StraightLinePlan) CoverageFraction() float64 {
	if p.Net.N() == 0 {
		return 1
	}
	return float64(p.Net.N()-len(p.Stranded)) / float64(p.Net.N())
}

// AvgHops returns the mean relay hop count over served sensors.
func (p *StraightLinePlan) AvgHops() float64 {
	sum, cnt := 0, 0
	for _, h := range p.Hops {
		if h >= 0 {
			sum += h
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// Validate checks forwarding-chain invariants.
func (p *StraightLinePlan) Validate() error {
	n := p.Net.N()
	for i := 0; i < n; i++ {
		if p.NextHop[i] == -2 {
			continue
		}
		steps := 0
		for v := i; v != -1; v = p.NextHop[v] {
			if v == -2 || steps > n {
				return fmt.Errorf("baselines: bad forwarding chain from sensor %d", i)
			}
			steps++
		}
		if steps-1 != p.Hops[i] {
			return fmt.Errorf("baselines: sensor %d chain length %d != hops %d", i, steps-1, p.Hops[i])
		}
	}
	return nil
}
