// Package obstacle adds physical obstacles to the sensing field and plans
// tours around them. The paper's M-collector line of work (SenCar)
// explicitly motivates trajectory planning that avoids obstacles; here
// obstacles are simple polygons that block the collector's *movement* but
// not radio (a parked vehicle still hears its sensors; document deviations
// per deployment if needed).
//
// The machinery is the classic one: a visibility graph over obstacle
// vertices plus query points, Dijkstra shortest paths on it, and a
// distance matrix that the matrix-TSP solver turns into an obstacle-aware
// tour. Physical waypoint polylines are recovered per tour leg.
package obstacle

import (
	"fmt"
	"math"

	"mobicol/internal/geom"
)

// Polygon is a simple polygon given by its vertices in counter-clockwise
// order. Obstacles must not intersect each other.
type Polygon struct {
	V []geom.Point
}

// Rectangle returns the axis-aligned rectangular obstacle spanning r.
func Rectangle(r geom.Rect) Polygon {
	return Polygon{V: []geom.Point{
		r.Min,
		{X: r.Max.X, Y: r.Min.Y},
		r.Max,
		{X: r.Min.X, Y: r.Max.Y},
	}}
}

// Validate checks the polygon is usable: at least 3 vertices and
// counter-clockwise orientation.
func (p Polygon) Validate() error {
	if len(p.V) < 3 {
		return fmt.Errorf("obstacle: polygon needs >= 3 vertices, has %d", len(p.V))
	}
	if p.signedArea() <= 0 {
		return fmt.Errorf("obstacle: polygon vertices must be counter-clockwise")
	}
	return nil
}

func (p Polygon) signedArea() float64 {
	sum := 0.0
	for i := range p.V {
		j := (i + 1) % len(p.V)
		sum += p.V[i].Cross(p.V[j])
	}
	return sum / 2
}

// Contains reports whether q lies strictly inside the polygon (boundary
// points count as outside, so paths may run along obstacle walls).
func (p Polygon) Contains(q geom.Point) bool {
	// Ray casting with boundary exclusion.
	for i := range p.V {
		j := (i + 1) % len(p.V)
		if geom.Seg(p.V[i], p.V[j]).Dist(q) <= geom.Eps {
			return false
		}
	}
	inside := false
	for i := range p.V {
		j := (i + 1) % len(p.V)
		a, b := p.V[i], p.V[j]
		if (a.Y > q.Y) != (b.Y > q.Y) {
			x := a.X + (q.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if q.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// blocks reports whether the open segment (a, b) passes through the
// polygon's interior. Segments touching only the boundary (grazing a wall
// or pivoting on a vertex) are not blocked.
func (p Polygon) blocks(a, b geom.Point) bool {
	// A segment with a strictly interior endpoint is always blocked —
	// this also covers exits that pass exactly through a vertex, which
	// the edge-crossing test deliberately ignores.
	if p.Contains(a) || p.Contains(b) {
		return true
	}
	seg := geom.Seg(a, b)
	// Proper crossing with any edge blocks, unless the crossing is at a
	// shared vertex (handled by sampling below).
	for i := range p.V {
		j := (i + 1) % len(p.V)
		edge := geom.Seg(p.V[i], p.V[j])
		if x, ok := seg.Intersection(edge); ok {
			// A touch at an endpoint of the moving segment or at a
			// polygon vertex is not by itself interior passage.
			if x.Eq(a) || x.Eq(b) || x.Eq(p.V[i]) || x.Eq(p.V[j]) {
				continue
			}
			return true
		}
	}
	// No proper edge crossing: the segment is either fully outside or
	// fully inside (or running along the boundary). Sample interior
	// points; for a simple polygon a handful of samples along the segment
	// decides it (the segment cannot weave in and out without crossing an
	// edge, which was excluded above — samples guard the all-inside and
	// vertex-pivot cases).
	for _, t := range [...]float64{0.5, 0.25, 0.75} {
		if p.Contains(seg.PointAt(t)) {
			return true
		}
	}
	return false
}

// Course is a set of obstacles over a field.
type Course struct {
	Obstacles []Polygon
}

// NewCourse validates and wraps the obstacles.
func NewCourse(obs ...Polygon) (*Course, error) {
	for i, o := range obs {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("obstacle %d: %w", i, err)
		}
	}
	return &Course{Obstacles: obs}, nil
}

// Blocked reports whether the straight segment a-b passes through any
// obstacle interior.
func (c *Course) Blocked(a, b geom.Point) bool {
	for _, o := range c.Obstacles {
		if o.blocks(a, b) {
			return true
		}
	}
	return false
}

// Inside reports whether q lies strictly inside any obstacle.
func (c *Course) Inside(q geom.Point) bool {
	for _, o := range c.Obstacles {
		if o.Contains(q) {
			return true
		}
	}
	return false
}

// vertices returns every obstacle vertex, pushed outward by a hair so a
// path pivoting on a vertex does not register as interior passage due to
// floating-point noise.
func (c *Course) vertices() []geom.Point {
	var out []geom.Point
	const push = 1e-7
	for _, o := range c.Obstacles {
		centroid := geom.Centroid(o.V)
		for _, v := range o.V {
			dir := v.Sub(centroid)
			n := dir.Norm()
			if n > 0 {
				v = v.Add(dir.Scale(push / n))
			}
			out = append(out, v)
		}
	}
	return out
}

// ShortestPath returns the shortest obstacle-avoiding path from a to b as
// a waypoint polyline (including both endpoints) and its length. It
// returns ok=false when no path exists (an endpoint sealed inside an
// obstacle ring) — with simple disjoint obstacles this cannot happen for
// exterior endpoints.
func (c *Course) ShortestPath(a, b geom.Point) (path []geom.Point, length float64, ok bool) {
	if !c.Blocked(a, b) {
		return []geom.Point{a, b}, a.Dist(b), true
	}
	nodes := append([]geom.Point{a, b}, c.vertices()...)
	n := len(nodes)
	// Dijkstra over the implicit visibility graph.
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[0] = 0
	for {
		u, ud := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < ud {
				u, ud = v, dist[v]
			}
		}
		if u < 0 || u == 1 {
			break
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if done[v] || v == u {
				continue
			}
			if c.Blocked(nodes[u], nodes[v]) {
				continue
			}
			if nd := ud + nodes[u].Dist(nodes[v]); nd < dist[v] {
				dist[v] = nd
				parent[v] = u
			}
		}
	}
	if math.IsInf(dist[1], 1) {
		return nil, 0, false
	}
	var rev []geom.Point
	for v := 1; v != -1; v = parent[v] {
		rev = append(rev, nodes[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[1], true
}

// Matrix returns the all-pairs obstacle-aware distance matrix over pts.
// Entry (i, j) is +Inf when unreachable.
func (c *Course) Matrix(pts []geom.Point) [][]float64 {
	n := len(pts)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_, l, ok := c.ShortestPath(pts[i], pts[j])
			if !ok {
				l = math.Inf(1)
			}
			m[i][j] = l
			m[j][i] = l
		}
	}
	return m
}
