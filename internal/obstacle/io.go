package obstacle

import (
	"encoding/json"
	"fmt"
	"io"

	"mobicol/internal/geom"
)

// fileFormat is the on-disk JSON schema: a list of polygons, each a list
// of [x, y] vertices in counter-clockwise order.
type fileFormat struct {
	Obstacles [][][2]float64 `json:"obstacles"`
}

// WriteJSON encodes the course to w.
func (c *Course) WriteJSON(w io.Writer) error {
	ff := fileFormat{Obstacles: make([][][2]float64, len(c.Obstacles))}
	for i, o := range c.Obstacles {
		ff.Obstacles[i] = make([][2]float64, len(o.V))
		for j, v := range o.V {
			ff.Obstacles[i][j] = [2]float64{v.X, v.Y}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ff)
}

// ReadJSON decodes a course previously written by WriteJSON (or hand
// authored) and validates every polygon.
func ReadJSON(r io.Reader) (*Course, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("obstacle: decode course: %w", err)
	}
	polys := make([]Polygon, len(ff.Obstacles))
	for i, vs := range ff.Obstacles {
		polys[i].V = make([]geom.Point, len(vs))
		for j, v := range vs {
			polys[i].V[j] = geom.Pt(v[0], v[1])
		}
	}
	return NewCourse(polys...)
}
