package obstacle

import (
	"bytes"
	"strings"
	"testing"

	"mobicol/internal/geom"
)

func TestJSONRoundTrip(t *testing.T) {
	course, err := NewCourse(
		square(10, 10, 30, 30),
		Polygon{V: []geom.Point{geom.Pt(50, 50), geom.Pt(70, 50), geom.Pt(60, 70)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := course.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Obstacles) != 2 {
		t.Fatalf("round trip kept %d obstacles", len(got.Obstacles))
	}
	for i, o := range course.Obstacles {
		for j, v := range o.V {
			if !got.Obstacles[i].V[j].Eq(v) {
				t.Fatalf("vertex (%d,%d) moved", i, j)
			}
		}
	}
}

func TestReadJSONRejectsBadPolygons(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Clockwise polygon fails validation.
	cw := `{"obstacles":[[[0,0],[0,10],[10,10],[10,0]]]}`
	if _, err := ReadJSON(strings.NewReader(cw)); err == nil {
		t.Fatal("clockwise polygon accepted")
	}
	// Two-vertex polygon fails validation.
	deg := `{"obstacles":[[[0,0],[1,1]]]}`
	if _, err := ReadJSON(strings.NewReader(deg)); err == nil {
		t.Fatal("degenerate polygon accepted")
	}
}
