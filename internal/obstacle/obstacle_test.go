package obstacle

import (
	"math"
	"testing"

	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

func square(x0, y0, x1, y1 float64) Polygon {
	return Rectangle(geom.NewRect(geom.Pt(x0, y0), geom.Pt(x1, y1)))
}

func TestPolygonValidate(t *testing.T) {
	if err := square(0, 0, 10, 10).Validate(); err != nil {
		t.Fatal(err)
	}
	// Clockwise: reversed vertices.
	cw := Polygon{V: []geom.Point{geom.Pt(0, 0), geom.Pt(0, 10), geom.Pt(10, 10), geom.Pt(10, 0)}}
	if err := cw.Validate(); err == nil {
		t.Fatal("clockwise polygon accepted")
	}
	if err := (Polygon{V: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}}).Validate(); err == nil {
		t.Fatal("degenerate polygon accepted")
	}
}

func TestPolygonContains(t *testing.T) {
	p := square(0, 0, 10, 10)
	if !p.Contains(geom.Pt(5, 5)) {
		t.Fatal("interior point not contained")
	}
	if p.Contains(geom.Pt(15, 5)) || p.Contains(geom.Pt(-1, -1)) {
		t.Fatal("exterior point contained")
	}
	if p.Contains(geom.Pt(0, 5)) || p.Contains(geom.Pt(10, 10)) {
		t.Fatal("boundary point counted as inside")
	}
}

func TestBlocks(t *testing.T) {
	p := square(4, 4, 6, 6)
	cases := []struct {
		a, b geom.Point
		want bool
	}{
		{geom.Pt(0, 5), geom.Pt(10, 5), true},        // straight through
		{geom.Pt(0, 0), geom.Pt(10, 0), false},       // clear below
		{geom.Pt(0, 4), geom.Pt(10, 4), false},       // grazing the bottom wall
		{geom.Pt(4, 0), geom.Pt(4, 10), false},       // grazing the left wall
		{geom.Pt(5, 5), geom.Pt(20, 20), true},       // starts inside
		{geom.Pt(4.5, 4.5), geom.Pt(5.5, 5.5), true}, // fully inside
		{geom.Pt(0, 0), geom.Pt(4, 4), false},        // ends at a corner
	}
	for i, c := range cases {
		if got := p.blocks(c.a, c.b); got != c.want {
			t.Fatalf("case %d (%v-%v): blocks = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestShortestPathClear(t *testing.T) {
	course, err := NewCourse(square(40, 40, 60, 60))
	if err != nil {
		t.Fatal(err)
	}
	path, l, ok := course.ShortestPath(geom.Pt(0, 0), geom.Pt(10, 0))
	if !ok || len(path) != 2 || math.Abs(l-10) > 1e-9 {
		t.Fatalf("clear path = %v, %v, %v", path, l, ok)
	}
}

func TestShortestPathAroundSquare(t *testing.T) {
	course, err := NewCourse(square(4, -2, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := geom.Pt(0, 0), geom.Pt(10, 0)
	path, l, ok := course.ShortestPath(a, b)
	if !ok {
		t.Fatal("no path found")
	}
	// Optimal: around a corner, length = |(0,0)-(4,2)| + |(4,2)-(6,2)| + |(6,2)-(10,0)|
	want := math.Hypot(4, 2) + 2 + math.Hypot(4, 2)
	if math.Abs(l-want) > 1e-3 {
		t.Fatalf("length %v, want %v (path %v)", l, want, path)
	}
	if len(path) < 3 {
		t.Fatalf("path should detour: %v", path)
	}
	// Verify the polyline itself is unblocked and lengths agree.
	total := 0.0
	for i := 1; i < len(path); i++ {
		if course.Blocked(path[i-1], path[i]) {
			t.Fatalf("leg %d of returned path blocked", i)
		}
		total += path[i-1].Dist(path[i])
	}
	if math.Abs(total-l) > 1e-9 {
		t.Fatalf("polyline length %v != reported %v", total, l)
	}
}

func TestShortestPathTwoObstacles(t *testing.T) {
	course, err := NewCourse(square(3, -5, 4, 5), square(6, 0, 7, 10))
	if err != nil {
		t.Fatal(err)
	}
	a, b := geom.Pt(0, 0), geom.Pt(10, 0)
	path, l, ok := course.ShortestPath(a, b)
	if !ok {
		t.Fatal("no path")
	}
	if l <= 10 {
		t.Fatalf("detour length %v should exceed straight-line 10", l)
	}
	for i := 1; i < len(path); i++ {
		if course.Blocked(path[i-1], path[i]) {
			t.Fatalf("leg %d blocked", i)
		}
	}
}

func TestMatrixSymmetricAndTriangle(t *testing.T) {
	course, err := NewCourse(square(40, 40, 60, 60), square(20, 70, 35, 85))
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{geom.Pt(10, 50), geom.Pt(90, 50), geom.Pt(50, 10), geom.Pt(50, 90)}
	m := course.Matrix(pts)
	n := len(pts)
	for i := 0; i < n; i++ {
		if m[i][i] != 0 {
			t.Fatal("diagonal not zero")
		}
		for j := 0; j < n; j++ {
			if m[i][j] != m[j][i] {
				t.Fatal("matrix not symmetric")
			}
			if m[i][j] < pts[i].Dist(pts[j])-1e-9 {
				t.Fatal("obstacle distance below Euclidean")
			}
			for k := 0; k < n; k++ {
				if m[i][j] > m[i][k]+m[k][j]+1e-6 {
					t.Fatalf("triangle inequality violated (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func courseAndNet(t *testing.T) (*Course, *wsn.Network) {
	t.Helper()
	course, err := NewCourse(
		square(60, 60, 90, 90),
		square(120, 110, 150, 140),
		square(30, 130, 55, 160),
	)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := DeployAround(wsn.Config{N: 120, FieldSide: 200, Range: 30, Seed: 9}, course)
	if err != nil {
		t.Fatal(err)
	}
	return course, nw
}

func TestDeployAroundAvoidsObstacles(t *testing.T) {
	course, nw := courseAndNet(t)
	for i, node := range nw.Nodes {
		if course.Inside(node.Pos) {
			t.Fatalf("sensor %d inside an obstacle", i)
		}
		if !nw.Field.Contains(node.Pos) {
			t.Fatalf("sensor %d left the field", i)
		}
	}
	if nw.N() != 120 {
		t.Fatalf("N = %d", nw.N())
	}
}

func TestPlanTourValid(t *testing.T) {
	course, nw := courseAndNet(t)
	tour, err := PlanTour(nw, course)
	if err != nil {
		t.Fatal(err)
	}
	if tour.Length < tour.Euclidean-1e-9 {
		t.Fatalf("driven %v below Euclidean %v", tour.Length, tour.Euclidean)
	}
	if tour.DetourFactor() < 1 {
		t.Fatalf("detour factor %v", tour.DetourFactor())
	}
	// Every waypoint leg must be clear.
	for i := 1; i < len(tour.Waypoints); i++ {
		if course.Blocked(tour.Waypoints[i-1], tour.Waypoints[i]) {
			t.Fatalf("waypoint leg %d blocked", i)
		}
	}
	// Single-hop coverage still holds.
	for i, s := range tour.UploadAt {
		if s < 0 {
			t.Fatalf("sensor %d unserved", i)
		}
		if d := nw.Nodes[i].Pos.Dist(tour.Stops[s]); d > nw.Range+1e-6 {
			t.Fatalf("sensor %d uploads over %.2f m", i, d)
		}
	}
	// Polyline length must equal the reported length.
	total := 0.0
	for i := 1; i < len(tour.Waypoints); i++ {
		total += tour.Waypoints[i-1].Dist(tour.Waypoints[i])
	}
	if math.Abs(total-tour.Length) > 1e-6 {
		t.Fatalf("polyline %v != length %v", total, tour.Length)
	}
}

func TestPlanTourNoObstaclesMatchesEuclidean(t *testing.T) {
	course, err := NewCourse()
	if err != nil {
		t.Fatal(err)
	}
	nw := wsn.MustDeploy(wsn.Config{N: 80, FieldSide: 150, Range: 30, Seed: 4})
	tour, err := PlanTour(nw, course)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tour.DetourFactor()-1) > 1e-9 {
		t.Fatalf("empty course detour factor %v", tour.DetourFactor())
	}
}

func TestPlanTourRejectsSensorInObstacle(t *testing.T) {
	course, err := NewCourse(square(0, 0, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	nw := wsn.New([]geom.Point{geom.Pt(50, 50)}, geom.Pt(150, 150), 30, geom.Square(200))
	if _, err := PlanTour(nw, course); err == nil {
		t.Fatal("sensor inside obstacle accepted")
	}
}
