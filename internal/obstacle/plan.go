package obstacle

import (
	"fmt"

	"mobicol/internal/geom"
	"mobicol/internal/shdgp"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

// Tour is an obstacle-aware gathering tour: the stop visiting order plus
// the physical waypoint polyline the collector drives (stops and detour
// corners interleaved).
type Tour struct {
	Sink geom.Point
	// Stops in visiting order (sink excluded).
	Stops []geom.Point
	// Waypoints is the full driven polyline: sink, detour corners and
	// stops, back to the sink.
	Waypoints []geom.Point
	// Length is the driven length (>= the Euclidean stop tour).
	Length float64
	// Euclidean is the same visiting order's length ignoring obstacles —
	// the detour baseline.
	Euclidean float64
	// UploadAt mirrors collector.TourPlan: sensor -> index into Stops.
	UploadAt []int
}

// DetourFactor returns Length / Euclidean (1 when nothing blocks).
func (t *Tour) DetourFactor() float64 {
	// Tour lengths are sums of distances, so <= 0 means exactly zero.
	if t.Euclidean <= 0 {
		return 1
	}
	return t.Length / t.Euclidean
}

// PlanTour plans a single-hop gathering tour on a field with obstacles:
// the SHDGP heuristic chooses the stops (radio is unaffected by the
// obstacles), the visiting order is optimised under the obstacle-aware
// shortest-path metric, and the driven polyline threads each leg around
// the obstacles.
func PlanTour(nw *wsn.Network, course *Course) (*Tour, error) {
	for i, node := range nw.Nodes {
		if course.Inside(node.Pos) {
			return nil, fmt.Errorf("obstacle: sensor %d at %v is inside an obstacle", i, node.Pos)
		}
	}
	if course.Inside(nw.Sink) {
		return nil, fmt.Errorf("obstacle: the sink at %v is inside an obstacle", nw.Sink)
	}
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		return nil, err
	}
	// Points: 0 = sink, 1.. = stops (in the heuristic's order; the matrix
	// solver re-orders).
	pts := append([]geom.Point{nw.Sink}, sol.Plan.Stops...)
	m := course.Matrix(pts)
	order, err := tsp.SolveMatrix(m)
	if err != nil {
		return nil, err
	}
	order.RotateTo(0)

	out := &Tour{Sink: nw.Sink, UploadAt: make([]int, nw.N())}
	// oldIdx -> position in the new stop order.
	newPos := make([]int, len(sol.Plan.Stops))
	for _, idx := range order[1:] {
		newPos[idx-1] = len(out.Stops)
		out.Stops = append(out.Stops, pts[idx])
	}
	for i, s := range sol.Plan.UploadAt {
		if s < 0 {
			out.UploadAt[i] = -1
		} else {
			out.UploadAt[i] = newPos[s]
		}
	}
	// Thread the polyline leg by leg.
	seq := append([]geom.Point{nw.Sink}, out.Stops...)
	seq = append(seq, nw.Sink)
	out.Waypoints = append(out.Waypoints, nw.Sink)
	for i := 1; i < len(seq); i++ {
		leg, l, ok := course.ShortestPath(seq[i-1], seq[i])
		if !ok {
			return nil, fmt.Errorf("obstacle: no path between %v and %v", seq[i-1], seq[i])
		}
		out.Length += l
		out.Euclidean += seq[i-1].Dist(seq[i])
		out.Waypoints = append(out.Waypoints, leg[1:]...)
	}
	return out, nil
}

// DeployAround generates a deployment whose sensors avoid the obstacles:
// nodes drawn inside any obstacle are resampled deterministically. The
// experiments use it so obstacle density varies while sensor count stays
// fixed.
func DeployAround(cfg wsn.Config, course *Course) (*wsn.Network, error) {
	base, err := wsn.Deploy(cfg)
	if err != nil {
		return nil, err
	}
	pts := base.Positions()
	// Resample blocked sensors by marching the seed; bounded attempts
	// keep this deterministic and total.
	for i, p := range pts {
		attempt := uint64(1)
		for course.Inside(p) && attempt < 1000 {
			sub, err := wsn.Deploy(wsn.Config{
				N: 1, FieldSide: cfg.FieldSide, Range: cfg.Range,
				Seed: cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15 ^ attempt,
			})
			if err != nil {
				return nil, err
			}
			p = sub.Nodes[0].Pos
			attempt++
		}
		pts[i] = p
	}
	return wsn.New(pts, base.Sink, cfg.Range, base.Field), nil
}
