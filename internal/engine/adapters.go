package engine

import (
	"context"

	"mobicol/internal/baselines"
	"mobicol/internal/replan"
	"mobicol/internal/shdgp"
	"mobicol/internal/tsp"
)

// The adapters below wrap each concrete planning entry point in the
// Planner contract and register it at init. Registry names are the CLI's
// -algo vocabulary:
//
//	shdg       internal/shdgp.Plan          (heuristic: cover + TSP + refine)
//	exact      internal/shdgp.PlanExact     (optimal within DefaultExactLimits)
//	visit-all  internal/shdgp.PlanVisitAll  (d=0 baseline: tour every sensor)
//	sweep      internal/shdgp.PlanSweep     (SPT-preorder covering ablation)
//	cla        internal/baselines.PlanCLA   (paper's covering-line sweep)
//	warm       internal/replan.Repair       (warm-start repair; cold = shdg)
//
// The straight-line baseline is deliberately absent: it produces a
// multi-hop relay structure, not a collector.TourPlan, so it cannot
// honor the Plan contract (see DESIGN.md).
func init() {
	Register("shdg", &planFunc{name: "shdg", run: runSHDG})
	Register("exact", &planFunc{name: "exact", run: runExact})
	Register("visit-all", &planFunc{name: "visit-all", run: runVisitAll})
	Register("sweep", &planFunc{name: "sweep", run: runSweep})
	Register("cla", &planFunc{name: "cla", run: runCLA})
	Register("warm", &planFunc{name: "warm", run: runWarm})
}

// problem assembles the shdgp covering problem for a scenario.
func problem(sc Scenario, opts Options) *shdgp.Problem {
	p := shdgp.NewProblem(sc.Net)
	p.Pool = opts.Pool
	p.Strategy = opts.Strategy
	p.GridSpacing = opts.GridSpacing
	return p
}

// solutionResult converts a shdgp.Solution into the engine's Plan/Stats
// pair. Every shdgp planner fills the Stats block (visit-all and sweep
// leave parts of it zero), so Cover is always present for them.
func solutionResult(sol *shdgp.Solution) (*Plan, Stats) {
	st := Stats{
		Length: sol.Length,
		Stops:  sol.Stops(),
		Exact:  sol.Exact,
		Cover: &CoverStats{
			Candidates:        sol.Stats.Candidates,
			Universe:          sol.Stats.Universe,
			CoverStops:        sol.Stats.CoverStops,
			MaxSensorsPerStop: sol.Stats.MaxSensorsPerStop,
		},
	}
	return &Plan{Tour: sol.Plan, Algorithm: sol.Algorithm}, st
}

// runSHDG adapts the heuristic planner. Cancellation rides the planner's
// own phase-boundary Step hook (candidates → cover → refine → tsp).
func runSHDG(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error) {
	po := shdgp.DefaultPlannerOptions()
	po.Obs = opts.Obs
	po.Step = ctx.Err
	sol, err := shdgp.Plan(problem(sc, opts), po)
	if err != nil {
		return nil, Stats{}, err
	}
	pl, st := solutionResult(sol)
	return pl, st, nil
}

// runExact adapts the exact solver. The enumeration is one indivisible
// phase, so cancellation is honored at the phase boundary only.
func runExact(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error) {
	root := opts.Obs.Start("plan")
	defer root.End()
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	sol, err := shdgp.PlanExact(problem(sc, opts), shdgp.DefaultExactLimits())
	if err != nil {
		return nil, Stats{}, err
	}
	pl, st := solutionResult(sol)
	return pl, st, nil
}

// runVisitAll adapts the d=0 visit-every-sensor baseline. The span shape
// (root "plan" with a "tsp" child carrying the solver stages) matches
// what the benchmark harness has always recorded for this algorithm.
func runVisitAll(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error) {
	root := opts.Obs.Start("plan")
	defer root.End()
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	sp := root.Child("tsp")
	tspOpts := tsp.DefaultOptions()
	tspOpts.Obs = sp
	sol, err := shdgp.PlanVisitAll(problem(sc, opts), tspOpts)
	sp.End()
	if err != nil {
		return nil, Stats{}, err
	}
	pl, st := solutionResult(sol)
	return pl, st, nil
}

// runSweep adapts the SPT-preorder covering ablation (E8).
func runSweep(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error) {
	root := opts.Obs.Start("plan")
	defer root.End()
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	sp := root.Child("tsp")
	tspOpts := tsp.DefaultOptions()
	tspOpts.Obs = sp
	sol, err := shdgp.PlanSweep(problem(sc, opts), tspOpts)
	sp.End()
	if err != nil {
		return nil, Stats{}, err
	}
	pl, st := solutionResult(sol)
	return pl, st, nil
}

// runCLA adapts the paper's covering-line sweep baseline. CLA stops are
// sweep-line endpoints, not upload points, so the plan carries the true
// per-sensor upload distance for the oracle — materialized into a fresh
// slice, because the returned Plan outlives the request and must not
// retain the scenario's network.
func runCLA(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error) {
	root := opts.Obs.Start("plan")
	defer root.End()
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	nw := sc.Net
	tour, err := baselines.PlanCLA(nw)
	if err != nil {
		return nil, Stats{}, err
	}
	dists := make([]float64, nw.N())
	for i := range dists {
		dists[i] = baselines.CLAUploadDistance(nw, tour, i)
	}
	pl := &Plan{
		Tour:       tour,
		Algorithm:  "cla",
		UploadDist: func(i int) float64 { return dists[i] },
	}
	return pl, Stats{Length: tour.Length(), Stops: len(tour.Stops)}, nil
}

// runWarm adapts the warm-start repair. A scenario without a previous
// plan falls back to the cold heuristic; with one, the repair carries
// assignments forward (positionally when the scenario does not say
// otherwise) and only replans what the scenario change dirtied.
func runWarm(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error) {
	if sc.Prev == nil {
		return runSHDG(ctx, sc, opts)
	}
	carried := sc.Carried
	if carried == nil {
		carried = replan.CarryPositional(sc.Prev, sc.Net.N())
	}
	ro := replan.Options{Pool: opts.Pool, Obs: opts.Obs, Step: ctx.Err}
	tour, rst, err := replan.Repair(sc.Net, sc.Prev, carried, ro)
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{Length: tour.Length(), Stops: len(tour.Stops), Warm: &rst}
	return &Plan{Tour: tour, Algorithm: "warm-repair"}, st, nil
}
