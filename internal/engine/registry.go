package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

//mdglint:ignore globalvar registry lock: guards the process-wide planner table below
var registryMu sync.RWMutex

//mdglint:ignore globalvar process-wide planner table, written only at init (Register) and in conformance tests (Unregister), always under registryMu
var registry = map[string]Planner{}

// Register adds p to the planner registry under name. It panics on an
// empty name, a nil planner, or a duplicate registration — registration
// happens in package init functions, where a conflict is a programming
// error that should fail fast and loudly.
func Register(name string, p Planner) {
	if name == "" {
		//mdglint:ignore nopanic init-time registration conflict is a programming error; fail fast like http.Handle
		panic("engine: Register with empty planner name")
	}
	if p == nil {
		//mdglint:ignore nopanic init-time registration conflict is a programming error; fail fast like http.Handle
		panic(fmt.Sprintf("engine: Register(%q) with nil planner", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		//mdglint:ignore nopanic init-time registration conflict is a programming error; fail fast like http.Handle
		panic(fmt.Sprintf("engine: planner %q registered twice", name))
	}
	registry[name] = p
}

// Unregister removes name from the registry (a no-op for unknown names).
// It exists for tests that register fixture planners; production code
// only ever registers.
func Unregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, name)
}

// Lookup returns the planner registered under name.
func Lookup(name string) (Planner, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// UnknownPlannerError reports an algorithm name with no registered
// planner, spelling out the valid vocabulary. The CLIs treat it as a
// usage error (exit 2), distinct from runtime failures (exit 1).
type UnknownPlannerError struct {
	Name string
}

func (e *UnknownPlannerError) Error() string {
	return fmt.Sprintf("unknown algorithm %q (registered: %s)", e.Name, strings.Join(Names(), ", "))
}

// Select resolves name to a registered planner; unknown names return an
// *UnknownPlannerError listing what is registered.
func Select(name string) (Planner, error) {
	if p, ok := Lookup(name); ok {
		return p, nil
	}
	return nil, &UnknownPlannerError{Name: name}
}

// Names returns the registered planner names, sorted — the CLI's -algo
// vocabulary and the conformance suite's iteration order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	//mdglint:ignore determinism keys are collected and then sorted; the returned order is independent of map iteration order
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
