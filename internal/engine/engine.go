// Package engine is the planning seam: one Planner interface over every
// tour-planning algorithm in the repository, plus a name-keyed registry
// (registry.go) and adapters for the concrete planners (adapters.go).
//
// The seam exists so the CLIs, the benchmark harness, the verification
// suites, and future long-running services all invoke planning the same
// way — algorithm selection is data (a registry name), not a switch
// statement. Every planner behind the interface owes the same contract,
// enforced mechanically by internal/engine/conformance for each
// registered name:
//
//   - Typed scenario in, executable plan out: a Scenario wraps the
//     deployment (plus optional warm-start state), a Plan wraps the
//     collector.TourPlan with its oracle hooks, and Stats carries the
//     quality numbers the callers report.
//   - Context cancellation and deadlines are honored at phase
//     boundaries: a canceled ctx returns context.Canceled (or
//     context.DeadlineExceeded) promptly, without leaking goroutines,
//     and an uncanceled ctx never changes the planner's output.
//   - Progress streams from internal/obs spans: when Options.Progress
//     is set, every span edge the planner records becomes an Event with
//     a strictly increasing sequence number.
//   - Determinism: the same Scenario plans to a bit-identical Plan at
//     any worker-pool size.
package engine

import (
	"context"
	"fmt"
	"sync"

	"mobicol/internal/collector"
	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/par"
	"mobicol/internal/replan"
	"mobicol/internal/wsn"
)

// Scenario is the typed input to a planner: the deployment to plan for,
// plus optional warm-start state for warm-capable planners.
type Scenario struct {
	// Net is the deployment (required).
	Net *wsn.Network
	// Prev is a previous plan to warm-start from; nil plans cold.
	// Planners that cannot warm-start ignore it.
	Prev *collector.TourPlan
	// Carried maps each sensor of Net to the stop (index into
	// Prev.Stops) it uploaded at before the scenario changed, -1 for
	// sensors with no previous assignment. Nil with a non-nil Prev
	// selects positional carry (replan.CarryPositional).
	Carried []int
}

// Options configures one Plan call. The zero value plans sequentially
// with default settings, no tracing, and no progress stream.
type Options struct {
	// Pool bounds the parallelism the planner may use. Any pool size
	// produces a bit-identical plan; the zero value runs sequentially.
	Pool par.Pool
	// Obs, when non-nil, receives the planner's phase spans and metrics.
	Obs *obs.Trace
	// Progress, when non-nil, receives one Event per span edge the
	// planner records (a trace is created internally when Obs is nil).
	// Events arrive with strictly increasing Seq; the callback runs on
	// the goroutine recording the span and must not call back into the
	// plan that is feeding it.
	Progress func(Event)
	// Strategy selects candidate-stop generation for covering planners
	// (default cover.SensorSites).
	Strategy cover.CandidateStrategy
	// GridSpacing applies to the cover.FieldGrid strategy.
	GridSpacing float64
}

// Event is one streamed progress notification: a planner phase (an
// internal/obs span) starting or finishing.
type Event struct {
	// Planner is the registry name of the planner emitting the event.
	Planner string
	// Phase is the span name ("plan", "candidates", "cover", ...).
	Phase string
	// Span is the span's deterministic id within the plan's trace.
	Span int
	// Seq numbers events within one Plan call, starting at 1 and
	// strictly increasing — the monotonicity the conformance harness
	// pins.
	Seq int
	// Done is false when the phase starts and true when it ends.
	Done bool
}

// CoverStats summarises the covering phase of planners that select
// polling points from a candidate set.
type CoverStats struct {
	// Candidates is the number of candidate stop positions generated.
	Candidates int
	// Universe is the number of sensors to cover.
	Universe int
	// CoverStops is the cover size before refinement.
	CoverStops int
	// MaxSensorsPerStop is the heaviest stop's assigned sensor count.
	MaxSensorsPerStop int
}

// Stats carries the quality numbers callers report alongside a plan.
type Stats struct {
	// Length is the closed tour length.
	Length geom.Meters
	// Stops is the number of polling points (sink excluded).
	Stops int
	// Exact is true when the solution is provably optimal.
	Exact bool
	// Cover holds covering-phase statistics, nil for planners without a
	// covering phase (e.g. the CLA sweep baseline).
	Cover *CoverStats
	// Warm holds warm-start repair statistics, nil for cold plans.
	Warm *replan.Stats
}

// Plan is a planner's output: the executable tour plus the hooks the
// oracle checks need.
type Plan struct {
	// Tour is the executable tour: ordered stops and the sensor→stop
	// upload assignment.
	Tour *collector.TourPlan
	// Algorithm labels the concrete algorithm that produced the tour
	// (e.g. "shdg-greedy+refine"); it may be finer-grained than the
	// registry name.
	Algorithm string
	// UploadDist, when non-nil, overrides the oracle's upload distance
	// for sensor i: planners whose recorded stops are not the physical
	// upload points (CLA records sweep-line endpoints; the collector
	// uploads at the sensor's projection) expose the true distance here.
	// Wire it into check.Options.UploadDist when verifying the plan.
	UploadDist func(i int) float64
}

// Planner is the engine seam: one planning algorithm behind a uniform,
// context-aware entry point. Implementations must honor the package
// contract (cancellation at phase boundaries, pool-size-independent
// output, progress streaming); engine/conformance verifies it for every
// registered planner.
type Planner interface {
	// Name returns the planner's registry name.
	Name() string
	// Plan computes a tour for the scenario. It returns ctx.Err() when
	// the context is canceled or past its deadline — checked on entry,
	// at every phase boundary, and before returning — and never returns
	// a non-nil Plan alongside a non-nil error.
	Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error)
}

// planFunc is the concrete planner shape the adapters use: a named run
// function wrapped with the shared contract scaffolding (entry/exit
// cancellation checks, scenario validation, progress-stream wiring).
type planFunc struct {
	name string
	run  func(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error)
}

// Name returns the planner's registry name.
func (p *planFunc) Name() string { return p.name }

// Plan applies the shared contract around the adapter's run function.
func (p *planFunc) Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, Stats, error) {
	if sc.Net == nil {
		return nil, Stats{}, fmt.Errorf("engine: %s: scenario has no network", p.name)
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	if opts.Progress != nil {
		if opts.Obs == nil {
			opts.Obs = obs.New(nil)
		}
		sink := &progressSink{planner: p.name, emit: opts.Progress}
		opts.Obs.SetSpanHook(sink.hook)
		defer opts.Obs.SetSpanHook(nil)
	}
	pl, st, err := p.run(ctx, sc, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	return pl, st, nil
}

// progressSink converts span edges into ordered Events. Emission happens
// under its lock so sequence numbers are strictly increasing in the
// order the callback observes them, even when phases overlap across
// worker goroutines.
type progressSink struct {
	mu      sync.Mutex
	seq     int
	planner string
	emit    func(Event)
}

// hook is the obs.SpanHook feeding the sink.
func (ps *progressSink) hook(name string, id int, end bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.seq++
	ps.emit(Event{Planner: ps.planner, Phase: name, Span: id, Seq: ps.seq, Done: end})
}
