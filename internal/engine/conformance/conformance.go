// Package conformance is the registry-driven verification net for engine
// planners: one suite that holds every registered Planner — current and
// future — to the same contract. A new algorithm inherits the whole net
// by calling engine.Register; the suite's per-planner checks are:
//
//   - registry round-trip: the planner is reachable under its own name;
//   - oracle validity: every plan over the seeded 4-family scenario
//     generator passes the internal/check single-hop oracle, its
//     recorded length matches its geometry, and its stop count is
//     consistent;
//   - determinism: same-seed runs are bit-identical, and Workers(1)
//     equals Workers(8) bit-for-bit;
//   - cancellation: a canceled context returns context.Canceled with a
//     nil plan and zero leaked goroutines, both when canceled before the
//     call and when canceled mid-plan;
//   - progress: the event stream is non-empty, strictly
//     sequence-monotonic, correctly attributed, and well-nested (no
//     span ends before it starts; at least one span completes).
package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"mobicol/internal/check"
	"mobicol/internal/engine"
	"mobicol/internal/par"
)

// Config sizes a conformance run.
type Config struct {
	// Seed feeds the scenario generator (default 1).
	Seed uint64
	// Scenarios is how many generated deployments to sweep (default 8).
	Scenarios int
	// MaxSensors, when positive, filters the generated deployments to
	// n <= MaxSensors. Expensive planners (the exact solver) set this to
	// keep instances inside their limits.
	MaxSensors int
	// Workers is the pool width determinism is compared against
	// sequential planning (default 8).
	Workers int
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scenarios <= 0 {
		c.Scenarios = 8
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	return c
}

// scenarios generates the deployments a run sweeps: the seeded 4-family
// generator, filtered to the config's sensor cap. Generation overshoots
// so a tight cap still yields cfg.Scenarios deployments.
func (c Config) scenarios() []check.Scenario {
	all := check.Scenarios(c.Seed, 4*c.Scenarios)
	out := make([]check.Scenario, 0, c.Scenarios)
	for _, sc := range all {
		if c.MaxSensors > 0 && sc.Net.N() > c.MaxSensors {
			continue
		}
		out = append(out, sc)
		if len(out) == c.Scenarios {
			break
		}
	}
	return out
}

// Run executes the suite against p and reports every violation on tb.
func Run(tb check.TB, p engine.Planner, cfg Config) {
	tb.Helper()
	for _, err := range Suite(p, cfg) {
		tb.Errorf("conformance: %v", err)
	}
}

// Suite executes the full conformance suite against p and returns every
// contract violation found (nil for a fully conformant planner).
func Suite(p engine.Planner, cfg Config) []error {
	cfg = cfg.withDefaults()
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	name := p.Name()
	if got, ok := engine.Lookup(name); !ok {
		report("%s: registry round-trip: planner not registered under its own name", name)
	} else if got != p {
		report("%s: registry round-trip: Lookup returned a different planner", name)
	}
	found := false
	for _, n := range engine.Names() {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		report("%s: registry round-trip: Names() does not list the planner", name)
	}

	scens := cfg.scenarios()
	if len(scens) == 0 {
		report("%s: no scenarios survived the MaxSensors=%d filter", name, cfg.MaxSensors)
		return errs
	}

	for _, sc := range scens {
		checkOracle(p, sc, report)
		checkDeterminism(p, sc, cfg.Workers, report)
	}
	// Cancellation and progress probe behavior, not output; one scenario
	// each keeps the suite's cost dominated by the oracle sweep.
	checkCancellation(p, scens[0], report)
	checkProgress(p, scens[0], report)
	return errs
}

// checkOracle plans one scenario and verifies the result against the
// plan oracle and the planner's own bookkeeping.
func checkOracle(p engine.Planner, sc check.Scenario, report func(string, ...any)) {
	pl, st, err := p.Plan(context.Background(), engine.Scenario{Net: sc.Net}, engine.Options{})
	if err != nil {
		report("%s: %s: plan failed: %v", p.Name(), sc.Name, err)
		return
	}
	if pl == nil || pl.Tour == nil {
		report("%s: %s: plan succeeded but returned no tour", p.Name(), sc.Name)
		return
	}
	if err := check.Plan(sc.Net, pl.Tour, check.Options{UploadDist: pl.UploadDist}); err != nil {
		report("%s: %s: oracle: %v", p.Name(), sc.Name, err)
	}
	if err := check.RecordedLength(pl.Tour, st.Length); err != nil {
		report("%s: %s: stats: %v", p.Name(), sc.Name, err)
	}
	if st.Stops != len(pl.Tour.Stops) {
		report("%s: %s: stats: Stops=%d but the tour has %d stops",
			p.Name(), sc.Name, st.Stops, len(pl.Tour.Stops))
	}
}

// checkDeterminism verifies bit-identical output across a same-input
// re-run and across pool widths (sequential vs cfgWorkers workers).
func checkDeterminism(p engine.Planner, sc check.Scenario, workers int, report func(string, ...any)) {
	runs := []struct {
		label string
		pool  par.Pool
	}{
		{"workers=1 run A", par.Workers(1)},
		{"workers=1 run B", par.Workers(1)},
		{fmt.Sprintf("workers=%d", workers), par.Workers(workers)},
	}
	var base string
	for i, r := range runs {
		pl, st, err := p.Plan(context.Background(), engine.Scenario{Net: sc.Net}, engine.Options{Pool: r.pool})
		if err != nil {
			report("%s: %s: determinism: %s failed: %v", p.Name(), sc.Name, r.label, err)
			return
		}
		fp := fingerprint(pl, st)
		if i == 0 {
			base = fp
			continue
		}
		if fp != base {
			report("%s: %s: determinism: %s diverged from %s:\n  %s\n  vs\n  %s",
				p.Name(), sc.Name, r.label, runs[0].label, fp, base)
		}
	}
}

// fingerprint captures everything the determinism contract pins about a
// planner's output, with float64 fields rendered through math.Float64bits
// so "equal" means bit-identical, not approximately close.
func fingerprint(pl *engine.Plan, st engine.Stats) string {
	var sb strings.Builder
	//mdglint:ignore unitcheck fingerprint boundary: the length is hashed via Float64bits, not used as a number
	lenBits := math.Float64bits(float64(st.Length))
	fmt.Fprintf(&sb, "algo=%s len=%016x stops=%d exact=%t",
		pl.Algorithm, lenBits, st.Stops, st.Exact)
	fmt.Fprintf(&sb, " sink=%016x,%016x",
		math.Float64bits(pl.Tour.Sink.X), math.Float64bits(pl.Tour.Sink.Y))
	for _, s := range pl.Tour.Stops {
		fmt.Fprintf(&sb, " %016x,%016x", math.Float64bits(s.X), math.Float64bits(s.Y))
	}
	sb.WriteString(" upload=")
	for _, u := range pl.Tour.UploadAt {
		fmt.Fprintf(&sb, "%d,", u)
	}
	return sb.String()
}

// checkCancellation verifies the context contract: a canceled context —
// whether canceled before the call or mid-plan — yields context.Canceled
// promptly, a nil plan, and no goroutines left behind.
func checkCancellation(p engine.Planner, sc check.Scenario, report func(string, ...any)) {
	leak := check.LeakedGoroutines(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		pl, _, err := p.Plan(ctx, engine.Scenario{Net: sc.Net}, engine.Options{Pool: par.Workers(4)})
		if !errors.Is(err, context.Canceled) {
			report("%s: pre-canceled context: want context.Canceled, got err=%v", p.Name(), err)
		}
		if pl != nil {
			report("%s: pre-canceled context: got a non-nil plan alongside cancellation", p.Name())
		}
	})
	if leak != nil {
		report("%s: pre-canceled context: %v", p.Name(), leak)
	}

	leak = check.LeakedGoroutines(func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// Cancel from inside the planner's own progress stream: the first
		// span edge fires strictly before the planner's exit boundary, so
		// a conformant planner must notice before returning.
		pl, _, err := p.Plan(ctx, engine.Scenario{Net: sc.Net}, engine.Options{
			Pool:     par.Workers(4),
			Progress: func(engine.Event) { cancel() },
		})
		if !errors.Is(err, context.Canceled) {
			report("%s: mid-plan cancel: want context.Canceled, got err=%v", p.Name(), err)
		}
		if pl != nil {
			report("%s: mid-plan cancel: got a non-nil plan alongside cancellation", p.Name())
		}
	})
	if leak != nil {
		report("%s: mid-plan cancel: %v", p.Name(), leak)
	}
}

// checkProgress verifies the progress-event contract: a non-empty
// stream, strictly increasing sequence numbers, correct planner
// attribution, no span ending before it starts, and at least one
// completed span.
func checkProgress(p engine.Planner, sc check.Scenario, report func(string, ...any)) {
	var events []engine.Event
	_, _, err := p.Plan(context.Background(), engine.Scenario{Net: sc.Net}, engine.Options{
		Progress: func(ev engine.Event) { events = append(events, ev) },
	})
	if err != nil {
		report("%s: progress: plan failed: %v", p.Name(), err)
		return
	}
	if len(events) == 0 {
		report("%s: progress: planner emitted no events", p.Name())
		return
	}
	started := map[int]bool{}
	ended := false
	for i, ev := range events {
		if ev.Planner != p.Name() {
			report("%s: progress: event %d attributed to %q", p.Name(), i, ev.Planner)
		}
		if ev.Seq <= 0 {
			report("%s: progress: event %d has non-positive Seq %d", p.Name(), i, ev.Seq)
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			report("%s: progress: Seq not strictly increasing at event %d (%d after %d)",
				p.Name(), i, ev.Seq, events[i-1].Seq)
		}
		if ev.Done {
			if !started[ev.Span] {
				report("%s: progress: span %d (%s) ended without starting", p.Name(), ev.Span, ev.Phase)
			}
			ended = true
		} else {
			started[ev.Span] = true
		}
	}
	if !ended {
		report("%s: progress: no span ever completed", p.Name())
	}
}
