package conformance_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/engine"
	"mobicol/internal/engine/conformance"
	"mobicol/internal/geom"
	"mobicol/internal/par"
	"mobicol/internal/wsn"
)

// configFor sizes the suite per planner: the exact solver needs tiny
// instances to stay inside its candidate/stop limits, and visit-all's
// per-sensor TSP gets a sensor cap to keep the sweep fast.
func configFor(name string) conformance.Config {
	switch name {
	case "exact":
		return conformance.Config{Seed: 7, Scenarios: 3, MaxSensors: 12}
	case "visit-all":
		return conformance.Config{Seed: 5, Scenarios: 6, MaxSensors: 40}
	default:
		return conformance.Config{Seed: 3, Scenarios: 6}
	}
}

// TestAllRegisteredPlanners is the headline gate: every planner in the
// registry — including any added after this test was written — must pass
// the full conformance suite.
func TestAllRegisteredPlanners(t *testing.T) {
	names := engine.Names()
	if len(names) == 0 {
		t.Fatal("no planners registered")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			p, ok := engine.Lookup(name)
			if !ok {
				t.Fatalf("planner %q vanished from the registry", name)
			}
			conformance.Run(t, p, configFor(name))
		})
	}
}

// brokenPlanner is a deliberately non-conformant fixture: it strands
// every sensor, lies about its stats, ignores context cancellation,
// emits no progress, and varies its output call to call.
type brokenPlanner struct {
	calls int
}

func (b *brokenPlanner) Name() string { return "broken-fixture" }

func (b *brokenPlanner) Plan(ctx context.Context, sc engine.Scenario, opts engine.Options) (*engine.Plan, engine.Stats, error) {
	b.calls++ // nondeterminism: the stop drifts with every call
	tour := &collector.TourPlan{
		Sink:     sc.Net.Sink,
		Stops:    []geom.Point{sc.Net.Sink.Add(geom.Pt(float64(b.calls), 0))},
		UploadAt: make([]int, sc.Net.N()),
	}
	for i := range tour.UploadAt {
		tour.UploadAt[i] = -1 // coverage violation: every sensor stranded
	}
	return &engine.Plan{Tour: tour, Algorithm: "broken"},
		engine.Stats{Length: tour.Length() + 1, Stops: 99}, nil
}

// recordingTB captures suite failures instead of failing the test, so
// the negative test can assert on them.
type recordingTB struct {
	failures []string
}

func (r *recordingTB) Helper() {}

func (r *recordingTB) Errorf(format string, args ...any) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
}

// TestBrokenPlannerFailsSuite is the suite's negative control: a fixture
// violating every contract clause must be flagged on every one of them.
// A conformance harness that passes this planner verifies nothing.
func TestBrokenPlannerFailsSuite(t *testing.T) {
	bp := &brokenPlanner{}
	engine.Register(bp.Name(), bp)
	defer engine.Unregister(bp.Name())

	rec := &recordingTB{}
	conformance.Run(rec, bp, conformance.Config{Seed: 3, Scenarios: 2})
	if len(rec.failures) == 0 {
		t.Fatal("conformance suite passed a deliberately broken planner")
	}
	all := strings.Join(rec.failures, "\n")
	for _, want := range []string{
		"oracle",                // stranded sensors fail the coverage invariant
		"stats",                 // recorded length and stop count both lie
		"determinism",           // output drifts call to call
		"want context.Canceled", // canceled context ignored
		"progress",              // no events emitted
	} {
		if !strings.Contains(all, want) {
			t.Errorf("suite missed the %q violation; failures:\n%s", want, all)
		}
	}
}

// TestSuiteReportsEmptyScenarioFilter pins the guard against a config
// whose sensor cap filters out every generated deployment.
func TestSuiteReportsEmptyScenarioFilter(t *testing.T) {
	p, ok := engine.Lookup("shdg")
	if !ok {
		t.Fatal("shdg not registered")
	}
	errs := conformance.Suite(p, conformance.Config{Seed: 3, Scenarios: 2, MaxSensors: 1})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "no scenarios") {
		t.Fatalf("want a single no-scenarios error, got %v", errs)
	}
}

// TestCancelUnderLoad is the cancellation smoke the CI job runs with
// -race: start a 10k-sensor plan, cancel mid-flight at 50 ms, and demand
// a clean context.Canceled return with no goroutines left behind.
func TestCancelUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-sensor plan; skipped in -short")
	}
	nw := wsn.MustDeploy(wsn.Config{N: 10000, FieldSide: 2000, Range: 30, Seed: 1})
	p, ok := engine.Lookup("shdg")
	if !ok {
		t.Fatal("shdg not registered")
	}
	check.NoLeakedGoroutines(t, func() {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(50*time.Millisecond, cancel)
		defer timer.Stop()
		defer cancel()
		pl, _, err := p.Plan(ctx, engine.Scenario{Net: nw}, engine.Options{Pool: par.Workers(8)})
		if err == nil {
			// The planner beat the timer; a fast machine makes this a
			// no-op run, not a failure.
			t.Logf("n=10k plan finished before the 50ms cancel landed")
			if pl == nil {
				t.Error("nil plan with nil error")
			}
			return
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("want context.Canceled, got %v", err)
		}
		if pl != nil {
			t.Error("non-nil plan alongside cancellation")
		}
	})
}
