// Unit tests for the engine seam itself: registry lifecycle, the planner
// wrapper's contract checks (nil network, cancellation at entry/exit,
// progress wiring), and each adapter's success path. The registry-wide
// behavioral guarantees live in engine/conformance; this file pins the
// package's own mechanics for the coverage ratchet.
package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mobicol/internal/cover"
	"mobicol/internal/engine"
	"mobicol/internal/replan"
	"mobicol/internal/wsn"
)

func testNet(t *testing.T, n int, seed uint64) *wsn.Network {
	t.Helper()
	nw, err := wsn.Deploy(wsn.Config{N: n, FieldSide: 100, Range: 30, Seed: seed})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return nw
}

func mustPlanner(t *testing.T, name string) engine.Planner {
	t.Helper()
	p, err := engine.Select(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fakePlanner is a minimal Planner for registry tests.
type fakePlanner struct{ name string }

func (f *fakePlanner) Name() string { return f.name }
func (f *fakePlanner) Plan(context.Context, engine.Scenario, engine.Options) (*engine.Plan, engine.Stats, error) {
	return nil, engine.Stats{}, errors.New("fake planner does not plan")
}

func TestRegistryLifecycle(t *testing.T) {
	f := &fakePlanner{name: "fake-lifecycle"}
	engine.Register(f.name, f)
	defer engine.Unregister(f.name)

	got, ok := engine.Lookup(f.name)
	if !ok || got != engine.Planner(f) {
		t.Fatalf("Lookup(%q) = %v, %v; want the registered planner", f.name, got, ok)
	}
	names := engine.Names()
	found := false
	for i, n := range names {
		if n == f.name {
			found = true
		}
		if i > 0 && names[i-1] >= n {
			t.Fatalf("Names() not strictly sorted: %v", names)
		}
	}
	if !found {
		t.Fatalf("Names() = %v missing %q", names, f.name)
	}

	engine.Unregister(f.name)
	if _, ok := engine.Lookup(f.name); ok {
		t.Fatalf("Lookup(%q) succeeded after Unregister", f.name)
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		label string
		reg   func()
	}{
		{"empty name", func() { engine.Register("", &fakePlanner{}) }},
		{"nil planner", func() { engine.Register("fake-nil", nil) }},
		{"duplicate", func() { engine.Register("shdg", &fakePlanner{name: "shdg"}) }},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register with %s did not panic", tc.label)
				}
			}()
			tc.reg()
		})
	}
}

func TestSelectUnknownListsRegistered(t *testing.T) {
	if _, err := engine.Select("shdg"); err != nil {
		t.Fatalf("Select(shdg): %v", err)
	}
	_, err := engine.Select("bogus")
	var unknown *engine.UnknownPlannerError
	if !errors.As(err, &unknown) {
		t.Fatalf("Select(bogus) = %v, want *UnknownPlannerError", err)
	}
	msg := err.Error()
	for _, want := range []string{`"bogus"`, "registered:", "shdg", "cla"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

// TestAdaptersProduceValidPlans runs every registered adapter's success
// path on a small deployment and checks the Plan/Stats invariants the
// CLIs rely on.
func TestAdaptersProduceValidPlans(t *testing.T) {
	nw := testNet(t, 25, 3)
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			p := mustPlanner(t, name)
			if p.Name() != name {
				t.Fatalf("Name() = %q, want %q", p.Name(), name)
			}
			pl, st, err := p.Plan(context.Background(), engine.Scenario{Net: nw}, engine.Options{})
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			if pl == nil || pl.Tour == nil || pl.Algorithm == "" {
				t.Fatalf("plan = %+v", pl)
			}
			if st.Stops != len(pl.Tour.Stops) {
				t.Fatalf("Stats.Stops = %d, tour has %d", st.Stops, len(pl.Tour.Stops))
			}
			if st.Length <= 0 {
				t.Fatalf("Stats.Length = %v", st.Length)
			}
		})
	}
}

func TestExactReportsCoverStats(t *testing.T) {
	nw := testNet(t, 8, 5)
	_, st, err := mustPlanner(t, "exact").Plan(context.Background(), engine.Scenario{Net: nw}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cover == nil {
		t.Fatal("exact solution carries no cover stats")
	}
	if !st.Exact {
		t.Fatalf("n=8 instance fell back to the heuristic: %+v", st)
	}
}

func TestGridStrategyOption(t *testing.T) {
	nw := testNet(t, 25, 3)
	opts := engine.Options{Strategy: cover.FieldGrid, GridSpacing: 20}
	pl, st, err := mustPlanner(t, "shdg").Plan(context.Background(), engine.Scenario{Net: nw}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tour == nil || st.Cover == nil {
		t.Fatalf("grid-strategy plan = %+v stats = %+v", pl, st)
	}
}

func TestPlanRejectsMissingNetwork(t *testing.T) {
	_, _, err := mustPlanner(t, "shdg").Plan(context.Background(), engine.Scenario{}, engine.Options{})
	if err == nil || !strings.Contains(err.Error(), "no network") {
		t.Fatalf("err = %v, want a no-network error", err)
	}
}

func TestPlanHonorsPreCanceledContext(t *testing.T) {
	nw := testNet(t, 25, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl, _, err := mustPlanner(t, "shdg").Plan(ctx, engine.Scenario{Net: nw}, engine.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pl != nil {
		t.Fatalf("canceled plan returned a result: %+v", pl)
	}
}

func TestProgressEventsAttributedAndOrdered(t *testing.T) {
	nw := testNet(t, 25, 3)
	var events []engine.Event
	opts := engine.Options{Progress: func(e engine.Event) { events = append(events, e) }}
	if _, _, err := mustPlanner(t, "shdg").Plan(context.Background(), engine.Scenario{Net: nw}, opts); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	for i, e := range events {
		if e.Planner != "shdg" {
			t.Fatalf("event %d attributed to %q", i, e.Planner)
		}
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Phase == "" {
			t.Fatalf("event %d has empty phase", i)
		}
	}
}

func TestMidPlanCancellationViaProgress(t *testing.T) {
	nw := testNet(t, 40, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := engine.Options{Progress: func(engine.Event) { cancel() }}
	_, _, err := mustPlanner(t, "shdg").Plan(ctx, engine.Scenario{Net: nw}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWarmStartPaths(t *testing.T) {
	nw := testNet(t, 30, 7)
	warm := mustPlanner(t, "warm")

	// Cold: no previous plan falls back to the heuristic.
	coldPl, coldSt, err := warm.Plan(context.Background(), engine.Scenario{Net: nw}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if coldSt.Warm != nil {
		t.Fatalf("cold start reports repair stats: %+v", coldSt.Warm)
	}

	// Warm with positional carry inferred from the previous plan.
	sc := engine.Scenario{Net: nw, Prev: coldPl.Tour}
	warmPl, warmSt, err := warm.Plan(context.Background(), sc, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warmSt.Warm == nil || warmPl.Algorithm != "warm-repair" {
		t.Fatalf("warm start = %+v stats = %+v", warmPl, warmSt)
	}

	// Warm with an explicit carried assignment.
	sc.Carried = replan.CarryPositional(coldPl.Tour, nw.N())
	if _, st, err := warm.Plan(context.Background(), sc, engine.Options{}); err != nil || st.Warm == nil {
		t.Fatalf("explicit carry: %v, stats %+v", err, st)
	}
}

// TestPhaseBoundaryCancellationAllPlanners cancels from the first
// progress event — after the wrapper's entry check, before the adapter's
// own phase-boundary check — so every adapter's in-body ctx.Err gate is
// the one that has to fire.
func TestPhaseBoundaryCancellationAllPlanners(t *testing.T) {
	nw := testNet(t, 25, 3)
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := engine.Options{Progress: func(engine.Event) { cancel() }}
			pl, _, err := mustPlanner(t, name).Plan(ctx, engine.Scenario{Net: nw}, opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if pl != nil {
				t.Fatalf("canceled plan returned a result: %+v", pl)
			}
		})
	}
}
