// Package lp implements a dense two-phase primal simplex solver for linear
// programs and a 0/1 branch-and-bound integer solver on top of it. It is
// this repository's stand-in for the CPLEX runs in the paper's evaluation:
// the exact minimum-stop covers on small networks are certified against
// the set-cover ILP solved here, and the LP relaxation provides lower
// bounds for the experiment tables.
//
// The solver targets the small, dense instances this project produces
// (tens of variables). It is not a general-purpose LP code: no sparsity,
// no presolve, no revised simplex.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

const (
	// LE is "<=".
	LE Sense = iota
	// GE is ">=".
	GE
	// EQ is "=".
	EQ
)

// Status reports how solving ended.
type Status int

const (
	// Optimal: an optimal solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective decreases without bound.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Constraint is one row: sum_j Coef[j]·x_j  (Sense)  RHS.
type Constraint struct {
	Coef  []float64
	Sense Sense
	RHS   float64
}

// Model is a minimisation LP over non-negative variables:
//
//	minimise  c·x   subject to  constraints,  x >= 0.
//
// Maximisation callers negate the objective. Upper bounds are expressed as
// ordinary constraints.
type Model struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// NewModel returns a model with n non-negative variables and a zero
// objective.
func NewModel(n int) *Model {
	return &Model{NumVars: n, Objective: make([]float64, n)}
}

// SetObjective sets the coefficient of variable j.
func (m *Model) SetObjective(j int, c float64) {
	m.Objective[j] = c
}

// AddConstraint appends a row. The coefficient slice is copied.
func (m *Model) AddConstraint(coef []float64, sense Sense, rhs float64) {
	if len(coef) != m.NumVars {
		//mdglint:ignore nopanic dimension mismatch is a programming error, like mismatched matrix dimensions
		panic(fmt.Sprintf("lp: constraint has %d coefficients, model has %d vars", len(coef), m.NumVars))
	}
	m.Constraints = append(m.Constraints, Constraint{append([]float64(nil), coef...), sense, rhs})
}

// AddUpperBound adds x_j <= b.
func (m *Model) AddUpperBound(j int, b float64) {
	coef := make([]float64, m.NumVars)
	coef[j] = 1
	m.AddConstraint(coef, LE, b)
}

// Solution is an LP solution.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
}

const (
	tol     = 1e-9
	maxIter = 50000
)

// ErrIterationLimit is returned when simplex fails to converge, which for
// these tiny instances indicates a modelling bug.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// Solve runs two-phase primal simplex with Bland's anti-cycling rule.
func (m *Model) Solve() (*Solution, error) {
	nRows := len(m.Constraints)
	nStruct := m.NumVars

	// Normalise to RHS >= 0 and count auxiliary columns.
	type rowInfo struct {
		coef  []float64
		rhs   float64
		sense Sense
	}
	rows := make([]rowInfo, nRows)
	nSlack, nArt := 0, 0
	for i, c := range m.Constraints {
		coef := append([]float64(nil), c.Coef...)
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows[i] = rowInfo{coef, rhs, sense}
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	nCols := nStruct + nSlack + nArt
	// Tableau: nRows x (nCols + 1), last column = RHS.
	t := make([][]float64, nRows)
	basis := make([]int, nRows)
	slackAt, artAt := nStruct, nStruct+nSlack
	for i, r := range rows {
		t[i] = make([]float64, nCols+1)
		copy(t[i], r.coef)
		t[i][nCols] = r.rhs
		switch r.sense {
		case LE:
			t[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			t[i][slackAt] = -1
			slackAt++
			t[i][artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			t[i][artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}

	pivot := func(obj []float64, allowed int) (Status, error) {
		for iter := 0; iter < maxIter; iter++ {
			// Reduced costs: obj[j] - sum_i obj[basis[i]] * t[i][j].
			// Maintain explicitly each iteration (dense, small).
			enter := -1
			for j := 0; j < allowed; j++ {
				rc := obj[j]
				for i := 0; i < nRows; i++ {
					rc -= obj[basis[i]] * t[i][j]
				}
				if rc < -tol {
					enter = j // Bland: first improving column
					break
				}
			}
			if enter < 0 {
				return Optimal, nil
			}
			// Ratio test, Bland ties toward the lowest basis variable.
			leave, best := -1, math.Inf(1)
			for i := 0; i < nRows; i++ {
				if t[i][enter] > tol {
					ratio := t[i][nCols] / t[i][enter]
					if ratio < best-tol || (ratio < best+tol && (leave < 0 || basis[i] < basis[leave])) {
						leave, best = i, ratio
					}
				}
			}
			if leave < 0 {
				return Unbounded, nil
			}
			// Pivot on (leave, enter).
			pv := t[leave][enter]
			for j := 0; j <= nCols; j++ {
				t[leave][j] /= pv
			}
			for i := 0; i < nRows; i++ {
				if i != leave && math.Abs(t[i][enter]) > 0 {
					f := t[i][enter]
					for j := 0; j <= nCols; j++ {
						t[i][j] -= f * t[leave][j]
					}
				}
			}
			basis[leave] = enter
		}
		return Optimal, ErrIterationLimit
	}

	// Phase 1: minimise the sum of artificials.
	if nArt > 0 {
		phase1 := make([]float64, nCols)
		for j := nStruct + nSlack; j < nCols; j++ {
			phase1[j] = 1
		}
		st, err := pivot(phase1, nCols)
		if err != nil {
			return nil, err
		}
		if st == Unbounded {
			return nil, errors.New("lp: phase 1 unbounded (internal error)")
		}
		sum := 0.0
		for i := 0; i < nRows; i++ {
			if basis[i] >= nStruct+nSlack {
				sum += t[i][nCols]
			}
		}
		if sum > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any remaining (degenerate) artificials out of the basis.
		for i := 0; i < nRows; i++ {
			if basis[i] < nStruct+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < nStruct+nSlack; j++ {
				if math.Abs(t[i][j]) > tol {
					pv := t[i][j]
					for k := 0; k <= nCols; k++ {
						t[i][k] /= pv
					}
					for r := 0; r < nRows; r++ {
						if r != i && math.Abs(t[r][j]) > 0 {
							f := t[r][j]
							for k := 0; k <= nCols; k++ {
								t[r][k] -= f * t[i][k]
							}
						}
					}
					basis[i] = j
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: leave the artificial basic at zero. It
				// can never re-enter because phase 2 restricts columns.
				_ = pivoted
			}
		}
	}

	// Phase 2: minimise the real objective over structural + slack columns.
	phase2 := make([]float64, nCols)
	copy(phase2, m.Objective)
	st, err := pivot(phase2, nStruct+nSlack)
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	x := make([]float64, nStruct)
	for i, b := range basis {
		if b < nStruct {
			x[b] = t[i][nCols]
		}
	}
	obj := 0.0
	for j, c := range m.Objective {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj}, nil
}
