package lp

import (
	"errors"
	"math"
)

// IntSolution is a 0/1 integer solution.
type IntSolution struct {
	Status Status
	X      []int
	Obj    float64
	Exact  bool // false when the node cap tripped before the tree closed
}

// SolveBinary solves the model with every variable restricted to {0, 1}
// by LP-based branch and bound: solve the relaxation (with x <= 1 bounds
// added), branch on the most fractional variable, explore depth-first,
// and prune nodes whose relaxation bound cannot beat the incumbent.
// maxNodes caps the search (0 = unlimited).
func (m *Model) SolveBinary(maxNodes int) (*IntSolution, error) {
	n := m.NumVars
	fixed := make([]int, n) // -1 free, 0 fixed to 0, 1 fixed to 1
	for i := range fixed {
		fixed[i] = -1
	}
	best := &IntSolution{Status: Infeasible, Obj: math.Inf(1), Exact: true}
	nodes := 0

	var rec func() error
	rec = func() error {
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			best.Exact = false
			return nil
		}
		sol, err := m.solveFixed(fixed)
		if err != nil {
			return err
		}
		switch sol.Status {
		case Infeasible:
			return nil
		case Unbounded:
			return errors.New("lp: binary relaxation unbounded (missing bounds?)")
		}
		if sol.Obj >= best.Obj-1e-9 {
			return nil // bound: cannot improve the incumbent
		}
		// Most fractional free variable.
		branch, frac := -1, 0.0
		for j := 0; j < n; j++ {
			if fixed[j] >= 0 {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > frac+1e-9 {
				branch, frac = j, f
			}
		}
		if branch < 0 || frac < 1e-6 {
			// Integral: new incumbent.
			x := make([]int, n)
			for j := 0; j < n; j++ {
				x[j] = int(math.Round(sol.X[j]))
			}
			best.Status = Optimal
			best.Obj = sol.Obj
			best.X = x
			return nil
		}
		// Branch: try the rounding the relaxation prefers first.
		order := [2]int{0, 1}
		if sol.X[branch] >= 0.5 {
			order = [2]int{1, 0}
		}
		for _, v := range order {
			fixed[branch] = v
			if err := rec(); err != nil {
				return err
			}
			fixed[branch] = -1
			if maxNodes > 0 && nodes > maxNodes {
				return nil
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return best, nil
}

// solveFixed solves the LP relaxation with 0<=x<=1 and the given fixings.
func (m *Model) solveFixed(fixed []int) (*Solution, error) {
	sub := NewModel(m.NumVars)
	copy(sub.Objective, m.Objective)
	sub.Constraints = append(sub.Constraints, m.Constraints...)
	for j, f := range fixed {
		coef := make([]float64, m.NumVars)
		coef[j] = 1
		switch f {
		case -1:
			sub.AddConstraint(coef, LE, 1)
		case 0:
			sub.AddConstraint(coef, EQ, 0)
		case 1:
			sub.AddConstraint(coef, EQ, 1)
		}
	}
	return sub.Solve()
}

// RelaxationBound solves the 0/1 relaxation (all variables free in [0,1])
// and returns its objective — a lower bound for the binary program.
func (m *Model) RelaxationBound() (float64, Status, error) {
	fixed := make([]int, m.NumVars)
	for i := range fixed {
		fixed[i] = -1
	}
	sol, err := m.solveFixed(fixed)
	if err != nil {
		return 0, Optimal, err
	}
	return sol.Obj, sol.Status, nil
}
