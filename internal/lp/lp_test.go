package lp

import (
	"math"
	"testing"

	"mobicol/internal/bitset"
	"mobicol/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(b)) }

// Classic textbook LP:
//
//	maximise 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18
//
// Optimum (2, 6) with value 36. We minimise the negation.
func TestSimplexTextbook(t *testing.T) {
	m := NewModel(2)
	m.SetObjective(0, -3)
	m.SetObjective(1, -5)
	m.AddConstraint([]float64{1, 0}, LE, 4)
	m.AddConstraint([]float64{0, 2}, LE, 12)
	m.AddConstraint([]float64{3, 2}, LE, 18)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !almost(sol.Obj, -36) || !almost(sol.X[0], 2) || !almost(sol.X[1], 6) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSimplexEqualityAndGE(t *testing.T) {
	// minimise x + 2y  s.t.  x + y = 10, x >= 3, y >= 2.
	// Optimum: x=8, y=2, obj=12.
	m := NewModel(2)
	m.SetObjective(0, 1)
	m.SetObjective(1, 2)
	m.AddConstraint([]float64{1, 1}, EQ, 10)
	m.AddConstraint([]float64{1, 0}, GE, 3)
	m.AddConstraint([]float64{0, 1}, GE, 2)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Obj, 12) {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.X[0], 8) || !almost(sol.X[1], 2) {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	m := NewModel(1)
	m.AddConstraint([]float64{1}, GE, 5)
	m.AddConstraint([]float64{1}, LE, 3)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	m := NewModel(1)
	m.SetObjective(0, -1) // minimise -x with x free above
	m.AddConstraint([]float64{1}, GE, 0)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// minimise x  s.t.  -x <= -5  (i.e. x >= 5).
	m := NewModel(1)
	m.SetObjective(0, 1)
	m.AddConstraint([]float64{-1}, LE, -5)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.X[0], 5) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSimplexRedundantRows(t *testing.T) {
	// x + y = 4 twice; minimise x. Optimum x=0, y=4.
	m := NewModel(2)
	m.SetObjective(0, 1)
	m.AddConstraint([]float64{1, 1}, EQ, 4)
	m.AddConstraint([]float64{1, 1}, EQ, 4)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Obj, 0) || !almost(sol.X[1], 4) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// A degenerate vertex: several constraints meet at the optimum.
	m := NewModel(2)
	m.SetObjective(0, -1)
	m.SetObjective(1, -1)
	m.AddConstraint([]float64{1, 0}, LE, 1)
	m.AddConstraint([]float64{0, 1}, LE, 1)
	m.AddConstraint([]float64{1, 1}, LE, 2)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almost(sol.Obj, -2) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestAddUpperBound(t *testing.T) {
	m := NewModel(1)
	m.SetObjective(0, -1)
	m.AddUpperBound(0, 7)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.X[0], 7) {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestConstraintSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched constraint did not panic")
		}
	}()
	NewModel(2).AddConstraint([]float64{1}, LE, 1)
}

func TestBinaryKnapsackStyle(t *testing.T) {
	// maximise 5a + 4b + 3c  s.t.  2a + 3b + c <= 5, binary.
	// Optimum: a=1, b=0, c=1 -> 8 ... check: a=1,b=1 uses 5, value 9!
	// 2+3=5 <= 5, so a=1,b=1,c=0 gives 9. With c: 2+3+1=6 > 5.
	m := NewModel(3)
	m.SetObjective(0, -5)
	m.SetObjective(1, -4)
	m.SetObjective(2, -3)
	m.AddConstraint([]float64{2, 3, 1}, LE, 5)
	sol, err := m.SolveBinary(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !sol.Exact {
		t.Fatalf("sol = %+v", sol)
	}
	if !almost(sol.Obj, -9) {
		t.Fatalf("obj = %v, want -9 (x=%v)", sol.Obj, sol.X)
	}
}

func TestBinaryInfeasible(t *testing.T) {
	m := NewModel(2)
	m.AddConstraint([]float64{1, 1}, GE, 3) // impossible with binaries
	sol, err := m.SolveBinary(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestSetCoverModelMatchesBruteForce(t *testing.T) {
	s := rng.New(80)
	for trial := 0; trial < 20; trial++ {
		universe := 4 + s.Intn(6)
		nc := 3 + s.Intn(6)
		covers := make([]*bitset.Set, nc)
		for c := range covers {
			covers[c] = bitset.New(universe)
			for e := 0; e < universe; e++ {
				if s.Bool(0.4) {
					covers[c].Add(e)
				}
			}
		}
		m := SetCoverModel(universe, covers)
		sol, err := m.SolveBinary(0)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteMinCover(universe, covers)
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: ILP says %v, brute force says infeasible", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal || !sol.Exact {
			t.Fatalf("trial %d: sol = %+v, want optimal size %d", trial, sol, want)
		}
		if got := int(math.Round(sol.Obj)); got != want {
			t.Fatalf("trial %d: ILP cover size %d, brute force %d", trial, got, want)
		}
	}
}

// bruteMinCover enumerates all candidate subsets.
func bruteMinCover(universe int, covers []*bitset.Set) (int, bool) {
	nc := len(covers)
	best := -1
	for mask := 0; mask < 1<<uint(nc); mask++ {
		u := bitset.New(universe)
		size := 0
		for c := 0; c < nc; c++ {
			if mask&(1<<uint(c)) != 0 {
				u.Or(covers[c])
				size++
			}
		}
		if u.Count() == universe && (best < 0 || size < best) {
			best = size
		}
	}
	return best, best >= 0
}

func TestRelaxationBoundBelowInteger(t *testing.T) {
	s := rng.New(81)
	for trial := 0; trial < 10; trial++ {
		universe := 5 + s.Intn(5)
		nc := 4 + s.Intn(5)
		covers := make([]*bitset.Set, nc)
		feasible := bitset.New(universe)
		for c := range covers {
			covers[c] = bitset.New(universe)
			for e := 0; e < universe; e++ {
				if s.Bool(0.5) {
					covers[c].Add(e)
				}
			}
			feasible.Or(covers[c])
		}
		if feasible.Count() != universe {
			continue
		}
		m := SetCoverModel(universe, covers)
		lb, st, err := m.RelaxationBound()
		if err != nil {
			t.Fatal(err)
		}
		if st != Optimal {
			t.Fatalf("relaxation status %v", st)
		}
		sol, err := m.SolveBinary(0)
		if err != nil {
			t.Fatal(err)
		}
		if lb > sol.Obj+1e-6 {
			t.Fatalf("LP bound %v exceeds ILP optimum %v", lb, sol.Obj)
		}
	}
}

func TestBinaryNodeCap(t *testing.T) {
	s := rng.New(82)
	universe, nc := 20, 30
	covers := make([]*bitset.Set, nc)
	for c := range covers {
		covers[c] = bitset.New(universe)
		for e := 0; e < universe; e++ {
			if s.Bool(0.25) {
				covers[c].Add(e)
			}
		}
		covers[c].Add(c % universe) // ensure feasibility
	}
	m := SetCoverModel(universe, covers)
	sol, err := m.SolveBinary(3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Exact && sol.Status == Optimal {
		// With only 3 nodes the tree cannot close on 30 variables unless
		// the relaxation was already integral — accept that rare case.
		t.Log("relaxation happened to be integral")
	}
}

func BenchmarkSetCoverILP(b *testing.B) {
	s := rng.New(1)
	universe, nc := 15, 20
	covers := make([]*bitset.Set, nc)
	for c := range covers {
		covers[c] = bitset.New(universe)
		for e := 0; e < universe; e++ {
			if s.Bool(0.3) {
				covers[c].Add(e)
			}
		}
		covers[c].Add(c % universe)
	}
	m := SetCoverModel(universe, covers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveBinary(0); err != nil {
			b.Fatal(err)
		}
	}
}
