package lp

import "mobicol/internal/bitset"

// SetCoverModel builds the standard set-cover ILP
//
//	minimise  sum_c x_c
//	s.t.      sum_{c covers s} x_c >= 1   for every sensor s
//	          x_c in {0,1}
//
// from bitset covers over a universe of the given size. The polling-point
// planners use it both to certify their combinatorial exact search and to
// compute LP lower bounds on the number of stops.
func SetCoverModel(universe int, covers []*bitset.Set) *Model {
	m := NewModel(len(covers))
	for j := range covers {
		m.SetObjective(j, 1)
	}
	for s := 0; s < universe; s++ {
		coef := make([]float64, len(covers))
		any := false
		for c, set := range covers {
			if set.Has(s) {
				coef[c] = 1
				any = true
			}
		}
		// Rows for uncoverable sensors still get added; they make the
		// model infeasible, which is the correct answer.
		_ = any
		m.AddConstraint(coef, GE, 1)
	}
	return m
}
