package wsn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
)

func TestNewAndAccessors(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(100, 100)}
	nw := New(pts, geom.Pt(5, 5), 15, geom.Square(120))
	if nw.N() != 3 {
		t.Fatalf("N = %d", nw.N())
	}
	got := nw.Positions()
	for i := range pts {
		if !got[i].Eq(pts[i]) {
			t.Fatalf("Positions[%d] = %v", i, got[i])
		}
	}
	if nw.Nodes[1].ID != 1 {
		t.Fatal("node IDs not dense")
	}
}

func TestGraphIsUnitDisk(t *testing.T) {
	// 0-1 within range; 2 isolated.
	nw := New([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(50, 50)}, geom.Pt(0, 0), 12, geom.Square(60))
	g := nw.Graph()
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Fatal("unit-disk edges wrong")
	}
}

func TestGraphMatchesBruteForce(t *testing.T) {
	nw := MustDeploy(Config{N: 150, FieldSide: 200, Range: 30, Seed: 7})
	g := nw.Graph()
	for i := 0; i < nw.N(); i++ {
		for j := i + 1; j < nw.N(); j++ {
			inRange := nw.Nodes[i].Pos.Dist(nw.Nodes[j].Pos) <= nw.Range+geom.Eps
			if g.HasEdge(i, j) != inRange {
				t.Fatalf("edge (%d,%d): graph says %v, geometry says %v",
					i, j, g.HasEdge(i, j), inRange)
			}
		}
	}
}

func TestCoveredBy(t *testing.T) {
	nw := New([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(30, 0)}, geom.Pt(0, 0), 10, geom.Square(40))
	got := nw.CoveredBy(geom.Pt(1, 0))
	if len(got) != 2 {
		t.Fatalf("CoveredBy = %v", got)
	}
}

func TestNeighborsOfExclude(t *testing.T) {
	nw := New([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}, geom.Pt(0, 0), 10, geom.Square(40))
	if got := nw.NeighborsOf(geom.Pt(0, 0), 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("NeighborsOf exclude = %v", got)
	}
	if got := nw.NeighborsOf(geom.Pt(0, 0), -1); len(got) != 2 {
		t.Fatalf("NeighborsOf keep-all = %v", got)
	}
}

func TestDeployDeterminism(t *testing.T) {
	cfg := Config{N: 50, FieldSide: 100, Range: 20, Seed: 3}
	a, b := MustDeploy(cfg), MustDeploy(cfg)
	for i := range a.Nodes {
		if !a.Nodes[i].Pos.Eq(b.Nodes[i].Pos) {
			t.Fatalf("deployment not deterministic at node %d", i)
		}
	}
	cfg.Seed = 4
	c := MustDeploy(cfg)
	same := 0
	for i := range a.Nodes {
		if a.Nodes[i].Pos.Eq(c.Nodes[i].Pos) {
			same++
		}
	}
	if same == len(a.Nodes) {
		t.Fatal("different seeds produced identical deployment")
	}
}

func TestDeployAllPlacementsInField(t *testing.T) {
	for _, p := range []Placement{Uniform, GridJitter, Clustered, Ring, Corridor} {
		nw := MustDeploy(Config{N: 120, FieldSide: 150, Range: 25, Placement: p, Seed: 9})
		if nw.N() != 120 {
			t.Fatalf("%v: N = %d", p, nw.N())
		}
		for _, n := range nw.Nodes {
			if !nw.Field.Contains(n.Pos) {
				t.Fatalf("%v: node %d at %v outside field", p, n.ID, n.Pos)
			}
		}
	}
}

func TestSinkPlacement(t *testing.T) {
	centre := MustDeploy(Config{N: 10, FieldSide: 100, Range: 20, Seed: 1})
	if !centre.Sink.Eq(geom.Pt(50, 50)) {
		t.Fatalf("default sink = %v, want centre", centre.Sink)
	}
	corner := MustDeploy(Config{N: 10, FieldSide: 100, Range: 20, Seed: 1, SinkAtCorner: true})
	if !corner.Sink.Eq(geom.Pt(0, 0)) {
		t.Fatalf("corner sink = %v", corner.Sink)
	}
}

func TestHopsToSink(t *testing.T) {
	// Chain: sink at origin, sensors at 8, 16, 24 with range 10.
	pts := []geom.Point{geom.Pt(8, 0), geom.Pt(16, 0), geom.Pt(24, 0), geom.Pt(90, 90)}
	nw := New(pts, geom.Pt(0, 0), 10, geom.Square(100))
	hops := nw.HopsToSink()
	want := []int{1, 2, 3, -1}
	for i, w := range want {
		if hops[i] != w {
			t.Fatalf("HopsToSink = %v, want %v", hops, want)
		}
	}
}

func TestHopsToSinkNoNeighbors(t *testing.T) {
	nw := New([]geom.Point{geom.Pt(90, 90)}, geom.Pt(0, 0), 10, geom.Square(100))
	if hops := nw.HopsToSink(); hops[0] != -1 {
		t.Fatalf("isolated network hops = %v", hops)
	}
}

func TestComponentsClusteredLikelyDisconnected(t *testing.T) {
	// A sparse clustered deployment with a short range is essentially
	// guaranteed to be disconnected; this exercises the multi-component
	// path that mobile collection is designed for.
	nw := MustDeploy(Config{N: 60, FieldSide: 500, Range: 20, Placement: Clustered, Clusters: 4, Seed: 11})
	comps := nw.Components()
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != nw.N() {
		t.Fatalf("components cover %d of %d nodes", total, nw.N())
	}
	if len(comps) < 2 {
		t.Skip("rare draw: clustered deployment happened to be connected")
	}
}

func TestAvgDegreeScalesWithDensity(t *testing.T) {
	sparse := MustDeploy(Config{N: 100, FieldSide: 400, Range: 25, Seed: 5})
	dense := MustDeploy(Config{N: 400, FieldSide: 200, Range: 25, Seed: 5})
	if sparse.AvgDegree() >= dense.AvgDegree() {
		t.Fatalf("sparse degree %v >= dense degree %v", sparse.AvgDegree(), dense.AvgDegree())
	}
	// Expected degree in a uniform field ~ N * pi R^2 / L^2 (ignoring edges).
	expect := float64(dense.N()) * math.Pi * 625 / 40000
	if math.Abs(dense.AvgDegree()-expect) > 0.5*expect {
		t.Fatalf("dense degree %v far from analytic %v", dense.AvgDegree(), expect)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	nw := MustDeploy(Config{N: 40, FieldSide: 120, Range: 22, Placement: Clustered, Seed: 13})
	var buf bytes.Buffer
	if err := nw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != nw.N() || got.Range != nw.Range || !got.Sink.Eq(nw.Sink) {
		t.Fatal("round trip lost metadata")
	}
	for i := range nw.Nodes {
		if !got.Nodes[i].Pos.Eq(nw.Nodes[i].Pos) {
			t.Fatalf("round trip moved node %d", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"sensors":[],"sink":[0,0],"range":0,"field":[0,0,1,1]}`)); err == nil {
		t.Fatal("zero range accepted")
	}
}

func TestDeployPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{N: -1, FieldSide: 10, Range: 1},
		{N: 5, FieldSide: 0, Range: 1},
		{N: 5, FieldSide: 10, Range: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			MustDeploy(cfg)
		}()
	}
}

// Property: every sensor covered by a point p is within Range of p.
func TestQuickCoveredByWithinRange(t *testing.T) {
	nw := MustDeploy(Config{N: 200, FieldSide: 200, Range: 30, Seed: 17})
	s := rng.New(18)
	f := func() bool {
		p := geom.Pt(s.Uniform(0, 200), s.Uniform(0, 200))
		for _, i := range nw.CoveredBy(p) {
			if nw.Nodes[i].Pos.Dist(p) > nw.Range+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeployAndGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw := MustDeploy(Config{N: 500, FieldSide: 300, Range: 30, Seed: uint64(i)})
		nw.Graph()
	}
}
