package wsn

import (
	"fmt"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
)

// Placement selects how sensors are scattered over the field.
type Placement int

const (
	// Uniform scatters sensors independently and uniformly at random —
	// the paper's deployment model.
	Uniform Placement = iota
	// GridJitter places sensors on a regular lattice perturbed by
	// Gaussian noise, modelling planned deployments.
	GridJitter
	// Clustered draws sensors from a mixture of Gaussian clusters,
	// modelling interest-driven deployments (and producing the
	// disconnected topologies that motivate mobile collection).
	Clustered
	// Ring scatters sensors in an annulus around the field centre,
	// modelling perimeter-surveillance deployments.
	Ring
	// Corridor scatters sensors in a thin horizontal band, modelling
	// road/pipeline monitoring.
	Corridor
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case GridJitter:
		return "grid-jitter"
	case Clustered:
		return "clustered"
	case Ring:
		return "ring"
	case Corridor:
		return "corridor"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Config describes a deployment to generate.
type Config struct {
	N         int       // number of sensors
	FieldSide float64   // field is FieldSide × FieldSide metres
	Range     float64   // transmission range R_s
	Placement Placement // spatial distribution (default Uniform)
	Clusters  int       // number of clusters for Clustered (default 5)
	Seed      uint64    // RNG seed

	// SinkAtCorner puts the sink at the field origin instead of the
	// paper's default centre placement.
	SinkAtCorner bool
}

// Deploy generates a network according to cfg. The same cfg always yields
// the same network. Invalid configurations are reported as errors.
func Deploy(cfg Config) (*Network, error) {
	if cfg.N < 0 {
		return nil, fmt.Errorf("wsn: negative sensor count %d", cfg.N)
	}
	if cfg.FieldSide <= 0 {
		return nil, fmt.Errorf("wsn: non-positive field side %v", cfg.FieldSide)
	}
	if cfg.Range <= 0 {
		return nil, fmt.Errorf("wsn: non-positive transmission range %v", cfg.Range)
	}
	field := geom.Square(cfg.FieldSide)
	s := rng.New(cfg.Seed)
	pts := make([]geom.Point, 0, cfg.N)
	switch cfg.Placement {
	case Uniform:
		for i := 0; i < cfg.N; i++ {
			pts = append(pts, geom.Pt(s.Uniform(0, cfg.FieldSide), s.Uniform(0, cfg.FieldSide)))
		}
	case GridJitter:
		pts = gridJitter(s, cfg.N, cfg.FieldSide)
	case Clustered:
		pts = clustered(s, cfg.N, cfg.FieldSide, cfg.Clusters)
	case Ring:
		pts = ring(s, cfg.N, cfg.FieldSide)
	case Corridor:
		pts = corridor(s, cfg.N, cfg.FieldSide)
	default:
		return nil, fmt.Errorf("wsn: unknown placement %v", cfg.Placement)
	}
	sink := field.Center()
	if cfg.SinkAtCorner {
		sink = field.Min
	}
	return New(pts, sink, cfg.Range, field), nil
}

// MustDeploy is Deploy for known-good configurations (tests, examples,
// fixed experiment tables). It panics on a config Deploy would reject.
func MustDeploy(cfg Config) *Network {
	nw, err := Deploy(cfg)
	if err != nil {
		//mdglint:ignore nopanic Must-variant for compile-time-constant configs, mirroring regexp.MustCompile
		panic(err)
	}
	return nw
}

func gridJitter(s *rng.Source, n int, side float64) []geom.Point {
	// Choose the smallest square lattice with at least n cells, jitter
	// each chosen cell centre, and keep the first n.
	cells := 1
	for cells*cells < n {
		cells++
	}
	step := side / float64(cells)
	field := geom.Square(side)
	pts := make([]geom.Point, 0, n)
	order := s.Perm(cells * cells)
	for _, c := range order {
		if len(pts) == n {
			break
		}
		cx := (float64(c%cells) + 0.5) * step
		cy := (float64(c/cells) + 0.5) * step
		p := geom.Pt(cx+s.NormMeanStd(0, step/4), cy+s.NormMeanStd(0, step/4))
		pts = append(pts, field.Clamp(p))
	}
	return pts
}

func clustered(s *rng.Source, n int, side float64, k int) []geom.Point {
	if k <= 0 {
		k = 5
	}
	field := geom.Square(side)
	centres := make([]geom.Point, k)
	for i := range centres {
		centres[i] = geom.Pt(s.Uniform(0.15*side, 0.85*side), s.Uniform(0.15*side, 0.85*side))
	}
	spread := side / 12
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		c := centres[s.Intn(k)]
		p := geom.Pt(c.X+s.NormMeanStd(0, spread), c.Y+s.NormMeanStd(0, spread))
		pts = append(pts, field.Clamp(p))
	}
	return pts
}

func ring(s *rng.Source, n int, side float64) []geom.Point {
	field := geom.Square(side)
	centre := field.Center()
	inner, outer := 0.3*side, 0.45*side
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		r := s.Uniform(inner, outer)
		theta := s.Uniform(0, 2*3.141592653589793)
		pts = append(pts, field.Clamp(centre.Polar(r, theta)))
	}
	return pts
}

func corridor(s *rng.Source, n int, side float64) []geom.Point {
	band := side / 8
	mid := side / 2
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Pt(s.Uniform(0, side), s.Uniform(mid-band, mid+band)))
	}
	return pts
}
