package wsn

import (
	"encoding/json"
	"fmt"
	"io"

	"mobicol/internal/geom"
)

// fileFormat is the on-disk JSON schema for a deployed network, used by
// cmd/wsngen and cmd/mdgplan to pass deployments between tools.
type fileFormat struct {
	Sensors [][2]float64 `json:"sensors"`
	Sink    [2]float64   `json:"sink"`
	Range   float64      `json:"range"`
	Field   [4]float64   `json:"field"` // minX, minY, maxX, maxY
}

// WriteJSON encodes the network to w.
func (nw *Network) WriteJSON(w io.Writer) error {
	ff := fileFormat{
		Sensors: make([][2]float64, nw.N()),
		Sink:    [2]float64{nw.Sink.X, nw.Sink.Y},
		Range:   nw.Range,
		Field:   [4]float64{nw.Field.Min.X, nw.Field.Min.Y, nw.Field.Max.X, nw.Field.Max.Y},
	}
	for i, n := range nw.Nodes {
		ff.Sensors[i] = [2]float64{n.Pos.X, n.Pos.Y}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ff)
}

// ReadJSON decodes a network previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Network, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("wsn: decode network: %w", err)
	}
	if ff.Range <= 0 {
		return nil, fmt.Errorf("wsn: network file has non-positive range %v", ff.Range)
	}
	pts := make([]geom.Point, len(ff.Sensors))
	for i, s := range ff.Sensors {
		pts[i] = geom.Pt(s[0], s[1])
	}
	field := geom.NewRect(geom.Pt(ff.Field[0], ff.Field[1]), geom.Pt(ff.Field[2], ff.Field[3]))
	return New(pts, geom.Pt(ff.Sink[0], ff.Sink[1]), ff.Range, field), nil
}
