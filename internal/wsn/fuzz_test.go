package wsn

import (
	"bytes"
	"math"
	"testing"
)

// FuzzNetworkRead feeds arbitrary bytes to the deployment decoder (the
// format cmd/wsngen writes and every planner CLI reads). Accepted inputs
// must uphold the Network invariants (positive range) and round-trip
// bit-identically through WriteJSON.
func FuzzNetworkRead(f *testing.F) {
	f.Add([]byte(`{"sensors":[[10,10],[20,30]],"sink":[0,0],"range":15,"field":[0,0,100,100]}`))
	f.Add([]byte(`{"sensors":[],"sink":[50,50],"range":1e-3,"field":[0,0,100,100]}`))
	f.Add([]byte(`{"sensors":[[1,1],[1,1],[1,1]],"sink":[1,1],"range":2,"field":[0,0,2,2]}`))
	f.Add([]byte(`{"range":-5}`))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, data []byte) {
		nw, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are the bug
		}
		if nw.Range <= 0 {
			t.Fatalf("decoder accepted non-positive range %v", nw.Range)
		}
		// Exercise the accessors a malformed network would break.
		_ = nw.N()
		_ = nw.Field.Contains(nw.Sink)
		for i := 0; i < nw.N(); i++ {
			if d := nw.Nodes[i].Pos.Dist(nw.Sink); d < 0 {
				t.Fatalf("negative distance %v for sensor %d", d, i)
			}
		}
		var buf bytes.Buffer
		if err := nw.WriteJSON(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v\n%s", err, buf.Bytes())
		}
		if back.N() != nw.N() {
			t.Fatalf("sensor count drifted: %d -> %d", nw.N(), back.N())
		}
		same := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
		if !same(back.Sink.X, nw.Sink.X) || !same(back.Sink.Y, nw.Sink.Y) || !same(back.Range, nw.Range) {
			t.Fatalf("sink/range drifted: %v r=%v -> %v r=%v", nw.Sink, nw.Range, back.Sink, back.Range)
		}
		for i := 0; i < nw.N(); i++ {
			if !same(back.Nodes[i].Pos.X, nw.Nodes[i].Pos.X) || !same(back.Nodes[i].Pos.Y, nw.Nodes[i].Pos.Y) {
				t.Fatalf("sensor %d drifted: %v -> %v", i, nw.Nodes[i].Pos, back.Nodes[i].Pos)
			}
		}
		for _, v := range [4]float64{nw.Field.Min.X, nw.Field.Min.Y, nw.Field.Max.X, nw.Field.Max.Y} {
			if math.IsNaN(v) {
				return // NaN cannot come from JSON; belt and braces
			}
		}
		if !same(back.Field.Min.X, nw.Field.Min.X) || !same(back.Field.Max.Y, nw.Field.Max.Y) {
			t.Fatalf("field drifted: %v -> %v", nw.Field, back.Field)
		}
	})
}
