// Package wsn models the wireless sensor network of the paper: N sensors
// scattered over an L×L field with a static data sink, a common
// transmission range, and unit-disk-graph connectivity. It provides
// deployment generators, topology construction, and per-network metrics.
package wsn

import (
	"fmt"
	"sync"

	"mobicol/internal/geom"
	"mobicol/internal/graph"
)

// Node is one sensor.
type Node struct {
	ID  int
	Pos geom.Point
}

// Network is a deployed sensor field. Build one with Deploy (random
// placements) or New (explicit positions), then call Topology-dependent
// accessors freely: the unit-disk graph is constructed lazily and cached.
type Network struct {
	Nodes []Node
	Sink  geom.Point // static data sink (tour start/end)
	Range float64    // transmission range R_s in metres
	Field geom.Rect  // deployment area

	// Lazy caches. Scenarios are shared across concurrent planning
	// requests, so first-use construction is serialized: without the
	// Once guards two planners racing on a cold network would both
	// build and publish unsynchronized.
	gOnce   sync.Once
	g       *graph.Graph // lazy unit-disk graph
	idxOnce sync.Once
	index   *geom.GridIndex // lazy spatial index over node positions
}

// New builds a network from explicit sensor positions.
func New(positions []geom.Point, sink geom.Point, transmissionRange float64, field geom.Rect) *Network {
	if transmissionRange <= 0 {
		//mdglint:ignore nopanic documented precondition on a hand-built network; Deploy validates user configs and returns errors
		panic("wsn: non-positive transmission range")
	}
	nodes := make([]Node, len(positions))
	for i, p := range positions {
		nodes[i] = Node{ID: i, Pos: p}
	}
	return &Network{Nodes: nodes, Sink: sink, Range: transmissionRange, Field: field}
}

// N returns the number of sensors.
func (nw *Network) N() int { return len(nw.Nodes) }

// Positions returns the sensor positions in ID order as a fresh slice.
func (nw *Network) Positions() []geom.Point {
	out := make([]geom.Point, len(nw.Nodes))
	for i, n := range nw.Nodes {
		out[i] = n.Pos
	}
	return out
}

// ensureIndex returns the spatial index over node positions, building it
// on first use.
//
//mdglint:allow-mut(idempotent lazy cache: the only write is the sync.Once-guarded publication of an index derived from immutable fields)
func (nw *Network) ensureIndex() *geom.GridIndex {
	nw.idxOnce.Do(func() {
		nw.index = geom.NewGridIndex(nw.Positions(), nw.Range)
	})
	return nw.index
}

// Graph returns the unit-disk connectivity graph: vertices are sensors and
// an edge joins every pair within transmission range. Edge weights are the
// Euclidean distances; hop-count algorithms (BFS) ignore weights.
//
//mdglint:allow-mut(idempotent lazy cache: the only write is the sync.Once-guarded publication of the unit-disk graph derived from immutable fields)
func (nw *Network) Graph() *graph.Graph {
	nw.gOnce.Do(func() {
		nw.g = nw.buildGraph()
	})
	return nw.g
}

func (nw *Network) buildGraph() *graph.Graph {
	g := graph.New(nw.N())
	idx := nw.ensureIndex()
	buf := make([]int, 0, 32)
	for i, n := range nw.Nodes {
		buf = idx.Within(n.Pos, nw.Range, buf[:0])
		for _, j := range buf {
			if j > i { // add each pair once
				g.AddEdge(i, j, n.Pos.Dist(nw.Nodes[j].Pos))
			}
		}
	}
	return g
}

// NeighborsOf returns the IDs of sensors within transmission range of p
// (excluding any sensor exactly at index `exclude`; pass -1 to keep all).
func (nw *Network) NeighborsOf(p geom.Point, exclude int) []int {
	buf := nw.ensureIndex().Within(p, nw.Range, nil)
	if exclude < 0 {
		return buf
	}
	out := buf[:0]
	for _, i := range buf {
		if i != exclude {
			out = append(out, i)
		}
	}
	return out
}

// CoveredBy returns the sensor IDs within transmission range of point p —
// the sensors that could upload to a collector parked at p in a single hop.
func (nw *Network) CoveredBy(p geom.Point) []int {
	return nw.ensureIndex().Within(p, nw.Range, nil)
}

// SinkNeighbors returns the sensors within transmission range of the sink.
func (nw *Network) SinkNeighbors() []int { return nw.CoveredBy(nw.Sink) }

// Components returns the connected components of the unit-disk graph.
func (nw *Network) Components() [][]int {
	comps, _ := graph.Components(nw.Graph())
	return comps
}

// AvgDegree returns the mean number of neighbours per sensor.
func (nw *Network) AvgDegree() float64 {
	if nw.N() == 0 {
		return 0
	}
	return 2 * float64(nw.Graph().M()) / float64(nw.N())
}

// HopsToSink returns per-sensor minimum hop counts to the sink, treating
// the sink as directly reachable by its in-range sensors. Sensors with no
// multi-hop path to the sink have hop count -1; mobile collection still
// serves them, which is one of the paper's selling points.
func (nw *Network) HopsToSink() []int {
	srcs := nw.SinkNeighbors()
	hops := make([]int, nw.N())
	if len(srcs) == 0 {
		for i := range hops {
			hops[i] = -1
		}
		return hops
	}
	r := graph.MultiBFS(nw.Graph(), srcs)
	for i := range hops {
		if r.Dist[i] < 0 {
			hops[i] = -1
		} else {
			hops[i] = r.Dist[i] + 1 // +1 for the final hop into the sink
		}
	}
	return hops
}

// String summarises the network.
func (nw *Network) String() string {
	return fmt.Sprintf("wsn.Network{N=%d, R=%.1fm, field=%.0fx%.0fm, sink=%v}",
		nw.N(), nw.Range, nw.Field.Width(), nw.Field.Height(), nw.Sink)
}
