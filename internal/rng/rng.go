// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository.
//
// Every experiment in this repository is seeded, so results are exactly
// reproducible across runs and machines. The generator is a SplitMix64
// core (Steele, Lea & Flood, OOPSLA 2014) wrapped with convenience
// samplers. SplitMix64 passes BigCrush, has a full 2^64 period, and —
// crucially for parameter sweeps — supports cheap independent substreams
// derived from a parent stream.
package rng

import "math"

// golden is the 64-bit golden ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// Source is a deterministic random source. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent substream from s. The parent stream
// advances by one step; the child is seeded from that output. Substreams
// let each trial of an experiment own its private generator so that
// adding trials never perturbs earlier ones.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		//mdglint:ignore nopanic mirrors math/rand.Intn's documented contract
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Norm returns a standard normal variate (Box–Muller, polar form).
func (s *Source) Norm() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation.
func (s *Source) NormMeanStd(mean, std float64) float64 {
	return mean + std*s.Norm()
}

// Exp returns an exponential variate with rate lambda (> 0).
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		//mdglint:ignore nopanic documented precondition; rates are positive literals or validated config fields
		panic("rng: Exp with non-positive rate")
	}
	u := s.Float64()
	//mdglint:ignore floateq guards math.Log(0); Float64 returns exact dyadic rationals, so == 0 is well-defined
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / lambda
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher–Yates).
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}
