package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if v := s.Float64(); v < 0 || v >= 1 {
		t.Fatalf("zero-value Source produced out-of-range Float64 %v", v)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling substreams produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) = %v out of range", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const n = 200000
	lambda := 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIntsPreservesMultiset(t *testing.T) {
	s := New(23)
	orig := []int{5, 5, 1, 2, 9, 9, 9}
	p := append([]int(nil), orig...)
	s.ShuffleInts(p)
	counts := map[int]int{}
	for _, v := range orig {
		counts[v]++
	}
	for _, v := range p {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("shuffle changed multiplicity of %d by %d", k, c)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit fraction %v", frac)
	}
}

// Property: Intn(n) always lands in [0, n) for any positive n.
func TestQuickIntnInRange(t *testing.T) {
	s := New(31)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mul64 agrees with big-integer multiplication on the low bits
// and with float approximation on the high bits.
func TestQuickMul64(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		if lo != a*b {
			return false
		}
		// Verify hi using 32-bit decomposition independently.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		mid := a1*b0 + (a0*b0)>>32
		wantHi := a1*b1 + mid>>32 + (mid&0xffffffff+a0*b1)>>32
		return hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenSequence pins the exact SplitMix64 output for a fixed seed.
// Any change to the generator silently invalidates every committed
// experiment table, so the raw bit patterns are locked down here.
func TestGoldenSequence(t *testing.T) {
	want := []uint64{
		0xbdd732262feb6e95,
		0x28efe333b266f103,
		0x47526757130f9f52,
		0x581ce1ff0e4ae394,
		0x09bc585a244823f2,
		0xde4431fa3c80db06,
	}
	s := New(42)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#016x, want %#016x", i, got, w)
		}
	}
	s2 := New(42)
	if f := s2.Float64(); f != 0.7415648787718233 {
		t.Fatalf("first Float64(seed 42) = %v", f)
	}
}

// TestCrossSeedIndependence checks that streams from adjacent seeds are
// statistically unrelated: bitwise agreement must sit near the 50%
// expected of independent uniform bits. SplitMix64's finaliser is what
// breaks the correlation between seeds that differ in one bit.
func TestCrossSeedIndependence(t *testing.T) {
	const draws = 4096
	for _, pair := range [][2]uint64{{0, 1}, {1, 2}, {7, 7 + 1<<32}} {
		a, b := New(pair[0]), New(pair[1])
		agree := 0
		for i := 0; i < draws; i++ {
			agree += bits.OnesCount64(^(a.Uint64() ^ b.Uint64()))
		}
		frac := float64(agree) / float64(64*draws)
		// 64*4096 Bernoulli(1/2) trials: sd ~ 0.001, allow 10 sd.
		if frac < 0.49 || frac > 0.51 {
			t.Fatalf("seeds %d/%d: bit agreement %.4f, want ~0.5", pair[0], pair[1], frac)
		}
	}
}

// TestSplitStreamStability verifies the substream contract that the
// experiment harness depends on: a child's sequence is fixed at Split
// time, so adding later trials (more Splits, more parent draws) never
// perturbs the streams earlier trials received.
func TestSplitStreamStability(t *testing.T) {
	record := func(nTrials int) []uint64 {
		parent := New(99)
		first := parent.Split()
		for i := 1; i < nTrials; i++ {
			parent.Split()
		}
		out := make([]uint64, 8)
		for i := range out {
			out[i] = first.Uint64()
		}
		return out
	}
	short, long := record(1), record(50)
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("draw %d: trial-1 stream changed when trial count grew (%#x != %#x)", i, short[i], long[i])
		}
	}
	// Children must also not echo the parent stream.
	parent, ref := New(99), New(99)
	child := parent.Split()
	ref.Uint64() // consume the Split draw
	same := 0
	for i := 0; i < 8; i++ {
		if child.Uint64() == ref.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("child echoed %d of 8 parent outputs", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Intn(1000)
	}
	_ = sink
}
