package cover

import (
	"fmt"

	"mobicol/internal/geom"
)

// CandidateStrategy selects how candidate polling-point positions are
// generated. The E8 ablation compares all of them.
type CandidateStrategy int

const (
	// SensorSites uses the sensor positions themselves. A stop at a
	// sensor always covers at least that sensor, so feasibility is
	// guaranteed for any deployment.
	SensorSites CandidateStrategy = iota
	// FieldGrid uses a uniform lattice over the field, the paper's
	// evaluation choice ("predefined positions on a grid ... 20 m
	// apart"). Grid candidates may be infeasible for outlying sensors
	// when the spacing is too coarse; GenerateCandidates therefore
	// always unions in the sensor sites as a safety net.
	FieldGrid
	// Intersections adds the pairwise intersection points of the
	// sensors' range circles to the sensor sites. Some optimal disk
	// cover uses only these positions, so this is the strongest set.
	Intersections
)

// String names the strategy.
func (cs CandidateStrategy) String() string {
	switch cs {
	case SensorSites:
		return "sensor-sites"
	case FieldGrid:
		return "field-grid"
	case Intersections:
		return "intersections"
	default:
		//mdglint:allow-alloc(diagnostic fallback for an unknown enum value; never hit with valid strategies)
		return fmt.Sprintf("CandidateStrategy(%d)", int(cs))
	}
}

// GenerateCandidates produces candidate stop positions for covering the
// given sensors with disks of radius r.
//   - SensorSites: the sensor positions.
//   - FieldGrid: lattice points with the given spacing over field, plus
//     the sensor sites (so every instance stays feasible).
//   - Intersections: sensor sites plus circle–circle intersection points.
//
// gridSpacing is only used by FieldGrid; pass 0 elsewhere. An unknown
// strategy is reported as an error.
func GenerateCandidates(sensors []geom.Point, field geom.Rect, r float64, strategy CandidateStrategy, gridSpacing float64) ([]geom.Point, error) {
	switch strategy {
	case SensorSites:
		return append([]geom.Point(nil), sensors...), nil
	case FieldGrid:
		if gridSpacing <= 0 {
			gridSpacing = 20 // the paper's evaluation default, in metres
		}
		pts := field.GridPoints(gridSpacing)
		return append(pts, sensors...), nil
	case Intersections:
		return geom.CoverPointCandidates(sensors, r), nil
	default:
		return nil, fmt.Errorf("cover: unknown candidate strategy %v", strategy)
	}
}
