package cover

// CELF-style lazy evaluation for greedy max-coverage (Leskovec et al.,
// KDD 2007). Coverage gain is submodular: once a sensor is covered it never
// becomes uncovered, so a candidate's marginal gain only ever decreases as
// picks accumulate. A candidate's cached gain from an earlier round is
// therefore an upper bound on its true gain, and the scan over all
// candidates per pick can be replaced by a max-heap: pop the top, and if
// its cached gain is stale, recompute and push back. The moment the top of
// the heap carries a gain computed against the current uncovered set, it is
// the exact argmax — every other entry's cached key only over-states its
// true key. In practice almost all candidates are never re-evaluated after
// the first pick, turning the O(picks x candidates) rescans into a handful
// of popcounts per pick.
//
// The heap key replicates the naive scan's selection rule exactly —
// lexicographic (gain desc, tie-break distance asc, candidate index asc) —
// so the lazy and naive variants provably choose identical pick sequences;
// TestGreedyMatchesNaiveOracle pins that equivalence.

// celfEntry is one candidate in the lazy-greedy heap.
type celfEntry struct {
	cand  int     // candidate index in the instance
	gain  int     // cached coverage gain, an upper bound when stale
	dist  float64 // squared distance to the tie-break point (fixed)
	round int     // pick round the gain was computed in
}

// ranksAbove reports whether a ranks strictly above b under the greedy
// selection order: larger gain first, then smaller tie-break distance,
// then smaller candidate index. Candidate indices are unique, so the order
// is total and the argmax is always unique.
func (a celfEntry) ranksAbove(b celfEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.dist < b.dist {
		return true
	}
	if b.dist < a.dist {
		return false
	}
	return a.cand < b.cand
}

// celfHeap is a binary max-heap over celfEntry ordered by ranksAbove.
type celfHeap []celfEntry

// init establishes the heap property over an arbitrarily ordered slice.
func (h celfHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h celfHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && h[l].ranksAbove(h[best]) {
			best = l
		}
		if r < len(h) && h[r].ranksAbove(h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// popTop removes and returns the maximum entry.
func (h *celfHeap) popTop() celfEntry {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	h.siftDown(0)
	return top
}
