// Package cover solves the geometric covering half of the single-hop data
// gathering problem: choose stop positions ("polling points") so that
// every sensor lies within transmission range of at least one stop.
//
// The package generates candidate stop positions (sensor sites, a uniform
// grid over the field as in the paper's evaluation, and circle–circle
// intersection points), and selects covers with either the classic greedy
// max-coverage heuristic (ln n approximation) or an exact branch-and-bound
// enumeration for small instances.
package cover

import (
	"fmt"

	"mobicol/internal/bitset"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/par"
)

// Instance is a set-cover instance: Covers[c] is the set of sensor indices
// within range of candidate c. Universe is the number of sensors.
type Instance struct {
	Universe   int
	Candidates []geom.Point
	Covers     []*bitset.Set

	// err records an invalid construction (mismatched radii, non-positive
	// range); Err and every solving method surface it.
	err error

	// uncoverable() is pure in the instance; memoize it so the repeated
	// feasibility checks on the planning hot path cost three bitset
	// allocations once instead of per call.
	uncovOnce bool
	uncovIdx  int
}

// NewInstance builds the covering instance for the given sensors,
// candidate positions, and transmission range. Candidates that cover no
// sensor are dropped (a stop there could never be useful).
func NewInstance(sensors []geom.Point, candidates []geom.Point, r float64) *Instance {
	return NewInstancePool(sensors, candidates, r, par.Seq())
}

// NewInstancePool is NewInstance with candidate-cover construction spread
// across the given worker pool. Every candidate's cover is computed
// independently and the kept candidates are reduced in input order, so the
// instance is identical for any pool size.
func NewInstancePool(sensors []geom.Point, candidates []geom.Point, r float64, pool par.Pool) *Instance {
	radii := make([]float64, len(sensors))
	for i := range radii {
		radii[i] = r
	}
	return NewInstanceRadiiPool(sensors, radii, candidates, pool)
}

// NewInstanceRadii builds a covering instance with per-sensor
// transmission ranges: candidate c covers sensor s when their distance is
// at most radii[s]. Heterogeneous ranges model mixed hardware or depleted
// amplifiers; the uniform-range instance is the special case of equal
// radii.
func NewInstanceRadii(sensors []geom.Point, radii []float64, candidates []geom.Point) *Instance {
	return NewInstanceRadiiPool(sensors, radii, candidates, par.Seq())
}

// NewInstanceRadiiPool is NewInstanceRadii across a worker pool: the
// per-candidate cover computations are embarrassingly parallel, and the
// ordered reduction keeps the candidate numbering byte-identical to the
// sequential construction.
func NewInstanceRadiiPool(sensors []geom.Point, radii []float64, candidates []geom.Point, pool par.Pool) *Instance {
	if len(radii) != len(sensors) {
		return &Instance{Universe: len(sensors),
			err: fmt.Errorf("cover: %d radii for %d sensors", len(radii), len(sensors))}
	}
	maxR := 0.0
	for i, r := range radii {
		if r <= 0 {
			return &Instance{Universe: len(sensors),
				err: fmt.Errorf("cover: non-positive radius %v for sensor %d", r, i)}
		}
		if r > maxR {
			maxR = r
		}
	}
	inst := &Instance{Universe: len(sensors)}
	if len(sensors) == 0 {
		return inst
	}
	idx := geom.NewGridIndex(sensors, maxR)
	// Each chunk owns a reusable query buffer and writes only its own
	// slots of sets; the grid index is read-only and safe to share.
	sets := make([]*bitset.Set, len(candidates))
	pool.ForChunks(len(candidates), func(lo, hi int) {
		//mdglint:allow-alloc(one query buffer per worker chunk, reused across its candidates)
		buf := make([]int, 0, 64)
		for ci := lo; ci < hi; ci++ {
			c := candidates[ci]
			buf = idx.Within(c, maxR, buf[:0])
			var set *bitset.Set
			for _, s := range buf {
				if sensors[s].Dist2(c) <= radii[s]*radii[s]+geom.Eps {
					if set == nil {
						//mdglint:allow-alloc(cover sets outlive the chunk — they are the instance being built)
						set = bitset.New(len(sensors))
					}
					set.Add(s)
				}
			}
			sets[ci] = set
		}
	})
	// Ordered reduction: keep useful candidates in input order, exactly as
	// the sequential append loop did.
	for ci, set := range sets {
		if set == nil {
			continue
		}
		inst.Candidates = append(inst.Candidates, candidates[ci])
		inst.Covers = append(inst.Covers, set)
	}
	return inst
}

// Feasible reports whether the union of all candidate covers is the whole
// universe. When false, some sensor is unreachable from every candidate
// and no cover exists (Err describes the first such sensor).
func (in *Instance) Feasible() bool { return in.uncoverable() < 0 }

func (in *Instance) uncoverable() int {
	if !in.uncovOnce {
		in.uncovIdx = in.computeUncoverable()
		in.uncovOnce = true
	}
	return in.uncovIdx
}

// computeUncoverable does the actual union scan. It runs at most once per
// instance via the uncoverable() memo.
//
//mdglint:allow-alloc(feasibility scan runs once per instance; every hot-path call hits the memo)
func (in *Instance) computeUncoverable() int {
	all := bitset.New(in.Universe)
	for _, c := range in.Covers {
		all.Or(c)
	}
	if all.Count() == in.Universe {
		return -1
	}
	missing := all.Clone()
	full := bitset.New(in.Universe)
	full.Fill()
	full.AndNot(missing)
	return full.NextSet(0)
}

// Err returns nil for valid, feasible instances and a descriptive error
// for invalid constructions or instances where some sensor is uncoverable.
func (in *Instance) Err() error {
	if in.err != nil {
		return in.err
	}
	if s := in.uncoverable(); s >= 0 {
		//mdglint:allow-alloc(infeasible-instance error path; never taken on a planning run that proceeds)
		return fmt.Errorf("cover: sensor %d is outside the range of every candidate", s)
	}
	return nil
}

// Greedy selects candidates by repeatedly taking the one covering the most
// still-uncovered sensors, breaking ties toward the candidate closest to
// tieBreak (the planners pass the sink so that stops gravitate inward,
// which shortens the eventual tour). It returns the chosen candidate
// indices in selection order. Greedy is the classic (1 + ln n)
// approximation for set cover.
func (in *Instance) Greedy(tieBreak geom.Point) ([]int, error) {
	return in.GreedyObs(tieBreak, nil)
}

// GreedyObs is Greedy with observability: when sp is non-nil it records
// the instance size as span fields, each greedy iteration into the
// "cover.greedy_iters" counter, the per-pick coverage gain into the
// "cover.gain" histogram — the distribution the paper's ln n bound is
// about — and the number of lazy-gain recomputations into
// "cover.celf_reevals". A nil span makes it identical to Greedy.
//
// The selection runs as CELF lazy greedy (see celf.go): submodularity of
// coverage gain lets cached gains serve as upper bounds, so each pick
// re-evaluates only the few candidates whose cached gain still tops the
// heap instead of rescanning every candidate. The pick sequence is
// provably identical to the naive full-scan greedy.
func (in *Instance) GreedyObs(tieBreak geom.Point, sp *obs.Span) ([]int, error) {
	var s GreedyScratch
	picks, err := in.GreedyInto(tieBreak, sp, &s)
	if err != nil {
		return nil, err
	}
	// GreedyInto lends the scratch's selection buffer; callers of the
	// public API own their result.
	//mdglint:allow-alloc(result handed to the caller must outlive the scratch)
	return append([]int(nil), picks...), nil
}

// GreedyScratch holds the reusable state of a CELF greedy selection:
// the uncovered set, the lazy-gain heap, and the selection buffer. A
// zero value is ready; reusing one across selections keeps the greedy
// inner loop allocation-free once the buffers have grown.
type GreedyScratch struct {
	uncovered *bitset.Set
	h         celfHeap
	chosen    []int
}

//mdglint:allow-alloc(scratch growth is amortized; steady state reuses the retained buffers)
func (s *GreedyScratch) ensure(universe, candidates int) {
	if s.uncovered == nil || s.uncovered.Len() != universe {
		s.uncovered = bitset.New(universe)
	}
	if cap(s.h) < candidates {
		s.h = make(celfHeap, candidates)
	}
	s.h = s.h[:candidates]
	s.chosen = s.chosen[:0]
}

// GreedyInto is GreedyObs running entirely in the caller's scratch. The
// returned slice aliases the scratch's selection buffer and is only
// valid until the next call with the same scratch.
//
//mdglint:hotpath
func (in *Instance) GreedyInto(tieBreak geom.Point, sp *obs.Span, s *GreedyScratch) ([]int, error) {
	if err := in.Err(); err != nil {
		return nil, err
	}
	sp.SetInt("candidates", int64(len(in.Candidates)))
	sp.SetInt("universe", int64(in.Universe))
	s.ensure(in.Universe, len(in.Covers))
	uncovered := s.uncovered
	uncovered.Fill()

	// Round 0: every candidate's gain against the full universe is just its
	// cover size — no popcount against uncovered needed.
	h := s.h
	for c, set := range in.Covers {
		h[c] = celfEntry{cand: c, gain: set.Count(), dist: in.Candidates[c].Dist2(tieBreak)}
	}
	h.init()

	reevals := int64(0)
	for round := 0; uncovered.Count() > 0; round++ {
		// Pop until the top entry's gain is fresh for this round. Gains
		// are monotone non-increasing, so stale entries only over-rank;
		// a fresh top is the exact naive argmax.
		for len(h) > 0 && h[0].round != round {
			h[0].gain = in.Covers[h[0].cand].CountAnd(uncovered)
			h[0].round = round
			h.siftDown(0)
			reevals++
		}
		if len(h) == 0 || h[0].gain == 0 {
			// Unreachable given the feasibility pre-check, but guard anyway.
			//mdglint:allow-alloc(defensive error path; unreachable after the feasibility pre-check)
			return nil, fmt.Errorf("cover: greedy stalled with %d sensors uncovered", uncovered.Count())
		}
		best := h.popTop()
		//mdglint:allow-alloc(append reuses selection capacity retained in the scratch)
		s.chosen = append(s.chosen, best.cand)
		uncovered.AndNot(in.Covers[best.cand])
		sp.Count("cover.greedy_iters", 1)
		sp.Observe("cover.gain", float64(best.gain))
	}
	sp.Count("cover.celf_reevals", reevals)
	sp.SetInt("chosen", int64(len(s.chosen)))
	return s.chosen, nil
}

// Covered returns the union of the covers of the chosen candidates.
func (in *Instance) Covered(chosen []int) *bitset.Set {
	u := bitset.New(in.Universe)
	for _, c := range chosen {
		u.Or(in.Covers[c])
	}
	return u
}

// IsCover reports whether the chosen candidates cover every sensor.
func (in *Instance) IsCover(chosen []int) bool {
	return in.Covered(chosen).Count() == in.Universe
}

// Assign maps every sensor to its nearest chosen candidate, returning
// assignment[sensor] = position in chosen. Sensors covered by no chosen
// candidate get -1. The planners use this to decide which stop each sensor
// uploads at.
func (in *Instance) Assign(sensors []geom.Point, chosen []int) []int {
	assignment := make([]int, len(sensors))
	for i := range assignment {
		assignment[i] = -1
	}
	for pos, c := range chosen {
		set := in.Covers[c]
		set.ForEach(func(s int) {
			cur := assignment[s]
			if cur < 0 || sensors[s].Dist2(in.Candidates[chosen[pos]]) < sensors[s].Dist2(in.Candidates[chosen[cur]]) {
				assignment[s] = pos
			}
		})
	}
	return assignment
}

// Prune removes dominated candidates: candidate a is dominated when some
// candidate b covers a strict superset of a's sensors (or the same set with
// a lower index). Pruning shrinks exact-search instances dramatically on
// dense fields. It returns a new Instance plus a map from new candidate
// index to original index.
func (in *Instance) Prune() (*Instance, []int) {
	n := len(in.Covers)
	dominated := make([]bool, n)
	for a := 0; a < n; a++ {
		if dominated[a] {
			continue
		}
		for b := 0; b < n; b++ {
			if a == b || dominated[b] {
				continue
			}
			if in.Covers[a].SubsetOf(in.Covers[b]) {
				if in.Covers[a].Equal(in.Covers[b]) && a < b {
					continue // keep the earlier of two equals
				}
				dominated[a] = true
				break
			}
		}
	}
	out := &Instance{Universe: in.Universe, err: in.err}
	var orig []int
	for c := 0; c < n; c++ {
		if !dominated[c] {
			out.Candidates = append(out.Candidates, in.Candidates[c])
			out.Covers = append(out.Covers, in.Covers[c])
			orig = append(orig, c)
		}
	}
	return out, orig
}
