// Package cover solves the geometric covering half of the single-hop data
// gathering problem: choose stop positions ("polling points") so that
// every sensor lies within transmission range of at least one stop.
//
// The package generates candidate stop positions (sensor sites, a uniform
// grid over the field as in the paper's evaluation, and circle–circle
// intersection points), and selects covers with either the classic greedy
// max-coverage heuristic (ln n approximation) or an exact branch-and-bound
// enumeration for small instances.
package cover

import (
	"fmt"
	"slices"

	"mobicol/internal/bitset"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/par"
)

// Instance is a set-cover instance: Cover(c) is the sorted list of sensor
// indices within range of candidate c. Universe is the number of sensors.
//
// Covers are stored sparse (CSR: one offsets slice into one shared index
// slice) because geometric instances are sparse by construction — a
// candidate covers the few sensors within one transmission range, so the
// average cover holds a handful of sensors regardless of n. Dense bitset
// rows would cost Universe bits per candidate (≈1.2 GB at n=100k with
// 100k candidates); CSR costs 4 bytes per covered pair (a few MB). Paths
// that genuinely want set algebra on small instances (exact search, the
// ILP model) materialise a dense view once via CoverSets.
type Instance struct {
	Universe   int
	Candidates []geom.Point

	// CSR cover lists: candidate c covers idx[off[c]:off[c+1]], ascending.
	off []int32
	idx []int32

	// covers is the lazily materialised dense view (CoverSets).
	covers []*bitset.Set

	// err records an invalid construction (mismatched radii, non-positive
	// range); Err and every solving method surface it.
	err error

	// uncoverable() is pure in the instance; memoize it so the repeated
	// feasibility checks on the planning hot path cost one scan instead
	// of one per call.
	uncovOnce bool
	uncovIdx  int
}

// NumCandidates returns the number of (useful) candidates.
func (in *Instance) NumCandidates() int { return len(in.Candidates) }

// Cover returns the sorted sensor indices covered by candidate c. The
// slice aliases the instance's storage; callers must not mutate it.
//
//mdglint:hotpath
func (in *Instance) Cover(c int) []int32 {
	return in.idx[in.off[c]:in.off[c+1]]
}

// CoverSets materialises (once) and returns the dense bitset view of the
// covers, for small-instance consumers that want set algebra. Large-n
// planning paths must stay on Cover: the dense view is quadratic memory.
//
//mdglint:allow-alloc(dense view is materialised once, on small-instance paths only)
func (in *Instance) CoverSets() []*bitset.Set {
	if in.covers == nil && len(in.Candidates) > 0 {
		in.covers = make([]*bitset.Set, len(in.Candidates))
		for c := range in.covers {
			set := bitset.New(in.Universe)
			for _, s := range in.Cover(c) {
				set.Add(int(s))
			}
			in.covers[c] = set
		}
	}
	return in.covers
}

// NewInstance builds the covering instance for the given sensors,
// candidate positions, and transmission range. Candidates that cover no
// sensor are dropped (a stop there could never be useful).
func NewInstance(sensors []geom.Point, candidates []geom.Point, r float64) *Instance {
	return NewInstancePool(sensors, candidates, r, par.Seq())
}

// NewInstancePool is NewInstance with candidate-cover construction spread
// across the given worker pool. Every candidate's cover is computed
// independently and the kept candidates are reduced in input order, so the
// instance is identical for any pool size.
func NewInstancePool(sensors []geom.Point, candidates []geom.Point, r float64, pool par.Pool) *Instance {
	radii := make([]float64, len(sensors))
	for i := range radii {
		radii[i] = r
	}
	return NewInstanceRadiiPool(sensors, radii, candidates, pool)
}

// NewInstanceRadii builds a covering instance with per-sensor
// transmission ranges: candidate c covers sensor s when their distance is
// at most radii[s]. Heterogeneous ranges model mixed hardware or depleted
// amplifiers; the uniform-range instance is the special case of equal
// radii.
func NewInstanceRadii(sensors []geom.Point, radii []float64, candidates []geom.Point) *Instance {
	return NewInstanceRadiiPool(sensors, radii, candidates, par.Seq())
}

// NewInstanceRadiiPool is NewInstanceRadii across a worker pool: the
// per-candidate cover computations are embarrassingly parallel, and the
// ordered reduction keeps the candidate numbering byte-identical to the
// sequential construction. Each cover list is sorted ascending, so the
// instance is also independent of the grid index's cell iteration order.
func NewInstanceRadiiPool(sensors []geom.Point, radii []float64, candidates []geom.Point, pool par.Pool) *Instance {
	if len(radii) != len(sensors) {
		return &Instance{Universe: len(sensors), off: []int32{0},
			err: fmt.Errorf("cover: %d radii for %d sensors", len(radii), len(sensors))}
	}
	maxR := 0.0
	for i, r := range radii {
		if r <= 0 {
			return &Instance{Universe: len(sensors), off: []int32{0},
				err: fmt.Errorf("cover: non-positive radius %v for sensor %d", r, i)}
		}
		if r > maxR {
			maxR = r
		}
	}
	inst := &Instance{Universe: len(sensors), off: []int32{0}}
	if len(sensors) == 0 {
		return inst
	}
	// Occupancy-aware sizing keeps per-query work flat when the field is
	// dense relative to the range; the query results are exact either way.
	sidx := geom.NewGridIndexFor(sensors, maxR)
	// Each chunk owns a reusable query buffer and writes only its own
	// slots of lists; the grid index is read-only and safe to share.
	lists := make([][]int32, len(candidates))
	pool.ForChunks(len(candidates), func(lo, hi int) {
		//mdglint:allow-alloc(one query buffer per worker chunk, reused across its candidates)
		buf := make([]int, 0, 64)
		for ci := lo; ci < hi; ci++ {
			c := candidates[ci]
			buf = sidx.Within(c, maxR, buf[:0])
			var list []int32
			for _, s := range buf {
				if sensors[s].Dist2(c) <= radii[s]*radii[s]+geom.Eps {
					//mdglint:allow-alloc(cover lists outlive the chunk — they are the instance being built)
					list = append(list, int32(s))
				}
			}
			slices.Sort(list)
			lists[ci] = list
		}
	})
	// Ordered reduction: keep useful candidates in input order, exactly as
	// the sequential append loop did, folding the lists into one CSR pair.
	kept, total := 0, 0
	for _, l := range lists {
		if len(l) > 0 {
			kept++
			total += len(l)
		}
	}
	inst.Candidates = make([]geom.Point, 0, kept)
	inst.off = make([]int32, 1, kept+1)
	inst.idx = make([]int32, 0, total)
	for ci, l := range lists {
		if len(l) == 0 {
			continue
		}
		inst.Candidates = append(inst.Candidates, candidates[ci])
		inst.idx = append(inst.idx, l...)
		inst.off = append(inst.off, int32(len(inst.idx)))
	}
	return inst
}

// Feasible reports whether the union of all candidate covers is the whole
// universe. When false, some sensor is unreachable from every candidate
// and no cover exists (Err describes the first such sensor).
func (in *Instance) Feasible() bool { return in.uncoverable() < 0 }

func (in *Instance) uncoverable() int {
	if !in.uncovOnce {
		in.uncovIdx = in.computeUncoverable()
		in.uncovOnce = true
	}
	return in.uncovIdx
}

// computeUncoverable does the actual union scan. It runs at most once per
// instance via the uncoverable() memo.
//
//mdglint:allow-alloc(feasibility scan runs once per instance; every hot-path call hits the memo)
func (in *Instance) computeUncoverable() int {
	all := bitset.New(in.Universe)
	covered := 0
	for _, s := range in.idx {
		if !all.Has(int(s)) {
			all.Add(int(s))
			covered++
		}
	}
	if covered == in.Universe {
		return -1
	}
	for s := 0; s < in.Universe; s++ {
		if !all.Has(s) {
			return s
		}
	}
	return -1
}

// Err returns nil for valid, feasible instances and a descriptive error
// for invalid constructions or instances where some sensor is uncoverable.
func (in *Instance) Err() error {
	if in.err != nil {
		return in.err
	}
	if s := in.uncoverable(); s >= 0 {
		//mdglint:allow-alloc(infeasible-instance error path; never taken on a planning run that proceeds)
		return fmt.Errorf("cover: sensor %d is outside the range of every candidate", s)
	}
	return nil
}

// Greedy selects candidates by repeatedly taking the one covering the most
// still-uncovered sensors, breaking ties toward the candidate closest to
// tieBreak (the planners pass the sink so that stops gravitate inward,
// which shortens the eventual tour). It returns the chosen candidate
// indices in selection order. Greedy is the classic (1 + ln n)
// approximation for set cover.
func (in *Instance) Greedy(tieBreak geom.Point) ([]int, error) {
	return in.GreedyObs(tieBreak, nil)
}

// GreedyObs is Greedy with observability: when sp is non-nil it records
// the instance size as span fields, each greedy iteration into the
// "cover.greedy_iters" counter, the per-pick coverage gain into the
// "cover.gain" histogram — the distribution the paper's ln n bound is
// about — and the number of lazy-gain recomputations into
// "cover.celf_reevals". A nil span makes it identical to Greedy.
//
// The selection runs as CELF lazy greedy (see celf.go): submodularity of
// coverage gain lets cached gains serve as upper bounds, so each pick
// re-evaluates only the few candidates whose cached gain still tops the
// heap instead of rescanning every candidate. The pick sequence is
// provably identical to the naive full-scan greedy.
func (in *Instance) GreedyObs(tieBreak geom.Point, sp *obs.Span) ([]int, error) {
	var s GreedyScratch
	picks, err := in.GreedyInto(tieBreak, sp, &s)
	if err != nil {
		return nil, err
	}
	// GreedyInto lends the scratch's selection buffer; callers of the
	// public API own their result.
	//mdglint:allow-alloc(result handed to the caller must outlive the scratch)
	return append([]int(nil), picks...), nil
}

// GreedyScratch holds the reusable state of a CELF greedy selection:
// the uncovered set, the lazy-gain heap, and the selection buffer. A
// zero value is ready; reusing one across selections keeps the greedy
// inner loop allocation-free once the buffers have grown.
type GreedyScratch struct {
	uncovered *bitset.Set
	h         celfHeap
	chosen    []int
}

//mdglint:allow-alloc(scratch growth is amortized; steady state reuses the retained buffers)
func (s *GreedyScratch) ensure(universe, candidates int) {
	if s.uncovered == nil || s.uncovered.Len() != universe {
		s.uncovered = bitset.New(universe)
	}
	if cap(s.h) < candidates {
		s.h = make(celfHeap, candidates)
	}
	s.h = s.h[:candidates]
	s.chosen = s.chosen[:0]
}

// gainAgainst counts how many of candidate c's sensors are still in
// uncovered — the CELF re-evaluation kernel. Sparse iteration makes it
// O(|cover|) per call instead of O(universe/64) bitset words.
//
//mdglint:hotpath
func (in *Instance) gainAgainst(c int, uncovered *bitset.Set) int {
	g := 0
	for _, s := range in.Cover(c) {
		if uncovered.Has(int(s)) {
			g++
		}
	}
	return g
}

// GreedyInto is GreedyObs running entirely in the caller's scratch. The
// returned slice aliases the scratch's selection buffer and is only
// valid until the next call with the same scratch.
//
//mdglint:hotpath
func (in *Instance) GreedyInto(tieBreak geom.Point, sp *obs.Span, s *GreedyScratch) ([]int, error) {
	if err := in.Err(); err != nil {
		return nil, err
	}
	sp.SetInt("candidates", int64(len(in.Candidates)))
	sp.SetInt("universe", int64(in.Universe))
	s.ensure(in.Universe, in.NumCandidates())
	uncovered := s.uncovered
	uncovered.Fill()
	remaining := in.Universe

	// Round 0: every candidate's gain against the full universe is just its
	// cover size — no membership scan needed.
	h := s.h
	for c := range in.Candidates {
		h[c] = celfEntry{cand: c, gain: len(in.Cover(c)), dist: in.Candidates[c].Dist2(tieBreak)}
	}
	h.init()

	reevals := int64(0)
	for round := 0; remaining > 0; round++ {
		// Pop until the top entry's gain is fresh for this round. Gains
		// are monotone non-increasing, so stale entries only over-rank;
		// a fresh top is the exact naive argmax.
		for len(h) > 0 && h[0].round != round {
			h[0].gain = in.gainAgainst(h[0].cand, uncovered)
			h[0].round = round
			h.siftDown(0)
			reevals++
		}
		if len(h) == 0 || h[0].gain == 0 {
			// Unreachable given the feasibility pre-check, but guard anyway.
			//mdglint:allow-alloc(defensive error path; unreachable after the feasibility pre-check)
			return nil, fmt.Errorf("cover: greedy stalled with %d sensors uncovered", remaining)
		}
		best := h.popTop()
		//mdglint:allow-alloc(append reuses selection capacity retained in the scratch)
		s.chosen = append(s.chosen, best.cand)
		for _, sv := range in.Cover(best.cand) {
			if uncovered.Has(int(sv)) {
				uncovered.Remove(int(sv))
				remaining--
			}
		}
		sp.Count("cover.greedy_iters", 1)
		sp.Observe("cover.gain", float64(best.gain))
	}
	sp.Count("cover.celf_reevals", reevals)
	sp.SetInt("chosen", int64(len(s.chosen)))
	return s.chosen, nil
}

// Covered returns the union of the covers of the chosen candidates.
func (in *Instance) Covered(chosen []int) *bitset.Set {
	u := bitset.New(in.Universe)
	for _, c := range chosen {
		for _, s := range in.Cover(c) {
			u.Add(int(s))
		}
	}
	return u
}

// IsCover reports whether the chosen candidates cover every sensor.
func (in *Instance) IsCover(chosen []int) bool {
	return in.Covered(chosen).Count() == in.Universe
}

// Assign maps every sensor to its nearest chosen candidate, returning
// assignment[sensor] = position in chosen. Sensors covered by no chosen
// candidate get -1. The planners use this to decide which stop each sensor
// uploads at.
func (in *Instance) Assign(sensors []geom.Point, chosen []int) []int {
	assignment := make([]int, len(sensors))
	for i := range assignment {
		assignment[i] = -1
	}
	for pos, c := range chosen {
		for _, sv := range in.Cover(c) {
			s := int(sv)
			cur := assignment[s]
			if cur < 0 || sensors[s].Dist2(in.Candidates[chosen[pos]]) < sensors[s].Dist2(in.Candidates[chosen[cur]]) {
				assignment[s] = pos
			}
		}
	}
	return assignment
}

// subsetOfSorted reports whether every element of a (ascending) is also
// in b (ascending).
func subsetOfSorted(a, b []int32) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}

// Prune removes dominated candidates: candidate a is dominated when some
// candidate b covers a strict superset of a's sensors (or the same set with
// a lower index). Pruning shrinks exact-search instances dramatically on
// dense fields. It returns a new Instance plus a map from new candidate
// index to original index.
func (in *Instance) Prune() (*Instance, []int) {
	n := in.NumCandidates()
	dominated := make([]bool, n)
	for a := 0; a < n; a++ {
		if dominated[a] {
			continue
		}
		ca := in.Cover(a)
		for b := 0; b < n; b++ {
			if a == b || dominated[b] {
				continue
			}
			cb := in.Cover(b)
			if subsetOfSorted(ca, cb) {
				if len(ca) == len(cb) && a < b {
					continue // keep the earlier of two equals
				}
				dominated[a] = true
				break
			}
		}
	}
	out := &Instance{Universe: in.Universe, err: in.err, off: []int32{0}}
	var orig []int
	for c := 0; c < n; c++ {
		if !dominated[c] {
			out.Candidates = append(out.Candidates, in.Candidates[c])
			out.idx = append(out.idx, in.Cover(c)...)
			out.off = append(out.off, int32(len(out.idx)))
			orig = append(orig, c)
		}
	}
	return out, orig
}
