package cover

import (
	"testing"
	"testing/quick"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
)

func randSensors(s *rng.Source, n int, l float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(s.Uniform(0, l), s.Uniform(0, l))
	}
	return pts
}

func mustCandidates(t *testing.T, sensors []geom.Point, field geom.Rect, r float64, strategy CandidateStrategy, gridSpacing float64) []geom.Point {
	t.Helper()
	cands, err := GenerateCandidates(sensors, field, r, strategy, gridSpacing)
	if err != nil {
		t.Fatal(err)
	}
	return cands
}

func TestGenerateCandidatesUnknownStrategy(t *testing.T) {
	if _, err := GenerateCandidates(nil, geom.Square(10), 5, CandidateStrategy(99), 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestNewInstanceRadiiRejectsBadInput(t *testing.T) {
	sensors := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	if err := NewInstanceRadii(sensors, []float64{5}, sensors).Err(); err == nil {
		t.Fatal("mismatched radii accepted")
	}
	in := NewInstanceRadii(sensors, []float64{5, -1}, sensors)
	if err := in.Err(); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := in.Greedy(geom.Pt(0, 0)); err == nil {
		t.Fatal("greedy ran on an invalid instance")
	}
	if pruned, _ := in.Prune(); pruned.Err() == nil {
		t.Fatal("pruning dropped the construction error")
	}
}

func TestNewInstanceDropsUselessCandidates(t *testing.T) {
	sensors := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	cands := []geom.Point{geom.Pt(0, 0), geom.Pt(500, 500)}
	in := NewInstance(sensors, cands, 5)
	if len(in.Candidates) != 1 {
		t.Fatalf("kept %d candidates, want 1", len(in.Candidates))
	}
}

func TestFeasibility(t *testing.T) {
	sensors := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 100)}
	in := NewInstance(sensors, []geom.Point{geom.Pt(0, 0)}, 5)
	if in.Feasible() {
		t.Fatal("infeasible instance reported feasible")
	}
	if in.Err() == nil {
		t.Fatal("Err nil on infeasible instance")
	}
	in2 := NewInstance(sensors, sensors, 5)
	if !in2.Feasible() || in2.Err() != nil {
		t.Fatal("feasible instance rejected")
	}
}

func TestGreedyCoversEverything(t *testing.T) {
	s := rng.New(70)
	for trial := 0; trial < 20; trial++ {
		sensors := randSensors(s, 30+s.Intn(100), 200)
		in := NewInstance(sensors, sensors, 30)
		chosen, err := in.Greedy(geom.Pt(100, 100))
		if err != nil {
			t.Fatal(err)
		}
		if !in.IsCover(chosen) {
			t.Fatal("greedy result is not a cover")
		}
		// No chosen candidate should be fully redundant at selection time:
		// picking it must have covered at least one new sensor, so the
		// cover has at most Universe stops.
		if len(chosen) > in.Universe {
			t.Fatalf("greedy chose %d stops for %d sensors", len(chosen), in.Universe)
		}
	}
}

func TestGreedySingleStopWhenOneCandidateCoversAll(t *testing.T) {
	sensors := []geom.Point{geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(-1, 0)}
	cands := append([]geom.Point{geom.Pt(0, 0)}, sensors...)
	in := NewInstance(sensors, cands, 2)
	chosen, err := in.Greedy(geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || !in.Candidates[chosen[0]].Eq(geom.Pt(0, 0)) {
		t.Fatalf("chosen = %v", chosen)
	}
}

func TestGreedyTieBreakTowardSink(t *testing.T) {
	// Two candidates each covering exactly one (different) sensor would
	// both be chosen; but when two candidates cover the SAME single
	// sensor, the one nearer the sink must win.
	sensors := []geom.Point{geom.Pt(50, 50)}
	cands := []geom.Point{geom.Pt(50, 58), geom.Pt(50, 44)} // both within r=10
	in := NewInstance(sensors, cands, 10)
	chosen, err := in.Greedy(geom.Pt(50, 40)) // sink south: candidate 1 closer
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("tie break failed: chosen = %v", chosen)
	}
}

func TestAssignNearestStop(t *testing.T) {
	sensors := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(4, 0)}
	cands := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	in := NewInstance(sensors, cands, 6)
	chosen := []int{0, 1}
	a := in.Assign(sensors, chosen)
	if a[0] != 0 || a[1] != 1 || a[2] != 0 {
		t.Fatalf("Assign = %v", a)
	}
}

func TestAssignUncoveredIsMinusOne(t *testing.T) {
	sensors := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	in := NewInstance(sensors, sensors, 5)
	a := in.Assign(sensors, []int{0})
	if a[0] != 0 || a[1] != -1 {
		t.Fatalf("Assign = %v", a)
	}
}

func TestPruneRemovesDominated(t *testing.T) {
	// Candidate at centre covers both sensors; each sensor site covers
	// only itself -> both sites dominated.
	sensors := []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0)}
	cands := []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(4, 0)}
	in := NewInstance(sensors, cands, 5)
	pruned, orig := in.Prune()
	if pruned.NumCandidates() != 1 {
		t.Fatalf("pruned to %d candidates, want 1", pruned.NumCandidates())
	}
	if !in.Candidates[orig[0]].Eq(geom.Pt(4, 0)) {
		t.Fatalf("kept wrong candidate %v", in.Candidates[orig[0]])
	}
}

func TestPruneKeepsOneOfEquals(t *testing.T) {
	sensors := []geom.Point{geom.Pt(0, 0)}
	cands := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0)}
	in := NewInstance(sensors, cands, 5)
	pruned, _ := in.Prune()
	if pruned.NumCandidates() != 1 {
		t.Fatalf("equal covers pruned to %d, want 1", pruned.NumCandidates())
	}
}

func TestExactMinOptimality(t *testing.T) {
	// Three sensor clusters; one candidate per cluster centre covers the
	// whole cluster, so the optimum is 3 while per-sensor covers need 6.
	sensors := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0),
		geom.Pt(100, 0), geom.Pt(104, 0),
		geom.Pt(0, 100), geom.Pt(4, 100),
	}
	cands := append([]geom.Point{geom.Pt(2, 0), geom.Pt(102, 0), geom.Pt(2, 100)}, sensors...)
	in := NewInstance(sensors, cands, 3)
	chosen, exact, err := in.ExactMin(0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("tiny instance not solved exactly")
	}
	if len(chosen) != 3 {
		t.Fatalf("exact cover size %d, want 3", len(chosen))
	}
	if !in.IsCover(chosen) {
		t.Fatal("exact result is not a cover")
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	s := rng.New(71)
	for trial := 0; trial < 15; trial++ {
		sensors := randSensors(s, 10+s.Intn(20), 120)
		cands := mustCandidates(t, sensors, geom.Square(120), 30, Intersections, 0)
		in := NewInstance(sensors, cands, 30)
		greedy, err := in.Greedy(geom.Pt(60, 60))
		if err != nil {
			t.Fatal(err)
		}
		exactSet, exact, err := in.ExactMin(0)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatal("small instance not solved exactly")
		}
		if len(exactSet) > len(greedy) {
			t.Fatalf("exact (%d) worse than greedy (%d)", len(exactSet), len(greedy))
		}
		if !in.IsCover(exactSet) {
			t.Fatal("exact result is not a cover")
		}
	}
}

func TestExactMinNodeCap(t *testing.T) {
	s := rng.New(72)
	sensors := randSensors(s, 60, 200)
	in := NewInstance(sensors, sensors, 25)
	chosen, _, err := in.ExactMin(5)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(chosen) {
		t.Fatal("capped search returned a non-cover")
	}
}

func TestExactMinInfeasible(t *testing.T) {
	sensors := []geom.Point{geom.Pt(0, 0), geom.Pt(500, 500)}
	in := NewInstance(sensors, []geom.Point{geom.Pt(0, 0)}, 5)
	if _, _, err := in.ExactMin(0); err == nil {
		t.Fatal("infeasible instance did not error")
	}
}

func TestGenerateCandidatesStrategies(t *testing.T) {
	s := rng.New(73)
	sensors := randSensors(s, 40, 100)
	field := geom.Square(100)
	sites := mustCandidates(t, sensors, field, 20, SensorSites, 0)
	if len(sites) != 40 {
		t.Fatalf("SensorSites produced %d", len(sites))
	}
	grid := mustCandidates(t, sensors, field, 20, FieldGrid, 20)
	if len(grid) != 36+40 { // 6x6 lattice + sensor sites
		t.Fatalf("FieldGrid produced %d", len(grid))
	}
	inter := mustCandidates(t, sensors, field, 20, Intersections, 0)
	if len(inter) < 40 {
		t.Fatalf("Intersections produced %d", len(inter))
	}
	// All strategies must yield feasible instances (sensor sites are
	// always included or are the base set).
	for _, cands := range [][]geom.Point{sites, grid, inter} {
		if !NewInstance(sensors, cands, 20).Feasible() {
			t.Fatal("candidate strategy produced infeasible instance")
		}
	}
}

// Property: greedy always returns a valid cover whose every stop covers at
// least one sensor assigned to it by Assign.
func TestQuickGreedyCoverValid(t *testing.T) {
	s := rng.New(74)
	f := func() bool {
		sensors := randSensors(s, 5+s.Intn(60), 150)
		in := NewInstance(sensors, sensors, 25)
		chosen, err := in.Greedy(geom.Pt(75, 75))
		if err != nil {
			return false
		}
		if !in.IsCover(chosen) {
			return false
		}
		a := in.Assign(sensors, chosen)
		for i, pos := range a {
			if pos < 0 {
				return false
			}
			if sensors[i].Dist(in.Candidates[chosen[pos]]) > 25+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedy300(b *testing.B) {
	sensors := randSensors(rng.New(1), 300, 300)
	in := NewInstance(sensors, sensors, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Greedy(geom.Pt(150, 150)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactMin20(b *testing.B) {
	sensors := randSensors(rng.New(2), 20, 100)
	in := NewInstance(sensors, sensors, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := in.ExactMin(0); err != nil {
			b.Fatal(err)
		}
	}
}
