package cover

import (
	"fmt"
	"math"
	"slices"
	"testing"

	"mobicol/internal/bitset"
	"mobicol/internal/geom"
	"mobicol/internal/par"
	"mobicol/internal/rng"
)

// naiveGreedy is the pre-CELF full-scan selection, kept verbatim as the
// oracle the lazy heap must match pick for pick.
func naiveGreedy(in *Instance, tieBreak geom.Point) ([]int, error) {
	if err := in.Err(); err != nil {
		return nil, err
	}
	uncovered := bitset.New(in.Universe)
	uncovered.Fill()
	var chosen []int
	for uncovered.Count() > 0 {
		best, bestGain := -1, 0
		var bestDist float64
		for c, set := range in.CoverSets() {
			gain := set.CountAnd(uncovered)
			if gain == 0 {
				continue
			}
			d := in.Candidates[c].Dist2(tieBreak)
			if gain > bestGain || (gain == bestGain && d < bestDist) {
				best, bestGain, bestDist = c, gain, d
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("cover: greedy stalled with %d sensors uncovered", uncovered.Count())
		}
		chosen = append(chosen, best)
		uncovered.AndNot(in.CoverSets()[best])
	}
	return chosen, nil
}

func TestGreedyMatchesNaiveOracle(t *testing.T) {
	cases := []struct {
		n    int
		side float64
	}{{120, 200}, {250, 350}}
	for _, tc := range cases {
		for seed := uint64(20); seed < 24; seed++ {
			sensors := randSensors(rng.New(seed), tc.n, tc.side)
			in := NewInstance(sensors, sensors, 30)
			sink := geom.Pt(tc.side/2, tc.side/2)
			want, err := naiveGreedy(in, sink)
			if err != nil {
				t.Fatalf("n=%d seed=%d: oracle: %v", tc.n, seed, err)
			}
			got, err := in.Greedy(sink)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", tc.n, seed, err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d seed=%d: %d picks, oracle %d", tc.n, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d seed=%d: pick %d = candidate %d, oracle chose %d",
						tc.n, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestInstancePoolEquivalence pins the tentpole contract for the cover
// layer: parallel construction must be byte-identical to sequential —
// same kept candidates, same cover sets, same greedy picks.
func TestInstancePoolEquivalence(t *testing.T) {
	cases := []struct {
		n    int
		side float64
	}{{150, 200}, {400, 400}}
	for _, tc := range cases {
		for seed := uint64(30); seed < 33; seed++ {
			sensors := randSensors(rng.New(seed), tc.n, tc.side)
			src := rng.New(seed + 100)
			radii := make([]float64, tc.n)
			for i := range radii {
				radii[i] = src.Uniform(20, 40)
			}
			seqIn := NewInstanceRadiiPool(sensors, radii, sensors, par.Seq())
			parIn := NewInstanceRadiiPool(sensors, radii, sensors, par.Workers(8))
			if len(parIn.Candidates) != len(seqIn.Candidates) {
				t.Fatalf("n=%d seed=%d: %d candidates parallel, %d sequential",
					tc.n, seed, len(parIn.Candidates), len(seqIn.Candidates))
			}
			for i := range seqIn.Candidates {
				if !parIn.Candidates[i].Eq(seqIn.Candidates[i]) {
					t.Fatalf("n=%d seed=%d: candidate %d differs", tc.n, seed, i)
				}
				if !slices.Equal(parIn.Cover(i), seqIn.Cover(i)) {
					t.Fatalf("n=%d seed=%d: cover %d differs", tc.n, seed, i)
				}
			}
			sink := geom.Pt(tc.side/2, tc.side/2)
			seqPicks, err := seqIn.Greedy(sink)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", tc.n, seed, err)
			}
			parPicks, err := parIn.Greedy(sink)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", tc.n, seed, err)
			}
			if len(seqPicks) != len(parPicks) {
				t.Fatalf("n=%d seed=%d: pick counts differ", tc.n, seed)
			}
			for i := range seqPicks {
				if seqPicks[i] != parPicks[i] {
					t.Fatalf("n=%d seed=%d: pick %d differs: %d vs %d",
						tc.n, seed, i, parPicks[i], seqPicks[i])
				}
			}
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	for _, n := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			side := 200 * math.Sqrt(float64(n)/100)
			sensors := randSensors(rng.New(1), n, side)
			in := NewInstance(sensors, sensors, 30)
			sink := geom.Pt(side/2, side/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Greedy(sink); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
