package cover

import (
	"fmt"

	"mobicol/internal/bitset"
)

// ExactMin finds a minimum-cardinality cover by branch and bound. The
// search branches on the lowest-index uncovered sensor (every cover must
// contain some candidate covering it), prunes dominated candidates first,
// and bounds with the greedy-rounded LP estimate |uncovered| / maxCover.
// maxNodes caps the search (0 = unlimited); when it trips, the best cover
// found so far is returned with exact=false. Instances the paper solves
// with CPLEX are tiny (tens of sensors), where this search is instant.
//
//mdglint:allow-alloc(exact search is the small-instance certification path, not the planning hot loop)
func (in *Instance) ExactMin(maxNodes int) (chosen []int, exact bool, err error) {
	if err := in.Err(); err != nil {
		return nil, false, err
	}
	pruned, orig := in.Prune()
	// Exact search is a small-instance path: the dense set view is fine
	// here and keeps the branch bookkeeping on fast bitset algebra.
	covers := pruned.CoverSets()

	// Incumbent from greedy.
	greedy, err := pruned.Greedy(pruned.Candidates[0])
	if err != nil {
		return nil, false, err
	}
	best := append([]int(nil), greedy...)
	exact = true

	// coversSensor[s] lists candidates covering sensor s, biggest first
	// (so promising branches are explored early).
	coversSensor := make([][]int, pruned.Universe)
	for c, set := range covers {
		set.ForEach(func(s int) {
			coversSensor[s] = append(coversSensor[s], c)
		})
	}
	for s := range coversSensor {
		cs := coversSensor[s]
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && covers[cs[j]].Count() > covers[cs[j-1]].Count(); j-- {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			}
		}
	}
	maxCover := 1
	for _, set := range covers {
		if c := set.Count(); c > maxCover {
			maxCover = c
		}
	}

	uncovered := bitset.New(pruned.Universe)
	uncovered.Fill()
	var cur []int
	nodes := 0

	var rec func()
	rec = func() {
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			exact = false
			return
		}
		rem := uncovered.Count()
		if rem == 0 {
			if len(cur) < len(best) {
				best = append(best[:0], cur...)
			}
			return
		}
		// Lower bound: even the largest candidate covers <= maxCover new
		// sensors per pick.
		lb := (rem + maxCover - 1) / maxCover
		if len(cur)+lb >= len(best) {
			return
		}
		s := uncovered.NextSet(0)
		for _, c := range coversSensor[s] {
			// Save the covered subset to restore after the branch.
			newly := covers[c].Clone()
			newly.And(uncovered)
			uncovered.AndNot(covers[c])
			cur = append(cur, c)
			rec()
			cur = cur[:len(cur)-1]
			uncovered.Or(newly)
			if maxNodes > 0 && nodes > maxNodes {
				return
			}
		}
	}
	rec()

	out := make([]int, len(best))
	for i, c := range best {
		out[i] = orig[c]
	}
	if !in.IsCover(out) {
		return nil, false, fmt.Errorf("cover: internal error: exact search produced a non-cover")
	}
	return out, exact, nil
}
