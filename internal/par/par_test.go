package par

import (
	"sync/atomic"
	"testing"
)

func pools() []Pool {
	return []Pool{{}, Seq(), Workers(2), Workers(3), Workers(8), Workers(0)}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, p := range pools() {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			p.ForEach(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", p.Size(), n, i, h)
				}
			}
		}
	}
}

func TestForChunksPartitionIsContiguousAndComplete(t *testing.T) {
	for _, p := range pools() {
		for _, n := range []int{1, 2, 5, 17, 256} {
			var covered, calls int64
			seen := make([]int32, n)
			p.ForChunks(n, func(lo, hi int) {
				atomic.AddInt64(&calls, 1)
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
					atomic.AddInt64(&covered, 1)
				}
			})
			if covered != int64(n) {
				t.Fatalf("workers=%d n=%d: covered %d indices", p.Size(), n, covered)
			}
			for i := range seen {
				if seen[i] != 1 {
					t.Fatalf("workers=%d n=%d: index %d in %d chunks", p.Size(), n, i, seen[i])
				}
			}
			if max := int64(min(p.Size(), n)); calls > max {
				t.Fatalf("workers=%d n=%d: %d chunks, want <= %d", p.Size(), n, calls, max)
			}
		}
	}
}

func TestMapOrderedForAnyPoolSize(t *testing.T) {
	want := Map(Seq(), 500, func(i int) int { return i * i })
	for _, p := range pools() {
		got := Map(p, 500, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", p.Size(), i, got[i], want[i])
			}
		}
	}
}

// Float sums are not associative; the ordered reduction must still match
// the sequential fold bit-for-bit on every pool size.
func TestReduceMatchesSequentialFloatSum(t *testing.T) {
	fn := func(i int) float64 { return 1.0 / float64(i+1) }
	fold := func(acc, v float64) float64 { return acc + v }
	want := Reduce(Seq(), 10_000, fn, 0.0, fold)
	for _, p := range pools() {
		got := Reduce(p, 10_000, fn, 0.0, fold)
		if got != want {
			t.Fatalf("workers=%d: sum %v != sequential %v", p.Size(), got, want)
		}
	}
}

func TestStreamsPrefixStable(t *testing.T) {
	// Stream i must not depend on how many streams were requested: adding
	// trials to an experiment never perturbs earlier trials.
	a := Streams(42, 4)
	b := Streams(42, 16)
	for i := range a {
		for draw := 0; draw < 8; draw++ {
			if x, y := a[i].Uint64(), b[i].Uint64(); x != y {
				t.Fatalf("stream %d draw %d: %d != %d", i, draw, x, y)
			}
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	streams := Streams(7, 3)
	seen := map[uint64]int{}
	for i, s := range streams {
		for draw := 0; draw < 4; draw++ {
			v := s.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d collided on %d", prev, i, v)
			}
			seen[v] = i
		}
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	if Seq().Size() != 1 || (Pool{}).Size() != 1 {
		t.Fatal("sequential pools must report size 1")
	}
	if Workers(-3).Size() < 1 {
		t.Fatal("Workers(-3) must clamp to at least one worker")
	}
	if got := len(Streams(1, -2)); got != 0 {
		t.Fatalf("Streams with negative n returned %d streams", got)
	}
	ran := false
	Workers(4).ForEach(0, func(int) { ran = true })
	if ran {
		t.Fatal("ForEach over an empty range invoked fn")
	}
}
