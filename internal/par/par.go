// Package par is the repository's deterministic parallelism primitive: a
// fixed-chunking worker pool whose results are, by construction, identical
// for every worker count.
//
// The planners and the benchmark harness are subject to the mdglint
// determinism gate: a fixed seed must reproduce every output byte. Free-form
// goroutine fan-out breaks that the moment completion order leaks into the
// result (append order, first-wins reductions, shared RNG draws). This
// package confines parallelism to three shapes that cannot leak:
//
//   - Fixed chunking: ForChunks splits [0, n) into at most Size contiguous
//     chunks. Work item i always receives the same index regardless of how
//     chunks are scheduled, so per-index outputs are schedule-independent.
//   - Ordered reduction: Map writes result i into slot i and Reduce folds
//     the slots in strict index order, so even non-associative reductions
//     (float sums, first-improvement argmins) match the sequential fold.
//   - Seed splitting: Streams derives one rng substream per work item from
//     a single parent before any goroutine starts, so item i sees the same
//     draws whether it runs on one worker or sixteen.
//
// The contract every caller relies on (and the equivalence tests enforce):
// for a pure fn, any two pools produce identical results — Workers(1) is
// the sequential oracle for Workers(n).
package par

import (
	"runtime"
	"sync"

	"mobicol/internal/rng"
)

// Pool is a degree of parallelism. The zero value runs everything
// sequentially on the calling goroutine, so library code can thread a Pool
// through without forcing callers to opt in.
type Pool struct {
	workers int
}

// Workers returns a pool of n workers. n <= 0 selects one worker per
// available CPU (the CLIs' -workers 0 default).
func Workers(n int) Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return Pool{workers: n}
}

// Seq is the explicit sequential pool: Workers(1), and the oracle the
// parallel/sequential equivalence tests compare against.
func Seq() Pool { return Pool{workers: 1} }

// Size returns the worker count (>= 1; the zero value reports 1).
func (p Pool) Size() int {
	if p.workers <= 0 {
		return 1
	}
	return p.workers
}

// ForChunks partitions [0, n) into min(Size, n) contiguous chunks of
// near-equal length and invokes fn(lo, hi) once per chunk, concurrently on
// a pool of more than one worker. Chunk boundaries depend only on n and the
// pool size — never on scheduling — and a one-worker pool calls fn on the
// calling goroutine with no synchronisation at all, so sequential callers
// pay nothing. fn must be safe to run concurrently with itself and must
// confine its writes to its own index range.
//
//mdglint:hotpath
func (p Pool) ForChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.Size()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for c := 0; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		//mdglint:allow-alloc(one goroutine closure per worker per fan-out, not per item)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// ForEach invokes fn(i) for every i in [0, n), chunked across the pool.
// fn must confine its writes to per-index state (e.g. slot i of a result
// slice); under that contract the observable outcome is identical for any
// pool size.
//
//mdglint:hotpath
func (p Pool) ForEach(n int, fn func(i int)) {
	//mdglint:allow-alloc(one wrapper closure per fan-out; the per-item loop inside allocates nothing)
	p.ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map computes fn(i) for every i in [0, n) across the pool and returns the
// results in index order. Because slot i is written only by the worker that
// ran index i, the returned slice is byte-identical for any pool size.
func Map[T any](p Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Reduce computes fn(i) for every i in [0, n) across the pool, then folds
// the results sequentially in strict index order. The ordered fold makes
// non-associative reductions — float sums, tie-breaking argmins — match the
// single-threaded loop exactly.
func Reduce[T, A any](p Pool, n int, fn func(i int) T, init A, fold func(acc A, v T) A) A {
	acc := init
	for _, v := range Map(p, n, fn) {
		acc = fold(acc, v)
	}
	return acc
}

// Streams derives n independent rng substreams from seed via rng.Split.
// The split sequence is drawn from a single parent before any parallel work
// starts, so stream i is the same generator for every pool size — and for
// every n: growing a fan-out never perturbs the streams of earlier items.
func Streams(seed uint64, n int) []*rng.Source {
	if n < 0 {
		n = 0
	}
	parent := rng.New(seed)
	out := make([]*rng.Source, n)
	for i := range out {
		out[i] = parent.Split()
	}
	return out
}
