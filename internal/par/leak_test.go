// Goroutine-leak regression for the pool contract: ForEach/ForChunks/Map
// spawn workers per fan-out and join them before returning, so no
// goroutine may outlive the call. The external test package lets this
// file use the shared leak checker from internal/check.
package par_test

import (
	"testing"

	"mobicol/internal/check"
	"mobicol/internal/par"
)

func TestPoolOperationsLeakNoGoroutines(t *testing.T) {
	for _, w := range []int{0, 1, 2, 8} {
		p := par.Workers(w)
		check.NoLeakedGoroutines(t, func() {
			_ = par.Map(p, 1000, func(i int) int { return i * i })
			p.ForEach(257, func(int) {})
			p.ForChunks(99, func(lo, hi int) {})
			_ = par.Reduce(p, 500, func(i int) float64 { return float64(i) }, 0.0,
				func(acc, v float64) float64 { return acc + v })
		})
	}
}
