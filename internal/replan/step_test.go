package replan

import (
	"errors"
	"testing"
)

// TestRepairStepCancellation: a Step hook that reports an error at any
// phase boundary aborts the repair with exactly that error, and a hook
// that always allows progress changes nothing about the result.
func TestRepairStepCancellation(t *testing.T) {
	nw := deploy(250, 300, 30, 3)
	prev := coldPlan(t, nw)
	carried := CarryPositional(prev, nw.N())
	wantErr := errors.New("step: abort")

	base, _, err := Repair(nw, prev, carried, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for stopAfter := 0; stopAfter < 3; stopAfter++ {
		calls := 0
		step := func() error {
			calls++
			if calls > stopAfter {
				return wantErr
			}
			return nil
		}
		got, _, err := Repair(nw, prev, carried, Options{Step: step})
		if !errors.Is(err, wantErr) {
			t.Fatalf("stopAfter=%d: err = %v, want the step error", stopAfter, err)
		}
		if got != nil {
			t.Fatalf("stopAfter=%d: aborted repair returned a plan", stopAfter)
		}
	}

	allowed, _, err := Repair(nw, prev, carried, Options{Step: func() error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if !samePlan(base, allowed) {
		t.Fatal("a permissive Step hook changed the repaired plan")
	}
}
