package replan

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/par"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

// repairNeighborK matches the cold planner's TSP neighbour-list width so
// the seeded passes see the same candidate moves a full pass would.
const repairNeighborK = 12

// Options tunes a repair.
type Options struct {
	// Pool bounds the parallelism of the carry and rehome phases. Any
	// pool size produces a byte-identical plan.
	Pool par.Pool
	// Obs, when non-nil, receives per-phase spans (carry, rehome,
	// recover, splice, improve). Nil disables tracing.
	Obs *obs.Trace
	// Step, when non-nil, is consulted at every phase boundary (carry →
	// rehome → recover → splice/improve); a non-nil return aborts the
	// repair with that error. The engine seam wires context cancellation
	// here. A Step that always returns nil never changes the output.
	Step func() error
}

// step consults the phase-boundary hook, if any.
func (o Options) step() error {
	if o.Step == nil {
		return nil
	}
	return o.Step()
}

// Stats summarises what a repair touched; everything it does not mention
// was reused from the previous plan untouched.
type Stats struct {
	Kept      int // sensors that kept their carried stop
	Rehomed   int // dirty sensors re-attached to an existing stop
	Recovered int // dirty sensors needing freshly planned coverage
	NewStops  int // stops added by the recover phase
	Ejected   int // previous stops that lost every sensor
	Moves     int // seeded 2-opt/Or-opt improvements applied
}

// Dirty returns how many sensors lost their carried assignment.
func (s Stats) Dirty() int { return s.Rehomed + s.Recovered }

// Repair warm-starts a plan for nw from a previous plan. carried[i] is
// the stop (an index into prev.Stops) sensor i of nw uploaded at before
// the scenario changed, or -1 for sensors with no previous assignment;
// Delta.Apply and CarryPositional both produce it.
//
// The repair is local: assignments still within range are kept verbatim,
// dirty sensors are rehomed onto the nearest existing stop through a
// grid over the stop set, and only the sensors no stop can serve get new
// stops (a greedy disk cover over their own sites, spliced into the
// previous visit order by cheapest insertion). A previous stop is
// ejected only when it served sensors before and serves none now, so
// repairing against an unchanged scenario returns a bit-identical plan.
// Bounded 2-opt/Or-opt passes run seeded with the spliced and ejected
// segments; an empty touch set skips them entirely.
//
//mdglint:hotpath
//mdglint:allow-alloc(repair runs once per scenario change and owns the plan it returns)
func Repair(nw *wsn.Network, prev *collector.TourPlan, carried []int, opts Options) (*collector.TourPlan, Stats, error) {
	root := opts.Obs.Start("replan")
	defer root.End()

	var st Stats
	n := nw.N()
	m := len(prev.Stops)
	if !prev.Sink.Eq(nw.Sink) {
		return nil, st, fmt.Errorf("replan: previous plan anchored at %v, network sink is %v", prev.Sink, nw.Sink)
	}
	if len(carried) != n {
		return nil, st, fmt.Errorf("replan: %d carried assignments for %d sensors", len(carried), n)
	}
	for i, s := range carried {
		if s < -1 || s >= m {
			return nil, st, fmt.Errorf("replan: sensor %d carried to stop %d of %d", i, s, m)
		}
	}

	sensors := nw.Positions()
	bound := nw.Range*nw.Range + geom.Eps

	// Phase 1 — carry: keep every assignment whose stop is still within
	// range of the (possibly moved) sensor. Pure per-sensor work, so the
	// pool fan-out is deterministic.
	spCarry := root.Child("carry")
	assign := par.Map(opts.Pool, n, func(i int) int {
		if s := carried[i]; s >= 0 && sensors[i].Dist2(prev.Stops[s]) <= bound {
			return s
		}
		return -1
	})
	dirty := make([]int, 0, 16)
	for i, s := range assign {
		if s < 0 {
			dirty = append(dirty, i)
		} else {
			st.Kept++
		}
	}
	spCarry.SetInt("kept", int64(st.Kept))
	spCarry.SetInt("dirty", int64(len(dirty)))
	spCarry.End()
	if err := opts.step(); err != nil {
		return nil, st, err
	}

	// Phase 2 — rehome: a dirty sensor that drifted into range of some
	// other existing stop needs no new stop, just a new assignment.
	spRehome := root.Child("rehome")
	if len(dirty) > 0 && m > 0 {
		stopIdx := geom.NewGridIndexFor(prev.Stops, nw.Range)
		rehomed := par.Map(opts.Pool, len(dirty), func(k int) int {
			s, _ := stopIdx.NearestWithin(sensors[dirty[k]], nw.Range)
			return s
		})
		left := dirty[:0]
		for k, s := range rehomed {
			if s >= 0 {
				assign[dirty[k]] = s
				st.Rehomed++
			} else {
				left = append(left, dirty[k])
			}
		}
		dirty = left
	}
	st.Recovered = len(dirty)
	spRehome.SetInt("rehomed", int64(st.Rehomed))
	spRehome.End()
	if err := opts.step(); err != nil {
		return nil, st, err
	}

	// Phase 3 — recover: greedily cover the sensors no existing stop can
	// serve, using their own sites as candidates (every dirty sensor
	// covers itself, so the instance is always feasible).
	spRecover := root.Child("recover")
	var newStops []geom.Point
	if len(dirty) > 0 {
		dirtyPts := make([]geom.Point, len(dirty))
		for k, i := range dirty {
			dirtyPts[k] = sensors[i]
		}
		inst := cover.NewInstancePool(dirtyPts, dirtyPts, nw.Range, opts.Pool)
		chosen, err := inst.Greedy(nw.Sink)
		if err != nil {
			return nil, st, fmt.Errorf("replan: recover phase: %w", err)
		}
		newStops = make([]geom.Point, len(chosen))
		for k, c := range chosen {
			newStops[k] = inst.Candidates[c]
		}
		for k, a := range inst.Assign(dirtyPts, chosen) {
			assign[dirty[k]] = m + a
		}
	}
	st.NewStops = len(newStops)
	spRecover.SetInt("new_stops", int64(st.NewStops))
	spRecover.End()
	if err := opts.step(); err != nil {
		return nil, st, err
	}

	// Phase 4 — eject: drop previous stops that served sensors before and
	// serve none now. Previous load comes from the plan itself (not from
	// carried, which has already lost removed sensors); stops that were
	// load-free in the previous plan stay, preserving the Δ=∅ identity
	// even for plans carrying idle stops.
	loadPrev := make([]int, m)
	for _, s := range prev.UploadAt {
		if s >= 0 && s < m {
			loadPrev[s]++
		}
	}
	loadNew := make([]int, m+len(newStops))
	for _, s := range assign {
		loadNew[s]++
	}
	eject := make([]bool, m)
	for j := 0; j < m; j++ {
		if loadNew[j] == 0 && loadPrev[j] > 0 {
			eject[j] = true
			st.Ejected++
		}
	}

	// Phase 5 — splice: previous visit order minus ejected stops, new
	// stops inserted where they detour least. touched collects the stop
	// ids whose tour neighbourhood changed; they seed the bounded local
	// search below.
	spSplice := root.Child("splice")
	allStops := append(append(make([]geom.Point, 0, m+len(newStops)), prev.Stops...), newStops...)
	order := make([]int, 0, len(allStops))
	touched := make(map[int]bool, 2*(st.Ejected+st.NewStops))
	for j := 0; j < m; j++ {
		if !eject[j] {
			order = append(order, j)
			continue
		}
		// The survivors either side of an ejection inherit a new tour edge.
		for p := j - 1; p >= 0; p-- {
			if !eject[p] {
				touched[p] = true
				break
			}
		}
		for p := j + 1; p < m; p++ {
			if !eject[p] {
				touched[p] = true
				break
			}
		}
	}
	for g := m; g < m+len(newStops); g++ {
		pos := cheapestSlot(nw.Sink, allStops, order, allStops[g])
		if pos > 0 {
			touched[order[pos-1]] = true
		}
		if pos < len(order) {
			touched[order[pos]] = true
		}
		order = append(order, 0)
		copy(order[pos+1:], order[pos:])
		order[pos] = g
		touched[g] = true
	}
	spSplice.SetInt("ejected", int64(st.Ejected))
	spSplice.End()

	// Phase 6 — improve: seeded 2-opt/Or-opt around the touched segments.
	// Tour points: index 0 is the sink, 1..k the stops in visit order.
	spImprove := root.Child("improve")
	pts := make([]geom.Point, 0, len(order)+1)
	pts = append(pts, nw.Sink)
	for _, g := range order {
		pts = append(pts, allStops[g])
	}
	tour := make(tsp.Tour, len(pts))
	for i := range tour {
		tour[i] = i
	}
	if len(touched) > 0 && len(pts) >= 4 {
		seeds := make([]int, 0, 3*len(touched))
		for i, g := range order {
			if touched[g] {
				// Seed the stop and its current cycle neighbours (pts
				// index i+1; index 0 is the sink and seeds naturally).
				seeds = append(seeds, i, i+1, (i+2)%len(pts))
			}
		}
		neigh := tsp.NeighborLists(pts, repairNeighborK)
		var sc tsp.Scratch
		st.Moves = sc.TwoOptSeeded(pts, tour, neigh, seeds)
		st.Moves += sc.OrOptSeeded(pts, tour, neigh, seeds)
		tour.RotateTo(0)
	}
	spImprove.SetInt("moves", int64(st.Moves))
	spImprove.End()

	// Reassemble: visit order from the improved tour, assignment remapped
	// from global stop ids to visit positions.
	finalStops := make([]geom.Point, 0, len(order))
	finalPos := make([]int, len(allStops))
	for i := range finalPos {
		finalPos[i] = -1
	}
	for _, ti := range tour[1:] {
		finalPos[order[ti-1]] = len(finalStops)
		finalStops = append(finalStops, pts[ti])
	}
	uploadAt := make([]int, n)
	for i, s := range assign {
		uploadAt[i] = finalPos[s]
	}
	root.SetInt("stops", int64(len(finalStops)))
	root.SetInt("dirty", int64(st.Dirty()))
	return &collector.TourPlan{Sink: nw.Sink, Stops: finalStops, UploadAt: uploadAt}, st, nil
}

// RepairDelta applies d to the previous scenario and repairs prev for the
// resulting network: the one-call form the CLI and benchmarks use.
func RepairDelta(prevNet *wsn.Network, prev *collector.TourPlan, d Delta, opts Options) (*wsn.Network, *collector.TourPlan, Stats, error) {
	if len(prev.UploadAt) != prevNet.N() {
		return nil, nil, Stats{}, fmt.Errorf("replan: plan assigns %d sensors, previous network has %d", len(prev.UploadAt), prevNet.N())
	}
	nw, carried, err := d.Apply(prevNet, prev.UploadAt)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	plan, st, err := Repair(nw, prev, carried, opts)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	return nw, plan, st, nil
}

// cheapestSlot returns the insertion position (into order) that grows the
// closed tour sink -> stops[order...] -> sink the least when adding p.
// Position 0 inserts after the sink; ties break toward the earliest slot.
func cheapestSlot(sink geom.Point, stops []geom.Point, order []int, p geom.Point) int {
	best, bestCost := 0, 0.0
	k := len(order)
	for pos := 0; pos <= k; pos++ {
		a := sink
		if pos > 0 {
			a = stops[order[pos-1]]
		}
		b := sink
		if pos < k {
			b = stops[order[pos]]
		}
		cost := a.Dist(p) + p.Dist(b) - a.Dist(b)
		if pos == 0 || cost < bestCost {
			best, bestCost = pos, cost
		}
	}
	return best
}
