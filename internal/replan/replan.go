// Package replan repairs an existing single-hop gathering plan after a
// small scenario change instead of replanning from scratch. The paper's
// deployments are static, but real fields drift: sensors die, get moved,
// or are redeployed a few at a time. When the delta is small, almost all
// of a previous tour remains optimal — warm-start repair keeps it.
//
// The repair contract, enforced by the metamorphic tests:
//
//   - Δ=∅ is the identity: repairing a plan against an unchanged network
//     returns a bit-identical plan (same stop order, same assignment).
//   - Repaired plans satisfy the full check.Plan oracle — single-hop
//     coverage on a sink-anchored tour, like any cold plan.
//   - The result is byte-identical at any worker-pool size.
//   - Quality stays within check.MaxWarmRatio of a cold replan.
//
// The pipeline mirrors the cold planner but touches only dirty state:
// carry over every still-in-range assignment, rehome the rest onto kept
// stops through a grid over the stop set, cover the leftovers with a
// greedy disk cover of their own sites, splice the new stops into the
// previous visit order by cheapest insertion, eject stops that lost all
// their sensors, and run the seeded (bounded) 2-opt/Or-opt passes around
// the touched tour segments only.
package replan

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/rng"
	"mobicol/internal/wsn"
)

// Move relocates one sensor of the previous scenario.
type Move struct {
	Index int        // sensor index in the previous network
	To    geom.Point // new position
}

// Delta is a scenario change relative to the network a plan was computed
// for: sensors removed, moved, and added. The zero value is the empty
// delta.
type Delta struct {
	Removed []int
	Moved   []Move
	Added   []geom.Point
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.Removed) == 0 && len(d.Moved) == 0 && len(d.Added) == 0
}

// Size returns the number of touched sensors.
func (d Delta) Size() int { return len(d.Removed) + len(d.Moved) + len(d.Added) }

// Apply builds the post-delta network and carries a previous assignment
// into its indexing: surviving sensors keep their prevUpload entry
// (positional identity — a moved sensor keeps its assignment and is
// re-validated geometrically by Repair), added sensors get -1. Removal
// wins when an index is both removed and moved; surviving sensors keep
// their relative order, added sensors append after them.
func (d Delta) Apply(prev *wsn.Network, prevUpload []int) (*wsn.Network, []int, error) {
	n := prev.N()
	if len(prevUpload) != n {
		return nil, nil, fmt.Errorf("replan: %d carried assignments for %d sensors", len(prevUpload), n)
	}
	gone := make(map[int]bool, len(d.Removed))
	for _, i := range d.Removed {
		if i < 0 || i >= n {
			return nil, nil, fmt.Errorf("replan: removed index %d out of range [0,%d)", i, n)
		}
		gone[i] = true
	}
	moved := make(map[int]geom.Point, len(d.Moved))
	for _, m := range d.Moved {
		if m.Index < 0 || m.Index >= n {
			return nil, nil, fmt.Errorf("replan: moved index %d out of range [0,%d)", m.Index, n)
		}
		moved[m.Index] = m.To // last move of an index wins
	}
	positions := make([]geom.Point, 0, n-len(gone)+len(d.Added))
	carried := make([]int, 0, cap(positions))
	for i, node := range prev.Nodes {
		if gone[i] {
			continue
		}
		p := node.Pos
		if to, ok := moved[i]; ok {
			p = to
		}
		positions = append(positions, p)
		carried = append(carried, prevUpload[i])
	}
	for _, p := range d.Added {
		positions = append(positions, p)
		carried = append(carried, -1)
	}
	return wsn.New(positions, prev.Sink, prev.Range, prev.Field), carried, nil
}

// CarryPositional matches a previous plan's assignment to a network of n
// sensors by index: sensor i carries prev.UploadAt[i] when it exists, -1
// otherwise. This is the CLI-facing identity model for scenarios saved
// and re-deployed with stable sensor ordering; Repair re-validates every
// carried assignment geometrically, so stale entries only cost a rehome.
func CarryPositional(prev *collector.TourPlan, n int) []int {
	carried := make([]int, n)
	for i := range carried {
		if i < len(prev.UploadAt) {
			carried[i] = prev.UploadAt[i]
		} else {
			carried[i] = -1
		}
	}
	return carried
}

// Perturb builds a reproducible delta touching roughly frac·N sensors:
// half are moved by a jitter of up to one transmission range (clamped to
// the field), a quarter are removed, and a quarter are added uniformly
// over the field. It is the scenario generator the warm-start benchmarks
// and tests share.
func Perturb(nw *wsn.Network, frac float64, seed uint64) Delta {
	n := nw.N()
	if n == 0 || frac <= 0 {
		return Delta{}
	}
	k := int(frac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	r := rng.New(seed)
	picked := r.Perm(n)[:k]
	nRemoved := k / 4
	nAdded := k / 4
	var d Delta
	for i, idx := range picked {
		switch {
		case i < nRemoved:
			d.Removed = append(d.Removed, idx)
		default:
			old := nw.Nodes[idx].Pos
			jit := geom.Point{
				X: old.X + r.Uniform(-nw.Range, nw.Range),
				Y: old.Y + r.Uniform(-nw.Range, nw.Range),
			}
			d.Moved = append(d.Moved, Move{Index: idx, To: nw.Field.Clamp(jit)})
		}
	}
	for i := 0; i < nAdded; i++ {
		d.Added = append(d.Added, geom.Point{
			X: r.Uniform(nw.Field.Min.X, nw.Field.Max.X),
			Y: r.Uniform(nw.Field.Min.Y, nw.Field.Max.Y),
		})
	}
	return d
}
