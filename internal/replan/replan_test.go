package replan

import (
	"slices"
	"testing"
	"time"

	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/par"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

func deploy(n int, side, r float64, seed uint64) *wsn.Network {
	return wsn.MustDeploy(wsn.Config{N: n, FieldSide: side, Range: r, Seed: seed})
}

func coldPlan(t testing.TB, nw *wsn.Network) *collector.TourPlan {
	t.Helper()
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sol.Plan
}

func samePlan(a, b *collector.TourPlan) bool {
	if !a.Sink.Eq(b.Sink) || len(a.Stops) != len(b.Stops) {
		return false
	}
	for i := range a.Stops {
		if a.Stops[i] != b.Stops[i] {
			return false
		}
	}
	return slices.Equal(a.UploadAt, b.UploadAt)
}

// TestRepairEmptyDeltaIsIdentity pins the metamorphic anchor: repairing a
// plan against its own unchanged scenario returns a bit-identical plan
// and touches nothing.
func TestRepairEmptyDeltaIsIdentity(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		nw := deploy(250, 300, 30, seed)
		prev := coldPlan(t, nw)
		got, st, err := Repair(nw, prev, CarryPositional(prev, nw.N()), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !samePlan(prev, got) {
			t.Fatalf("seed %d: repair of the empty delta changed the plan", seed)
		}
		if st.Dirty() != 0 || st.NewStops != 0 || st.Ejected != 0 || st.Moves != 0 {
			t.Fatalf("seed %d: empty delta touched state: %+v", seed, st)
		}
		if st.Kept != nw.N() {
			t.Fatalf("seed %d: kept %d of %d sensors", seed, st.Kept, nw.N())
		}
	}
}

// TestRepairDeltaOracleAndQuality: after a small random delta, the
// repaired plan must satisfy the full plan oracle and stay within the
// pinned warm/cold quality ratio of a from-scratch replan.
func TestRepairDeltaOracleAndQuality(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		nw := deploy(400, 400, 30, seed)
		prev := coldPlan(t, nw)
		d := Perturb(nw, 0.02, seed+100)
		nw2, warm, st, err := RepairDelta(nw, prev, d, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := check.Plan(nw2, warm, check.Options{}); err != nil {
			t.Fatalf("seed %d: repaired plan fails the oracle: %v", seed, err)
		}
		cold := coldPlan(t, nw2)
		if err := check.WarmQuality(warm.Length(), cold.Length()); err != nil {
			t.Fatalf("seed %d (stats %+v): %v", seed, st, err)
		}
		if st.Kept+st.Dirty() != nw2.N() {
			t.Fatalf("seed %d: %d kept + %d dirty != %d sensors", seed, st.Kept, st.Dirty(), nw2.N())
		}
	}
}

// TestRepairPoolEquivalence: the repaired plan must be byte-identical at
// any worker-pool size — the same contract the cold planner pins.
func TestRepairPoolEquivalence(t *testing.T) {
	for seed := uint64(2); seed <= 5; seed++ {
		nw := deploy(500, 450, 30, seed)
		prev := coldPlan(t, nw)
		d := Perturb(nw, 0.03, seed+7)
		_, seq, stSeq, err := RepairDelta(nw, prev, d, Options{Pool: par.Seq()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, par8, stPar, err := RepairDelta(nw, prev, d, Options{Pool: par.Workers(8)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !samePlan(seq, par8) {
			t.Fatalf("seed %d: Workers(8) repair diverged from sequential", seed)
		}
		if stSeq != stPar {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, stSeq, stPar)
		}
	}
}

// TestRepairRemovalEjectsStops: removing every sensor in a region must
// eject the stops that served only that region, and the plan stays valid.
func TestRepairRemovalEjectsStops(t *testing.T) {
	nw := deploy(300, 350, 30, 11)
	prev := coldPlan(t, nw)
	// Remove every sensor in the left third of the field.
	var d Delta
	for i, node := range nw.Nodes {
		if node.Pos.X < nw.Field.Min.X+nw.Field.Width()/3 {
			d.Removed = append(d.Removed, i)
		}
	}
	if len(d.Removed) < 20 {
		t.Fatalf("degenerate scenario: only %d sensors in the region", len(d.Removed))
	}
	nw2, got, st, err := RepairDelta(nw, prev, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Plan(nw2, got, check.Options{}); err != nil {
		t.Fatal(err)
	}
	if st.Ejected == 0 {
		t.Fatalf("removed %d sensors but ejected no stops: %+v", len(d.Removed), st)
	}
	if st.NewStops != 0 {
		t.Fatalf("pure removal created %d new stops", st.NewStops)
	}
	if len(got.Stops) != len(prev.Stops)-st.Ejected {
		t.Fatalf("%d stops after ejecting %d of %d", len(got.Stops), st.Ejected, len(prev.Stops))
	}
}

// TestRepairAdditionKeepsOldStops: adding sensors far from coverage must
// mint new stops while every surviving previous stop stays in the tour.
func TestRepairAdditionKeepsOldStops(t *testing.T) {
	nw := deploy(200, 300, 30, 13)
	prev := coldPlan(t, nw)
	d := Delta{Added: []geom.Point{
		{X: nw.Field.Max.X - 1, Y: nw.Field.Max.Y - 1},
		{X: nw.Field.Max.X - 2, Y: nw.Field.Min.Y + 1},
	}}
	nw2, got, st, err := RepairDelta(nw, prev, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Plan(nw2, got, check.Options{}); err != nil {
		t.Fatal(err)
	}
	if st.Ejected != 0 {
		t.Fatalf("pure addition ejected %d stops", st.Ejected)
	}
	for i, s := range prev.Stops {
		if !slices.Contains(got.Stops, s) {
			t.Fatalf("previous stop %d at %v vanished without ejection", i, s)
		}
	}
}

// TestRepairErrors pins the validation surface.
func TestRepairErrors(t *testing.T) {
	nw := deploy(50, 150, 30, 3)
	prev := coldPlan(t, nw)
	if _, _, err := Repair(nw, prev, make([]int, nw.N()+1), Options{}); err == nil {
		t.Fatal("carried-length mismatch accepted")
	}
	bad := CarryPositional(prev, nw.N())
	bad[0] = len(prev.Stops)
	if _, _, err := Repair(nw, prev, bad, Options{}); err == nil {
		t.Fatal("out-of-range carried stop accepted")
	}
	shifted := &collector.TourPlan{Sink: geom.Point{X: -1, Y: -1}, Stops: prev.Stops, UploadAt: prev.UploadAt}
	if _, _, err := Repair(nw, shifted, CarryPositional(shifted, nw.N()), Options{}); err == nil {
		t.Fatal("sink mismatch accepted")
	}
	if _, _, err := (Delta{Removed: []int{nw.N()}}).Apply(nw, CarryPositional(prev, nw.N())); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	if _, _, err := (Delta{Moved: []Move{{Index: -1}}}).Apply(nw, CarryPositional(prev, nw.N())); err == nil {
		t.Fatal("out-of-range move accepted")
	}
}

// TestRepairWarmSpeedup: the point of the subsystem — after a <=1% delta
// at n=10k, warm repair must be far faster than a cold replan. The
// acceptance bar is 10x; the assertion keeps headroom for loaded CI.
func TestRepairWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	nw := deploy(10_000, 2000, 30, 1)
	w := obs.StartWatch()
	prev := coldPlan(t, nw)
	coldNs := w.ElapsedNs()

	d := Perturb(nw, 0.01, 42)
	nw2, carried, err := d.Apply(nw, prev.UploadAt)
	if err != nil {
		t.Fatal(err)
	}
	warmNs := int64(1) << 62
	var warm *collector.TourPlan
	var st Stats
	for trial := 0; trial < 3; trial++ {
		w = obs.StartWatch()
		warm, st, err = Repair(nw2, prev, carried, Options{})
		if d := w.ElapsedNs(); d < warmNs {
			warmNs = d
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := check.Plan(nw2, warm, check.Options{}); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %v, warm %v (%.1fx), stats %+v",
		time.Duration(coldNs), time.Duration(warmNs), float64(coldNs)/float64(warmNs), st)
	if warmNs*5 > coldNs {
		t.Fatalf("warm repair %v is not >=5x faster than cold plan %v",
			time.Duration(warmNs), time.Duration(coldNs))
	}
}
