// Package radio models lossy links. The base experiments follow the paper
// in assuming perfect links inside the transmission range; real 2008-era
// radios have a transitional region where the packet reception rate (PRR)
// degrades smoothly with distance (Zúñiga & Krishnamachari). This package
// provides a sigmoid PRR curve, expected-transmission counts under ARQ
// (ETX), and bounded-retry delivery probabilities, which the E11
// experiment feeds into the energy and lifetime accounting.
package radio

import (
	"fmt"
	"math"
)

// Model is a distance-parameterised link model. Distances are expressed as
// fractions of the nominal transmission range R, so one model serves any
// deployment.
type Model struct {
	// D50 is the distance (fraction of R) at which PRR = 0.5. 1.0 means
	// the nominal range is the 50% point; the connected region ends
	// around D50 - 2·Width.
	D50 float64
	// Width sets the transitional region's breadth (fraction of R).
	Width float64
	// MaxRetries bounds ARQ retransmissions per packet (total attempts =
	// 1 + MaxRetries).
	MaxRetries int
}

// Perfect returns a model with no loss inside the range — the paper's
// implicit assumption, kept as the experiment baseline.
func Perfect() Model { return Model{D50: math.Inf(1), Width: 0.1, MaxRetries: 0} }

// Default returns a typical transitional-region model: PRR starts sagging
// around 70% of range, hits 0.5 at 95%, with up to 3 retransmissions.
func Default() Model { return Model{D50: 0.95, Width: 0.08, MaxRetries: 3} }

// Validate checks parameters.
func (m Model) Validate() error {
	if m.Width <= 0 {
		return fmt.Errorf("radio: non-positive width %v", m.Width)
	}
	if m.D50 <= 0 {
		return fmt.Errorf("radio: non-positive D50 %v", m.D50)
	}
	if m.MaxRetries < 0 {
		return fmt.Errorf("radio: negative retries %d", m.MaxRetries)
	}
	return nil
}

// PRR returns the single-attempt packet reception rate over distance d
// with nominal range r.
func (m Model) PRR(d, r float64) float64 {
	if d < 0 || r <= 0 {
		//mdglint:ignore nopanic distances are Euclidean norms and ranges come from validated configs; bad input is a caller bug
		panic("radio: bad distance or range")
	}
	if math.IsInf(m.D50, 1) {
		if d <= r {
			return 1
		}
		return 0
	}
	x := (d/r - m.D50) / m.Width
	return 1 / (1 + math.Exp(x))
}

// DeliveryProb returns the probability a packet arrives within the retry
// budget: 1 - (1-PRR)^(1+MaxRetries).
func (m Model) DeliveryProb(d, r float64) float64 {
	p := m.PRR(d, r)
	return 1 - math.Pow(1-p, float64(1+m.MaxRetries))
}

// ExpectedTx returns the expected number of transmission attempts per
// packet under bounded ARQ: sum over attempts until success or budget
// exhaustion. For PRR -> 0 it saturates at 1 + MaxRetries.
func (m Model) ExpectedTx(d, r float64) float64 {
	p := m.PRR(d, r)
	if p >= 1 {
		return 1
	}
	q := 1 - p
	// E[attempts] = sum_{k=0}^{K} q^k  (attempt k+1 happens iff the first
	// k all failed), truncated at K = MaxRetries.
	e := 0.0
	qk := 1.0
	for k := 0; k <= m.MaxRetries; k++ {
		e += qk
		qk *= q
	}
	return e
}

// ChainDeliveryProb returns the probability a packet survives a multi-hop
// chain whose per-hop distances are given (each hop gets its own retry
// budget) — the static-sink baseline's end-to-end delivery rate.
func (m Model) ChainDeliveryProb(hops []float64, r float64) float64 {
	p := 1.0
	for _, d := range hops {
		p *= m.DeliveryProb(d, r)
	}
	return p
}
