package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPRRShape(t *testing.T) {
	m := Default()
	r := 30.0
	// Monotone non-increasing in distance.
	prev := 2.0
	for d := 0.0; d <= 2*r; d += 0.5 {
		p := m.PRR(d, r)
		if p < 0 || p > 1 {
			t.Fatalf("PRR(%v) = %v out of [0,1]", d, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("PRR not monotone at d=%v", d)
		}
		prev = p
	}
	// Half point at D50·R.
	if got := m.PRR(m.D50*r, r); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("PRR at D50 = %v, want 0.5", got)
	}
	// Near-perfect close in.
	if m.PRR(0.2*r, r) < 0.99 {
		t.Fatalf("short link PRR %v too low", m.PRR(0.2*r, r))
	}
}

func TestPerfectModel(t *testing.T) {
	m := Perfect()
	if m.PRR(29, 30) != 1 || m.PRR(31, 30) != 0 {
		t.Fatal("Perfect model not a step function at R")
	}
	if m.ExpectedTx(10, 30) != 1 {
		t.Fatal("Perfect model should need one attempt")
	}
	if m.DeliveryProb(10, 30) != 1 {
		t.Fatal("Perfect in-range delivery should be certain")
	}
}

func TestExpectedTxBounds(t *testing.T) {
	m := Default()
	r := 30.0
	for d := 0.0; d <= 3*r; d += 1 {
		e := m.ExpectedTx(d, r)
		if e < 1-1e-12 || e > float64(1+m.MaxRetries)+1e-12 {
			t.Fatalf("ExpectedTx(%v) = %v outside [1, %d]", d, e, 1+m.MaxRetries)
		}
	}
	// Far link saturates at the retry budget.
	if got := m.ExpectedTx(3*r, r); math.Abs(got-float64(1+m.MaxRetries)) > 1e-6 {
		t.Fatalf("saturation = %v", got)
	}
}

func TestDeliveryProbImprovesWithRetries(t *testing.T) {
	a := Model{D50: 0.9, Width: 0.1, MaxRetries: 0}
	b := Model{D50: 0.9, Width: 0.1, MaxRetries: 5}
	d, r := 27.0, 30.0
	if b.DeliveryProb(d, r) <= a.DeliveryProb(d, r) {
		t.Fatal("retries did not improve delivery")
	}
}

func TestChainDeliveryProb(t *testing.T) {
	m := Default()
	r := 30.0
	single := m.DeliveryProb(20, r)
	chain := m.ChainDeliveryProb([]float64{20, 20, 20}, r)
	if math.Abs(chain-single*single*single) > 1e-12 {
		t.Fatalf("chain %v != single^3 %v", chain, math.Pow(single, 3))
	}
	if m.ChainDeliveryProb(nil, r) != 1 {
		t.Fatal("empty chain should be certain")
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{D50: 0, Width: 0.1},
		{D50: 1, Width: 0},
		{D50: 1, Width: 0.1, MaxRetries: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad model %d accepted", i)
		}
	}
}

func TestPanicsOnBadDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative distance did not panic")
		}
	}()
	Default().PRR(-1, 30)
}

// Property: DeliveryProb == 1 - (1-PRR)^(1+K) and ExpectedTx·PRR >=
// DeliveryProb (each success consumes at least one attempt).
func TestQuickIdentities(t *testing.T) {
	f := func(du, ku uint8) bool {
		m := Model{D50: 0.9, Width: 0.1, MaxRetries: int(ku % 6)}
		d := float64(du) / 4 // 0..64 m
		r := 30.0
		p := m.PRR(d, r)
		dp := m.DeliveryProb(d, r)
		want := 1 - math.Pow(1-p, float64(1+m.MaxRetries))
		if math.Abs(dp-want) > 1e-9 {
			return false
		}
		return dp >= p-1e-12 && dp <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
