package radio

import (
	"math"
	"testing"
)

// Boundary tables for the link model: d=0 (collector parked on the
// sensor), d=r (the nominal range edge), and far beyond range where ARQ
// saturates. The lossy simulations charge energy proportional to
// ExpectedTx, so these boundaries bound the energy accounting.

func TestExpectedTxBoundaries(t *testing.T) {
	r := 30.0
	cases := []struct {
		name string
		m    Model
		d    float64
		lo   float64
		hi   float64
	}{
		// Perfect links: exactly one attempt anywhere inside range.
		{"perfect-d0", Perfect(), 0, 1, 1},
		{"perfect-at-range", Perfect(), r, 1, 1},
		// Beyond range a perfect link never succeeds: with MaxRetries 0
		// the budget is a single doomed attempt.
		{"perfect-beyond-range", Perfect(), 2 * r, 1, 1},
		// Default model at d=0: PRR is essentially 1, so ~1 attempt.
		{"default-d0", Default(), 0, 1, 1.0001},
		// At d=r the default model is inside the transitional region
		// (D50=0.95): more than one attempt, at most the full budget.
		{"default-at-range", Default(), r, 1, 1 + 3},
		// Far beyond range PRR -> 0 and ExpectedTx saturates at
		// 1 + MaxRetries.
		{"default-saturates", Default(), 100 * r, 3.9, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.m.ExpectedTx(tc.d, r)
			if got < tc.lo || got > tc.hi {
				t.Fatalf("ExpectedTx(%v, %v) = %v, want in [%v, %v]", tc.d, r, got, tc.lo, tc.hi)
			}
		})
	}
}

func TestExpectedTxMonotoneInDistance(t *testing.T) {
	m := Default()
	r := 25.0
	prev := 0.0
	for d := 0.0; d <= 3*r; d += r / 16 {
		got := m.ExpectedTx(d, r)
		if got < prev-1e-12 {
			t.Fatalf("ExpectedTx not monotone: f(%v)=%v < f(prev)=%v", d, got, prev)
		}
		if got < 1 || got > float64(1+m.MaxRetries) {
			t.Fatalf("ExpectedTx(%v) = %v outside [1, %d]", d, got, 1+m.MaxRetries)
		}
		prev = got
	}
}

func TestPRRBoundaries(t *testing.T) {
	r := 10.0
	if got := Perfect().PRR(0, r); got != 1 {
		t.Fatalf("perfect PRR at d=0: %v", got)
	}
	if got := Perfect().PRR(r, r); got != 1 {
		t.Fatalf("perfect PRR at d=r: %v", got)
	}
	if got := Perfect().PRR(r+1e-9, r); got != 0 {
		t.Fatalf("perfect PRR just beyond range: %v", got)
	}
	// Sigmoid model: PRR at the D50 point is exactly 1/2.
	m := Default()
	if got := m.PRR(m.D50*r, r); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("PRR at D50: %v", got)
	}
}

func TestPRRPanicsOnBadInput(t *testing.T) {
	for _, tc := range []struct {
		name string
		d, r float64
	}{
		{"negative-distance", -1, 10},
		{"zero-range", 5, 0},
		{"negative-range", 5, -10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("PRR(%v, %v) did not panic", tc.d, tc.r)
				}
			}()
			Default().PRR(tc.d, tc.r)
		})
	}
}

func TestDeliveryProbBoundaries(t *testing.T) {
	r := 20.0
	m := Default()
	if got := m.DeliveryProb(0, r); got < 0.9999 || got > 1 {
		t.Fatalf("DeliveryProb at d=0: %v", got)
	}
	far := m.DeliveryProb(50*r, r)
	if far < 0 || far > 1e-6 {
		t.Fatalf("DeliveryProb far beyond range: %v", far)
	}
	// Retries help: delivery with budget beats the single attempt.
	single := Model{D50: m.D50, Width: m.Width, MaxRetries: 0}
	if m.DeliveryProb(r, r) <= single.DeliveryProb(r, r) {
		t.Fatalf("retry budget did not improve delivery at range edge")
	}
}
