package mtsp

import (
	"math"
	"testing"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
	"mobicol/internal/tsp"
)

var sink = geom.Pt(100, 100)

func randStops(s *rng.Source, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(s.Uniform(0, 200), s.Uniform(0, 200))
	}
	return pts
}

func opts() tsp.Options { return tsp.DefaultOptions() }

func TestMinCollectorsRespectsBound(t *testing.T) {
	s := rng.New(90)
	for trial := 0; trial < 10; trial++ {
		stops := randStops(s, 10+s.Intn(40))
		bound := s.Uniform(300, 700)
		mp, err := MinCollectors(sink, stops, bound, opts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := mp.Validate(stops); err != nil {
			t.Fatal(err)
		}
		for i, l := range mp.Lengths() {
			if l > bound+1e-6 {
				t.Fatalf("trial %d: sub-tour %d length %.1f exceeds bound %.1f", trial, i, l, bound)
			}
		}
	}
}

func TestMinCollectorsSingleTourWhenBoundLoose(t *testing.T) {
	s := rng.New(91)
	stops := randStops(s, 20)
	mp, err := MinCollectors(sink, stops, 1e9, opts())
	if err != nil {
		t.Fatal(err)
	}
	if mp.K() != 1 {
		t.Fatalf("loose bound produced %d tours", mp.K())
	}
}

func TestMinCollectorsMonotoneInBound(t *testing.T) {
	s := rng.New(92)
	stops := randStops(s, 40)
	prev := -1
	for _, bound := range []float64{400, 600, 800, 1200, 2000} {
		mp, err := MinCollectors(sink, stops, bound, opts())
		if err != nil {
			t.Fatalf("bound %v: %v", bound, err)
		}
		if prev >= 0 && mp.K() > prev {
			t.Fatalf("collectors increased from %d to %d as bound grew to %v", prev, mp.K(), bound)
		}
		prev = mp.K()
	}
}

func TestMinCollectorsInfeasibleBound(t *testing.T) {
	stops := []geom.Point{geom.Pt(0, 0)} // 2*dist(sink, stop) ≈ 283 m
	if _, err := MinCollectors(sink, stops, 100, opts()); err == nil {
		t.Fatal("infeasible bound accepted")
	}
}

func TestMinCollectorsRejectsBadBound(t *testing.T) {
	if _, err := MinCollectors(sink, nil, 0, opts()); err == nil {
		t.Fatal("zero bound accepted")
	}
}

func TestMinCollectorsEmptyStops(t *testing.T) {
	mp, err := MinCollectors(sink, nil, 100, opts())
	if err != nil {
		t.Fatal(err)
	}
	if mp.K() != 0 || mp.TotalLength() != 0 {
		t.Fatal("empty plan not empty")
	}
}

func TestMinMaxSplitKOne(t *testing.T) {
	s := rng.New(93)
	stops := randStops(s, 25)
	mp, err := MinMaxSplit(sink, stops, 1, opts())
	if err != nil {
		t.Fatal(err)
	}
	if mp.K() != 1 {
		t.Fatalf("k=1 produced %d tours", mp.K())
	}
	if err := mp.Validate(stops); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxSplitImprovesWithK(t *testing.T) {
	s := rng.New(94)
	stops := randStops(s, 50)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		mp, err := MinMaxSplit(sink, stops, k, opts())
		if err != nil {
			t.Fatal(err)
		}
		if err := mp.Validate(stops); err != nil {
			t.Fatal(err)
		}
		if mp.K() > k {
			t.Fatalf("k=%d produced %d tours", k, mp.K())
		}
		got := mp.MaxLength()
		// The greedy splitter is approximate; it must never be worse and
		// should generally improve.
		if got > prev+1e-6 {
			t.Fatalf("max sub-tour grew from %.1f to %.1f as k rose to %d", prev, got, k)
		}
		prev = got
	}
}

func TestMinMaxSplitBoundedBelowByWorstRoundTrip(t *testing.T) {
	s := rng.New(95)
	stops := randStops(s, 30)
	worst := 0.0
	for _, p := range stops {
		worst = math.Max(worst, 2*sink.Dist(p))
	}
	mp, err := MinMaxSplit(sink, stops, 30, opts())
	if err != nil {
		t.Fatal(err)
	}
	if mp.MaxLength() < worst-1e-6 {
		t.Fatalf("max sub-tour %.1f below the physical minimum %.1f", mp.MaxLength(), worst)
	}
}

func TestMinMaxSplitRejectsBadK(t *testing.T) {
	if _, err := MinMaxSplit(sink, nil, 0, opts()); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTotalLengthAtLeastMaxLength(t *testing.T) {
	s := rng.New(96)
	stops := randStops(s, 35)
	mp, err := MinMaxSplit(sink, stops, 4, opts())
	if err != nil {
		t.Fatal(err)
	}
	if mp.TotalLength() < mp.MaxLength()-1e-9 {
		t.Fatal("total shorter than max")
	}
}

func TestTourPlansPartitionSensors(t *testing.T) {
	s := rng.New(97)
	stops := randStops(s, 12)
	sensors := randStops(s, 60)
	// Assign each sensor to its nearest stop.
	uploadAt := make([]int, len(sensors))
	for i, p := range sensors {
		best, bd := -1, math.Inf(1)
		for j, q := range stops {
			if d := p.Dist2(q); d < bd {
				best, bd = j, d
			}
		}
		uploadAt[i] = best
	}
	mp, err := MinMaxSplit(sink, stops, 3, opts())
	if err != nil {
		t.Fatal(err)
	}
	plans, err := mp.TourPlans(sensors, uploadAt, stops)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != mp.K() {
		t.Fatalf("%d plans for %d tours", len(plans), mp.K())
	}
	served := 0
	for _, tp := range plans {
		served += tp.Served()
		if err := tp.Validate(sensors, 0); err != nil {
			t.Fatal(err)
		}
	}
	if served != len(sensors) {
		t.Fatalf("plans serve %d of %d sensors", served, len(sensors))
	}
}

func TestStopTourConsistent(t *testing.T) {
	s := rng.New(98)
	stops := randStops(s, 30)
	mp, err := MinMaxSplit(sink, stops, 3, opts())
	if err != nil {
		t.Fatal(err)
	}
	for i, tIdx := range mp.StopTour {
		found := false
		for _, p := range mp.Tours[tIdx] {
			if p.Eq(stops[i]) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stop %d not on its assigned tour %d", i, tIdx)
		}
	}
}

func BenchmarkMinCollectors(b *testing.B) {
	stops := randStops(rng.New(1), 60)
	o := opts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinCollectors(sink, stops, 600, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinMaxSplit(b *testing.B) {
	stops := randStops(rng.New(2), 60)
	o := opts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinMaxSplit(sink, stops, 4, o); err != nil {
			b.Fatal(err)
		}
	}
}
