// Package mtsp plans tours for multiple M-collectors. For applications
// with strict per-round distance (equivalently time) constraints, the
// paper splits the data-gathering work across several collectors that
// traverse shorter sub-tours concurrently, each starting and ending at the
// static data sink.
//
// Two dual operations are provided:
//
//   - MinCollectors: given a per-collector tour-length bound, find the
//     fewest sub-tours whose lengths all respect the bound.
//   - MinMaxSplit: given k collectors, minimise the longest sub-tour.
//
// Both use the classic tour-splitting construction (Frederickson, Hecht &
// Kim): order the stops along one master tour, then cut it into
// consecutive segments, closing each segment through the sink. Splitting
// an optimal master tour with bound-respecting cuts is a constant-factor
// approximation for both objectives; each sub-tour is then re-optimised
// with local search.
package mtsp

import (
	"fmt"
	"math"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/tsp"
)

// MultiPlan is a set of sink-anchored sub-tours covering all stops.
type MultiPlan struct {
	Sink geom.Point
	// Tours[t] is the ordered stop list of collector t (sink excluded).
	Tours [][]geom.Point
	// StopTour[i] gives the tour index serving master stop i (indexing
	// the stops slice passed to the splitter).
	StopTour []int
}

// K returns the number of sub-tours.
func (mp *MultiPlan) K() int { return len(mp.Tours) }

// Lengths returns each sub-tour's closed length.
func (mp *MultiPlan) Lengths() []float64 {
	out := make([]float64, len(mp.Tours))
	for i, stops := range mp.Tours {
		out[i] = closedLength(mp.Sink, stops)
	}
	return out
}

// MaxLength returns the longest sub-tour length — the per-round latency
// bottleneck when collectors run concurrently.
func (mp *MultiPlan) MaxLength() float64 {
	m := 0.0
	for _, l := range mp.Lengths() {
		m = math.Max(m, l)
	}
	return m
}

// TotalLength returns the summed sub-tour length (total driving).
func (mp *MultiPlan) TotalLength() float64 {
	t := 0.0
	for _, l := range mp.Lengths() {
		t += l
	}
	return t
}

// Validate checks that every stop is served exactly once.
func (mp *MultiPlan) Validate(stops []geom.Point) error {
	if len(mp.StopTour) != len(stops) {
		return fmt.Errorf("mtsp: %d stop assignments for %d stops", len(mp.StopTour), len(stops))
	}
	count := 0
	for _, tour := range mp.Tours {
		count += len(tour)
	}
	if count != len(stops) {
		return fmt.Errorf("mtsp: sub-tours visit %d stops, want %d", count, len(stops))
	}
	for i, t := range mp.StopTour {
		if t < 0 || t >= len(mp.Tours) {
			return fmt.Errorf("mtsp: stop %d assigned to tour %d of %d", i, t, len(mp.Tours))
		}
	}
	return nil
}

func closedLength(sink geom.Point, stops []geom.Point) float64 {
	if len(stops) == 0 {
		return 0
	}
	total := sink.Dist(stops[0])
	for i := 1; i < len(stops); i++ {
		total += stops[i-1].Dist(stops[i])
	}
	return total + stops[len(stops)-1].Dist(sink)
}

// masterOrder builds the master tour over sink + stops and returns the
// stop indices in visiting order (sink excluded).
func masterOrder(sink geom.Point, stops []geom.Point, opts tsp.Options) []int {
	pts := make([]geom.Point, 0, len(stops)+1)
	pts = append(pts, sink)
	pts = append(pts, stops...)
	tour := tsp.Solve(pts, opts)
	tour.RotateTo(0)
	order := make([]int, 0, len(stops))
	for _, idx := range tour[1:] {
		order = append(order, idx-1)
	}
	return order
}

// splitByBound greedily cuts the ordered stops into consecutive segments
// whose closed (through-sink) lengths do not exceed bound. It returns nil
// when some single stop is unreachable within the bound (out-and-back
// already exceeds it), in which case no splitting can help.
func splitByBound(sink geom.Point, stops []geom.Point, order []int, bound float64) [][]int {
	var segments [][]int
	var cur []int
	curLen := 0.0 // sink -> ... -> last of cur (open)
	for _, s := range order {
		p := stops[s]
		if sink.Dist(p)*2 > bound+1e-9 {
			return nil
		}
		var candLen float64
		if len(cur) == 0 {
			candLen = sink.Dist(p)
		} else {
			candLen = curLen + stops[cur[len(cur)-1]].Dist(p)
		}
		if len(cur) > 0 && candLen+p.Dist(sink) > bound+1e-9 {
			segments = append(segments, cur)
			cur = []int{s}
			curLen = sink.Dist(p)
			continue
		}
		cur = append(cur, s)
		curLen = candLen
	}
	if len(cur) > 0 {
		segments = append(segments, cur)
	}
	return segments
}

// assemble turns index segments into a MultiPlan, re-optimising each
// sub-tour with the TSP engine (sink anchored).
func assemble(sink geom.Point, stops []geom.Point, segments [][]int, opts tsp.Options) *MultiPlan {
	mp := &MultiPlan{Sink: sink, StopTour: make([]int, len(stops))}
	for i := range mp.StopTour {
		mp.StopTour[i] = -1
	}
	for t, seg := range segments {
		segPts := make([]geom.Point, 0, len(seg)+1)
		segPts = append(segPts, sink)
		for _, s := range seg {
			segPts = append(segPts, stops[s])
		}
		tour := tsp.Solve(segPts, opts)
		tour.RotateTo(0)
		ordered := make([]geom.Point, 0, len(seg))
		for _, idx := range tour[1:] {
			ordered = append(ordered, segPts[idx])
		}
		// Local search is not guaranteed to beat the master-tour order
		// this segment was cut from, and the splitter's length bound was
		// proved against that order — keep whichever is shorter.
		master := segPts[1:]
		if closedLength(sink, master) < closedLength(sink, ordered) {
			ordered = append(ordered[:0], master...)
		}
		for _, s := range seg {
			mp.StopTour[s] = t
		}
		mp.Tours = append(mp.Tours, ordered)
	}
	return mp
}

// MinCollectors returns the fewest sub-tours, each of closed length at
// most bound, covering all stops. It errors when some stop cannot be
// visited within the bound even by a dedicated collector.
func MinCollectors(sink geom.Point, stops []geom.Point, bound float64, opts tsp.Options) (*MultiPlan, error) {
	if bound <= 0 {
		return nil, fmt.Errorf("mtsp: non-positive tour bound %v", bound)
	}
	if len(stops) == 0 {
		return &MultiPlan{Sink: sink}, nil
	}
	order := masterOrder(sink, stops, opts)
	segments := splitByBound(sink, stops, order, bound)
	if segments == nil {
		return nil, fmt.Errorf("mtsp: a stop needs a %0.1fm round trip, exceeding the %0.1fm bound",
			worstRoundTrip(sink, stops), bound)
	}
	mp := assemble(sink, stops, segments, opts)
	// Re-optimisation can only shorten sub-tours, so the bound still holds;
	// verify defensively.
	for _, l := range mp.Lengths() {
		if l > bound+1e-6 {
			return nil, fmt.Errorf("mtsp: internal error: sub-tour %0.1fm exceeds bound %0.1fm", l, bound)
		}
	}
	return mp, nil
}

func worstRoundTrip(sink geom.Point, stops []geom.Point) float64 {
	w := 0.0
	for _, p := range stops {
		w = math.Max(w, 2*sink.Dist(p))
	}
	return w
}

// MinMaxSplit divides the stops among exactly k collectors, minimising the
// longest sub-tour. It binary-searches the bound over splitByBound: the
// number of segments needed is non-increasing in the bound, so the search
// converges to the smallest bound feasible with k segments.
func MinMaxSplit(sink geom.Point, stops []geom.Point, k int, opts tsp.Options) (*MultiPlan, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mtsp: need at least one collector, got %d", k)
	}
	if len(stops) == 0 {
		return &MultiPlan{Sink: sink}, nil
	}
	order := masterOrder(sink, stops, opts)
	lo := worstRoundTrip(sink, stops)
	hi := closedLength(sink, orderedPts(stops, order))
	if k == 1 || len(stops) <= k {
		// One stop per collector is always feasible when k >= len(stops);
		// k == 1 is the master tour itself.
	}
	var bestSegs [][]int
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		segs := splitByBound(sink, stops, order, mid)
		if segs != nil && len(segs) <= k {
			bestSegs = segs
			hi = mid
		} else {
			lo = mid
		}
	}
	if bestSegs == nil {
		bestSegs = splitByBound(sink, stops, order, hi)
		if bestSegs == nil || len(bestSegs) > k {
			// hi is the full master tour length, always feasible with one
			// segment, so this cannot happen.
			return nil, fmt.Errorf("mtsp: internal error: no feasible %d-split", k)
		}
	}
	return assemble(sink, stops, bestSegs, opts), nil
}

func orderedPts(stops []geom.Point, order []int) []geom.Point {
	out := make([]geom.Point, len(order))
	for i, s := range order {
		out[i] = stops[s]
	}
	return out
}

// TourPlans converts the multi-plan into per-collector executable plans
// given the sensor upload assignment of the underlying single-collector
// solution: sensor i rides with the tour serving its stop.
func (mp *MultiPlan) TourPlans(sensors []geom.Point, uploadAt []int, masterStops []geom.Point) ([]*collector.TourPlan, error) {
	if len(uploadAt) != len(sensors) {
		return nil, fmt.Errorf("mtsp: %d assignments for %d sensors", len(uploadAt), len(sensors))
	}
	plans := make([]*collector.TourPlan, len(mp.Tours))
	// Map each master stop position to (tour, index within tour).
	type loc struct{ tour, idx int }
	locOf := make(map[geom.Point]loc, len(masterStops))
	for t, tour := range mp.Tours {
		for i, p := range tour {
			locOf[p] = loc{t, i}
		}
	}
	for t := range plans {
		plans[t] = &collector.TourPlan{
			Sink:     mp.Sink,
			Stops:    mp.Tours[t],
			UploadAt: make([]int, len(sensors)),
		}
		for i := range sensors {
			plans[t].UploadAt[i] = -1
		}
	}
	for i, a := range uploadAt {
		if a < 0 {
			continue
		}
		l, ok := locOf[masterStops[a]]
		if !ok {
			return nil, fmt.Errorf("mtsp: master stop %d missing from sub-tours", a)
		}
		plans[l.tour].UploadAt[i] = l.idx
	}
	return plans, nil
}
