package schedule

import (
	"math"
	"testing"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

func plannedNet(t *testing.T, seed uint64) (*wsn.Network, *collector.TourPlan) {
	t.Helper()
	nw := wsn.MustDeploy(wsn.Config{N: 120, FieldSide: 200, Range: 30, Seed: seed})
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	return nw, sol.Plan
}

func TestDemandsFromPlan(t *testing.T) {
	_, plan := plannedNet(t, 1)
	demands := DemandsFromPlan(plan, 0.01, 50)
	if len(demands) != len(plan.Stops) {
		t.Fatalf("%d demands for %d stops", len(demands), len(plan.Stops))
	}
	totalRate := 0.0
	for _, d := range demands {
		totalRate += d.Rate
		if d.Buffer != 50 {
			t.Fatal("buffer not propagated")
		}
	}
	if math.Abs(totalRate-0.01*float64(plan.Served())) > 1e-9 {
		t.Fatalf("total rate %v", totalRate)
	}
}

func TestCyclicFeasibleThresholds(t *testing.T) {
	_, plan := plannedNet(t, 2)
	spec := collector.DefaultSpec()
	period := plan.RoundTime(spec)
	// Generous buffers: feasible.
	loose := DemandsFromPlan(plan, 0.001, 0.002*period*100)
	if !CyclicFeasible(plan, loose, spec) {
		t.Fatal("loose demands infeasible")
	}
	// A buffer that fills faster than the round: infeasible.
	tight := DemandsFromPlan(plan, 1, period/2)
	if CyclicFeasible(plan, tight, spec) {
		t.Fatal("tight demands feasible")
	}
}

func TestMinSpeedMakesFeasible(t *testing.T) {
	_, plan := plannedNet(t, 3)
	demands := DemandsFromPlan(plan, 0.002, 10)
	v, err := MinSpeed(plan, demands, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("MinSpeed = %v", v)
	}
	spec := collector.Spec{Speed: v * 1.001, UploadTime: 0.1}
	if !CyclicFeasible(plan, demands, spec) {
		t.Fatal("speed just above MinSpeed infeasible")
	}
	slow := collector.Spec{Speed: v * 0.9, UploadTime: 0.1}
	if CyclicFeasible(plan, demands, slow) {
		t.Fatal("speed below MinSpeed feasible")
	}
}

func TestMinSpeedImpossible(t *testing.T) {
	_, plan := plannedNet(t, 4)
	// Horizon shorter than the pure upload time.
	demands := DemandsFromPlan(plan, 10, 1) // 0.1s horizon at hottest stop
	if _, err := MinSpeed(plan, demands, 0.1); err == nil {
		t.Fatal("impossible demands accepted")
	}
}

func TestMinSpeedNoData(t *testing.T) {
	_, plan := plannedNet(t, 5)
	demands := DemandsFromPlan(plan, 0, 10)
	v, err := MinSpeed(plan, demands, 0.1)
	if err != nil || v != 0 {
		t.Fatalf("no-data MinSpeed = %v, %v", v, err)
	}
}

func TestRunFeasibleCyclicLosesNothing(t *testing.T) {
	_, plan := plannedNet(t, 6)
	spec := collector.DefaultSpec()
	period := plan.RoundTime(spec)
	// Buffers hold 3 periods of data: comfortably feasible.
	demands := make([]Demand, len(plan.Stops))
	for i, c := range plan.SensorsAt() {
		rate := float64(c) * 0.001
		demands[i] = Demand{Rate: rate, Buffer: rate * period * 3}
	}
	res, err := Run(plan, demands, spec, Cyclic, period*10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost > 1e-9 {
		t.Fatalf("feasible cyclic run lost %v packets", res.Lost)
	}
	if res.Visits < len(plan.Stops) {
		t.Fatalf("only %d visits in 10 periods", res.Visits)
	}
	if res.Collected <= 0 || res.Generated <= 0 {
		t.Fatalf("degenerate run %+v", res)
	}
}

func TestRunOverloadedLosesData(t *testing.T) {
	_, plan := plannedNet(t, 7)
	spec := collector.DefaultSpec()
	period := plan.RoundTime(spec)
	// Buffers hold only a tenth of a period: loss is unavoidable.
	demands := make([]Demand, len(plan.Stops))
	for i, c := range plan.SensorsAt() {
		rate := float64(c) * 0.01
		demands[i] = Demand{Rate: rate, Buffer: rate * period / 10}
	}
	res, err := Run(plan, demands, spec, Cyclic, period*5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost <= 0 {
		t.Fatal("overloaded run lost nothing")
	}
	if res.LossFraction() <= 0 || res.LossFraction() >= 1 {
		t.Fatalf("loss fraction %v", res.LossFraction())
	}
}

func TestEDFNotWorseOnHotspot(t *testing.T) {
	// Heterogeneous demands: one hot stop near the sink needs frequent
	// visits; EDF should lose no more than the oblivious cycle.
	_, plan := plannedNet(t, 8)
	spec := collector.DefaultSpec()
	period := plan.RoundTime(spec)
	demands := make([]Demand, len(plan.Stops))
	for i, c := range plan.SensorsAt() {
		rate := float64(c) * 0.0005
		demands[i] = Demand{Rate: rate, Buffer: rate * period * 2}
	}
	// Make stop 0 hot: 20x the rate with the same absolute buffer.
	demands[0].Rate *= 20
	cyc, err := Run(plan, demands, spec, Cyclic, period*8)
	if err != nil {
		t.Fatal(err)
	}
	edf, err := Run(plan, demands, spec, EDF, period*8)
	if err != nil {
		t.Fatal(err)
	}
	if edf.LossFraction() > cyc.LossFraction()+1e-9 {
		t.Fatalf("EDF loss %.4f worse than cyclic %.4f", edf.LossFraction(), cyc.LossFraction())
	}
}

func TestRunConservation(t *testing.T) {
	// Generated >= Collected + Lost (the remainder sits in buffers).
	_, plan := plannedNet(t, 9)
	spec := collector.DefaultSpec()
	demands := DemandsFromPlan(plan, 0.002, 5)
	for _, pol := range []Policy{Cyclic, EDF} {
		res, err := Run(plan, demands, spec, pol, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Collected+res.Lost > res.Generated+1e-6 {
			t.Fatalf("%v: collected %v + lost %v > generated %v", pol, res.Collected, res.Lost, res.Generated)
		}
		if res.Driven <= 0 {
			t.Fatalf("%v: no driving", pol)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	_, plan := plannedNet(t, 10)
	demands := DemandsFromPlan(plan, 0.001, 10)
	if _, err := Run(plan, demands[:1], collector.DefaultSpec(), Cyclic, 100); err == nil {
		t.Fatal("demand/stop mismatch accepted")
	}
	if _, err := Run(plan, demands, collector.Spec{Speed: 0}, Cyclic, 100); err == nil {
		t.Fatal("zero speed accepted")
	}
	if _, err := Run(plan, demands, collector.DefaultSpec(), Cyclic, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestRunEmptyPlan(t *testing.T) {
	plan := &collector.TourPlan{Sink: geom.Pt(0, 0)}
	res, err := Run(plan, nil, collector.DefaultSpec(), EDF, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 0 || res.Visits != 0 {
		t.Fatalf("empty plan result %+v", res)
	}
}
