// Package schedule handles visit-frequency constraints: sensors generate
// data continuously, polling points buffer it, and the collector must
// revisit each stop before its buffer overflows (the mobile-element
// scheduling problem of Somasundara et al., which the paper's periodic
// gathering builds on). The package answers three questions:
//
//  1. Is a fixed cyclic tour feasible at a given collector speed
//     (no stop overflows between consecutive visits)?
//  2. What is the minimum feasible speed for a tour?
//  3. When no cyclic tour is feasible, how much less data does an
//     earliest-deadline-first (EDF) visiting policy lose than the fixed
//     cyclic order?
package schedule

import (
	"fmt"
	"math"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
)

// Demand describes one stop's buffering situation.
type Demand struct {
	// Rate is the stop's aggregate data generation in packets/second
	// (the sum over its affiliated sensors).
	Rate float64
	// Buffer is the stop's capacity in packets.
	Buffer float64
}

// overflowHorizon returns how long the stop can go unvisited from empty.
func (d Demand) overflowHorizon() float64 {
	if d.Rate <= 0 {
		return math.Inf(1)
	}
	return d.Buffer / d.Rate
}

// DemandsFromPlan derives per-stop demands from a tour plan: every sensor
// contributes ratePerSensor; every stop has the given buffer.
func DemandsFromPlan(plan *collector.TourPlan, ratePerSensor, buffer float64) []Demand {
	counts := plan.SensorsAt()
	out := make([]Demand, len(counts))
	for i, c := range counts {
		out[i] = Demand{Rate: float64(c) * ratePerSensor, Buffer: buffer}
	}
	return out
}

// CyclicFeasible reports whether the cyclic tour at the given spec
// revisits every stop before overflow: the revisit period (one full round)
// must not exceed any stop's overflow horizon.
func CyclicFeasible(plan *collector.TourPlan, demands []Demand, spec collector.Spec) bool {
	period := plan.RoundTime(spec)
	for _, d := range demands {
		if period > d.overflowHorizon()+1e-12 {
			return false
		}
	}
	return true
}

// MinSpeed returns the minimum collector speed making the cyclic tour
// feasible, holding the per-sensor upload time fixed. It errors when even
// infinite speed cannot help (the upload time alone exceeds some horizon).
func MinSpeed(plan *collector.TourPlan, demands []Demand, uploadTime float64) (geom.MetersPerSecond, error) {
	tight := math.Inf(1)
	for _, d := range demands {
		tight = math.Min(tight, d.overflowHorizon())
	}
	if math.IsInf(tight, 1) {
		return 0, nil // nothing generates data; any speed works
	}
	uploads := float64(plan.Served()) * uploadTime
	if uploads >= tight {
		return 0, fmt.Errorf("schedule: upload time %.1fs alone exceeds the tightest overflow horizon %.1fs", uploads, tight)
	}
	//mdglint:ignore unitcheck dimensional division boundary: metres over seconds yields a speed
	return geom.MetersPerSecond(float64(plan.Length()) / (tight - uploads)), nil
}

// Policy selects the visiting order of a simulated run.
type Policy int

const (
	// Cyclic repeats the plan's stop order forever.
	Cyclic Policy = iota
	// EDF always drives to the stop whose buffer will overflow first.
	EDF
)

// String names the policy.
func (p Policy) String() string {
	if p == EDF {
		return "edf"
	}
	return "cyclic"
}

// RunResult summarises a scheduling simulation.
type RunResult struct {
	Policy    Policy
	Horizon   float64
	Generated float64 // packets produced
	Collected float64 // packets picked up
	Lost      float64 // packets dropped to full buffers
	Visits    int
	Driven    float64 // metres
}

// LossFraction returns Lost / Generated (0 when nothing was generated).
func (r *RunResult) LossFraction() float64 {
	if r.Generated <= 0 {
		return 0
	}
	return r.Lost / r.Generated
}

// Run simulates continuous generation and collector visits over the
// horizon. Buffers fill at their demand rates; packets arriving at a full
// buffer are lost; a visit empties the buffer after a service time of
// spec.UploadTime per buffered packet. The simulation is deterministic.
func Run(plan *collector.TourPlan, demands []Demand, spec collector.Spec, policy Policy, horizon float64) (*RunResult, error) {
	if len(demands) != len(plan.Stops) {
		return nil, fmt.Errorf("schedule: %d demands for %d stops", len(demands), len(plan.Stops))
	}
	if spec.Speed <= 0 {
		return nil, fmt.Errorf("schedule: non-positive speed")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("schedule: non-positive horizon")
	}
	n := len(plan.Stops)
	//mdglint:ignore unitcheck kinematics boundary: the event loop below mixes speed with raw distances and times
	v := float64(spec.Speed)
	res := &RunResult{Policy: policy, Horizon: horizon}
	if n == 0 {
		return res, nil
	}
	level := make([]float64, n)  // buffered packets
	lastAt := make([]float64, n) // time of last level update
	pos := plan.Sink
	now := 0.0
	next := 0 // cyclic cursor

	// advance brings stop s's buffer up to date at time t, accounting
	// generation and overflow.
	advance := func(s int, t float64) {
		dt := t - lastAt[s]
		if dt <= 0 {
			return
		}
		gen := demands[s].Rate * dt
		res.Generated += gen
		room := demands[s].Buffer - level[s]
		if gen > room {
			res.Lost += gen - room
			level[s] = demands[s].Buffer
		} else {
			level[s] += gen
		}
		lastAt[s] = t
	}

	pick := func() int {
		if policy == Cyclic {
			s := next
			next = (next + 1) % n
			return s
		}
		// EDF: earliest absolute overflow instant; idle stops (rate 0)
		// go last, ties toward the nearest stop.
		best, bestT, bestD := -1, math.Inf(1), math.Inf(1)
		for s := 0; s < n; s++ {
			var deadline float64
			if demands[s].Rate <= 0 {
				deadline = math.Inf(1)
			} else {
				deadline = now + (demands[s].Buffer-level[s])/demands[s].Rate
			}
			d := pos.Dist(plan.Stops[s])
			if deadline < bestT-1e-12 || (deadline < bestT+1e-12 && d < bestD) {
				best, bestT, bestD = s, deadline, d
			}
		}
		return best
	}

	for now < horizon {
		startNow := now
		s := pick()
		target := plan.Stops[s]
		drive := pos.Dist(target) / v
		arrive := now + drive
		if arrive > horizon {
			arrive = horizon
			target = geom.Seg(pos, plan.Stops[s]).PointAt((horizon - now) * v / math.Max(pos.Dist(plan.Stops[s]), 1e-12))
			// Buffers still fill while the collector is en route.
			for v := 0; v < n; v++ {
				advance(v, horizon)
			}
			res.Driven += pos.Dist(target)
			now = horizon
			break
		}
		for v := 0; v < n; v++ {
			advance(v, arrive)
		}
		res.Driven += pos.Dist(plan.Stops[s])
		pos = plan.Stops[s]
		now = arrive
		// Service: empty the buffer; generation continues during service.
		service := level[s] * spec.UploadTime
		res.Collected += level[s]
		level[s] = 0
		lastAt[s] = now
		end := math.Min(now+service, horizon)
		for v := 0; v < n; v++ {
			advance(v, end)
		}
		res.Visits++
		now = end
		// minStep guards against Zeno livelock: when the collector
		// re-picks the stop it is parked at, each "visit" advances time
		// only by the shrinking service of what trickled in during the
		// previous one — a geometric series that converges without ever
		// reaching the horizon. Any step below a microsecond counts as
		// idling.
		const minStep = 1e-6
		if now < startNow+minStep {
			// The collector idled. Jump forward to when buffers
			// meaningfully refill so the simulation always progresses.
			idle := math.Inf(1)
			for v := range demands {
				if demands[v].Rate > 0 {
					idle = math.Min(idle, math.Max(demands[v].Buffer/(2*demands[v].Rate), 1e-3))
				}
			}
			if math.IsInf(idle, 1) {
				break // nothing generates data anywhere
			}
			now = math.Min(horizon, now+idle)
			for v := 0; v < n; v++ {
				advance(v, now)
			}
		}
	}
	// Data still buffered at the horizon was neither lost nor collected;
	// leave it out of both tallies (callers compare loss fractions).
	return res, nil
}
