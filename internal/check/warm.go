package check

import (
	"fmt"

	"mobicol/internal/geom"
)

// MaxWarmRatio pins warm-start repair quality: a warm-repaired tour must
// stay within this factor of a cold replan of the same scenario. The
// bound lives here — below both the planner and the repairer — so the
// benchmarks, the CLIs, and the metamorphic tests all enforce the same
// number.
const MaxWarmRatio = 1.15

// WarmRatio returns warm/cold, the quality ratio the benchmarks report.
// A degenerate cold tour of zero length yields 1 when warm is also
// (near-)zero and +Inf ratio semantics otherwise via the plain division.
func WarmRatio(warm, cold geom.Meters) float64 {
	//mdglint:ignore floateq 0 is the empty-tour sentinel, not a computed comparison
	if cold == 0 && warm == 0 {
		return 1
	}
	//mdglint:ignore unitcheck math boundary: the ratio of two lengths is dimensionless
	return float64(warm) / float64(cold)
}

// WarmQuality verifies a warm-repaired tour length against the cold
// replan of the same scenario: warm must not exceed MaxWarmRatio × cold
// (with an absolute floor of one transmission-range-scale metre so tiny
// tours do not fail on noise). nil means the repair kept its quality
// contract.
func WarmQuality(warm, cold geom.Meters) error {
	limit := cold.Scale(MaxWarmRatio) + 1
	if warm > limit {
		return fmt.Errorf("check: warm tour %.2fm exceeds %.2f x cold %.2fm (ratio %.3f)",
			warm, MaxWarmRatio, cold, WarmRatio(warm, cold))
	}
	return nil
}
