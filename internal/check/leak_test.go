package check

import (
	"strings"
	"testing"
)

// recordingTB captures Errorf calls so the failure path of the leak
// checker can itself be tested.
type recordingTB struct {
	failures []string
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Errorf(format string, args ...any) {
	r.failures = append(r.failures, strings.TrimSpace(format))
}

func TestLeakedGoroutinesCleanFunction(t *testing.T) {
	done := make(chan struct{})
	err := LeakedGoroutines(func() {
		// A goroutine that exits before (or shortly after) fn returns is
		// not a leak: the checker gives it the settle grace period.
		go func() { close(done) }()
		<-done
	})
	if err != nil {
		t.Fatalf("clean function reported a leak: %v", err)
	}
}

func TestLeakedGoroutinesDetectsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	err := LeakedGoroutines(func() {
		go func() { <-release }()
	})
	if err == nil {
		t.Fatal("blocked goroutine not reported")
	}
	msg := err.Error()
	if !strings.Contains(msg, "goroutine(s) leaked") || !strings.Contains(msg, "goroutine ") {
		t.Fatalf("leak error carries no stacks: %q", msg)
	}
}

func TestNoLeakedGoroutinesReportsThroughTB(t *testing.T) {
	tb := &recordingTB{}
	NoLeakedGoroutines(tb, func() {})
	if len(tb.failures) != 0 {
		t.Fatalf("clean function failed the TB: %v", tb.failures)
	}
	release := make(chan struct{})
	defer close(release)
	NoLeakedGoroutines(tb, func() {
		go func() { <-release }()
	})
	if len(tb.failures) != 1 {
		t.Fatalf("leak produced %d TB failures, want 1", len(tb.failures))
	}
}
