package check

import (
	"bufio"
	"fmt"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
)

// This file implements the escape-diagnostic ratchet: CI builds the hot
// packages with `go build -gcflags='-m -m'`, parses the compiler's escape
// diagnostics, and compares them against a committed baseline so the
// number of heap escapes on the hot path can only move down. It is the
// compiler-verdict complement to the lint engine's syntactic alloccheck:
// alloccheck flags allocation *sites*, the escape ratchet pins what the
// compiler actually decided about them. cmd/mdgescape is the CLI front
// end, mirroring cmd/mdgcov's create/compare shape.

// EscapeRecord is one compiler escape diagnostic: a value the compiler
// heap-allocated in the named package.
type EscapeRecord struct {
	Pkg  string // import path, from the preceding "# pkg" header
	File string // base name of the source file
	Line int    // 1-based source line
	Kind string // "escapes-to-heap" or "moved-to-heap"
}

// String renders the record the way the diff messages cite it.
func (r EscapeRecord) String() string {
	return fmt.Sprintf("%s/%s:%d %s", r.Pkg, r.File, r.Line, r.Kind)
}

// Escape diagnostic kinds. "escapes to heap" marks an allocation the
// compiler could not stack-allocate (makes, literals, boxed interface
// values); "moved to heap" marks a named local variable forced to the
// heap because a reference outlives the frame.
const (
	KindEscapes = "escapes-to-heap"
	KindMoved   = "moved-to-heap"
)

// ParseEscapes extracts escape diagnostics from `go build -gcflags='-m -m'`
// output (the compiler writes them to stderr). Lines look like
//
//	# mobicol/internal/tsp
//	internal/tsp/tour.go:79:17: make(Tour, 0, len(t)) escapes to heap
//	internal/tsp/exact.go:40:2: moved to heap: prev
//
// The "#" header names the package for the diagnostics that follow. With
// the doubled -m the compiler prints each escaping site twice — once with
// a trailing colon introducing the flow explanation, once plain — so
// records are deduplicated on (pkg, file, line, column, kind). Inlining
// chatter and "does not escape" lines are ignored.
func ParseEscapes(r io.Reader) ([]EscapeRecord, error) {
	var out []EscapeRecord
	seen := make(map[string]bool)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		kind := ""
		switch {
		case strings.Contains(line, " escapes to heap"):
			kind = KindEscapes
		case strings.Contains(line, "moved to heap"):
			kind = KindMoved
		default:
			continue
		}
		file, ln, col, ok := splitPosPrefix(line)
		if !ok {
			continue // flow-explanation continuation lines have no position
		}
		key := fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%s", pkg, file, ln, col, kind)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, EscapeRecord{Pkg: pkg, File: file, Line: ln, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("check: reading escape diagnostics: %w", err)
	}
	return out, nil
}

// splitPosPrefix parses the "path/file.go:line:col: " prefix of a
// compiler diagnostic, returning the base file name.
func splitPosPrefix(line string) (file string, ln, col int, ok bool) {
	rest := line
	idx := strings.Index(rest, ".go:")
	if idx < 0 {
		return "", 0, 0, false
	}
	file = path.Base(strings.TrimSpace(rest[:idx+3]))
	rest = rest[idx+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 3 {
		return "", 0, 0, false
	}
	ln, err := strconv.Atoi(parts[0])
	if err != nil || ln <= 0 {
		return "", 0, 0, false
	}
	col, err = strconv.Atoi(parts[1])
	if err != nil || col <= 0 {
		return "", 0, 0, false
	}
	return file, ln, col, true
}

// EscapeKey aggregates records to the granularity the baseline pins:
// per package, per file, per diagnostic kind. Line numbers are kept out
// of the key so pure line shifts (an edit above an unchanged escape)
// do not invalidate the baseline; the count per file still catches
// every added escape.
type EscapeKey struct {
	Pkg  string
	File string
	Kind string
}

// CountEscapes folds records into per-(pkg, file, kind) counts.
func CountEscapes(recs []EscapeRecord) map[EscapeKey]int {
	out := make(map[EscapeKey]int)
	for _, r := range recs {
		out[EscapeKey{Pkg: r.Pkg, File: r.File, Kind: r.Kind}]++
	}
	return out
}

// WriteEscapeBaseline writes counts in the format ReadEscapeBaseline
// parses — "pkg file kind count", sorted for stable diffs.
func WriteEscapeBaseline(w io.Writer, counts map[EscapeKey]int) error {
	keys := make([]EscapeKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Kind < b.Kind
	})
	if _, err := fmt.Fprintln(w, "# Per-file heap-escape counts from `go build -gcflags='-m -m'` over the"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# hot packages. CI fails if a file gains escapes. Regenerate with:"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# make escape-update (cmd/mdgescape -update)."); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %s %s %d\n", k.Pkg, k.File, k.Kind, counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEscapeBaseline parses a baseline file: one "pkg file kind count"
// quadruple per line, '#' comments and blank lines ignored.
func ReadEscapeBaseline(r io.Reader) (map[EscapeKey]int, error) {
	out := make(map[EscapeKey]int)
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("check: escape baseline line %d: want \"pkg file kind count\", got %q", lineno, line)
		}
		if fields[2] != KindEscapes && fields[2] != KindMoved {
			return nil, fmt.Errorf("check: escape baseline line %d: unknown kind %q", lineno, fields[2])
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("check: escape baseline line %d: bad count %q", lineno, fields[3])
		}
		out[EscapeKey{Pkg: fields[0], File: fields[1], Kind: fields[2]}] = n
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("check: reading escape baseline: %w", err)
	}
	return out, nil
}

// CompareEscapes diffs measured records against the committed baseline
// and returns one message per regression (sorted; nil when the baseline
// holds). A regression is a (pkg, file, kind) whose measured count
// exceeds its baseline count, including files the baseline has never
// seen. Counts below baseline pass — the next -update ratchets them
// down. Messages cite the measured lines so the offending sites are a
// jump-to-file away.
func CompareEscapes(got []EscapeRecord, baseline map[EscapeKey]int) []string {
	counts := CountEscapes(got)
	lines := make(map[EscapeKey][]int)
	for _, r := range got {
		k := EscapeKey{Pkg: r.Pkg, File: r.File, Kind: r.Kind}
		lines[k] = append(lines[k], r.Line)
	}
	keys := make([]EscapeKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Kind < b.Kind
	})
	var bad []string
	for _, k := range keys {
		allowed := baseline[k]
		if counts[k] <= allowed {
			continue
		}
		ls := lines[k]
		sort.Ints(ls)
		cites := make([]string, len(ls))
		for i, l := range ls {
			cites[i] = strconv.Itoa(l)
		}
		bad = append(bad, fmt.Sprintf("%s/%s: %d %s site(s), baseline allows %d (lines %s)",
			k.Pkg, k.File, counts[k], k.Kind, allowed, strings.Join(cites, ", ")))
	}
	return bad
}
