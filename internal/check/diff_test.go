// Differential suite: on instances small enough for the exact SHDGP
// solver, the heuristic may never beat the proven optimum, and both
// planners' outputs must satisfy the same oracle.
package check_test

import (
	"testing"

	"mobicol/internal/check"
	"mobicol/internal/geom"
	"mobicol/internal/rng"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

// smallNets generates deterministic deployments with n ≤ 10 — inside the
// exact solver's candidate budget. Half uniform, half with duplicated
// positions to stress degenerate covers.
func smallNets(seed uint64, count int) []*wsn.Network {
	src := rng.New(seed)
	out := make([]*wsn.Network, 0, count)
	for i := 0; i < count; i++ {
		s := src.Split()
		n := 3 + s.Intn(8) // 3..10 sensors
		side := s.Uniform(50, 120)
		r := s.Uniform(12, 30)
		field := geom.Square(side)
		pts := make([]geom.Point, 0, n)
		for j := 0; j < n; j++ {
			if i%2 == 1 && j > 0 && s.Bool(0.3) {
				pts = append(pts, pts[s.Intn(j)]) // duplicate an earlier sensor
				continue
			}
			pts = append(pts, geom.Pt(s.Uniform(0, side), s.Uniform(0, side)))
		}
		out = append(out, wsn.New(pts, field.Center(), r, field))
	}
	return out
}

func TestHeuristicNeverBeatsExact(t *testing.T) {
	nets := smallNets(0xD1FF, 40)
	for i, nw := range nets {
		p := shdgp.NewProblem(nw)
		heur, err := shdgp.Plan(p, shdgp.DefaultPlannerOptions())
		if err != nil {
			t.Fatalf("net %d: heuristic: %v", i, err)
		}
		ex, err := shdgp.PlanExact(p, shdgp.DefaultExactLimits())
		if err != nil {
			t.Fatalf("net %d: exact: %v", i, err)
		}
		if !ex.Exact {
			t.Fatalf("net %d (n=%d): exact solver did not certify optimality", i, nw.N())
		}
		if heur.Length < ex.Length-1e-6 {
			t.Fatalf("net %d (n=%d): heuristic %.9f beat proven optimum %.9f",
				i, nw.N(), heur.Length, ex.Length)
		}
		for algo, sol := range map[string]*shdgp.Solution{"heuristic": heur, "exact": ex} {
			if err := check.Plan(nw, sol.Plan, check.Options{}); err != nil {
				t.Fatalf("net %d: %s plan: %v", i, algo, err)
			}
			if err := sol.Validate(p); err != nil {
				t.Fatalf("net %d: %s Validate: %v", i, algo, err)
			}
			if err := check.RecordedLength(sol.Plan, sol.Length); err != nil {
				t.Fatalf("net %d: %s: %v", i, algo, err)
			}
		}
	}
}
