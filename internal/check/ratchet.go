package check

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the coverage ratchet: CI runs `go test -cover`,
// parses the per-package percentages, and compares them against committed
// floors so coverage can only move up (modulo a small slack for flaky
// inlining decisions). cmd/mdgcov is the CLI front end.

// ParseCover extracts per-package coverage percentages from the output of
// `go test -cover ./...`. Packages without test files and packages without
// statements are skipped; a FAIL line aborts with an error, since ratcheting
// coverage from a failing run would pin garbage.
func ParseCover(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		switch fields[0] {
		case "FAIL":
			return nil, fmt.Errorf("check: refusing to ratchet a failing test run: %q", line)
		case "ok":
			pct, found, err := coverPercent(fields)
			if err != nil {
				return nil, fmt.Errorf("check: %v in line %q", err, line)
			}
			if found {
				out[fields[1]] = pct
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("check: reading cover output: %w", err)
	}
	return out, nil
}

// coverPercent finds the "coverage: N.M% of statements" clause in one
// tokenized `go test` line. found is false for packages with no statements
// (go prints "coverage: [no statements]") or no coverage clause at all.
func coverPercent(fields []string) (pct float64, found bool, err error) {
	for i, f := range fields {
		if f != "coverage:" || i+1 >= len(fields) {
			continue
		}
		next := fields[i+1]
		if next == "[no" {
			return 0, false, nil
		}
		v, perr := strconv.ParseFloat(strings.TrimSuffix(next, "%"), 64)
		if perr != nil {
			return 0, false, fmt.Errorf("unparseable coverage %q", next)
		}
		return v, true, nil
	}
	return 0, false, nil
}

// ReadRatchet parses a ratchet file: one "import/path minimum-percent" pair
// per line, '#' comments and blank lines ignored.
func ReadRatchet(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("check: ratchet line %d: want \"package percent\", got %q", lineno, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || v < 0 || v > 100 {
			return nil, fmt.Errorf("check: ratchet line %d: bad percentage %q", lineno, fields[1])
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("check: reading ratchet: %w", err)
	}
	return out, nil
}

// WriteRatchet writes floors in the format ReadRatchet parses, packages
// sorted for stable diffs.
func WriteRatchet(w io.Writer, floors map[string]float64) error {
	pkgs := make([]string, 0, len(floors))
	for p := range floors {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	if _, err := fmt.Fprintln(w, "# Per-package `go test -cover` floors. CI fails if a package drops below"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# its floor. Regenerate with: make cover-update (cmd/mdgcov -update)."); err != nil {
		return err
	}
	for _, p := range pkgs {
		if _, err := fmt.Fprintf(w, "%s %.1f\n", p, floors[p]); err != nil {
			return err
		}
	}
	return nil
}

// CompareRatchet checks measured coverage against committed floors and
// returns one message per violated floor (sorted by package; nil when all
// floors hold). slack widens the comparison: a package passes while
// measured + slack >= floor. Packages present in got but absent from the
// ratchet never fail — new packages ratchet in on the next -update.
func CompareRatchet(got, floors map[string]float64, slack float64) []string {
	if slack < 0 {
		slack = 0
	}
	pkgs := make([]string, 0, len(floors))
	for p := range floors {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	var bad []string
	for _, p := range pkgs {
		floor := floors[p]
		cov, ok := got[p]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: no coverage reported, ratchet floor is %.1f%%", p, floor))
			continue
		}
		if cov+slack < floor {
			bad = append(bad, fmt.Sprintf("%s: coverage %.1f%% fell below ratchet floor %.1f%% (slack %.1f)", p, cov, floor, slack))
		}
	}
	return bad
}

// Floors derates measured coverage by margin to produce committable ratchet
// floors, clamped to [0, 100] and truncated to one decimal so regenerated
// files stay stable across runs that only wiggle in the second decimal.
func Floors(cov map[string]float64, margin float64) map[string]float64 {
	out := make(map[string]float64, len(cov))
	for p, v := range cov {
		f := v - margin
		if f < 0 {
			f = 0
		}
		// Truncate (not round) so the floor never exceeds the measurement.
		out[p] = float64(int(f*10)) / 10
	}
	return out
}
