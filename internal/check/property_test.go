// Metamorphic property suite: transformations of a deployment with known
// effects on the optimal tour must move the planner's output the same way.
package check_test

import (
	"math"
	"testing"

	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/shdgp"
)

const propertyScenarios = 16

func planLen(t *testing.T, sc check.Scenario) *shdgp.Solution {
	t.Helper()
	sol, err := shdgp.Plan(shdgp.NewProblem(sc.Net), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatalf("plan %s: %v", sc.Name, err)
	}
	return sol
}

// TestScaleScalesTourLength: scaling positions, sink, field, and range by k
// turns a deployment into the geometrically similar problem, so the planned
// tour must scale by k. Powers of two keep every coordinate exactly
// representable, so the planner faces bit-identical comparisons and the
// lengths match to rounding noise.
func TestScaleScalesTourLength(t *testing.T) {
	for _, k := range []float64{2, 0.5} {
		for _, sc := range check.Scenarios(0x5CA1E, propertyScenarios) {
			sc := sc
			base := planLen(t, sc)
			scaled := check.Scenario{Name: sc.Name, Layout: sc.Layout, Net: check.Scale(sc.Net, k)}
			got := planLen(t, scaled)
			want := base.Length.Scale(k)
			if math.Abs(float64(got.Length-want)) > 1e-9*(1+float64(want)) {
				t.Fatalf("%s ×%g: scaled tour %.9f, want %.9f (base %.9f)",
					sc.Name, k, got.Length, want, base.Length)
			}
			if err := check.Plan(scaled.Net, got.Plan, check.Options{}); err != nil {
				t.Fatalf("%s ×%g: %v", sc.Name, k, err)
			}
		}
	}
}

// TestTranslateKeepsTourLength: translating the whole deployment changes no
// pairwise distance, so the tour length must be invariant. Translation is
// not exact in floating point (absolute coordinates shift), so the planner
// may legitimately make different tie-breaks; a relative tolerance that
// admits rounding but not structural drift pins the property.
func TestTranslateKeepsTourLength(t *testing.T) {
	d := geom.Pt(512, 1024) // power-of-two shift keeps most coordinates exact
	for _, sc := range check.Scenarios(0x7A155, propertyScenarios) {
		sc := sc
		base := planLen(t, sc)
		moved := check.Translate(sc.Net, d)
		got, err := shdgp.Plan(shdgp.NewProblem(moved), shdgp.DefaultPlannerOptions())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if math.Abs(float64(got.Length-base.Length)) > 1e-6*(1+float64(base.Length)) {
			t.Fatalf("%s: translated tour %.9f, base %.9f", sc.Name, got.Length, base.Length)
		}
		if err := check.Plan(moved, got.Plan, check.Options{}); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
	}
}

// TestAddSensorNeverInvalidatesCoverage: duplicating an existing sensor
// adds no geometric difficulty — the base plan extended with the same
// assignment must still pass the oracle against the grown network, and
// replanning the grown network must also pass.
func TestAddSensorNeverInvalidatesCoverage(t *testing.T) {
	for _, sc := range check.Scenarios(0xADD5E, propertyScenarios) {
		sc := sc
		base := planLen(t, sc)
		dup := sc.Net.Nodes[0].Pos
		grown := check.WithSensor(sc.Net, dup)
		extended := &collector.TourPlan{
			Sink:     base.Plan.Sink,
			Stops:    base.Plan.Stops,
			UploadAt: append(append([]int(nil), base.Plan.UploadAt...), base.Plan.UploadAt[0]),
		}
		if err := check.Plan(grown, extended, check.Options{}); err != nil {
			t.Fatalf("%s: extending a valid plan to a duplicate sensor broke it: %v", sc.Name, err)
		}
		replanned, err := shdgp.Plan(shdgp.NewProblem(grown), shdgp.DefaultPlannerOptions())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if err := check.Plan(grown, replanned.Plan, check.Options{}); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
	}
}
