// Metamorphic property suite: transformations of a deployment with known
// effects on the optimal tour must move the planner's output the same way.
// The suite is parameterized over the engine registry, so every registered
// planner — heuristic, exact, and baseline alike — faces the same
// transformations with no per-algorithm copies.
package check_test

import (
	"context"
	"math"
	"testing"

	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/engine"
	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

const propertyScenarios = 16

// propertyScenariosFor sizes the metamorphic sweep per planner: the exact
// solver only admits tiny instances, so its sweep filters down to small
// deployments (and fewer of them, since each costs an exhaustive search).
func propertyScenariosFor(name string, seed uint64) []check.Scenario {
	if name == "exact" {
		return smallScenarios(seed, 6, 12)
	}
	return check.Scenarios(seed, propertyScenarios)
}

// planNet plans a bare network through a registered engine planner.
func planNet(t *testing.T, name string, nw *wsn.Network) (*engine.Plan, engine.Stats) {
	t.Helper()
	p, ok := engine.Lookup(name)
	if !ok {
		t.Fatalf("planner %q not registered", name)
	}
	pl, st, err := p.Plan(context.Background(), engine.Scenario{Net: nw}, engine.Options{})
	if err != nil {
		t.Fatalf("%s: plan: %v", name, err)
	}
	return pl, st
}

// TestScaleScalesTourLength: scaling positions, sink, field, and range by k
// turns a deployment into the geometrically similar problem, so the planned
// tour must scale by k. Powers of two keep every coordinate exactly
// representable, so each planner faces bit-identical comparisons and the
// lengths match to rounding noise.
func TestScaleScalesTourLength(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			for _, k := range []float64{2, 0.5} {
				for _, sc := range propertyScenariosFor(name, 0x5CA1E) {
					_, baseSt := planNet(t, name, sc.Net)
					scaled := check.Scale(sc.Net, k)
					got, gotSt := planNet(t, name, scaled)
					want := baseSt.Length.Scale(k)
					if math.Abs(float64(gotSt.Length-want)) > 1e-9*(1+float64(want)) {
						t.Fatalf("%s ×%g: scaled tour %.9f, want %.9f (base %.9f)",
							sc.Name, k, gotSt.Length, want, baseSt.Length)
					}
					if err := check.Plan(scaled, got.Tour, check.Options{UploadDist: got.UploadDist}); err != nil {
						t.Fatalf("%s ×%g: %v", sc.Name, k, err)
					}
				}
			}
		})
	}
}

// TestTranslateKeepsTourLength: translating the whole deployment changes no
// pairwise distance, so the tour length must be invariant. Translation is
// not exact in floating point (absolute coordinates shift), so a planner
// may legitimately make different tie-breaks; a relative tolerance that
// admits rounding but not structural drift pins the property.
func TestTranslateKeepsTourLength(t *testing.T) {
	d := geom.Pt(512, 1024) // power-of-two shift keeps most coordinates exact
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			for _, sc := range propertyScenariosFor(name, 0x7A155) {
				_, baseSt := planNet(t, name, sc.Net)
				moved := check.Translate(sc.Net, d)
				got, gotSt := planNet(t, name, moved)
				if math.Abs(float64(gotSt.Length-baseSt.Length)) > 1e-6*(1+float64(baseSt.Length)) {
					t.Fatalf("%s: translated tour %.9f, base %.9f", sc.Name, gotSt.Length, baseSt.Length)
				}
				if err := check.Plan(moved, got.Tour, check.Options{UploadDist: got.UploadDist}); err != nil {
					t.Fatalf("%s: %v", sc.Name, err)
				}
			}
		})
	}
}

// TestAddSensorNeverInvalidatesCoverage: duplicating an existing sensor
// adds no geometric difficulty — the base plan extended with the same
// assignment must still pass the oracle against the grown network, and
// replanning the grown network must also pass. The extension sub-check
// only applies to planners whose stops are physical upload points
// (UploadDist == nil): a custom upload-distance hook is bound to the base
// network and cannot be reused against the grown one.
func TestAddSensorNeverInvalidatesCoverage(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			for _, sc := range propertyScenariosFor(name, 0xADD5E) {
				base, _ := planNet(t, name, sc.Net)
				dup := sc.Net.Nodes[0].Pos
				grown := check.WithSensor(sc.Net, dup)
				if base.UploadDist == nil {
					extended := &collector.TourPlan{
						Sink:     base.Tour.Sink,
						Stops:    base.Tour.Stops,
						UploadAt: append(append([]int(nil), base.Tour.UploadAt...), base.Tour.UploadAt[0]),
					}
					if err := check.Plan(grown, extended, check.Options{}); err != nil {
						t.Fatalf("%s: extending a valid plan to a duplicate sensor broke it: %v", sc.Name, err)
					}
				}
				replanned, _ := planNet(t, name, grown)
				if err := check.Plan(grown, replanned.Tour, check.Options{UploadDist: replanned.UploadDist}); err != nil {
					t.Fatalf("%s: %v", sc.Name, err)
				}
			}
		})
	}
}
