package check

import (
	"fmt"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
	"mobicol/internal/wsn"
)

// Layout selects the spatial structure of a generated verification
// scenario. The four layouts deliberately stress different planner code
// paths: uniform fields are the paper's deployment model, clusters produce
// disconnected topologies, collinear deployments hit the degenerate
// geometry predicates (orientation tests, zero-area hulls), and coincident
// deployments hit zero-length tour edges and duplicate candidate stops.
type Layout int

const (
	// LayoutUniform scatters sensors independently over the field.
	LayoutUniform Layout = iota
	// LayoutClustered draws sensors from a few tight Gaussian clusters.
	LayoutClustered
	// LayoutCollinear places every sensor exactly on one line segment.
	LayoutCollinear
	// LayoutCoincident stacks sensors on a handful of shared positions.
	LayoutCoincident
	numLayouts
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutUniform:
		return "uniform"
	case LayoutClustered:
		return "clustered"
	case LayoutCollinear:
		return "collinear"
	case LayoutCoincident:
		return "coincident"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Scenario is one generated verification deployment.
type Scenario struct {
	Name   string
	Layout Layout
	Net    *wsn.Network
}

// Scenarios generates count deterministic deployments, cycling through the
// four layouts. The same seed always yields the same scenarios, and each
// scenario draws from its own split RNG stream, so adding scenarios never
// perturbs earlier ones. Every scenario keeps all sensors inside the field
// and uses a positive transmission range, so sensor-site candidate
// generation is always feasible.
func Scenarios(seed uint64, count int) []Scenario {
	src := rng.New(seed)
	out := make([]Scenario, 0, count)
	for i := 0; i < count; i++ {
		s := src.Split()
		layout := Layout(i % int(numLayouts))
		n := 6 + s.Intn(70)
		side := s.Uniform(100, 260)
		r := s.Uniform(20, 45)
		field := geom.Square(side)
		var pts []geom.Point
		switch layout {
		case LayoutClustered:
			k := 1 + s.Intn(4)
			centres := make([]geom.Point, k)
			for c := range centres {
				centres[c] = geom.Pt(s.Uniform(0.1*side, 0.9*side), s.Uniform(0.1*side, 0.9*side))
			}
			for j := 0; j < n; j++ {
				c := centres[s.Intn(k)]
				pts = append(pts, field.Clamp(geom.Pt(
					c.X+s.NormMeanStd(0, side/15), c.Y+s.NormMeanStd(0, side/15))))
			}
		case LayoutCollinear:
			a := geom.Pt(s.Uniform(0, side), s.Uniform(0, side))
			b := geom.Pt(s.Uniform(0, side), s.Uniform(0, side))
			for j := 0; j < n; j++ {
				pts = append(pts, a.Lerp(b, s.Float64()))
			}
		case LayoutCoincident:
			k := 1 + s.Intn(3)
			anchors := make([]geom.Point, k)
			for c := range anchors {
				anchors[c] = geom.Pt(s.Uniform(0, side), s.Uniform(0, side))
			}
			for j := 0; j < n; j++ {
				pts = append(pts, anchors[s.Intn(k)])
			}
		default: // LayoutUniform
			for j := 0; j < n; j++ {
				pts = append(pts, geom.Pt(s.Uniform(0, side), s.Uniform(0, side)))
			}
		}
		sink := field.Center()
		if s.Bool(0.25) {
			sink = field.Min
		}
		out = append(out, Scenario{
			Name:   fmt.Sprintf("%03d-%s/n=%d/side=%.0f/r=%.0f", i, layout, n, side, r),
			Layout: layout,
			Net:    wsn.New(pts, sink, r, field),
		})
	}
	return out
}

// Translate returns a copy of nw with every position, the sink, and the
// field shifted by d. Planner outputs should be translation-invariant up
// to floating-point rounding; the metamorphic suite pins that.
func Translate(nw *wsn.Network, d geom.Point) *wsn.Network {
	pts := nw.Positions()
	for i := range pts {
		pts[i] = pts[i].Add(d)
	}
	return wsn.New(pts, nw.Sink.Add(d), nw.Range,
		geom.NewRect(nw.Field.Min.Add(d), nw.Field.Max.Add(d)))
}

// Scale returns a copy of nw with every position, the sink, the field,
// and the transmission range scaled by k (> 0) about the origin. A scaled
// deployment is the same covering problem, so the planned tour length
// should scale by exactly k (bit-exactly for power-of-two factors).
func Scale(nw *wsn.Network, k float64) *wsn.Network {
	pts := nw.Positions()
	for i := range pts {
		pts[i] = pts[i].Scale(k)
	}
	return wsn.New(pts, nw.Sink.Scale(k), nw.Range*k,
		geom.NewRect(nw.Field.Min.Scale(k), nw.Field.Max.Scale(k)))
}

// WithSensor returns a copy of nw with one extra sensor at p. Adding a
// sensor can only grow the covering problem; it must never invalidate a
// freshly planned tour's coverage.
func WithSensor(nw *wsn.Network, p geom.Point) *wsn.Network {
	pts := append(nw.Positions(), p)
	return wsn.New(pts, nw.Sink, nw.Range, nw.Field)
}
