// Acceptance suite: every plan the real planners produce must satisfy the
// oracles, across ≥50 generated scenarios spanning all four layouts. This
// lives in an external test package because it exercises the planners,
// which sit above internal/check in the import graph.
package check_test

import (
	"context"
	"testing"

	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/engine"
	"mobicol/internal/radio"
	"mobicol/internal/shdgp"
	"mobicol/internal/sim"
)

const acceptScenarios = 52

// acceptScenariosFor sizes the oracle sweep per planner: the exact
// solver only admits tiny instances (candidate/stop limits), so its
// sweep filters the generator down to small deployments.
func acceptScenariosFor(name string) []check.Scenario {
	if name == "exact" {
		return smallScenarios(0xACCE97, 8, 12)
	}
	return check.Scenarios(0xACCE97, acceptScenarios)
}

// smallScenarios generates count deployments with at most maxSensors
// sensors, overshooting the generator so the filter still fills count.
func smallScenarios(seed uint64, count, maxSensors int) []check.Scenario {
	all := check.Scenarios(seed, 8*count)
	out := make([]check.Scenario, 0, count)
	for _, sc := range all {
		if sc.Net.N() > maxSensors {
			continue
		}
		out = append(out, sc)
		if len(out) == count {
			break
		}
	}
	return out
}

// planThrough plans one scenario through a registered engine planner.
func planThrough(t *testing.T, name string, sc check.Scenario) (*engine.Plan, engine.Stats) {
	t.Helper()
	p, ok := engine.Lookup(name)
	if !ok {
		t.Fatalf("planner %q not registered", name)
	}
	pl, st, err := p.Plan(context.Background(), engine.Scenario{Net: sc.Net}, engine.Options{})
	if err != nil {
		t.Fatalf("%s: plan %s: %v", name, sc.Name, err)
	}
	return pl, st
}

// TestOracleAcceptsRegisteredPlanners sweeps every registered planner —
// one loop, no per-algorithm copies — over the generated scenario
// families and requires the plan oracle and the recorded-length check to
// accept every plan. Planners whose stops are not physical upload points
// carry their own UploadDist, so the oracle needs no special cases.
func TestOracleAcceptsRegisteredPlanners(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			for _, sc := range acceptScenariosFor(name) {
				sc := sc
				t.Run(sc.Name, func(t *testing.T) {
					pl, st := planThrough(t, name, sc)
					if err := check.Plan(sc.Net, pl.Tour, check.Options{UploadDist: pl.UploadDist}); err != nil {
						t.Fatal(err)
					}
					if err := check.RecordedLength(pl.Tour, st.Length); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestLedgerOracleAcceptsSimulations runs real lifetime simulations —
// perfect and lossy links, batteries small enough that sensors die — and
// requires the conservation oracle to pass on the resulting ledgers.
func TestLedgerOracleAcceptsSimulations(t *testing.T) {
	model := energy.DefaultModel()
	model.InitialJ = 2e-3 // small battery so deaths happen inside the horizon
	for _, sc := range check.Scenarios(0x1ED6E5, 8) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sol, err := shdgp.Plan(shdgp.NewProblem(sc.Net), shdgp.DefaultPlannerOptions())
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			schemes := []sim.Scheme{
				sim.NewMobile("shdg", sc.Net, sol.Plan),
				sim.NewLossyMobile("shdg-lossy", sc.Net, sol.Plan, radio.Default()),
			}
			for _, s := range schemes {
				res, err := sim.RunLifetime(s, sc.Net.N(), model, 400)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if res.Ledger == nil {
					t.Fatalf("%s: result carries no ledger", s.Name())
				}
				if err := check.Ledger(res.Ledger, int(res.Rounds)); err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
			}
		})
	}
}

// TestAdaptiveReplansAreChecked pins the satellite fix: the adaptive mobile
// simulation verifies every replan against the oracle and reports an honest
// served fraction instead of a hardcoded 1.
func TestAdaptiveReplansAreChecked(t *testing.T) {
	model := energy.DefaultModel()
	model.InitialJ = 2e-3
	for _, sc := range check.Scenarios(0xADA9, 4) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := sim.RunAdaptiveMobile(sc.Net, model, 400)
			if err != nil {
				t.Fatalf("adaptive: %v", err)
			}
			if res.ServedAtHalf < 0 || res.ServedAtHalf > 1 {
				t.Fatalf("ServedAtHalf %v outside [0,1]", res.ServedAtHalf)
			}
			// Checked replans serve every survivor, so the honest
			// measurement must still come out at 1.
			if res.ServedAtHalf != 1 {
				t.Fatalf("replanned mobile scheme stranded survivors: ServedAtHalf=%v", res.ServedAtHalf)
			}
		})
	}
}

// TestLossyMobileUnserved pins the other satellite fix: stranded sensors
// are counted, not silently skipped, and malformed arity cannot panic.
func TestLossyMobileUnserved(t *testing.T) {
	sc := check.Scenarios(0x105, 1)[0]
	sol, err := shdgp.Plan(shdgp.NewProblem(sc.Net), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewLossyMobile("lossy", sc.Net, sol.Plan, radio.Default())
	if got := m.Unserved(); got != 0 {
		t.Fatalf("full plan reports %d unserved", got)
	}
	// Strand one sensor and truncate the assignment: both must be counted.
	mangled := &collector.TourPlan{Sink: sol.Plan.Sink, Stops: sol.Plan.Stops,
		UploadAt: append([]int(nil), sol.Plan.UploadAt[:sc.Net.N()-1]...)}
	mangled.UploadAt[0] = -1
	mm := sim.NewLossyMobile("mangled", sc.Net, mangled, radio.Default())
	if got := mm.Unserved(); got != 2 {
		t.Fatalf("mangled plan reports %d unserved, want 2", got)
	}
	led := energy.NewLedger(sc.Net.N(), energy.DefaultModel())
	mm.ChargeRound(led) // must not panic on short UploadAt
	if err := check.Ledger(led, 1); err != nil {
		t.Fatal(err)
	}
}
