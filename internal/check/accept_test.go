// Acceptance suite: every plan the real planners produce must satisfy the
// oracles, across ≥50 generated scenarios spanning all four layouts. This
// lives in an external test package because it exercises the planners,
// which sit above internal/check in the import graph.
package check_test

import (
	"testing"

	"mobicol/internal/baselines"
	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/radio"
	"mobicol/internal/shdgp"
	"mobicol/internal/sim"
	"mobicol/internal/tsp"
)

const acceptScenarios = 52

func TestOracleAcceptsSHDG(t *testing.T) {
	for _, sc := range check.Scenarios(0xACCE97, acceptScenarios) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sol, err := shdgp.Plan(shdgp.NewProblem(sc.Net), shdgp.DefaultPlannerOptions())
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			if err := check.Plan(sc.Net, sol.Plan, check.Options{}); err != nil {
				t.Fatal(err)
			}
			if err := check.RecordedLength(sol.Plan, sol.Length); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOracleAcceptsVisitAll(t *testing.T) {
	for _, sc := range check.Scenarios(0xACCE97, acceptScenarios) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sol, err := shdgp.PlanVisitAll(shdgp.NewProblem(sc.Net), tsp.DefaultOptions())
			if err != nil {
				t.Fatalf("visit-all: %v", err)
			}
			if err := check.Plan(sc.Net, sol.Plan, check.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOracleAcceptsCLA(t *testing.T) {
	for _, sc := range check.Scenarios(0xACCE97, acceptScenarios) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			plan, err := baselines.PlanCLA(sc.Net)
			if err != nil {
				t.Fatalf("cla: %v", err)
			}
			// CLA records sweep-line endpoints as stops; the collector
			// actually uploads at the sensor's projection, so the oracle
			// gets the true perpendicular upload distance.
			opts := check.Options{UploadDist: func(i int) float64 {
				return baselines.CLAUploadDistance(sc.Net, plan, i)
			}}
			if err := check.Plan(sc.Net, plan, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLedgerOracleAcceptsSimulations runs real lifetime simulations —
// perfect and lossy links, batteries small enough that sensors die — and
// requires the conservation oracle to pass on the resulting ledgers.
func TestLedgerOracleAcceptsSimulations(t *testing.T) {
	model := energy.DefaultModel()
	model.InitialJ = 2e-3 // small battery so deaths happen inside the horizon
	for _, sc := range check.Scenarios(0x1ED6E5, 8) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sol, err := shdgp.Plan(shdgp.NewProblem(sc.Net), shdgp.DefaultPlannerOptions())
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			schemes := []sim.Scheme{
				sim.NewMobile("shdg", sc.Net, sol.Plan),
				sim.NewLossyMobile("shdg-lossy", sc.Net, sol.Plan, radio.Default()),
			}
			for _, s := range schemes {
				res, err := sim.RunLifetime(s, sc.Net.N(), model, 400)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if res.Ledger == nil {
					t.Fatalf("%s: result carries no ledger", s.Name())
				}
				if err := check.Ledger(res.Ledger, int(res.Rounds)); err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
			}
		})
	}
}

// TestAdaptiveReplansAreChecked pins the satellite fix: the adaptive mobile
// simulation verifies every replan against the oracle and reports an honest
// served fraction instead of a hardcoded 1.
func TestAdaptiveReplansAreChecked(t *testing.T) {
	model := energy.DefaultModel()
	model.InitialJ = 2e-3
	for _, sc := range check.Scenarios(0xADA9, 4) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := sim.RunAdaptiveMobile(sc.Net, model, 400)
			if err != nil {
				t.Fatalf("adaptive: %v", err)
			}
			if res.ServedAtHalf < 0 || res.ServedAtHalf > 1 {
				t.Fatalf("ServedAtHalf %v outside [0,1]", res.ServedAtHalf)
			}
			// Checked replans serve every survivor, so the honest
			// measurement must still come out at 1.
			if res.ServedAtHalf != 1 {
				t.Fatalf("replanned mobile scheme stranded survivors: ServedAtHalf=%v", res.ServedAtHalf)
			}
		})
	}
}

// TestLossyMobileUnserved pins the other satellite fix: stranded sensors
// are counted, not silently skipped, and malformed arity cannot panic.
func TestLossyMobileUnserved(t *testing.T) {
	sc := check.Scenarios(0x105, 1)[0]
	sol, err := shdgp.Plan(shdgp.NewProblem(sc.Net), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewLossyMobile("lossy", sc.Net, sol.Plan, radio.Default())
	if got := m.Unserved(); got != 0 {
		t.Fatalf("full plan reports %d unserved", got)
	}
	// Strand one sensor and truncate the assignment: both must be counted.
	mangled := &collector.TourPlan{Sink: sol.Plan.Sink, Stops: sol.Plan.Stops,
		UploadAt: append([]int(nil), sol.Plan.UploadAt[:sc.Net.N()-1]...)}
	mangled.UploadAt[0] = -1
	mm := sim.NewLossyMobile("mangled", sc.Net, mangled, radio.Default())
	if got := mm.Unserved(); got != 2 {
		t.Fatalf("mangled plan reports %d unserved, want 2", got)
	}
	led := energy.NewLedger(sc.Net.N(), energy.DefaultModel())
	mm.ChargeRound(led) // must not panic on short UploadAt
	if err := check.Ledger(led, 1); err != nil {
		t.Fatal(err)
	}
}
