// Package check is the repository's invariant-verification subsystem. It
// turns the paper's implicit correctness contract — every sensor uploads in
// a single hop to some stop on a closed tour anchored at the sink — into
// executable oracles that are independent of the planners that are supposed
// to satisfy them.
//
// The package deliberately sits below the planners in the import graph
// (it knows about networks, tour plans, and energy ledgers, but not about
// internal/shdgp or internal/bench), so planner packages and their
// in-package tests can call the oracles without import cycles. The
// property-based, differential, and acceptance suites that exercise the
// planners against these oracles live in this package's external tests.
//
// Three surfaces:
//
//   - Plan verifies a collector.TourPlan against the deployment it claims
//     to serve: assignment arity, stop-index bounds, full single-hop
//     coverage at the assigned stop, finite geometry, and closure at the
//     network's sink.
//   - Ledger verifies energy conservation across simulation rounds: spent
//     plus residual equals the initial battery for every node, residuals
//     stay within [0, battery], and death bookkeeping is consistent.
//   - Scenarios (scenario.go) generates the deterministic randomized
//     deployments — uniform, clustered, collinear, coincident — that the
//     property suites sweep.
package check

import (
	"fmt"
	"math"
	"strings"

	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

// maxReported bounds how many violations one error message spells out;
// the total count is always reported.
const maxReported = 8

// Options tunes the plan oracle.
type Options struct {
	// AllowUnserved accepts plans that leave sensors without an upload
	// stop (UploadAt[i] = -1). The SHDGP contract forbids this; some
	// baselines legitimately strand sensors, and their harnesses must
	// count the stranded rather than hide them.
	AllowUnserved bool
	// UploadDist overrides the per-sensor single-hop distance used for
	// the range check. The CLA baseline needs this: its recorded stop is
	// a line endpoint, but the collector actually passes the sensor's
	// projection, so the effective upload distance is the perpendicular
	// distance to the sweep line.
	UploadDist func(sensor int) float64
	// Eps widens the range comparison (default geom.Eps). Plans built
	// from squared-distance comparisons carry that much slack.
	Eps float64
}

// violations accumulates invariant failures, keeping the first
// maxReported details and an exact total.
type violations struct {
	total   int
	details []string
}

func (v *violations) addf(format string, args ...any) {
	v.total++
	if len(v.details) < maxReported {
		v.details = append(v.details, fmt.Sprintf(format, args...))
	}
}

func (v *violations) err(subject string) error {
	if v.total == 0 {
		return nil
	}
	suffix := ""
	if v.total > len(v.details) {
		suffix = fmt.Sprintf("\n  ... and %d more", v.total-len(v.details))
	}
	return fmt.Errorf("check: %s violates %d invariant(s):\n  - %s%s",
		subject, v.total, strings.Join(v.details, "\n  - "), suffix)
}

func finite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Plan verifies tp against the deployment nw. It checks, in order:
//
//   - assignment-arity: exactly one UploadAt entry per sensor;
//   - finite-geometry: sink and every stop have finite coordinates, and
//     the closed tour length is finite and non-negative;
//   - sink-anchor: the tour starts and ends at the network's sink;
//   - stop-index: every assignment points at a real stop (or -1);
//   - coverage: every sensor has an upload stop (unless AllowUnserved);
//   - single-hop: every served sensor is within transmission range of its
//     assigned stop (or of its UploadDist override).
//
// All violations are gathered into a single error; nil means the plan
// satisfies the full contract.
func Plan(nw *wsn.Network, tp *collector.TourPlan, opts Options) error {
	if nw == nil {
		return fmt.Errorf("check: nil network")
	}
	if tp == nil {
		return fmt.Errorf("check: nil plan")
	}
	eps := opts.Eps
	if eps <= 0 {
		eps = geom.Eps
	}
	var v violations

	if len(tp.UploadAt) != nw.N() {
		v.addf("assignment-arity: %d UploadAt entries for %d sensors", len(tp.UploadAt), nw.N())
	}
	if !finite(tp.Sink) {
		v.addf("finite-geometry: sink %v is not finite", tp.Sink)
	}
	for i, s := range tp.Stops {
		if !finite(s) {
			v.addf("finite-geometry: stop %d at %v is not finite", i, s)
		}
	}
	//mdglint:ignore unitcheck math boundary: finiteness predicates take raw float64
	if l := float64(tp.Length()); math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
		v.addf("finite-geometry: closed tour length %v", l)
	}
	if !tp.Sink.Eq(nw.Sink) {
		v.addf("sink-anchor: tour anchored at %v, network sink is %v", tp.Sink, nw.Sink)
	}
	for i := 0; i < len(tp.UploadAt) && i < nw.N(); i++ {
		stop := tp.UploadAt[i]
		switch {
		case stop < -1 || stop >= len(tp.Stops):
			v.addf("stop-index: sensor %d assigned to stop %d of %d", i, stop, len(tp.Stops))
		case stop == -1:
			if !opts.AllowUnserved {
				v.addf("coverage: sensor %d has no upload stop", i)
			}
		default:
			d := nw.Nodes[i].Pos.Dist(tp.Stops[stop])
			if opts.UploadDist != nil {
				d = opts.UploadDist(i)
			}
			if math.IsNaN(d) || d > nw.Range+eps {
				v.addf("single-hop: sensor %d is %.4fm from its stop, range %.4fm", i, d, nw.Range)
			}
		}
	}
	return v.err("plan")
}

// RecordedLength verifies a recorded tour length (a Solution.Length field,
// a serialized length_m) against the plan's actual geometry within a
// relative tolerance.
func RecordedLength(tp *collector.TourPlan, recorded geom.Meters) error {
	got := tp.Length()
	//mdglint:ignore unitcheck math boundary: the relative-tolerance comparison runs on raw magnitudes
	if math.Abs(float64(got-recorded)) > 1e-6*(1+math.Abs(float64(got))) {
		return fmt.Errorf("check: recorded tour length %.6f, geometry says %.6f", recorded, got)
	}
	return nil
}

// Ledger verifies energy conservation on a simulated ledger:
//
//   - conservation: for every node, energy spent plus residual equals the
//     initial battery within tolerance;
//   - bounds: residuals stay within [0, battery];
//   - death bookkeeping: dead nodes hold exactly zero residual, and the
//     first-death round is consistent with the alive count;
//   - rounds: the ledger completed wantRounds rounds (skipped when
//     wantRounds < 0).
func Ledger(led *energy.Ledger, wantRounds int) error {
	if led == nil {
		return fmt.Errorf("check: nil ledger")
	}
	var v violations
	tol := (1 + led.Model.InitialJ).Scale(1e-6)
	for i := 0; i < led.N(); i++ {
		res, spent := led.Residual[i], led.SpentJ(i)
		//mdglint:ignore unitcheck math boundary: NaN predicate takes raw float64
		if math.IsNaN(float64(res)) || res < 0 {
			v.addf("bounds: node %d residual %v", i, res)
		}
		if res > led.Model.InitialJ+tol {
			v.addf("bounds: node %d residual %v exceeds battery %v", i, res, led.Model.InitialJ)
		}
		if (res + spent - led.Model.InitialJ).Abs() > tol {
			v.addf("conservation: node %d residual %v + spent %v != battery %v",
				i, res, spent, led.Model.InitialJ)
		}
		if !led.Alive(i) && res > 0 {
			v.addf("death: node %d is dead with residual %v", i, res)
		}
	}
	dead := led.N() - led.AliveCount()
	if first := led.FirstDeath(); (first >= 0) != (dead > 0) {
		v.addf("death: first death round %d with %d dead nodes", first, dead)
	} else if first >= led.Round() && dead > 0 {
		v.addf("death: first death recorded in round %d but only %d rounds completed", first, led.Round())
	}
	if wantRounds >= 0 && led.Round() != wantRounds {
		v.addf("rounds: ledger completed %d rounds, simulation reported %d", led.Round(), wantRounds)
	}
	return v.err("ledger")
}
