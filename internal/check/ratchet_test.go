package check

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const sampleCoverOutput = `?   	mobicol/examples/quickstart	[no test files]
ok  	mobicol/internal/geom	0.012s	coverage: 91.3% of statements
ok  	mobicol/internal/rng	(cached)	coverage: 88.0% of statements
ok  	mobicol/internal/viz	0.004s	coverage: [no statements]
ok  	mobicol/internal/stats	0.002s
`

func TestParseCover(t *testing.T) {
	cov, err := ParseCover(strings.NewReader(sampleCoverOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"mobicol/internal/geom": 91.3,
		"mobicol/internal/rng":  88.0,
	}
	if len(cov) != len(want) {
		t.Fatalf("parsed %v, want %v", cov, want)
	}
	for p, v := range want {
		if math.Abs(cov[p]-v) > 1e-9 {
			t.Fatalf("%s: got %v, want %v", p, cov[p], v)
		}
	}
}

func TestParseCoverRejectsFailures(t *testing.T) {
	_, err := ParseCover(strings.NewReader("FAIL\tmobicol/internal/geom\t0.1s\n"))
	if err == nil {
		t.Fatal("failing run accepted")
	}
}

func TestParseCoverRejectsGarbagePercent(t *testing.T) {
	_, err := ParseCover(strings.NewReader("ok  \tpkg\t0.1s\tcoverage: nope% of statements\n"))
	if err == nil {
		t.Fatal("garbage percentage accepted")
	}
}

func TestRatchetRoundTrip(t *testing.T) {
	floors := map[string]float64{
		"mobicol/internal/geom": 90.0,
		"mobicol/internal/rng":  87.5,
	}
	var buf bytes.Buffer
	if err := WriteRatchet(&buf, floors); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRatchet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(floors) {
		t.Fatalf("round-trip %v, want %v", back, floors)
	}
	for p, v := range floors {
		if math.Abs(back[p]-v) > 1e-9 {
			t.Fatalf("%s: got %v, want %v", p, back[p], v)
		}
	}
	// Comments and blank lines are ignored.
	extra := "# comment\n\n" + buf.String()
	if _, err := ReadRatchet(strings.NewReader(extra)); err != nil {
		t.Fatal(err)
	}
}

func TestReadRatchetRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"pkg\n",
		"pkg one two\n",
		"pkg 12x\n",
		"pkg 120\n",
		"pkg -3\n",
	} {
		if _, err := ReadRatchet(strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed ratchet %q accepted", bad)
		}
	}
}

func TestCompareRatchet(t *testing.T) {
	floors := map[string]float64{"a": 80, "b": 50, "gone": 10}
	got := map[string]float64{"a": 80.5, "b": 48.0, "new": 99}
	bad := CompareRatchet(got, floors, 1.0)
	// b is 48.0 against floor 50 with slack 1 → violation; gone is missing
	// → violation; a passes; new is unpinned and never fails.
	if len(bad) != 2 {
		t.Fatalf("want 2 violations, got %v", bad)
	}
	if !strings.Contains(bad[0], "b:") || !strings.Contains(bad[1], "gone:") {
		t.Fatalf("unexpected violations %v", bad)
	}
	if v := CompareRatchet(got, floors, 5.0); len(v) != 1 {
		t.Fatalf("slack 5 should forgive b, got %v", v)
	}
	if v := CompareRatchet(map[string]float64{}, map[string]float64{}, 0); v != nil {
		t.Fatalf("empty ratchet produced %v", v)
	}
}

func TestFloors(t *testing.T) {
	f := Floors(map[string]float64{"a": 91.38, "b": 0.4}, 1.0)
	if math.Abs(f["a"]-90.3) > 1e-9 {
		t.Fatalf("a floor %v, want 90.3", f["a"])
	}
	if f["b"] != 0 {
		t.Fatalf("b floor %v, want clamp to 0", f["b"])
	}
}
