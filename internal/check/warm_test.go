package check

import (
	"math"
	"strings"
	"testing"
)

func TestWarmRatio(t *testing.T) {
	if got := WarmRatio(115, 100); math.Abs(got-1.15) > 1e-12 {
		t.Errorf("WarmRatio(115, 100) = %v", got)
	}
	if got := WarmRatio(0, 0); got != 1 {
		t.Errorf("WarmRatio(0, 0) = %v, want the degenerate 1", got)
	}
	if got := WarmRatio(5, 0); !math.IsInf(got, 1) {
		t.Errorf("WarmRatio(5, 0) = %v, want +Inf", got)
	}
}

func TestWarmQuality(t *testing.T) {
	if err := WarmQuality(100, 100); err != nil {
		t.Errorf("equal lengths rejected: %v", err)
	}
	// Exactly at the pinned bound (plus the 1 m floor) passes.
	if err := WarmQuality(100*MaxWarmRatio, 100); err != nil {
		t.Errorf("at-bound warm tour rejected: %v", err)
	}
	// Tiny tours ride the absolute floor instead of failing on noise.
	if err := WarmQuality(0.9, 0); err != nil {
		t.Errorf("sub-floor warm tour rejected: %v", err)
	}
	err := WarmQuality(100*MaxWarmRatio+2, 100)
	if err == nil {
		t.Fatal("over-bound warm tour accepted")
	}
	if !strings.Contains(err.Error(), "ratio") {
		t.Errorf("error does not report the ratio: %v", err)
	}
}
