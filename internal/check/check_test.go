package check

import (
	"math"
	"strings"
	"testing"

	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

// testNet is a 3-sensor deployment with range 10 on a 100×100 field.
func testNet() *wsn.Network {
	pts := []geom.Point{geom.Pt(10, 10), geom.Pt(14, 10), geom.Pt(60, 60)}
	return wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(100))
}

// validPlan serves sensors 0 and 1 from one stop and sensor 2 from another.
func validPlan(nw *wsn.Network) *collector.TourPlan {
	return &collector.TourPlan{
		Sink:     nw.Sink,
		Stops:    []geom.Point{geom.Pt(12, 10), geom.Pt(60, 62)},
		UploadAt: []int{0, 0, 1},
	}
}

func TestPlanAcceptsValid(t *testing.T) {
	nw := testNet()
	if err := Plan(nw, validPlan(nw), Options{}); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestPlanRejectsInvalid is the acceptance-criteria table: each case is a
// distinct hand-built invalid plan the oracle must reject, identified by
// the invariant named in the error.
func TestPlanRejectsInvalid(t *testing.T) {
	nw := testNet()
	cases := []struct {
		name    string
		mutate  func(tp *collector.TourPlan)
		wantSub string
	}{
		{
			name:    "assignment-arity",
			mutate:  func(tp *collector.TourPlan) { tp.UploadAt = tp.UploadAt[:2] },
			wantSub: "assignment-arity",
		},
		{
			name:    "stop-index-high",
			mutate:  func(tp *collector.TourPlan) { tp.UploadAt[1] = 7 },
			wantSub: "stop-index",
		},
		{
			name:    "stop-index-low",
			mutate:  func(tp *collector.TourPlan) { tp.UploadAt[1] = -3 },
			wantSub: "stop-index",
		},
		{
			name:    "coverage-hole",
			mutate:  func(tp *collector.TourPlan) { tp.UploadAt[2] = -1 },
			wantSub: "coverage",
		},
		{
			name:    "single-hop-out-of-range",
			mutate:  func(tp *collector.TourPlan) { tp.Stops[1] = geom.Pt(95, 95) },
			wantSub: "single-hop",
		},
		{
			name:    "sink-anchor",
			mutate:  func(tp *collector.TourPlan) { tp.Sink = geom.Pt(50, 50) },
			wantSub: "sink-anchor",
		},
		{
			name:    "non-finite-stop",
			mutate:  func(tp *collector.TourPlan) { tp.Stops[0] = geom.Pt(math.NaN(), 10) },
			wantSub: "finite-geometry",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := validPlan(nw)
			tc.mutate(tp)
			err := Plan(nw, tp, Options{})
			if err == nil {
				t.Fatalf("invalid plan accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name invariant %q", err, tc.wantSub)
			}
		})
	}
}

func TestPlanNilInputs(t *testing.T) {
	nw := testNet()
	if err := Plan(nil, validPlan(nw), Options{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if err := Plan(nw, nil, Options{}); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestPlanAllowUnserved(t *testing.T) {
	nw := testNet()
	tp := validPlan(nw)
	tp.UploadAt[2] = -1
	if err := Plan(nw, tp, Options{AllowUnserved: true}); err != nil {
		t.Fatalf("stranded sensor rejected despite AllowUnserved: %v", err)
	}
}

func TestPlanUploadDistOverride(t *testing.T) {
	nw := testNet()
	tp := validPlan(nw)
	// Move sensor 2's stop out of range; the override models CLA semantics
	// where the effective upload distance differs from the recorded stop.
	tp.Stops[1] = geom.Pt(95, 95)
	opts := Options{UploadDist: func(i int) float64 {
		if i == 2 {
			return nw.Range / 2
		}
		return nw.Nodes[i].Pos.Dist(tp.Stops[tp.UploadAt[i]])
	}}
	if err := Plan(nw, tp, opts); err != nil {
		t.Fatalf("UploadDist override not honoured: %v", err)
	}
}

func TestPlanReportsAllViolationsBounded(t *testing.T) {
	nw := testNet()
	tp := validPlan(nw)
	tp.UploadAt = []int{-1, -1, -1}
	err := Plan(nw, tp, Options{})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "3 invariant(s)") {
		t.Fatalf("violation count missing from %q", err)
	}
}

func TestRecordedLength(t *testing.T) {
	nw := testNet()
	tp := validPlan(nw)
	if err := RecordedLength(tp, tp.Length()); err != nil {
		t.Fatalf("true length rejected: %v", err)
	}
	if err := RecordedLength(tp, tp.Length()*1.5); err == nil {
		t.Fatal("inflated length accepted")
	}
}

func TestLedgerConservation(t *testing.T) {
	led := energy.NewLedger(4, energy.DefaultModel())
	if err := Ledger(led, 0); err != nil {
		t.Fatalf("fresh ledger rejected: %v", err)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < led.N(); i++ {
			led.ChargeTx(i, 20)
			led.ChargeRx(i)
		}
		led.EndRound()
	}
	if err := Ledger(led, 5); err != nil {
		t.Fatalf("honest ledger rejected: %v", err)
	}
}

func TestLedgerDetectsTampering(t *testing.T) {
	mk := func() *energy.Ledger {
		led := energy.NewLedger(3, energy.DefaultModel())
		for i := 0; i < led.N(); i++ {
			led.ChargeTx(i, 30)
		}
		led.EndRound()
		return led
	}
	t.Run("conservation", func(t *testing.T) {
		led := mk()
		led.Residual[0] /= 2 // energy vanished without being spent
		if err := Ledger(led, 1); err == nil || !strings.Contains(err.Error(), "conservation") {
			t.Fatalf("want conservation violation, got %v", err)
		}
	})
	t.Run("bounds-negative", func(t *testing.T) {
		led := mk()
		led.Residual[1] = -0.25
		if err := Ledger(led, 1); err == nil || !strings.Contains(err.Error(), "bounds") {
			t.Fatalf("want bounds violation, got %v", err)
		}
	})
	t.Run("bounds-overcharged", func(t *testing.T) {
		led := mk()
		led.Residual[2] = led.Model.InitialJ * 2
		if err := Ledger(led, 1); err == nil || !strings.Contains(err.Error(), "bounds") {
			t.Fatalf("want bounds violation, got %v", err)
		}
	})
	t.Run("rounds", func(t *testing.T) {
		led := mk()
		if err := Ledger(led, 9); err == nil || !strings.Contains(err.Error(), "rounds") {
			t.Fatalf("want rounds violation, got %v", err)
		}
	})
	t.Run("rounds-skipped-when-negative", func(t *testing.T) {
		led := mk()
		if err := Ledger(led, -1); err != nil {
			t.Fatalf("wantRounds<0 should skip the round check: %v", err)
		}
	})
}

func TestLedgerDeathBookkeeping(t *testing.T) {
	m := energy.DefaultModel()
	m.InitialJ = 1e-4 // tiny battery: a single long transmission kills
	led := energy.NewLedger(2, m)
	led.ChargeTx(0, 500)
	led.EndRound()
	if led.Alive(0) {
		t.Fatal("node 0 should be dead")
	}
	if err := Ledger(led, 1); err != nil {
		t.Fatalf("honest death rejected: %v", err)
	}
	// A dead node must have spent exactly its battery, no more.
	if got := led.SpentJ(0); math.Abs(float64(got-m.InitialJ)) > 1e-12 {
		t.Fatalf("dead node spent %v, battery was %v", got, m.InitialJ)
	}
	led.Residual[0] = 0.5 * m.InitialJ // zombie: dead but holding charge
	if err := Ledger(led, 1); err == nil || !strings.Contains(err.Error(), "death") {
		t.Fatalf("want death violation, got %v", err)
	}
}

func TestScenariosDeterministic(t *testing.T) {
	a := Scenarios(99, 12)
	b := Scenarios(99, 12)
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("want 12 scenarios, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("scenario %d: name %q vs %q", i, a[i].Name, b[i].Name)
		}
		if a[i].Net.N() != b[i].Net.N() {
			t.Fatalf("scenario %d: n %d vs %d", i, a[i].Net.N(), b[i].Net.N())
		}
		for j := 0; j < a[i].Net.N(); j++ {
			if !a[i].Net.Nodes[j].Pos.Eq(b[i].Net.Nodes[j].Pos) {
				t.Fatalf("scenario %d sensor %d: %v vs %v",
					i, j, a[i].Net.Nodes[j].Pos, b[i].Net.Nodes[j].Pos)
			}
		}
		if want := Layout(i % int(numLayouts)); a[i].Layout != want {
			t.Fatalf("scenario %d: layout %v, want %v", i, a[i].Layout, want)
		}
		for j := 0; j < a[i].Net.N(); j++ {
			if !a[i].Net.Field.Contains(a[i].Net.Nodes[j].Pos) {
				t.Fatalf("scenario %d sensor %d outside field", i, j)
			}
		}
	}
}

func TestScenariosPrefixStable(t *testing.T) {
	// Each scenario draws from its own split stream, so extending the
	// count must not perturb earlier scenarios.
	short := Scenarios(7, 4)
	long := Scenarios(7, 9)
	for i := range short {
		if short[i].Name != long[i].Name {
			t.Fatalf("scenario %d changed when count grew: %q vs %q", i, short[i].Name, long[i].Name)
		}
	}
}

func TestMetamorphicHelpers(t *testing.T) {
	nw := testNet()
	d := geom.Pt(5, -3)
	tr := Translate(nw, d)
	if !tr.Sink.Eq(nw.Sink.Add(d)) {
		t.Fatalf("translated sink %v", tr.Sink)
	}
	if !tr.Nodes[2].Pos.Eq(nw.Nodes[2].Pos.Add(d)) {
		t.Fatalf("translated sensor %v", tr.Nodes[2].Pos)
	}
	sc := Scale(nw, 2)
	if sc.Range != 2*nw.Range {
		t.Fatalf("scaled range %v", sc.Range)
	}
	if !sc.Nodes[1].Pos.Eq(nw.Nodes[1].Pos.Scale(2)) {
		t.Fatalf("scaled sensor %v", sc.Nodes[1].Pos)
	}
	ws := WithSensor(nw, geom.Pt(1, 2))
	if ws.N() != nw.N()+1 {
		t.Fatalf("WithSensor n=%d", ws.N())
	}
	if !ws.Nodes[ws.N()-1].Pos.Eq(geom.Pt(1, 2)) {
		t.Fatalf("appended sensor at %v", ws.Nodes[ws.N()-1].Pos)
	}
	if nw.N() != 3 {
		t.Fatalf("helpers mutated the original network: n=%d", nw.N())
	}
}

func TestLayoutString(t *testing.T) {
	names := map[Layout]string{
		LayoutUniform:    "uniform",
		LayoutClustered:  "clustered",
		LayoutCollinear:  "collinear",
		LayoutCoincident: "coincident",
		Layout(42):       "Layout(42)",
	}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Fatalf("Layout(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}
