package check

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB the check helpers need. It is a local
// interface (not testing.TB) because internal/check links into the CLI
// binaries, which must not import package testing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// leakSettleAttempts x leakSettleWait bounds how long LeakedGoroutines
// waits for goroutines started by fn to finish winding down. Half a
// second is far beyond any orderly shutdown in this module; a goroutine
// still alive after that is stuck, not slow.
const (
	leakSettleAttempts = 50
	leakSettleWait     = 10 * time.Millisecond
)

// LeakedGoroutines runs fn and reports goroutines that outlive it. It
// snapshots the live goroutine set before fn, runs fn, and then retries
// the comparison (goroutines legitimately started by fn get a grace
// period to exit) until the new set drains or the settle budget runs
// out. A non-nil return carries the stacks of the leaked goroutines.
//
// The comparison is by goroutine id, so goroutines that already existed
// before fn never count against it, even if they change state.
func LeakedGoroutines(fn func()) error {
	before := goroutineStacks()
	fn()
	var leaked map[string]string
	for attempt := 0; attempt < leakSettleAttempts; attempt++ {
		leaked = goroutineStacks()
		for id := range leaked {
			if _, ok := before[id]; ok {
				delete(leaked, id)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		time.Sleep(leakSettleWait)
	}
	ids := make([]string, 0, len(leaked))
	for id := range leaked {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sb strings.Builder
	fmt.Fprintf(&sb, "check: %d goroutine(s) leaked:", len(leaked))
	for _, id := range ids {
		sb.WriteString("\n\n")
		sb.WriteString(leaked[id])
	}
	return fmt.Errorf("%s", sb.String())
}

// NoLeakedGoroutines is the test-facing form of LeakedGoroutines: it
// fails tb with the leaked stacks instead of returning them.
func NoLeakedGoroutines(tb TB, fn func()) {
	tb.Helper()
	if err := LeakedGoroutines(fn); err != nil {
		tb.Errorf("%v", err)
	}
}

// goroutineStacks snapshots every live goroutine's stack, keyed by the
// goroutine id from its "goroutine N [state]:" header.
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := make(map[string]string)
	for _, block := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(block, "\n")
		fields := strings.Fields(header)
		if len(fields) >= 2 && fields[0] == "goroutine" {
			stacks[fields[1]] = block
		}
	}
	return stacks
}
