package check

import (
	"bytes"
	"strings"
	"testing"
)

// canned `go build -gcflags='-m -m'` output: inlining chatter, doubled
// escape lines with flow explanations, a does-not-escape line, and two
// package headers.
const escapeOutput = `# example.com/m/p
p/a.go:10:6: cannot inline F: function too complex: cost 200 exceeds budget 80
p/a.go:12:14: make([]int, n) escapes to heap:
p/a.go:12:14:   flow: ~r0 = &{storage for make([]int, n)}:
p/a.go:12:14: make([]int, n) escapes to heap
p/a.go:20:2: moved to heap: x
p/b.go:5:9: leaking param: xs
p/b.go:7:3: func literal does not escape
# example.com/m/q
q/c.go:3:14: make([]byte, 8) escapes to heap
`

func TestParseEscapes(t *testing.T) {
	recs, err := ParseEscapes(strings.NewReader(escapeOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []EscapeRecord{
		{Pkg: "example.com/m/p", File: "a.go", Line: 12, Kind: KindEscapes},
		{Pkg: "example.com/m/p", File: "a.go", Line: 20, Kind: KindMoved},
		{Pkg: "example.com/m/q", File: "c.go", Line: 3, Kind: KindEscapes},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d: %v", len(recs), len(want), recs)
	}
	for i, w := range want {
		if recs[i] != w {
			t.Errorf("record %d = %v, want %v", i, recs[i], w)
		}
	}
}

// TestParseEscapesDedupsDoubledDiagnostics pins that the `-m -m` habit of
// printing each site twice (with and without the flow-explanation colon)
// yields one record, while distinct columns on the same line stay apart.
func TestParseEscapesDedupsDoubledDiagnostics(t *testing.T) {
	const out = `# p
a.go:5:10: make([]int, 4) escapes to heap:
a.go:5:10: make([]int, 4) escapes to heap
a.go:5:30: make([]int, 8) escapes to heap
`
	recs, err := ParseEscapes(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (dedup same column, keep distinct): %v", len(recs), recs)
	}
}

func TestEscapeRecordString(t *testing.T) {
	r := EscapeRecord{Pkg: "m/p", File: "a.go", Line: 12, Kind: KindEscapes}
	if got := r.String(); got != "m/p/a.go:12 escapes-to-heap" {
		t.Errorf("String() = %q", got)
	}
}

// TestParseEscapesIgnoresMalformedPositions pins that lines matching the
// kind phrases but lacking a parsable "file.go:line:col:" prefix — flow
// continuations, truncated positions, non-numeric fields — are skipped
// rather than producing bogus records.
func TestParseEscapesIgnoresMalformedPositions(t *testing.T) {
	const out = `# p
no position here but escapes to heap
a.txt:5:1: v escapes to heap
a.go:x:1: v escapes to heap
a.go:5:y: v escapes to heap
a.go:0:1: v escapes to heap
a.go:5:0: v escapes to heap
a.go:5: v escapes to heap
`
	recs, err := ParseEscapes(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("malformed positions produced records: %v", recs)
	}
}

// failAfter errors once more than limit bytes have been written — used
// to drive every write-error branch of the baseline writer.
type failAfter struct {
	limit   int
	written int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		return 0, errWriterFull
	}
	w.written += len(p)
	return len(p), nil
}

var errWriterFull = errFull{}

type errFull struct{}

func (errFull) Error() string { return "writer full" }

func TestWriteEscapeBaselineWriteErrors(t *testing.T) {
	counts := map[EscapeKey]int{
		{Pkg: "p", File: "a.go", Kind: KindEscapes}: 1,
	}
	var full bytes.Buffer
	if err := WriteEscapeBaseline(&full, counts); err != nil {
		t.Fatal(err)
	}
	// Every truncation point must surface the writer's error, whichever
	// of the comment or record writes it lands in.
	for limit := 0; limit < full.Len(); limit++ {
		if err := WriteEscapeBaseline(&failAfter{limit: limit}, counts); err == nil {
			t.Fatalf("limit %d: write error swallowed", limit)
		}
	}
}

func TestEscapeBaselineRoundTrip(t *testing.T) {
	recs, err := ParseEscapes(strings.NewReader(escapeOutput))
	if err != nil {
		t.Fatal(err)
	}
	counts := CountEscapes(recs)
	var buf bytes.Buffer
	if err := WriteEscapeBaseline(&buf, counts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEscapeBaseline(&buf)
	if err != nil {
		t.Fatalf("re-reading written baseline: %v", err)
	}
	if len(back) != len(counts) {
		t.Fatalf("round trip lost keys: wrote %d, read %d", len(counts), len(back))
	}
	for k, v := range counts {
		if back[k] != v {
			t.Errorf("key %v: wrote %d, read %d", k, v, back[k])
		}
	}
}

func TestReadEscapeBaselineRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"pkg file.go escapes-to-heap not-a-number\n",
		"pkg file.go mystery-kind 3\n",
		"too few fields\n",
	} {
		if _, err := ReadEscapeBaseline(strings.NewReader(bad)); err == nil {
			t.Errorf("baseline %q parsed without error", bad)
		}
	}
}

func TestCompareEscapes(t *testing.T) {
	recs := []EscapeRecord{
		{Pkg: "p", File: "a.go", Line: 12, Kind: KindEscapes},
		{Pkg: "p", File: "a.go", Line: 30, Kind: KindEscapes},
		{Pkg: "p", File: "b.go", Line: 4, Kind: KindMoved},
	}
	baseline := CountEscapes(recs)

	// Identical measurement holds.
	if bad := CompareEscapes(recs, baseline); len(bad) != 0 {
		t.Fatalf("identical records must hold: %v", bad)
	}
	// Fewer escapes than baseline also holds (ratchet down on -update).
	if bad := CompareEscapes(recs[:1], baseline); len(bad) != 0 {
		t.Fatalf("improvement must hold: %v", bad)
	}
	// Pure line shifts hold: same file, same kind, same count.
	shifted := []EscapeRecord{
		{Pkg: "p", File: "a.go", Line: 112, Kind: KindEscapes},
		{Pkg: "p", File: "a.go", Line: 130, Kind: KindEscapes},
		{Pkg: "p", File: "b.go", Line: 104, Kind: KindMoved},
	}
	if bad := CompareEscapes(shifted, baseline); len(bad) != 0 {
		t.Fatalf("line shifts must hold: %v", bad)
	}
	// One extra escape in a known file regresses, citing the lines.
	grown := append(append([]EscapeRecord(nil), recs...),
		EscapeRecord{Pkg: "p", File: "a.go", Line: 50, Kind: KindEscapes})
	bad := CompareEscapes(grown, baseline)
	if len(bad) != 1 {
		t.Fatalf("want exactly 1 regression, got %v", bad)
	}
	if !strings.Contains(bad[0], "a.go") || !strings.Contains(bad[0], "50") {
		t.Errorf("regression message must cite the file and lines: %s", bad[0])
	}
	// A file the baseline has never seen regresses too.
	novel := append(append([]EscapeRecord(nil), recs...),
		EscapeRecord{Pkg: "p", File: "new.go", Line: 1, Kind: KindMoved})
	if bad := CompareEscapes(novel, baseline); len(bad) != 1 || !strings.Contains(bad[0], "new.go") {
		t.Fatalf("novel file must regress: %v", bad)
	}
}
