package collector

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mobicol/internal/geom"
)

// planFormat is the on-disk JSON schema for a planned tour. Downstream
// tooling (a real collector's navigation stack, plotting scripts) consumes
// this; cmd/mdgplan emits it with -json.
type planFormat struct {
	Sink     [2]float64   `json:"sink"`
	Stops    [][2]float64 `json:"stops"`
	UploadAt []int        `json:"upload_at"`
	Length   float64      `json:"length_m"`
}

// WriteJSON encodes the plan to w.
func (tp *TourPlan) WriteJSON(w io.Writer) error {
	pf := planFormat{
		Sink:     [2]float64{tp.Sink.X, tp.Sink.Y},
		Stops:    make([][2]float64, len(tp.Stops)),
		UploadAt: tp.UploadAt,
		//mdglint:ignore unitcheck JSON IO boundary: the on-disk schema stores raw numbers
		Length: float64(tp.Length()),
	}
	for i, s := range tp.Stops {
		pf.Stops[i] = [2]float64{s.X, s.Y}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pf)
}

// ReadPlanJSON decodes a plan previously written by WriteJSON and checks
// its structural invariants (assignment indices in range).
func ReadPlanJSON(r io.Reader) (*TourPlan, error) {
	var pf planFormat
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("collector: decode plan: %w", err)
	}
	tp := &TourPlan{
		Sink:     geom.Pt(pf.Sink[0], pf.Sink[1]),
		Stops:    make([]geom.Point, len(pf.Stops)),
		UploadAt: pf.UploadAt,
	}
	for i, s := range pf.Stops {
		tp.Stops[i] = geom.Pt(s[0], s[1])
	}
	for i, s := range tp.UploadAt {
		if s < -1 || s >= len(tp.Stops) {
			return nil, fmt.Errorf("collector: plan assigns sensor %d to stop %d of %d", i, s, len(tp.Stops))
		}
	}
	// Coordinates near ±MaxFloat64 decode fine individually but overflow
	// the tour-length sum, producing a plan JSON cannot re-encode (found
	// by FuzzTourPlanRoundTrip). Reject such plans at the boundary.
	//mdglint:ignore unitcheck math boundary: finiteness predicates take raw float64
	if l := float64(tp.Length()); math.IsNaN(l) || math.IsInf(l, 0) {
		return nil, fmt.Errorf("collector: plan tour length is not finite")
	}
	return tp, nil
}
