package collector

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mobicol/internal/geom"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	tp := &TourPlan{
		Sink:     geom.Pt(50, 50),
		Stops:    []geom.Point{geom.Pt(10, 20), geom.Pt(80, 90), geom.Pt(30, 70)},
		UploadAt: []int{0, 2, 1, -1, 0},
	}
	var buf bytes.Buffer
	if err := tp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sink.Eq(tp.Sink) || len(got.Stops) != 3 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	for i := range tp.Stops {
		if !got.Stops[i].Eq(tp.Stops[i]) {
			t.Fatalf("stop %d moved", i)
		}
	}
	for i := range tp.UploadAt {
		if got.UploadAt[i] != tp.UploadAt[i] {
			t.Fatalf("assignment %d changed", i)
		}
	}
	if math.Abs(float64(got.Length()-tp.Length())) > 1e-9 {
		t.Fatal("length changed")
	}
}

func TestReadPlanJSONRejectsBadAssignment(t *testing.T) {
	bad := `{"sink":[0,0],"stops":[[1,1]],"upload_at":[5],"length_m":2}`
	if _, err := ReadPlanJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	if _, err := ReadPlanJSON(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}
