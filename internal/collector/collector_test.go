package collector

import (
	"math"
	"testing"

	"mobicol/internal/energy"
	"mobicol/internal/geom"
)

func squarePlan() *TourPlan {
	return &TourPlan{
		Sink:     geom.Pt(0, 0),
		Stops:    []geom.Point{geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)},
		UploadAt: []int{0, 1, 2, 1},
	}
}

func TestLength(t *testing.T) {
	tp := squarePlan()
	if got := tp.Length(); math.Abs(float64(got)-40) > 1e-12 {
		t.Fatalf("Length = %v, want 40", got)
	}
	empty := &TourPlan{Sink: geom.Pt(5, 5)}
	if empty.Length() != 0 {
		t.Fatal("empty tour should have zero length")
	}
}

func TestSingleStopOutAndBack(t *testing.T) {
	tp := &TourPlan{Sink: geom.Pt(0, 0), Stops: []geom.Point{geom.Pt(7, 0)}}
	if got := tp.Length(); math.Abs(float64(got)-14) > 1e-12 {
		t.Fatalf("Length = %v, want 14", got)
	}
}

func TestSensorsAtAndServed(t *testing.T) {
	tp := squarePlan()
	counts := tp.SensorsAt()
	want := []int{1, 2, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("SensorsAt = %v", counts)
		}
	}
	if tp.Served() != 4 {
		t.Fatalf("Served = %d", tp.Served())
	}
	tp.UploadAt[0] = -1
	if tp.Served() != 3 {
		t.Fatalf("Served after unassign = %d", tp.Served())
	}
}

func TestValidate(t *testing.T) {
	sensors := []geom.Point{geom.Pt(12, 0), geom.Pt(10, 12), geom.Pt(0, 12), geom.Pt(8, 10)}
	tp := squarePlan()
	if err := tp.Validate(sensors, 5); err != nil {
		t.Fatal(err)
	}
	// Out-of-range sensor.
	far := []geom.Point{geom.Pt(50, 50), sensors[1], sensors[2], sensors[3]}
	if err := tp.Validate(far, 5); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	// Bad stop index.
	bad := squarePlan()
	bad.UploadAt[2] = 9
	if err := bad.Validate(sensors, 5); err == nil {
		t.Fatal("bad stop index accepted")
	}
	// Mismatched lengths.
	if err := squarePlan().Validate(sensors[:2], 5); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRoundTime(t *testing.T) {
	tp := squarePlan()
	spec := Spec{Speed: 2, UploadTime: 0.5}
	want := 40.0/2 + 4*0.5
	if got := tp.RoundTime(spec); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RoundTime = %v, want %v", got, want)
	}
}

func TestRoundTimePanicsOnZeroSpeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero speed did not panic")
		}
	}()
	squarePlan().RoundTime(Spec{})
}

func TestChargeRoundDebitsOnlyAssigned(t *testing.T) {
	sensors := []geom.Point{geom.Pt(12, 0), geom.Pt(10, 12), geom.Pt(0, 12), geom.Pt(8, 10)}
	tp := squarePlan()
	tp.UploadAt[3] = -1
	m := energy.DefaultModel()
	led := energy.NewLedger(4, m)
	tp.ChargeRound(sensors, led)
	if led.Round() != 1 {
		t.Fatalf("Round = %d", led.Round())
	}
	for i := 0; i < 3; i++ {
		want := m.InitialJ - m.TxCost(sensors[i].Dist(tp.Stops[tp.UploadAt[i]]))
		if math.Abs(float64(led.Residual[i]-want)) > 1e-15 {
			t.Fatalf("sensor %d residual %v, want %v", i, led.Residual[i], want)
		}
	}
	if led.Residual[3] != m.InitialJ {
		t.Fatal("unassigned sensor was charged")
	}
}

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec()
	if s.Speed != 1 || s.UploadTime <= 0 {
		t.Fatalf("DefaultSpec = %+v", s)
	}
}
