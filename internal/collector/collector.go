// Package collector models the M-collector of the paper: a mobile robot or
// vehicle with a powerful transceiver that departs from the static data
// sink, pauses at planned stop positions ("polling points") to receive
// single-hop uploads from nearby sensors, and returns to the sink. The
// package turns a planned tour into time and energy figures.
package collector

import (
	"fmt"

	"mobicol/internal/energy"
	"mobicol/internal/geom"
)

// Spec is the kinematic and radio profile of one M-collector. The paper
// cites practical mobile systems moving at 0.1–2 m/s.
type Spec struct {
	Speed      geom.MetersPerSecond // travel speed
	UploadTime float64              // seconds to poll + receive one sensor's packet
}

// DefaultSpec matches the paper's running example: 1 m/s and a nominal
// 0.1 s per-packet polling/upload cost.
func DefaultSpec() Spec { return Spec{Speed: 1, UploadTime: 0.1} }

// TourPlan is an executed-form data-gathering tour: the stop sequence
// beginning and ending at the sink (the sink itself is not listed), plus
// the sensor-to-stop upload assignment.
type TourPlan struct {
	Sink  geom.Point
	Stops []geom.Point
	// UploadAt[sensor] is the index into Stops where that sensor
	// uploads, or -1 for sensors served by no stop (never the case for
	// valid single-hop plans; baselines may produce it).
	UploadAt []int
}

// Length returns the closed tour length: sink -> stops... -> sink.
func (tp *TourPlan) Length() geom.Meters {
	if len(tp.Stops) == 0 {
		return 0
	}
	total := tp.Sink.Dist(tp.Stops[0])
	for i := 1; i < len(tp.Stops); i++ {
		total += tp.Stops[i-1].Dist(tp.Stops[i])
	}
	return geom.Meters(total + tp.Stops[len(tp.Stops)-1].Dist(tp.Sink))
}

// SensorsAt returns how many sensors upload at each stop.
func (tp *TourPlan) SensorsAt() []int {
	counts := make([]int, len(tp.Stops))
	for _, s := range tp.UploadAt {
		if s >= 0 {
			counts[s]++
		}
	}
	return counts
}

// Served returns the number of sensors with an upload stop.
func (tp *TourPlan) Served() int {
	c := 0
	for _, s := range tp.UploadAt {
		if s >= 0 {
			c++
		}
	}
	return c
}

// Unserved returns the number of sensors the plan leaves without an
// upload stop. Valid single-hop plans have none; baselines and degraded
// adaptive plans must count them instead of silently skipping them.
func (tp *TourPlan) Unserved() int { return len(tp.UploadAt) - tp.Served() }

// Validate checks structural invariants: every assignment points at a real
// stop, and (when positions are supplied) every sensor is within range of
// its stop — the single-hop guarantee.
func (tp *TourPlan) Validate(sensors []geom.Point, maxRange float64) error {
	if len(tp.UploadAt) != len(sensors) {
		return fmt.Errorf("collector: %d assignments for %d sensors", len(tp.UploadAt), len(sensors))
	}
	for i, s := range tp.UploadAt {
		if s < -1 || s >= len(tp.Stops) {
			return fmt.Errorf("collector: sensor %d assigned to stop %d of %d", i, s, len(tp.Stops))
		}
		if s >= 0 && maxRange > 0 {
			if d := sensors[i].Dist(tp.Stops[s]); d > maxRange+geom.Eps {
				return fmt.Errorf("collector: sensor %d is %.2fm from its stop, range %.2fm", i, d, maxRange)
			}
		}
	}
	return nil
}

// RoundTime returns the duration of one full gathering round: drive the
// tour and pause UploadTime per served sensor. This is the paper's data
// collection latency for mobile schemes.
func (tp *TourPlan) RoundTime(spec Spec) float64 {
	if spec.Speed <= 0 {
		//mdglint:ignore nopanic Spec speeds come from validated configs or literals; zero speed would silently yield +Inf latency
		panic("collector: non-positive speed")
	}
	return tp.Length().TravelTime(spec.Speed) + float64(tp.Served())*spec.UploadTime
}

// ChargeRound debits each sensor's single-hop upload to its stop in the
// ledger. The collector itself is externally powered (a vehicle), so only
// sensor-side costs are tracked — exactly the paper's accounting.
func (tp *TourPlan) ChargeRound(sensors []geom.Point, led *energy.Ledger) {
	for i, s := range tp.UploadAt {
		if s >= 0 {
			led.ChargeTx(i, sensors[i].Dist(tp.Stops[s]))
		}
	}
	led.EndRound()
}
