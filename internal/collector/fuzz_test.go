package collector

import (
	"bytes"
	"math"
	"testing"
)

// FuzzTourPlanRoundTrip feeds arbitrary bytes to the plan decoder. Any
// input the decoder accepts must re-encode and decode back bit-identically:
// the on-disk plan format is consumed by external navigation tooling, so a
// lossy round-trip would corrupt tours silently.
func FuzzTourPlanRoundTrip(f *testing.F) {
	f.Add([]byte(`{"sink":[0,0],"stops":[[1,2],[3,4]],"upload_at":[0,1,-1],"length_m":12.94}`))
	f.Add([]byte(`{"sink":[-7.25,3e2],"stops":[],"upload_at":[],"length_m":0}`))
	f.Add([]byte(`{"sink":[0,0],"stops":[[0,0]],"upload_at":[0,0,0,0],"length_m":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, err := ReadPlanJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are the bug
		}
		var buf bytes.Buffer
		// JSON cannot carry NaN or Inf, so anything that decoded must
		// re-encode cleanly.
		if err := tp.WriteJSON(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadPlanJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v\n%s", err, buf.Bytes())
		}
		if math.Float64bits(back.Sink.X) != math.Float64bits(tp.Sink.X) ||
			math.Float64bits(back.Sink.Y) != math.Float64bits(tp.Sink.Y) {
			t.Fatalf("sink drifted: %v -> %v", tp.Sink, back.Sink)
		}
		if len(back.Stops) != len(tp.Stops) || len(back.UploadAt) != len(tp.UploadAt) {
			t.Fatalf("shape drifted: %d/%d stops, %d/%d assignments",
				len(tp.Stops), len(back.Stops), len(tp.UploadAt), len(back.UploadAt))
		}
		for i := range tp.Stops {
			if math.Float64bits(back.Stops[i].X) != math.Float64bits(tp.Stops[i].X) ||
				math.Float64bits(back.Stops[i].Y) != math.Float64bits(tp.Stops[i].Y) {
				t.Fatalf("stop %d drifted: %v -> %v", i, tp.Stops[i], back.Stops[i])
			}
		}
		for i := range tp.UploadAt {
			if back.UploadAt[i] != tp.UploadAt[i] {
				t.Fatalf("assignment %d drifted: %d -> %d", i, tp.UploadAt[i], back.UploadAt[i])
			}
		}
	})
}
