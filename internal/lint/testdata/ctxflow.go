// Fixture for the ctxflow analyzer: a Planner seam whose helpers
// launder, drop, or strand the request context. Trace/Span model the
// obs phase-boundary span shape by name, which is how isSpanStart
// matches them without importing internal/obs.
package fixture

import "context"

// Trace mirrors obs.Trace.
type Trace struct{}

// Span mirrors obs.Span.
type Span struct{}

// Start opens a phase span.
func (t *Trace) Start(name string) *Span { return &Span{} }

// Child opens a sub-span.
func (s *Span) Child(name string) *Span { return &Span{} }

// End closes the span.
func (s *Span) End() {}

// Scenario mirrors engine.Scenario.
type Scenario struct {
	Items []int
}

// Options mirrors engine.Options.
type Options struct {
	Obs *Trace
}

// Result is the plan payload.
type Result struct{ N int }

// Planner is the root-discovery shape.
type Planner interface {
	Plan(ctx context.Context, sc Scenario, opts Options) (*Result, error)
}

type launderer struct{}

// Plan trips the laundering rule through a helper.
func (l *launderer) Plan(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	return mint(sc)
}

func mint(sc Scenario) (*Result, error) {
	ctx := context.Background() // want "severs the request's cancellation chain"
	return &Result{N: consume(ctx, sc)}, nil
}

func consume(ctx context.Context, sc Scenario) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(sc.Items)
}

type dropper struct {
	bg context.Context
}

// Plan trips the dropping rule: the context handed down is not derived
// from the incoming one.
func (d *dropper) Plan(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	return &Result{N: consume(d.bg, sc)}, nil // want "not derived from its ctx parameter"
}

type strander struct{}

// Plan trips the stranding rule twice, through two helpers.
func (s *strander) Plan(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	spanPhase(ctx, sc, opts)
	return &Result{N: loopPhase(ctx, sc)}, nil
}

// spanPhase starts a phase span but never consults ctx.
func spanPhase(ctx context.Context, sc Scenario, opts Options) {
	root := opts.Obs.Start("plan") // want "takes ctx but never consults it"
	defer root.End()
}

// loopPhase runs an input-scaled loop but never consults ctx.
func loopPhase(ctx context.Context, sc Scenario) int {
	total := 0
	for _, v := range sc.Items { // want "takes ctx but never consults it"
		total += v
	}
	return total
}

type threaded struct{}

// Plan is the negative case: the span phase checks ctx, the derived
// context chain counts, and the loop helper receives the real ctx.
func (t *threaded) Plan(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	root := opts.Obs.Start("plan")
	defer root.End()
	if err := sub.Err(); err != nil {
		return nil, err
	}
	return &Result{N: consume(sub, sc)}, nil
}
