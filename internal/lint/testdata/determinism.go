// Fixture for the determinism analyzer. Type-checked as import path
// mobicol/internal/sim so the map-iteration rule is in scope.
package fixture

import (
	crand "crypto/rand" // want "crypto/rand is inherently nondeterministic"
	"math/rand"         // want "route all randomness through internal/rng"
	"time"
)

func topLevelRand() int {
	return rand.Intn(10)
}

func unseededNew() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now reads the wall clock"
}

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func cryptoDraw(buf []byte) {
	_, _ = crand.Read(buf)
}

func mapOrderLeak(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want "map iteration order is randomized"
		total += v
	}
	return total
}

func mapOrderSuppressed(m map[int]float64) float64 {
	total := 0.0
	//mdglint:ignore determinism float addition reordering is absorbed by the commutative sum test tolerance
	for _, v := range m {
		total += v
	}
	return total
}

func sliceOrderIsFine(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
