// Fixture for the errflow analyzer: error values that are overwritten
// or dead before any check, including multi-assignment and named-return
// paths, plus the negative shapes the linear model must stay silent on.
package fixture

import "errors"

func step() error { return nil }

func pair() (int, error) { return 0, nil }

func sink(error) {}

// overwritten trips the same-block overwrite rule: the first error is
// replaced before anything reads it.
func overwritten() error {
	err := step() // want "overwritten before any check"
	err = step()
	return err
}

// deadTail trips the never-checked rule: the tail assignment is dead,
// the function returns nil regardless.
func deadTail() error {
	err := step()
	if err != nil {
		return err
	}
	err = step() // want "never checked"
	return nil
}

// deadMulti trips the rule through multi-assignment: the re-declared
// error is assigned alongside a used value and then dropped.
func deadMulti() int {
	n, err := pair()
	if err != nil {
		return 0
	}
	n2, err := pair() // want "never checked"
	return n + n2
}

// namedDiscard trips the rule on a named-return path: the explicit
// `return nil` discards the assigned error instead of publishing it.
func namedDiscard() (err error) {
	err = step() // want "never checked"
	return nil
}

// namedNaked is silent: a naked return publishes the named error.
func namedNaked() (err error) {
	err = step()
	return
}

// checkedBranches is silent: kills in different blocks pair with the
// check after the branch.
func checkedBranches(flip bool) error {
	var err error
	if flip {
		err = step()
	} else {
		err = errors.New("flipped")
	}
	return err
}

// loopCarried is silent: the use before the assignment sits in the same
// loop, so it reads the value on the next iteration.
func loopCarried(n int) error {
	var last error
	for i := 0; i < n; i++ {
		if last != nil {
			return last
		}
		last = step()
	}
	return nil
}

// escaped is silent: address-taken and closure-captured errors may be
// read at any time.
func escaped() {
	err := step()
	sinkPtr(&err)
	cerr := step()
	defer func() { sink(cerr) }()
}

func sinkPtr(*error) {}
