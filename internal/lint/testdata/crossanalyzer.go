// Fixture tripping all thirteen analyzers in one file. The test loads
// it under import path mobicol/internal/sim, which puts the determinism
// map-iteration rule, the nopanic internal/ scope, and the convcheck hot
// planning-path scope all in force, and asserts exact finding counts and
// ordering: one finding per analyzer, positions strictly increasing. The
// Planner/Scenario pair at the bottom activates the seam analyzers
// (purecheck, ctxflow) the same way the real engine package does.
package fixture

import (
	"context"
	"sync"
)

// Meters mirrors geom.Meters for the unitcheck dimension rules.
type Meters float64

// Joules mirrors energy.Joules.
type Joules float64

var hits int // globalvar

func mapOrder(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // determinism
		total += v
	}
	return total
}

func exactCompare(a, b float64) bool {
	return a == b // floateq
}

func mustPositive(x float64) float64 {
	if x <= 0 {
		panic("not positive") // nopanic
	}
	return x
}

func fallible() error { return nil }

func dropError() {
	fallible() // errcheck
}

func mixUnits(tour Meters) Joules {
	return Joules(tour) // unitcheck
}

func captureLoop(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits += i // loopcapture
		}()
	}
	wg.Wait()
}

func redundant(x float64) float64 {
	return float64(x) // convcheck
}

// Pool mirrors par.Pool for the parpure callback rule.
type Pool struct{}

// ForEach mirrors the par fan-out entry point.
func (p *Pool) ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

//mdglint:hotpath
func hotAlloc(n int) []int {
	return make([]int, n) // alloccheck
}

func parShared(p *Pool, n int) {
	p.ForEach(n, func(i int) {
		bump(i)
	})
}

func bump(i int) {
	hits += i // parpure
}

func overwriteErr() error {
	err := fallible() // errflow
	err = fallible()
	return err
}

// Scenario mirrors engine.Scenario for the seam-analyzer root discovery.
type Scenario struct{ Nodes []int }

// Planner mirrors the engine seam contract.
type Planner interface {
	Plan(ctx context.Context, sc Scenario) error
}

type crossPlanner struct{}

// Plan trips the two seam analyzers on consecutive lines.
func (p *crossPlanner) Plan(ctx context.Context, sc Scenario) error {
	sc.Nodes[0] = 1            // purecheck
	bg := context.Background() // ctxflow
	_ = bg
	return nil
}
