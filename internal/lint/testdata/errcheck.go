// Fixture for the errcheck analyzer.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

func dropped() {
	fallible() // want "error returned by fallible is silently discarded"
}

func droppedTuple() {
	twoResults() // want "error returned by twoResults is silently discarded"
}

func deferredDrop(f *os.File) {
	defer f.Close() // want "error returned by os.Close is silently discarded"
}

func goroutineDrop() {
	go fallible() // want "error returned by fallible is silently discarded"
}

func explicitBlankIsFine() {
	_ = fallible()
}

func handledIsFine() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

func fmtPrintFamilyIsFine() {
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
	fmt.Fprintln(os.Stderr, "hello")
}

func inMemoryWritersAreFine() string {
	var sb strings.Builder
	sb.WriteString("hello")
	return sb.String()
}

func suppressedDrop() {
	//mdglint:ignore errcheck best-effort cleanup on shutdown
	fallible()
}
