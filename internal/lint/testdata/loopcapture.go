// Fixture for the loopcapture analyzer: loop-variable capture by go/defer
// func literals, and shared-state writes from callbacks handed to the
// deterministic-parallelism layer (stand-in Pool type; matching is by the
// receiver type name).
package fixture

import "sync"

// Pool mirrors par.Pool for the callback-contract rule.
type Pool struct{}

// ForEach mirrors the par fan-out entry point.
func (p *Pool) ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Map mirrors the ordered-collect entry point.
func (p *Pool) Map(n int, fn func(i int) float64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = fn(i)
	}
	return out
}

func loopGoroutineCapture(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(i) // want "captures loop variable i"
			process(v) // want "captures loop variable v"
		}()
	}
	for j := 0; j < len(items); j++ {
		defer func() {
			process(j) // want "captures loop variable j"
		}()
	}
	wg.Wait()
}

func loopCaptureAsParameterIsFine(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			process(i)
		}(i)
	}
	wg.Wait()
}

func parSharedWrites(p *Pool, n int) float64 {
	total := 0.0
	counts := map[int]int{}
	shared := make([]float64, n)
	k := 3
	p.ForEach(n, func(i int) {
		total += float64(i)    // want "writes to total"
		counts[i]++            // want "shared map counts"
		shared[k] = float64(i) // want "index captured from outside"
		shared[i] = float64(i) // disjoint slot: index derived inside — fine
		local := float64(i)    // local state is the callback's own business
		local++
		_ = local
	})
	return total
}

func parDisjointSlotsAndReduce(p *Pool, n int) float64 {
	out := p.Map(n, func(i int) float64 {
		partial := 0.0
		for j := 0; j < i; j++ {
			partial += float64(j)
		}
		return partial
	})
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	return sum
}

func process(int) {}
