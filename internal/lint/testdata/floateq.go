// Fixture for the floateq analyzer. Type-checked as import path
// mobicol/internal/fixture (outside internal/geom, so comparisons are
// flagged).
package fixture

type point struct{ X, Y float64 }

type vec [2]float64

func directEq(a, b float64) bool {
	return a == b // want "compares floating-point values exactly"
}

func directNeq(a, b float64) bool {
	return a != b // want "compares floating-point values exactly"
}

func zeroCompare(a float64) bool {
	return a == 0 // want "compares floating-point values exactly"
}

func structCompare(p, q point) bool {
	return p == q // want "compares floating-point values exactly"
}

func arrayCompare(v, w vec) bool {
	return v != w // want "compares floating-point values exactly"
}

func float32Eq(a, b float32) bool {
	return a == b // want "compares floating-point values exactly"
}

func intsAreFine(a, b int) bool {
	return a == b
}

func constantFold() bool {
	const a, b = 1.5, 2.5
	return a == b // both operands constant: folded at compile time, no finding
}

func suppressedSentinel(residual float64) bool {
	//mdglint:ignore floateq residual is assigned -1 as a sentinel, never computed
	return residual == -1
}
