// Fixture for the unitcheck analyzer: self-contained copies of the
// dimensioned unit types (matching is by type name, so these stand in for
// geom.Meters, energy.Joules, sim.Rounds, geom.MetersPerSecond).
package fixture

// Meters mirrors geom.Meters.
type Meters float64

// Joules mirrors energy.Joules.
type Joules float64

// Rounds mirrors sim.Rounds.
type Rounds int

// MetersPerSecond mirrors geom.MetersPerSecond.
type MetersPerSecond float64

// Undimensioned is a named numeric type that carries no physical unit, so
// the analyzer must leave conversions through it alone.
type Undimensioned float64

func mixDimensions(tour Meters, battery Joules, life Rounds) Joules {
	bad := Joules(tour)                // want "unit mix"
	worse := Meters(battery)           // want "unit mix"
	asTime := Rounds(tour)             // want "unit mix"
	speedy := MetersPerSecond(battery) // want "unit mix"
	_ = worse
	_ = asTime
	_ = speedy
	_ = life
	return bad
}

func launderDimensions(tour Meters, battery Joules, life Rounds) float64 {
	raw := float64(tour) // want "dimension laundering"
	var assigned float64
	assigned = float64(battery) // want "dimension laundering"
	n := int(life)              // want "dimension laundering"
	f32 := float32(tour)        // want "dimension laundering"
	_ = assigned
	_ = n
	_ = f32
	return raw
}

func annotatedBoundary(tour Meters) float64 {
	//mdglint:ignore unitcheck JSON boundary: serialized as a raw number
	return float64(tour)
}

func allowedPromotions(raw float64, count int) (Meters, Rounds) {
	m := Meters(raw)        // promoting a bare value adds the dimension: fine
	r := Rounds(count)      // same for integer dimensions
	c := Meters(2.5)        // constants carry no runtime dimension
	scaled := m * Meters(2) // dimensionless constant factor through promotion
	_ = c
	return scaled, r
}

func neutralNamedTypes(u Undimensioned, tour Meters) Undimensioned {
	// Conversions between bare numerics and unit-less named types are not
	// the analyzer's business.
	v := Undimensioned(float64(u))
	w := float64(v)
	_ = w
	_ = tour
	return v
}
