// Fixture for the purecheck analyzer: a miniature engine seam with a
// Planner interface, a Scenario whose Net is the shared memory, and one
// implementation per rule. Findings ride the interprocedural dataflow:
// the worklist descends from each Plan method through calls that carry
// Scenario-derived taint.
package fixture

import "context"

// Network mirrors wsn.Network: the reference payload a Scenario shares.
type Network struct {
	Nodes []int
	cache []int
}

// Scenario mirrors engine.Scenario: a by-value struct carrying shared
// references.
type Scenario struct {
	Net *Network
}

// Plan mirrors engine.Plan.
type Plan struct {
	Stops []int
	Hook  func(i int) int
}

// Options mirrors engine.Options.
type Options struct{}

// Planner is the root-discovery shape: an interface named Planner with a
// Plan method whose first parameter is a context.Context.
type Planner interface {
	Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, error)
}

var lastNet *Network

type mutator struct{}

// Plan trips the write and retention rules, directly and through a
// callee.
func (m *mutator) Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, error) {
	sc.Net.Nodes[0] = 1 // want "writes memory reachable from the protected Scenario"
	bump(sc.Net)
	lastNet = sc.Net // want "retains a Scenario-derived reference past return"
	return &Plan{Stops: append([]int(nil), sc.Net.Nodes...)}, nil
}

// bump is only flagged because a Plan root passes it scenario memory.
func bump(nw *Network) {
	nw.Nodes[0]++ // want "writes memory reachable from the protected Scenario"
}

type retainer struct{}

// Plan trips the root-return rule: the closure keeps the scenario's
// network alive inside the returned plan.
func (r *retainer) Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, error) {
	nw := sc.Net
	hook := func(i int) int { return nw.Nodes[i] }
	return &Plan{Hook: hook}, nil // want "returns a Scenario-derived reference"
}

type clean struct{}

// Plan is the negative case: fresh containers built around scenario
// reads, scalar copies out of shared slices, and a fresh result.
func (c *clean) Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, error) {
	stops := make([]int, 0, len(sc.Net.Nodes))
	for _, n := range sc.Net.Nodes {
		stops = append(stops, n*2)
	}
	return &Plan{Stops: stops}, nil
}

// memoize is an audited mutation boundary: the directive stops the
// worklist, so neither this write nor anything below it is reported.
//
//mdglint:allow-mut(fixture boundary: idempotent cache publication, serialized by the caller)
func memoize(nw *Network) {
	nw.cache = append([]int(nil), nw.Nodes...)
}

type cached struct{}

// Plan exercises the boundary: the memoize call carries taint but is not
// descended into.
func (c *cached) Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, error) {
	memoize(sc.Net)
	return &Plan{Stops: []int{0}}, nil
}

type excused struct{}

// Plan exercises the line-level excuse: the write is real but carries a
// reasoned same-line directive.
func (e *excused) Plan(ctx context.Context, sc Scenario, opts Options) (*Plan, error) {
	sc.Net.Nodes[0] = 9 //mdglint:allow-mut(fixture: same-line excuse on an audited write)
	return &Plan{Stops: []int{0}}, nil
}
