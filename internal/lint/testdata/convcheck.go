// Fixture for the convcheck analyzer. The test loads it under a hot
// planning-path import path (mobicol/internal/tsp) so the float32
// truncation rule applies, and once under a cold path to pin that the
// truncation rule stays scoped.
package fixture

// Weight is a named float64; conversions to it from float64 are changes
// of type, not precision, and stay legal.
type Weight float64

func redundantConversions(x float64, n int, w Weight) float64 {
	a := float64(x) // want "redundant conversion"
	b := int(n)     // want "redundant conversion"
	c := Weight(w)  // want "redundant conversion"
	d := float64(n) // widening an int is a real conversion: fine
	e := Weight(x)  // named type change: fine
	f := float64(3) // constant conversions are how literals get typed: fine
	_ = a
	_ = b
	_ = c
	_ = e
	return d + f
}

func lossyRoundTrips(n int, idx int64, f float64) int {
	a := int(float64(n))     // want "lossy round-trip"
	b := int64(float32(idx)) // want "lossy round-trip"
	c := int(f)              // plain float-to-int is a deliberate floor: fine
	d := float64(int(f))     // int-to-float widening inside: fine
	_ = b
	_ = d
	return a + c
}

func float32Truncation(x float64, g float32) float32 {
	a := float32(x) // want "float32 truncation"
	b := float64(g) // widening back is lossless: fine
	_ = b
	return a
}
