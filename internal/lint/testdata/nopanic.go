// Fixture for the nopanic analyzer. Type-checked as import path
// mobicol/internal/fixture so the internal-only scope applies.
package fixture

import "errors"

func guard(n int) {
	if n < 0 {
		panic("negative") // want "panic in library code"
	}
}

func guardWithError(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

func suppressedInvariant(i, n int) {
	if i >= n {
		//mdglint:ignore nopanic mirrors the runtime's own bounds-check panic
		panic("index out of range")
	}
}

// A local function named panic must not be flagged: only the builtin counts.
func notTheBuiltin() {
	panic := func(string) {}
	panic("shadowed")
}
