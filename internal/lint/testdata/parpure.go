// Fixture for the parpure analyzer: callees reached from callbacks
// handed to the deterministic-parallelism layer (stand-in Pool type)
// that write shared state loopcapture cannot see — package-level
// variables behind any call depth, and closures nested inside the
// callback that write captured state.
package fixture

// Pool mirrors par.Pool for the callback-contract rule.
type Pool struct{}

// ForEach mirrors the par fan-out entry point.
func (p *Pool) ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

var tally int

func bumpTally(i int) {
	tally += i // want "writes package-level tally"
}

func pureSquare(i int) int { return i * i }

func parImpureCallee(p *Pool, n int) []int {
	out := make([]int, n)
	p.ForEach(n, func(i int) {
		out[i] = pureSquare(i) // disjoint slot through a pure callee — fine
		bumpTally(i)
	})
	return out
}

func parNestedClosureWrite(p *Pool, n int) int {
	total := 0
	p.ForEach(n, func(i int) {
		add := func(v int) {
			total += v // want "writes total declared outside the callback"
		}
		add(i)
	})
	return total
}

func parTransitiveImpure(p *Pool, n int) {
	p.ForEach(n, func(i int) {
		helper(i)
	})
}

func helper(i int) { deeper(i) }

func deeper(i int) {
	tally = i // want "writes package-level tally"
}

func parPureChain(p *Pool, n int) []int {
	out := make([]int, n)
	p.ForEach(n, func(i int) {
		v := pureSquare(i)
		local := v + helperPure(i)
		out[i] = local
	})
	return out
}

func helperPure(i int) int {
	acc := 0
	for j := 0; j < i; j++ {
		acc += j
	}
	return acc
}
