// Fixture for the globalvar analyzer.
package fixture

import (
	"errors"
	"fmt"
)

var counter int // want "package-level var counter is mutable shared state"

var cache = map[string]int{} // want "package-level var cache is mutable shared state"

var a, b = 1.0, 2.0 // want "package-level var a is mutable shared state"

var ErrNotFound = errors.New("fixture: not found")

var ErrBadInput = fmt.Errorf("fixture: bad input")

var _ fmt.Stringer = named("")

//mdglint:ignore globalvar write-once lookup table initialized before any reader
var lookup = []int{1, 2, 3}

const limit = 10

type named string

func (n named) String() string { return string(n) }

func use() (int, float64, []int, string) {
	counter++
	return counter + cache[""] + limit, a + b, lookup, ErrNotFound.Error() + ErrBadInput.Error()
}
