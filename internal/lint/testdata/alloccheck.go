// Fixture for the alloccheck analyzer: heap-allocation sites in
// functions reachable from //mdglint:hotpath roots, the allow-alloc
// boundary and line suppressions, and the cold-code silence.
package fixture

type point struct{ x, y float64 }

type scratch struct{ buf []int }

//mdglint:hotpath
func hotRoot(n int, s *scratch) int {
	buf := make([]int, n) // want "make allocates"
	for i := range buf {
		buf[i] = i
	}
	s.buf = s.buf[:0] // reslicing reuses the backing array — fine
	total := hotCallee(n)
	total += coldBoundary(n)
	return total + len(buf)
}

// hotCallee is reachable from hotRoot, so its allocations are findings
// even without its own annotation.
func hotCallee(n int) int {
	p := new(point)      // want "new allocates"
	xs := []int{1, 2, 3} // want "slice literal allocates"
	m := map[int]int{}   // want "map literal allocates"
	q := &point{x: 1}    // want "composite literal allocates"
	m[n] = n
	return n + len(xs) + len(m) + int(p.x+q.y)
}

// coldBoundary is an audited allocation boundary: it may allocate, and
// hotness does not propagate through it.
//
//mdglint:allow-alloc(setup-phase helper, measured cold)
func coldBoundary(n int) int {
	buf := make([]int, n) // inside the boundary — no finding
	return len(buf) + throughBoundary(n)
}

// throughBoundary is reachable only through the boundary, so it stays
// cold and may allocate freely.
func throughBoundary(n int) int {
	tmp := make([]int, n)
	return len(tmp)
}

//mdglint:hotpath
func hotAppend(xs []int, n int) []int {
	//mdglint:allow-alloc(amortized growth into a reused backing array)
	xs = append(xs, n)
	xs = append(xs, n+1) // want "append may grow"
	return xs
}

//mdglint:hotpath
func hotBoxing(v int, s *scratch) {
	sink(v) // want "boxes a int into an interface parameter"
	var a any
	sink(a)   // already an interface value — fine
	sink(nil) // untyped nil — fine
	sink(7)   // constant: boxed into static data — fine
	_ = s
}

func sink(any) {}

//mdglint:hotpath
func hotConversions(s string, b []byte) int {
	x := []byte(s) // want "conversion copies"
	y := string(b) // want "conversion copies"
	return len(x) + len(y)
}

//mdglint:hotpath
func hotClosures(xs []float64) func() float64 {
	total := 0.0
	add := func(v float64) { total += v } // non-escaping local closure — fine
	for _, v := range xs {
		add(v)
	}
	return func() float64 { return total } // want "capturing closure escapes"
}

// coldAllocs is reachable from no hot root: allocations are free here.
func coldAllocs(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
