// Package lint is a repo-specific static-analysis engine for the mobicol
// reproduction. It enforces the invariants the experiments rely on —
// deterministic randomness, epsilon-safe float comparisons, error returns
// instead of panics, no silently discarded errors, and no mutable
// package-level state — using only the standard library (go/ast,
// go/parser, go/types, go/token).
//
// Findings can be suppressed at the offending line, or on the line
// directly above it, with a reasoned directive:
//
//	//mdglint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without one is itself reported,
// so the CI gate cannot be waved through silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: analyzer: message
// form consumed by editors and CI logs.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lowercase identifier used in findings and directives
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass gives an analyzer access to one package, the whole-module
// interprocedural context, and a reporting sink.
type Pass struct {
	Pkg      *Package
	Mod      *Module
	analyzer string
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// Analyzers returns fresh instances of the full suite, in reporting order.
// The first five are syntactic; unitcheck, loopcapture, convcheck, and
// errflow need the go/types information the loader attaches to each
// Package; alloccheck and parpure additionally use the whole-module call
// graph Run builds into each Pass; purecheck and ctxflow use the
// dataflow summaries computed over that graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		FloatEqAnalyzer(),
		NoPanicAnalyzer(),
		ErrCheckAnalyzer(),
		GlobalVarAnalyzer(),
		UnitCheckAnalyzer(),
		LoopCaptureAnalyzer(),
		ConvCheckAnalyzer(),
		AllocCheckAnalyzer(),
		ParPureAnalyzer(),
		PureCheckAnalyzer(),
		CtxFlowAnalyzer(),
		ErrFlowAnalyzer(),
	}
}

// directive is one parsed //mdglint:ignore comment.
type directive struct {
	line     int
	analyzer string
	reason   string
}

const directivePrefix = "//mdglint:ignore"

// parseDirectives extracts every mdglint:ignore directive in the file,
// reporting malformed ones (no analyzer, or no reason) through report so
// they cannot silently disable the gate.
func parseDirectives(fset *token.FileSet, file *ast.File, known map[string]bool, report func(Finding)) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			switch {
			case name == "" || reason == "":
				report(Finding{Pos: pos, Analyzer: "mdglint",
					Message: "malformed suppression: want //mdglint:ignore <analyzer> <reason>"})
			case !known[name]:
				report(Finding{Pos: pos, Analyzer: "mdglint",
					Message: fmt.Sprintf("suppression names unknown analyzer %q", name)})
			default:
				out = append(out, directive{line: pos.Line, analyzer: name, reason: reason})
			}
		}
	}
	return out
}

// Run executes the analyzers over the packages and returns the surviving
// findings sorted by position. Suppressed findings are dropped; malformed
// suppressions are reported under the pseudo-analyzer "mdglint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	// Directive validation runs against the full suite's names, not just
	// the analyzers in this invocation: a focused subset run (mdglint
	// -run purecheck,...) must not misreport legitimate suppressions for
	// analyzers that are simply inactive.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	var all []Finding
	collect := func(f Finding) { all = append(all, f) }

	// Whole-module interprocedural context: the CHA call graph plus the
	// hotpath/allow-alloc annotation state alloccheck and parpure need.
	// Malformed hot-path directives surface like malformed suppressions.
	mod := NewModule(pkgs)
	all = append(all, mod.malformed...)

	// fileKey -> line -> analyzers suppressed at that line.
	suppressed := map[lineKey]map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := pkg.Fset.Position(file.Pos()).Filename
			for _, d := range parseDirectives(pkg.Fset, file, known, collect) {
				k := lineKey{file: name, line: d.line}
				if suppressed[k] == nil {
					suppressed[k] = map[string]bool{}
				}
				suppressed[k][d.analyzer] = true
			}
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, Mod: mod, analyzer: a.Name, report: collect})
		}
	}

	kept := all[:0]
	for _, f := range all {
		if f.Analyzer != "mdglint" {
			same := suppressed[lineKey{f.Pos.Filename, f.Pos.Line}]
			above := suppressed[lineKey{f.Pos.Filename, f.Pos.Line - 1}]
			if same[f.Analyzer] || above[f.Analyzer] {
				continue
			}
		}
		kept = append(kept, f)
	}

	SortFindings(kept)
	return kept
}

// SortFindings orders findings globally by (file, line, analyzer), then
// column and message as tie-breakers. The analyzer key before the
// column keeps -json diffs stable across analyzer additions: two
// analyzers flagging the same line always appear in name order, however
// their column positions shift. The CLI applies the same order after
// merging load diagnostics into the analyzer findings.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
