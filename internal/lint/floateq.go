package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// FloatEqAnalyzer flags == and != between floating-point operands (and
// composite values containing floats, such as geom.Point) outside
// internal/geom, which hosts the sanctioned epsilon helpers (geom.Eps,
// Point.Eq, Circle predicates). Exact float comparison is only safe for
// values that were assigned, never computed, and that distinction should
// be recorded with a suppression reason.
func FloatEqAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "flag ==/!= on floating-point operands outside internal/geom's epsilon helpers",
		Run:  runFloatEq,
	}
}

func runFloatEq(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.ImportPath, "/internal/geom") {
		return
	}
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			// Golden tests intentionally compare exact values: bit-identical
			// output under a fixed seed is this repository's contract.
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Pkg.Info.Types[be.X]
			yt, yok := pass.Pkg.Info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded at compile time
			}
			if containsFloat(xt.Type) || containsFloat(yt.Type) {
				pass.Reportf(be.OpPos, "%s compares floating-point values exactly; use the geom epsilon helpers (e.g. math.Abs(a-b) <= geom.Eps)",
					exprString(pass.Pkg, be))
			}
			return true
		})
	}
}

// containsFloat reports whether comparing two values of type t with ==
// compares floating-point representations: floats and complex numbers
// themselves, and structs or arrays with any such field or element.
func containsFloat(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsFloat(u.Elem())
	}
	return false
}

// exprString renders an expression compactly for finding messages.
func exprString(pkg *Package, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, pkg.Fset, e); err != nil {
		return "expression"
	}
	s := sb.String()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
