package lint

import (
	"testing"
)

// TestRepoPassesOwnLinter is the acceptance gate in test form: loading
// the whole module and running the full suite must produce zero findings.
// It is what `go run ./cmd/mdglint ./...` enforces in CI, kept here too so
// `go test ./...` alone catches regressions. Skipped under -short because
// type-checking the module (and its stdlib deps, from source) takes a
// few seconds.
func TestRepoPassesOwnLinter(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide typecheck is slow; run without -short")
	}
	pkgs, diags, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, d := range diags {
		t.Errorf("load diagnostic: %s", d)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the module", len(pkgs))
	}
	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d findings; fix them or add a reasoned //mdglint:ignore", len(findings))
	}
}
