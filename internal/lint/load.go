package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module, including
// its in-package _test.go files.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}

// rawPkg is one directory's worth of parsed files awaiting type checking.
type rawPkg struct {
	dir        string
	importPath string
	files      []*ast.File
	imports    map[string]bool // module-internal import paths
}

// LoadModule parses and type-checks every package under the module rooted
// at root (skipping testdata, vendor, and hidden directories). In-package
// test files are included so test code is linted too. External test
// packages (package foo_test) are a separate compilation unit that may
// import packages which depend on foo — merging them into foo would
// manufacture import cycles — so their files are skipped here and vetted
// by `go vet` / the compiler instead.
//
// Parse and type-check failures do not abort the load: they come back as
// findings under the pseudo-analyzer "load", positioned at the offending
// source line, and the affected package is still returned with whatever
// partial type information the checker recovered (analyzers tolerate
// incomplete Info maps). The error return is reserved for structural
// problems — no go.mod, unreadable directories, import cycles.
func LoadModule(root string) ([]*Package, []Finding, error) {
	root, err := FindModuleRoot(root)
	if err != nil {
		return nil, nil, err
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	var diags []Finding
	loadDiag := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Finding{Pos: pos, Analyzer: "load", Message: fmt.Sprintf(format, args...)})
	}
	raw := map[string]*rawPkg{} // import path -> package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if list, ok := err.(scanner.ErrorList); ok {
				for _, e := range list {
					loadDiag(e.Pos, "parse error: %s", e.Msg)
				}
			} else {
				loadDiag(token.Position{Filename: path}, "parse error: %v", err)
			}
			if file == nil {
				return nil
			}
		}
		if strings.HasSuffix(file.Name.Name, "_test") {
			return nil
		}
		if !buildableHere(file) {
			// Platform-specific twins (rss_linux.go / rss_other.go) would
			// otherwise collide as redeclarations in one package.
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := module
		if rel != "." {
			ip = module + "/" + filepath.ToSlash(rel)
		}
		p := raw[ip]
		if p == nil {
			p = &rawPkg{dir: dir, importPath: ip, imports: map[string]bool{}}
			raw[ip] = p
		}
		p.files = append(p.files, file)
		for _, spec := range file.Imports {
			if target, err := strconv.Unquote(spec.Path.Value); err == nil {
				if target == module || strings.HasPrefix(target, module+"/") {
					p.imports[target] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	order, err := topoOrder(raw)
	if err != nil {
		return nil, nil, err
	}

	imp := &moduleImporter{
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*types.Package{},
	}
	var pkgs []*Package
	for _, ip := range order {
		p := raw[ip]
		// Deterministic file order regardless of directory listing order.
		sort.Slice(p.files, func(i, j int) bool {
			return fset.Position(p.files[i].Pos()).Filename < fset.Position(p.files[j].Pos()).Filename
		})
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if terr, ok := err.(types.Error); ok {
					loadDiag(terr.Fset.Position(terr.Pos), "typecheck %s: %s", ip, terr.Msg)
				} else {
					loadDiag(token.Position{Filename: p.dir}, "typecheck %s: %v", ip, err)
				}
			},
		}
		// With conf.Error set the checker keeps going after diagnostics,
		// returns whatever partial package it could build, and reports the
		// first error through err — already captured above, so only a
		// checker that produced no package at all is fatal here.
		tpkg, err := conf.Check(ip, fset, p.files, info)
		if tpkg == nil {
			return nil, nil, fmt.Errorf("lint: typecheck %s: %w", ip, err)
		}
		imp.cache[ip] = tpkg
		pkgs = append(pkgs, &Package{
			Dir:        p.dir,
			ImportPath: ip,
			Fset:       fset,
			Files:      p.files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, diags, nil
}

// topoOrder returns the packages in dependency order (imports first).
func topoOrder(raw map[string]*rawPkg) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", ip)
		}
		state[ip] = visiting
		p := raw[ip]
		deps := make([]string, 0, len(p.imports))
		for dep := range p.imports {
			deps = append(deps, dep)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if raw[dep] == nil {
				return fmt.Errorf("lint: %s imports %s, which is not in the module", ip, dep)
			}
			if dep == ip {
				continue // a package's test files may import itself; harmless
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[ip] = done
		order = append(order, ip)
		return nil
	}
	paths := make([]string, 0, len(raw))
	for ip := range raw {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages
// already checked this run and everything else from GOROOT source.
type moduleImporter struct {
	module string
	std    types.Importer
	cache  map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		if pkg := m.cache[path]; pkg != nil {
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: internal package %s not yet type-checked", path)
	}
	return m.std.Import(path)
}

// buildableHere evaluates a file's //go:build constraint (when present)
// against the platform the linter runs on, mirroring the compiler's file
// selection. Only GOOS/GOARCH tags are modelled — the repo does not use
// custom build tags — and a file with no constraint is always in.
func buildableHere(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break // constraints live above the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed: let the compiler report it
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH
			})
		}
	}
	return true
}
