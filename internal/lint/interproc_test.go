package lint

import (
	"go/ast"
	"strings"
	"testing"
)

func TestAllocCheckAnalyzer(t *testing.T) {
	checkFixture(t, AllocCheckAnalyzer(), "alloccheck.go", "mobicol/internal/fixture")
}

func TestParPureAnalyzer(t *testing.T) {
	checkFixture(t, ParPureAnalyzer(), "parpure.go", "mobicol/internal/fixture")
}

// TestAllocCheckSkipsTestFiles pins the test-file exemption: hot-path
// annotations in a _test.go file produce nothing.
func TestAllocCheckSkipsTestFiles(t *testing.T) {
	const src = `package p

//mdglint:hotpath
func hot(n int) []int {
	return make([]int, n)
}
`
	pkg := loadSource(t, "hot_test.go", src)
	if fs := Run([]*Package{pkg}, []*Analyzer{AllocCheckAnalyzer()}); len(fs) != 0 {
		t.Errorf("alloccheck fired in a test file: %v", fs)
	}
}

// TestMisplacedHotpathDirectiveIsReported pins that a //mdglint:hotpath
// away from a function declaration surfaces as an unsuppressable
// mdglint finding instead of silently annotating nothing.
func TestMisplacedHotpathDirectiveIsReported(t *testing.T) {
	const src = `package p

func f(n int) int {
	//mdglint:hotpath
	x := n * 2
	return x
}
`
	pkg := loadSource(t, "p.go", src)
	findings := Run([]*Package{pkg}, Analyzers())
	var misplaced int
	for _, f := range findings {
		if f.Analyzer == "mdglint" && strings.Contains(f.Message, "misplaced directive") {
			misplaced++
		}
	}
	if misplaced != 1 {
		t.Errorf("want 1 misplaced-directive finding, got %d: %v", misplaced, findings)
	}
}

// TestMalformedAllowAllocIsReported pins that allow-alloc without a
// parenthesized reason is itself a finding and does not suppress the
// allocation it sits on.
func TestMalformedAllowAllocIsReported(t *testing.T) {
	const src = `package p

//mdglint:hotpath
func hot(n int) []int {
	//mdglint:allow-alloc
	buf := make([]int, n)
	return buf
}
`
	pkg := loadSource(t, "p.go", src)
	findings := Run([]*Package{pkg}, Analyzers())
	var malformed, allocs int
	for _, f := range findings {
		switch {
		case f.Analyzer == "mdglint" && strings.Contains(f.Message, "allow-alloc"):
			malformed++
		case f.Analyzer == "alloccheck":
			allocs++
		}
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed allow-alloc finding, got %d: %v", malformed, findings)
	}
	if allocs != 1 {
		t.Errorf("broken directive must not suppress the make; got %d alloccheck findings: %v", allocs, findings)
	}
}

// TestHotnessPropagatesAcrossPackages pins the interprocedural core: a
// hot root in one package makes a callee in another package hot, and an
// allow-alloc boundary on the way stops the propagation.
func TestHotnessPropagatesAcrossPackages(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"internal/planner/p.go": `package planner

import "example.com/m/internal/util"

//mdglint:hotpath
func Plan(n int) int {
	return util.Helper(n) + util.Boundary(n)
}
`,
		"internal/util/u.go": `package util

// Helper is hot by reachability.
func Helper(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// Boundary is audited.
//
//mdglint:allow-alloc(cold setup, measured)
func Boundary(n int) int {
	return len(make([]int, n)) + behind(n)
}

func behind(n int) int {
	return len(make([]int, n))
}
`,
	})
	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected load diagnostics: %v", diags)
	}
	findings := Run(pkgs, []*Analyzer{AllocCheckAnalyzer()})
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding (Helper's make), got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if !strings.HasSuffix(f.Pos.Filename, "u.go") || !strings.Contains(f.Message, "make allocates") {
		t.Errorf("finding is not Helper's make: %s", f)
	}
}

// TestModuleDirectiveAccessors pins the Module surface the CLI and the
// analyzers share: hot-root counting, per-function hotness, and the two
// sanctioned line-level allow-alloc placements (same line, line above).
func TestModuleDirectiveAccessors(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"p/p.go": `package p

//mdglint:hotpath
func Hot(n int) int {
	//mdglint:allow-alloc(above-line placement)
	buf := make([]int, n)
	buf = append(buf, 1) //mdglint:allow-alloc(same-line placement)
	return len(buf)
}

func Cold() int { return 0 }
`,
	})
	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected load diagnostics: %v", diags)
	}
	m := NewModule(pkgs)
	if got := m.HotRootCount(); got != 1 {
		t.Errorf("HotRootCount() = %d, want 1", got)
	}

	pkg := pkgs[0]
	decls := map[string]*ast.FuncDecl{}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				decls[fd.Name.Name] = fd
			}
		}
	}
	if !m.HotFunc(pkg, decls["Hot"]) {
		t.Error("annotated root Hot is not hot")
	}
	if m.HotFunc(pkg, decls["Cold"]) {
		t.Error("unreferenced Cold must stay cold")
	}

	// Both placements must resolve through AllowedAt: the make's line is
	// covered by the directive above it, the append's by the same-line
	// trailing comment, and Cold carries no allow at all.
	var makePos, appendPos ast.Node
	ast.Inspect(decls["Hot"].Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make":
					makePos = call
				case "append":
					appendPos = call
				}
			}
		}
		return true
	})
	if r := m.AllowedAt(pkg, makePos.Pos()); r != "above-line placement" {
		t.Errorf("AllowedAt(make) = %q, want the above-line reason", r)
	}
	if r := m.AllowedAt(pkg, appendPos.Pos()); r != "same-line placement" {
		t.Errorf("AllowedAt(append) = %q, want the same-line reason", r)
	}
	if r := m.AllowedAt(pkg, decls["Cold"].Pos()); r != "" {
		t.Errorf("AllowedAt(Cold) = %q, want none", r)
	}

	// With both sites excused, alloccheck must report nothing.
	if findings := Run(pkgs, []*Analyzer{AllocCheckAnalyzer()}); len(findings) != 0 {
		t.Errorf("excused sites still reported: %v", findings)
	}
}
