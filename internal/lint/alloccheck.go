package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocCheckAnalyzer builds the hot-path allocation checker.
//
// Functions annotated //mdglint:hotpath — the planners' steady-state
// inner loops — and everything reachable from them through the module
// call graph must not allocate: ROADMAP item 2's "allocation-free at
// steady state" as a static gate instead of a benchmark regression.
// Inside a hot function, every heap-allocation site is a finding:
//
//   - make and new;
//   - append (growth beyond capacity reallocates; amortized-safe
//     appends into reused scratch carry an audited allow);
//   - composite literals that allocate: &T{...}, slice literals, and
//     map literals (plain value-context struct/array literals live on
//     the stack and pass);
//   - closure creation: a func literal that captures outer variables
//     and escapes the statement creating it (passed as an argument,
//     returned, or stored). Literals bound to locals and only invoked
//     directly are assumed non-escaping and pass;
//   - interface boxing: a concrete value passed where an interface
//     parameter is expected;
//   - string <-> []byte conversions, which copy.
//
// Escapes are approximated syntactically — the compiler's exact verdict
// is what cmd/mdgescape ratchets — so the audited suppression carries
// the judgement call: //mdglint:allow-alloc(reason) on the line (or the
// line above) excuses a site, and on a function declaration it marks an
// allocation boundary hotness does not propagate through. Test files
// are exempt.
func AllocCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "alloccheck",
		Doc:  "flag heap-allocation sites in functions reachable from //mdglint:hotpath roots",
		Run:  runAllocCheck,
	}
}

func runAllocCheck(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		// Visit every function body in the file — declarations and
		// literals — and scan the hot ones. Literal bodies are scanned
		// under their own node, never as part of the enclosing function,
		// so a cold closure inside a hot function stays silent and vice
		// versa.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && pass.Mod.HotFunc(pass.Pkg, fn) {
					scanAllocs(pass, fn.Body)
				}
			case *ast.FuncLit:
				if pass.Mod.HotFunc(pass.Pkg, fn) {
					scanAllocs(pass, fn.Body)
				}
			}
			return true
		})
	}
}

// scanAllocs reports the allocation sites in one function body,
// skipping nested literals (they are their own graph nodes).
func scanAllocs(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch expr := n.(type) {
		case *ast.FuncLit:
			reportClosure(pass, expr)
			return false
		case *ast.CallExpr:
			checkCallAlloc(pass, expr)
			return true
		case *ast.UnaryExpr:
			if expr.Op == token.AND {
				if _, ok := ast.Unparen(expr.X).(*ast.CompositeLit); ok {
					reportAlloc(pass, expr.Pos(), "&composite literal allocates; hoist it into reused scratch state")
				}
			}
			return true
		case *ast.CompositeLit:
			switch info.TypeOf(expr).Underlying().(type) {
			case *types.Slice:
				reportAlloc(pass, expr.Pos(), "slice literal allocates its backing array; reuse a scratch slice")
			case *types.Map:
				reportAlloc(pass, expr.Pos(), "map literal allocates; hoist the map into reused state")
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkCallAlloc classifies one call expression: allocating builtins,
// copying string conversions, and interface boxing of arguments.
func checkCallAlloc(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fun := ast.Unparen(call.Fun)

	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte (and string <-> []rune) copy.
		if len(call.Args) == 1 {
			dst, src := tv.Type, info.TypeOf(call.Args[0])
			if src != nil && stringBytesConversion(dst, src) {
				reportAlloc(pass, call.Pos(),
					"%s(%s) conversion copies; keep one representation on the hot path",
					types.TypeString(dst, nil), types.TypeString(src, nil))
			}
		}
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				reportAlloc(pass, call.Pos(), "make allocates; hoist the buffer into reused scratch state")
			case "new":
				reportAlloc(pass, call.Pos(), "new allocates; hoist the value into reused scratch state")
			case "append":
				reportAlloc(pass, call.Pos(), "append may grow and reallocate; pre-size or reuse the backing array")
			}
			return
		}
	}

	// Interface boxing: concrete arguments bound to interface params.
	sigTV, ok := info.Types[fun]
	if !ok || sigTV.Type == nil {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramTypeAt(sig, i, call)
		if param == nil {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isNilOrInterface(info, arg, at) {
			continue
		}
		reportAlloc(pass, arg.Pos(),
			"argument boxes a %s into an interface parameter; avoid interface crossings on the hot path",
			types.TypeString(at, nil))
	}
}

// paramTypeAt returns the declared parameter type bound to argument i,
// unwrapping the variadic element type. Calls spread with f(xs...) pass
// the slice itself, so the variadic slice type applies unchanged.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if i < n-1 || !sig.Variadic() {
		if i >= n {
			return nil
		}
		return sig.Params().At(i).Type()
	}
	last := sig.Params().At(n - 1).Type()
	if call.Ellipsis.IsValid() {
		return last
	}
	if sl, ok := last.Underlying().(*types.Slice); ok {
		return sl.Elem()
	}
	return last
}

// isNilOrInterface reports whether arg needs no boxing: already an
// interface value, the untyped nil, or a compile-time constant (which
// the compiler can box into static data).
func isNilOrInterface(info *types.Info, arg ast.Expr, at types.Type) bool {
	if tv, ok := info.Types[arg]; ok {
		if tv.IsNil() || tv.Value != nil {
			return true
		}
	}
	_, isIface := at.Underlying().(*types.Interface)
	return isIface
}

// stringBytesConversion reports whether dst(src) is one of the copying
// string representation changes.
func stringBytesConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// reportClosure flags a nested func literal when it captures outer
// variables and escapes its creating statement.
func reportClosure(pass *Pass, lit *ast.FuncLit) {
	if !capturesOuter(pass.Pkg.Info, lit) {
		return
	}
	if !litEscapes(pass, lit) {
		return
	}
	reportAlloc(pass, lit.Pos(),
		"capturing closure escapes its creating function and allocates; pass state explicitly or hoist the closure")
}

// capturesOuter reports whether the literal reads or writes any
// variable declared outside itself.
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: static address, no capture cell
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// litEscapes approximates the compiler's escape verdict for a literal:
// true when the literal is used as a call argument, returned, sent,
// or stored into anything non-local — the shapes that let the closure
// outlive (or leave) the frame that created it. The approximation is
// syntactic (one level of parent context, tracked by a second walk), so
// the audited allow directive settles the borderline cases.
func litEscapes(pass *Pass, lit *ast.FuncLit) bool {
	escapes := false
	for _, file := range pass.Pkg.Files {
		if !(file.Pos() <= lit.Pos() && lit.Pos() < file.End()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if escapes {
				return false
			}
			switch parent := n.(type) {
			case *ast.CallExpr:
				for _, arg := range parent.Args {
					if ast.Unparen(arg) == lit {
						escapes = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range parent.Results {
					if ast.Unparen(r) == lit {
						escapes = true
					}
				}
			case *ast.SendStmt:
				if ast.Unparen(parent.Value) == lit {
					escapes = true
				}
			case *ast.CompositeLit:
				for _, el := range parent.Elts {
					if ast.Unparen(el) == lit {
						escapes = true
					}
					if kv, ok := el.(*ast.KeyValueExpr); ok && ast.Unparen(kv.Value) == lit {
						escapes = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range parent.Rhs {
					if ast.Unparen(rhs) != lit {
						continue
					}
					// Storing into an indexed/deref/field target escapes;
					// a plain := or = to a simple local stays stack-bound.
					if i < len(parent.Lhs) {
						if _, isIdent := ast.Unparen(parent.Lhs[i]).(*ast.Ident); !isIdent {
							escapes = true
						}
					}
				}
			}
			return true
		})
		break
	}
	return escapes
}

// reportAlloc reports one allocation site unless an allow-alloc
// directive covers the line.
func reportAlloc(pass *Pass, pos token.Pos, format string, args ...any) {
	if pass.Mod != nil && pass.Mod.AllowedAt(pass.Pkg, pos) != "" {
		return
	}
	pass.Reportf(pos, format, args...)
}
