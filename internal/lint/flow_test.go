package lint

import (
	"strings"
	"testing"
)

func TestPureCheckAnalyzer(t *testing.T) {
	checkFixture(t, PureCheckAnalyzer(), "purecheck.go", "mobicol/internal/fixture")
}

func TestCtxFlowAnalyzer(t *testing.T) {
	checkFixture(t, CtxFlowAnalyzer(), "ctxflow.go", "mobicol/internal/fixture")
}

func TestErrFlowAnalyzer(t *testing.T) {
	checkFixture(t, ErrFlowAnalyzer(), "errflow.go", "mobicol/internal/fixture")
}

// TestMalformedAllowMutIsReported pins the PR 6 idiom for the new
// directive: allow-mut without a parenthesized reason is itself an
// unsuppressable mdglint finding.
func TestMalformedAllowMutIsReported(t *testing.T) {
	const src = `package p

//mdglint:allow-mut
func f(xs []int) { xs[0] = 1 }
`
	pkg := loadSource(t, "p.go", src)
	findings := Run([]*Package{pkg}, Analyzers())
	var malformed int
	for _, f := range findings {
		if f.Analyzer == "mdglint" && strings.Contains(f.Message, "allow-mut") {
			malformed++
		}
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed allow-mut finding, got %d: %v", malformed, findings)
	}
}

// TestErrFlowSkipsTestFiles pins the test-file exemption.
func TestErrFlowSkipsTestFiles(t *testing.T) {
	const src = `package p

func step() error { return nil }

func f() error {
	err := step()
	err = step()
	return err
}
`
	pkg := loadSource(t, "p_test.go", src)
	if fs := Run([]*Package{pkg}, []*Analyzer{ErrFlowAnalyzer()}); len(fs) != 0 {
		t.Errorf("errflow fired in a test file: %v", fs)
	}
}

// TestErrFlowSkipsFreeVariablesInClosures pins the recursive-walker
// shape: a closure assigning an enclosing error variable it also reads
// on re-entry must not be treated as a linear dead store.
func TestErrFlowSkipsFreeVariablesInClosures(t *testing.T) {
	const src = `package p

func emit(string) (int, error) { return 0, nil }

type node struct{ children []*node }

func walkAll(root *node) error {
	var err error
	var walk func(n *node)
	walk = func(n *node) {
		if err != nil {
			return
		}
		_, err = emit("visit")
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(root)
	return err
}
`
	pkg := loadSource(t, "p.go", src)
	if fs := Run([]*Package{pkg}, []*Analyzer{ErrFlowAnalyzer()}); len(fs) != 0 {
		t.Errorf("errflow flagged a recursive closure's free variable: %v", fs)
	}
}

// TestCtxFlowReachesInitRegisteredAdapters pins the activation seam: an
// adapter dispatched through a func field is only activated by a
// registration init no Plan path reaches, yet ctxflow must still check
// it — while a same-signature closure created by an unreachable driver
// stays out of scope.
func TestCtxFlowReachesInitRegisteredAdapters(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"internal/engine/engine.go": `package engine

import "context"

// Scenario is the shared input.
type Scenario struct{ Items []int }

// Planner is the seam.
type Planner interface {
	Plan(ctx context.Context, sc Scenario) error
}

type planFunc struct {
	run func(ctx context.Context, sc Scenario) error
}

func (p *planFunc) Plan(ctx context.Context, sc Scenario) error {
	return p.run(ctx, sc)
}

var registry []*planFunc

func init() {
	registry = append(registry, &planFunc{run: strand})
}

// strand never consults ctx but loops over its input.
func strand(ctx context.Context, sc Scenario) error {
	total := 0
	for _, v := range sc.Items {
		total += v
	}
	_ = total
	return nil
}

// driver is not on any Plan path; its same-signature closure must not
// be dragged in by the indirect-call signature match.
func driver() {
	f := func(ctx context.Context, sc Scenario) error {
		_ = context.Background()
		return nil
	}
	_ = f
}
`,
	})
	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected load diagnostics: %v", diags)
	}
	findings := Run(pkgs, []*Analyzer{CtxFlowAnalyzer()})
	var stranded, laundered int
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, "never consults it"):
			stranded++
		case strings.Contains(f.Message, "cancellation chain"):
			laundered++
		}
	}
	if stranded != 1 {
		t.Errorf("want 1 stranding finding on the init-registered adapter, got %d: %v", stranded, findings)
	}
	if laundered != 0 {
		t.Errorf("unreachable driver closure was flagged %d time(s): %v", laundered, findings)
	}
}

// TestPureCheckCrossPackage pins the interprocedural descent: a Plan
// root in one package makes a helper's write in another package a
// finding, and the allow-mut boundary stops it.
func TestPureCheckCrossPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"internal/engine/engine.go": `package engine

import (
	"context"

	"example.com/m/internal/wsn"
)

// Scenario is the shared input.
type Scenario struct{ Net *wsn.Network }

// Planner is the seam.
type Planner interface {
	Plan(ctx context.Context, sc Scenario) error
}

type direct struct{}

func (d *direct) Plan(ctx context.Context, sc Scenario) error {
	wsn.Touch(sc.Net)
	wsn.Audited(sc.Net)
	return ctx.Err()
}
`,
		"internal/wsn/wsn.go": `package wsn

// Network is the shared payload.
type Network struct{ Nodes []int }

// Touch mutates shared memory two hops from the root.
func Touch(nw *Network) {
	nw.Nodes[0] = 1
}

// Audited is a reasoned boundary.
//
//mdglint:allow-mut(test boundary: caller serializes)
func Audited(nw *Network) {
	nw.Nodes[0] = 2
}
`,
	})
	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected load diagnostics: %v", diags)
	}
	findings := Run(pkgs, []*Analyzer{PureCheckAnalyzer()})
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding (Touch's write), got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if !strings.HasSuffix(f.Pos.Filename, "wsn.go") || !strings.Contains(f.Message, "writes memory reachable") {
		t.Errorf("finding is not Touch's write: %s", f)
	}
}
