package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckAnalyzer flags calls whose error result is silently discarded:
// a call used as a bare statement (including defer and go) when its
// results include an error. Assigning the error to the blank identifier
// (`_ = f()`) is treated as an explicit, visible decision and is not
// flagged. The fmt print family and the never-failing writers
// (strings.Builder, bytes.Buffer) are exempt.
func ErrCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errcheck",
		Doc:  "flag silently discarded error returns in non-test code",
		Run:  runErrCheck,
	}
}

func runErrCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil || !returnsError(pass.Pkg, call) || exemptCallee(pass.Pkg, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s is silently discarded; handle it or assign it to _ with a comment",
				calleeLabel(pass.Pkg, call))
			return true
		})
	}
}

// returnsError reports whether the call's result type is or includes error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// exemptCallee reports whether the callee is on the allow list: fmt's
// print family (failure means stdout is gone) and the in-memory writers
// whose Write methods are documented never to fail.
func exemptCallee(pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	switch recv.String() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// calleeObject resolves the called function or method, if statically known.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

// calleeLabel names the callee for the finding message.
func calleeLabel(pkg *Package, call *ast.CallExpr) string {
	if obj := calleeObject(pkg, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg() != pkg.Types {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return obj.Name()
	}
	return exprString(pkg, call.Fun)
}
