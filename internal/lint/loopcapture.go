package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LoopCaptureAnalyzer builds the concurrency-capture checker.
//
// Two families of bugs slip past the syntactic determinism analyzer:
//
//   - a `go` or `defer` func literal inside a loop that reads the loop
//     variable. Go 1.22 gives each iteration its own copy, so this is no
//     longer the classic aliasing bug, but the goroutine still observes a
//     value chosen by scheduling-dependent interleaving; passing the
//     variable as an explicit parameter keeps the data flow visible;
//   - a callback handed to internal/par that writes to state declared
//     outside the callback. The par contract is "disjoint slots or ordered
//     reduction": writes to outer maps or scalars race across workers, and
//     writes to outer slices are only safe when every index is derived
//     inside the callback (the per-chunk disjoint-slot pattern).
//
// Test files are exempt; tests exercise racy shapes deliberately under
// the race detector.
func LoopCaptureAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "loopcapture",
		Doc:  "flag goroutine capture of loop variables and unsynchronized writes from internal/par callbacks",
		Run:  runLoopCapture,
	}
}

func runLoopCapture(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		var loopVars []map[types.Object]bool // stack of enclosing loops' variables
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ForStmt:
				vars := map[types.Object]bool{}
				if init, ok := stmt.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, lhs := range init.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := pass.Pkg.Info.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
				}
				loopVars = append(loopVars, vars)
				ast.Inspect(stmt.Body, walk)
				loopVars = loopVars[:len(loopVars)-1]
				return false
			case *ast.RangeStmt:
				vars := map[types.Object]bool{}
				for _, e := range []ast.Expr{stmt.Key, stmt.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.Pkg.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
				loopVars = append(loopVars, vars)
				ast.Inspect(stmt.Body, walk)
				loopVars = loopVars[:len(loopVars)-1]
				return false
			case *ast.GoStmt:
				if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok && len(loopVars) > 0 {
					reportLoopVarCapture(pass, lit, loopVars, "go")
				}
			case *ast.DeferStmt:
				if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok && len(loopVars) > 0 {
					reportLoopVarCapture(pass, lit, loopVars, "defer")
				}
			case *ast.CallExpr:
				if isParCall(pass, stmt) {
					for _, arg := range stmt.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkParCallback(pass, lit)
						}
					}
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
}

// reportLoopVarCapture flags idents inside lit that resolve to a variable
// of any enclosing loop.
func reportLoopVarCapture(pass *Pass, lit *ast.FuncLit, loopVars []map[types.Object]bool, kind string) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		for _, vars := range loopVars {
			if vars[obj] {
				seen[obj] = true
				pass.Reportf(id.Pos(),
					"%s func literal captures loop variable %s; pass it as an explicit parameter",
					kind, id.Name)
			}
		}
		return true
	})
}

// isParCall reports whether call invokes the deterministic-parallelism
// layer: a function from a package whose import path ends in internal/par
// (or is named par in fixtures), or a method on a type named Pool.
func isParCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Pool" {
			return true
		}
		return false
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		return path == "par" || strings.HasSuffix(path, "/par")
	}
	return false
}

// checkParCallback flags writes from the callback body to variables
// declared outside it. Map writes and scalar writes race across workers;
// slice-element writes are allowed only when the index is computed from
// identifiers declared inside the callback (each worker then owns a
// disjoint slot).
func checkParCallback(pass *Pass, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	declaredInside := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return true // unresolvable: assume local, stay quiet
		}
		return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
	}
	indexLocal := func(index ast.Expr) bool {
		local := true
		ast.Inspect(index, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] != nil {
				if _, isVar := info.Uses[id].(*types.Var); isVar && !declaredInside(id) {
					local = false
				}
			}
			return true
		})
		return local
	}
	checkTarget := func(expr ast.Expr) {
		switch lhs := expr.(type) {
		case *ast.Ident:
			if info.Uses[lhs] != nil && !declaredInside(lhs) {
				pass.Reportf(lhs.Pos(),
					"par callback writes to %s declared outside the callback; workers race on it — use the chunk result or a disjoint slot",
					lhs.Name)
			}
		case *ast.IndexExpr:
			base, ok := lhs.X.(*ast.Ident)
			if !ok || declaredInside(base) {
				return
			}
			tv, ok := info.Types[lhs.X]
			if !ok {
				return
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(lhs.Pos(),
					"par callback writes to shared map %s; map writes race across workers — reduce per-worker results instead",
					base.Name)
			case *types.Slice:
				if !indexLocal(lhs.Index) {
					pass.Reportf(lhs.Pos(),
						"par callback writes to shared slice %s at an index captured from outside; derive the index inside the callback so slots stay disjoint",
						base.Name)
				}
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			if stmt != lit {
				return false // nested literals get their own contract
			}
		case *ast.AssignStmt:
			if stmt.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range stmt.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(stmt.X)
		}
		return true
	})
}
