package lint

import (
	"go/token"

	"mobicol/internal/lint/callgraph"
)

// PureCheckAnalyzer builds the Scenario purity checker over the
// dataflow summaries.
//
// The engine seam hands every registered planner a Scenario the caller
// may share across concurrent requests (ROADMAP item 1: mdgserved plans
// one scenario per network per round). purecheck statically proves the
// two properties that make that sharing safe: no function reachable
// from a Planner.Plan method writes through pointers, slices, or maps
// reachable from the Scenario parameter, and none retains a
// Scenario-derived reference past return — no stashing into globals,
// receiver fields, channels, or the returned plan (captured closures
// included).
//
// The worklist descends from each Plan root through the per-function
// CallFlow records, tracking a protection level per (function,
// parameter): Direct when the parameter itself aliases scenario memory,
// Contents when it is a fresh container whose reference contents do.
// At Contents level, writes to the container's own memory are local
// initialization and stay silent — this is what lets an adapter build a
// fresh shdgp.Problem around sc.Net and let the planner fill it in —
// while writes one reference load deeper (the shared network) still
// fire. Retention fires at either level: storing a fresh container
// escapes the shared references it carries.
//
// //mdglint:allow-mut(reason) on a declaration marks an audited
// mutation boundary the worklist does not descend through; on a
// statement line it excuses that site only. Malformed directives are
// reported and cannot suppress anything (the PR 6 idiom).
func PureCheckAnalyzer() *Analyzer {
	// One seen-set per analyzer instance: Run reuses the instance across
	// packages and the worklist spans the module, so every finding is
	// reported exactly once.
	seen := map[pureSeenKey]bool{}
	return &Analyzer{
		Name: "purecheck",
		Doc:  "flag Scenario mutation or retention reachable from a registered Planner.Plan",
		Run:  func(pass *Pass) { runPureCheck(pass, seen) },
	}
}

// pureSeenKey identifies one (site, finding kind) pair.
type pureSeenKey struct {
	pos  token.Pos
	kind byte
}

// pureItem is one worklist entry: a function parameter protected at a
// level. direct means the parameter itself aliases scenario memory;
// otherwise only its reference contents do.
type pureItem struct {
	node   *callgraph.Node
	param  int
	direct bool
}

func runPureCheck(pass *Pass, seen map[pureSeenKey]bool) {
	if pass.Mod == nil || pass.Mod.Graph == nil {
		return
	}
	roots := pass.Mod.PlanRoots()
	rootScenario := map[*callgraph.Node]int{}
	var queue []pureItem
	visited := map[pureItem]bool{}
	push := func(it pureItem) {
		if it.param < 64 && !visited[it] {
			visited[it] = true
			queue = append(queue, it)
		}
	}
	for _, r := range roots {
		if r.ScenarioParam < 0 {
			continue
		}
		rootScenario[r.Node] = r.ScenarioParam
		push(pureItem{r.Node, r.ScenarioParam, r.ScenarioPtr})
	}
	if len(queue) == 0 {
		return
	}
	df := pass.Mod.Dataflow()

	report := func(pos token.Pos, kind byte, format string, args ...any) {
		key := pureSeenKey{pos, kind}
		if seen[key] || pass.IsTestFile(pos) {
			return
		}
		seen[key] = true
		if pass.Mod.MutAllowedAt(pass.Pkg, pos) != "" {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if _, boundary := pass.Mod.MutBoundary(it.node); boundary {
			continue
		}
		if pass.IsTestFile(it.node.Pos) {
			continue
		}
		s := df.Summary(it.node)
		if s == nil {
			continue
		}
		bit := uint64(1) << uint(it.param)
		for _, w := range s.Writes {
			if w.R&bit != 0 || (it.direct && w.D&bit != 0) {
				report(w.Pos, 'w',
					"%s writes memory reachable from the protected Scenario (%s); planners must treat the scenario as shared and immutable",
					it.node.Name, w.Desc)
			}
		}
		for _, rt := range s.Retains {
			if (rt.D|rt.R|rt.V)&bit != 0 {
				report(rt.Pos, 'r',
					"%s retains a Scenario-derived reference past return (%s); copy the data instead of keeping the reference",
					it.node.Name, rt.Desc)
			}
		}
		if sc, isRoot := rootScenario[it.node]; isRoot && sc == it.param {
			for _, ret := range s.Returns {
				if (ret.D|ret.R|ret.V)&bit != 0 {
					report(ret.Pos, 'R',
						"%s returns a Scenario-derived reference; the plan outlives the request and would share scenario memory",
						it.node.Name)
				}
			}
		}
		for _, cf := range s.Calls {
			d, r, v := cf.D&bit, cf.R&bit, cf.V&bit
			if d|r|v == 0 {
				continue
			}
			push(pureItem{cf.Callee, cf.Param, r != 0 || (d != 0 && it.direct)})
		}
	}
}
