package lint

import (
	"go/ast"
	"go/types"
)

// unitDimension maps the unit-type names the codebase uses for physical
// quantities to their dimension. Matching is by type name (with a numeric
// underlying type) rather than by import path so the analyzer works
// identically on the real geom/energy/sim packages and on self-contained
// fixtures.
func unitDimension(name string) string {
	switch name {
	case "Meters":
		return "length"
	case "MetersPerSecond":
		return "speed"
	case "Joules":
		return "energy"
	case "Rounds":
		return "time"
	}
	return ""
}

// dimensionOf returns the dimension ("length", "energy", ...) of t when t
// is one of the named unit types, and "" otherwise.
func dimensionOf(t types.Type) (name, dim string) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	d := unitDimension(obj.Name())
	if d == "" {
		return "", ""
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return "", ""
	}
	return obj.Name(), d
}

// isBareNumeric reports whether t is an unnamed numeric basic type
// (float64, int, ...) — the "dimensionless" representation a unit value
// must not silently decay to.
func isBareNumeric(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Info()&types.IsNumeric != 0
}

// UnitCheckAnalyzer builds the units-of-measure checker.
//
// The named unit types (geom.Meters, geom.MetersPerSecond, energy.Joules,
// sim.Rounds) make cross-dimension assignment and arithmetic a compile
// error, so the one remaining laundering vector is an explicit conversion.
// This analyzer polices those conversions:
//
//   - converting one dimensioned type to a different dimension
//     (energy.Joules(tourLength)) is always a finding — no annotation can
//     excuse mixing metres into joules;
//   - converting a dimensioned value to a bare numeric type
//     (float64(tourLength)) strips the dimension and is a finding unless
//     the line carries a //mdglint:ignore unitcheck directive naming the
//     boundary (JSON IO, math stdlib calls, dimensional algebra);
//   - promoting a bare numeric into a dimensioned type is always allowed:
//     it adds information instead of destroying it.
//
// Test files are exempt: assertions legitimately compare raw numbers.
func UnitCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "unitcheck",
		Doc:  "flag conversions that mix physical dimensions or launder dimensioned values through bare numerics",
		Run:  runUnitCheck,
	}
}

func runUnitCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := tv.Type
			argTV, ok := info.Types[call.Args[0]]
			if !ok || argTV.Type == nil {
				return true
			}
			src := argTV.Type
			if argTV.Value != nil {
				// Constant expressions (including untyped literals) carry
				// no runtime dimension to launder.
				return true
			}
			if isTypeParam(dst) || isTypeParam(src) {
				// Generic code converts through type parameters whose
				// instantiations are checked at their call sites.
				return true
			}
			srcName, srcDim := dimensionOf(src)
			dstName, dstDim := dimensionOf(dst)
			switch {
			case srcDim != "" && dstDim != "" && srcDim != dstDim:
				pass.Reportf(call.Pos(),
					"unit mix: converting %s (%s) to %s (%s); no conversion boundary can justify crossing dimensions",
					srcName, srcDim, dstName, dstDim)
			case srcDim != "" && dstDim == "" && isBareNumeric(dst):
				pass.Reportf(call.Pos(),
					"dimension laundering: %s value converted to bare %s; keep the unit type or annotate the conversion boundary",
					srcName, dst.String())
			}
			return true
		})
	}
}

// isTypeParam reports whether t is (or dereferences to) a generic type
// parameter.
func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}
