package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrFlowAnalyzer builds the dataflow upgrade of errcheck.
//
// errcheck catches a call whose error result is never bound; errflow
// catches the bound-but-dead cases: an error variable overwritten by a
// later assignment in the same block before anything reads it, and an
// error assignment no statement ever consults — through multi-assignment
// (`v, err = f()`) and named-return paths (a naked return publishes the
// named error; `return nil` discards it).
//
// The analysis is deliberately branch-insensitive in the quiet
// direction: a kill only counts within the same innermost block (so
// `if { err = f() } else { err = g() }; check(err)` stays silent), a use
// anywhere after the assignment — or anywhere inside a loop enclosing
// it — keeps it silent, and variables captured by closures or with
// their address taken are skipped entirely (a deferred handler may read
// them at any time).
func ErrFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errflow",
		Doc:  "flag error values overwritten or dead before any check in non-test code",
		Run:  runErrFlow,
	}
}

func runErrFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrFlow(pass, fd.Type, fd.Body)
			// Nested literals get their own walk so their locals are
			// analyzed; enclosing-scope vars they touch are disqualified
			// as captured in the enclosing walk.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkErrFlow(pass, lit.Type, lit.Body)
				}
				return true
			})
		}
	}
}

// errEvent is one assignment to a tracked error variable.
type errEvent struct {
	pos    token.Pos
	end    token.Pos // end of the assignment statement
	rhsNil bool
}

// errVarState accumulates one variable's events across a body walk.
type errVarState struct {
	assigns []errEvent
	uses    []token.Pos
	skip    bool // captured by a closure, address taken, or range-bound
}

func checkErrFlow(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	errType := types.Universe.Lookup("error").Type()
	isErrVar := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		return ok && !v.IsField() && types.Identical(v.Type(), errType)
	}
	// A variable declared outside this body (or its own signature) is a
	// free variable of the literal being analyzed: a recursive closure
	// may read it on re-entry, so the linear assign/use model does not
	// apply. The enclosing body's walk already handles it — and skips it
	// there as closure-captured.
	local := func(obj types.Object) bool {
		return (obj.Pos() >= body.Pos() && obj.Pos() < body.End()) ||
			(obj.Pos() >= ftype.Pos() && obj.Pos() < ftype.End())
	}

	vars := map[types.Object]*errVarState{}
	state := func(obj types.Object) *errVarState {
		if vars[obj] == nil {
			vars[obj] = &errVarState{}
		}
		return vars[obj]
	}

	// Named error results: naked returns publish them.
	named := map[types.Object]bool{}
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isErrVar(obj) {
					named[obj] = true
				}
			}
		}
	}

	// One walk collecting assignments, uses, disqualifiers, and loop
	// spans. Assignment LHS idents are excluded from uses.
	lhsIdent := map[*ast.Ident]bool{}
	type span struct{ start, end token.Pos }
	var loops []span
	var nakedReturns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !isErrVar(obj) || !local(obj) {
					continue
				}
				lhsIdent[id] = true
				rhsNil := false
				if len(x.Rhs) == len(x.Lhs) {
					rhsNil = isNilIdent(x.Rhs[i])
				}
				st := state(obj)
				st.assigns = append(st.assigns, errEvent{
					pos: id.Pos(), end: x.End(), rhsNil: rhsNil,
				})
			}
		case *ast.RangeStmt:
			loops = append(loops, span{x.Pos(), x.End()})
			// Range-bound error vars (range over []error) have loop-carried
			// lifetimes this linear model does not track.
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil && isErrVar(obj) {
						state(obj).skip = true
					}
				}
			}
		case *ast.ForStmt:
			loops = append(loops, span{x.Pos(), x.End()})
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && isErrVar(obj) {
						state(obj).skip = true
					}
				}
			}
		case *ast.FuncLit:
			// Enclosing-scope error vars the literal touches may be read
			// or written at any time relative to this body's statements.
			ast.Inspect(x.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && isErrVar(obj) && obj.Pos() < x.Pos() {
						state(obj).skip = true
					}
				}
				return true
			})
		case *ast.ReturnStmt:
			if len(x.Results) == 0 {
				nakedReturns = append(nakedReturns, x.Pos())
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhsIdent[id] {
			return true
		}
		if obj := info.Uses[id]; obj != nil && isErrVar(obj) {
			state(obj).uses = append(state(obj).uses, id.Pos())
		}
		return true
	})
	for obj, st := range vars {
		if named[obj] {
			st.uses = append(st.uses, nakedReturns...)
		}
	}

	// Attribute an assignment to its innermost directly-enclosing block
	// (assignments in if-init or for-post position get none, which is
	// what the same-block overwrite rule wants: they cannot pair).
	assignBlock := func(at token.Pos) *ast.BlockStmt {
		var found *ast.BlockStmt
		ast.Inspect(body, func(n ast.Node) bool {
			blk, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for _, stmt := range blk.List {
				if as, ok := stmt.(*ast.AssignStmt); ok {
					if as.Pos() <= at && at < as.End() {
						found = blk
						return false
					}
				}
			}
			return true
		})
		return found
	}

	usedAfter := func(st *errVarState, ev errEvent) bool {
		for _, u := range st.uses {
			if u >= ev.end {
				return true
			}
			// Loop back edge: a use before the assignment but inside a
			// loop that also contains it executes after it on the next
			// iteration.
			for _, l := range loops {
				if l.start <= ev.pos && ev.pos < l.end && l.start <= u && u < l.end {
					return true
				}
			}
		}
		return false
	}
	usedBetween := func(st *errVarState, a, b errEvent) bool {
		for _, u := range st.uses {
			if u >= a.end && u < b.pos {
				return true
			}
		}
		return false
	}

	// Deterministic report order: by assignment position.
	type reportItem struct {
		pos token.Pos
		msg string
	}
	var reports []reportItem
	for obj, st := range vars {
		if st.skip || len(st.assigns) == 0 {
			continue
		}
		for i, ev := range st.assigns {
			if ev.rhsNil {
				continue
			}
			blk := assignBlock(ev.pos)
			overwritten := false
			if blk != nil {
				for j := i + 1; j < len(st.assigns); j++ {
					next := st.assigns[j]
					if next.pos <= ev.pos || assignBlock(next.pos) != blk {
						continue
					}
					inLoop := false
					for _, l := range loops {
						if l.start <= ev.pos && ev.pos < l.end {
							inLoop = true
							break
						}
					}
					if !usedBetween(st, ev, next) && !inLoop {
						reports = append(reports, reportItem{ev.pos, "error assigned to " + obj.Name() +
							" is overwritten before any check; handle or return the first error"})
						overwritten = true
					}
					break
				}
			}
			if !overwritten && !usedAfter(st, ev) {
				reports = append(reports, reportItem{ev.pos, "error assigned to " + obj.Name() +
					" is never checked (dead store); handle it or assign to _ with a comment"})
			}
		}
	}
	for i := 0; i < len(reports); i++ {
		for j := i + 1; j < len(reports); j++ {
			if reports[j].pos < reports[i].pos {
				reports[i], reports[j] = reports[j], reports[i]
			}
		}
	}
	for _, r := range reports {
		pass.Reportf(r.pos, "%s", r.msg)
	}
}
