package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobicol/internal/lint/callgraph"
)

// CtxFlowAnalyzer builds the context-propagation checker for the
// planner seam.
//
// Every path from a Planner.Plan entry to a phase-boundary span or an
// n-scaled loop must carry the incoming ctx — otherwise a cancelled
// request keeps planning (the conformance suite proves cancellation
// works dynamically for the shipped adapters; ctxflow proves nobody
// quietly breaks it). Over the functions reachable from the Plan roots,
// three patterns are flagged:
//
//   - laundering: a call to context.Background() or context.TODO()
//     replaces the caller's context with an uncancellable one;
//   - dropping: a function that takes a ctx parameter passes a context
//     not derived from it to a callee that accepts one;
//   - stranding: a function that takes a ctx parameter, starts a phase
//     span (obs Trace/Span Start/Child) or runs a loop scaled by its
//     input, yet never consults the parameter — there is no
//     cancellation point between phase boundaries.
//
// The derivation analysis is local and syntactic: a context is derived
// from ctx if its expression mentions the parameter or a variable
// assigned from one that does (context.WithCancel(ctx) chains count).
// Suppression is the standard //mdglint:ignore ctxflow <reason>.
func CtxFlowAnalyzer() *Analyzer {
	seen := map[token.Pos]bool{}
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "flag dropped or laundered ctx on paths from Planner.Plan to phase spans and n-scaled loops",
		Run:  func(pass *Pass) { runCtxFlow(pass, seen) },
	}
}

func runCtxFlow(pass *Pass, seen map[token.Pos]bool) {
	if pass.Mod == nil || pass.Mod.Graph == nil {
		return
	}
	roots := pass.Mod.PlanRoots()
	if len(roots) == 0 {
		return
	}
	g := pass.Mod.Graph
	rootNodes := make([]*callgraph.Node, 0, len(roots))
	for _, r := range roots {
		rootNodes = append(rootNodes, r.Node)
	}
	// Indirect edges are activation-gated, and the adapters the engine
	// dispatches through its run field are activated by a registration
	// init no Plan path reaches. Inits always execute, so everything
	// they make reachable is pre-activated for the Plan traversal — that
	// unlocks Plan → adapter without dragging in every signature-matched
	// closure in the module (test drivers included).
	var inits []*callgraph.Node
	for _, n := range g.Nodes() {
		if n.Decl != nil && n.Decl.Recv == nil && n.Decl.Name.Name == "init" {
			inits = append(inits, n)
		}
	}
	reachable := g.ReachableWithin(rootNodes, g.Reachable(inits, nil), nil)
	for _, n := range g.Nodes() {
		if !reachable[n] || pass.IsTestFile(n.Pos) {
			continue
		}
		pkg := pass.Mod.pkgByPath(n.PkgPath)
		if pkg == nil {
			continue
		}
		checkCtxFlow(pass, pkg, n, seen)
	}
}

func checkCtxFlow(pass *Pass, pkg *Package, n *callgraph.Node, seen map[token.Pos]bool) {
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	switch {
	case n.Decl != nil:
		body, ftype = n.Decl.Body, n.Decl.Type
	case n.Lit != nil:
		body, ftype = n.Lit.Body, n.Lit.Type
	}
	if body == nil {
		return
	}
	report := func(pos token.Pos, format string, args ...any) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		pass.Reportf(pos, format, args...)
	}

	// Laundering fires whether or not the function has its own ctx:
	// a Plan-reachable helper minting context.Background() severs the
	// request's cancellation chain either way. Nested literals are their
	// own graph nodes and get their own visit.
	inspectOwn(body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		if name := contextMint(pkg, call); name != "" {
			report(call.Pos(),
				"%s is reachable from Planner.Plan but calls context.%s(); it severs the request's cancellation chain — thread the incoming ctx through",
				n.Name, name)
		}
	})

	ctxObj := ctxParam(pkg, ftype)
	if ctxObj == nil {
		return
	}
	derived := derivedCtxVars(pkg, body, ctxObj)

	// Dropping: a context-typed argument not derived from the parameter.
	used := false
	inspectAll(body, func(node ast.Node) {
		if id, ok := node.(*ast.Ident); ok && pkg.Info.Uses[id] == ctxObj {
			used = true
		}
	})
	inspectOwn(body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, arg := range call.Args {
			if !isContextType(pkg.Info.TypeOf(arg)) || isNilIdent(arg) {
				continue
			}
			if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok && contextMint(pkg, c) != "" {
				continue // already reported as laundering
			}
			if !mentionsAny(pkg, arg, derived) {
				report(arg.Pos(),
					"%s passes a context not derived from its ctx parameter; the callee escapes the request's cancellation chain",
					n.Name)
			}
		}
	})

	// Stranding: phase spans or n-scaled loops with the ctx unread.
	if used {
		return
	}
	if pos, what := firstPhasePoint(pkg, body, ftype); pos.IsValid() {
		report(pos,
			"%s takes ctx but never consults it, yet %s; check ctx.Err() at phase boundaries so cancellation can interrupt the plan",
			n.Name, what)
	}
}

// inspectOwn walks a body without descending into nested func literals.
func inspectOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		visit(node)
		return true
	})
}

// inspectAll walks a body including nested literals (handing ctx to a
// closure counts as consulting it — the closure is its own node).
func inspectAll(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(node ast.Node) bool {
		visit(node)
		return true
	})
}

// contextMint returns "Background" or "TODO" when the call mints a
// fresh context from the context package, else "".
func contextMint(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// ctxParam returns the object of the function's first context.Context
// parameter, or nil.
func ctxParam(pkg *Package, ftype *ast.FuncType) types.Object {
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// derivedCtxVars computes the local variables holding contexts derived
// from ctxObj: the parameter itself plus anything assigned from an
// expression mentioning a derived variable (fixpoint, so WithCancel
// chains of any depth count).
func derivedCtxVars(pkg *Package, body *ast.BlockStmt, ctxObj types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{ctxObj: true}
	for {
		grew := false
		ast.Inspect(body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsDerived := false
			for _, rhs := range as.Rhs {
				if mentionsAny(pkg, rhs, derived) {
					rhsDerived = true
					break
				}
			}
			if !rhsDerived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj != nil && isContextType(obj.Type()) && !derived[obj] {
					derived[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return derived
		}
	}
}

// mentionsAny reports whether the expression mentions any object in set.
func mentionsAny(pkg *Package, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && set[pkg.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// firstPhasePoint returns the first phase-boundary span start or
// n-scaled loop in the body, with a description, or an invalid Pos.
func firstPhasePoint(pkg *Package, body *ast.BlockStmt, ftype *ast.FuncType) (token.Pos, string) {
	params := map[types.Object]bool{}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	var pos token.Pos
	var what string
	ast.Inspect(body, func(node ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			if isSpanStart(pkg, x) {
				pos, what = x.Pos(), "starts a phase span"
				return false
			}
		case *ast.RangeStmt:
			if paramScaled(pkg, x.X, params) {
				pos, what = x.Pos(), "ranges over its input"
				return false
			}
		case *ast.ForStmt:
			if x.Cond != nil && condParamScaled(pkg, x.Cond, params) {
				pos, what = x.Pos(), "loops over its input"
				return false
			}
		}
		return true
	})
	return pos, what
}

// isSpanStart recognizes a phase-boundary span: a Start or Child method
// call on an obs Trace/Span value (matched by type name so fixtures can
// model the shape without importing internal/obs).
func isSpanStart(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Start" && sel.Sel.Name != "Child") {
		return false
	}
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Trace" || name == "Span"
}

// paramScaled reports whether the expression's base variable is one of
// the function's parameters (a loop over it scales with the input).
func paramScaled(pkg *Package, e ast.Expr, params map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return params[pkg.Info.Uses[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			// len(x), cap(x): scale with their operand
			if len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return false
		default:
			return false
		}
	}
}

// condParamScaled reports whether a for condition compares against a
// parameter-derived bound (i < len(p.items), i < p.n, ...).
func condParamScaled(pkg *Package, cond ast.Expr, params map[types.Object]bool) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
		return paramScaled(pkg, bin.X, params) || paramScaled(pkg, bin.Y, params)
	}
	return false
}
