package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobicol/internal/lint/callgraph"
)

// ParPureAnalyzer builds the interprocedural par-callback purity checker.
//
// loopcapture inspects the callback literal handed to internal/par, but
// deliberately skips literals nested inside it and cannot see into named
// functions the callback calls. parpure closes that hole with the module
// call graph: from each par-callback literal it walks everything
// reachable and flags callees that write shared state —
//
//   - any reachable function or closure that assigns to a package-level
//     variable (workers race on it no matter where the write hides);
//   - a closure nested inside the callback that writes a variable
//     declared outside the callback (the shape loopcapture leaves to
//     "its own contract").
//
// Findings are reported at the offending write so the fix site is the
// finding site, and deduplicated across callbacks: a helper reached from
// five par loops is one finding, not five. Writes through pointers that
// merely point at shared state are invisible to this analysis — the race
// detector in the test suite remains the dynamic backstop.
func ParPureAnalyzer() *Analyzer {
	// One seen-set per analyzer instance: Run reuses the instance across
	// packages, so a callee reachable from callbacks in several packages
	// is still reported once.
	seen := map[parPureKey]bool{}
	return &Analyzer{
		Name: "parpure",
		Doc:  "flag callees of internal/par callbacks that write shared outer state",
		Run:  func(pass *Pass) { runParPure(pass, seen) },
	}
}

// parPureKey identifies one (callee, written variable) pair.
type parPureKey struct {
	node *callgraph.Node
	obj  *types.Var
}

func runParPure(pass *Pass, seen map[parPureKey]bool) {
	if pass.Mod == nil || pass.Mod.Graph == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkParCallees(pass, lit, seen)
				}
			}
			return true
		})
	}
}

// checkParCallees inspects everything reachable from one par-callback
// literal. The root itself is loopcapture's job and is skipped.
func checkParCallees(pass *Pass, root *ast.FuncLit, seen map[parPureKey]bool) {
	g := pass.Mod.Graph
	rootNode := g.NodeOfLit(root)
	if rootNode == nil {
		return
	}
	reachable := g.Reachable([]*callgraph.Node{rootNode}, nil)
	// Graph.Nodes() is in deterministic (package, position) order, so the
	// report order is stable run to run.
	for _, n := range g.Nodes() {
		if !reachable[n] || n == rootNode {
			continue
		}
		// Indirect resolution matches by signature alone, so ubiquitous
		// shapes like func() can pull in unrelated test helpers; test
		// files keep their race-detector contract instead.
		if pass.IsTestFile(n.Pos) {
			continue
		}
		pkg := pass.Mod.pkgByPath(n.PkgPath)
		if pkg == nil {
			continue
		}
		var body *ast.BlockStmt
		switch {
		case n.Decl != nil:
			body = n.Decl.Body
		case n.Lit != nil:
			body = n.Lit.Body
		}
		if body == nil {
			continue
		}
		nestedInRoot := n.Lit != nil && root.Pos() <= n.Pos && n.Pos < root.End()
		forEachWrite(pkg.Info, body, func(id *ast.Ident, v *types.Var) {
			key := parPureKey{node: n, obj: v}
			if seen[key] {
				return
			}
			switch {
			case isPackageLevelVar(v):
				seen[key] = true
				pass.Reportf(id.Pos(),
					"%s is reachable from a par callback and writes package-level %s; workers race on it — reduce per-worker results instead",
					n.Name, v.Name())
			case nestedInRoot && (v.Pos() < root.Pos() || v.Pos() >= root.End()):
				seen[key] = true
				pass.Reportf(id.Pos(),
					"closure inside a par callback writes %s declared outside the callback; workers race on it — keep worker state inside the callback",
					v.Name())
			}
		})
	}
}

// forEachWrite visits every assignment or ++/-- target in body whose
// base resolves to a variable, skipping nested literals (they are their
// own graph nodes and get their own visit).
func forEachWrite(info *types.Info, body *ast.BlockStmt, visit func(*ast.Ident, *types.Var)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if stmt.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range stmt.Lhs {
				if id, v := writtenVar(info, lhs); v != nil {
					visit(id, v)
				}
			}
		case *ast.IncDecStmt:
			if id, v := writtenVar(info, stmt.X); v != nil {
				visit(id, v)
			}
		}
		return true
	})
}

// writtenVar resolves the variable a write target ultimately stores
// into: the base identifier under index/field/deref chains, or the
// package-level variable named by a qualified selector.
func writtenVar(info *types.Info, expr ast.Expr) (*ast.Ident, *types.Var) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				return e, v
			}
			return nil, nil
		case *ast.SelectorExpr:
			// otherpkg.Var resolves through Sel; x.field recurses into x.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
				return e.Sel, v
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil, nil
		}
	}
}

// isPackageLevelVar reports whether v is declared at package scope.
func isPackageLevelVar(v *types.Var) bool {
	return !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe
}
