package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// determinismScoped reports whether the package must additionally be free
// of map-iteration-order dependence. These are the packages whose outputs
// feed the calibration bands in RESULTS.txt: any map range there can leak
// Go's randomized iteration order into tour construction, cover choices,
// or metric emission.
func determinismScoped(importPath string) bool {
	for _, name := range []string{"sim", "des", "wsn", "cover", "tsp", "mtsp", "shdgp", "schedule", "routing", "obs", "par"} {
		if strings.HasSuffix(importPath, "/internal/"+name) {
			return true
		}
	}
	return false
}

// timingAllowed is the wall-clock allowlist: internal/obs is the one
// package permitted to call time.Now and friends, because its contract
// confines every reading to the JSONL timing fields ("t_ns", "dur_ns")
// that obs.CanonicalLine strips before determinism comparisons. Keeping
// the allowlist to a single package means timing suppressions cannot
// spread: any other package that wants a clock must route through obs.
func timingAllowed(importPath string) bool {
	return strings.HasSuffix(importPath, "/internal/obs")
}

// DeterminismAnalyzer flags sources of run-to-run nondeterminism:
// math/rand and crypto/rand imports (all randomness must route through
// internal/rng so seeds pin every draw), wall-clock reads (time.Now and
// friends, allowlisted only in internal/obs whose trace format confines
// them to strippable timing fields), and — in the simulation-critical
// packages, internal/obs included — ranging over a map, whose iteration
// order Go deliberately randomizes.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "flag math/rand, crypto/rand, wall-clock reads, and map iteration in simulation packages",
		Run:  runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	scoped := determinismScoped(pass.Pkg.ImportPath)
	for _, file := range pass.Pkg.Files {
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(spec.Pos(),
					"import of %s: route all randomness through internal/rng so a fixed seed reproduces every draw", path)
			case "crypto/rand":
				pass.Reportf(spec.Pos(),
					"import of crypto/rand is inherently nondeterministic; simulations must use internal/rng")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if pkgName(pass, n) == "time" && !timingAllowed(pass.Pkg.ImportPath) {
					switch n.Sel.Name {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock; simulated time must come from the DES clock or round counters, and timing instrumentation must route through internal/obs (the allowlisted package)", n.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				if !scoped {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"map iteration order is randomized; sort the keys first (or suppress with proof the result is order-insensitive)")
				}
			}
			return true
		})
	}
}

// pkgName returns the package a selector expression selects from ("time"
// for time.Now), or "" when the receiver is not a package.
func pkgName(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
