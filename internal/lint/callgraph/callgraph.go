// Package callgraph builds a class-hierarchy-analysis (CHA) call graph
// over the type-checked packages of a module, for the interprocedural
// lint analyzers (alloccheck, parpure). Stdlib only, like the rest of
// the lint engine.
//
// The graph is a deliberate over-approximation — every call that *could*
// happen at runtime has an edge, some edges can never fire — because the
// analyzers built on it gate performance properties ("nothing reachable
// from the hot path allocates") where a missed edge is a missed
// regression and a spurious edge is at worst a spurious, suppressible
// finding. Three resolution strategies, from precise to best-effort:
//
//   - Static calls: a call whose callee resolves to a named function or
//     a method on a concrete receiver gets exactly one edge.
//   - Interface dispatch: a call through an interface method gets one
//     edge per named type in the module that implements the interface
//     (classic CHA over the module's method sets). Implementations
//     outside the module are invisible — the analyzers only reason
//     about module code anyway.
//   - Function values: a named function or func literal whose value
//     escapes (used anywhere other than direct call position) is
//     recorded as address-taken; an indirect call through an expression
//     of function type gets an edge to every address-taken function
//     with an identical signature.
//
// A func literal additionally gets a *creation* edge from the function
// that syntactically contains it: once the creator runs, the closure
// exists and may be invoked by whoever receives it, so for reachability
// purposes creating a closure is treated as (potentially) calling it.
// This is what makes callbacks handed to internal/par chunk primitives
// reachable from the planners that spawn them.
//
// Reachability applies one rapid-type-analysis-style refinement on top
// of the edges: an edge that exists only because of a signature match
// (the third strategy above) is followed only once some function that
// actually takes the target's address is itself reachable. Without
// this, a single hot indirect call of a common shape like func(int)
// would drag every same-signature closure in the module into the hot
// set, however unrelated. The trade-off: a function value stashed by
// cold setup code and invoked from hot code is missed — acceptable for
// a lint whose edges are otherwise over-approximate, and the escape
// ratchet (cmd/mdgescape) catches what the static view cannot see.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pkg is one type-checked package presented to Build. It mirrors the
// lint engine's package shape without importing it (the lint package
// imports this one).
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
}

// externalTestFile reports whether file belongs to an external test
// package (package foo_test). The lint loader skips such files — they
// are a separate compilation unit — but hand-assembled fixture packages
// (testdata modules in tests) can still carry them, and indexing their
// closures would give the graph nodes the analyzers then attribute to
// the package under test. Build skips them for consistency with
// lint.LoadModule.
func externalTestFile(file *ast.File) bool {
	return strings.HasSuffix(file.Name.Name, "_test")
}

// Node is one function in the graph: a declared function or method
// (Obj non-nil) or a func literal (Lit non-nil).
type Node struct {
	Obj     *types.Func   // declared function/method; nil for literals
	Lit     *ast.FuncLit  // func literal; nil for declared functions
	Decl    *ast.FuncDecl // declaration, when Obj is from this module
	PkgPath string        // import path of the package containing the body
	Name    string        // qualified display name, e.g. pkg.(*T).M or pkg.F$lit@42
	Pos     token.Pos

	calls []*Node
	// activators are the functions whose execution makes this node's
	// value available — the enclosing function for a literal, the
	// address-taking functions for a named function.
	activators []*Node
	// onlyIndirect marks callees reachable from this node solely through
	// signature-match resolution; Reachable gates them on activation.
	onlyIndirect map[*Node]bool
}

// Calls returns the node's outgoing edges in deterministic order.
func (n *Node) Calls() []*Node { return n.calls }

// String returns the display name.
func (n *Node) String() string { return n.Name }

// Graph is the module call graph.
type Graph struct {
	nodes []*Node
	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	sites map[*ast.CallExpr][]*Node
}

// TargetsOf returns the module-internal callees a specific call
// expression may dispatch to, in deterministic (package, position)
// order: one node for a static call, every CHA implementation for an
// interface call, every signature-matched address-taken function for an
// indirect call. Nil for calls outside the built packages, calls to
// non-module functions, builtins, and conversions. Unlike Node.Calls,
// which aggregates per function, this is per call site — the dataflow
// engine uses it to map arguments to callee parameters.
func (g *Graph) TargetsOf(call *ast.CallExpr) []*Node { return g.sites[call] }

// Nodes returns every node in deterministic (package, position) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodeOf returns the node for a declared function or method, or nil if
// the function has no body in the module.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.byObj[obj] }

// NodeOfLit returns the node for a func literal, or nil for literals
// outside the packages the graph was built from.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Reachable returns the set of nodes reachable from roots, roots
// included. A non-nil stop predicate marks boundary nodes: a node for
// which stop returns true is neither entered nor expanded, so nothing
// is reachable *through* it.
//
// Signature-matched (indirect) edges are activation-gated: they are
// followed only once one of the target's address-taking functions is
// itself reachable. The traversal therefore runs to a fixpoint —
// reaching an activator can unlock indirect targets deferred earlier.
// The result is a monotone least fixpoint, so it is independent of
// traversal order.
func (g *Graph) Reachable(roots []*Node, stop func(*Node) bool) map[*Node]bool {
	return g.ReachableWithin(roots, nil, stop)
}

// ReachableWithin is Reachable with a pre-activated set: a node in pre
// counts as an activator for indirect edges without being entered or
// expanded itself (unless the traversal reaches it through edges).
// The canonical pre set is Reachable over the module's init functions —
// inits always execute, so a planner registered from init is dispatchable
// through an indirect call even though no Plan path reaches the init.
func (g *Graph) ReachableWithin(roots []*Node, pre map[*Node]bool, stop func(*Node) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	blocked := func(n *Node) bool { return n == nil || (stop != nil && stop(n)) }
	stack := make([]*Node, 0, len(roots))
	push := func(n *Node) {
		if blocked(n) || seen[n] {
			return
		}
		seen[n] = true
		stack = append(stack, n)
	}
	activated := func(n *Node) bool {
		for _, a := range n.activators {
			if seen[a] || pre[a] {
				return true
			}
		}
		return false
	}
	for _, r := range roots {
		push(r)
	}
	// pending holds indirect targets whose activators were all
	// unreachable when the edge was first seen.
	pending := make(map[*Node]bool)
	for {
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range n.calls {
				if n.onlyIndirect[c] && !activated(c) {
					if !blocked(c) && !seen[c] {
						pending[c] = true
					}
					continue
				}
				push(c)
			}
		}
		progressed := false
		for c := range pending {
			if seen[c] {
				delete(pending, c)
				continue
			}
			if activated(c) {
				delete(pending, c)
				push(c)
				progressed = true
			}
		}
		if !progressed {
			return seen
		}
	}
}

// builder accumulates graph state across the two build phases.
type builder struct {
	graph *Graph
	// methodImpls maps a method name to every concrete implementation
	// declared in the module, for CHA interface-dispatch expansion.
	methodImpls map[string][]*types.Func
	// namedTypes is every non-interface named type declared in the
	// module, the CHA candidate universe.
	namedTypes []*types.Named
	// addrTaken is every function whose value escapes, with the
	// signature it escapes at (receivers already bound for methods).
	addrTaken []addrTakenFn
	// pending indirect calls awaiting addrTaken resolution.
	indirect []indirectCall
	// callFuns marks identifiers that are the callee operand of a call
	// expression, so a direct call does not count as taking the
	// function's address.
	callFuns map[*ast.Ident]bool
}

type addrTakenFn struct {
	node *Node
	sig  *types.Signature
}

type indirectCall struct {
	from *Node
	sig  *types.Signature
	site *ast.CallExpr
}

// Build constructs the call graph for the given packages. Packages must
// be supplied in a deterministic order (the lint loader's topological
// order works); node and edge order then follow from source positions.
// Incomplete type information (packages that carried load diagnostics)
// degrades resolution — calls whose callee cannot be resolved simply
// get no edge — but never fails the build.
func Build(pkgs []Pkg) *Graph {
	b := &builder{
		graph: &Graph{
			byObj: map[*types.Func]*Node{},
			byLit: map[*ast.FuncLit]*Node{},
			sites: map[*ast.CallExpr][]*Node{},
		},
		methodImpls: map[string][]*types.Func{},
		callFuns:    map[*ast.Ident]bool{},
	}
	for _, pkg := range pkgs {
		b.collectNodes(pkg)
		b.collectTypes(pkg)
	}
	for _, pkg := range pkgs {
		b.collectEdges(pkg)
	}
	b.resolveIndirect()
	for _, n := range b.graph.nodes {
		sortEdges(n)
	}
	for site, targets := range b.graph.sites {
		b.graph.sites[site] = sortTargets(targets)
	}
	return b.graph
}

// collectNodes registers a node per declared function and func literal.
func (b *builder) collectNodes(pkg Pkg) {
	for _, file := range pkg.Files {
		if externalTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{
				Obj:     obj,
				Decl:    fd,
				PkgPath: pkg.Path,
				Name:    funcDisplayName(pkg.Path, obj),
				Pos:     fd.Pos(),
			}
			b.graph.nodes = append(b.graph.nodes, n)
			b.graph.byObj[obj] = n
		}
		ast.Inspect(file, func(node ast.Node) bool {
			lit, ok := node.(*ast.FuncLit)
			if !ok {
				return true
			}
			pos := pkg.Fset.Position(lit.Pos())
			n := &Node{
				Lit:     lit,
				PkgPath: pkg.Path,
				Name:    fmt.Sprintf("%s.func@%d:%d", pkg.Path, pos.Line, pos.Column),
				Pos:     lit.Pos(),
			}
			b.graph.nodes = append(b.graph.nodes, n)
			b.graph.byLit[lit] = n
			return true
		})
	}
}

// collectTypes records the module's named types and their method
// implementations for CHA expansion of interface calls.
func (b *builder) collectTypes(pkg Pkg) {
	for ident, obj := range pkg.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() || ident.Name == "_" {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		b.namedTypes = append(b.namedTypes, named)
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			b.methodImpls[m.Name()] = append(b.methodImpls[m.Name()], m)
		}
	}
	// Defs iteration order is random; keep the CHA universe sorted so
	// edge construction stays deterministic.
	sort.Slice(b.namedTypes, func(i, j int) bool {
		return b.namedTypes[i].Obj().Pos() < b.namedTypes[j].Obj().Pos()
	})
	for _, impls := range b.methodImpls {
		sort.Slice(impls, func(i, j int) bool { return impls[i].Pos() < impls[j].Pos() })
	}
}

// enclosing tracks the current function node while walking a file.
type enclosing struct {
	b    *builder
	pkg  Pkg
	node *Node
}

// collectEdges walks every function body, adding call, creation, and
// address-taken records.
func (b *builder) collectEdges(pkg Pkg) {
	for _, file := range pkg.Files {
		if externalTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			n := b.graph.byObj[obj]
			if n == nil {
				continue
			}
			(&enclosing{b: b, pkg: pkg, node: n}).walkBody(fd.Body)
		}
	}
}

// walkBody visits one function body. Nested literals get a creation
// edge and are then walked under their own node, so each node's edges
// describe exactly its own body.
func (e *enclosing) walkBody(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch expr := n.(type) {
		case *ast.FuncLit:
			lit := e.b.graph.byLit[expr]
			if lit != nil {
				e.node.calls = append(e.node.calls, lit)
				(&enclosing{b: e.b, pkg: e.pkg, node: lit}).walkBody(expr.Body)
				e.noteLitValue(expr, lit)
			}
			return false
		case *ast.CallExpr:
			e.call(expr)
			return true
		case *ast.Ident:
			e.noteFuncValue(expr)
			return true
		}
		return true
	})
}

// call resolves one call expression to edges.
func (e *enclosing) call(call *ast.CallExpr) {
	info := e.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Type conversions and builtins are not calls.
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}

	switch f := fun.(type) {
	case *ast.FuncLit:
		// Immediately invoked literal: the creation edge added when the
		// literal is visited already covers it, but the site target is
		// recorded so per-call-site consumers resolve it too.
		if lit := e.b.graph.byLit[f]; lit != nil {
			e.b.graph.sites[call] = append(e.b.graph.sites[call], lit)
		}
		return
	case *ast.Ident:
		e.b.callFuns[f] = true
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			e.edgeTo(call, obj)
			return
		case *types.Var:
			e.indirectThrough(info, call, fun)
			return
		}
	case *ast.SelectorExpr:
		e.b.callFuns[f.Sel] = true
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface := interfaceUnder(recv); iface != nil {
				e.chaEdges(call, iface, f.Sel)
				return
			}
			if m, ok := info.Uses[f.Sel].(*types.Func); ok {
				e.edgeTo(call, m)
			}
			return
		}
		// Package-qualified function, or a struct field of function type.
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			e.edgeTo(call, obj)
			return
		case *types.Var:
			e.indirectThrough(info, call, fun)
			return
		}
	}
	// Anything else of function type (call of a call result, index into
	// a slice of funcs, ...) is an indirect call.
	e.indirectThrough(info, call, fun)
}

// edgeTo adds an edge to a declared function when its body is in the
// module; callees outside the module have no node and no edge.
func (e *enclosing) edgeTo(call *ast.CallExpr, obj *types.Func) {
	if target := e.b.graph.byObj[obj]; target != nil {
		e.node.calls = append(e.node.calls, target)
		if call != nil {
			e.b.graph.sites[call] = append(e.b.graph.sites[call], target)
		}
	}
}

// chaEdges adds one edge per module type implementing the interface
// with a matching method — classic class-hierarchy analysis. The
// implementation is resolved through the type's full method set, not
// just its declared methods, so a method promoted from an embedded
// struct lands on the declaring type's body.
func (e *enclosing) chaEdges(call *ast.CallExpr, iface *types.Interface, sel *ast.Ident) {
	var mpkg *types.Package
	if m, ok := e.pkg.Info.Uses[sel].(*types.Func); ok {
		mpkg = m.Pkg()
	}
	for _, named := range e.b.namedTypes {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(named, true, mpkg, sel.Name)
		if impl, ok := obj.(*types.Func); ok {
			e.edgeTo(call, impl)
		}
	}
}

// indirectThrough records a call through a function-typed expression for
// later resolution against the address-taken set.
func (e *enclosing) indirectThrough(info *types.Info, call *ast.CallExpr, fun ast.Expr) {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	e.b.indirect = append(e.b.indirect, indirectCall{from: e.node, sig: sig, site: call})
}

// noteFuncValue records a named function used as a value (any mention
// outside direct call position) as address-taken.
func (e *enclosing) noteFuncValue(id *ast.Ident) {
	obj, ok := e.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if e.inCallPosition(id) {
		return
	}
	node := e.b.graph.byObj[obj]
	if node == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() != nil {
		// A method value binds the receiver: its value type drops it.
		sig = types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	}
	node.activators = append(node.activators, e.node)
	e.b.addrTaken = append(e.b.addrTaken, addrTakenFn{node: node, sig: sig})
}

// noteLitValue records an escaping func literal as address-taken so
// indirect calls with its signature reach it.
func (e *enclosing) noteLitValue(lit *ast.FuncLit, node *Node) {
	tv, ok := e.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
		node.activators = append(node.activators, e.node)
		e.b.addrTaken = append(e.b.addrTaken, addrTakenFn{node: node, sig: sig})
	}
}

// inCallPosition reports whether id is the callee operand of a call.
// ast.Inspect visits a call expression before its children, so by the
// time the ident itself is visited, call() has already marked it.
func (e *enclosing) inCallPosition(id *ast.Ident) bool {
	return e.b.callFuns[id]
}

// resolveIndirect adds edges from every indirect call site to every
// address-taken function with an identical signature. Edges that exist
// only through this resolution are marked so Reachable can gate them on
// a reachable activator.
func (b *builder) resolveIndirect() {
	static := make(map[*Node]map[*Node]bool)
	for _, n := range b.graph.nodes {
		if len(n.calls) == 0 {
			continue
		}
		set := make(map[*Node]bool, len(n.calls))
		for _, c := range n.calls {
			set[c] = true
		}
		static[n] = set
	}
	for _, call := range b.indirect {
		for _, at := range b.addrTaken {
			if types.Identical(call.sig, at.sig) {
				call.from.calls = append(call.from.calls, at.node)
				if call.site != nil {
					b.graph.sites[call.site] = append(b.graph.sites[call.site], at.node)
				}
				if !static[call.from][at.node] {
					if call.from.onlyIndirect == nil {
						call.from.onlyIndirect = make(map[*Node]bool)
					}
					call.from.onlyIndirect[at.node] = true
				}
			}
		}
	}
}

// sortEdges dedups and orders a node's edges by (package, position).
func sortEdges(n *Node) {
	if len(n.calls) < 2 {
		return
	}
	sort.Slice(n.calls, func(i, j int) bool {
		a, c := n.calls[i], n.calls[j]
		if a.PkgPath != c.PkgPath {
			return a.PkgPath < c.PkgPath
		}
		if a.Pos != c.Pos {
			return a.Pos < c.Pos
		}
		return a.Name < c.Name
	})
	out := n.calls[:1]
	for _, c := range n.calls[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	n.calls = out
}

// sortTargets dedups and orders one call site's resolved targets.
func sortTargets(targets []*Node) []*Node {
	if len(targets) < 2 {
		return targets
	}
	sort.Slice(targets, func(i, j int) bool {
		a, c := targets[i], targets[j]
		if a.PkgPath != c.PkgPath {
			return a.PkgPath < c.PkgPath
		}
		if a.Pos != c.Pos {
			return a.Pos < c.Pos
		}
		return a.Name < c.Name
	})
	out := targets[:1]
	for _, c := range targets[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// interfaceUnder returns the interface type under t (through pointers),
// or nil when t is concrete.
func interfaceUnder(t types.Type) *types.Interface {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// funcDisplayName renders pkg.F, pkg.(T).M, or pkg.(*T).M.
func funcDisplayName(pkgPath string, obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgPath + "." + obj.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		ptr = "*"
		recv = p.Elem()
	}
	name := recv.String()
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fmt.Sprintf("%s.(%s%s).%s", pkgPath, ptr, name, obj.Name())
}
