package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFrom type-checks one in-memory file and builds its call graph.
func buildFrom(t *testing.T, src string) (*Graph, *Pkg) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &Pkg{Path: "p", Fset: fset, Files: []*ast.File{file}, Info: info}
	return Build([]Pkg{*pkg}), pkg
}

// node finds a graph node by display-name substring.
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if strings.Contains(n.Name, name) {
			return n
		}
	}
	t.Fatalf("no node matching %q in %v", name, g.Nodes())
	return nil
}

// calls reports whether from has a direct edge to a node matching name.
func calls(from *Node, name string) bool {
	for _, c := range from.Calls() {
		if strings.Contains(c.Name, name) {
			return true
		}
	}
	return false
}

func TestStaticCallEdges(t *testing.T) {
	g, _ := buildFrom(t, `package p

func a() { b(); c(3) }
func b() {}
func c(int) {}
func unrelated() {}
`)
	na := node(t, g, "p.a")
	if !calls(na, "p.b") || !calls(na, "p.c") {
		t.Errorf("a must call b and c; edges: %v", na.Calls())
	}
	if calls(na, "unrelated") {
		t.Errorf("spurious edge a -> unrelated")
	}
}

func TestMethodCallEdges(t *testing.T) {
	g, _ := buildFrom(t, `package p

type T struct{ n int }

func (t *T) M() int { return t.helper() }
func (t *T) helper() int { return t.n }

func use(t *T) int { return t.M() }
`)
	if !calls(node(t, g, "(*T).M"), "helper") {
		t.Error("method body edge M -> helper missing")
	}
	if !calls(node(t, g, "p.use"), "(*T).M") {
		t.Error("concrete method call edge use -> M missing")
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	g, _ := buildFrom(t, `package p

type runner interface{ Run() }

type fast struct{}
func (fast) Run() {}

type slow struct{}
func (*slow) Run() {}

type bystander struct{}
func (bystander) Walk() {}

func dispatch(r runner) { r.Run() }
`)
	nd := node(t, g, "dispatch")
	if !calls(nd, "(fast).Run") {
		t.Errorf("CHA edge dispatch -> fast.Run missing; edges: %v", nd.Calls())
	}
	if !calls(nd, "(*slow).Run") {
		t.Errorf("CHA edge dispatch -> (*slow).Run missing; edges: %v", nd.Calls())
	}
	if calls(nd, "bystander") {
		t.Error("spurious CHA edge to a non-implementer")
	}
}

func TestFunctionValueResolution(t *testing.T) {
	g, _ := buildFrom(t, `package p

func apply(f func(int) int, x int) int { return f(x) }

func double(x int) int { return 2 * x }
func negate(x int) int { return -x }
func otherShape(x, y int) int { return x + y }

func use() int { return apply(double, 1) + apply(negate, 2) }
`)
	na := node(t, g, "apply")
	if !calls(na, "double") || !calls(na, "negate") {
		t.Errorf("indirect call must resolve to the address-taken matches; edges: %v", na.Calls())
	}
	if calls(na, "otherShape") {
		t.Error("indirect resolution matched a different signature")
	}
}

func TestClosureCreationEdgeAndReachability(t *testing.T) {
	g, _ := buildFrom(t, `package p

func spawn(fn func()) { fn() }

func parent() {
	n := 0
	spawn(func() { n++; leaf() })
}

func leaf() {}
func island() {}
`)
	np := node(t, g, "parent")
	if !calls(np, "func@") {
		t.Errorf("creation edge parent -> literal missing; edges: %v", np.Calls())
	}
	reach := g.Reachable([]*Node{np}, nil)
	if !reach[node(t, g, "leaf")] {
		t.Error("leaf must be reachable from parent through the closure")
	}
	if reach[node(t, g, "island")] {
		t.Error("island must not be reachable")
	}
}

// TestIndirectReachabilityGatedOnActivation pins the RTA refinement:
// signature-matched edges contribute to reachability only when some
// function taking the target's address is itself reachable.
func TestIndirectReachabilityGatedOnActivation(t *testing.T) {
	g, _ := buildFrom(t, `package p

func invoke(f func(int) int, x int) int { return f(x) }

func hotUse() int { return invoke(double, 1) }
func coldUse() int { return invoke(negate, 2) }

func double(x int) int { return 2 * x }
func negate(x int) int { return -x }
`)
	ni := node(t, g, "invoke")
	if !calls(ni, "double") || !calls(ni, "negate") {
		t.Fatalf("edges must over-approximate to both targets; got %v", ni.Calls())
	}
	reach := g.Reachable([]*Node{node(t, g, "hotUse")}, nil)
	if !reach[node(t, g, "p.double")] {
		t.Error("double's address is taken in hotUse; it must be reachable")
	}
	if reach[node(t, g, "p.negate")] {
		t.Error("negate's only activator is coldUse; it must not be reachable from hotUse")
	}
}

func TestReachableStopBoundary(t *testing.T) {
	g, _ := buildFrom(t, `package p

func a() { b() }
func b() { c() }
func c() {}
`)
	nb := node(t, g, "p.b")
	reach := g.Reachable([]*Node{node(t, g, "p.a")}, func(n *Node) bool { return n == nb })
	if reach[nb] || reach[node(t, g, "p.c")] {
		t.Errorf("stop node and everything behind it must be excluded; got %v", reach)
	}
	if !reach[node(t, g, "p.a")] {
		t.Error("root itself must be reachable")
	}
}

func TestDeterministicEdgeOrder(t *testing.T) {
	src := `package p

func hub() { z(); a(); m(); a() }
func a() {}
func m() {}
func z() {}
`
	g1, _ := buildFrom(t, src)
	g2, _ := buildFrom(t, src)
	e1, e2 := node(t, g1, "hub").Calls(), node(t, g2, "hub").Calls()
	if len(e1) != 3 || len(e2) != 3 {
		t.Fatalf("duplicate edges not collapsed: %v / %v", e1, e2)
	}
	for i := range e1 {
		if e1[i].Name != e2[i].Name {
			t.Fatalf("edge order differs between builds: %v vs %v", e1, e2)
		}
	}
	for i := 1; i < len(e1); i++ {
		if e1[i-1].Pos >= e1[i].Pos {
			t.Errorf("edges not in position order: %v", e1)
		}
	}
}
