package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFrom type-checks one in-memory file and builds its call graph.
func buildFrom(t *testing.T, src string) (*Graph, *Pkg) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &Pkg{Path: "p", Fset: fset, Files: []*ast.File{file}, Info: info}
	return Build([]Pkg{*pkg}), pkg
}

// node finds a graph node by display-name substring.
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if strings.Contains(n.Name, name) {
			return n
		}
	}
	t.Fatalf("no node matching %q in %v", name, g.Nodes())
	return nil
}

// calls reports whether from has a direct edge to a node matching name.
func calls(from *Node, name string) bool {
	for _, c := range from.Calls() {
		if strings.Contains(c.Name, name) {
			return true
		}
	}
	return false
}

func TestStaticCallEdges(t *testing.T) {
	g, _ := buildFrom(t, `package p

func a() { b(); c(3) }
func b() {}
func c(int) {}
func unrelated() {}
`)
	na := node(t, g, "p.a")
	if !calls(na, "p.b") || !calls(na, "p.c") {
		t.Errorf("a must call b and c; edges: %v", na.Calls())
	}
	if calls(na, "unrelated") {
		t.Errorf("spurious edge a -> unrelated")
	}
}

func TestMethodCallEdges(t *testing.T) {
	g, _ := buildFrom(t, `package p

type T struct{ n int }

func (t *T) M() int { return t.helper() }
func (t *T) helper() int { return t.n }

func use(t *T) int { return t.M() }
`)
	if !calls(node(t, g, "(*T).M"), "helper") {
		t.Error("method body edge M -> helper missing")
	}
	if !calls(node(t, g, "p.use"), "(*T).M") {
		t.Error("concrete method call edge use -> M missing")
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	g, _ := buildFrom(t, `package p

type runner interface{ Run() }

type fast struct{}
func (fast) Run() {}

type slow struct{}
func (*slow) Run() {}

type bystander struct{}
func (bystander) Walk() {}

func dispatch(r runner) { r.Run() }
`)
	nd := node(t, g, "dispatch")
	if !calls(nd, "(fast).Run") {
		t.Errorf("CHA edge dispatch -> fast.Run missing; edges: %v", nd.Calls())
	}
	if !calls(nd, "(*slow).Run") {
		t.Errorf("CHA edge dispatch -> (*slow).Run missing; edges: %v", nd.Calls())
	}
	if calls(nd, "bystander") {
		t.Error("spurious CHA edge to a non-implementer")
	}
}

func TestFunctionValueResolution(t *testing.T) {
	g, _ := buildFrom(t, `package p

func apply(f func(int) int, x int) int { return f(x) }

func double(x int) int { return 2 * x }
func negate(x int) int { return -x }
func otherShape(x, y int) int { return x + y }

func use() int { return apply(double, 1) + apply(negate, 2) }
`)
	na := node(t, g, "apply")
	if !calls(na, "double") || !calls(na, "negate") {
		t.Errorf("indirect call must resolve to the address-taken matches; edges: %v", na.Calls())
	}
	if calls(na, "otherShape") {
		t.Error("indirect resolution matched a different signature")
	}
}

func TestClosureCreationEdgeAndReachability(t *testing.T) {
	g, _ := buildFrom(t, `package p

func spawn(fn func()) { fn() }

func parent() {
	n := 0
	spawn(func() { n++; leaf() })
}

func leaf() {}
func island() {}
`)
	np := node(t, g, "parent")
	if !calls(np, "func@") {
		t.Errorf("creation edge parent -> literal missing; edges: %v", np.Calls())
	}
	reach := g.Reachable([]*Node{np}, nil)
	if !reach[node(t, g, "leaf")] {
		t.Error("leaf must be reachable from parent through the closure")
	}
	if reach[node(t, g, "island")] {
		t.Error("island must not be reachable")
	}
}

// TestIndirectReachabilityGatedOnActivation pins the RTA refinement:
// signature-matched edges contribute to reachability only when some
// function taking the target's address is itself reachable.
func TestIndirectReachabilityGatedOnActivation(t *testing.T) {
	g, _ := buildFrom(t, `package p

func invoke(f func(int) int, x int) int { return f(x) }

func hotUse() int { return invoke(double, 1) }
func coldUse() int { return invoke(negate, 2) }

func double(x int) int { return 2 * x }
func negate(x int) int { return -x }
`)
	ni := node(t, g, "invoke")
	if !calls(ni, "double") || !calls(ni, "negate") {
		t.Fatalf("edges must over-approximate to both targets; got %v", ni.Calls())
	}
	reach := g.Reachable([]*Node{node(t, g, "hotUse")}, nil)
	if !reach[node(t, g, "p.double")] {
		t.Error("double's address is taken in hotUse; it must be reachable")
	}
	if reach[node(t, g, "p.negate")] {
		t.Error("negate's only activator is coldUse; it must not be reachable from hotUse")
	}
}

func TestReachableStopBoundary(t *testing.T) {
	g, _ := buildFrom(t, `package p

func a() { b() }
func b() { c() }
func c() {}
`)
	nb := node(t, g, "p.b")
	reach := g.Reachable([]*Node{node(t, g, "p.a")}, func(n *Node) bool { return n == nb })
	if reach[nb] || reach[node(t, g, "p.c")] {
		t.Errorf("stop node and everything behind it must be excluded; got %v", reach)
	}
	if !reach[node(t, g, "p.a")] {
		t.Error("root itself must be reachable")
	}
}

func TestDeterministicEdgeOrder(t *testing.T) {
	src := `package p

func hub() { z(); a(); m(); a() }
func a() {}
func m() {}
func z() {}
`
	g1, _ := buildFrom(t, src)
	g2, _ := buildFrom(t, src)
	e1, e2 := node(t, g1, "hub").Calls(), node(t, g2, "hub").Calls()
	if len(e1) != 3 || len(e2) != 3 {
		t.Fatalf("duplicate edges not collapsed: %v / %v", e1, e2)
	}
	for i := range e1 {
		if e1[i].Name != e2[i].Name {
			t.Fatalf("edge order differs between builds: %v vs %v", e1, e2)
		}
	}
	for i := 1; i < len(e1); i++ {
		if e1[i-1].Pos >= e1[i].Pos {
			t.Errorf("edges not in position order: %v", e1)
		}
	}
}

// TestExternalTestFilesExcluded pins consistency with lint.LoadModule:
// files in an external test package (package foo_test) contribute no
// nodes or edges, even when hand-assembled fixtures carry them in the
// same Pkg.
func TestExternalTestFilesExcluded(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return f
	}
	mainFile := parse("p.go", `package p

func Real() { helper() }
func helper() {}
`)
	extFile := parse("p_ext_test.go", `package p_test

func Shadow() {
	hook := func() { Shadow() }
	hook()
}
`)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{mainFile}, info); err != nil {
		t.Fatalf("typecheck main: %v", err)
	}
	if _, err := (&types.Config{}).Check("p_test", fset, []*ast.File{extFile}, info); err != nil {
		t.Fatalf("typecheck external test: %v", err)
	}
	g := Build([]Pkg{{Path: "p", Fset: fset, Files: []*ast.File{mainFile, extFile}, Info: info}})
	for _, n := range g.Nodes() {
		if strings.Contains(n.Name, "Shadow") || n.Lit != nil {
			t.Errorf("external test file leaked node %s into the graph", n.Name)
		}
	}
	if !calls(node(t, g, "p.Real"), "helper") {
		t.Error("regular file's edges must survive the exclusion")
	}
}

// TestMethodValueEdges pins method-value resolution: t.M passed as a
// bare function value binds its receiver, so an indirect call of the
// receiver-less signature reaches the method, gated on the taker.
func TestMethodValueEdges(t *testing.T) {
	g, _ := buildFrom(t, `package p

type T struct{ n int }

func (t *T) M() int { return t.n }
func (t *T) other(int) int { return 0 }

func invoke(f func() int) int { return f() }

func use(t *T) int { return invoke(t.M) }
`)
	ni := node(t, g, "invoke")
	if !calls(ni, "(*T).M") {
		t.Errorf("indirect call must resolve to the bound method value; edges: %v", ni.Calls())
	}
	if calls(ni, "other") {
		t.Error("receiver-bound signature matched a method of a different shape")
	}
	reach := g.Reachable([]*Node{node(t, g, "p.use")}, nil)
	if !reach[node(t, g, "(*T).M")] {
		t.Error("use takes t.M's value, so M must be reachable from use")
	}
}

// TestEmbeddedInterfaceDispatch pins CHA through interface embedding: a
// call on a method inherited from an embedded interface fans out to the
// implementers, and an implementation promoted from an embedded struct
// resolves to the declaring type's method body.
func TestEmbeddedInterfaceDispatch(t *testing.T) {
	g, _ := buildFrom(t, `package p

type closer interface{ Close() }

type resource interface {
	closer
	Open()
}

type file struct{}

func (*file) Open()  {}
func (*file) Close() {}

type base struct{}

func (base) Close() {}

type wrapped struct{ base }

func (wrapped) Open() {}

func shutdown(r resource) { r.Close() }
`)
	ns := node(t, g, "shutdown")
	if !calls(ns, "(*file).Close") {
		t.Errorf("embedded-interface method must dispatch to direct implementers; edges: %v", ns.Calls())
	}
	if !calls(ns, "(base).Close") {
		t.Errorf("promoted implementation must resolve to the declaring type's body; edges: %v", ns.Calls())
	}
	if calls(ns, "Open") {
		t.Error("dispatch expanded the wrong method name")
	}
}

// TestReachableWithinPreActivatedSet pins the pre-activation seam used
// by ctxflow: a registration function outside the traversal can still
// unlock indirect targets it activates.
func TestReachableWithinPreActivatedSet(t *testing.T) {
	g, _ := buildFrom(t, `package p

var sink func(int) int

func register() { sink = double }

func invoke(f func(int) int, x int) int { return f(x) }

func double(x int) int { return 2 * x }
`)
	ni := node(t, g, "invoke")
	nd := node(t, g, "p.double")
	if !calls(ni, "double") {
		t.Fatalf("indirect edge invoke -> double missing; edges: %v", ni.Calls())
	}
	if g.Reachable([]*Node{ni}, nil)[nd] {
		t.Error("without pre-activation, double's only taker is unreachable")
	}
	pre := map[*Node]bool{node(t, g, "register"): true}
	reach := g.ReachableWithin([]*Node{ni}, pre, nil)
	if !reach[nd] {
		t.Error("pre-activated register must unlock the indirect edge to double")
	}
	if reach[node(t, g, "register")] {
		t.Error("pre-set members are activators, not roots; register must not be entered")
	}
}

// TestSiteTargetsAndLookups pins the per-call-site resolution surface
// the dataflow engine consumes: TargetsOf for static calls, indirect
// calls through struct fields, immediately invoked literals, and nil
// for conversions — plus the NodeOf/NodeOfLit/String lookups.
func TestSiteTargetsAndLookups(t *testing.T) {
	g, pkg := buildFrom(t, `package p

type h struct{ fn func(int) int }

func scale(x int) int { return x * 2 }

func run(hh h, x int) int {
	y := func(v int) int { return v + 1 }(x)
	return hh.fn(x) + scale(y) + int(int32(x))
}

func wire() h { return h{fn: scale} }
`)
	var lit *ast.FuncLit
	calls := map[string]*ast.CallExpr{}
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			lit = e
		case *ast.CallExpr:
			switch f := e.Fun.(type) {
			case *ast.Ident:
				calls[f.Name] = e
			case *ast.SelectorExpr:
				calls[f.Sel.Name] = e
			case *ast.FuncLit:
				calls["lit"] = e
			}
		}
		return true
	})

	scaleNode := node(t, g, "p.scale")
	if scaleNode.Obj == nil || g.NodeOf(scaleNode.Obj) != scaleNode {
		t.Error("NodeOf must round-trip the declared function")
	}
	if scaleNode.String() != scaleNode.Name {
		t.Errorf("String() = %q, want the display name %q", scaleNode.String(), scaleNode.Name)
	}
	litNode := g.NodeOfLit(lit)
	if litNode == nil {
		t.Fatal("NodeOfLit must resolve the literal")
	}
	if got := g.TargetsOf(calls["lit"]); len(got) != 1 || got[0] != litNode {
		t.Errorf("immediately invoked literal targets = %v, want the literal node", got)
	}
	if got := g.TargetsOf(calls["scale"]); len(got) != 1 || got[0] != scaleNode {
		t.Errorf("static call targets = %v, want exactly scale", got)
	}
	fnTargets := g.TargetsOf(calls["fn"])
	foundScale := false
	for _, n := range fnTargets {
		if n == scaleNode {
			foundScale = true
		}
	}
	if !foundScale {
		t.Errorf("field-typed indirect call must target the address-taken scale; got %v", fnTargets)
	}
	if got := g.TargetsOf(calls["int"]); got != nil {
		t.Errorf("conversion has targets %v, want nil", got)
	}
}
