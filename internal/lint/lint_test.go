package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one testdata file as a standalone
// package with the given import path (the path controls analyzer scoping).
func loadFixture(t *testing.T, filename, importPath string) *Package {
	t.Helper()
	path := filepath.Join("testdata", filename)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return &Package{
		Dir:        "testdata",
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{file},
		Types:      tpkg,
		Info:       info,
	}
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// checkFixture runs one analyzer over a fixture and compares the surviving
// findings against the fixture's // want "substring" annotations: every
// want line must produce a matching finding, and no finding may land on a
// line without a want.
func checkFixture(t *testing.T, a *Analyzer, filename, importPath string) {
	t.Helper()
	pkg := loadFixture(t, filename, importPath)
	findings := Run([]*Package{pkg}, []*Analyzer{a})

	src, err := os.ReadFile(filepath.Join("testdata", filename))
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]string{} // line -> expected substring
	for i, line := range strings.Split(string(src), "\n") {
		if m := wantRE.FindStringSubmatch(line); m != nil {
			wants[i+1] = m[1]
		}
	}

	byLine := map[int][]Finding{}
	for _, f := range findings {
		if f.Analyzer != a.Name && f.Analyzer != "mdglint" {
			t.Errorf("finding from unexpected analyzer: %s", f)
			continue
		}
		byLine[f.Pos.Line] = append(byLine[f.Pos.Line], f)
	}
	for line, want := range wants {
		matched := false
		for _, f := range byLine[line] {
			if strings.Contains(f.Message, want) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: no %s finding containing %q (got %v)", filename, line, a.Name, want, byLine[line])
		}
	}
	for line, fs := range byLine {
		if _, ok := wants[line]; !ok {
			for _, f := range fs {
				t.Errorf("unexpected finding: %s", f)
			}
		}
	}
}

func TestDeterminismAnalyzer(t *testing.T) {
	// The import path puts the fixture inside the simulation scope, so the
	// map-iteration rule applies.
	checkFixture(t, DeterminismAnalyzer(), "determinism.go", "mobicol/internal/sim")
}

func TestDeterminismMapRuleOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "determinism.go", "mobicol/internal/viz")
	for _, f := range Run([]*Package{pkg}, []*Analyzer{DeterminismAnalyzer()}) {
		if strings.Contains(f.Message, "map iteration") {
			t.Errorf("map rule fired outside the simulation scope: %s", f)
		}
	}
}

func TestDeterminismTimingAllowlist(t *testing.T) {
	// internal/obs is the one package allowed to read the wall clock
	// (its timings live in strippable trace fields), so the time.Now /
	// time.Since findings must vanish there — while the map-iteration
	// and randomness rules keep firing, since obs output order is part
	// of the trace determinism contract.
	pkg := loadFixture(t, "determinism.go", "mobicol/internal/obs")
	var wallClock, mapIter, randFindings int
	for _, f := range Run([]*Package{pkg}, []*Analyzer{DeterminismAnalyzer()}) {
		switch {
		case strings.Contains(f.Message, "wall clock"):
			wallClock++
		case strings.Contains(f.Message, "map iteration"):
			mapIter++
		case strings.Contains(f.Message, "rand"):
			randFindings++
		}
	}
	if wallClock != 0 {
		t.Errorf("wall-clock rule fired %d times inside the internal/obs allowlist", wallClock)
	}
	if mapIter == 0 {
		t.Error("map-iteration rule must still apply inside internal/obs")
	}
	if randFindings == 0 {
		t.Error("randomness rules must still apply inside internal/obs")
	}
}

func TestFloatEqAnalyzer(t *testing.T) {
	checkFixture(t, FloatEqAnalyzer(), "floateq.go", "mobicol/internal/fixture")
}

func TestFloatEqSkipsGeom(t *testing.T) {
	pkg := loadFixture(t, "floateq.go", "mobicol/internal/geom")
	if fs := Run([]*Package{pkg}, []*Analyzer{FloatEqAnalyzer()}); len(fs) != 0 {
		t.Errorf("floateq fired inside internal/geom: %v", fs)
	}
}

func TestNoPanicAnalyzer(t *testing.T) {
	checkFixture(t, NoPanicAnalyzer(), "nopanic.go", "mobicol/internal/fixture")
}

func TestNoPanicSkipsNonInternal(t *testing.T) {
	pkg := loadFixture(t, "nopanic.go", "mobicol/cmd/tool")
	if fs := Run([]*Package{pkg}, []*Analyzer{NoPanicAnalyzer()}); len(fs) != 0 {
		t.Errorf("nopanic fired outside internal/: %v", fs)
	}
}

func TestErrCheckAnalyzer(t *testing.T) {
	checkFixture(t, ErrCheckAnalyzer(), "errcheck.go", "mobicol/internal/fixture")
}

func TestGlobalVarAnalyzer(t *testing.T) {
	checkFixture(t, GlobalVarAnalyzer(), "globalvar.go", "mobicol/internal/fixture")
}

func TestMalformedSuppressionIsReported(t *testing.T) {
	const src = `package p

func f(a, b float64) bool {
	//mdglint:ignore floateq
	x := a == b
	//mdglint:ignore nosuchanalyzer the name is wrong
	y := a != b
	return x && y
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}, Defs: map[*ast.Ident]types.Object{}, Uses: map[*ast.Ident]types.Object{}}
	tpkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
	findings := Run([]*Package{pkg}, Analyzers())

	var malformed, unknown, floateqFindings int
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, "malformed suppression"):
			malformed++
		case strings.Contains(f.Message, "unknown analyzer"):
			unknown++
		case f.Analyzer == "floateq":
			floateqFindings++
		}
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed-suppression finding, got %d: %v", malformed, findings)
	}
	if unknown != 1 {
		t.Errorf("want 1 unknown-analyzer finding, got %d: %v", unknown, findings)
	}
	// Neither broken directive may actually suppress the float comparisons.
	if floateqFindings != 2 {
		t.Errorf("broken directives must not suppress findings; got %d floateq findings: %v", floateqFindings, findings)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Pos: token.Position{Filename: "a/b.go", Line: 7}, Analyzer: "nopanic", Message: "boom"}
	if got, want := f.String(), "a/b.go:7: nopanic: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
