package lint

import (
	"go/ast"
	"go/types"
)

// GlobalVarAnalyzer flags mutable package-level variables in non-test
// code. Shared mutable state breaks reproducibility (two runs can observe
// different values depending on call order) and blocks the planned
// parallelization of the solver hot paths. Error sentinels (ErrFoo of
// type error) and blank compile-time assertions (var _ Iface = ...) are
// the two sanctioned shapes.
func GlobalVarAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "globalvar",
		Doc:  "flag mutable package-level vars (error sentinels and var _ assertions excepted)",
		Run:  runGlobalVar,
	}
}

func runGlobalVar(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // compile-time interface assertion
					}
					obj := pass.Pkg.Info.Defs[name]
					if obj != nil && len(name.Name) >= 3 && name.Name[:3] == "Err" &&
						types.Identical(obj.Type(), errType) {
						continue // immutable-by-convention error sentinel
					}
					pass.Reportf(name.Pos(),
						"package-level var %s is mutable shared state; use a const, thread it through a struct, or suppress with a reason",
						name.Name)
				}
			}
		}
	}
}
