package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobicol/internal/lint/callgraph"
)

// funcState is the per-function abstract interpreter: an environment
// mapping local objects to taint masks, iterated to a fixpoint (all
// joins are monotone over a finite lattice, so the result is
// independent of statement order), then one collection pass.
type funcState struct {
	a            *Analysis
	info         *types.Info
	sum          *Summary
	env          map[types.Object]taint
	namedResults []types.Object
	collect      bool
	changed      bool
}

// analyze recomputes one node's summary; reports whether its flow
// masks changed (the cross-function dependency the SCC loop tracks).
func (a *Analysis) analyze(n *callgraph.Node) bool {
	s := a.sums[n]
	pkg := a.pkgs[n.PkgPath]
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	if n.Decl != nil {
		body, ftype = n.Decl.Body, n.Decl.Type
	} else {
		body, ftype = n.Lit.Body, n.Lit.Type
	}
	if body == nil {
		return false
	}
	st := &funcState{a: a, info: pkg.Info, sum: s, env: map[types.Object]taint{}}
	for i, obj := range s.Params {
		if obj == nil || i >= 64 {
			continue
		}
		st.env[obj] = seedTaint(obj.Type(), uint64(1)<<uint(i))
	}
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			if len(field.Names) == 0 {
				st.namedResults = append(st.namedResults, nil)
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					st.namedResults = append(st.namedResults, nil)
				} else {
					st.namedResults = append(st.namedResults, pkg.Info.Defs[name])
				}
			}
		}
	}
	oldFlows := append([]FlowMask(nil), s.Flows...)
	for i := 0; i < 64; i++ {
		st.changed = false
		st.walkStmt(body)
		if !st.changed {
			break
		}
	}
	s.Writes, s.Retains, s.Returns, s.Calls = nil, nil, nil, nil
	st.collect = true
	st.walkStmt(body)
	return !flowsEq(oldFlows, s.Flows)
}

// seedTaint is a parameter's initial taint: reference types alias the
// caller's memory directly (D), reference-carrying value types are
// local copies whose contents alias it (V), scalars carry nothing.
func seedTaint(t types.Type, bit uint64) taint {
	if isRefType(t) {
		return taint{d: bit}
	}
	if refCarrying(t) {
		return taint{v: bit}
	}
	return taint{}
}

// isRefType reports whether values of t are references to memory.
func isRefType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// refCarrying reports whether values of t can hold references to
// mutable memory. Strings are excluded: their backing is immutable, so
// neither writes nor retention can observe sharing. This is the
// precision barrier that lets a planner return fresh tours of value
// points built from a protected network.
func refCarrying(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refCarrying(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return refCarrying(u.Elem())
	default:
		return isRefType(t)
	}
}

// load is the taint of a value read one field/element/deref from base:
// a reference field points at least one level past the container (R),
// a value struct copies contents (V), scalars drop everything.
func load(base taint, t types.Type) taint {
	if base.empty() || t == nil {
		return taint{}
	}
	if isRefType(t) {
		return taint{r: base.any()}
	}
	if refCarrying(t) {
		return taint{v: base.any()}
	}
	return taint{}
}

func (st *funcState) typeOf(e ast.Expr) types.Type { return st.info.TypeOf(e) }

// objOf resolves an identifier to its object (use or definition).
func (st *funcState) objOf(id *ast.Ident) types.Object {
	if obj := st.info.Uses[id]; obj != nil {
		return obj
	}
	return st.info.Defs[id]
}

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// joinEnv joins t into obj's taint, tracking changes for the fixpoint.
func (st *funcState) joinEnv(obj types.Object, t taint) {
	if obj == nil || t.empty() {
		return
	}
	cur := st.env[obj]
	next := cur.or(t)
	if !next.eq(cur) {
		st.env[obj] = next
		st.changed = true
	}
}

// joinFlow joins t into result position i's flow mask.
func (st *funcState) joinFlow(i int, t taint) {
	if i >= len(st.sum.Flows) || t.empty() {
		return
	}
	fm := st.sum.Flows[i]
	next := FlowMask{D: fm.D | t.d, R: fm.R | t.r, V: fm.V | t.v}
	if next != fm {
		st.sum.Flows[i] = next
		st.changed = true
	}
}

// ---- statements ----

func (st *funcState) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, stmt := range x.List {
			st.walkStmt(stmt)
		}
	case *ast.ExprStmt:
		st.eval(x.X)
	case *ast.AssignStmt:
		st.assign(x)
	case *ast.IncDecStmt:
		st.store(x.X, taint{}, x.X.Pos())
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			st.valueSpec(vs)
		}
	case *ast.ReturnStmt:
		st.ret(x)
	case *ast.IfStmt:
		st.walkStmt(x.Init)
		st.eval(x.Cond)
		st.walkStmt(x.Body)
		st.walkStmt(x.Else)
	case *ast.ForStmt:
		st.walkStmt(x.Init)
		if x.Cond != nil {
			st.eval(x.Cond)
		}
		st.walkStmt(x.Post)
		st.walkStmt(x.Body)
	case *ast.RangeStmt:
		st.rangeStmt(x)
	case *ast.SwitchStmt:
		st.walkStmt(x.Init)
		if x.Tag != nil {
			st.eval(x.Tag)
		}
		st.walkStmt(x.Body)
	case *ast.TypeSwitchStmt:
		st.typeSwitch(x)
	case *ast.CaseClause:
		for _, e := range x.List {
			st.eval(e)
		}
		for _, stmt := range x.Body {
			st.walkStmt(stmt)
		}
	case *ast.SelectStmt:
		st.walkStmt(x.Body)
	case *ast.CommClause:
		st.walkStmt(x.Comm)
		for _, stmt := range x.Body {
			st.walkStmt(stmt)
		}
	case *ast.SendStmt:
		st.eval(x.Chan)
		t := st.eval(x.Value)
		if st.collect && t.any() != 0 {
			st.sum.Retains = append(st.sum.Retains, RetainSite{
				Pos: x.Arrow, D: t.d, R: t.r, V: t.v, Desc: "channel send",
			})
		}
	case *ast.GoStmt:
		st.callResults(x.Call)
	case *ast.DeferStmt:
		st.callResults(x.Call)
	case *ast.LabeledStmt:
		st.walkStmt(x.Stmt)
	}
}

func (st *funcState) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Values) == len(vs.Names) {
		for i, name := range vs.Names {
			t := st.eval(vs.Values[i])
			if name.Name != "_" {
				st.joinEnv(st.info.Defs[name], t)
			}
		}
		return
	}
	// var a, b = f()
	var ts []taint
	if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
		ts = st.callResults(call)
	} else {
		ts = []taint{st.eval(vs.Values[0])}
	}
	for i, name := range vs.Names {
		if name.Name == "_" {
			continue
		}
		var t taint
		if i < len(ts) {
			t = ts[i]
		}
		st.joinEnv(st.info.Defs[name], t)
	}
}

func (st *funcState) assign(x *ast.AssignStmt) {
	if len(x.Lhs) == len(x.Rhs) {
		ts := make([]taint, len(x.Rhs))
		for i := range x.Rhs {
			ts[i] = st.eval(x.Rhs[i])
		}
		for i := range x.Lhs {
			st.store(x.Lhs[i], ts[i], x.Lhs[i].Pos())
		}
		return
	}
	// Multi-value: a call, type assertion, map index, or receive.
	var ts []taint
	if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
		ts = st.callResults(call)
	} else {
		ts = []taint{st.eval(x.Rhs[0])}
	}
	for i := range x.Lhs {
		var t taint
		if i < len(ts) {
			t = ts[i]
		}
		st.store(x.Lhs[i], t, x.Lhs[i].Pos())
	}
}

func (st *funcState) rangeStmt(x *ast.RangeStmt) {
	base := st.eval(x.X)
	if x.Key != nil {
		st.store(x.Key, load(base, st.typeOf(x.Key)), x.Key.Pos())
	}
	if x.Value != nil {
		st.store(x.Value, load(base, st.typeOf(x.Value)), x.Value.Pos())
	}
	st.walkStmt(x.Body)
}

func (st *funcState) typeSwitch(x *ast.TypeSwitchStmt) {
	st.walkStmt(x.Init)
	var subject taint
	switch a := x.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				subject = st.eval(ta.X)
			}
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(a.X).(*ast.TypeAssertExpr); ok {
			subject = st.eval(ta.X)
		}
	}
	for _, stmt := range x.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := st.info.Implicits[clause]; obj != nil {
			st.joinEnv(obj, subject)
		}
		for _, s := range clause.Body {
			st.walkStmt(s)
		}
	}
}

func (st *funcState) ret(x *ast.ReturnStmt) {
	var union taint
	if len(x.Results) == 0 {
		for i, obj := range st.namedResults {
			if obj == nil {
				continue
			}
			t := st.env[obj]
			st.joinFlow(i, t)
			union = union.or(t)
		}
	} else if call, ok := tupleForward(x.Results, len(st.sum.Flows)); ok {
		ts := st.callResults(call)
		for i, t := range ts {
			st.joinFlow(i, t)
			union = union.or(t)
		}
	} else {
		for i, res := range x.Results {
			t := st.eval(res)
			st.joinFlow(i, t)
			union = union.or(t)
		}
	}
	if st.collect && union.any() != 0 {
		st.sum.Returns = append(st.sum.Returns, RetainSite{
			Pos: x.Pos(), D: union.d, R: union.r, V: union.v, Desc: "return",
		})
	}
}

// tupleForward detects `return f()` forwarding a multi-result call.
func tupleForward(results []ast.Expr, nres int) (*ast.CallExpr, bool) {
	if len(results) != 1 || nres <= 1 {
		return nil, false
	}
	call, ok := ast.Unparen(results[0]).(*ast.CallExpr)
	return call, ok
}

// ---- stores ----

// region describes the memory an lvalue designates: masks of parameters
// whose shared memory it lives in, the local variable at the base of
// the access path (for container-taint updates), and whether the base
// is a package-level variable.
type region struct {
	d, r   uint64
	root   types.Object
	global bool
}

func (st *funcState) store(lhs ast.Expr, rhs taint, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := st.objOf(id)
		if v, ok := obj.(*types.Var); ok && isPkgLevel(v) {
			if st.collect && rhs.any() != 0 {
				st.sum.Retains = append(st.sum.Retains, RetainSite{
					Pos: pos, D: rhs.d, R: rhs.r, V: rhs.v,
					Desc: "store into package-level " + id.Name,
				})
			}
			return
		}
		st.joinEnv(obj, rhs)
		return
	}
	reg := st.lvalRegion(lhs)
	if st.collect && reg.d|reg.r != 0 {
		st.sum.Writes = append(st.sum.Writes, WriteSite{Pos: pos, D: reg.d, R: reg.r, Desc: "assignment"})
	}
	if st.collect && rhs.any() != 0 && (reg.global || reg.d|reg.r != 0) {
		desc := "store into shared memory"
		if reg.global {
			desc = "store into package-level memory"
		}
		st.sum.Retains = append(st.sum.Retains, RetainSite{
			Pos: pos, D: rhs.d, R: rhs.r, V: rhs.v, Desc: desc,
		})
	}
	if reg.root != nil && rhs.any() != 0 {
		st.joinEnv(reg.root, taint{v: rhs.any()})
	}
}

func (st *funcState) lvalRegion(e ast.Expr) region {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := st.objOf(x)
		if v, ok := obj.(*types.Var); ok {
			if isPkgLevel(v) {
				return region{global: true}
			}
			return region{root: v}
		}
		return region{}
	case *ast.SelectorExpr:
		if sel, ok := st.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if isPointer(st.typeOf(x.X)) || sel.Indirect() {
				t := st.eval(x.X)
				return region{d: t.d, r: t.r, root: st.baseLocal(x.X)}
			}
			return st.lvalRegion(x.X)
		}
		if v, ok := st.info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
			return region{global: true}
		}
		return region{}
	case *ast.IndexExpr:
		st.eval(x.Index)
		switch st.typeOf(x.X).Underlying().(type) {
		case *types.Slice, *types.Map, *types.Pointer:
			t := st.eval(x.X)
			return region{d: t.d, r: t.r, root: st.baseLocal(x.X)}
		}
		return st.lvalRegion(x.X) // array value
	case *ast.StarExpr:
		t := st.eval(x.X)
		return region{d: t.d, r: t.r, root: st.baseLocal(x.X)}
	}
	return region{}
}

// baseLocal chases an access path to its base local variable, if any.
func (st *funcState) baseLocal(e ast.Expr) types.Object {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := st.objOf(x).(*types.Var); ok && !isPkgLevel(v) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// ---- expressions ----

func (st *funcState) eval(e ast.Expr) taint {
	switch x := e.(type) {
	case nil:
		return taint{}
	case *ast.ParenExpr:
		return st.eval(x.X)
	case *ast.Ident:
		if obj := st.objOf(x); obj != nil {
			return st.env[obj]
		}
		return taint{}
	case *ast.SelectorExpr:
		if sel, ok := st.info.Selections[x]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				return load(st.eval(x.X), st.typeOf(e))
			case types.MethodVal:
				// A method value binds its receiver like a closure capture.
				return taint{v: st.eval(x.X).any()}
			}
			return taint{}
		}
		return taint{} // package-qualified: globals are not taint sources
	case *ast.IndexExpr:
		st.eval(x.Index)
		return load(st.eval(x.X), st.typeOf(e))
	case *ast.IndexListExpr:
		for _, idx := range x.Indices {
			st.eval(idx)
		}
		return load(st.eval(x.X), st.typeOf(e))
	case *ast.SliceExpr:
		st.eval(x.Low)
		st.eval(x.High)
		st.eval(x.Max)
		return st.eval(x.X) // same backing array
	case *ast.StarExpr:
		return load(st.eval(x.X), st.typeOf(e))
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return st.addrOf(x.X)
		case token.ARROW:
			return load(st.eval(x.X), st.typeOf(e))
		}
		st.eval(x.X)
		return taint{}
	case *ast.BinaryExpr:
		st.eval(x.X)
		st.eval(x.Y)
		return taint{}
	case *ast.TypeAssertExpr:
		return st.eval(x.X)
	case *ast.CompositeLit:
		var t taint
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t.v |= st.eval(kv.Key).any()
				t.v |= st.eval(kv.Value).any()
			} else {
				t.v |= st.eval(el).any()
			}
		}
		return t
	case *ast.CallExpr:
		var t taint
		for _, rt := range st.callResults(x) {
			t = t.or(rt)
		}
		return t
	case *ast.FuncLit:
		st.walkStmt(x.Body)
		return taint{v: st.captures(x)}
	}
	return taint{}
}

// captures is the union of taint carried by variables the literal
// captures from enclosing scopes.
func (st *funcState) captures(lit *ast.FuncLit) uint64 {
	var mask uint64
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := st.info.Uses[id]
		if obj == nil || obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		mask |= st.env[obj].any()
		return true
	})
	return mask
}

// addrOf is the taint of &e: a pointer into shared memory when e's
// region is parameter-reachable, otherwise a fresh pointer carrying
// whatever e holds.
func (st *funcState) addrOf(e ast.Expr) taint {
	reg := st.lvalRegion(e)
	if reg.d|reg.r != 0 {
		return taint{d: reg.d, r: reg.r}
	}
	return taint{v: st.eval(e).any()}
}

// ---- calls ----

// callResults interprets one call: argument taints are recorded as
// CallFlow sites for module-internal targets, result taints follow the
// callee's flow masks, and a handful of known external writers
// (append, copy, sort.*) get write effects.
func (st *funcState) callResults(call *ast.CallExpr) []taint {
	fun := ast.Unparen(call.Fun)

	// Conversions preserve representation for reference kinds and drop
	// taint for value kinds that copy (notably string <-> []byte).
	if tv, ok := st.info.Types[fun]; ok && tv.IsType() {
		var t taint
		if len(call.Args) == 1 {
			t = st.eval(call.Args[0])
		}
		if !refCarrying(tv.Type) {
			t = taint{}
		}
		return []taint{t}
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := st.info.Uses[id].(*types.Builtin); ok {
			return []taint{st.builtin(call, b)}
		}
	}

	var recvTaint taint
	var recvExpr ast.Expr
	methodExpr := false
	switch f := fun.(type) {
	case *ast.Ident:
		// direct or indirect call through a name: nothing else to eval
	case *ast.SelectorExpr:
		if sel, ok := st.info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				recvExpr = f.X
				recvTaint = st.eval(f.X)
			case types.MethodExpr:
				methodExpr = true
			default:
				st.eval(fun) // field of function type
			}
		}
		// package-qualified functions carry no taint
	default:
		st.eval(fun)
	}

	args := make([]taint, len(call.Args))
	for i, arg := range call.Args {
		args[i] = st.eval(arg)
	}

	nres := resultCount(st.typeOf(call))
	res := make([]taint, nres)
	targets := st.a.graph.TargetsOf(call)
	for _, tgt := range targets {
		s := st.a.sums[tgt]
		if s == nil {
			continue
		}
		st.bindCall(call, s, recvExpr, recvTaint, methodExpr, args, res)
	}
	if len(targets) == 0 {
		st.externalCall(call, fun, args)
	}
	return res
}

// bindCall maps one call's receiver and arguments onto a target's
// parameters, recording CallFlow sites and joining result taint.
func (st *funcState) bindCall(call *ast.CallExpr, s *Summary, recvExpr ast.Expr, recvTaint taint, methodExpr bool, args []taint, res []taint) {
	type binding struct {
		pos int
		t   taint
	}
	var binds []binding
	shift := 0
	if s.HasRecv && !methodExpr {
		shift = 1
		if recvExpr != nil {
			rt := recvTaint
			// Calling a pointer method on an addressable value takes its
			// address implicitly: the receiver aliases the value's region.
			if len(s.Params) > 0 && s.Params[0] != nil &&
				isPointer(s.Params[0].Type()) && !isPointer(st.typeOf(recvExpr)) {
				if reg := st.lvalRegion(recvExpr); reg.d|reg.r != 0 {
					rt = rt.or(taint{d: reg.d, r: reg.r})
				}
			}
			binds = append(binds, binding{0, rt})
		}
	}
	nparams := len(s.Params)
	for j, at := range args {
		pos := shift + j
		if pos >= nparams {
			if nparams == 0 {
				break
			}
			pos = nparams - 1 // variadic tail
		}
		binds = append(binds, binding{pos, at})
	}
	for _, bd := range binds {
		if bd.t.empty() || bd.pos >= 64 {
			continue
		}
		if st.collect {
			st.sum.Calls = append(st.sum.Calls, CallFlow{
				Callee: s.Node, Param: bd.pos,
				D: bd.t.d, R: bd.t.r, V: bd.t.v, Pos: call.Lparen,
			})
		}
		bit := uint64(1) << uint(bd.pos)
		for ri := range res {
			if ri >= len(s.Flows) {
				break
			}
			fm := s.Flows[ri]
			if fm.D&bit != 0 {
				res[ri] = res[ri].or(bd.t)
			}
			if fm.R&bit != 0 {
				res[ri].r |= bd.t.any()
			}
			if fm.V&bit != 0 {
				res[ri].v |= bd.t.any()
			}
		}
	}
}

// externalCall applies effects for callees outside the module. The
// default is effect- and flow-free; the sort package's in-place
// sorters are the one allowlisted family of external writers.
func (st *funcState) externalCall(call *ast.CallExpr, fun ast.Expr, args []taint) {
	if !st.collect || len(args) == 0 {
		return
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := st.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
		return
	}
	switch fn.Name() {
	case "Sort", "Stable", "Slice", "SliceStable", "Ints", "Float64s", "Strings":
		if args[0].d|args[0].r != 0 {
			st.sum.Writes = append(st.sum.Writes, WriteSite{
				Pos: call.Lparen, D: args[0].d, R: args[0].r, Desc: "sort." + fn.Name(),
			})
		}
	}
}

// builtin applies effects for builtin calls.
func (st *funcState) builtin(call *ast.CallExpr, b *types.Builtin) taint {
	args := make([]taint, len(call.Args))
	for i, arg := range call.Args {
		args[i] = st.eval(arg)
	}
	switch b.Name() {
	case "append":
		t := args[0]
		var elems uint64
		// Scalar elements break the chain, same as load: appending ints
		// copied out of a tainted slice carries no references, so the
		// canonical "copy the data" fix (append(nil, shared...)) is clean.
		if et := sliceElem(st.info.TypeOf(call)); et != nil && (isRefType(et) || refCarrying(et)) {
			for _, at := range args[1:] {
				elems |= at.any()
			}
		}
		t.v |= elems
		if st.collect && args[0].d|args[0].r != 0 {
			// Appending may write into the existing backing array.
			st.sum.Writes = append(st.sum.Writes, WriteSite{
				Pos: call.Lparen, D: args[0].d, R: args[0].r, Desc: "append",
			})
			if elems != 0 {
				st.sum.Retains = append(st.sum.Retains, RetainSite{
					Pos: call.Lparen, V: elems, Desc: "append into shared slice",
				})
			}
		}
		return t
	case "copy", "delete", "clear":
		if st.collect && args[0].d|args[0].r != 0 {
			st.sum.Writes = append(st.sum.Writes, WriteSite{
				Pos: call.Lparen, D: args[0].d, R: args[0].r, Desc: b.Name(),
			})
			if b.Name() == "copy" && len(args) > 1 && args[1].any() != 0 {
				if et := sliceElem(st.info.TypeOf(call.Args[0])); et != nil && (isRefType(et) || refCarrying(et)) {
					st.sum.Retains = append(st.sum.Retains, RetainSite{
						Pos: call.Lparen, V: args[1].any(), Desc: "copy into shared slice",
					})
				}
			}
		}
	}
	return taint{}
}

// sliceElem returns the element type when t's underlying type is a
// slice, else nil.
func sliceElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		return sl.Elem()
	}
	return nil
}

// resultCount is the number of values a call expression produces.
func resultCount(t types.Type) int {
	switch u := t.(type) {
	case nil:
		return 0
	case *types.Tuple:
		return u.Len()
	default:
		if u, ok := t.Underlying().(*types.Tuple); ok {
			return u.Len()
		}
		return 1
	}
}
