package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"mobicol/internal/lint/callgraph"
)

// load typechecks one source file as a package and returns the analysis
// over it.
func loadPkg(t *testing.T, src string) *Analysis {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("example.com/p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkgs := []Pkg{{Path: "example.com/p", Fset: fset, Files: []*ast.File{file}, Info: info}}
	cgPkgs := []callgraph.Pkg{{Path: "example.com/p", Fset: fset, Files: []*ast.File{file}, Info: info}}
	return New(pkgs, callgraph.Build(cgPkgs))
}

// summary finds the summary of the function whose display name contains
// name.
func summary(t *testing.T, a *Analysis, name string) *Summary {
	t.Helper()
	for _, n := range a.Graph().Nodes() {
		if strings.Contains(n.Name, name) {
			if s := a.Summary(n); s != nil {
				return s
			}
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

const header = `package p

type T struct {
	N  int
	Xs []int
	Ps []*T
}
`

func TestFreshResultIsClean(t *testing.T) {
	a := loadPkg(t, header+`
func F(p *T) *T {
	return &T{N: p.N}
}
`)
	s := summary(t, a, "p.F")
	if f := s.Flows[0]; f.D|f.R|f.V != 0 {
		t.Errorf("fresh struct of scalar reads is tainted: %+v", f)
	}
}

func TestAliasAndDeepResults(t *testing.T) {
	a := loadPkg(t, header+`
func Alias(p *T) *T { return p }

func Deep(p *T) []int { return p.Xs }
`)
	if f := summary(t, a, "p.Alias").Flows[0]; f.D != 1 {
		t.Errorf("alias result D = %b, want param bit 0", f.D)
	}
	if f := summary(t, a, "p.Deep").Flows[0]; f.R != 1 || f.D != 0 {
		t.Errorf("deep result = %+v, want R-only on param bit 0", f)
	}
}

// TestPerResultFlows pins the per-position flow masks: the error slot of
// a (value, error) pair must not inherit the value's taint.
func TestPerResultFlows(t *testing.T) {
	a := loadPkg(t, header+`
func Both(p *T) (*T, error) {
	return p, nil
}
`)
	s := summary(t, a, "p.Both")
	if f := s.Flows[0]; f.D != 1 {
		t.Errorf("value result = %+v, want D on param bit 0", f)
	}
	if f := s.Flows[1]; f.D|f.R|f.V != 0 {
		t.Errorf("error result tainted: %+v", f)
	}
}

func TestWritesThroughParam(t *testing.T) {
	a := loadPkg(t, header+`
func Field(p *T) { p.N = 1 }

func Elem(p *T) { p.Xs[0] = 1 }
`)
	sf := summary(t, a, "p.Field")
	if len(sf.Writes) != 1 || sf.Writes[0].D != 1 {
		t.Errorf("field store writes = %+v, want one D-write on bit 0", sf.Writes)
	}
	se := summary(t, a, "p.Elem")
	if len(se.Writes) != 1 || se.Writes[0].R != 1 {
		t.Errorf("element store writes = %+v, want one R-write on bit 0", se.Writes)
	}
}

func TestLocalWritesAreSilent(t *testing.T) {
	a := loadPkg(t, header+`
func Local(p *T) int {
	buf := make([]int, 4)
	buf[0] = p.N
	q := &T{}
	q.N = 2
	return buf[0] + q.N
}
`)
	if ws := summary(t, a, "p.Local").Writes; len(ws) != 0 {
		t.Errorf("writes to fresh memory recorded: %+v", ws)
	}
}

func TestRetainIntoGlobal(t *testing.T) {
	a := loadPkg(t, header+`
var keep []*T

func Stash(p *T) {
	keep = append(keep, p)
}
`)
	s := summary(t, a, "p.Stash")
	if len(s.Retains) == 0 {
		t.Fatalf("no retention recorded for the global stash")
	}
}

// TestSCCFixpoint pins the bottom-up fixpoint over a recursion cycle:
// a parameter returned through mutual recursion taints both flows.
func TestSCCFixpoint(t *testing.T) {
	a := loadPkg(t, header+`
func Ping(p *T, n int) *T {
	if n == 0 {
		return p
	}
	return Pong(p, n-1)
}

func Pong(p *T, n int) *T {
	return Ping(p, n)
}
`)
	if f := summary(t, a, "p.Ping").Flows[0]; f.D != 1 {
		t.Errorf("Ping result = %+v, want D through the cycle", f)
	}
	if f := summary(t, a, "p.Pong").Flows[0]; f.D != 1 {
		t.Errorf("Pong result = %+v, want D through the cycle", f)
	}
}

// TestClosureWriteFoldsIntoEnclosing pins that a captured-parameter
// write inside a func literal lands in the enclosing summary.
func TestClosureWriteFoldsIntoEnclosing(t *testing.T) {
	a := loadPkg(t, header+`
func Indirect(p *T) {
	f := func() { p.N = 1 }
	f()
}
`)
	s := summary(t, a, "p.Indirect")
	if len(s.Writes) == 0 || s.Writes[0].D != 1 {
		t.Errorf("closure write missing from enclosing summary: %+v", s.Writes)
	}
}

// TestAppendScalarBarrier pins the copy idiom: appending scalar elements
// out of a tainted slice yields an untainted fresh slice, while
// appending reference elements keeps the taint.
func TestAppendScalarBarrier(t *testing.T) {
	a := loadPkg(t, header+`
func CopyInts(p *T) []int {
	return append([]int(nil), p.Xs...)
}

func CopyPtrs(p *T) []*T {
	return append([]*T(nil), p.Ps...)
}
`)
	if f := summary(t, a, "p.CopyInts").Flows[0]; f.D|f.R|f.V != 0 {
		t.Errorf("scalar copy tainted: %+v", f)
	}
	if f := summary(t, a, "p.CopyPtrs").Flows[0]; f.V == 0 {
		t.Errorf("pointer copy lost the taint: %+v", f)
	}
}

func TestCallFlowRecordsArgumentTaint(t *testing.T) {
	a := loadPkg(t, header+`
func Outer(p *T) { inner(p.Xs) }

func inner(xs []int) { _ = len(xs) }
`)
	s := summary(t, a, "p.Outer")
	var found bool
	for _, cf := range s.Calls {
		if strings.Contains(cf.Callee.Name, "inner") && cf.Param == 0 && cf.R == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no CallFlow with R-taint into inner: %+v", s.Calls)
	}
}

// TestByValueStructSeedsContents pins the Scenario shape: a by-value
// struct parameter carrying references seeds at contents level, and a
// reference loaded out of it comes back deep-tainted.
func TestByValueStructSeedsContents(t *testing.T) {
	a := loadPkg(t, header+`
type Sc struct{ P *T }

func Use(sc Sc) *T { return sc.P }
`)
	if f := summary(t, a, "p.Use").Flows[0]; f.R != 1 {
		t.Errorf("loaded ref from by-value struct = %+v, want R on bit 0", f)
	}
}

// TestRangeBindingsCarryTaint pins range-variable seeding: a reference
// element ranged out of parameter memory is deep-tainted.
func TestRangeBindingsCarryTaint(t *testing.T) {
	a := loadPkg(t, header+`
func First(p *T) *T {
	for i, q := range p.Ps {
		_ = i
		return q
	}
	return nil
}
`)
	if f := summary(t, a, "p.First").Flows[0]; f.R != 1 {
		t.Errorf("ranged element = %+v, want R on param bit 0", f)
	}
}

// TestTypeSwitchBindsSubject pins the implicit per-clause object: the
// switch subject's taint reaches the clause variable.
func TestTypeSwitchBindsSubject(t *testing.T) {
	a := loadPkg(t, header+`
func Pick(v interface{}) *T {
	switch q := v.(type) {
	case *T:
		return q
	}
	return nil
}
`)
	if f := summary(t, a, "p.Pick").Flows[0]; f.D|f.R == 0 {
		t.Errorf("type-switch binding lost the subject taint: %+v", f)
	}
}

// TestVarDeclAndTupleForward pins var-spec seeding and `return f()`
// forwarding of a multi-result call.
func TestVarDeclAndTupleForward(t *testing.T) {
	a := loadPkg(t, header+`
func Pair(p *T) (*T, error) {
	return p, nil
}

func Forward(p *T) (*T, error) {
	return Pair(p)
}

func Decl(p *T) *T {
	var a, b = p, p.N
	_ = b
	return a
}
`)
	sf := summary(t, a, "p.Forward")
	if sf.Flows[0].D != 1 {
		t.Errorf("forwarded value result = %+v, want D on bit 0", sf.Flows[0])
	}
	if f := sf.Flows[1]; f.D|f.R|f.V != 0 {
		t.Errorf("forwarded error result tainted: %+v", f)
	}
	if f := summary(t, a, "p.Decl").Flows[0]; f.D != 1 {
		t.Errorf("var-spec binding = %+v, want D on bit 0", f)
	}
}

// TestNamedResultNakedReturn pins the naked-return path: named results
// publish their environment taint.
func TestNamedResultNakedReturn(t *testing.T) {
	a := loadPkg(t, header+`
func Named(p *T) (out *T) {
	out = p
	return
}
`)
	if f := summary(t, a, "p.Named").Flows[0]; f.D != 1 {
		t.Errorf("naked return of named result = %+v, want D on bit 0", f)
	}
}

// TestSortWritesAllowlisted pins the one external-writer family: the
// sort package mutates its argument in place.
func TestSortWritesAllowlisted(t *testing.T) {
	a := loadPkg(t, `package p

import "sort"

type T struct{ Xs []int }

func Order(p *T) {
	sort.Ints(p.Xs)
}
`)
	s := summary(t, a, "p.Order")
	if len(s.Writes) != 1 || s.Writes[0].R != 1 {
		t.Errorf("sort.Ints writes = %+v, want one R-write on bit 0", s.Writes)
	}
}

// TestControlFlowStatementsWalked sweeps the statement walker: defer/go
// closures, branches, sends, selects, and labeled loops all fold their
// effects into the summary.
func TestControlFlowStatementsWalked(t *testing.T) {
	a := loadPkg(t, header+`
func Busy(p *T, ch chan *T) *T {
	defer func() { p.N = 1 }()
	go func() { p.N = 2 }()
	if p.N > 0 {
		for i := 0; i < 3 && i < len(p.Xs); i++ {
			p.Xs[i] = i
		}
	}
	switch p.N {
	case 1:
		ch <- p
	}
	select {
	case q := <-ch:
		return q
	default:
	}
L:
	for {
		break L
	}
	return nil
}
`)
	s := summary(t, a, "p.Busy")
	var direct, deep bool
	for _, w := range s.Writes {
		if w.D&1 != 0 {
			direct = true
		}
		if w.R&1 != 0 {
			deep = true
		}
	}
	if !direct || !deep {
		t.Errorf("want both field (D) and element (R) writes recorded: %+v", s.Writes)
	}
}

// TestMapStoreThroughParam pins map-element stores: writing a shared
// reference into a parameter map is a write through param memory.
func TestMapStoreThroughParam(t *testing.T) {
	a := loadPkg(t, header+`
func Put(m map[int]*T, p *T) {
	m[0] = p
}
`)
	s := summary(t, a, "p.Put")
	if len(s.Writes) == 0 || s.Writes[0].D&1 == 0 {
		t.Errorf("map store not recorded as a write through param 0: %+v", s.Writes)
	}
}
