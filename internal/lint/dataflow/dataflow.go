// Package dataflow computes per-function write-effect and escape
// summaries over the lint call graph, for the purity analyzers
// (purecheck, ctxflow). Stdlib only, like the rest of the lint engine.
//
// # Taint model
//
// Each value carries three bit masks over the enclosing function's
// parameters (receiver at index 0 when present):
//
//   - D (direct): the value is a reference into the parameter's own
//     memory — the pointee of a pointer parameter, the backing array of
//     a slice parameter, the buckets of a map parameter.
//   - R (deep): the value references memory at least one reference-field
//     or element load deeper than the parameter — e.g. sc.Net where sc
//     is a by-value struct, or p.buf where p is a pointer parameter.
//   - V (contents): the value is a *fresh* container (allocated inside
//     the function) whose reference contents alias parameter memory —
//     e.g. the result of NewProblem(sc.Net), or a closure capturing a
//     tainted variable.
//
// The distinction is what keeps the analysis precise enough to be
// adoptable: writing through a D or R reference mutates memory the
// caller shares, writing through a V container only initializes fresh
// memory and is not an effect. Storing any of the three into memory
// that outlives the call (a global, parameter-reachable memory, a
// channel) escapes the references it carries, so retention records fire
// on all masks.
//
// Taint propagates only through reference-carrying types: loading a
// struct of scalars (geom.Point) drops it, which is the precision
// barrier that lets planners return fresh tours built from a protected
// network without tripping the escape analysis.
//
// # Summary computation
//
// Summaries are computed bottom-up over the Tarjan strongly-connected
// components of the call graph (callee before caller; mutually
// recursive functions iterate to a joint fixpoint). Each function body
// is interpreted abstractly to a local fixpoint (assignments join, so
// the result is order-independent), then one collection pass records
// write, retention, return, and call-argument sites. Functions outside
// the module have no summary and are assumed effect- and flow-free,
// except for the append/copy builtins and the sort.* sorters, which
// write through their first argument.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobicol/internal/lint/callgraph"
)

// Pkg is one type-checked package presented to New. It mirrors the
// call-graph package shape (the lint package converts once and shares).
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
}

// taint is one value's three-mask state.
type taint struct {
	d, r, v uint64
}

func (t taint) any() uint64      { return t.d | t.r | t.v }
func (t taint) empty() bool      { return t.d|t.r|t.v == 0 }
func (t taint) or(u taint) taint { return taint{t.d | u.d, t.r | u.r, t.v | u.v} }
func (t taint) eq(u taint) bool  { return t == u }

// FlowMask describes how parameters flow into one result position.
type FlowMask struct {
	// D: the result is the parameter itself (or a same-level alias).
	// R: the result references memory loaded deeper through the parameter.
	// V: the result is a fresh container holding references derived from
	// the parameter.
	D, R, V uint64
}

func (f FlowMask) empty() bool { return f.D|f.R|f.V == 0 }

// WriteSite is one store through shared memory: D masks parameters
// whose direct memory is written, R parameters whose deeper memory is.
type WriteSite struct {
	Pos  token.Pos
	D, R uint64
	Desc string
}

// RetainSite is one store of parameter-derived references into memory
// that outlives the call (a global, parameter-reachable memory, a
// channel send), or — for Returns consumers — a return statement.
type RetainSite struct {
	Pos     token.Pos
	D, R, V uint64
	Desc    string
}

// CallFlow records parameter-derived taint passed to a module-internal
// callee: the argument bound to callee parameter Param carried the
// given masks over the *caller's* parameters.
type CallFlow struct {
	Callee  *callgraph.Node
	Param   int
	D, R, V uint64
	Pos     token.Pos
}

// Summary is one function's computed effects.
type Summary struct {
	Node *callgraph.Node
	// Params holds the parameter objects in taint-index order (receiver
	// first when present). Unnamed parameters are nil placeholders.
	Params []types.Object
	// HasRecv reports whether index 0 is a method receiver.
	HasRecv bool
	// Flows has one mask per result position.
	Flows []FlowMask
	// Writes, Retains, Returns, Calls are the collected sites in source
	// order. Returns unions all result positions of one return statement
	// (per-position flow lives in Flows).
	Writes  []WriteSite
	Retains []RetainSite
	Returns []RetainSite
	Calls   []CallFlow
}

// flowsEq reports whether two flow slices are identical.
func flowsEq(a, b []FlowMask) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Analysis holds the summaries for a module.
type Analysis struct {
	graph *callgraph.Graph
	pkgs  map[string]*Pkg // by import path
	sums  map[*callgraph.Node]*Summary
}

// Summary returns the node's summary, or nil for nodes with no body in
// the analyzed packages.
func (a *Analysis) Summary(n *callgraph.Node) *Summary { return a.sums[n] }

// Graph returns the call graph the analysis was built over.
func (a *Analysis) Graph() *callgraph.Graph { return a.graph }

// New computes summaries for every node of g, bottom-up over SCCs.
func New(pkgs []Pkg, g *callgraph.Graph) *Analysis {
	a := &Analysis{
		graph: g,
		pkgs:  make(map[string]*Pkg, len(pkgs)),
		sums:  make(map[*callgraph.Node]*Summary),
	}
	for i := range pkgs {
		a.pkgs[pkgs[i].Path] = &pkgs[i]
	}
	nodes := g.Nodes()
	for _, n := range nodes {
		if s := a.newSummary(n); s != nil {
			a.sums[n] = s
		}
	}
	for _, scc := range sccs(nodes) {
		// Iterate the component until a full round leaves every member's
		// flow masks unchanged; the final round's collection pass then
		// reflects the joint fixpoint.
		for round := 0; round < 64; round++ {
			changed := false
			for _, n := range scc {
				if a.sums[n] == nil {
					continue
				}
				if a.analyze(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return a
}

// newSummary builds the parameter skeleton for a node, or nil when the
// node's package or body is unavailable.
func (a *Analysis) newSummary(n *callgraph.Node) *Summary {
	pkg := a.pkgs[n.PkgPath]
	if pkg == nil {
		return nil
	}
	s := &Summary{Node: n}
	var ftype *ast.FuncType
	switch {
	case n.Decl != nil:
		ftype = n.Decl.Type
		if n.Decl.Recv != nil && len(n.Decl.Recv.List) == 1 {
			s.HasRecv = true
			names := n.Decl.Recv.List[0].Names
			if len(names) == 1 && names[0].Name != "_" {
				s.Params = append(s.Params, pkg.Info.Defs[names[0]])
			} else {
				s.Params = append(s.Params, nil)
			}
		}
	case n.Lit != nil:
		ftype = n.Lit.Type
	default:
		return nil
	}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			if len(field.Names) == 0 {
				s.Params = append(s.Params, nil)
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					s.Params = append(s.Params, nil)
					continue
				}
				s.Params = append(s.Params, pkg.Info.Defs[name])
			}
		}
	}
	nres := 0
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			if len(field.Names) == 0 {
				nres++
			} else {
				nres += len(field.Names)
			}
		}
	}
	s.Flows = make([]FlowMask, nres)
	return s
}

// sccs returns the strongly-connected components of the call graph in
// reverse topological order (every callee SCC before its callers) —
// Tarjan's emission order.
func sccs(nodes []*callgraph.Node) [][]*callgraph.Node {
	index := make(map[*callgraph.Node]int, len(nodes))
	low := make(map[*callgraph.Node]int, len(nodes))
	onStack := make(map[*callgraph.Node]bool, len(nodes))
	var stack []*callgraph.Node
	var out [][]*callgraph.Node
	next := 0

	// Iterative Tarjan: frame.i is the next edge to visit.
	type frame struct {
		n *callgraph.Node
		i int
	}
	var visit func(root *callgraph.Node)
	visit = func(root *callgraph.Node) {
		frames := []frame{{n: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.n.Calls()) {
				c := f.n.Calls()[f.i]
				f.i++
				if _, seen := index[c]; !seen {
					index[c] = next
					low[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					frames = append(frames, frame{n: c})
				} else if onStack[c] {
					if index[c] < low[f.n] {
						low[f.n] = index[c]
					}
				}
				continue
			}
			n := f.n
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].n
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []*callgraph.Node
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				out = append(out, comp)
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return out
}
