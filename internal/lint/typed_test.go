package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSource type-checks one in-memory file under the given filename
// (the name matters: _test.go suffixes trigger analyzer exemptions).
func loadSource(t *testing.T, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", filename, err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := (&types.Config{}).Check("mobicol/internal/fixture", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", filename, err)
	}
	return &Package{ImportPath: "mobicol/internal/fixture", Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
}

func TestUnitCheckAnalyzer(t *testing.T) {
	checkFixture(t, UnitCheckAnalyzer(), "unitcheck.go", "mobicol/internal/fixture")
}

// TestUnitCheckSkipsTestFiles pins the test-file exemption: the same
// laundering shapes in a _test.go file must produce nothing.
func TestUnitCheckSkipsTestFiles(t *testing.T) {
	const src = `package p

type Meters float64

func launder(m Meters) float64 { return float64(m) }
`
	pkg := loadSource(t, "launder_test.go", src)
	if fs := Run([]*Package{pkg}, []*Analyzer{UnitCheckAnalyzer()}); len(fs) != 0 {
		t.Errorf("unitcheck fired in a test file: %v", fs)
	}
}

func TestLoopCaptureAnalyzer(t *testing.T) {
	checkFixture(t, LoopCaptureAnalyzer(), "loopcapture.go", "mobicol/internal/fixture")
}

func TestConvCheckAnalyzer(t *testing.T) {
	// A hot planning-path import puts all three conversion rules in force.
	checkFixture(t, ConvCheckAnalyzer(), "convcheck.go", "mobicol/internal/tsp")
}

// TestConvCheckFloat32RuleScopedToHotPaths pins the scoping: under a cold
// import path the float32 truncation rule is silent while the redundant
// and round-trip rules still fire.
func TestConvCheckFloat32RuleScopedToHotPaths(t *testing.T) {
	pkg := loadFixture(t, "convcheck.go", "mobicol/internal/viz")
	var trunc, other int
	for _, f := range Run([]*Package{pkg}, []*Analyzer{ConvCheckAnalyzer()}) {
		if strings.Contains(f.Message, "float32 truncation") {
			trunc++
		} else {
			other++
		}
	}
	if trunc != 0 {
		t.Errorf("float32 truncation rule fired %d times outside the hot packages", trunc)
	}
	if other == 0 {
		t.Error("redundant/round-trip rules must stay active outside the hot packages")
	}
}

// TestCrossAnalyzerFixture runs the full suite over one file that trips
// every analyzer exactly once and asserts the exact count and ordering:
// findings come back sorted by position, so the analyzer sequence is
// pinned by the fixture's layout.
func TestCrossAnalyzerFixture(t *testing.T) {
	pkg := loadFixture(t, "crossanalyzer.go", "mobicol/internal/sim")
	findings := Run([]*Package{pkg}, Analyzers())

	wantOrder := []string{
		"globalvar", "determinism", "floateq", "nopanic",
		"errcheck", "unitcheck", "loopcapture", "convcheck",
		"alloccheck", "parpure", "errflow", "purecheck", "ctxflow",
	}
	if len(findings) != len(wantOrder) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wantOrder), findings)
	}
	lastLine := 0
	for i, f := range findings {
		if f.Analyzer != wantOrder[i] {
			t.Errorf("finding %d is from %s, want %s: %s", i, f.Analyzer, wantOrder[i], f)
		}
		if f.Pos.Line <= lastLine {
			t.Errorf("finding %d at line %d is not after line %d: ordering broken", i, f.Pos.Line, lastLine)
		}
		lastLine = f.Pos.Line
	}
}

// writeModule lays out a throwaway module for loader failure-path tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadModuleTypeErrorBecomesDiagnostic pins the loader's failure
// contract: a package with a type error must come back as a "load"
// finding at the offending line — not a hard error, and certainly not a
// panic — and the healthy packages must still be fully type-checked.
func TestLoadModuleTypeErrorBecomesDiagnostic(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":        "module example.com/m\n\ngo 1.22\n",
		"broken/bad.go": "package broken\n\nfunc f() int {\n\treturn \"not an int\"\n}\n",
		"healthy/ok.go": "package healthy\n\n// F is fine.\nfunc F() int { return 1 }\n",
	})
	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule returned a hard error for a type error: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (broken and healthy)", len(pkgs))
	}
	var found bool
	for _, d := range diags {
		if d.Analyzer != "load" {
			t.Errorf("diagnostic from analyzer %q, want \"load\": %s", d.Analyzer, d)
		}
		if strings.Contains(d.Message, "typecheck example.com/m/broken") &&
			strings.HasSuffix(d.Pos.Filename, "bad.go") && d.Pos.Line == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("no load diagnostic at bad.go:4 for the type error; got %v", diags)
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil {
			t.Errorf("package %s missing type information after diagnostic-tolerant load", p.ImportPath)
		}
	}
}

// TestLoadModuleParseErrorBecomesDiagnostic does the same for a syntax
// error: the malformed file surfaces as load findings and the rest of the
// module still loads.
func TestLoadModuleParseErrorBecomesDiagnostic(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":        "module example.com/m\n\ngo 1.22\n",
		"broken/bad.go": "package broken\n\nfunc f( {\n",
		"healthy/ok.go": "package healthy\n\n// F is fine.\nfunc F() int { return 1 }\n",
	})
	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule returned a hard error for a parse error: %v", err)
	}
	var parseDiags int
	for _, d := range diags {
		if strings.Contains(d.Message, "parse error") && strings.HasSuffix(d.Pos.Filename, "bad.go") {
			parseDiags++
		}
	}
	if parseDiags == 0 {
		t.Fatalf("no parse-error diagnostics for bad.go; got %v", diags)
	}
	var healthyLoaded bool
	for _, p := range pkgs {
		if p.ImportPath == "example.com/m/healthy" {
			healthyLoaded = true
		}
	}
	if !healthyLoaded {
		t.Error("healthy package missing after parse-error-tolerant load")
	}
}

// TestRunToleratesPartialInfo pins that every analyzer survives a package
// whose type information is incomplete (the shape a load diagnostic
// leaves behind): running the full suite over the broken package must not
// panic.
func TestRunToleratesPartialInfo(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":               "module example.com/m\n\ngo 1.22\n",
		"internal/broken/b.go": "package broken\n\nfunc f() int {\n\treturn undefinedName\n}\n",
	})
	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("expected load diagnostics for the undefined name")
	}
	_ = Run(pkgs, Analyzers()) // must not panic on partial Info
}
