package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// isHotConvPackage reports whether importPath is one of the planning-path
// packages where a silent precision loss shows up directly in tour lengths
// and energy totals; the float32 truncation rule applies only there so
// cold paths (viz, report output) can keep compact representations.
func isHotConvPackage(importPath string) bool {
	for _, suffix := range []string{
		"internal/geom", "internal/tsp", "internal/cover", "internal/shdgp",
		"internal/collector", "internal/par", "internal/sim",
	} {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

// ConvCheckAnalyzer builds the numeric-conversion checker.
//
// Three shapes are flagged:
//
//   - redundant conversions T(x) where x is already of type T: noise that
//     usually marks a half-finished refactor;
//   - integer round-trips int(float64(x)) where x is an integer: the
//     detour through floating point silently corrupts values above 2^53;
//   - float32 truncation of a float64 value inside the hot planning
//     packages, where the lost mantissa bits feed tour-length comparisons.
//
// Test files are exempt.
func ConvCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "convcheck",
		Doc:  "flag redundant numeric conversions, int/float round-trips, and float32 truncation in hot planning paths",
		Run:  runConvCheck,
	}
}

func runConvCheck(pass *Pass) {
	info := pass.Pkg.Info
	hot := isHotConvPackage(pass.Pkg.ImportPath)
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := tv.Type
			argTV, ok := info.Types[call.Args[0]]
			if !ok || argTV.Type == nil {
				return true
			}
			src := argTV.Type
			if isTypeParam(dst) || isTypeParam(src) {
				return true
			}

			if argTV.Value == nil && types.Identical(dst, src) {
				pass.Reportf(call.Pos(),
					"redundant conversion: expression is already of type %s", typeName(dst))
				return true
			}

			if isIntegerType(dst) {
				if inner, ok := call.Args[0].(*ast.CallExpr); ok && len(inner.Args) == 1 {
					if innerTV, ok := info.Types[inner.Fun]; ok && innerTV.IsType() && isFloatType(innerTV.Type) {
						if innerArg, ok := info.Types[inner.Args[0]]; ok && innerArg.Value == nil && isIntegerType(innerArg.Type) {
							pass.Reportf(call.Pos(),
								"lossy round-trip: integer converted through %s back to %s loses precision above 2^53",
								typeName(innerTV.Type), typeName(dst))
							return true
						}
					}
				}
			}

			if hot && isFloat32Type(dst) && isFloat64Type(src) {
				pass.Reportf(call.Pos(),
					"float32 truncation of a float64 value in a hot planning path; keep float64 precision here")
			}
			return true
		})
	}
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func basicOf(t types.Type) *types.Basic {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	return basic
}

func isIntegerType(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Info()&types.IsInteger != 0
}

func isFloatType(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Info()&types.IsFloat != 0
}

func isFloat32Type(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Kind() == types.Float32
}

func isFloat64Type(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Kind() == types.Float64
}
