package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadModuleSkipsExternalTestPackages pins the loader contract that
// keeps external test packages from manufacturing import cycles: a/
// has an external (package a_test) test file importing b, and b imports
// a. Merging the external file into a would make a directory-level cycle
// a -> b -> a; the loader must skip it and type-check cleanly.
func TestLoadModuleSkipsExternalTestPackages(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/m\n\ngo 1.22\n")
	write("a/a.go", "package a\n\n// A is exercised by the external suite.\nfunc A() int { return 1 }\n")
	write("a/a_in_test.go", "package a\n\nvar _ = A\n")
	write("a/a_ext_test.go", "package a_test\n\nimport \"example.com/m/b\"\n\nvar _ = b.B\n")
	write("b/b.go", "package b\n\nimport \"example.com/m/a\"\n\n// B wraps a.A.\nfunc B() int { return a.A() }\n")

	pkgs, diags, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected load diagnostics: %v", diags)
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if filepath.Base(name) == "a_ext_test.go" {
				t.Errorf("external test file %s was loaded into %s", name, p.ImportPath)
			}
		}
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (a and b)", len(pkgs))
	}
}
