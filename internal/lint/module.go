package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"mobicol/internal/lint/callgraph"
	"mobicol/internal/lint/dataflow"
)

// Interprocedural module context. The per-package analyzers see one
// package at a time; alloccheck and parpure reason about what is
// *reachable* across packages, so Run builds one Module per lint run —
// the CHA call graph plus the hot-path annotation state — and hands it
// to every Pass.
//
// Two directives drive the hot-path analysis:
//
//	//mdglint:hotpath
//	    on (or in the doc comment of) a function declaration marks it
//	    as a hot-path root: the function and everything reachable from
//	    it must not allocate.
//
//	//mdglint:allow-alloc(reason)
//	    on a declaration marks an audited allocation boundary: the
//	    function may allocate, and hotness does not propagate through
//	    it (its callees are cold unless reached another way). On a
//	    statement line (or the line above it), it excuses the
//	    allocation sites on that line only. The reason is mandatory.
//
// A third directive drives the purity analysis:
//
//	//mdglint:allow-mut(reason)
//	    on a declaration marks an audited mutation boundary for
//	    purecheck: the function may mutate or retain Scenario-derived
//	    state, and the protection worklist does not descend through it.
//	    On a statement line (or the line above), it excuses the purity
//	    findings on that line only. The reason is mandatory.
const (
	hotpathDirective = "//mdglint:hotpath"
	allowAllocPrefix = "//mdglint:allow-alloc"
	allowMutPrefix   = "//mdglint:allow-mut"
)

// Module is the whole-module context shared by the interprocedural
// analyzers.
type Module struct {
	Pkgs  []*Package
	Graph *callgraph.Graph

	hot        map[*callgraph.Node]bool
	hotRoots   []*callgraph.Node
	allowFuncs map[*callgraph.Node]string // decl-level allow-alloc boundaries
	allowLines map[lineKey]string         // file:line -> reason
	mutFuncs   map[*callgraph.Node]string // decl-level allow-mut boundaries
	mutLines   map[lineKey]string         // file:line -> reason
	malformed  []Finding                  // malformed allow-alloc/allow-mut directives

	dfOnce sync.Once
	df     *dataflow.Analysis

	rootsOnce sync.Once
	planRoots []PlanRoot
}

// lineKey addresses one source line across the module.
type lineKey struct {
	file string
	line int
}

// NewModule builds the interprocedural context for the given packages.
// It tolerates partial type information: unresolvable calls simply get
// no edges and the affected functions fall out of the hot set.
func NewModule(pkgs []*Package) *Module {
	cgPkgs := make([]callgraph.Pkg, len(pkgs))
	for i, p := range pkgs {
		cgPkgs[i] = callgraph.Pkg{Path: p.ImportPath, Fset: p.Fset, Files: p.Files, Info: p.Info}
	}
	m := &Module{
		Pkgs:       pkgs,
		Graph:      callgraph.Build(cgPkgs),
		allowFuncs: map[*callgraph.Node]string{},
		allowLines: map[lineKey]string{},
		mutFuncs:   map[*callgraph.Node]string{},
		mutLines:   map[lineKey]string{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			m.collectDirectives(pkg, file)
		}
	}
	m.hot = m.Graph.Reachable(m.hotRoots, func(n *callgraph.Node) bool {
		_, allowed := m.allowFuncs[n]
		return allowed
	})
	return m
}

// HotFunc reports whether the body of fn (a *ast.FuncDecl or
// *ast.FuncLit from one of the module's packages) is on the hot path.
func (m *Module) HotFunc(pkg *Package, fn ast.Node) bool {
	return m.hot[m.nodeFor(pkg, fn)]
}

// HotRootCount returns the number of annotated hot-path roots (used by
// tests and the CLI -list output).
func (m *Module) HotRootCount() int { return len(m.hotRoots) }

// AllowedAt returns the allow-alloc reason covering a finding at pos —
// a directive on the same line or the line above — or "" when none.
func (m *Module) AllowedAt(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	if r, ok := m.allowLines[lineKey{p.Filename, p.Line}]; ok {
		return r
	}
	return m.allowLines[lineKey{p.Filename, p.Line - 1}]
}

// pkgByPath returns the module package with the given import path, or
// nil (fixture modules may reference paths outside the loaded set).
func (m *Module) pkgByPath(path string) *Package {
	for _, p := range m.Pkgs {
		if p.ImportPath == path {
			return p
		}
	}
	return nil
}

// nodeFor resolves an AST function to its graph node.
func (m *Module) nodeFor(pkg *Package, fn ast.Node) *callgraph.Node {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		if obj, ok := pkg.Info.Defs[f.Name].(*types.Func); ok {
			return m.Graph.NodeOf(obj)
		}
	case *ast.FuncLit:
		return m.Graph.NodeOfLit(f)
	}
	return nil
}

// collectDirectives parses the hot-path directives of one file and
// attaches declaration-level ones to their functions.
func (m *Module) collectDirectives(pkg *Package, file *ast.File) {
	fset := pkg.Fset
	type rawDirective struct {
		line   int
		pos    token.Position
		hot    bool
		mut    bool
		reason string
	}
	var raws []rawDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			pos := fset.Position(c.Pos())
			switch {
			case text == hotpathDirective:
				raws = append(raws, rawDirective{line: pos.Line, pos: pos, hot: true})
			case strings.HasPrefix(text, allowMutPrefix):
				rest := strings.TrimPrefix(text, allowMutPrefix)
				reason, ok := parseAllowReason(rest)
				if !ok {
					m.malformed = append(m.malformed, Finding{Pos: pos, Analyzer: "mdglint",
						Message: "malformed directive: want //mdglint:allow-mut(reason)"})
					continue
				}
				raws = append(raws, rawDirective{line: pos.Line, pos: pos, mut: true, reason: reason})
			case strings.HasPrefix(text, allowAllocPrefix):
				rest := strings.TrimPrefix(text, allowAllocPrefix)
				reason, ok := parseAllowReason(rest)
				if !ok {
					m.malformed = append(m.malformed, Finding{Pos: pos, Analyzer: "mdglint",
						Message: "malformed directive: want //mdglint:allow-alloc(reason)"})
					continue
				}
				raws = append(raws, rawDirective{line: pos.Line, pos: pos, reason: reason})
			}
		}
	}
	if len(raws) == 0 {
		return
	}

	// declAt maps every line of a function declaration's header — doc
	// comment, the line above the func keyword, and the func line — to
	// the declaration, so directives there bind to the whole function.
	declAt := map[int]*ast.FuncDecl{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		funcLine := fset.Position(fd.Pos()).Line
		start := funcLine - 1
		if fd.Doc != nil {
			start = fset.Position(fd.Doc.Pos()).Line
		}
		for line := start; line <= funcLine; line++ {
			declAt[line] = fd
		}
	}

	for _, d := range raws {
		fd := declAt[d.line]
		switch {
		case d.hot && fd != nil:
			if n := m.nodeFor(pkg, fd); n != nil {
				m.hotRoots = append(m.hotRoots, n)
			}
		case d.hot:
			m.malformed = append(m.malformed, Finding{Pos: d.pos, Analyzer: "mdglint",
				Message: "misplaced directive: //mdglint:hotpath must sit on a function declaration"})
		case d.mut && fd != nil:
			if n := m.nodeFor(pkg, fd); n != nil {
				m.mutFuncs[n] = d.reason
			}
		case d.mut:
			m.mutLines[lineKey{d.pos.Filename, d.line}] = d.reason
		case fd != nil:
			if n := m.nodeFor(pkg, fd); n != nil {
				m.allowFuncs[n] = d.reason
			}
		default:
			m.allowLines[lineKey{d.pos.Filename, d.line}] = d.reason
		}
	}
}

// MutAllowedAt returns the allow-mut reason covering a finding at pos —
// a directive on the same line or the line above — or "" when none.
func (m *Module) MutAllowedAt(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	if r, ok := m.mutLines[lineKey{p.Filename, p.Line}]; ok {
		return r
	}
	return m.mutLines[lineKey{p.Filename, p.Line - 1}]
}

// MutBoundary returns the decl-level allow-mut reason for a node, if any.
func (m *Module) MutBoundary(n *callgraph.Node) (string, bool) {
	r, ok := m.mutFuncs[n]
	return r, ok
}

// Dataflow returns the module's write-effect/escape summaries, computed
// on first use and shared by the analyzers that need them (purecheck).
func (m *Module) Dataflow() *dataflow.Analysis {
	m.dfOnce.Do(func() {
		dfPkgs := make([]dataflow.Pkg, len(m.Pkgs))
		for i, p := range m.Pkgs {
			dfPkgs[i] = dataflow.Pkg{Path: p.ImportPath, Fset: p.Fset, Files: p.Files, Info: p.Info}
		}
		m.df = dataflow.New(dfPkgs, m.Graph)
	})
	return m.df
}

// PlanRoot is one registered planner entry point: the concrete Plan
// method of a type implementing a Planner interface, plus the taint
// index of its Scenario parameter (-1 when it has none).
type PlanRoot struct {
	Node          *callgraph.Node
	ScenarioParam int
	// ScenarioPtr records whether the parameter is *Scenario — a shared
	// scenario rather than a by-value copy with shared contents.
	ScenarioPtr bool
}

// PlanRoots discovers the module's planner seam: every interface named
// Planner with a Plan method whose first parameter is context.Context
// defines a contract; every module type implementing one (CHA, so
// registration sites need not be visible) contributes its concrete Plan
// method as a root. The engine's registry only accepts Planner values,
// so "implements Planner" over-approximates "registered" exactly the
// way the rest of the lint graph over-approximates calls.
func (m *Module) PlanRoots() []PlanRoot {
	m.rootsOnce.Do(func() { m.planRoots = m.findPlanRoots() })
	return m.planRoots
}

func (m *Module) findPlanRoots() []PlanRoot {
	var ifaces []*types.Interface
	var concrete []*types.Named
	for _, pkg := range m.Pkgs {
		for _, obj := range pkg.Info.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if tn.Name() == "Planner" && plannerContract(iface) {
					ifaces = append(ifaces, iface)
				}
				continue
			}
			concrete = append(concrete, named)
		}
	}
	if len(ifaces) == 0 {
		return nil
	}
	sort.Slice(concrete, func(i, j int) bool { return concrete[i].Obj().Pos() < concrete[j].Obj().Pos() })
	var roots []PlanRoot
	seen := map[*callgraph.Node]bool{}
	for _, named := range concrete {
		impl := false
		for _, iface := range ifaces {
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				impl = true
				break
			}
		}
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "Plan")
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		node := m.Graph.NodeOf(fn)
		if node == nil || seen[node] {
			continue
		}
		seen[node] = true
		root := PlanRoot{Node: node, ScenarioParam: -1}
		if sig, ok := fn.Type().(*types.Signature); ok {
			offset := 0
			if sig.Recv() != nil {
				offset = 1
			}
			for i := 0; i < sig.Params().Len(); i++ {
				t := sig.Params().At(i).Type()
				ptr := false
				if p, ok := t.Underlying().(*types.Pointer); ok {
					t, ptr = p.Elem(), true
				}
				if n, ok := t.(*types.Named); ok && n.Obj().Name() == "Scenario" {
					root.ScenarioParam = offset + i
					root.ScenarioPtr = ptr
					break
				}
			}
		}
		roots = append(roots, root)
	}
	return roots
}

// plannerContract reports whether the interface has a Plan method whose
// first parameter is context.Context.
func plannerContract(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Plan" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 {
			return false
		}
		named, ok := sig.Params().At(0).Type().(*types.Named)
		return ok && named.Obj().Name() == "Context" &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context"
	}
	return false
}

// parseAllowReason extracts the reason from "(reason)". Empty or
// unclosed reasons are malformed — the audit trail is the point.
func parseAllowReason(rest string) (string, bool) {
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", false
	}
	reason := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(rest, "("), ")"))
	if reason == "" {
		return "", false
	}
	return reason, true
}
