package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mobicol/internal/lint/callgraph"
)

// Interprocedural module context. The per-package analyzers see one
// package at a time; alloccheck and parpure reason about what is
// *reachable* across packages, so Run builds one Module per lint run —
// the CHA call graph plus the hot-path annotation state — and hands it
// to every Pass.
//
// Two directives drive the hot-path analysis:
//
//	//mdglint:hotpath
//	    on (or in the doc comment of) a function declaration marks it
//	    as a hot-path root: the function and everything reachable from
//	    it must not allocate.
//
//	//mdglint:allow-alloc(reason)
//	    on a declaration marks an audited allocation boundary: the
//	    function may allocate, and hotness does not propagate through
//	    it (its callees are cold unless reached another way). On a
//	    statement line (or the line above it), it excuses the
//	    allocation sites on that line only. The reason is mandatory.
const (
	hotpathDirective = "//mdglint:hotpath"
	allowAllocPrefix = "//mdglint:allow-alloc"
)

// Module is the whole-module context shared by the interprocedural
// analyzers.
type Module struct {
	Pkgs  []*Package
	Graph *callgraph.Graph

	hot        map[*callgraph.Node]bool
	hotRoots   []*callgraph.Node
	allowFuncs map[*callgraph.Node]string // decl-level allow-alloc boundaries
	allowLines map[lineKey]string         // file:line -> reason
	malformed  []Finding                  // malformed allow-alloc directives
}

// lineKey addresses one source line across the module.
type lineKey struct {
	file string
	line int
}

// NewModule builds the interprocedural context for the given packages.
// It tolerates partial type information: unresolvable calls simply get
// no edges and the affected functions fall out of the hot set.
func NewModule(pkgs []*Package) *Module {
	cgPkgs := make([]callgraph.Pkg, len(pkgs))
	for i, p := range pkgs {
		cgPkgs[i] = callgraph.Pkg{Path: p.ImportPath, Fset: p.Fset, Files: p.Files, Info: p.Info}
	}
	m := &Module{
		Pkgs:       pkgs,
		Graph:      callgraph.Build(cgPkgs),
		allowFuncs: map[*callgraph.Node]string{},
		allowLines: map[lineKey]string{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			m.collectDirectives(pkg, file)
		}
	}
	m.hot = m.Graph.Reachable(m.hotRoots, func(n *callgraph.Node) bool {
		_, allowed := m.allowFuncs[n]
		return allowed
	})
	return m
}

// HotFunc reports whether the body of fn (a *ast.FuncDecl or
// *ast.FuncLit from one of the module's packages) is on the hot path.
func (m *Module) HotFunc(pkg *Package, fn ast.Node) bool {
	return m.hot[m.nodeFor(pkg, fn)]
}

// HotRootCount returns the number of annotated hot-path roots (used by
// tests and the CLI -list output).
func (m *Module) HotRootCount() int { return len(m.hotRoots) }

// AllowedAt returns the allow-alloc reason covering a finding at pos —
// a directive on the same line or the line above — or "" when none.
func (m *Module) AllowedAt(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	if r, ok := m.allowLines[lineKey{p.Filename, p.Line}]; ok {
		return r
	}
	return m.allowLines[lineKey{p.Filename, p.Line - 1}]
}

// pkgByPath returns the module package with the given import path, or
// nil (fixture modules may reference paths outside the loaded set).
func (m *Module) pkgByPath(path string) *Package {
	for _, p := range m.Pkgs {
		if p.ImportPath == path {
			return p
		}
	}
	return nil
}

// nodeFor resolves an AST function to its graph node.
func (m *Module) nodeFor(pkg *Package, fn ast.Node) *callgraph.Node {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		if obj, ok := pkg.Info.Defs[f.Name].(*types.Func); ok {
			return m.Graph.NodeOf(obj)
		}
	case *ast.FuncLit:
		return m.Graph.NodeOfLit(f)
	}
	return nil
}

// collectDirectives parses the hot-path directives of one file and
// attaches declaration-level ones to their functions.
func (m *Module) collectDirectives(pkg *Package, file *ast.File) {
	fset := pkg.Fset
	type rawDirective struct {
		line   int
		pos    token.Position
		hot    bool
		reason string
	}
	var raws []rawDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			pos := fset.Position(c.Pos())
			switch {
			case text == hotpathDirective:
				raws = append(raws, rawDirective{line: pos.Line, pos: pos, hot: true})
			case strings.HasPrefix(text, allowAllocPrefix):
				rest := strings.TrimPrefix(text, allowAllocPrefix)
				reason, ok := parseAllowReason(rest)
				if !ok {
					m.malformed = append(m.malformed, Finding{Pos: pos, Analyzer: "mdglint",
						Message: "malformed directive: want //mdglint:allow-alloc(reason)"})
					continue
				}
				raws = append(raws, rawDirective{line: pos.Line, pos: pos, reason: reason})
			}
		}
	}
	if len(raws) == 0 {
		return
	}

	// declAt maps every line of a function declaration's header — doc
	// comment, the line above the func keyword, and the func line — to
	// the declaration, so directives there bind to the whole function.
	declAt := map[int]*ast.FuncDecl{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		funcLine := fset.Position(fd.Pos()).Line
		start := funcLine - 1
		if fd.Doc != nil {
			start = fset.Position(fd.Doc.Pos()).Line
		}
		for line := start; line <= funcLine; line++ {
			declAt[line] = fd
		}
	}

	for _, d := range raws {
		fd := declAt[d.line]
		switch {
		case d.hot && fd != nil:
			if n := m.nodeFor(pkg, fd); n != nil {
				m.hotRoots = append(m.hotRoots, n)
			}
		case d.hot:
			m.malformed = append(m.malformed, Finding{Pos: d.pos, Analyzer: "mdglint",
				Message: "misplaced directive: //mdglint:hotpath must sit on a function declaration"})
		case fd != nil:
			if n := m.nodeFor(pkg, fd); n != nil {
				m.allowFuncs[n] = d.reason
			}
		default:
			m.allowLines[lineKey{d.pos.Filename, d.line}] = d.reason
		}
	}
}

// parseAllowReason extracts the reason from "(reason)". Empty or
// unclosed reasons are malformed — the audit trail is the point.
func parseAllowReason(rest string) (string, bool) {
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", false
	}
	reason := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(rest, "("), ")"))
	if reason == "" {
		return "", false
	}
	return reason, true
}
