package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanicAnalyzer flags panic calls in non-test internal/ library code.
// Library invariants should surface as returned errors so callers (the
// CLIs, the bench harness, future services) can degrade gracefully;
// panics that guard genuinely unreachable programmer errors may stay with
// a reasoned suppression.
func NoPanicAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nopanic",
		Doc:  "flag panic() in non-test internal/ library code; return errors instead",
		Run:  runNoPanic,
	}
}

func runNoPanic(pass *Pass) {
	if !strings.Contains(pass.Pkg.ImportPath, "/internal/") {
		return
	}
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "panic in library code; return an error so callers can recover")
			}
			return true
		})
	}
}
