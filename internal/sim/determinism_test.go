package sim

import (
	"fmt"
	"strings"
	"testing"

	"mobicol/internal/baselines"
	"mobicol/internal/collector"
	"mobicol/internal/routing"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

// lifetimeFingerprint runs the full pipeline — deployment, planning, and
// lifetime/latency simulation for every scheme — from a single seed and
// serialises every metric into one string. Two runs from the same seed
// must produce byte-identical fingerprints: all randomness is owed to
// internal/rng, which is a pure function of the seed.
func lifetimeFingerprint(t *testing.T, seed uint64) string {
	t.Helper()
	nw := wsn.MustDeploy(wsn.Config{N: 120, FieldSide: 200, Range: 30, Seed: seed})
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	claPlan, err := baselines.PlanCLA(nw)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []Scheme{
		NewMobile("shdg", nw, sol.Plan),
		NewCLA(nw, claPlan),
		NewStatic(routing.BuildPlan(nw)),
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "net=%v tour=%x stops=%d\n", nw, sol.Length, sol.Stops())
	model := smallBattery()
	spec := collector.DefaultSpec()
	for _, s := range schemes {
		res, err := RunLifetime(s, nw.N(), model, 100000)
		if err != nil {
			t.Fatal(err)
		}
		lat := MeasureLatency(s, spec, 0.05)
		// %x on floats prints the exact bit pattern (hex mantissa), so
		// the comparison below is bit-exact, not print-precision-exact.
		fmt.Fprintf(&sb, "%s rounds=%d died=%v residual=%x/%x alive=%x latency=%x\n",
			s.Name(), res.Rounds, res.Died, res.Residual.Mean, res.Residual.Std,
			res.AliveFraction, lat.Seconds)
	}
	adaptive, err := RunAdaptiveMobile(nw, model, 100000)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "adaptive=%+v\n", *adaptive)
	return sb.String()
}

// TestLifetimePipelineDeterministic is the regression gate for the
// determinism policy enforced by mdglint: the same seed must reproduce
// the same metrics exactly, byte for byte, run after run.
func TestLifetimePipelineDeterministic(t *testing.T) {
	a := lifetimeFingerprint(t, 42)
	b := lifetimeFingerprint(t, 42)
	if a != b {
		t.Fatalf("same seed, different metrics:\nrun 1:\n%s\nrun 2:\n%s", a, b)
	}
	// Different seeds must actually exercise different topologies —
	// otherwise the equality above proves nothing.
	if c := lifetimeFingerprint(t, 43); c == a {
		t.Fatal("different seeds produced identical metrics; fingerprint is not sensitive")
	}
}
