package sim

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/wsn"
)

// Rotation alternates between several tour plans round-robin. Each plan
// stresses different sensors (its stops sit closer to some and farther
// from others); cycling averages the per-sensor upload cost, so the first
// death — which tracks the worst per-round cost — arrives later than under
// any single plan. The collector drives a different tour each round; the
// latency cost is the longest of the plans.
type Rotation struct {
	Label string
	Plans []*collector.TourPlan
	net   *wsn.Network
}

// NewRotation wraps the plans. It errors on an empty set or plans that do
// not serve every sensor of the network.
func NewRotation(label string, nw *wsn.Network, plans []*collector.TourPlan) (*Rotation, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("sim: rotation needs at least one plan")
	}
	for pi, p := range plans {
		if len(p.UploadAt) != nw.N() {
			return nil, fmt.Errorf("sim: rotation plan %d covers %d of %d sensors", pi, len(p.UploadAt), nw.N())
		}
	}
	return &Rotation{Label: label, Plans: plans, net: nw}, nil
}

// Name implements Scheme.
func (r *Rotation) Name() string { return r.Label }

// ChargeRound implements Scheme: the ledger's round counter selects the
// active plan.
func (r *Rotation) ChargeRound(led *energy.Ledger) {
	plan := r.Plans[led.Round()%len(r.Plans)]
	for i, s := range plan.UploadAt {
		if s >= 0 {
			led.ChargeTx(i, r.net.Nodes[i].Pos.Dist(plan.Stops[s]))
		}
	}
	led.EndRound()
}

// RoundTime implements Scheme (worst plan bounds the deadline).
func (r *Rotation) RoundTime(spec collector.Spec, relayDelay float64) float64 {
	worst := 0.0
	for _, p := range r.Plans {
		if rt := p.RoundTime(spec); rt > worst {
			worst = rt
		}
	}
	return worst
}

// TourLength implements Scheme (mean driving per round).
func (r *Rotation) TourLength() geom.Meters {
	total := geom.Meters(0)
	for _, p := range r.Plans {
		total += p.Length()
	}
	return total / geom.Meters(len(r.Plans))
}

// Coverage implements Scheme (every plan must serve a sensor for it to
// count as covered under rotation).
func (r *Rotation) Coverage() float64 {
	if r.net.N() == 0 {
		return 1
	}
	covered := 0
	for i := 0; i < r.net.N(); i++ {
		all := true
		for _, p := range r.Plans {
			if p.UploadAt[i] < 0 {
				all = false
				break
			}
		}
		if all {
			covered++
		}
	}
	return float64(covered) / float64(r.net.N())
}
