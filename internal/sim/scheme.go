// Package sim runs round-based data-gathering simulations. Every scheme —
// the SHDGP mobile plan, multi-collector plans, the CLA and straight-line
// baselines, and the static sink — is adapted to a common Scheme
// interface; the runner then charges per-round energy until the first
// sensor dies (network lifetime) and reports per-round collection latency.
package sim

import (
	"mobicol/internal/baselines"
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/routing"
	"mobicol/internal/wsn"
)

// Scheme is one data-gathering scheme under simulation.
type Scheme interface {
	// Name identifies the scheme in tables.
	Name() string
	// ChargeRound debits one gathering round against the ledger.
	ChargeRound(led *energy.Ledger)
	// RoundTime returns the latency of one gathering round in seconds.
	RoundTime(spec collector.Spec, relayDelay float64) float64
	// TourLength returns the per-round collector driving distance
	// (0 for the static sink).
	TourLength() geom.Meters
	// Coverage returns the fraction of sensors whose data is gathered.
	Coverage() float64
}

// Mobile adapts a single-collector TourPlan (SHDGP plan, visit-all tour,
// or CLA sweep). UploadDist overrides the per-sensor upload distance when
// non-nil; CLA uses the perpendicular line distance rather than the
// distance to the recorded endpoint stop.
type Mobile struct {
	Label      string
	Plan       *collector.TourPlan
	net        *wsn.Network
	uploadDist func(i int) float64
}

// NewMobile adapts a tour plan over nw.
func NewMobile(label string, nw *wsn.Network, plan *collector.TourPlan) *Mobile {
	return &Mobile{Label: label, Plan: plan, net: nw}
}

// NewCLA adapts a CLA sweep with line-distance upload semantics.
func NewCLA(nw *wsn.Network, plan *collector.TourPlan) *Mobile {
	m := NewMobile("cla", nw, plan)
	m.uploadDist = func(i int) float64 { return baselines.CLAUploadDistance(nw, plan, i) }
	return m
}

// Name implements Scheme.
func (m *Mobile) Name() string { return m.Label }

// ChargeRound implements Scheme: each served sensor pays one single-hop
// transmission to its stop.
func (m *Mobile) ChargeRound(led *energy.Ledger) {
	for i, s := range m.Plan.UploadAt {
		if s < 0 {
			continue
		}
		d := m.net.Nodes[i].Pos.Dist(m.Plan.Stops[s])
		if m.uploadDist != nil {
			d = m.uploadDist(i)
		}
		led.ChargeTx(i, d)
	}
	led.EndRound()
}

// RoundTime implements Scheme.
func (m *Mobile) RoundTime(spec collector.Spec, relayDelay float64) float64 {
	return m.Plan.RoundTime(spec)
}

// TourLength implements Scheme.
func (m *Mobile) TourLength() geom.Meters { return m.Plan.Length() }

// Coverage implements Scheme.
func (m *Mobile) Coverage() float64 {
	if m.net.N() == 0 {
		return 1
	}
	return float64(m.Plan.Served()) / float64(m.net.N())
}

// MultiMobile adapts concurrent collectors: energy is per-plan single-hop
// uploads, latency is the slowest sub-round.
type MultiMobile struct {
	Label string
	Plans []*collector.TourPlan
	net   *wsn.Network
}

// NewMultiMobile adapts a set of concurrent sub-tour plans.
func NewMultiMobile(label string, nw *wsn.Network, plans []*collector.TourPlan) *MultiMobile {
	return &MultiMobile{Label: label, Plans: plans, net: nw}
}

// Name implements Scheme.
func (m *MultiMobile) Name() string { return m.Label }

// ChargeRound implements Scheme.
func (m *MultiMobile) ChargeRound(led *energy.Ledger) {
	for _, p := range m.Plans {
		for i, s := range p.UploadAt {
			if s >= 0 {
				led.ChargeTx(i, m.net.Nodes[i].Pos.Dist(p.Stops[s]))
			}
		}
	}
	led.EndRound()
}

// RoundTime implements Scheme: collectors run concurrently, so the round
// lasts as long as the slowest sub-tour.
func (m *MultiMobile) RoundTime(spec collector.Spec, relayDelay float64) float64 {
	worst := 0.0
	for _, p := range m.Plans {
		if rt := p.RoundTime(spec); rt > worst {
			worst = rt
		}
	}
	return worst
}

// TourLength implements Scheme (total driving across collectors).
func (m *MultiMobile) TourLength() geom.Meters {
	total := geom.Meters(0)
	for _, p := range m.Plans {
		total += p.Length()
	}
	return total
}

// Coverage implements Scheme.
func (m *MultiMobile) Coverage() float64 {
	if m.net.N() == 0 {
		return 1
	}
	served := 0
	for _, p := range m.Plans {
		served += p.Served()
	}
	return float64(served) / float64(m.net.N())
}

// Static adapts the static-sink multi-hop baseline.
type Static struct {
	Plan *routing.Plan
}

// NewStatic adapts a routing plan.
func NewStatic(plan *routing.Plan) *Static { return &Static{Plan: plan} }

// Name implements Scheme.
func (s *Static) Name() string { return "static-sink" }

// ChargeRound implements Scheme: every connected sensor transmits its own
// packet plus everything it relays (Load[i] transmissions at its next-hop
// distance) and receives Load[i]-1 packets.
func (s *Static) ChargeRound(led *energy.Ledger) {
	nw := s.Plan.Net
	for i := 0; i < nw.N(); i++ {
		if !s.Plan.Connected(i) {
			continue
		}
		var d float64
		if s.Plan.NextHop[i] == routing.DirectUpload {
			d = nw.Nodes[i].Pos.Dist(nw.Sink)
		} else {
			d = nw.Nodes[i].Pos.Dist(nw.Nodes[s.Plan.NextHop[i]].Pos)
		}
		for t := 0; t < s.Plan.Load[i]; t++ {
			led.ChargeTx(i, d)
		}
		for r := 0; r < s.Plan.Load[i]-1; r++ {
			led.ChargeRx(i)
		}
	}
	led.EndRound()
}

// RoundTime implements Scheme: packets pipeline along the tree, so the
// round completes after the deepest sensor's packets hop home.
func (s *Static) RoundTime(spec collector.Spec, relayDelay float64) float64 {
	maxHops := 0
	for _, h := range s.Plan.Hops {
		if h > maxHops {
			maxHops = h
		}
	}
	return float64(maxHops) * relayDelay
}

// TourLength implements Scheme.
func (s *Static) TourLength() geom.Meters { return 0 }

// Coverage implements Scheme.
func (s *Static) Coverage() float64 { return s.Plan.CoverageFraction() }

// StraightLine adapts the fixed-track data mule.
type StraightLine struct {
	Plan *baselines.StraightLinePlan
}

// NewStraightLine adapts a straight-line plan.
func NewStraightLine(plan *baselines.StraightLinePlan) *StraightLine {
	return &StraightLine{Plan: plan}
}

// Name implements Scheme.
func (s *StraightLine) Name() string { return "straight-line" }

// ChargeRound implements Scheme: track-adjacent sensors upload over their
// perpendicular distance; everyone transmits Load[i] packets toward its
// next hop and receives Load[i]-1.
func (s *StraightLine) ChargeRound(led *energy.Ledger) {
	nw := s.Plan.Net
	for i := 0; i < nw.N(); i++ {
		if s.Plan.NextHop[i] == -2 {
			continue
		}
		var d float64
		if s.Plan.NextHop[i] == -1 {
			d = s.Plan.UploadDistance(i)
		} else {
			d = nw.Nodes[i].Pos.Dist(nw.Nodes[s.Plan.NextHop[i]].Pos)
		}
		for t := 0; t < s.Plan.Load[i]; t++ {
			led.ChargeTx(i, d)
		}
		for r := 0; r < s.Plan.Load[i]-1; r++ {
			led.ChargeRx(i)
		}
	}
	led.EndRound()
}

// RoundTime implements Scheme: drive the fixed tracks plus relay latency.
func (s *StraightLine) RoundTime(spec collector.Spec, relayDelay float64) float64 {
	maxHops := 0
	served := 0
	for _, h := range s.Plan.Hops {
		if h > maxHops {
			maxHops = h
		}
		if h >= 0 {
			served++
		}
	}
	return s.Plan.TourLength().TravelTime(spec.Speed) + float64(served)*spec.UploadTime + float64(maxHops)*relayDelay
}

// TourLength implements Scheme.
func (s *StraightLine) TourLength() geom.Meters { return s.Plan.TourLength() }

// Coverage implements Scheme.
func (s *StraightLine) Coverage() float64 { return s.Plan.CoverageFraction() }
