package sim

import (
	"testing"

	"mobicol/internal/wsn"
)

func TestAdaptiveMobileDegradation(t *testing.T) {
	nw := testNet(20)
	res, err := RunAdaptiveMobile(nw, smallBattery(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDeath < 0 {
		t.Fatal("nobody died with a tiny battery")
	}
	if res.HalfLife < res.FirstDeath {
		t.Fatalf("half-life %d before first death %d", res.HalfLife, res.FirstDeath)
	}
	if res.ServedAtHalf != 1 {
		t.Fatalf("re-planned mobile coverage %v, want 1", res.ServedAtHalf)
	}
	if res.Replans < 2 {
		t.Fatalf("expected re-plans after deaths, got %d", res.Replans)
	}
}

func TestAdaptiveStaticDegradation(t *testing.T) {
	nw := testNet(21)
	res, err := RunAdaptiveStatic(nw, smallBattery(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDeath < 0 {
		t.Fatal("nobody died")
	}
	if res.ServedAtHalf < 0 || res.ServedAtHalf > 1 {
		t.Fatalf("coverage %v out of range", res.ServedAtHalf)
	}
}

func TestAdaptiveMobileOutlastsStaticToHalfLife(t *testing.T) {
	// The gap should persist (indeed widen) past the first death: mobile
	// gathering loses sensors one by one; the static sink's relay core
	// collapses early.
	for seed := uint64(22); seed <= 24; seed++ {
		nw := testNet(seed)
		mob, err := RunAdaptiveMobile(nw, smallBattery(), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		st, err := RunAdaptiveStatic(nw, smallBattery(), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if mob.HalfLife <= st.HalfLife {
			t.Fatalf("seed %d: mobile half-life %d not beyond static %d", seed, mob.HalfLife, st.HalfLife)
		}
	}
}

func TestAdaptiveStaticStrandsSurvivors(t *testing.T) {
	// On a sparse field the static sink's coverage at half-life should
	// have degraded below 1 (relay deaths strand living sensors).
	nw := wsn.MustDeploy(wsn.Config{N: 120, FieldSide: 300, Range: 30, Seed: 25})
	res, err := RunAdaptiveStatic(nw, smallBattery(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedAtHalf >= 1 {
		t.Skip("rare draw: no survivor was stranded")
	}
	// Zero is common and meaningful here: the sink-adjacent relay core
	// carries everyone's packets, so it dies first — and its death
	// strands every remaining sensor at once.
	if res.ServedAtHalf < 0 {
		t.Fatalf("coverage %v negative", res.ServedAtHalf)
	}
}

func TestAdaptiveRejectsBadHorizon(t *testing.T) {
	nw := testNet(26)
	if _, err := RunAdaptiveMobile(nw, smallBattery(), 0); err == nil {
		t.Fatal("zero horizon accepted (mobile)")
	}
	if _, err := RunAdaptiveStatic(nw, smallBattery(), 0); err == nil {
		t.Fatal("zero horizon accepted (static)")
	}
}

func TestAdaptiveHorizonCap(t *testing.T) {
	nw := testNet(27)
	m := smallBattery()
	m.InitialJ = 1000 // nobody dies in 5 rounds
	res, err := RunAdaptiveMobile(nw, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 || res.FirstDeath != -1 || res.HalfLife != 5 {
		t.Fatalf("horizon cap result %+v", res)
	}
}
