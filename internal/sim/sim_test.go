package sim

import (
	"testing"

	"mobicol/internal/baselines"
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/routing"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

// testNet is a moderately dense field where all four schemes work.
func testNet(seed uint64) *wsn.Network {
	return wsn.MustDeploy(wsn.Config{N: 150, FieldSide: 200, Range: 30, Seed: seed})
}

// smallBattery keeps lifetime runs to hundreds of rounds.
func smallBattery() energy.Model {
	m := energy.DefaultModel()
	m.InitialJ = 0.01
	return m
}

func buildSchemes(t *testing.T, nw *wsn.Network) (mobile, cla, static, straight Scheme) {
	t.Helper()
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	claPlan, err := baselines.PlanCLA(nw)
	if err != nil {
		t.Fatal(err)
	}
	slPlan, err := baselines.PlanStraightLine(nw, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewMobile("shdg", nw, sol.Plan),
		NewCLA(nw, claPlan),
		NewStatic(routing.BuildPlan(nw)),
		NewStraightLine(slPlan)
}

func TestRunLifetimeTerminates(t *testing.T) {
	nw := testNet(1)
	mobile, cla, static, straight := buildSchemes(t, nw)
	for _, s := range []Scheme{mobile, cla, static, straight} {
		res, err := RunLifetime(s, nw.N(), smallBattery(), 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Died {
			t.Fatalf("%s: nobody died in 100000 rounds with a tiny battery", s.Name())
		}
		if res.Rounds <= 0 {
			t.Fatalf("%s: lifetime %d", s.Name(), res.Rounds)
		}
	}
}

func TestMobileOutlivesStaticSink(t *testing.T) {
	// The headline result: single-hop mobile gathering avoids the
	// sink-adjacent relay hot-spot, so its first death comes much later.
	for seed := uint64(1); seed <= 3; seed++ {
		nw := testNet(seed)
		mobile, _, static, _ := buildSchemes(t, nw)
		mres, err := RunLifetime(mobile, nw.N(), smallBattery(), 200000)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := RunLifetime(static, nw.N(), smallBattery(), 200000)
		if err != nil {
			t.Fatal(err)
		}
		if mres.Rounds <= sres.Rounds {
			t.Fatalf("seed %d: mobile lifetime %d not beyond static %d", seed, mres.Rounds, sres.Rounds)
		}
	}
}

func TestMobileEnergyMoreUniformThanStatic(t *testing.T) {
	nw := testNet(4)
	mobile, _, static, _ := buildSchemes(t, nw)
	m := smallBattery()
	mledRes, err := RunLifetime(mobile, nw.N(), m, 50)
	if err != nil {
		t.Fatal(err)
	}
	sledRes, err := RunLifetime(static, nw.N(), m, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Compare residual spread after the same horizon (neither may have
	// died that early; both summaries are still meaningful).
	if mledRes.Residual.Std >= sledRes.Residual.Std {
		t.Fatalf("mobile residual Std %.3e not below static %.3e",
			mledRes.Residual.Std, sledRes.Residual.Std)
	}
}

func TestStaticLatencyBeatsMobile(t *testing.T) {
	// The other side of the tradeoff: multi-hop relay is orders of
	// magnitude faster per round than a 1 m/s collector.
	nw := testNet(5)
	mobile, _, static, _ := buildSchemes(t, nw)
	spec := collector.DefaultSpec()
	relayDelay := 0.005 // 5 ms per hop
	ml := MeasureLatency(mobile, spec, relayDelay)
	sl := MeasureLatency(static, spec, relayDelay)
	if sl.Seconds >= ml.Seconds {
		t.Fatalf("static latency %.2fs not below mobile %.2fs", sl.Seconds, ml.Seconds)
	}
	if ml.TourM <= 0 || sl.TourM != 0 {
		t.Fatalf("tour lengths: mobile %.1f static %.1f", ml.TourM, sl.TourM)
	}
}

func TestCoverageSemantics(t *testing.T) {
	// Mobile schemes serve everyone; static and straight-line may strand
	// sensors in sparse fields.
	nw := wsn.MustDeploy(wsn.Config{N: 60, FieldSide: 500, Range: 25, Placement: wsn.Clustered, Clusters: 4, Seed: 6})
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	mobile := NewMobile("shdg", nw, sol.Plan)
	static := NewStatic(routing.BuildPlan(nw))
	if mobile.Coverage() != 1 {
		t.Fatalf("mobile coverage %v", mobile.Coverage())
	}
	if static.Coverage() >= 1 {
		t.Skip("rare draw: sparse clustered field fully connected")
	}
}

func TestMultiMobileLatencyImproves(t *testing.T) {
	nw := testNet(7)
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	single := NewMobile("shdg", nw, sol.Plan)
	// Split into 3 concurrent sub-tours via mtsp at the harness level is
	// exercised elsewhere; here simulate concurrency by cloning the plan
	// split into its first/second half stops.
	half := len(sol.Plan.Stops) / 2
	if half == 0 {
		t.Skip("too few stops")
	}
	p1 := &collector.TourPlan{Sink: sol.Plan.Sink, Stops: sol.Plan.Stops[:half], UploadAt: make([]int, nw.N())}
	p2 := &collector.TourPlan{Sink: sol.Plan.Sink, Stops: sol.Plan.Stops[half:], UploadAt: make([]int, nw.N())}
	for i, s := range sol.Plan.UploadAt {
		if s < half {
			p1.UploadAt[i] = s
			p2.UploadAt[i] = -1
		} else {
			p1.UploadAt[i] = -1
			p2.UploadAt[i] = s - half
		}
	}
	multi := NewMultiMobile("shdg-2x", nw, []*collector.TourPlan{p1, p2})
	spec := collector.DefaultSpec()
	if multi.Coverage() != 1 {
		t.Fatalf("multi coverage %v", multi.Coverage())
	}
	if MeasureLatency(multi, spec, 0).Seconds >= MeasureLatency(single, spec, 0).Seconds {
		t.Fatal("two concurrent collectors not faster than one")
	}
	// Energy must be identical: same uploads either way.
	m := smallBattery()
	a, err := RunLifetime(single, nw.N(), m, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifetime(multi, nw.N(), m, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.Residual.Mean != b.Residual.Mean {
		t.Fatalf("energy differs between single (%v) and split (%v)", a.Residual.Mean, b.Residual.Mean)
	}
}

func TestRunLifetimeRejectsBadHorizon(t *testing.T) {
	nw := testNet(8)
	mobile, _, _, _ := buildSchemes(t, nw)
	if _, err := RunLifetime(mobile, nw.N(), smallBattery(), 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestStraightLineChargesRelays(t *testing.T) {
	nw := testNet(9)
	_, _, _, straight := buildSchemes(t, nw)
	led := energy.NewLedger(nw.N(), smallBattery())
	straight.ChargeRound(led)
	st := led.ResidualStats()
	if st.Std == 0 {
		t.Fatal("straight-line charging perfectly uniform: relays not charged?")
	}
}
