package sim

// Rounds counts completed data-gathering rounds — the time dimension of
// the lifetime experiments. Like geom.Meters and energy.Joules it is a
// zero-cost named type: the compiler keeps round counts from mixing with
// raw indices or metres, and the mdglint unitcheck analyzer keeps them
// from laundering through bare ints outside annotated boundaries.
type Rounds int
